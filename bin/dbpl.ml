(* dbpl — run DBPL programs with data constructors.

   Usage:
     dbpl run program.dbpl            execute, print QUERY/EXPLAIN output
     dbpl check program.dbpl          parse + typecheck + positivity only
     dbpl run --strategy naive ...    naive instead of semi-naive fixpoints
     dbpl run --unchecked ...         disable the positivity check (§3.3)

   See examples/*.dbpl for the surface syntax. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let strategy_conv =
  Arg.enum [ ("seminaive", Dc_core.Fixpoint.Seminaive); ("naive", Dc_core.Fixpoint.Naive) ]

(* --limit-* flags shared by run and repl: initial declarative limits,
   adjustable from inside the program with SET LIMIT. *)
let limit_flags =
  let rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit-rows" ] ~docv:"N"
          ~doc:"Abort any evaluation after producing $(docv) operator rows")
  in
  let rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit-rounds" ] ~docv:"N"
          ~doc:"Abort any fixpoint after $(docv) rounds")
  in
  let millis =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit-millis" ] ~docv:"MS"
          ~doc:"Abort any evaluation running longer than $(docv) milliseconds")
  in
  Term.(
    const (fun rows rounds millis ->
        Dc_guard.Guard.limits ?millis ?rows ?rounds ())
    $ rows $ rounds $ millis)

(* --domains flag shared by run and repl: initial fixpoint parallelism,
   adjustable from inside the program with SET PARALLEL. *)
let domains_flag =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"P"
          ~doc:
            "Evaluate fixpoints on $(docv) domains (default: DC_DOMAINS, \
             else one less than the recommended domain count; 1 = \
             sequential)")
  in
  Term.(
    const (fun d -> Option.iter Dc_par.Par.set_domains d)
    $ domains)

let handle_errors f =
  try f () with
  | Dc_lang.Lexer.Lex_error msg | Dc_lang.Parser.Parse_error msg ->
    Fmt.epr "syntax error: %s@." msg;
    exit 1
  | Dc_lang.Elaborate.Elab_error msg ->
    Fmt.epr "elaboration error: %s@." msg;
    exit 1
  | Dc_core.Database.Error msg ->
    Fmt.epr "error: %s@." msg;
    exit 1
  | Dc_calculus.Typecheck.Error msg ->
    Fmt.epr "type error: %s@." msg;
    exit 1
  | Dc_agg.Agg.Inadmissible v ->
    Fmt.epr "aggregate error: %a@." Dc_agg.Agg.pp_violation v;
    exit 1
  | Dc_datalog.Stratify.Not_stratifiable msg ->
    Fmt.epr "stratification error: %s@." msg;
    exit 1
  | Dc_core.Fixpoint.Divergence msg ->
    Fmt.epr "divergence: %s@." msg;
    exit 1
  | Dc_guard.Guard.Exhausted (reason, progress) ->
    Fmt.epr "%a@." Dc_guard.Guard.pp_report (reason, progress);
    exit 2

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DBPL program")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv Dc_core.Fixpoint.Seminaive
      & info [ "strategy" ] ~doc:"Fixpoint strategy: seminaive or naive")
  in
  let unchecked =
    Arg.(
      value & flag
      & info [ "unchecked" ]
          ~doc:"Disable the positivity check (allows non-monotone systems)")
  in
  let load_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "load" ] ~docv:"DIR"
          ~doc:"Load a saved database before running the program")
  in
  let save_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"DIR"
          ~doc:"Save the database (catalog + CSVs) after running")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Enable metrics collection and dump the registry to $(docv) \
             after the run — JSON when $(docv) ends in .json, Prometheus \
             text otherwise")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR"
          ~doc:
            "Durable database directory: recover $(docv) (checkpoint + \
             write-ahead log) before the program runs, log every commit, \
             and checkpoint on exit")
  in
  let run file strategy unchecked limits () load save metrics_out data =
    handle_errors @@ fun () ->
    if Option.is_some metrics_out then Dc_obs.Obs.set_enabled true;
    let db =
      Dc_core.Database.create ~strategy ~check_positivity:(not unchecked)
        ~limits ()
    in
    (match load with
    | Some dir -> ignore (Dc_lang.Storage.load ~db dir)
    | None -> ());
    let durable = Option.map (Dc_wal.Durable.open_dir ~db) data in
    let _, out = Dc_lang.Elaborate.run_string ~db (read_file file) in
    print_string out;
    Option.iter Dc_wal.Durable.close durable;
    (match metrics_out with
    | Some path ->
      let body =
        if Filename.check_suffix path ".json" then Dc_obs.Obs.to_json ()
        else Dc_obs.Obs.to_prometheus ()
      in
      let oc = open_out path in
      output_string oc body;
      close_out oc
    | None -> ());
    match save with
    | Some dir -> Dc_lang.Storage.save db dir
    | None -> ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a DBPL program")
    Term.(
      const run $ file $ strategy $ unchecked $ limit_flags $ domains_flag
      $ load_dir $ save_dir $ metrics_out $ data_dir)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DBPL program")
  in
  let check file =
    handle_errors @@ fun () ->
    let program = Dc_lang.Parser.parse (read_file file) in
    (* execute declarations but strip queries: checking only *)
    let db = Dc_core.Database.create () in
    let env = Dc_lang.Elaborate.create db in
    let decls =
      List.filter
        (function
          | Dc_lang.Surface.D_query _ | Dc_lang.Surface.D_print _
          | Dc_lang.Surface.D_explain _ | Dc_lang.Surface.D_explain_analyze _
          | Dc_lang.Surface.D_show_metrics | Dc_lang.Surface.D_show_snapshot
          | Dc_lang.Surface.D_begin | Dc_lang.Surface.D_commit ->
            false
          | _ -> true)
        program
    in
    ignore (Dc_lang.Elaborate.run env decls);
    Fmt.pr "%s: OK (%d declarations)@." file (List.length program)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse, typecheck, and positivity-check a program")
    Term.(const check $ file)

(* Interactive loop: statements are buffered until a line ends with ';'
   (declarations using BEGIN ... END name; are therefore entered as one
   logical statement), then parsed and executed against a persistent
   database.  Errors keep the session alive. *)
let repl_cmd =
  let strategy =
    Arg.(
      value
      & opt strategy_conv Dc_core.Fixpoint.Seminaive
      & info [ "strategy" ] ~doc:"Fixpoint strategy: seminaive or naive")
  in
  let unchecked =
    Arg.(
      value & flag
      & info [ "unchecked" ] ~doc:"Disable the positivity check")
  in
  let repl strategy unchecked limits () =
    let db =
      Dc_core.Database.create ~strategy ~check_positivity:(not unchecked)
        ~limits ()
    in
    let env = Dc_lang.Elaborate.create db in
    Fmt.pr
      "dbpl — data constructors (VLDB 1985).  End statements with ';'; \
       Ctrl-D exits.@.";
    let buffer = Buffer.create 256 in
    (* a buffered chunk is incomplete when parsing fails exactly at the
       end of input (selector/constructor declarations continue past their
       first ';'); any other outcome — success or a mid-input error — is
       handed to the executor *)
    let contains msg needle =
      let nh = String.length msg and nn = String.length needle in
      let rec probe i =
        i + nn <= nh && (String.sub msg i nn = needle || probe (i + 1))
      in
      probe 0
    in
    let is_complete text =
      match Dc_lang.Parser.parse text with
      | _ -> true
      | exception Dc_lang.Parser.Parse_error msg -> not (contains msg "<eof>")
      | exception Dc_lang.Lexer.Lex_error msg ->
        not (contains msg "unterminated")
    in
    let rec loop () =
      Fmt.pr (if Buffer.length buffer = 0 then "dbpl> " else "  ... ");
      Format.pp_print_flush Format.std_formatter ();
      match In_channel.input_line stdin with
      | None -> Fmt.pr "@."
      | Some line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        let trimmed = String.trim text in
        if trimmed = "" then begin
          Buffer.clear buffer;
          loop ()
        end
        else if
          trimmed.[String.length trimmed - 1] = ';' && is_complete text
        then begin
          Buffer.clear buffer;
          (try
             let out = Dc_lang.Elaborate.run env (Dc_lang.Parser.parse text) in
             print_string out
           with
          | Dc_lang.Lexer.Lex_error msg | Dc_lang.Parser.Parse_error msg ->
            Fmt.pr "syntax error: %s@." msg
          | Dc_lang.Elaborate.Elab_error msg ->
            Fmt.pr "elaboration error: %s@." msg
          | Dc_core.Database.Error msg -> Fmt.pr "error: %s@." msg
          | Dc_calculus.Typecheck.Error msg -> Fmt.pr "type error: %s@." msg
          | Dc_agg.Agg.Inadmissible v ->
            Fmt.pr "aggregate error: %a@." Dc_agg.Agg.pp_violation v
          | Dc_datalog.Stratify.Not_stratifiable msg ->
            Fmt.pr "stratification error: %s@." msg
          | Dc_calculus.Eval.Runtime_error msg ->
            Fmt.pr "runtime error: %s@." msg
          | Dc_core.Selector.Selector_violation msg ->
            Fmt.pr "selector violation: %s@." msg
          | Dc_relation.Relation.Key_violation msg ->
            Fmt.pr "key violation: %s@." msg
          | Dc_core.Fixpoint.Divergence msg -> Fmt.pr "divergence: %s@." msg
          | Dc_guard.Guard.Exhausted (reason, progress) ->
            Fmt.pr "%a@." Dc_guard.Guard.pp_report (reason, progress));
          loop ()
        end
        else loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive DBPL session")
    Term.(const repl $ strategy $ unchecked $ limit_flags $ domains_flag)

(* Multi-session serving: each FILE runs in its own session on its own
   thread, all over one shared database behind the server's writer
   thread; reads observe published snapshots.  With no FILE an
   interactive single-session console is started instead. *)
let serve_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"DBPL programs, one session each")
  in
  let init_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "init" ] ~docv:"FILE"
          ~doc:"Execute $(docv) through a session before the concurrent ones start")
  in
  let load_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "load" ] ~docv:"DIR"
          ~doc:"Load a saved database before serving")
  in
  let max_sessions =
    Arg.(
      value
      & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Admission control: at most $(docv) concurrently open sessions")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR"
          ~doc:
            "Durable database directory: recover $(docv) on startup, log \
             every commit, checkpoint on shutdown (including SIGINT and \
             SIGTERM)")
  in
  let listen_addrs =
    Arg.(
      value
      & opt_all string []
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve the wire protocol on $(docv): unix:/path, /path, \
             tcp:host:port, host:port, or a bare port (binds 127.0.0.1; \
             port 0 picks an ephemeral port).  Repeatable.  The process \
             then serves until SIGINT/SIGTERM")
  in
  let serve files init load max_sessions limits () data listen_addrs =
    handle_errors @@ fun () ->
    let db = Dc_core.Database.create ~limits () in
    (match load with
    | Some dir -> ignore (Dc_lang.Storage.load ~db dir)
    | None -> ());
    let wal = Option.map (Dc_wal.Durable.open_dir ~db) data in
    let srv = Dc_server.Server.create ~max_sessions ~limits ?wal db in
    let listeners =
      List.map
        (fun a ->
          match Dc_net.Net.addr_of_string a with
          | Some addr -> Dc_net.Net.listen srv addr
          | None ->
            Fmt.epr "invalid --listen address: %s@." a;
            exit 1)
        listen_addrs
    in
    (* graceful shutdown: stop admitting, disconnect network clients, let
       the writer drain its queue (no commit dies mid-flight), take a
       final checkpoint, exit *)
    let graceful signame =
      Sys.Signal_handle
        (fun _ ->
          Fmt.epr "@.%s: draining writer and checkpointing...@." signame;
          List.iter Dc_net.Net.stop listeners;
          (try Dc_server.Server.shutdown srv
           with e -> Fmt.epr "shutdown failed: %s@." (Printexc.to_string e));
          exit 0)
    in
    Sys.set_signal Sys.sigint (graceful "SIGINT");
    Sys.set_signal Sys.sigterm (graceful "SIGTERM");
    let run_session src =
      let s = Dc_server.Server.open_session srv in
      Fun.protect
        ~finally:(fun () -> Dc_server.Server.close_session s)
        (fun () -> Dc_server.Server.execute s src)
    in
    (match init with
    | Some f -> print_string (run_session (read_file f))
    | None -> ());
    (match files with
    | [] when listeners <> [] -> ()
    | [] ->
      (* interactive single-session console over the server *)
      let s = Dc_server.Server.open_session srv in
      Fmt.pr
        "dbpl serve — session %d at snapshot version %d.  End statements \
         with ';'; Ctrl-D exits.@."
        (Dc_server.Server.session_id s)
        (Dc_core.Database.version db);
      let buffer = Buffer.create 256 in
      let rec loop () =
        Fmt.pr (if Buffer.length buffer = 0 then "dbpl> " else "  ... ");
        Format.pp_print_flush Format.std_formatter ();
        match In_channel.input_line stdin with
        | None -> Fmt.pr "@."
        | Some line ->
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n';
          let text = Buffer.contents buffer in
          let trimmed = String.trim text in
          if trimmed = "" then begin
            Buffer.clear buffer;
            loop ()
          end
          else if trimmed.[String.length trimmed - 1] = ';' then begin
            Buffer.clear buffer;
            (try print_string (Dc_server.Server.execute s text) with
            | Dc_lang.Lexer.Lex_error msg | Dc_lang.Parser.Parse_error msg ->
              Fmt.pr "syntax error: %s@." msg
            | Dc_lang.Elaborate.Elab_error msg ->
              Fmt.pr "elaboration error: %s@." msg
            | Dc_core.Database.Error msg -> Fmt.pr "error: %s@." msg
            | Dc_server.Server.Error msg -> Fmt.pr "server error: %s@." msg
            | Dc_calculus.Typecheck.Error msg -> Fmt.pr "type error: %s@." msg
            | Dc_guard.Guard.Exhausted (reason, progress) ->
              Fmt.pr "%a@." Dc_guard.Guard.pp_report (reason, progress));
            loop ()
          end
          else loop ()
      in
      loop ();
      Dc_server.Server.close_session s
    | files ->
      (* one session per file, all running concurrently; outputs are
         collected per session and printed in file order once every
         session has finished *)
      let results =
        files
        |> List.map (fun f ->
               let src = read_file f in
               let cell = ref (Ok "") in
               let th =
                 Thread.create
                   (fun () ->
                     cell :=
                       match run_session src with
                       | out -> Ok out
                       | exception e -> Error e)
                   ()
               in
               (f, th, cell))
      in
      List.iter
        (fun (f, th, cell) ->
          Thread.join th;
          Fmt.pr "-- session: %s@." f;
          match !cell with
          | Ok out -> print_string out
          | Error e -> Fmt.pr "session failed: %s@." (Printexc.to_string e))
        results);
    match listeners with
    | [] -> Dc_server.Server.shutdown srv
    | listeners ->
      List.iter
        (fun l ->
          match Dc_net.Net.bound_addr l with
          | Unix.ADDR_UNIX path -> Fmt.pr "listening on unix:%s@." path
          | Unix.ADDR_INET (a, p) ->
            Fmt.pr "listening on tcp:%s:%d@." (Unix.string_of_inet_addr a) p)
        listeners;
      Format.pp_print_flush Format.std_formatter ();
      (* serve until a signal; the handlers above exit the process *)
      while true do
        Thread.delay 3600.
      done
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve one database to concurrent sessions (one per FILE, or an \
          interactive console)")
    Term.(
      const serve $ files $ init_file $ load_dir $ max_sessions $ limit_flags
      $ domains_flag $ data_dir $ listen_addrs)

(* Wire-protocol client: run -e statements (or an interactive console)
   against a remote [dbpl serve --listen]. *)
let connect_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:"Server address: unix:/path, /path, tcp:host:port, or host:port")
  in
  let stmts =
    Arg.(
      value
      & opt_all string []
      & info [ "e"; "execute" ] ~docv:"STMT"
          ~doc:"Execute $(docv) and print its output (repeatable); without \
                $(opt), statements are read interactively")
  in
  let connect addr stmts =
    let a =
      match Dc_net.Net.addr_of_string addr with
      | Some a -> a
      | None ->
        Fmt.epr "invalid address: %s@." addr;
        exit 1
    in
    let c =
      try Dc_net.Net.Client.connect a
      with
      | Unix.Unix_error (e, _, _) ->
        Fmt.epr "cannot connect to %a: %s@." Dc_net.Net.pp_addr a
          (Unix.error_message e);
        exit 1
      | Dc_net.Wire.Protocol_error msg ->
        Fmt.epr "handshake with %a failed: %s@." Dc_net.Net.pp_addr a msg;
        exit 1
    in
    let run src =
      try print_string (Dc_net.Net.Client.exec c src) with
      | Dc_net.Net.Client.Remote (code, msg) ->
        Fmt.pr "%a error: %s@." Dc_net.Wire.pp_error_code code msg
      | Dc_net.Net.Timeout -> Fmt.pr "request timed out@."
    in
    (match stmts with
    | _ :: _ -> List.iter run stmts
    | [] ->
      Fmt.pr "dbpl connect — %a.  End statements with ';'; Ctrl-D exits.@."
        Dc_net.Net.pp_addr a;
      let buffer = Buffer.create 256 in
      let rec loop () =
        Fmt.pr (if Buffer.length buffer = 0 then "dbpl> " else "  ... ");
        Format.pp_print_flush Format.std_formatter ();
        match In_channel.input_line stdin with
        | None -> Fmt.pr "@."
        | Some line ->
          Buffer.add_string buffer line;
          Buffer.add_char buffer '\n';
          let text = Buffer.contents buffer in
          let trimmed = String.trim text in
          if trimmed = "" then begin
            Buffer.clear buffer;
            loop ()
          end
          else if trimmed.[String.length trimmed - 1] = ';' then begin
            Buffer.clear buffer;
            run text;
            loop ()
          end
          else loop ()
      in
      loop ());
    Dc_net.Net.Client.close c
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Connect to a serving dbpl over the wire protocol")
    Term.(const connect $ addr $ stmts)

let () =
  let doc = "DBPL with data constructors (Jarke, Linnemann & Schmidt, VLDB 1985)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dbpl" ~doc)
          [ run_cmd; check_cmd; repl_cmd; serve_cmd; connect_cmd ]))
