# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-smoke bench-ivm bench-agg bench-par bench-serve bench-wal examples doc clean outputs

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Seconds-long sanity pass: the two cheapest recursive experiments.
bench-smoke:
	dune exec bench/main.exe -- smoke

# Maintained views vs recompute-per-update on the same update stream.
bench-ivm:
	dune exec bench/main.exe -- ivm

# Aggregates: recursive MIN with per-group bounds vs the unaggregated
# naive recompute, and a maintained SUM view vs recompute-per-update.
bench-agg:
	dune exec bench/main.exe -- agg

# Parallel fixpoint scaling curve (P = 1, 2, 4, recommended; degrees
# above the core count are dropped, so single-core runners report P=1).
bench-par:
	dune exec bench/main.exe -- parallel

# Mixed read/write throughput through the serving layer: in-process
# sessions at 1-64 clients, real socket clients over the wire protocol
# at 1-16, and group-commit throughput under a 16-client write burst.
bench-serve:
	dune exec bench/main.exe -- serve

# Durable commit throughput (WAL fsync vs in-memory vs CSV-rewrite
# baseline) and recovery time (checkpoint + replay vs CSV reload).
bench-wal:
	dune exec bench/main.exe -- wal

examples:
	dune exec examples/quickstart.exe
	dune exec examples/bill_of_materials.exe
	dune exec examples/genealogy.exe
	dune exec examples/corporate.exe
	dune exec examples/network_dashboard.exe
	dune exec bin/dbpl.exe -- run examples/cad_scene.dbpl
	dune exec bin/dbpl.exe -- run examples/same_generation.dbpl
	dune exec bin/dbpl.exe -- run examples/paper_walkthrough.dbpl

doc:
	dune build @doc

# Regenerate the archived experiment records.
outputs:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
