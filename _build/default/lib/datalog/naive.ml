(* Naive bottom-up evaluation: every stratum iterates all of its rules
   against the whole current store until nothing changes.  The reference
   engine: trivially correct, used as oracle for the others and as the
   unoptimized baseline in the iteration benchmarks.

   New facts are accumulated per round and applied at round end, so the
   store read by the joins is immutable during a round. *)

open Syntax

module TS = Facts.TS

type stats = {
  mutable rounds : int;
  mutable derivations : int; (* head tuples produced, duplicates included *)
}

let fresh_stats () = { rounds = 0; derivations = 0 }

let run ?stats (program : program) (edb : Facts.t) =
  check_safe program;
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let eval_layer store layer =
    let current = ref store in
    let changed = ref true in
    while !changed do
      changed := false;
      stats.rounds <- stats.rounds + 1;
      let acc : (string, TS.t ref) Hashtbl.t = Hashtbl.create 8 in
      Engine.eval_program_round ~store:!current ~neg_store:!current layer
        (fun rule tuple ->
          stats.derivations <- stats.derivations + 1;
          if not (Facts.mem !current rule.head.pred tuple) then begin
            (match Hashtbl.find_opt acc rule.head.pred with
            | Some set ->
              if not (TS.mem tuple !set) then begin
                set := TS.add tuple !set;
                changed := true
              end
            | None ->
              Hashtbl.replace acc rule.head.pred (ref (TS.singleton tuple));
              changed := true)
          end);
      current :=
        Hashtbl.fold (fun pred set st -> Facts.add_set st pred !set) acc !current
    done;
    !current
  in
  List.fold_left eval_layer edb (Stratify.layers program)

(* Convenience: all facts of one predicate after evaluation. *)
let query ?stats program edb pred =
  Facts.find (run ?stats program edb) pred
