(* Fact store for the bottom-up Datalog engines: a map from predicate name
   to a set of ground tuples, with hash indexes per (predicate, bound
   positions) built lazily and dropped whenever the store grows. *)

open Dc_relation

module TS = Set.Make (Tuple)
module SM = Map.Make (String)

module HK = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  tuples : TS.t SM.t;
  index_cache : (string * int list, Tuple.t list HK.t) Hashtbl.t;
}

let empty () = { tuples = SM.empty; index_cache = Hashtbl.create 16 }

let find store pred =
  Option.value (SM.find_opt pred store.tuples) ~default:TS.empty

let cardinal store pred = TS.cardinal (find store pred)

let total store = SM.fold (fun _ s n -> n + TS.cardinal s) store.tuples 0

let mem store pred tuple = TS.mem tuple (find store pred)

let add store pred tuple =
  let set = find store pred in
  if TS.mem tuple set then store
  else
    {
      tuples = SM.add pred (TS.add tuple set) store.tuples;
      index_cache = Hashtbl.create 16;
    }

let add_set store pred set =
  if TS.is_empty set then store
  else
    {
      tuples = SM.add pred (TS.union set (find store pred)) store.tuples;
      index_cache = Hashtbl.create 16;
    }

let singleton_set pred set = add_set (empty ()) pred set

let of_list l =
  List.fold_left (fun st (pred, tuple) -> add st pred tuple) (empty ()) l

let preds store = List.map fst (SM.bindings store.tuples)

let iter f store = SM.iter (fun pred set -> TS.iter (f pred) set) store.tuples

let equal a b = SM.equal TS.equal a.tuples b.tuples

(* Tuples of [pred] whose projection onto [positions] equals [key]. *)
let lookup store pred positions key =
  match positions with
  | [] -> TS.elements (find store pred)
  | _ -> (
    let cache_key = (pred, positions) in
    let index =
      match Hashtbl.find_opt store.index_cache cache_key with
      | Some idx -> idx
      | None ->
        let idx = HK.create 64 in
        TS.iter
          (fun t ->
            let k = Tuple.project t positions in
            let prev = Option.value (HK.find_opt idx k) ~default:[] in
            HK.replace idx k (t :: prev))
          (find store pred);
        Hashtbl.replace store.index_cache cache_key idx;
        idx
    in
    match HK.find_opt index key with
    | Some l -> l
    | None -> [])

(* Conversions to/from {!Dc_relation.Relation}. *)
let to_relation schema store pred =
  TS.fold Relation.add_unchecked (find store pred) (Relation.empty schema)

let of_relation pred rel store =
  Relation.fold (fun t st -> add st pred t) rel store

let pp ppf store =
  SM.iter
    (fun pred set ->
      TS.iter (fun t -> Fmt.pf ppf "%s%a@." pred Tuple.pp t) set)
    store.tuples
