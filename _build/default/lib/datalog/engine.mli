(** Shared machinery of the bottom-up engines: substitutions, indexed atom
    matching, and set-at-a-time rule evaluation (left-to-right over the
    positive atoms; negations and tests fire as soon as ground). *)

open Dc_relation

module Subst : Map.S with type key = string

type subst = Value.t Subst.t

val term_value : subst -> Syntax.term -> Value.t option

val match_tuple : subst -> Syntax.term list -> Tuple.t -> subst option
(** Extend the substitution by matching argument terms against a ground
    tuple. *)

val solve_atom : Facts.t -> subst -> Syntax.atom -> (subst -> unit) -> unit
(** Iterate all matching extensions, using an index on the positions bound
    by the current substitution. *)

val ground_head : subst -> Syntax.atom -> Tuple.t
(** Instantiate a head atom (total by safety). *)

val eval_rule :
  store_for:(int -> Syntax.atom -> Facts.t) ->
  neg_store:Facts.t ->
  Syntax.rule ->
  (Tuple.t -> unit) ->
  unit
(** Evaluate one rule. [store_for i atom] chooses the store each positive
    atom reads from ([i] counts positive atoms left to right — the
    semi-naive engine substitutes deltas this way); [neg_store] resolves
    negated atoms. *)

val eval_program_round :
  store:Facts.t ->
  neg_store:Facts.t ->
  Syntax.program ->
  (Syntax.rule -> Tuple.t -> unit) ->
  unit
(** Evaluate every rule against a single store (one naive round). *)
