(* Stratification of Datalog programs with negation.

   Builds the predicate dependency graph (positive and negative edges) and
   assigns each IDB predicate a stratum such that positive dependencies are
   non-decreasing and negative dependencies strictly increase.  Programs
   with a negative cycle are rejected — they correspond exactly to the
   constructor definitions the paper's positivity constraint rules out
   (§3.3). *)

open Syntax

module SM = Map.Make (String)
module SS = Syntax.SS

exception Not_stratifiable of string

(* stratum of each IDB predicate, by iterated relaxation (Ullman's
   algorithm); raises if a stratum exceeds the predicate count. *)
let strata (program : program) =
  let idb = idb_preds program in
  let npreds = SS.cardinal idb in
  let stratum = ref (SS.fold (fun p m -> SM.add p 0 m) idb SM.empty) in
  let get p = Option.value (SM.find_opt p !stratum) ~default:0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun rule ->
        let h = rule.head.pred in
        List.iter
          (fun lit ->
            let bump target =
              if get h < target then begin
                if target > npreds then
                  raise
                    (Not_stratifiable
                       (Fmt.str
                          "predicate %s depends negatively on itself \
                           (through a cycle)"
                          h));
                stratum := SM.add h target !stratum;
                changed := true
              end
            in
            match lit with
            | Pos a when SS.mem a.pred idb -> bump (get a.pred)
            | Neg a when SS.mem a.pred idb -> bump (get a.pred + 1)
            | Pos _ | Neg _ | Test _ -> ())
          rule.body)
      program
  done;
  !stratum

(* Rules grouped by the stratum of their head predicate, lowest first. *)
let layers program =
  let strata = strata program in
  let get p = Option.value (SM.find_opt p strata) ~default:0 in
  let max_stratum = SM.fold (fun _ s acc -> max s acc) strata 0 in
  List.init (max_stratum + 1) (fun i ->
      List.filter (fun r -> get r.head.pred = i) program)
  |> List.filter (fun l -> l <> [])

let is_stratifiable program =
  match strata program with
  | _ -> true
  | exception Not_stratifiable _ -> false
