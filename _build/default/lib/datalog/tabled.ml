(* Tabled top-down evaluation (OLDT / QSQ style), for positive programs.

   The paper's closing argument (§4) is that set-oriented construction
   beats tuple-oriented theorem proving; the PROLOG community's eventual
   answer was tabling: memoize subgoals and their answers, turning the
   proof search into a goal-directed fixpoint.  This engine implements the
   idea in its simplest complete form:

   - a {e call pattern} is an atom with its ground arguments kept and its
     variables canonicalized ([path(1, V0)]);
   - every distinct pattern gets an answer table; rule bodies resolve IDB
     subgoals against the tables (registering new patterns on first use),
     EDB subgoals against the fact store;
   - the engine iterates all registered patterns until no table grows —
     a least fixpoint over exactly the subgoals relevant to the query,
     i.e. the top-down counterpart of magic sets.

   Consequences measured in experiment E2b: termination on cyclic data
   (where plain SLD loops), no duplicated subproofs (tables are shared),
   and goal-directed work bounded by the relevant subgoals. *)

open Dc_relation
open Syntax

module TS = Facts.TS
module Subst = Engine.Subst

type stats = {
  mutable rounds : int;
  mutable calls : int; (* distinct call patterns tabled *)
  mutable derivations : int; (* answers produced, duplicates included *)
}

let fresh_stats () = { rounds = 0; calls = 0; derivations = 0 }

(* Canonical call pattern: ground args kept, variables numbered in order
   of first occurrence. *)
type call = {
  c_pred : string;
  c_args : term list;
}

let canonicalize (pred : string) (args : term list) =
  let mapping = Hashtbl.create 4 in
  let c_args =
    List.map
      (function
        | Const _ as t -> t
        | Var v -> (
          match Hashtbl.find_opt mapping v with
          | Some t -> t
          | None ->
            let t = Var (Fmt.str "V%d" (Hashtbl.length mapping)) in
            Hashtbl.replace mapping v t;
            t))
      args
  in
  { c_pred = pred; c_args }

type state = {
  program : program;
  edb : Facts.t;
  tables : (call, TS.t ref) Hashtbl.t;
  mutable order : call list; (* registration order *)
  mutable changed : bool;
  stats : stats;
}

let ensure_call st call =
  match Hashtbl.find_opt st.tables call with
  | Some t -> t
  | None ->
    let t = ref TS.empty in
    Hashtbl.replace st.tables call t;
    st.order <- call :: st.order;
    st.stats.calls <- st.stats.calls + 1;
    st.changed <- true;
    t

(* Evaluate the rules for one call pattern, adding new answers. *)
let evaluate_call st (call : call) =
  let idb = idb_preds st.program in
  let table = Hashtbl.find st.tables call in
  List.iter
    (fun rule ->
      if String.equal rule.head.pred call.c_pred then begin
        (* bind the head against the call pattern: constants flow in *)
        match
          List.fold_left2
            (fun subst head_arg call_arg ->
              match subst, head_arg, call_arg with
              | None, _, _ -> None
              | Some s, arg, Const c -> (
                match arg with
                | Const c' -> if Value.equal c c' then Some s else None
                | Var v -> (
                  match Subst.find_opt v s with
                  | Some w -> if Value.equal w c then Some s else None
                  | None -> Some (Subst.add v c s)))
              | Some s, _, Var _ -> Some s)
            (Some Subst.empty) rule.head.args call.c_args
        with
        | None -> ()
        | Some subst ->
          let rec body subst = function
            | [] ->
              let answer = Engine.ground_head subst rule.head in
              st.stats.derivations <- st.stats.derivations + 1;
              if not (TS.mem answer !table) then begin
                table := TS.add answer !table;
                st.changed <- true
              end
            | Test (op, x, y) :: rest -> (
              match Engine.term_value subst x, Engine.term_value subst y with
              | Some a, Some b ->
                if Dc_calculus.Eval.eval_cmp op a b then body subst rest
              | _ -> invalid_arg "tabled: non-ground comparison")
            | Neg _ :: _ -> invalid_arg "tabled: negation not supported"
            | Pos a :: rest ->
              if SS.mem a.pred idb then begin
                (* IDB: consult (and register) the subgoal's table *)
                let inst_args =
                  List.map
                    (fun t ->
                      match Engine.term_value subst t with
                      | Some v -> Const v
                      | None -> t)
                    a.args
                in
                let subcall = canonicalize a.pred inst_args in
                let answers = ensure_call st subcall in
                TS.iter
                  (fun tuple ->
                    match Engine.match_tuple subst a.args tuple with
                    | Some s -> body s rest
                    | None -> ())
                  !answers
              end
              else
                Engine.solve_atom st.edb subst a (fun s -> body s rest)
          in
          body subst rule.body
      end)
    st.program

let solve ?stats ?(max_rounds = 100_000) (program : program) (edb : Facts.t)
    (goal : atom) =
  check_safe program;
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let st =
    { program; edb; tables = Hashtbl.create 64; order = []; changed = false; stats }
  in
  let root = canonicalize goal.pred goal.args in
  let root_table = ensure_call st root in
  let rec loop n =
    if n > max_rounds then invalid_arg "tabled: round budget exceeded";
    st.changed <- false;
    stats.rounds <- stats.rounds + 1;
    List.iter (evaluate_call st) st.order;
    if st.changed then loop (n + 1)
  in
  loop 1;
  (* keep only answers matching the goal's constants and repeated-variable
     equalities (tables over-approximate repeated-variable patterns) *)
  let matches t =
    let seen = Hashtbl.create 4 in
    List.for_all2
      (fun arg v ->
        match arg with
        | Const c -> Value.equal c v
        | Var x -> (
          match Hashtbl.find_opt seen x with
          | Some w -> Value.equal w v
          | None ->
            Hashtbl.replace seen x v;
            true))
      goal.args (Tuple.to_list t)
  in
  TS.filter matches !root_table

let query ?stats ?max_rounds program edb pred arity =
  solve ?stats ?max_rounds program edb
    (atom pred (List.init arity (fun i -> Var (Fmt.str "Q%d" i))))
