(* Shared machinery of the bottom-up engines: substitutions, indexed atom
   matching, and set-at-a-time rule evaluation.

   Body evaluation is left-to-right over the positive atoms with index
   lookups on already-bound argument positions; negated atoms and built-in
   tests fire as soon as their variables are bound (safety guarantees they
   eventually are). *)

open Dc_relation
open Syntax

module Subst = Map.Make (String)

type subst = Value.t Subst.t

let term_value subst = function
  | Const c -> Some c
  | Var v -> Subst.find_opt v subst

(* Extend [subst] by matching [args] against a ground [tuple]. *)
let match_tuple subst args tuple =
  let rec loop subst i = function
    | [] -> Some subst
    | arg :: rest -> (
      let v = Tuple.get tuple i in
      match arg with
      | Const c -> if Value.equal c v then loop subst (i + 1) rest else None
      | Var x -> (
        match Subst.find_opt x subst with
        | Some w -> if Value.equal w v then loop subst (i + 1) rest else None
        | None -> loop (Subst.add x v subst) (i + 1) rest))
  in
  loop subst 0 args

(* Iterate all extensions of [subst] matching [atom] in [store], using an
   index on the positions bound by the current substitution. *)
let solve_atom store subst (atom : atom) k =
  let positions, key_values =
    List.fold_right
      (fun (i, arg) (ps, vs) ->
        match term_value subst arg with
        | Some v -> (i :: ps, v :: vs)
        | None -> (ps, vs))
      (List.mapi (fun i a -> (i, a)) atom.args)
      ([], [])
  in
  let candidates =
    Facts.lookup store atom.pred positions (Tuple.of_list key_values)
  in
  List.iter
    (fun t ->
      match match_tuple subst atom.args t with
      | Some s -> k s
      | None -> ())
    candidates

let lit_is_ready subst = function
  | Pos _ -> true
  | Neg a -> List.for_all (fun v -> Subst.mem v subst) (atom_vars a)
  | Test (_, x, y) ->
    term_value subst x <> None && term_value subst y <> None

let eval_constraint store subst = function
  | Neg a -> (
    let tuple =
      Tuple.of_list
        (List.map
           (fun arg ->
             match term_value subst arg with
             | Some v -> v
             | None -> invalid_arg "eval_constraint: non-ground negation")
           a.args)
    in
    not (Facts.mem store a.pred tuple))
  | Test (op, x, y) -> (
    match term_value subst x, term_value subst y with
    | Some a, Some b -> Dc_calculus.Eval.eval_cmp op a b
    | _ -> invalid_arg "eval_constraint: non-ground test")
  | Pos _ -> invalid_arg "eval_constraint: positive literal"

let ground_head subst (head : atom) =
  Tuple.of_list
    (List.map
       (fun arg ->
         match term_value subst arg with
         | Some v -> v
         | None -> invalid_arg "ground_head: unsafe rule (unbound head var)")
       head.args)

(* Evaluate one rule.  [store_for i atom] chooses the store each positive
   atom reads from ([i] is the index of the atom among the positive body
   atoms, left to right) — the semi-naive engine substitutes deltas this
   way.  [neg_store] resolves negated atoms (the completed lower strata).
   [emit] receives each derived head tuple. *)
let eval_rule ~store_for ~neg_store rule emit =
  let positives =
    List.filter_map
      (function
        | Pos a -> Some a
        | Neg _ | Test _ -> None)
      rule.body
  in
  let constraints =
    List.filter
      (function
        | Pos _ -> false
        | Neg _ | Test _ -> true)
      rule.body
  in
  let rec fire subst pending =
    (* run every constraint that has become ground *)
    let ready, still = List.partition (lit_is_ready subst) pending in
    if List.for_all (eval_constraint neg_store subst) ready then Some still
    else None
  and go subst pending i = function
    | [] ->
      (* all positives done: remaining constraints must be ground *)
      (match fire subst pending with
      | Some [] -> emit (ground_head subst rule.head)
      | Some (_ :: _) -> invalid_arg "eval_rule: unsafe rule"
      | None -> ())
    | a :: rest -> (
      match fire subst pending with
      | None -> ()
      | Some pending ->
        solve_atom (store_for i a) subst a (fun s -> go s pending (i + 1) rest))
  in
  go Subst.empty constraints 0 positives

(* Evaluate all rules against a single store (naive round). *)
let eval_program_round ~store ~neg_store program emit =
  List.iter
    (fun rule -> eval_rule ~store_for:(fun _ _ -> store) ~neg_store rule
        (emit rule))
    program
