lib/datalog/magic.mli: Facts Seminaive Syntax
