lib/datalog/facts.mli: Dc_relation Fmt Relation Schema Set Tuple
