lib/datalog/tabled.mli: Facts Syntax
