lib/datalog/syntax.mli: Dc_calculus Dc_relation Fmt Set Value
