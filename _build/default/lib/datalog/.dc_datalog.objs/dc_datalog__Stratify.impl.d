lib/datalog/stratify.ml: Fmt List Map Option String Syntax
