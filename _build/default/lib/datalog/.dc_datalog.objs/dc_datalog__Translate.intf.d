lib/datalog/translate.mli: Ast Dc_calculus Dc_relation Defs Schema Syntax Value
