lib/datalog/naive.ml: Engine Facts Hashtbl List Option Stratify Syntax
