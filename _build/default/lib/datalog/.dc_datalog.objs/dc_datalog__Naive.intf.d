lib/datalog/naive.mli: Facts Syntax
