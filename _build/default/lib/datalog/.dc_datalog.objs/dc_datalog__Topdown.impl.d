lib/datalog/topdown.ml: Dc_calculus Dc_relation Facts Fmt List Map Option String Syntax Tuple Value
