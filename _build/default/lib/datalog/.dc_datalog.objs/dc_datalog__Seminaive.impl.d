lib/datalog/seminaive.ml: Engine Facts Fun Hashtbl List Option Set Stratify String Syntax
