lib/datalog/translate.ml: Ast Dc_calculus Dc_relation Defs Fmt Hashtbl List SS Schema String Syntax Value
