lib/datalog/topdown.mli: Dc_relation Facts Syntax Tuple
