lib/datalog/tabled.ml: Dc_calculus Dc_relation Engine Facts Fmt Hashtbl List Option SS String Syntax Tuple Value
