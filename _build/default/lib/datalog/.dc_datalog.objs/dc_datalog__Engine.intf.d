lib/datalog/engine.mli: Dc_relation Facts Map Syntax Tuple Value
