lib/datalog/facts.ml: Dc_relation Fmt Hashtbl List Map Option Relation Set String Tuple
