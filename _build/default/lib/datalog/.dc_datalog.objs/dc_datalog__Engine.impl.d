lib/datalog/engine.ml: Dc_calculus Dc_relation Facts List Map String Syntax Tuple Value
