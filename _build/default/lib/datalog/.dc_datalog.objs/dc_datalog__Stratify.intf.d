lib/datalog/stratify.mli: Map Syntax
