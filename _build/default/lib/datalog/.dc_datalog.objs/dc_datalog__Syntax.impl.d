lib/datalog/syntax.ml: Dc_calculus Dc_relation Fmt List Set String Value
