lib/datalog/seminaive.mli: Facts Syntax
