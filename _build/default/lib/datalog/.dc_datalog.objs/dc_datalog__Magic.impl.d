lib/datalog/magic.ml: Dc_relation Facts Fmt Hashtbl List Seminaive String Syntax
