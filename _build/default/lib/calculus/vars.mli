(** Free-variable and name analyses over the calculus AST. *)

module S : Set.S with type elt = string

val free_vars_term : Ast.term -> S.t
(** Tuple variables occurring in a term. *)

val free_vars_formula : Ast.formula -> S.t
(** Free tuple variables (quantifier- and binder-bound ones removed). *)

val free_vars_range : Ast.range -> S.t

val params_of_term : Ast.term -> S.t
(** Scalar parameter names referenced in a term. *)

val rel_names_formula : Ast.formula -> S.t
(** Named relations occurring in range position anywhere in a formula. *)

val rel_names_range : Ast.range -> S.t
val rel_names_branches : Ast.branch list -> S.t

(** A constructor-application occurrence: [base{con(args)}]. *)
type app = {
  app_con : string;
  app_base : Ast.range;
  app_args : Ast.arg list;
}

val apps_of_branches : Ast.branch list -> app list
(** Every [Construct] occurrence, in traversal order. *)

val apps_of_range : Ast.range -> app list
val apps_of_formula : Ast.formula -> app list
