(* Free-variable and name analyses over the calculus AST.

   Used by the typechecker, the join planner in {!Eval} (which needs to know
   when a filter becomes evaluable), the positivity checker, and the
   compilation graphs of [Dc_compile]. *)

module S = Set.Make (String)

open Ast

let rec term_vars acc = function
  | Const _ | Param _ -> acc
  | Field (v, _) -> S.add v acc
  | Binop (_, a, b) -> term_vars (term_vars acc a) b

let rec formula_vars bound acc = function
  | True | False -> acc
  | Cmp (_, a, b) -> term_vars (term_vars acc a) b
  | Not f -> formula_vars bound acc f
  | And (a, b) | Or (a, b) -> formula_vars bound (formula_vars bound acc a) b
  | Some_in (v, r, f) | All_in (v, r, f) ->
    let acc = range_vars bound acc r in
    S.union acc (S.diff (formula_vars (S.add v bound) S.empty f) (S.add v bound))
  | In_rel (v, r) ->
    let acc = if S.mem v bound then acc else S.add v acc in
    range_vars bound acc r
  | Member (ts, r) ->
    let acc = List.fold_left term_vars acc ts in
    range_vars bound acc r

and range_vars bound acc = function
  | Rel _ -> acc
  | Select (r, _, args) | Construct (r, _, args) ->
    List.fold_left (arg_vars bound) (range_vars bound acc r) args
  | Comp branches -> List.fold_left (branch_vars bound) acc branches

and arg_vars bound acc = function
  | Arg_scalar t -> term_vars acc t
  | Arg_range r -> range_vars bound acc r

and branch_vars bound acc { binders; target; where } =
  (* Binder variables are local to the branch. *)
  let inner_bound =
    List.fold_left (fun s (v, _) -> S.add v s) bound binders
  in
  let acc =
    List.fold_left (fun acc (_, r) -> range_vars bound acc r) acc binders
  in
  let inner = List.fold_left term_vars S.empty target in
  let inner = formula_vars inner_bound inner where in
  S.union acc (S.diff inner inner_bound)

let free_vars_formula f = formula_vars S.empty S.empty f

let free_vars_term t = term_vars S.empty t

let free_vars_range r = range_vars S.empty S.empty r

(* Scalar parameters referenced in a term. *)
let rec term_params acc = function
  | Const _ | Field _ -> acc
  | Param p -> S.add p acc
  | Binop (_, a, b) -> term_params (term_params acc a) b

let params_of_term t = term_params S.empty t

(* Relation names occurring in range position anywhere in the AST. *)
let rec formula_rel_names acc = function
  | True | False | Cmp _ -> acc
  | Not f -> formula_rel_names acc f
  | And (a, b) | Or (a, b) -> formula_rel_names (formula_rel_names acc a) b
  | Some_in (_, r, f) | All_in (_, r, f) ->
    formula_rel_names (range_rel_names acc r) f
  | In_rel (_, r) | Member (_, r) -> range_rel_names acc r

and range_rel_names acc = function
  | Rel n -> S.add n acc
  | Select (r, _, args) | Construct (r, _, args) ->
    List.fold_left arg_rel_names (range_rel_names acc r) args
  | Comp branches -> List.fold_left branch_rel_names acc branches

and arg_rel_names acc = function
  | Arg_scalar _ -> acc
  | Arg_range r -> range_rel_names acc r

and branch_rel_names acc { binders; where; _ } =
  let acc =
    List.fold_left (fun acc (_, r) -> range_rel_names acc r) acc binders
  in
  formula_rel_names acc where

let rel_names_formula f = formula_rel_names S.empty f
let rel_names_range r = range_rel_names S.empty r

let rel_names_branches bs =
  List.fold_left branch_rel_names S.empty bs

(* Constructor applications: every [Construct] occurrence in an AST
   fragment, with its base range and arguments. *)
type app = { app_con : string; app_base : range; app_args : arg list }

let rec formula_apps acc = function
  | True | False | Cmp _ -> acc
  | Not f -> formula_apps acc f
  | And (a, b) | Or (a, b) -> formula_apps (formula_apps acc a) b
  | Some_in (_, r, f) | All_in (_, r, f) -> formula_apps (range_apps acc r) f
  | In_rel (_, r) | Member (_, r) -> range_apps acc r

and range_apps acc = function
  | Rel _ -> acc
  | Select (r, _, args) ->
    List.fold_left arg_apps (range_apps acc r) args
  | Construct (r, c, args) ->
    let acc = { app_con = c; app_base = r; app_args = args } :: acc in
    List.fold_left arg_apps (range_apps acc r) args
  | Comp branches -> List.fold_left branch_apps acc branches

and arg_apps acc = function
  | Arg_scalar _ -> acc
  | Arg_range r -> range_apps acc r

and branch_apps acc { binders; where; _ } =
  let acc =
    List.fold_left (fun acc (_, r) -> range_apps acc r) acc binders
  in
  formula_apps acc where

let apps_of_branches bs = List.rev (List.fold_left branch_apps [] bs)
let apps_of_range r = List.rev (range_apps [] r)
let apps_of_formula f = List.rev (formula_apps [] f)
