(** Generic bottom-up rewriting over the calculus AST.

    [map_*] applies a range transformer everywhere a range occurs (the
    transformer sees each range after its children were rewritten); the
    [subst_params_*] family closes definitions over actual scalar
    arguments; [rename_rels*] renames relation names. *)

open Ast

val map_formula : (range -> range) -> formula -> formula
val map_range : (range -> range) -> range -> range
val map_arg : (range -> range) -> arg -> arg
val map_branch : (range -> range) -> branch -> branch
val map_branches : (range -> range) -> branch list -> branch list

val subst_params_term : (string * term) list -> term -> term
(** Substitute terms for scalar parameter names. *)

val subst_params_formula : (string * term) list -> formula -> formula
val subst_params_range : (string * term) list -> range -> range
val subst_params_arg : (string * term) list -> arg -> arg
val subst_params_branch : (string * term) list -> branch -> branch

val rename_rels : (string * string) list -> range -> range
(** Rename relation names per the mapping (unmapped names unchanged). *)

val rename_rels_branch : (string * string) list -> branch -> branch
