lib/calculus/typecheck.ml: Ast Dc_relation Defs Fmt Hashtbl List Schema String Value
