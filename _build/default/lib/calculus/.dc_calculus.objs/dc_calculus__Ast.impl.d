lib/calculus/ast.ml: Dc_relation Fmt List Value
