lib/calculus/defs.ml: Ast Dc_relation Fmt Schema Value
