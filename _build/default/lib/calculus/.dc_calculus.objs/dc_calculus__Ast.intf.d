lib/calculus/ast.mli: Dc_relation Fmt Value
