lib/calculus/morph.mli: Ast
