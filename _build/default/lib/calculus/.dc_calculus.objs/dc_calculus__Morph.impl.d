lib/calculus/morph.ml: Ast List
