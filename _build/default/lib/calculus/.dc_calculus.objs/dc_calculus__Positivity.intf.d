lib/calculus/positivity.mli: Ast Defs Fmt
