lib/calculus/eval.ml: Ast Dc_relation Defs Either Fmt Hashtbl Index List Map Relation Schema String Tuple Value Vars
