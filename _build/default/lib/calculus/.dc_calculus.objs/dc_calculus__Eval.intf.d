lib/calculus/eval.mli: Ast Dc_relation Defs Format Map Relation Schema Tuple Value
