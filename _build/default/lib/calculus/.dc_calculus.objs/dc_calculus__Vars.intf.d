lib/calculus/vars.mli: Ast Set
