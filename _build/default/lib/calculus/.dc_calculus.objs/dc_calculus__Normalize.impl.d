lib/calculus/normalize.ml: Ast List Morph Positivity
