lib/calculus/defs.mli: Ast Dc_relation Fmt Schema Value
