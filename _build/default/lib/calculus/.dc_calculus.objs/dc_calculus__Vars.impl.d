lib/calculus/vars.ml: Ast List Set String
