lib/calculus/typecheck.mli: Ast Dc_relation Defs Schema Value
