lib/calculus/normalize.mli: Ast Positivity
