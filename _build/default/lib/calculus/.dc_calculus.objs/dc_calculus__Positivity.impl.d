lib/calculus/positivity.ml: Ast Defs Fmt Hashtbl List String
