(* Negation normal form and polarity analysis.

   Implements the transformation from the proof sketch of the §3.3 lemma:
   replace range-coupled quantifiers by their duals and push negations
   inward with generalized deMorgan and double-negation laws, so that NOT
   remains only on atomic membership literals.  On the resulting form,
   monotonicity is syntactically visible: an expression is monotone in a
   relation name iff every occurrence of the name has positive polarity
   (ALL-range positions and negated literals flip polarity). *)

open Ast

(* NNF: push NOT down to atoms, using the dual-quantifier laws
     NOT (SOME r IN R (p))  =  ALL r IN R (NOT p)
     NOT (ALL r IN R (p))   =  SOME r IN R (NOT p)
   (ranges are untouched — they keep their polarity role). *)
let rec nnf = function
  | (True | False | Cmp _ | In_rel _ | Member _) as f -> f
  | Not f -> nnf_neg f
  | And (a, b) -> conj (nnf a) (nnf b)
  | Or (a, b) -> disj (nnf a) (nnf b)
  | Some_in (v, r, f) -> Some_in (v, r, nnf f)
  | All_in (v, r, f) -> All_in (v, r, nnf f)

and nnf_neg = function
  | True -> False
  | False -> True
  | Cmp (op, a, b) -> Cmp (negate_cmpop op, a, b)
  | Not f -> nnf f
  | And (a, b) -> disj (nnf_neg a) (nnf_neg b)
  | Or (a, b) -> conj (nnf_neg a) (nnf_neg b)
  | Some_in (v, r, f) -> All_in (v, r, nnf_neg f)
  | All_in (v, r, f) -> Some_in (v, r, nnf_neg f)
  | (In_rel _ | Member _) as atom -> Not atom

let rec is_nnf = function
  | True | False | Cmp _ | In_rel _ | Member _ -> true
  | Not (In_rel _ | Member _) -> true
  | Not _ -> false
  | And (a, b) | Or (a, b) -> is_nnf a && is_nnf b
  | Some_in (_, _, f) | All_in (_, _, f) -> is_nnf f

(* ------------------------------------------------------------------ *)
(* Polarity of relation-name occurrences. *)

type polarity =
  | Positive
  | Negative

let flip = function
  | Positive -> Negative
  | Negative -> Positive

type polar_occurrence = {
  po_target : Positivity.target;
  po_polarity : polarity;
}

let rec formula_pol pol acc f =
  match nnf f with
  | True | False | Cmp _ -> acc
  | Not (In_rel (_, r)) | Not (Member (_, r)) -> range_pol (flip pol) acc r
  | Not _ -> assert false (* nnf leaves NOT only on atoms *)
  | And (a, b) | Or (a, b) -> formula_pol pol (formula_pol pol acc a) b
  | Some_in (_, r, f) -> formula_pol pol (range_pol pol acc r) f
  | All_in (_, r, f) ->
    (* bigger range => more instances to satisfy => antitone in the range *)
    formula_pol pol (range_pol (flip pol) acc r) f
  | In_rel (_, r) | Member (_, r) -> range_pol pol acc r

and range_pol pol acc = function
  | Rel n -> { po_target = Positivity.Rel_name n; po_polarity = pol } :: acc
  | Select (r, _, args) ->
    List.fold_left (arg_pol pol) (range_pol pol acc r) args
  | Construct (r, c, args) ->
    let acc = { po_target = Positivity.App c; po_polarity = pol } :: acc in
    List.fold_left (arg_pol pol) (range_pol pol acc r) args
  | Comp branches -> List.fold_left (branch_pol pol) acc branches

and arg_pol pol acc = function
  | Arg_scalar _ -> acc
  | Arg_range r -> range_pol pol acc r

and branch_pol pol acc { binders; where; _ } =
  let acc =
    List.fold_left (fun acc (_, r) -> range_pol pol acc r) acc binders
  in
  formula_pol pol acc where

let polarities_formula f = List.rev (formula_pol Positive [] f)
let polarities_branches bs = List.rev (List.fold_left (branch_pol Positive) [] bs)

(* Syntactic monotonicity: every occurrence of the target is positive after
   normalization.  By the §3.3 lemma this follows from positivity, and the
   test suite checks that implication on both hand-written and generated
   constructor systems. *)
let monotone_in_branches bs target =
  List.for_all
    (fun o -> o.po_target <> target || o.po_polarity = Positive)
    (polarities_branches bs)

let monotone_in_formula f target =
  List.for_all
    (fun o -> o.po_target <> target || o.po_polarity = Positive)
    (polarities_formula f)

(* Normalize every formula inside a branch (binder ranges included, via the
   generic rewriter). *)
let nnf_branch (b : branch) =
  let b = Morph.map_branch (fun r -> r) b in
  { b with where = nnf b.where }
