(* Generic bottom-up rewriting over the calculus AST.

   [map_*] applies a range transformer everywhere a range occurs; the
   transformer sees each rewritten-children range and may replace it.  Used
   by the semi-naive fixpoint engine (substituting delta relations for one
   recursive occurrence) and by the N1–N3 range-nesting rewrites of
   [Dc_compile.Rewrite]. *)

open Ast

let rec map_formula f = function
  | (True | False | Cmp _) as x -> x
  | Not x -> Not (map_formula f x)
  | And (a, b) -> And (map_formula f a, map_formula f b)
  | Or (a, b) -> Or (map_formula f a, map_formula f b)
  | Some_in (v, r, x) -> Some_in (v, map_range f r, map_formula f x)
  | All_in (v, r, x) -> All_in (v, map_range f r, map_formula f x)
  | In_rel (v, r) -> In_rel (v, map_range f r)
  | Member (ts, r) -> Member (ts, map_range f r)

and map_range f r =
  let r' =
    match r with
    | Rel _ -> r
    | Select (base, s, args) -> Select (map_range f base, s, List.map (map_arg f) args)
    | Construct (base, c, args) ->
      Construct (map_range f base, c, List.map (map_arg f) args)
    | Comp branches -> Comp (List.map (map_branch f) branches)
  in
  f r'

and map_arg f = function
  | Arg_scalar t -> Arg_scalar t
  | Arg_range r -> Arg_range (map_range f r)

and map_branch f { binders; target; where } =
  {
    binders = List.map (fun (v, r) -> (v, map_range f r)) binders;
    target;
    where = map_formula f where;
  }

let map_branches f bs = List.map (map_branch f) bs

(* Substitute terms for scalar parameters (closing a definition over actual
   scalar arguments at compile time, §4 "logical access paths" with dummy
   constants). *)
let rec subst_params_term bindings = function
  | Const _ as t -> t
  | Field _ as t -> t
  | Param p as t -> (
    match List.assoc_opt p bindings with
    | Some t' -> t'
    | None -> t)
  | Binop (op, a, b) ->
    Binop (op, subst_params_term bindings a, subst_params_term bindings b)

let rec subst_params_formula bindings = function
  | (True | False) as f -> f
  | Cmp (op, a, b) ->
    Cmp (op, subst_params_term bindings a, subst_params_term bindings b)
  | Not f -> Not (subst_params_formula bindings f)
  | And (a, b) ->
    And (subst_params_formula bindings a, subst_params_formula bindings b)
  | Or (a, b) ->
    Or (subst_params_formula bindings a, subst_params_formula bindings b)
  | Some_in (v, r, f) ->
    Some_in (v, subst_params_range bindings r, subst_params_formula bindings f)
  | All_in (v, r, f) ->
    All_in (v, subst_params_range bindings r, subst_params_formula bindings f)
  | In_rel (v, r) -> In_rel (v, subst_params_range bindings r)
  | Member (ts, r) ->
    Member
      (List.map (subst_params_term bindings) ts, subst_params_range bindings r)

and subst_params_range bindings = function
  | Rel _ as r -> r
  | Select (base, s, args) ->
    Select
      (subst_params_range bindings base, s, List.map (subst_params_arg bindings) args)
  | Construct (base, c, args) ->
    Construct
      (subst_params_range bindings base, c, List.map (subst_params_arg bindings) args)
  | Comp branches -> Comp (List.map (subst_params_branch bindings) branches)

and subst_params_arg bindings = function
  | Arg_scalar t -> Arg_scalar (subst_params_term bindings t)
  | Arg_range r -> Arg_range (subst_params_range bindings r)

and subst_params_branch bindings { binders; target; where } =
  {
    binders = List.map (fun (v, r) -> (v, subst_params_range bindings r)) binders;
    target = List.map (subst_params_term bindings) target;
    where = subst_params_formula bindings where;
  }

(* Rename relation names (closing formals over actual relation names). *)
let rename_rels mapping =
  map_range (function
    | Rel n as r -> (
      match List.assoc_opt n mapping with
      | Some n' -> Rel n'
      | None -> r)
    | r -> r)

let rename_rels_branch mapping = map_branch (function
  | Rel n as r -> (
    match List.assoc_opt n mapping with
    | Some n' -> Rel n'
    | None -> r)
  | r -> r)
