(* The positivity constraint of paper §3.3.

   Definitions (verbatim from the paper):
   - a name appears under ALL if the expression is
     [ALL r IN exp (p)] and the name appears in [exp] — names appearing
     only in [p] are NOT under that ALL;
   - a name appears under NOT if it appears in a negated factor;
   - an expression [f(Rel_1, ..., Rel_n)] satisfies the positivity
     constraint if every occurrence of each [Rel_i] appears under an even
     total number of negations and universal quantifiers.

   The DBPL compiler accepts only constructor systems whose recursive
   applications satisfy positivity; by the §3.3 lemma such systems are
   monotonic, so the §3.2 least fixpoint exists and is reached in finitely
   many steps. *)

open Ast

type target =
  | Rel_name of string (* occurrence of a named relation *)
  | App of string (* occurrence of a constructor application *)

type occurrence = {
  occ_target : target;
  occ_depth : int; (* total number of enclosing NOTs and ALL-ranges *)
}

let rec formula_occ depth acc = function
  | True | False | Cmp _ -> acc
  | Not f -> formula_occ (depth + 1) acc f
  | And (a, b) | Or (a, b) -> formula_occ depth (formula_occ depth acc a) b
  | Some_in (_, r, f) ->
    (* existential range is not under the quantifier *)
    formula_occ depth (range_occ depth acc r) f
  | All_in (_, r, f) ->
    (* names in the range ARE under the ALL; names in the body are not *)
    formula_occ depth (range_occ (depth + 1) acc r) f
  | In_rel (_, r) | Member (_, r) -> range_occ depth acc r

and range_occ depth acc = function
  | Rel n -> { occ_target = Rel_name n; occ_depth = depth } :: acc
  | Select (r, _, args) ->
    List.fold_left (arg_occ depth) (range_occ depth acc r) args
  | Construct (r, c, args) ->
    let acc = { occ_target = App c; occ_depth = depth } :: acc in
    List.fold_left (arg_occ depth) (range_occ depth acc r) args
  | Comp branches -> List.fold_left (branch_occ depth) acc branches

and arg_occ depth acc = function
  | Arg_scalar _ -> acc
  | Arg_range r -> range_occ depth acc r

and branch_occ depth acc { binders; where; _ } =
  let acc =
    List.fold_left (fun acc (_, r) -> range_occ depth acc r) acc binders
  in
  formula_occ depth acc where

let occurrences_formula f = List.rev (formula_occ 0 [] f)
let occurrences_range r = List.rev (range_occ 0 [] r)
let occurrences_branches bs = List.rev (List.fold_left (branch_occ 0) [] bs)

(* A formula/expression is positive in [name] if every occurrence of that
   relation name has even depth. *)
let positive_in_formula f name =
  List.for_all
    (fun o -> o.occ_target <> Rel_name name || o.occ_depth mod 2 = 0)
    (occurrences_formula f)

let positive_in_branches bs name =
  List.for_all
    (fun o -> o.occ_target <> Rel_name name || o.occ_depth mod 2 = 0)
    (occurrences_branches bs)

(* ------------------------------------------------------------------ *)
(* Checking a constructor system *)

type violation = {
  v_constructor : string; (* the definition containing the occurrence *)
  v_occurrence : string; (* recursive application (or name) at fault  *)
  v_depth : int;
}

let pp_violation ppf v =
  Fmt.pf ppf
    "constructor %s: recursive occurrence of %s under %d NOT/ALL(s) (odd)"
    v.v_constructor v.v_occurrence v.v_depth

(* Check that every recursive application inside the given (mutually
   recursive) system of definitions satisfies positivity.  [defs] is the
   full system; occurrences of constructors outside the system are
   applications of already-checked, fully-computable relations and are
   exempt (they behave as constants during this system's iteration). *)
let check_system (defs : Defs.constructor_def list) =
  let in_system c =
    List.exists (fun (d : Defs.constructor_def) -> d.con_name = c) defs
  in
  let violations =
    List.concat_map
      (fun (d : Defs.constructor_def) ->
        List.filter_map
          (fun o ->
            match o.occ_target with
            | App c when in_system c && o.occ_depth mod 2 <> 0 ->
              Some
                {
                  v_constructor = d.con_name;
                  v_occurrence = c;
                  v_depth = o.occ_depth;
                }
            | App _ | Rel_name _ -> None)
          (occurrences_branches d.con_body))
      defs
  in
  if violations = [] then Ok () else Error violations

(* ------------------------------------------------------------------ *)
(* Whole-program check: partition constructors into strongly connected
   components of their application-dependency graph (Tarjan) and apply the
   positivity check to each component separately, so that a *non-recursive*
   use of another, independently computable constructor under NOT/ALL
   remains legal (it acts as a constant during this system's iteration). *)

let dependencies (d : Defs.constructor_def) =
  List.filter_map
    (fun o ->
      match o.occ_target with
      | App c -> Some c
      | Rel_name _ -> None)
    (occurrences_branches d.con_body)

let sccs (defs : Defs.constructor_def list) =
  let find name =
    List.find_opt (fun (d : Defs.constructor_def) -> d.con_name = name) defs
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let components = ref [] in
  let rec strongconnect (d : Defs.constructor_def) =
    let v = d.con_name in
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        match find w with
        | None -> () (* unknown constructor: typechecking reports it *)
        | Some dw ->
          if not (Hashtbl.mem index w) then begin
            strongconnect dw;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (dependencies d);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      components :=
        List.filter_map find comp :: !components
    end
  in
  List.iter
    (fun (d : Defs.constructor_def) ->
      if not (Hashtbl.mem index d.con_name) then strongconnect d)
    defs;
  List.rev !components

(* Per-SCC positivity for a whole program of constructor definitions. *)
let check_program defs =
  let violations =
    List.concat_map
      (fun comp ->
        match check_system comp with
        | Ok () -> []
        | Error vs -> vs)
      (sccs defs)
  in
  if violations = [] then Ok () else Error violations
