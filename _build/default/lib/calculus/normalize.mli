(** Negation normal form and polarity analysis (the §3.3 lemma's proof
    transformation): quantifiers are replaced by their duals and negations
    pushed inward until NOT remains only on membership literals; on the
    result, monotonicity is syntactically visible. *)

val nnf : Ast.formula -> Ast.formula
(** Push negations to the atoms (deMorgan, double negation, dual
    quantifiers [NOT SOME = ALL NOT], [NOT ALL = SOME NOT]). *)

val is_nnf : Ast.formula -> bool
(** NOT occurs only directly on [In_rel]/[Member] literals. *)

type polarity =
  | Positive
  | Negative

val flip : polarity -> polarity

type polar_occurrence = {
  po_target : Positivity.target;
  po_polarity : polarity;
}

val polarities_formula : Ast.formula -> polar_occurrence list
(** Polarity of every relation-name / application occurrence after
    normalization: negated literals and ALL-range positions flip. *)

val polarities_branches : Ast.branch list -> polar_occurrence list

val monotone_in_formula : Ast.formula -> Positivity.target -> bool
(** All occurrences of the target are positive — syntactic monotonicity.
    Positivity (even counts) implies this; the property tests check the
    implication semantically. *)

val monotone_in_branches : Ast.branch list -> Positivity.target -> bool

val nnf_branch : Ast.branch -> Ast.branch
(** Normalize the branch's WHERE formula. *)
