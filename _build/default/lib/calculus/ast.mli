(** Abstract syntax of the DBPL tuple relational calculus (paper §2–3).

    A {e comprehension} is a union of {e branches}; each branch binds tuple
    variables over range expressions, filters with a first-order formula,
    and projects through a target list:

    {v <f.front, b.back> OF EACH f IN Rel, EACH b IN Rel{ahead}: f.back = b.head v}

    Range expressions name base relations and may apply selectors
    ([Rel[s(args)]]) and constructors ([Rel{c(args)}]) — the paper's two
    abstraction mechanisms — or nest a comprehension (range nesting,
    [JaKo 83]). *)

open Dc_relation

type var = string
(** Tuple variables (bound by [EACH], [SOME], [ALL]). *)

type cmpop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type binop =
  | Add (** addition; string concatenation on [Str] *)
  | Sub
  | Mul

(** Scalar terms. *)
type term =
  | Const of Value.t
  | Field of var * string  (** [r.front] *)
  | Param of string  (** scalar parameter of a selector/constructor *)
  | Binop of binop * term * term

(** First-order formulas with range-coupled quantifiers. *)
type formula =
  | True
  | False
  | Cmp of cmpop * term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Some_in of var * range * formula  (** [SOME r IN range (p)] *)
  | All_in of var * range * formula  (** [ALL r IN range (p)] *)
  | In_rel of var * range  (** [r IN range] *)
  | Member of term list * range  (** [<t1, ..., tk> IN range] *)

(** Range expressions. *)
and range =
  | Rel of string  (** named relation (global, formal, or parameter) *)
  | Select of range * string * arg list  (** [Rel[s(args)]] *)
  | Construct of range * string * arg list  (** [Rel{c(args)}] *)
  | Comp of branch list  (** nested comprehension (union of branches) *)

and arg =
  | Arg_scalar of term
  | Arg_range of range

and branch = {
  binders : (var * range) list;  (** [EACH v IN range, ...] *)
  target : term list;  (** [[]] = identity projection of the sole binder *)
  where : formula;
}

(** {1 Smart constructors} *)

val conj : formula -> formula -> formula
(** Conjunction with unit/absorption simplification. *)

val disj : formula -> formula -> formula

val neg : formula -> formula
(** Negation with double-negation elimination. *)

val conj_list : formula list -> formula

val field : var -> string -> term
val int : int -> term
val str : string -> term
val eq : term -> term -> formula

val branch : ?where:formula -> ?target:term list -> (var * range) list -> branch

val identity_branch : ?v:var -> range -> branch
(** [EACH r IN range: TRUE] — copies the range verbatim. *)

val negate_cmpop : cmpop -> cmpop

val conjuncts : formula -> formula list
(** Top-level conjuncts; [True] yields []. *)

(** {1 Pretty-printing in the paper's concrete syntax} *)

val pp_cmpop : cmpop Fmt.t
val pp_binop : binop Fmt.t
val pp_term : term Fmt.t
val pp_formula : formula Fmt.t
val pp_range : range Fmt.t
val pp_arg : arg Fmt.t
val pp_branch : branch Fmt.t

val term_to_string : term -> string
val formula_to_string : formula -> string
val range_to_string : range -> string
