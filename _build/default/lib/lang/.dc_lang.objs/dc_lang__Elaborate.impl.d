lib/lang/elaborate.ml: Ast Buffer Database Dc_calculus Dc_compile Dc_core Dc_relation Defs Fmt List Option Parser Relation Schema String Surface Tuple Value
