lib/lang/parser.ml: Array Dc_calculus Fmt Lexer List String Surface Token
