lib/lang/lexer.ml: Buffer Fmt List String Token
