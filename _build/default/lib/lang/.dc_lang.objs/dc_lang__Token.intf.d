lib/lang/token.mli:
