lib/lang/surface.ml: Dc_calculus
