lib/lang/storage.ml: Ast Buffer Csv Database Dc_calculus Dc_core Dc_relation Defs Elaborate Filename Fmt In_channel List Out_channel Parser Positivity Relation Schema String Sys Value
