lib/lang/surface.mli: Dc_calculus
