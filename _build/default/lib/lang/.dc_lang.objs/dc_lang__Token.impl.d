lib/lang/token.ml: Fmt List
