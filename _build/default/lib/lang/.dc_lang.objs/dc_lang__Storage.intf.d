lib/lang/storage.mli: Database Dc_core
