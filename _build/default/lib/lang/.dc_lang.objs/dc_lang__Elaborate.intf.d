lib/lang/elaborate.mli: Database Dc_calculus Dc_core Surface
