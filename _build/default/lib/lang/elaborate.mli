(** Elaboration: resolve surface type names, lower the surface syntax onto
    the calculus AST, and execute declarations against a
    [Dc_core.Database] (the front half of the DBPL compiler). *)

open Dc_core
open Surface

exception Elab_error of string

type env
(** Elaboration state: the database plus type-alias tables and the
    accumulated QUERY/PRINT/EXPLAIN output. *)

val create : Database.t -> env

val lower_constructor : env -> constructor_decl -> Dc_calculus.Defs.constructor_def
(** Lower one constructor declaration (types resolved, body lowered). *)

val execute_decl : env -> decl -> unit
(** Execute one declaration/statement.  Note: [D_constructor] is defined
    individually here; use {!run} for programs with mutual recursion. *)

val run : env -> program -> string
(** Execute a whole program; consecutive CONSTRUCTOR declarations are
    defined as one group (so mutually recursive constructors typecheck —
    write them adjacently, as the paper's listings do).  Returns the
    accumulated QUERY/PRINT/EXPLAIN output. *)

val lower_query : env -> Surface.range -> Dc_calculus.Ast.range
(** Lower a standalone query range (no definition parameters in scope). *)

val run_string : ?db:Database.t -> string -> Database.t * string
(** Parse and run source text against a fresh (or given) database. *)
