(* Hand-written lexer for the DBPL surface language.

   Supports MODULA-2 style nested comments [(* ... *)], double-quoted
   string literals with backslash escapes, integers, reals, identifiers
   (case-sensitive; keywords are upper case as in the paper). *)

exception Lex_error of string

let lex_error line col fmt =
  Fmt.kstr (fun s -> raise (Lex_error (Fmt.str "%d:%d: %s" line col s))) fmt

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let rec skip_comment st depth start_line start_col =
  match peek st, peek2 st with
  | Some '*', Some ')' ->
    advance st;
    advance st;
    if depth > 1 then skip_comment st (depth - 1) start_line start_col
  | Some '(', Some '*' ->
    advance st;
    advance st;
    skip_comment st (depth + 1) start_line start_col
  | Some _, _ ->
    advance st;
    skip_comment st depth start_line start_col
  | None, _ -> lex_error start_line start_col "unterminated comment"

let lex_string st =
  let line = st.line and col = st.col in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> lex_error line col "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        loop ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
      | None -> lex_error line col "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c when is_digit c -> true | _ -> false) do
    advance st
  done;
  let is_float =
    match peek st, peek2 st with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c when is_digit c -> true | _ -> false) do
      advance st
    done;
    Token.Float_lit (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.Int_lit (int_of_string (String.sub st.src start (st.pos - start)))

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c when is_ident_char c -> true | _ -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s Token.keywords with
  | Some kw -> kw
  | None -> Token.Ident s

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit tok line col = tokens := { Token.tok; line; col } :: !tokens in
  let rec loop () =
    let line = st.line and col = st.col in
    match peek st with
    | None -> emit Token.Eof line col
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      loop ()
    | Some '(' when peek2 st = Some '*' ->
      advance st;
      advance st;
      skip_comment st 1 line col;
      loop ()
    | Some '"' ->
      emit (Token.String_lit (lex_string st)) line col;
      loop ()
    | Some c when is_digit c ->
      emit (lex_number st) line col;
      loop ()
    | Some c when is_ident_start c ->
      emit (lex_ident st) line col;
      loop ()
    | Some ':' when peek2 st = Some '=' ->
      advance st;
      advance st;
      emit Token.Assign line col;
      loop ()
    | Some '<' when peek2 st = Some '=' ->
      advance st;
      advance st;
      emit Token.Le line col;
      loop ()
    | Some '>' when peek2 st = Some '=' ->
      advance st;
      advance st;
      emit Token.Ge line col;
      loop ()
    | Some c ->
      let tok =
        match c with
        | ';' -> Token.Semi
        | ':' -> Token.Colon
        | ',' -> Token.Comma
        | '.' -> Token.Dot
        | '(' -> Token.Lparen
        | ')' -> Token.Rparen
        | '[' -> Token.Lbracket
        | ']' -> Token.Rbracket
        | '{' -> Token.Lbrace
        | '}' -> Token.Rbrace
        | '<' -> Token.Lt
        | '>' -> Token.Gt
        | '=' -> Token.Eq
        | '#' -> Token.Ne
        | '+' -> Token.Plus
        | '-' -> Token.Minus
        | '*' -> Token.Star
        | c -> lex_error line col "unexpected character %c" c
      in
      advance st;
      emit tok line col;
      loop ()
  in
  loop ();
  List.rev !tokens
