(** Lexer for the DBPL surface language: MODULA-2 style nested comments
    [(* ... *)], double-quoted strings with backslash escapes, integers,
    reals, case-sensitive identifiers (keywords upper case, as in the
    paper's listings). *)

exception Lex_error of string
(** Message includes [line:col]. *)

val tokenize : string -> Token.located list
(** Whole input to tokens, ending with {!Token.Eof}. @raise Lex_error *)
