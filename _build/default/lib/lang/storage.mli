(** Database persistence: one CSV per relation plus a catalog of
    declarations written in the DBPL surface syntax.  Loading replays the
    catalog through the ordinary front end (parser, type checker,
    positivity check), so a stored database re-validates itself. *)

open Dc_core

exception Storage_error of string

val save : Database.t -> string -> unit
(** [save db dir] writes [dir/catalog.dbpl] and [dir/<relation>.csv] files
    (the directory is created if missing).  Mutually recursive
    constructors are emitted adjacently, in dependency order.
    @raise Storage_error *)

val load : ?db:Database.t -> string -> Database.t
(** Replay a saved database into a fresh (or given) database.
    @raise Storage_error / parser / typechecking / positivity errors as
    the catalog is re-elaborated. *)
