(** Recursive-descent parser for the DBPL surface language (the concrete
    syntax of the paper's listings plus a small command layer — see
    [examples/cad_scene.dbpl] and the README grammar tour). *)

exception Parse_error of string
(** Message includes [line:col] and the offending token. *)

val parse : string -> Surface.program
(** Parse a whole program. @raise Parse_error / Lexer.Lex_error *)

val parse_range : string -> Surface.range
(** Parse a single range expression (must consume all input). *)
