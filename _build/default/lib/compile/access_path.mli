(** Logical and physical access paths for parameterized selectors (paper
    §4, runtime level): a logical path is a compiled procedure re-filtering
    per call; a physical path materializes the partition of the base
    relation by the parameter values — "generated only in case of heavy
    query usage". *)

open Dc_relation
open Dc_calculus

exception Unsupported of string

module Logical : sig
  type t

  val create : Eval.env -> Defs.selector_def -> Relation.t -> t
  val apply : t -> Eval.arg_value list -> Relation.t
  (** Filter the base per call. *)
end

module Physical : sig
  type t

  val partition_attrs : Defs.selector_def -> string list
  (** The attributes the selector equates with its parameters, in parameter
      order.  @raise Unsupported unless the predicate is a conjunction of
      [attr = param] with every scalar parameter used exactly once. *)

  val build : Defs.selector_def -> Relation.t -> t
  (** Materialize the partition (hash index on the parameter-bound
      attributes). @raise Unsupported *)

  val apply : t -> Eval.arg_value list -> Relation.t
  (** Answer one parameter combination by index lookup. *)
end
