(* Augmented quant graphs (paper §4, Fig 3).

   A quant graph represents a relational calculus query: a node for each
   tuple variable with its range definition and a directed arc for each
   join term.  The augmented graph adds special nodes for constructor heads
   and arcs for the attribute relationships between the result relation and
   the range definitions, plus arcs from each quantified node with a
   constructed range to the corresponding constructor head (yielding the
   equivalent of a clause interconnectivity graph [Sick 76]).  Cycles in
   the augmented graph correspond to recursion; the planner generates
   fixpoint plans for them. *)

open Dc_calculus

type node =
  | Quant of {
      var : Ast.var;
      range : Ast.range;
      owner : string option; (* constructor whose body this binder is in *)
    }
  | Head of { con : string } (* constructor head node *)

type edge = {
  src : int;
  dst : int;
  label : string;
}

type t = {
  nodes : node array;
  edges : edge list;
}

let node_label = function
  | Quant { var; range; _ } -> Fmt.str "EACH %s IN %a" var Ast.pp_range range
  | Head { con } -> Fmt.str "CONSTRUCTOR %s" con

(* ------------------------------------------------------------------ *)
(* Construction *)

type builder = {
  mutable b_nodes : node list; (* reversed *)
  mutable b_count : int;
  mutable b_edges : edge list;
  mutable b_heads : (string * int) list; (* constructor -> head node *)
  lookup : string -> Defs.constructor_def option;
}

let add_node b n =
  b.b_nodes <- n :: b.b_nodes;
  b.b_count <- b.b_count + 1;
  b.b_count - 1

let add_edge b src dst label = b.b_edges <- { src; dst; label } :: b.b_edges

(* join-term arcs between binder nodes of one branch: for each equality
   conjunct v1.a1 = v2.a2 an arc in quantifier (program) order *)
let join_edges b index_of (branch : Ast.branch) =
  List.iter
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Field (v1, a1), Ast.Field (v2, a2)) -> (
        match index_of v1, index_of v2 with
        | Some i, Some j when i <> j ->
          add_edge b i j (Fmt.str "%s=%s" a1 a2)
        | _ -> ())
      | _ -> ())
    (Ast.conjuncts branch.where)

(* Expand a constructor definition into the graph (once per name): a head
   node, one quant node per binder of each branch, target arcs head ->
   binder ("attribute relationships"), join arcs among binders, and
   application arcs binder -> head for constructed ranges. *)
let rec head_node b con =
  match List.assoc_opt con b.b_heads with
  | Some i -> i
  | None -> (
    match b.lookup con with
    | None -> add_node b (Head { con }) (* unknown: bare head node *)
    | Some def ->
      let h = add_node b (Head { con }) in
      b.b_heads <- (con, h) :: b.b_heads;
      List.iter
        (fun (branch : Ast.branch) ->
          let binder_nodes =
            List.map
              (fun (v, range) ->
                (v, add_node b (Quant { var = v; range; owner = Some con })))
              branch.binders
          in
          let index_of v = List.assoc_opt v binder_nodes in
          (* attribute-relationship arcs from the head to the binders that
             feed the target list *)
          (match branch.target with
          | [] ->
            List.iter (fun (v, i) -> add_edge b h i (Fmt.str "%s=*" v)) binder_nodes
          | ts ->
            List.iteri
              (fun pos t ->
                match t with
                | Ast.Field (v, a) -> (
                  match index_of v with
                  | Some i ->
                    add_edge b h i
                      (Fmt.str "col%d=%s.%s" pos v a)
                  | None -> ())
                | _ -> ())
              ts);
          join_edges b index_of branch;
          (* application arcs: binder with constructed range -> head *)
          List.iter
            (fun (v, range) ->
              List.iter
                (fun (app : Vars.app) ->
                  let i = List.assoc v binder_nodes in
                  let h' = head_node b app.app_con in
                  add_edge b i h' "applies")
                (Vars.apps_of_range range))
            branch.binders)
        def.con_body;
      h)

let build ~lookup (query : Ast.range) =
  let b =
    { b_nodes = []; b_count = 0; b_edges = []; b_heads = []; lookup }
  in
  (match query with
  | Ast.Comp branches ->
    List.iter
      (fun (branch : Ast.branch) ->
        let binder_nodes =
          List.map
            (fun (v, range) ->
              (v, add_node b (Quant { var = v; range; owner = None })))
            branch.binders
        in
        join_edges b (fun v -> List.assoc_opt v binder_nodes) branch;
        List.iter
          (fun (v, range) ->
            List.iter
              (fun (app : Vars.app) ->
                let i = List.assoc v binder_nodes in
                let h = head_node b app.app_con in
                add_edge b i h "applies")
              (Vars.apps_of_range range))
          branch.binders)
      branches
  | range ->
    (* bare range: one synthetic quant node *)
    let i = add_node b (Quant { var = "r"; range; owner = None }) in
    List.iter
      (fun (app : Vars.app) ->
        let h = head_node b app.app_con in
        add_edge b i h "applies")
      (Vars.apps_of_range range));
  { nodes = Array.of_list (List.rev b.b_nodes); edges = List.rev b.b_edges }

(* ------------------------------------------------------------------ *)
(* Analysis *)

(* Strongly connected components of the graph (Tarjan over node indices). *)
let sccs g =
  let n = Array.length g.nodes in
  let succ = Array.make n [] in
  List.iter (fun e -> succ.(e.src) <- e.dst :: succ.(e.src)) g.edges;
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and next = ref 0 and comps = ref [] in
  let rec strong v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      succ.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  List.rev !comps

let has_self_edge g v = List.exists (fun e -> e.src = v && e.dst = v) g.edges

(* Node sets lying on recursive cycles. *)
let recursive_components g =
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> has_self_edge g v
      | _ -> List.length comp > 1)
    (sccs g)

let is_recursive g = recursive_components g <> []

(* Constructors involved in recursion (head nodes inside cyclic SCCs). *)
let recursive_constructors g =
  List.concat_map
    (fun comp ->
      List.filter_map
        (fun v ->
          match g.nodes.(v) with
          | Head { con } -> Some con
          | Quant _ -> None)
        comp)
    (recursive_components g)
  |> List.sort_uniq String.compare

let pp ppf g =
  Fmt.pf ppf "augmented quant graph: %d nodes, %d edges@."
    (Array.length g.nodes) (List.length g.edges);
  Array.iteri (fun i n -> Fmt.pf ppf "  [%d] %s@." i (node_label n)) g.nodes;
  List.iter
    (fun e -> Fmt.pf ppf "  %d -> %d  (%s)@." e.src e.dst e.label)
    g.edges;
  match recursive_components g with
  | [] -> Fmt.pf ppf "  acyclic: decompile as view"
  | comps ->
    List.iter
      (fun comp ->
        Fmt.pf ppf "  recursive cycle through nodes {%s}@."
          (String.concat ", " (List.map string_of_int comp)))
      comps
