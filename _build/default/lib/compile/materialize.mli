(** Materialized constructed relations with incremental maintenance under
    base insertions — the access-path maintenance paper §4 refers to
    ([ShTZ 84]).  Insertions seed the next fixpoint with the cached value
    (sound for monotone systems under base growth); deletions force a
    recomputation. *)

open Dc_relation
open Dc_calculus
open Dc_core

type t

val create :
  Database.t -> constructor:string -> base:string -> args:Ast.arg list -> t
(** Materialize [base{constructor(args)}] (typechecked, then computed).
    @raise Database.Error on unknown names. *)

val application : t -> Ast.range
(** The application this view caches. *)

val value : t -> Relation.t
(** Current cached value. *)

val last_stats : t -> Fixpoint.stats
(** Fixpoint statistics of the last (re)computation — incremental runs
    show few rounds / small deltas. *)

val refresh : t -> unit
(** Recompute from bottom. *)

val insert : t -> Tuple.t list -> unit
(** Insert into the base relation and maintain the view incrementally
    (seeded fixpoint). *)

val delete : t -> Tuple.t -> unit
(** Delete from the base; recomputes (seeding is unsound under
    shrinkage). *)
