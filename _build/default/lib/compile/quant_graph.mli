(** Augmented quant graphs (paper §4, Fig 3): quant nodes per tuple
    variable with join-term arcs, plus special constructor-head nodes with
    attribute-relationship arcs and application arcs — the equivalent of a
    clause interconnectivity graph [Sick 76].  Cycles correspond to
    recursion. *)

open Dc_calculus

type node =
  | Quant of {
      var : Ast.var;
      range : Ast.range;
      owner : string option;  (** constructor owning this binder, if any *)
    }
  | Head of { con : string }

type edge = {
  src : int;
  dst : int;
  label : string;
}

type t = {
  nodes : node array;
  edges : edge list;
}

val node_label : node -> string

val build :
  lookup:(string -> Defs.constructor_def option) -> Ast.range -> t
(** Build the augmented graph of a query, expanding each referenced
    constructor definition once. *)

val sccs : t -> int list list
(** Strongly connected components over node indices. *)

val recursive_components : t -> int list list
(** Components lying on cycles (size > 1, or a self edge). *)

val is_recursive : t -> bool

val recursive_constructors : t -> string list
(** Constructors whose head nodes lie on recursive cycles. *)

val pp : t Fmt.t
(** Text rendering in the spirit of the paper's Fig 3. *)
