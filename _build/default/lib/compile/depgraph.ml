(* The type-checking-level analysis of paper §4: the dependency graph of
   constructor definitions and its partition into strongly connected
   components ("a preliminary partitioning of the set of constructor
   definitions in disconnected graphs", refined to SCCs).

   The planner consults this graph to decide, per application, whether a
   definition can be inlined as a view (acyclic) or needs a fixpoint plan
   (recursive cycle). *)

open Dc_calculus

type t = {
  defs : Defs.constructor_def list;
  components : Defs.constructor_def list list; (* SCCs, dependency order *)
}

let build (defs : Defs.constructor_def list) =
  { defs; components = Positivity.sccs defs }

let components g = g.components

(* A constructor is recursive when its SCC has more than one member or it
   applies itself directly. *)
let is_recursive g name =
  List.exists
    (fun comp ->
      List.exists (fun (d : Defs.constructor_def) -> d.con_name = name) comp
      && (List.length comp > 1
         || List.exists
              (fun (d : Defs.constructor_def) ->
                d.con_name = name
                && List.mem name (Positivity.dependencies d))
              comp))
    g.components

let component_of g name =
  List.find_opt
    (fun comp ->
      List.exists (fun (d : Defs.constructor_def) -> d.con_name = name) comp)
    g.components

let find g name =
  List.find_opt (fun (d : Defs.constructor_def) -> d.con_name = name) g.defs

(* Direct dependencies of a constructor (other constructors it applies). *)
let dependencies g name =
  match find g name with
  | None -> []
  | Some d -> List.sort_uniq String.compare (Positivity.dependencies d)

let pp ppf g =
  List.iteri
    (fun i comp ->
      let names = List.map (fun (d : Defs.constructor_def) -> d.con_name) comp in
      let recursive =
        match names with
        | [ n ] -> is_recursive g n
        | _ -> true
      in
      Fmt.pf ppf "component %d%s: %s@." i
        (if recursive then " (recursive)" else "")
        (String.concat ", " names);
      List.iter
        (fun (d : Defs.constructor_def) ->
          match Positivity.dependencies d with
          | [] -> ()
          | deps ->
            Fmt.pf ppf "  %s -> %s@." d.con_name
              (String.concat ", " (List.sort_uniq String.compare deps)))
        comp)
    g.components
