(* Range-nesting rewrites (paper §4, rules N1–N3 of [JaKo 83]) and
   definition inlining ("decompilation").

   N1:  {EACH r IN R: p1 AND p2}  <=>  {EACH r IN {EACH r' IN R: p1}: p2}
   N2:  SOME r IN R (p1 AND p2)   <=>  SOME r IN {EACH r' IN R: p1} (p2)
   N3:  ALL r IN R (NOT p1 OR p2) <=>  ALL r IN {EACH r' IN R: p1} (p2)

   The optimizer mostly uses the <== direction ("understand and optimize a
   query in terms of base relations"): selector applications and
   non-recursive constructor applications are replaced by their definitions
   (Cases 1–3 of §4), then single-branch nested comprehensions are
   flattened into the surrounding predicate with N1–N3. *)

open Dc_calculus
open Ast

(* ------------------------------------------------------------------ *)
(* Fresh-variable renaming, for standardizing inlined bodies apart. *)

let fresh_counter = ref 0

let fresh_var v =
  incr fresh_counter;
  Fmt.str "%s~%d" v !fresh_counter

(* Rename the binder variables of a branch (and all field references to
   them in the branch's own target and predicate). *)
let rec rename_term mapping = function
  | Const _ as t -> t
  | Param _ as t -> t
  | Field (v, a) -> (
    match List.assoc_opt v mapping with
    | Some v' -> Field (v', a)
    | None -> Field (v, a))
  | Binop (op, a, b) -> Binop (op, rename_term mapping a, rename_term mapping b)

let rec rename_formula mapping = function
  | (True | False) as f -> f
  | Cmp (op, a, b) -> Cmp (op, rename_term mapping a, rename_term mapping b)
  | Not f -> Not (rename_formula mapping f)
  | And (a, b) -> And (rename_formula mapping a, rename_formula mapping b)
  | Or (a, b) -> Or (rename_formula mapping a, rename_formula mapping b)
  | Some_in (v, r, f) ->
    (* quantifier shadows v *)
    Some_in (v, rename_range mapping r, rename_formula (List.remove_assoc v mapping) f)
  | All_in (v, r, f) ->
    All_in (v, rename_range mapping r, rename_formula (List.remove_assoc v mapping) f)
  | In_rel (v, r) ->
    let v' = Option.value (List.assoc_opt v mapping) ~default:v in
    In_rel (v', rename_range mapping r)
  | Member (ts, r) ->
    Member (List.map (rename_term mapping) ts, rename_range mapping r)

and rename_range mapping = function
  | Rel _ as r -> r
  | Select (r, s, args) ->
    Select (rename_range mapping r, s, List.map (rename_arg mapping) args)
  | Construct (r, c, args) ->
    Construct (rename_range mapping r, c, List.map (rename_arg mapping) args)
  | Comp branches -> Comp (List.map (rename_branch mapping) branches)

and rename_arg mapping = function
  | Arg_scalar t -> Arg_scalar (rename_term mapping t)
  | Arg_range r -> Arg_range (rename_range mapping r)

and rename_branch mapping (b : branch) =
  (* the branch's own binders shadow the outer mapping *)
  let mapping =
    List.fold_left (fun m (v, _) -> List.remove_assoc v m) mapping b.binders
  in
  {
    binders = List.map (fun (v, r) -> (v, rename_range mapping r)) b.binders;
    target = List.map (rename_term mapping) b.target;
    where = rename_formula mapping b.where;
  }

let standardize_apart (b : branch) =
  let mapping = List.map (fun (v, _) -> (v, fresh_var v)) b.binders in
  {
    binders = List.map (fun (v, r) -> (List.assoc v mapping, r)) b.binders;
    target = List.map (rename_term mapping) b.target;
    where = rename_formula mapping b.where;
  }

(* ------------------------------------------------------------------ *)
(* Positional attribute retyping.

   A definition body names attributes after its *formal* types; the actual
   base/argument relations may use different (positionally compatible)
   names.  Before substituting actual ranges for the formal names, field
   references through variables bound over a formal are renamed to the
   actual attribute at the same position.  [info name] yields the
   (formal schema, actual schema) pair for substituted names. *)

let retype_term vmap = function
  | Field (v, a) as t -> (
    match List.assoc_opt v vmap with
    | Some (formal, actual) -> (
      match Dc_relation.Schema.find_attr formal a with
      | Some i -> Field (v, Dc_relation.Schema.attr_name actual i)
      | None -> t)
    | None -> t)
  | t -> t

let rec retype_term_deep vmap = function
  | Binop (op, a, b) ->
    Binop (op, retype_term_deep vmap a, retype_term_deep vmap b)
  | t -> retype_term vmap t

let bindings_of info vmap binders =
  let vmap =
    List.fold_left (fun m (v, _) -> List.remove_assoc v m) vmap binders
  in
  List.fold_left
    (fun m (v, r) ->
      match r with
      | Rel n -> (
        match info n with
        | Some pair -> (v, pair) :: m
        | None -> m)
      | _ -> m)
    vmap binders

let rec retype_formula info vmap = function
  | (True | False) as f -> f
  | Cmp (op, a, b) ->
    Cmp (op, retype_term_deep vmap a, retype_term_deep vmap b)
  | Not f -> Not (retype_formula info vmap f)
  | And (a, b) -> And (retype_formula info vmap a, retype_formula info vmap b)
  | Or (a, b) -> Or (retype_formula info vmap a, retype_formula info vmap b)
  | Some_in (v, r, f) ->
    let vmap' = bindings_of info vmap [ (v, r) ] in
    Some_in (v, retype_range info vmap r, retype_formula info vmap' f)
  | All_in (v, r, f) ->
    let vmap' = bindings_of info vmap [ (v, r) ] in
    All_in (v, retype_range info vmap r, retype_formula info vmap' f)
  | In_rel (v, r) -> In_rel (v, retype_range info vmap r)
  | Member (ts, r) ->
    Member (List.map (retype_term_deep vmap) ts, retype_range info vmap r)

and retype_range info vmap = function
  | Rel _ as r -> r
  | Select (r, s, args) ->
    Select (retype_range info vmap r, s, List.map (retype_arg info vmap) args)
  | Construct (r, c, args) ->
    Construct (retype_range info vmap r, c, List.map (retype_arg info vmap) args)
  | Comp branches -> Comp (List.map (retype_branch info vmap) branches)

and retype_arg info vmap = function
  | Arg_scalar t -> Arg_scalar (retype_term_deep vmap t)
  | Arg_range r -> Arg_range (retype_range info vmap r)

and retype_branch info vmap (b : branch) =
  let vmap' = bindings_of info vmap b.binders in
  {
    binders = List.map (fun (v, r) -> (v, retype_range info vmap r)) b.binders;
    target = List.map (retype_term_deep vmap') b.target;
    where = retype_formula info vmap' b.where;
  }

(* ------------------------------------------------------------------ *)
(* Definition instantiation *)

(* Close a selector definition over an actual base range and arguments:
   Rel[s(args)]  ~>  {EACH v IN base: pred[params := args]}
   (paper §4, Case 1).  Relation-valued arguments substitute ranges for the
   parameter names. *)
let subst_info ~schema_of ~formal ~formal_schema ~range_subst ~param_schemas
    base name =
  if String.equal name formal then Some (formal_schema, schema_of base)
  else
    match List.assoc_opt name range_subst with
    | Some actual -> (
      match List.assoc_opt name param_schemas with
      | Some fs -> Some (fs, schema_of actual)
      | None -> None)
    | None -> None

let split_args who params (args : arg list) =
  List.fold_left2
    (fun (ss, rs, ps) param arg ->
      match param, arg with
      | Defs.Scalar_param (n, _), Arg_scalar t -> ((n, t) :: ss, rs, ps)
      | Defs.Rel_param (n, schema), Arg_range r ->
        (ss, (n, r) :: rs, (n, schema) :: ps)
      | _ -> invalid_arg (who ^ ": argument mismatch"))
    ([], [], []) params args

let instantiate_selector ~schema_of (def : Defs.selector_def) base
    (args : arg list) =
  let scalar_subst, range_subst, param_schemas =
    split_args "instantiate_selector" def.sel_params args
  in
  let info =
    subst_info ~schema_of ~formal:def.sel_formal
      ~formal_schema:def.sel_formal_schema ~range_subst ~param_schemas base
  in
  let substitute_rels =
    Morph.map_formula (function
      | Rel n when n = def.sel_formal -> base
      | Rel n as r -> (
        match List.assoc_opt n range_subst with
        | Some r' -> r'
        | None -> r)
      | r -> r)
  in
  let pred =
    def.sel_pred
    |> retype_formula info
         (match info def.sel_formal with
         | Some pair -> [ (def.sel_var, pair) ]
         | None -> [])
    |> Morph.subst_params_formula scalar_subst
    |> substitute_rels
  in
  let v = fresh_var def.sel_var in
  let pred = rename_formula [ (def.sel_var, v) ] pred in
  Comp [ { binders = [ (v, base) ]; target = []; where = pred } ]

(* Close a (non-recursive!) constructor definition over an actual base
   range and arguments:  Base{c(args)}  ~>  its body with the formal and
   parameters substituted and binders standardized apart (§4 Cases 2–3:
   join and union).  The caller is responsible for only inlining acyclic
   constructors — inlining a recursive one loops. *)
let instantiate_constructor ~schema_of (def : Defs.constructor_def) base
    (args : arg list) =
  let scalar_subst, range_subst, param_schemas =
    split_args "instantiate_constructor" def.con_params args
  in
  let info =
    subst_info ~schema_of ~formal:def.con_formal
      ~formal_schema:def.con_formal_schema ~range_subst ~param_schemas base
  in
  let substitute =
    Morph.map_branch (function
      | Rel n when n = def.con_formal -> base
      | Rel n as r -> (
        match List.assoc_opt n range_subst with
        | Some r' -> r'
        | None -> r)
      | r -> r)
  in
  let branches =
    List.map
      (fun b ->
        standardize_apart
          (substitute
             (Morph.subst_params_branch scalar_subst (retype_branch info [] b))))
      def.con_body
  in
  Comp branches

(* ------------------------------------------------------------------ *)
(* N1 flattening: merge single-branch nested comprehension ranges into the
   surrounding branch. *)

(* A nested Comp used as a binder range can be fused when it has a single
   branch whose target is the identity.  The inner binders are hoisted and
   the inner predicate conjoined; the bound variable is renamed to the
   inner binder's variable. *)
let rec flatten_branch (b : branch) : branch =
  let rec expand binders target where = function
    | [] -> { binders = List.rev binders; target; where }
    | (v, range) :: rest -> (
      match flatten_range range with
      | Comp [ inner ] when inner.target = [] -> (
        match inner.binders with
        | [ (iv, ir) ] ->
          (* one inner binder: rename it to v, hoist its predicate *)
          let pred = rename_formula [ (iv, v) ] inner.where in
          expand ((v, ir) :: binders) target (conj where pred) rest
        | _ -> expand ((v, Comp [ inner ]) :: binders) target where rest)
      | range -> expand ((v, range) :: binders) target where rest)
  in
  expand [] b.target b.where b.binders

and flatten_range = function
  | Rel _ as r -> r
  | Select (r, s, args) -> Select (flatten_range r, s, args)
  | Construct (r, c, args) -> Construct (flatten_range r, c, args)
  | Comp branches -> (
    (* fuse singleton identity comps upward: {EACH r IN {..}: TRUE} *)
    let branches = List.map flatten_branch branches in
    match branches with
    | [ { binders = [ (_, (Comp _ as inner)) ]; target = []; where = True } ] ->
      inner
    | _ -> Comp branches)

(* N2/N3: the same fusion inside quantifier ranges. *)
let rec flatten_formula = function
  | (True | False | Cmp _) as f -> f
  | Not f -> Not (flatten_formula f)
  | And (a, b) -> And (flatten_formula a, flatten_formula b)
  | Or (a, b) -> Or (flatten_formula a, flatten_formula b)
  | Some_in (v, r, f) -> (
    match flatten_range r with
    | Comp [ { binders = [ (iv, ir) ]; target = []; where } ] ->
      (* N2: SOME v IN {EACH iv IN ir: p} (f) => SOME v IN ir (p AND f) *)
      Some_in (v, ir, conj (rename_formula [ (iv, v) ] where) (flatten_formula f))
    | r -> Some_in (v, r, flatten_formula f))
  | All_in (v, r, f) -> (
    match flatten_range r with
    | Comp [ { binders = [ (iv, ir) ]; target = []; where } ] ->
      (* N3: ALL v IN {EACH iv IN ir: p} (f) => ALL v IN ir (NOT p OR f) *)
      All_in
        (v, ir, disj (neg (rename_formula [ (iv, v) ] where)) (flatten_formula f))
    | r -> All_in (v, r, flatten_formula f))
  | In_rel (v, r) -> In_rel (v, flatten_range r)
  | Member (ts, r) -> Member (ts, flatten_range r)

(* ------------------------------------------------------------------ *)
(* Whole-query decompilation: inline every selector application and every
   acyclic constructor application, then flatten.  [is_recursive] guards
   constructor inlining. *)

let decompile ~schema_of ~selector_of ~constructor_of ~is_recursive
    (query : range) =
  (* The inlined comprehension's inferred attribute names come from its
     target terms, not from the constructor's declared result type, so
     every consumer of a replaced range retypes its field references
     positionally (old schema -> new schema). *)
  let renamed old_schema new_schema =
    if
      Dc_relation.Schema.attr_names old_schema
      = Dc_relation.Schema.attr_names new_schema
    then None
    else Some (old_schema, new_schema)
  in
  let rec dec_range r =
    match r with
    | Rel _ -> r
    | Select (base, s, args) -> (
      let base = dec_range base in
      let args = List.map dec_arg args in
      match selector_of s with
      | Some def ->
        flatten_range (dec_range (instantiate_selector ~schema_of def base args))
      | None -> Select (base, s, args))
    | Construct (base, c, args) -> (
      let base = dec_range base in
      let args = List.map dec_arg args in
      match constructor_of c with
      | Some def when not (is_recursive c) ->
        flatten_range
          (dec_range (instantiate_constructor ~schema_of def base args))
      | _ -> Construct (base, c, args))
    | Comp branches -> flatten_range (Comp (List.map dec_branch branches))

  and dec_arg = function
    | Arg_scalar t -> Arg_scalar t
    | Arg_range r -> Arg_range (dec_range r)

  and dec_binding (v, r) =
    let old_schema = schema_of r in
    let r' = dec_range r in
    let mapping =
      Option.map (fun pair -> (v, pair)) (renamed old_schema (schema_of r'))
    in
    ((v, r'), mapping)

  and dec_branch (b : branch) =
    let binders, mappings =
      List.fold_left
        (fun (bs, ms) binding ->
          let binding', mapping = dec_binding binding in
          (bs @ [ binding' ], ms @ Option.to_list mapping))
        ([], []) b.binders
    in
    let where = dec_formula b.where in
    if mappings = [] then { binders; target = b.target; where }
    else
      {
        binders;
        target = List.map (retype_term_deep mappings) b.target;
        where = retype_formula (fun _ -> None) mappings where;
      }

  and dec_formula = function
    | (True | False | Cmp _) as f -> f
    | Not f -> Not (dec_formula f)
    | And (a, b) -> And (dec_formula a, dec_formula b)
    | Or (a, b) -> Or (dec_formula a, dec_formula b)
    | Some_in (v, r, f) -> dec_quant (fun (v, r, f) -> Some_in (v, r, f)) v r f
    | All_in (v, r, f) -> dec_quant (fun (v, r, f) -> All_in (v, r, f)) v r f
    | In_rel (v, r) -> In_rel (v, dec_range r)
    | Member (ts, r) -> Member (ts, dec_range r)

  and dec_quant mk v r f =
    let (v, r'), mapping = dec_binding (v, r) in
    let f = dec_formula f in
    let f =
      match mapping with
      | Some m -> retype_formula (fun _ -> None) [ m ] f
      | None -> f
    in
    mk (v, r', f)
  in
  dec_range query
