(** Range-nesting rewrites (paper §4, rules N1–N3 of [JaKo 83]) and
    definition inlining ("decompilation"):

    {v
    N1: {EACH r IN R: p1 AND p2}  <=> {EACH r IN {EACH r' IN R: p1}: p2}
    N2: SOME r IN R (p1 AND p2)   <=> SOME r IN {EACH r' IN R: p1} (p2)
    N3: ALL r IN R (NOT p1 OR p2) <=> ALL r IN {EACH r' IN R: p1} (p2)
    v}

    The optimizer uses the [<==] direction: selector and (acyclic)
    constructor applications are replaced by their instantiated
    definitions, then single-branch nested comprehensions are flattened
    back into the surrounding predicate. *)

open Dc_calculus
open Ast

val fresh_var : var -> var
(** Globally fresh variant of a variable name. *)

val rename_formula : (var * var) list -> formula -> formula
(** Rename free tuple variables (capture-avoiding w.r.t. binders). *)

val rename_range : (var * var) list -> range -> range
val rename_branch : (var * var) list -> branch -> branch

val standardize_apart : branch -> branch
(** Fresh names for all the branch's binders. *)

val retype_branch :
  (string -> (Dc_relation.Schema.t * Dc_relation.Schema.t) option) ->
  (var * (Dc_relation.Schema.t * Dc_relation.Schema.t)) list ->
  branch ->
  branch
(** Positional attribute retyping: [info name] gives the (formal, actual)
    schema pair for names about to be substituted; field references through
    variables bound over such names are renamed to the actual attribute at
    the same position. *)

val retype_formula :
  (string -> (Dc_relation.Schema.t * Dc_relation.Schema.t) option) ->
  (var * (Dc_relation.Schema.t * Dc_relation.Schema.t)) list ->
  formula ->
  formula

val instantiate_selector :
  schema_of:(range -> Dc_relation.Schema.t) ->
  Defs.selector_def ->
  range ->
  arg list ->
  range
(** Close a selector over an actual base and arguments:
    [Rel[s(args)] ~> {EACH v IN base: pred[params := args]}] (§4 Case 1). *)

val instantiate_constructor :
  schema_of:(range -> Dc_relation.Schema.t) ->
  Defs.constructor_def ->
  range ->
  arg list ->
  range
(** Close a constructor over an actual base and arguments (§4 Cases 2–3):
    its body with formal/parameters substituted, attributes retyped, and
    binders standardized apart.  Only sound to {e inline} for acyclic
    definitions — the caller guards recursion. *)

val flatten_branch : branch -> branch
(** N1 [<==]: merge single-binder identity comprehension ranges into the
    surrounding branch. *)

val flatten_range : range -> range
val flatten_formula : formula -> formula
(** N2/N3 [<==] inside quantifier ranges. *)

val decompile :
  schema_of:(range -> Dc_relation.Schema.t) ->
  selector_of:(string -> Defs.selector_def option) ->
  constructor_of:(string -> Defs.constructor_def option) ->
  is_recursive:(string -> bool) ->
  range ->
  range
(** Inline every selector application and every acyclic constructor
    application, then flatten, to a fixed point. *)
