(** Physical query plans — the compiled form of application-free calculus
    queries (paper §4: compilation decoupled from execution).

    A plan is a union of branch pipelines; each pipeline binds its
    variables by scans or indexed lookups (keyed by equality conjuncts on
    previously bound variables), with residual filters attached to the
    earliest step at which they are closed. *)

open Dc_relation
open Dc_calculus
open Ast

exception Not_compilable of string
(** Raised on unresolved selector/constructor applications (decompile
    first) or free parameters. *)

type source =
  | Src_rel of string  (** named relation, resolved at run time *)
  | Src_comp of t  (** nested compiled comprehension *)

and access =
  | Full_scan
  | Index_lookup of (string * term) list  (** attr = closed term *)

and step = {
  s_var : var;
  s_source : source;
  s_access : access;
  s_filters : formula list;
  s_correlated : bool;
      (** source references earlier binders: evaluated per outer binding *)
}

and branch_plan = {
  bp_prefilters : formula list;
  bp_steps : step list;
  bp_target : term list;  (** [[]] = identity of the single step *)
}

and t = {
  p_branches : branch_plan list;
  p_schema : Schema.t;
}

val of_range : schema_of_rel:(string -> Schema.t) -> Ast.range -> t
(** Compile a query range. @raise Not_compilable *)

val run : ?use_indexes:bool -> Eval.env -> t -> Relation.t
(** Execute against the environment's relations.  [use_indexes:false]
    degrades indexed lookups to filtered scans (the E11 ablation measuring
    what hash-join scheduling buys). *)

val pp : t Fmt.t
(** Readable pipeline rendering (used by EXPLAIN). *)
