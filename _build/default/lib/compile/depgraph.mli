(** The type-checking-level analysis of paper §4: the dependency graph of
    constructor definitions partitioned into strongly connected components.
    The planner consults it to decide, per application, between inlining
    (acyclic) and a fixpoint plan (recursive cycle). *)

open Dc_calculus

type t

val build : Defs.constructor_def list -> t

val components : t -> Defs.constructor_def list list
(** SCCs in dependency order. *)

val is_recursive : t -> string -> bool
(** In a multi-member SCC, or applies itself directly. *)

val component_of : t -> string -> Defs.constructor_def list option
val find : t -> string -> Defs.constructor_def option

val dependencies : t -> string -> string list
(** Distinct constructors a definition applies. *)

val pp : t Fmt.t
