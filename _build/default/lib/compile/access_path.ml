(* Logical and physical access paths for parameterized selectors (paper §4,
   runtime level).

   "A logical access path is a compiled procedure with dummy constants.  A
   physical access path actually materializes a relation corresponding to
   the query with the constants used as variables, and partitions it
   according to the different constant values.  Obviously, a physical
   access path would be generated only in case of heavy query usage."

   [Logical.apply] re-filters the base relation on every call;
   [Physical.apply] answers from a hash partition built once.  Experiment
   E7 measures the crossover. *)

open Dc_relation
open Dc_calculus

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

module Logical = struct
  type t = {
    def : Defs.selector_def;
    base : Relation.t;
    env : Eval.env;
  }

  let create env (def : Defs.selector_def) base = { def; base; env }

  let apply t args = Dc_core.Selector.apply t.env t.def t.base args
end

module Physical = struct
  type t = {
    def : Defs.selector_def;
    base_schema : Schema.t;
    index : Index.t;
    empty : Relation.t;
  }

  (* The selector predicate must be a conjunction of equalities between an
     attribute of the selected tuple and a scalar parameter, each parameter
     used exactly once — the partitionable class of §4. *)
  let partition_attrs (def : Defs.selector_def) =
    let param_names =
      List.filter_map
        (function
          | Defs.Scalar_param (n, _) -> Some n
          | Defs.Rel_param _ -> None)
        def.sel_params
    in
    if List.length param_names <> List.length def.sel_params then
      unsupported "selector %s has relation parameters" def.sel_name;
    let bindings =
      List.map
        (fun conj ->
          match conj with
          | Ast.Cmp (Ast.Eq, Ast.Field (v, a), Ast.Param p)
          | Ast.Cmp (Ast.Eq, Ast.Param p, Ast.Field (v, a))
            when String.equal v def.sel_var ->
            (p, a)
          | f ->
            unsupported "selector %s: conjunct %a is not attr = param"
              def.sel_name Ast.pp_formula f)
        (Ast.conjuncts def.sel_pred)
    in
    List.map
      (fun p ->
        match List.assoc_opt p bindings with
        | Some a -> a
        | None -> unsupported "selector %s: parameter %s unused" def.sel_name p)
      param_names

  let build (def : Defs.selector_def) base =
    let attrs = partition_attrs def in
    let schema = Relation.schema base in
    let positions = List.map (Schema.attr_index schema) attrs in
    {
      def;
      base_schema = schema;
      index = Index.build positions base;
      empty = Relation.empty schema;
    }

  let apply t args =
    let values =
      List.map
        (function
          | Eval.V_scalar v -> v
          | Eval.V_rel _ ->
            unsupported "physical path %s: relation argument" t.def.sel_name)
        args
    in
    List.fold_left
      (fun acc tuple -> Relation.add_unchecked tuple acc)
      t.empty
      (Index.lookup_values t.index values)
end
