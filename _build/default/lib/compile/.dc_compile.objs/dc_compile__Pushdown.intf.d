lib/compile/pushdown.mli: Ast Dc_calculus Dc_datalog Dc_relation Defs Relation Schema Value
