lib/compile/quant_graph.ml: Array Ast Dc_calculus Defs Fmt List String Vars
