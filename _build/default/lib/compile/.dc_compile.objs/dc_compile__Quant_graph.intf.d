lib/compile/quant_graph.mli: Ast Dc_calculus Defs Fmt
