lib/compile/materialize.mli: Ast Database Dc_calculus Dc_core Dc_relation Fixpoint Relation Tuple
