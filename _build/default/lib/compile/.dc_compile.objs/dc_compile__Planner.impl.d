lib/compile/planner.ml: Ast Database Dc_calculus Dc_core Dc_datalog Dc_relation Defs Depgraph Eval Fmt List Plan Positivity Pushdown Quant_graph Relation Rewrite Schema String Typecheck Vars
