lib/compile/pushdown.ml: Ast Dc_calculus Dc_datalog Dc_relation Defs Either Fmt List Positivity Relation Rewrite Schema String Value
