lib/compile/planner.mli: Ast Database Dc_calculus Dc_core Dc_datalog Dc_relation Fmt Plan Quant_graph Relation Schema
