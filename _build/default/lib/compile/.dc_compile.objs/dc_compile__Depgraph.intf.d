lib/compile/depgraph.mli: Dc_calculus Defs Fmt
