lib/compile/plan.mli: Ast Dc_calculus Dc_relation Eval Fmt Relation Schema
