lib/compile/materialize.ml: Ast Database Dc_calculus Dc_core Dc_relation Defs Eval Fixpoint Fmt List Relation String Vars
