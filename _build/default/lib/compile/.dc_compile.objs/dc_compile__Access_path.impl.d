lib/compile/access_path.ml: Ast Dc_calculus Dc_core Dc_relation Defs Eval Fmt Index List Relation Schema String
