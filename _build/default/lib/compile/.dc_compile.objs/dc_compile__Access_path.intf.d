lib/compile/access_path.mli: Dc_calculus Dc_relation Defs Eval Relation
