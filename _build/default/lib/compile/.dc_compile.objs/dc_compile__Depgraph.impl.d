lib/compile/depgraph.ml: Dc_calculus Defs Fmt List Positivity String
