lib/compile/rewrite.mli: Ast Dc_calculus Dc_relation Defs
