lib/compile/rewrite.ml: Ast Dc_calculus Dc_relation Defs Fmt List Morph Option String
