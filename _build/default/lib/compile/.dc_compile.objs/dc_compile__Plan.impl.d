lib/compile/plan.ml: Ast Dc_calculus Dc_relation Either Eval Fmt Hashtbl Index List Relation Schema Tuple Value Vars
