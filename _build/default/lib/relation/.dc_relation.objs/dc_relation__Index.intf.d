lib/relation/index.mli: Relation Tuple Value
