lib/relation/index.ml: Hashtbl Option Relation Tuple
