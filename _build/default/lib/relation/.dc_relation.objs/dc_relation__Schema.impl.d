lib/relation/schema.ml: Array Fmt Fun Int List Option String Value
