lib/relation/csv.ml: Buffer Fmt In_channel List Relation Schema String Tuple Value
