lib/relation/tuple.ml: Array Fmt Int List Schema Value
