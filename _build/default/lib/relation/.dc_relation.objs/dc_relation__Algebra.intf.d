lib/relation/algebra.mli: Relation Schema Tuple
