lib/relation/relation.ml: Fmt List Schema Set String Tuple Value
