lib/relation/schema.mli: Fmt Value
