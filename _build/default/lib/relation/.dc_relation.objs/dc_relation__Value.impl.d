lib/relation/value.ml: Bool Float Fmt Hashtbl Int String
