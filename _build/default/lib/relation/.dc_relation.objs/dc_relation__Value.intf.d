lib/relation/value.mli: Fmt
