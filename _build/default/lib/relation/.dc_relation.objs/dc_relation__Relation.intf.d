lib/relation/relation.mli: Fmt Schema Seq Tuple Value
