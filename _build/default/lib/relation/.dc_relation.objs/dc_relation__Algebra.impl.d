lib/relation/algebra.ml: Fmt Index List Relation Schema Tuple
