lib/relation/csv.mli: Relation Schema Tuple Value
