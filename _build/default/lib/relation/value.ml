(* Atomic attribute values of the DBPL data model (paper §2.1).

   DBPL is a strongly typed language; we mirror its scalar universe with a
   dynamically tagged value type and enforce schema conformance at
   elaboration time (see {!Dc_calculus.Typecheck}) plus runtime assertions
   in {!Relation}. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float

type ty =
  | TInt
  | TStr
  | TBool
  | TFloat

let type_of = function
  | Int _ -> TInt
  | Str _ -> TStr
  | Bool _ -> TBool
  | Float _ -> TFloat

let type_name = function
  | TInt -> "INTEGER"
  | TStr -> "STRING"
  | TBool -> "BOOLEAN"
  | TFloat -> "REAL"

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Float x, Float y -> Float.compare x y
  | Int _, (Str _ | Bool _ | Float _) -> -1
  | (Str _ | Bool _ | Float _), Int _ -> 1
  | Str _, (Bool _ | Float _) -> -1
  | (Bool _ | Float _), Str _ -> 1
  | Bool _, Float _ -> -1
  | Float _, Bool _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)
  | Float f -> Hashtbl.hash (3, f)

let pp ppf = function
  | Int x -> Fmt.int ppf x
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Float f -> Fmt.float ppf f

let to_string v = Fmt.str "%a" pp v

let pp_ty ppf ty = Fmt.string ppf (type_name ty)

(* Arithmetic on values, used by computed terms in target lists
   (e.g. quantity multiplication in bill-of-materials rules). *)

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let add a b =
  match a, b with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Str x, Str y -> Str (x ^ y)
  | _ ->
    type_error "cannot add %s and %s"
      (type_name (type_of a)) (type_name (type_of b))

let sub a b =
  match a, b with
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | _ ->
    type_error "cannot subtract %s from %s"
      (type_name (type_of b)) (type_name (type_of a))

let mul a b =
  match a, b with
  | Int x, Int y -> Int (x * y)
  | Float x, Float y -> Float (x *. y)
  | _ ->
    type_error "cannot multiply %s and %s"
      (type_name (type_of a)) (type_name (type_of b))
