(** Atomic attribute values of the DBPL data model (paper §2.1). *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float

(** Scalar types of the DBPL type calculus. *)
type ty =
  | TInt
  | TStr
  | TBool
  | TFloat

val type_of : t -> ty
(** [type_of v] is the scalar type of [v]. *)

val type_name : ty -> string
(** DBPL keyword spelling of a scalar type, e.g. [TInt -> "INTEGER"]. *)

val compare : t -> t -> int
(** Total order; values of distinct types are ordered by type tag. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t
val pp_ty : ty Fmt.t
val to_string : t -> string

exception Type_error of string
(** Raised by arithmetic on incompatible operands; the static type checker
    prevents this for elaborated programs. *)

val add : t -> t -> t
(** Addition ([Int]/[Float]); string concatenation on [Str]. *)

val sub : t -> t -> t
val mul : t -> t -> t
