(* Hash indexes on attribute positions.

   The paper's §4 runtime level materializes "physical access paths" —
   partitions of a relation by the values of selected attributes.  This
   module is that partitioning primitive; it also backs the hash joins in
   {!Algebra} and in the calculus evaluator. *)

module Key = struct
  type t = Tuple.t (* the projected key image *)

  let equal = Tuple.equal
  let hash = Tuple.hash
end

module H = Hashtbl.Make (Key)

type t = {
  positions : int list;
  table : Tuple.t list H.t;
}

let build positions rel =
  let table = H.create (max 16 (Relation.cardinal rel)) in
  Relation.iter
    (fun t ->
      let k = Tuple.project t positions in
      let prev = Option.value (H.find_opt table k) ~default:[] in
      H.replace table k (t :: prev))
    rel;
  { positions; table }

let positions idx = idx.positions

let lookup idx key = Option.value (H.find_opt idx.table key) ~default:[]

let lookup_values idx values = lookup idx (Tuple.of_list values)

let buckets idx = H.length idx.table

let iter f idx = H.iter f idx.table
