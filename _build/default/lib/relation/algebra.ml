(* Set-oriented relational algebra over {!Relation}.

   These operators are the execution primitives of the "set-construction
   framework" the paper contrasts with tuple-oriented theorem proving
   (§1, §4).  The Datalog engines and the plan interpreter compile their
   work down to these operations. *)

let select p rel = Relation.filter p rel

(* Projection discards the key: a projection of a keyed relation is in
   general not keyed, so the result schema declares the whole tuple as key
   (set semantics, duplicates eliminated). *)
let project positions rel =
  let schema = Schema.project (Relation.schema rel) positions ~key:None in
  Relation.fold
    (fun t acc -> Relation.add_unchecked (Tuple.project t positions) acc)
    rel (Relation.empty schema)

let rename names rel =
  let schema = Schema.rename (Relation.schema rel) names in
  Relation.fold (fun t acc -> Relation.add_unchecked t acc) rel
    (Relation.empty schema)

(* Concatenated schemas get positionally suffixed attribute names so that
   self-joins never collide. *)
let concat_schema sa sb =
  let names = Schema.attr_names sa @ Schema.attr_names sb in
  let types = Schema.attr_types sa @ Schema.attr_types sb in
  let attrs =
    List.mapi (fun i (n, ty) -> (Fmt.str "%s_%d" n i, ty))
      (List.combine names types)
  in
  Schema.make attrs

let product a b =
  let schema = concat_schema (Relation.schema a) (Relation.schema b) in
  Relation.fold
    (fun ta acc ->
      Relation.fold
        (fun tb acc -> Relation.add_unchecked (Tuple.concat ta tb) acc)
        b acc)
    a (Relation.empty schema)

(* Hash equi-join on position pairs [(ia, ib)]: result tuples are the
   concatenation of the joined tuples. *)
let join ~on a b =
  let pos_a = List.map fst on and pos_b = List.map snd on in
  let schema = concat_schema (Relation.schema a) (Relation.schema b) in
  let small, big, swap =
    if Relation.cardinal a <= Relation.cardinal b then (a, b, false)
    else (b, a, true)
  in
  let small_pos = if swap then pos_b else pos_a in
  let big_pos = if swap then pos_a else pos_b in
  let idx = Index.build small_pos small in
  Relation.fold
    (fun tb acc ->
      let k = Tuple.project tb big_pos in
      List.fold_left
        (fun acc ts ->
          let left, right = if swap then (tb, ts) else (ts, tb) in
          Relation.add_unchecked (Tuple.concat left right) acc)
        acc (Index.lookup idx k))
    big (Relation.empty schema)

(* Semi-join: tuples of [a] that join with some tuple of [b]. *)
let semijoin ~on a b =
  let pos_a = List.map fst on and pos_b = List.map snd on in
  let idx = Index.build pos_b b in
  Relation.filter
    (fun ta -> Index.lookup idx (Tuple.project ta pos_a) <> [])
    a

(* Composition of two binary relations: { <x, z> | <x, y> IN a, <y, z> IN b }.
   This is the step function of the transitive-closure constructor and is
   heavily exercised by the fixpoint benchmarks. *)
let compose a b =
  let sa = Relation.schema a in
  if Schema.arity sa <> 2 || Schema.arity (Relation.schema b) <> 2 then
    invalid_arg "Algebra.compose: binary relations expected";
  let idx = Index.build [ 0 ] b in
  Relation.fold
    (fun ta acc ->
      let y = Tuple.get ta 1 in
      List.fold_left
        (fun acc tb ->
          Relation.add_unchecked (Tuple.make2 (Tuple.get ta 0) (Tuple.get tb 1)) acc)
        acc
        (Index.lookup_values idx [ y ]))
    a
    (Relation.empty (Schema.make (List.combine (Schema.attr_names sa) (Schema.attr_types sa))))

(* Iterated composition: transitive closure by semi-naive differencing.
   Serves as the hand-optimized reference implementation the generic
   constructor fixpoint is validated against. *)
let transitive_closure rel =
  let rec loop acc delta =
    if Relation.is_empty delta then acc
    else
      let step = compose delta rel in
      let fresh = Relation.diff step acc in
      loop (Relation.union acc fresh) fresh
  in
  loop rel rel
