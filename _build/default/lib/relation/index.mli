(** Hash indexes: partition a relation by the values of selected attribute
    positions (the "physical access path" primitive of paper §4). *)

type t

val build : int list -> Relation.t -> t
(** [build positions rel] hashes every tuple of [rel] under the projection
    onto [positions]. *)

val positions : t -> int list

val lookup : t -> Tuple.t -> Tuple.t list
(** Tuples whose projection equals the given key image. *)

val lookup_values : t -> Value.t list -> Tuple.t list

val buckets : t -> int
(** Number of distinct key images. *)

val iter : (Tuple.t -> Tuple.t list -> unit) -> t -> unit
