(* Tuples are immutable value arrays; the element type of a relation.

   Tuples carry no schema of their own: schema conformance is checked when
   a tuple enters a relation, mirroring DBPL's record values flowing into
   typed relation variables. *)

type t = Value.t array

let arity = Array.length

let of_list = Array.of_list

let to_list = Array.to_list

let get (t : t) i = t.(i)

let make1 v : t = [| v |]

let make2 a b : t = [| a; b |]

let make3 a b c : t = [| a; b; c |]

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let project (t : t) positions : t =
  Array.of_list (List.map (fun i -> t.(i)) positions)

let well_typed schema (t : t) =
  arity t = Schema.arity schema
  && Array.for_all2
       (fun v ty -> Value.type_of v = ty)
       t
       (Array.of_list (Schema.attr_types schema))

(* Typing plus the §2.1 domain refinements — the full generated check. *)
let in_domain schema (t : t) =
  well_typed schema t
  && (let ok = ref true in
      Array.iteri
        (fun i v ->
          if not (Schema.satisfies_refinement (Schema.attr_refinement schema i) v)
          then ok := false)
        t;
      !ok)

let concat (a : t) (b : t) : t = Array.append a b

let pp ppf (t : t) =
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t
