(** Set-oriented relational algebra: the execution primitives of the
    paper's "set-construction framework" (§1, §4). *)

val select : (Tuple.t -> bool) -> Relation.t -> Relation.t

val project : int list -> Relation.t -> Relation.t
(** Projection onto positions (in order); duplicates eliminated, result
    keyed on the whole tuple. *)

val rename : string list -> Relation.t -> Relation.t
(** Positional attribute rename. *)

val concat_schema : Schema.t -> Schema.t -> Schema.t
(** Schema of a tuple concatenation, attribute names positionally
    suffixed to stay unique across self-joins. *)

val product : Relation.t -> Relation.t -> Relation.t
(** Cartesian product; result tuples are concatenations. *)

val join : on:(int * int) list -> Relation.t -> Relation.t -> Relation.t
(** Hash equi-join; [on] pairs positions of the left and right operand.
    Result tuples are concatenations (left then right). *)

val semijoin : on:(int * int) list -> Relation.t -> Relation.t -> Relation.t
(** Tuples of the left operand that match some tuple of the right. *)

val compose : Relation.t -> Relation.t -> Relation.t
(** Composition of binary relations:
    [{ <x, z> | <x, y> IN a /\ <y, z> IN b }]. *)

val transitive_closure : Relation.t -> Relation.t
(** Semi-naive transitive closure of a binary relation; the hand-optimized
    reference the generic constructor fixpoint is validated against. *)
