(** Minimal CSV I/O for relations, typed against a schema. *)

exception Parse_error of string

val split_line : string -> string list
(** Split one CSV line; supports double-quoted fields with doubled-quote
    escapes. *)

val parse_value : Value.ty -> string -> Value.t
(** @raise Parse_error if the text does not parse at the expected type. *)

val parse_row : Schema.t -> string list -> Tuple.t

val of_lines : ?header:bool -> Schema.t -> string list -> Relation.t
(** Build a relation from CSV lines; [header] (default true) drops the
    first line. *)

val load : ?header:bool -> Schema.t -> string -> Relation.t
(** Load a CSV file. *)

val save : ?header:bool -> Relation.t -> string -> unit
(** Write a relation as CSV, attribute names as header by default. *)
