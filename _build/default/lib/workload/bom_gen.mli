(** Bill-of-materials workloads: parts-explosion hierarchies (layered DAGs
    with shared subassemblies) and the explode constructor with quantity
    multiplication along derivation paths. *)

open Dc_relation
open Dc_calculus

val part : int -> Value.t

val contains_schema : Schema.t
(** (assembly: STRING, component: STRING, qty: INTEGER). *)

val hierarchy : seed:int -> levels:int -> width:int -> uses:int -> Relation.t
(** [levels] levels of [width] parts; every part uses [uses] distinct parts
    of the next level with quantity 1–4.  Acyclic by construction. *)

val explode_constructor : unit -> Defs.constructor_def
(** All (assembly, component, path quantity) triples derivable through the
    Contains hierarchy — a recursive constructor with a computed target
    ([d.qty * u.qty]). *)
