lib/workload/bom_gen.ml: Ast Dc_calculus Dc_relation Defs Fmt Hashtbl Relation Rng Schema Tuple Value
