lib/workload/graph_gen.mli: Dc_relation Relation Schema Value
