lib/workload/rng.mli:
