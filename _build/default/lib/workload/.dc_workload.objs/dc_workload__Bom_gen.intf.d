lib/workload/bom_gen.mli: Dc_calculus Dc_relation Defs Relation Schema Value
