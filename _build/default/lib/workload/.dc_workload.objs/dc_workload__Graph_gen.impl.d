lib/workload/graph_gen.ml: Constructor Dc_core Dc_relation Fmt Hashtbl List Relation Rng Tuple Value
