(** Deterministic splittable PRNG (splitmix64).  All workload generators
    take explicit seeds, so benchmark inputs are reproducible across runs
    and machines. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p]: true with probability [p]. *)

val split : t -> t
(** A fresh generator split off deterministically. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val pick : t -> 'a list -> 'a
