(* Deterministic splittable PRNG (splitmix64).

   All workload generators take an explicit seed so benchmark inputs are
   reproducible across runs and machines — no global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound).  The modulo is taken in Int64 before the
   conversion: a 64-bit value does not fit OCaml's 63-bit native int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int
    (Int64.rem
       (Int64.shift_right_logical (next_int64 t) 1)
       (Int64.of_int bound))

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

(* A fresh generator split off deterministically. *)
let split t = { state = next_int64 t }

(* Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t l = List.nth l (int t (List.length l))
