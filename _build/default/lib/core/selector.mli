(** Selector semantics (paper §2.3, Fig 1): a selector names the
    sub-relation of its base satisfying a predicate; assignment through a
    selected relation variable re-validates the predicate. *)

open Dc_relation
open Dc_calculus

exception Selector_violation of string

val satisfies :
  Eval.env ->
  Defs.selector_def ->
  Relation.t ->
  Eval.arg_value list ->
  Tuple.t ->
  bool
(** Does one tuple of the base satisfy the selector predicate under the
    given arguments? *)

val apply :
  Eval.env ->
  Defs.selector_def ->
  Relation.t ->
  Eval.arg_value list ->
  Relation.t
(** [Rel[s(args)]]: the selected sub-relation (keeps the actual schema).
    @raise Selector_violation on arity/kind mismatch of the arguments. *)

val check_assignment :
  Eval.env ->
  Defs.selector_def ->
  current:Relation.t ->
  Eval.arg_value list ->
  Relation.t ->
  Relation.t
(** The §2.3 guarded assignment
    [IF ALL x IN rex (pred(x)) THEN Rel := rex ELSE <exception>]:
    returns the right-hand side if every tuple satisfies the predicate.
    @raise Selector_violation naming the offending tuple otherwise. *)
