(** Ready-made constructor definitions: the paper's running examples
    (§2.3, §3.1, §3.3) and generic recursion patterns used across tests,
    examples, and benchmarks. *)

open Dc_relation
open Dc_calculus

val binary_schema : ?a:string -> ?b:string -> Value.ty -> Schema.t
(** Two attributes of one type; defaults [src]/[dst]. *)

(** Position of the recursive occurrence in the transitive-closure step
    rule. *)
type linearity =
  [ `Right  (** Rel ⋈ Rel{tc} — the paper's ahead form *)
  | `Left  (** Rel{tc} ⋈ Rel *)
  | `Non  (** Rel{tc} ⋈ Rel{tc} — converges in O(log diameter) rounds *)
  ]

val transitive_closure :
  ?name:string ->
  ?src:string ->
  ?dst:string ->
  ?ty:Value.ty ->
  ?linear:linearity ->
  unit ->
  Defs.constructor_def
(** The generalized "ahead" of §3.1 over a binary relation. *)

val ahead_n :
  ?prefix:string -> ?ty:Value.ty -> int -> Defs.constructor_def list
(** The bounded family ahead-1 … ahead-n of §3.1 (pairs separated by at
    most k steps), in dependency order. *)

val infront_schema : Value.ty -> Schema.t
val ontop_schema : Value.ty -> Schema.t
val ahead_schema : Value.ty -> Schema.t
val above_schema : Value.ty -> Schema.t

val ahead_above :
  ?ty:Value.ty -> unit -> Defs.constructor_def * Defs.constructor_def
(** The mutually recursive pair of §3.1 ([ahead], [above]); define them as
    one group. *)

val ahead_2 : ?ty:Value.ty -> unit -> Defs.constructor_def
(** The two-step constructor of §2.3. *)

val nonsense : ?ty:Value.ty -> unit -> Defs.constructor_def
(** §3.3: [EACH r IN Rel: NOT (r IN Rel{nonsense})] — violates positivity;
    its unchecked iteration oscillates with period 2. *)

val strange : unit -> Defs.constructor_def
(** §3.3 ([Hehn 84]): non-monotone, rejected by positivity, yet its
    unchecked iteration converges (on [{0..6}] to [{0,2,4,6}]). *)

val same_generation : ?ty:Value.ty -> unit -> Defs.constructor_def
(** The classic deductive-database benchmark:
    [sg(x,y) <- flat(x,y); sg(x,y) <- up(x,u), sg(u,v), down(v,y)].
    Base relation: Up; parameters: Flat, Down. *)
