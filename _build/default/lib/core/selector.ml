(* Selector semantics (paper §2.3, Fig 1).

   A selector names the sub-relation of its base satisfying a predicate:

     SELECTOR refint FOR Rel: infrontrel ();
     BEGIN EACH r IN Rel: SOME r1, r2 IN Objects (...) END refint

   Application filters; assignment through a selected relation variable
   checks that every incoming tuple satisfies the predicate, i.e. it is the
   abstraction of the conditional-assignment pattern of §2.3. *)

open Dc_relation
open Dc_calculus

exception Selector_violation of string

let violation fmt = Fmt.kstr (fun s -> raise (Selector_violation s)) fmt

(* Environment for evaluating the selector body: the formal bound to the
   actual base, parameters bound to their argument values. *)
let body_env env (def : Defs.selector_def) base args =
  if List.length args <> List.length def.sel_params then
    violation "selector %s expects %d argument(s), got %d" def.sel_name
      (List.length def.sel_params) (List.length args);
  (* Actual base and relation arguments are viewed at the formal types, so
     the body's attribute names resolve regardless of the actual names. *)
  let env =
    Eval.bind_rel env def.sel_formal
      (Relation.with_schema def.sel_formal_schema base)
  in
  List.fold_left2
    (fun env param arg ->
      match param, arg with
      | Defs.Scalar_param (n, _), Eval.V_scalar v -> Eval.bind_scalar env n v
      | Defs.Rel_param (n, schema), Eval.V_rel r ->
        Eval.bind_rel env n (Relation.with_schema schema r)
      | Defs.Scalar_param (n, _), Eval.V_rel _ ->
        violation "selector %s: parameter %s expects a scalar" def.sel_name n
      | Defs.Rel_param (n, _), Eval.V_scalar _ ->
        violation "selector %s: parameter %s expects a relation" def.sel_name n)
    env def.sel_params args

(* Does one tuple satisfy the selector predicate? *)
let satisfies env (def : Defs.selector_def) base args tuple =
  let env = body_env env def base args in
  let env = Eval.bind_var env def.sel_var tuple def.sel_formal_schema in
  Eval.eval_formula env def.sel_pred

(* Rel[s(args)]: the selected sub-relation (keeps the actual schema). *)
let apply env (def : Defs.selector_def) base args =
  let env = body_env env def base args in
  Relation.filter
    (fun t ->
      Eval.eval_formula
        (Eval.bind_var env def.sel_var t def.sel_formal_schema)
        def.sel_pred)
    base

(* The §2.3 guarded assignment: check that the whole right-hand side lies
   inside the selected sub-relation before allowing the assignment.

     IF ALL x IN rex (pred(x)) THEN Rel := rex ELSE <exception>

   Returns the checked value; the caller stores it. *)
let check_assignment env (def : Defs.selector_def) ~current args rhs =
  if not (Schema.compatible (Relation.schema current) (Relation.schema rhs)) then
    violation "selector %s: assignment of incompatible relation type"
      def.sel_name;
  (match
     Relation.choose_opt
       (Relation.filter (fun t -> not (satisfies env def rhs args t)) rhs)
   with
  | Some t ->
    violation "selector %s: tuple %a violates the selection predicate"
      def.sel_name Tuple.pp t
  | None -> ());
  rhs
