(** The six "options for fixpoint enhancements in database programming"
    of paper §3.4, instantiated on transitive closure as comparison points
    for the constructor approach (experiment E12).  Each implementation's
    doc records the paper's assessment of the option. *)

open Dc_relation

val program_iteration : Relation.t -> Relation.t
(** Option 1 — the §3.1 REPEAT loop, verbatim.  "The programmer can write
    anything into the loop ...; this severely limits query optimization." *)

val membership_function : Relation.t -> Value.t -> Value.t -> bool
(** Option 2a — recursive boolean function: tuple-at-a-time membership by
    DFS (needs its own visited set on cyclic data). *)

val recursive_function : Relation.t -> Relation.t
(** Options 2b/5 — the §3.4 [FUNCTION ahead] listing; as a parameterized
    view, a relation-valued function.  "Functions are too general to be
    optimized efficiently." *)

val specialized_operator : Relation.t -> Relation.t
(** Option 3 — a built-in transitive-closure operator (QBE closure /
    QUEL [*] style): efficient but closed, "essentially procedural". *)

val lfp : bottom:Relation.t -> (Relation.t -> Relation.t) -> Relation.t
(** Generic inflationary least fixpoint of a monotone step function. *)

val equational : Relation.t -> Relation.t
(** Option 4 — equational relation definition
    [Ahead | Ahead = Infront ∪ (Infront ; Ahead)] through {!lfp}. *)
