(* The six "options for fixpoint enhancements in database programming" the
   paper enumerates in §3.4, instantiated on transitive closure so the
   experiments can compare them against the constructor approach (the
   "seventh alternative"):

   1. program iteration            — the REPEAT loop of §3.1, verbatim;
   2. recursive boolean functions  — tuple-at-a-time membership testing;
      and recursive relation-valued functions — the §3.4 FUNCTION ahead
      listing;
   3. specialized LFP operators    — a built-in transitive-closure
      operator, QBE/QUEL* style;
   4. equational relation definition — a generic inflationary least-
      fixpoint combinator applied to the defining equation;
   5. views as relation-valued functions — same as the recursive function,
      used as a parameterized view;
   6. logic programming            — the Horn-clause engines of
      [Dc_datalog].

   The paper's criticisms are recorded with each implementation: options 1
   and 2 "share the problem of too much generality since the programmer
   can write anything into the loop or the function body; this severely
   limits query optimization"; option 3 "is essentially procedural and
   does not seem to fit well into a calculus-oriented language". *)

open Dc_relation

(* ------------------------------------------------------------------ *)
(* 1. Program iteration: the §3.1 loop
     Ahead := {};
     REPEAT Oldahead := Ahead;
            Ahead := {EACH r IN Infront: TRUE,
                      <f.front, b.tail> OF EACH f IN Infront,
                                           EACH b IN Ahead: f.back = b.head}
     UNTIL Ahead = Oldahead
   Opaque to any optimizer: the loop body is ordinary program text. *)
let program_iteration rel =
  let ahead = ref (Relation.empty (Relation.schema rel)) in
  let continue = ref true in
  while !continue do
    let oldahead = !ahead in
    ahead := Relation.union rel (Algebra.compose rel oldahead);
    continue := not (Relation.equal !ahead oldahead)
  done;
  !ahead

(* ------------------------------------------------------------------ *)
(* 2a. Recursive boolean function: test membership tuple-at-a-time (DFS
   over the base relation).  No set-orientation at all; every test
   re-traverses, and cyclic data needs an explicit visited set — the
   bookkeeping bottom-up evaluation gets for free. *)
let membership_function rel x y =
  let visited = Hashtbl.create 16 in
  let idx = Index.build [ 0 ] rel in
  let rec reaches src =
    if Hashtbl.mem visited src then false
    else begin
      Hashtbl.replace visited src ();
      List.exists
        (fun t ->
          Value.equal (Tuple.get t 1) y || reaches (Tuple.get t 1))
        (Index.lookup_values idx [ src ])
    end
  in
  reaches x

(* 2b/5. Recursive relation-valued function — the §3.4 listing:
     FUNCTION ahead (Current: aheadrel): aheadrel;
     BEGIN New := {...}; IF New = Current THEN RETURN Current
                         ELSE RETURN ahead(New) END
   As a view it is a parameterized relation-valued function; "functions
   are too general to be optimized efficiently". *)
let recursive_function rel =
  let rec ahead current =
    let next = Relation.union rel (Algebra.compose rel current) in
    if Relation.equal next current then current else ahead next
  in
  ahead (Relation.empty (Relation.schema rel))

(* ------------------------------------------------------------------ *)
(* 3. Specialized LFP operator: a built-in transitive-closure operator in
   the style of QBE's closure or QUEL's '*' commands — efficient
   (semi-naive underneath) but closed: only the shapes the operator
   anticipates can use it. *)
let specialized_operator = Algebra.transitive_closure

(* ------------------------------------------------------------------ *)
(* 4. Equational relation definition:
       Ahead | Ahead = Infront ∪ (Infront ; Ahead)
   expressed through a generic inflationary least-fixpoint combinator over
   a monotone step function. *)
let lfp ~bottom step =
  let rec loop x =
    let x' = Relation.union x (step x) in
    if Relation.equal x' x then x else loop x'
  in
  loop bottom

let equational rel =
  lfp
    ~bottom:(Relation.empty (Relation.schema rel))
    (fun ahead -> Relation.union rel (Algebra.compose rel ahead))

(* ------------------------------------------------------------------ *)
(* 6. Logic programming: see [Dc_datalog] (SLD for the proof-oriented
   reading, Naive/Seminaive for the bottom-up one); the benchmarks wire it
   in directly.  The seventh alternative — constructors — lives in
   [Constructor]/[Fixpoint]. *)
