lib/core/selector.ml: Dc_calculus Dc_relation Defs Eval Fmt List Relation Schema Tuple
