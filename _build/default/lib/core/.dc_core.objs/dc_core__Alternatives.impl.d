lib/core/alternatives.ml: Algebra Dc_relation Hashtbl Index List Relation Tuple Value
