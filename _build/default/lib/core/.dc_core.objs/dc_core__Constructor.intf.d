lib/core/constructor.mli: Dc_calculus Dc_relation Defs Schema Value
