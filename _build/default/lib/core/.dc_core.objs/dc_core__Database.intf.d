lib/core/database.mli: Ast Dc_calculus Dc_relation Defs Eval Fixpoint Relation Schema Tuple Typecheck
