lib/core/database.ml: Dc_calculus Dc_relation Defs Eval Fixpoint Fmt List Map Positivity Relation Schema Selector String Typecheck
