lib/core/selector.mli: Dc_calculus Dc_relation Defs Eval Relation Tuple
