lib/core/fixpoint.mli: Dc_calculus Dc_relation Defs Eval Fmt Relation
