lib/core/constructor.ml: Ast Dc_calculus Dc_relation Defs Fmt List Schema Value
