lib/core/fixpoint.ml: Ast Dc_calculus Dc_relation Defs Eval Fmt Fun List Map Option Relation Selector Set String Value
