lib/core/alternatives.mli: Dc_relation Relation Value
