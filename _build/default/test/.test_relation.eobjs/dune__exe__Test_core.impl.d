test/test_core.ml: Alcotest Algebra Alternatives Ast Constructor Database Dc_calculus Dc_core Dc_relation Defs Fixpoint Fmt List Option Relation Schema Selector String Tuple Value
