test/test_workload.ml: Alcotest Algebra Bom_gen Dc_relation Dc_workload Graph_gen List Relation Rng String Tuple Value
