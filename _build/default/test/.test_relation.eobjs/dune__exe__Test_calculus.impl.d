test/test_calculus.ml: Alcotest Ast Dc_calculus Dc_relation Defs Eval Gen List Normalize Positivity QCheck QCheck_alcotest Relation Schema Tuple Typecheck Value
