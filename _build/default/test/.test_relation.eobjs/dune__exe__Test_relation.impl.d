test/test_relation.ml: Alcotest Algebra Csv Dc_relation Filename Fmt Gen Index List QCheck QCheck_alcotest Relation Schema String Sys Tuple Value
