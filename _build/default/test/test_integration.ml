(* End-to-end integration tests: the same workloads driven through every
   layer of the system — surface programs, the OCaml API, the planner, the
   Horn-clause engines, and the translations — must agree. *)

open Dc_relation
open Dc_calculus
open Dc_core

let s v = Value.Str v
let i n = Value.Int n
let pair a b = Tuple.make2 (s a) (s b)

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop k =
    k + nn <= nh && (String.sub haystack k nn = needle || loop (k + 1))
  in
  nn = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Surface program vs API: the BOM explosion built both ways *)

let bom_surface =
  {|TYPE part = STRING;
    TYPE containsrel = RELATION assembly, component, qty
      OF RECORD assembly, component: part; qty: INTEGER END;
    VAR Contains: containsrel;
    CONSTRUCTOR explode FOR Rel: containsrel (): containsrel;
    BEGIN EACH r IN Rel: TRUE,
          <d.assembly, u.component, d.qty * u.qty> OF
            EACH d IN Rel, EACH u IN Rel{explode}:
              d.component = u.assembly
    END explode;
    INSERT Contains VALUES
      ("bike", "wheel", 2), ("wheel", "spoke", 32), ("wheel", "hub", 1),
      ("hub", "bolt", 2);
    QUERY Contains{explode};|}

let test_bom_surface_vs_api () =
  let db_surface, out = Dc_lang.Elaborate.run_string bom_surface in
  Alcotest.check Alcotest.bool "spokes per bike derived" true
    (contains out "64");
  let surface_result =
    Database.query db_surface Ast.(Construct (Rel "Contains", "explode", []))
  in
  (* same data through the API builders *)
  let db = Database.create () in
  Database.declare db "Contains" Dc_workload.Bom_gen.contains_schema;
  Database.insert_all db "Contains"
    [
      Tuple.of_list [ s "bike"; s "wheel"; i 2 ];
      Tuple.of_list [ s "wheel"; s "spoke"; i 32 ];
      Tuple.of_list [ s "wheel"; s "hub"; i 1 ];
      Tuple.of_list [ s "hub"; s "bolt"; i 2 ];
    ];
  Database.define_constructor db (Dc_workload.Bom_gen.explode_constructor ());
  let api_result =
    Database.query db Ast.(Construct (Rel "Contains", "explode", []))
  in
  Alcotest.check rel_testable "surface = API" api_result surface_result;
  Alcotest.check Alcotest.bool "bike needs 64 spokes" true
    (Relation.mem (Tuple.of_list [ s "bike"; s "spoke"; i 64 ]) api_result);
  Alcotest.check Alcotest.bool "bike needs 4 bolts" true
    (Relation.mem (Tuple.of_list [ s "bike"; s "bolt"; i 4 ]) api_result)

(* ------------------------------------------------------------------ *)
(* Same-generation through five evaluation routes *)

let test_same_generation_five_ways () =
  let up, flat, down = Dc_workload.Graph_gen.same_generation_tree 4 in
  let edge = Dc_workload.Graph_gen.edge_schema in
  (* route 1: constructor fixpoint *)
  let db = Database.create () in
  List.iter2
    (fun n r ->
      Database.declare db n edge;
      Database.set db n r)
    [ "Up"; "Flat"; "Down" ] [ up; flat; down ];
  Database.define_constructor db (Constructor.same_generation ());
  let app =
    Ast.(
      Construct
        ( Rel "Up",
          "same_generation",
          [ Arg_range (Rel "Flat"); Arg_range (Rel "Down") ] ))
  in
  let via_constructor = Database.query db app in
  (* route 2/3: translated Horn program, naive + semi-naive *)
  let ctx = Dc_compile.Planner.translate_ctx db in
  let program, pred = Dc_datalog.Translate.of_application ctx app in
  let edb =
    List.fold_left2
      (fun edb n r -> Dc_datalog.Facts.of_relation n r edb)
      (Dc_datalog.Facts.empty ())
      [ "Up"; "Flat"; "Down" ] [ up; flat; down ]
  in
  let via_naive = Dc_datalog.Naive.query program edb pred in
  let via_semi = Dc_datalog.Seminaive.query program edb pred in
  (* route 4: top-down SLD (the tree is acyclic, so it terminates) *)
  let via_sld =
    Dc_datalog.Facts.TS.of_list (Dc_datalog.Topdown.query program edb pred 2)
  in
  (* route 5: magic sets with the first argument bound to a leaf *)
  let leaf = Dc_workload.Graph_gen.node 7 in
  let via_magic =
    Dc_datalog.Magic.answer program edb
      (Dc_datalog.Syntax.atom pred
         [ Dc_datalog.Syntax.const leaf; Dc_datalog.Syntax.var "Y" ])
  in
  let as_set rel = Relation.fold Dc_datalog.Facts.TS.add rel Dc_datalog.Facts.TS.empty in
  let reference = as_set via_constructor in
  Alcotest.check Alcotest.bool "naive agrees" true
    (Dc_datalog.Facts.TS.equal reference via_naive);
  Alcotest.check Alcotest.bool "semi-naive agrees" true
    (Dc_datalog.Facts.TS.equal reference via_semi);
  Alcotest.check Alcotest.bool "SLD agrees" true
    (Dc_datalog.Facts.TS.equal reference via_sld);
  let expected_magic =
    Dc_datalog.Facts.TS.filter
      (fun t -> Value.equal (Tuple.get t 0) leaf)
      reference
  in
  Alcotest.check Alcotest.bool "magic agrees on the bound query" true
    (Dc_datalog.Facts.TS.equal expected_magic via_magic);
  (* sanity: descendants of the flat pair (1, 2) at equal depth are same
     generation: 7 (under 1) and 11 (under 2) *)
  Alcotest.check Alcotest.bool "7 sg 11" true
    (Dc_datalog.Facts.TS.mem
       (Tuple.make2 (Dc_workload.Graph_gen.node 7) (Dc_workload.Graph_gen.node 11))
       reference)

(* ------------------------------------------------------------------ *)
(* Datalog -> constructors -> datalog roundtrip *)

let test_roundtrip () =
  let bin = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ] in
  let open Dc_datalog.Syntax in
  let program =
    [
      rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
      rule
        (atom "path" [ var "X"; var "Z" ])
        [
          Pos (atom "edge" [ var "X"; var "Y" ]);
          Pos (atom "path" [ var "Y"; var "Z" ]);
        ];
    ]
  in
  let edges = [ (1, 2); (2, 3); (3, 1); (3, 4) ] in
  let edge_rel = Relation.of_pairs bin (List.map (fun (a, b) -> (i a, i b)) edges) in
  let reference =
    Dc_datalog.Seminaive.query program
      (Dc_datalog.Facts.of_relation "edge" edge_rel (Dc_datalog.Facts.empty ()))
      "path"
  in
  (* datalog -> constructors *)
  let schema_of = function
    | "edge" | "path" -> bin
    | p -> Alcotest.failf "unexpected pred %s" p
  in
  let defs, bottoms = Dc_datalog.Translate.to_constructors schema_of program in
  let db = Database.create () in
  Database.declare db "edge" bin;
  Database.set db "edge" edge_rel;
  List.iter (fun (n, s) -> Database.declare db n s) bottoms;
  Database.define_constructors db defs;
  let app = Ast.(Construct (Rel "__bottom_path", "path", [])) in
  let via_constructors = Database.query db app in
  Alcotest.check Alcotest.bool "datalog -> constructors" true
    (Dc_datalog.Facts.TS.equal reference
       (Relation.fold Dc_datalog.Facts.TS.add via_constructors
          Dc_datalog.Facts.TS.empty));
  (* ... and back: constructors -> datalog *)
  let ctx = Dc_compile.Planner.translate_ctx db in
  let program2, pred2 = Dc_datalog.Translate.of_application ctx app in
  let edb2 = Dc_compile.Planner.edb_for db program2 in
  let back = Dc_datalog.Seminaive.query program2 edb2 pred2 in
  Alcotest.check Alcotest.bool "roundtrip" true
    (Dc_datalog.Facts.TS.equal reference back)

(* ------------------------------------------------------------------ *)
(* EXPLAIN output through the surface, on every method *)

let test_explain_methods () =
  let _, out =
    Dc_lang.Elaborate.run_string
      {|TYPE e = RELATION src, dst OF RECORD src, dst: STRING END;
        VAR Edge: e;
        CONSTRUCTOR tc FOR Rel: e (): e;
        BEGIN EACH r IN Rel: TRUE,
              <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel{tc}: f.dst = b.src
        END tc;
        CONSTRUCTOR hop2 FOR Rel: e (): e;
        BEGIN EACH r IN Rel: TRUE,
              <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel: f.dst = b.src
        END hop2;
        INSERT Edge VALUES ("a", "b"), ("b", "c");
        EXPLAIN Edge{tc};
        EXPLAIN {EACH r IN Edge{tc}: r.src = "a"};
        EXPLAIN {EACH r IN Edge{hop2}: r.src = "a"};|}
  in
  Alcotest.check Alcotest.bool "direct fixpoint" true
    (contains out "direct fixpoint");
  Alcotest.check Alcotest.bool "magic" true (contains out "magic");
  Alcotest.check Alcotest.bool "pushed" true (contains out "pushed")

(* ------------------------------------------------------------------ *)
(* Materialized view driven by surface-program data *)

let test_materialize_over_surface_db () =
  let db, _ =
    Dc_lang.Elaborate.run_string
      {|TYPE e = RELATION src, dst OF RECORD src, dst: STRING END;
        VAR Edge: e;
        CONSTRUCTOR tc FOR Rel: e (): e;
        BEGIN EACH r IN Rel: TRUE,
              <f.src, b.dst> OF EACH f IN Rel{tc}, EACH b IN Rel: f.dst = b.src
        END tc;
        INSERT Edge VALUES ("a", "b"), ("b", "c");|}
  in
  let view =
    Dc_compile.Materialize.create db ~constructor:"tc" ~base:"Edge" ~args:[]
  in
  Alcotest.check Alcotest.int "initial" 3
    (Relation.cardinal (Dc_compile.Materialize.value view));
  Dc_compile.Materialize.insert view [ pair "c" "d" ];
  Alcotest.check rel_testable "maintained under surface data"
    (Database.query db Ast.(Construct (Rel "Edge", "tc", [])))
    (Dc_compile.Materialize.value view)

(* ------------------------------------------------------------------ *)
(* Random constructor systems: generate random positive (possibly
   mutually recursive, possibly non-linear) Horn programs, convert them to
   constructor systems, and check that the fixpoint engines (both
   strategies) agree with the bottom-up Datalog engines on every IDB
   predicate. *)

let bin = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let arb_program =
  let open QCheck in
  let open Dc_datalog.Syntax in
  let idb_names = [ "p0"; "p1"; "p2" ] in
  let pred_name = Gen.oneofl ("e" :: idb_names) in
  let rule_gen =
    let open Gen in
    let* head = oneofl idb_names in
    let* body_len = int_range 1 2 in
    if body_len = 1 then
      let* b = pred_name in
      return (rule (atom head [ var "X"; var "Z" ]) [ Pos (atom b [ var "X"; var "Z" ]) ])
    else
      let* b1 = pred_name in
      let* b2 = pred_name in
      return
        (rule
           (atom head [ var "X"; var "Z" ])
           [
             Pos (atom b1 [ var "X"; var "Y" ]);
             Pos (atom b2 [ var "Y"; var "Z" ]);
           ])
  in
  let gen =
    Gen.(
      pair
        (list_size (int_range 1 6) rule_gen)
        (list_size (int_range 0 12) (pair (int_bound 4) (int_bound 4))))
  in
  make gen ~print:(fun (program, edges) ->
      Fmt.str "%a@.edges: %a" pp_program program
        Fmt.(Dump.list (Dump.pair int int))
        edges)

let prop_random_systems_agree =
  QCheck.Test.make ~name:"random systems: constructors = datalog" ~count:80
    arb_program (fun (program, edges) ->
      let open Dc_datalog in
      (* deduplicate rules (duplicate rules are harmless but slow) *)
      let program = List.sort_uniq compare program in
      let heads = Syntax.idb_preds program in
      let schema_of _ = bin in
      let defs, bottoms = Translate.to_constructors schema_of program in
      let edge_rel =
        Relation.of_pairs bin
          (List.sort_uniq compare (List.map (fun (a, b) -> (Value.Int a, Value.Int b)) edges))
      in
      let edb = Facts.of_relation "e" edge_rel (Facts.empty ()) in
      (* every IDB pred used but not defined acts as an empty EDB pred *)
      let mentioned =
        List.concat_map Syntax.body_preds program
        |> List.sort_uniq String.compare
      in
      let db strategy =
        let db = Database.create ~strategy () in
        Database.declare db "e" bin;
        Database.set db "e" edge_rel;
        List.iter
          (fun p ->
            if (not (Syntax.SS.mem p heads)) && p <> "e" then
              Database.declare db p bin)
          mentioned;
        List.iter (fun (n, s) -> Database.declare db n s) bottoms;
        Database.define_constructors db defs;
        db
      in
      let db_semi = db Fixpoint.Seminaive and db_naive = db Fixpoint.Naive in
      Syntax.SS.for_all
        (fun p ->
          let reference = Seminaive.query program edb p in
          let via strategy_db =
            Relation.fold Facts.TS.add
              (Database.query strategy_db
                 Ast.(Construct (Rel ("__bottom_" ^ p), p, [])))
              Facts.TS.empty
          in
          Facts.TS.equal reference (via db_semi)
          && Facts.TS.equal reference (via db_naive))
        heads)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "BOM: surface = API" `Quick test_bom_surface_vs_api;
          Alcotest.test_case "same-generation, five routes" `Quick
            test_same_generation_five_ways;
          Alcotest.test_case "datalog <-> constructors roundtrip" `Quick
            test_roundtrip;
          Alcotest.test_case "EXPLAIN methods" `Quick test_explain_methods;
          Alcotest.test_case "materialize over surface db" `Quick
            test_materialize_over_surface_db;
        ] );
      ("properties", qcheck [ prop_random_systems_agree ]);
    ]
