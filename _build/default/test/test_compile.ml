(* Tests for Dc_compile: dependency graphs, quant graphs, N1-N3 rewrites,
   pushdown, planner method selection, access paths. *)

open Dc_relation
open Dc_calculus
open Dc_core
open Dc_compile

let s v = Value.Str v
let pair a b = Tuple.make2 (s a) (s b)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i =
    i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1))
  in
  nn = 0 || loop 0

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let edge_schema = Constructor.binary_schema Value.TStr

let chain n =
  List.init n (fun i -> pair (Fmt.str "n%d" i) (Fmt.str "n%d" (i + 1)))

let schema_of_db db r = Eval.range_schema (Database.eval_env db) [] r

let make_db ?(edges = chain 6) () =
  let db = Database.create () in
  Database.declare db "Edge" edge_schema;
  Database.set db "Edge" (Relation.of_list edge_schema edges);
  Database.define_constructor db (Constructor.transitive_closure ());
  Database.define_constructor db (Constructor.ahead_2 ());
  db

(* ------------------------------------------------------------------ *)
(* Depgraph *)

let test_depgraph () =
  let ahead, above = Constructor.ahead_above () in
  let defs =
    [ Constructor.transitive_closure (); Constructor.ahead_2 (); ahead; above ]
  in
  let g = Depgraph.build defs in
  Alcotest.check Alcotest.bool "tc recursive" true (Depgraph.is_recursive g "tc");
  Alcotest.check Alcotest.bool "ahead2 not recursive" false
    (Depgraph.is_recursive g "ahead2");
  Alcotest.check Alcotest.bool "ahead recursive (mutual)" true
    (Depgraph.is_recursive g "ahead");
  let comp =
    match Depgraph.component_of g "ahead" with
    | Some c -> List.map (fun (d : Defs.constructor_def) -> d.con_name) c
    | None -> []
  in
  Alcotest.check
    Alcotest.(list string)
    "ahead and above share a component"
    [ "above"; "ahead" ]
    (List.sort String.compare comp)

(* ------------------------------------------------------------------ *)
(* Quant graph *)

let test_quant_graph_recursive () =
  let db = make_db () in
  let g =
    Quant_graph.build ~lookup:(Database.constructor db)
      Ast.(Construct (Rel "Edge", "tc", []))
  in
  Alcotest.check Alcotest.bool "tc query recursive" true
    (Quant_graph.is_recursive g);
  Alcotest.check
    Alcotest.(list string)
    "recursive constructor detected" [ "tc" ]
    (Quant_graph.recursive_constructors g)

let test_quant_graph_mutual () =
  (* the ahead/above cycle runs through BOTH constructor heads *)
  let ahead, above = Constructor.ahead_above () in
  let lookup n =
    List.find_opt (fun (d : Defs.constructor_def) -> d.con_name = n) [ ahead; above ]
  in
  let g =
    Quant_graph.build ~lookup
      Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
  in
  Alcotest.check Alcotest.bool "recursive" true (Quant_graph.is_recursive g);
  Alcotest.check
    Alcotest.(list string)
    "both heads on the cycle" [ "above"; "ahead" ]
    (List.sort String.compare (Quant_graph.recursive_constructors g))

let test_quant_graph_acyclic () =
  let db = make_db () in
  let g =
    Quant_graph.build ~lookup:(Database.constructor db)
      Ast.(Construct (Rel "Edge", "ahead2", []))
  in
  Alcotest.check Alcotest.bool "ahead2 query acyclic" false
    (Quant_graph.is_recursive g)

(* ------------------------------------------------------------------ *)
(* Rewrites *)

let from_selector =
  {
    Defs.sel_name = "from";
    sel_formal = "Rel";
    sel_formal_schema = edge_schema;
    sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
    sel_var = "r";
    sel_pred = Ast.(eq (field "r" "src") (Param "Obj"));
  }

let test_inline_selector () =
  let db = make_db () in
  Database.define_selector db from_selector;
  let q = Ast.(Select (Rel "Edge", "from", [ Arg_scalar (str "n1") ])) in
  let inlined =
    Rewrite.decompile ~schema_of:(schema_of_db db)
      ~selector_of:(Database.selector db)
      ~constructor_of:(Database.constructor db)
      ~is_recursive:(fun _ -> true)
      q
  in
  (* no Select application remains *)
  let rec has_select = function
    | Ast.Select _ -> true
    | Ast.Rel _ -> false
    | Ast.Construct (r, _, _) -> has_select r
    | Ast.Comp bs ->
      List.exists
        (fun (b : Ast.branch) ->
          List.exists (fun (_, r) -> has_select r) b.binders)
        bs
  in
  Alcotest.check Alcotest.bool "selector inlined" false (has_select inlined);
  Alcotest.check rel_testable "same result" (Database.query db q)
    (Database.query db inlined)

let test_inline_constructor () =
  let db = make_db () in
  let q = Ast.(Construct (Rel "Edge", "ahead2", [])) in
  let g = Depgraph.build [ Constructor.ahead_2 () ] in
  let inlined =
    Rewrite.decompile ~schema_of:(schema_of_db db)
      ~selector_of:(Database.selector db)
      ~constructor_of:(Database.constructor db)
      ~is_recursive:(Depgraph.is_recursive g)
      q
  in
  (match inlined with
  | Ast.Construct _ -> Alcotest.fail "ahead2 was not inlined"
  | _ -> ());
  Alcotest.check rel_testable "decompiled ahead2 = direct"
    (Database.query db q) (Database.query db inlined)

let test_flatten_n1 () =
  (* {EACH r IN {EACH r' IN Edge: r'.src = "n1"}: r.dst = "n2"} *)
  let inner =
    Ast.(
      Comp [ branch [ ("r'", Rel "Edge") ] ~where:(eq (field "r'" "src") (str "n1")) ])
  in
  let q =
    Ast.(Comp [ branch [ ("r", inner) ] ~where:(eq (field "r" "dst") (str "n2")) ])
  in
  let flat = Rewrite.flatten_range q in
  (match flat with
  | Ast.Comp [ { binders = [ (_, Ast.Rel "Edge") ]; _ } ] -> ()
  | r -> Alcotest.failf "not flattened: %a" Ast.pp_range r);
  let db = make_db () in
  Alcotest.check rel_testable "N1 preserves semantics" (Database.query db q)
    (Database.query db flat)

let test_flatten_n2_n3 () =
  let db = make_db () in
  let inner =
    Ast.(
      Comp [ branch [ ("x", Rel "Edge") ] ~where:(eq (field "x" "src") (str "n1")) ])
  in
  (* SOME r IN inner (r.dst = q.src) as part of a query *)
  let q quant =
    Ast.(
      Comp
        [
          branch [ ("q", Rel "Edge") ]
            ~where:(quant ("r", inner, eq (field "r" "dst") (field "q" "src")));
        ])
  in
  let some_q = q (fun (v, r, f) -> Ast.Some_in (v, r, f)) in
  let all_q = q (fun (v, r, f) -> Ast.All_in (v, r, f)) in
  List.iter
    (fun query ->
      let flat =
        Ast.(
          match query with
          | Comp [ b ] -> Comp [ { b with where = Rewrite.flatten_formula b.where } ]
          | r -> r)
      in
      Alcotest.check rel_testable "N2/N3 preserve semantics"
        (Database.query db query) (Database.query db flat))
    [ some_q; all_q ]

(* ------------------------------------------------------------------ *)
(* Pushdown and planner *)

let restricted ?(attr = "src") ?(value = "n1") con =
  Ast.(
    Comp
      [
        branch
          [ ("r", Construct (Rel "Edge", con, [])) ]
          ~where:(eq (field "r" attr) (str value));
      ])

let test_push_nonrecursive () =
  let db = make_db () in
  (* ahead2's result type is (head, tail) *)
  let q = restricted ~attr:"head" "ahead2" in
  let d = Planner.plan db q in
  (match d.Planner.d_method with
  | Planner.Pushed _ -> ()
  | m -> Alcotest.failf "expected Pushed, got %s" (Planner.method_name m));
  Alcotest.check rel_testable "pushed = direct" (Database.query db q)
    (Planner.execute db d)

let test_magic_route () =
  let db = make_db ~edges:(chain 10) () in
  let q = restricted "tc" in
  let d = Planner.plan db q in
  (match d.Planner.d_method with
  | Planner.Magic _ -> ()
  | m -> Alcotest.failf "expected Magic, got %s" (Planner.method_name m));
  Alcotest.check rel_testable "magic = direct" (Database.query db q)
    (Planner.execute db d)

let test_magic_with_residual () =
  let db = make_db ~edges:(chain 8) () in
  let q =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "tc", [])) ]
            ~where:
              (conj
                 (eq (field "r" "src") (str "n1"))
                 (Cmp (Ne, field "r" "dst", str "n3")));
        ])
  in
  let d = Planner.plan db q in
  (match d.Planner.d_method with
  | Planner.Magic { residual; _ } ->
    Alcotest.check Alcotest.bool "has residual" true (residual <> Ast.True)
  | m -> Alcotest.failf "expected Magic, got %s" (Planner.method_name m));
  Alcotest.check rel_testable "magic+residual = direct" (Database.query db q)
    (Planner.execute db d)

let test_decompiled_route () =
  (* a selector application over an acyclic constructor: not the restricted
     shape, so the planner decompiles it into a view with a plan *)
  let db = make_db () in
  let sel =
    {
      Defs.sel_name = "head_is";
      sel_formal = "Rel";
      sel_formal_schema = Constructor.ahead_schema Value.TStr;
      sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(eq (field "r" "head") (Param "Obj"));
    }
  in
  Database.define_selector db sel;
  let q =
    Ast.(
      Select
        (Construct (Rel "Edge", "ahead2", []), "head_is", [ Arg_scalar (str "n1") ]))
  in
  let d = Planner.plan db q in
  (match d.Planner.d_method with
  | Planner.Decompiled _ -> ()
  | m -> Alcotest.failf "expected Decompiled, got %s" (Planner.method_name m));
  Alcotest.check Alcotest.bool "has a plan" true (d.Planner.d_plan <> None);
  Alcotest.check rel_testable "decompiled = direct" (Database.query db q)
    (Planner.execute db d)

let test_direct_route () =
  let db = make_db () in
  let q = Ast.(Construct (Rel "Edge", "tc", [])) in
  let d = Planner.plan db q in
  (match d.Planner.d_method with
  | Planner.Direct -> ()
  | m -> Alcotest.failf "expected Direct, got %s" (Planner.method_name m));
  Alcotest.check rel_testable "direct" (Database.query db q)
    (Planner.execute db d)

let test_explain_output () =
  let db = make_db () in
  let d = Planner.plan db (restricted "tc") in
  let text = Fmt.str "%a" Planner.explain d in
  Alcotest.check Alcotest.bool "mentions magic" true (contains text "magic")

(* ------------------------------------------------------------------ *)
(* Access paths *)

let test_access_paths_agree () =
  let db = make_db ~edges:(chain 20) () in
  let base = Database.get db "Edge" in
  let env = Database.eval_env db in
  let logical = Access_path.Logical.create env from_selector base in
  let physical = Access_path.Physical.build from_selector base in
  List.iter
    (fun v ->
      let args = [ Eval.V_scalar (Value.Str v) ] in
      Alcotest.check rel_testable
        (Fmt.str "lookup %s" v)
        (Access_path.Logical.apply logical args)
        (Access_path.Physical.apply physical args))
    [ "n0"; "n7"; "n19"; "absent" ]

let test_physical_unsupported () =
  let sel =
    {
      Defs.sel_name = "weird";
      sel_formal = "Rel";
      sel_formal_schema = edge_schema;
      sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(Cmp (Ne, field "r" "src", Param "Obj"));
    }
  in
  let base = Relation.of_list edge_schema (chain 3) in
  match Access_path.Physical.build sel base with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Access_path.Unsupported _ -> ()

(* ------------------------------------------------------------------ *)
(* Physical plans *)

let test_plan_compiles_pushed () =
  let db = make_db () in
  let q = restricted ~attr:"head" "ahead2" in
  let d = Planner.plan db q in
  (match d.Planner.d_plan with
  | Some plan ->
    let text = Fmt.str "%a" Plan.pp plan in
    Alcotest.check Alcotest.bool "plan uses an index" true
      (contains text "index")
  | None -> Alcotest.fail "expected a compiled plan");
  Alcotest.check rel_testable "plan execution = direct"
    (Database.query db q) (Planner.execute db d)

let test_plan_ablation_same_result () =
  let db = make_db ~edges:(chain 12) () in
  let q = restricted ~attr:"head" "ahead2" in
  let d = Planner.plan db q in
  Alcotest.check rel_testable "indexes off = indexes on"
    (Planner.execute ~use_indexes:true db d)
    (Planner.execute ~use_indexes:false db d)

let test_plan_rejects_applications () =
  let db = make_db () in
  match
    Plan.of_range
      ~schema_of_rel:(fun n -> Relation.schema (Database.get db n))
      Ast.(Construct (Rel "Edge", "tc", []))
  with
  | _ -> Alcotest.fail "expected Not_compilable"
  | exception Plan.Not_compilable _ -> ()

let test_plan_correlated () =
  (* correlated nested range compiles to a per-binding re-evaluated step *)
  let db = make_db () in
  let q =
    Ast.(
      Comp
        [
          branch
            [
              ("r", Rel "Edge");
              ( "s",
                Comp
                  [
                    branch [ ("x", Rel "Edge") ]
                      ~where:(eq (field "x" "src") (field "r" "dst"));
                  ] );
            ]
            ~target:[ field "r" "src"; field "s" "dst" ];
        ])
  in
  let plan =
    Plan.of_range
      ~schema_of_rel:(fun n -> Relation.schema (Database.get db n))
      q
  in
  Alcotest.check Alcotest.bool "second step correlated" true
    (match (List.hd plan.Plan.p_branches).Plan.bp_steps with
    | [ _; s ] -> s.Plan.s_correlated
    | _ -> false);
  Alcotest.check rel_testable "correlated plan executes correctly"
    (Database.query db q)
    (Plan.run (Database.eval_env db) plan)

let test_plan_reorders_binders () =
  (* the constant-keyed binder is listed last but should be scheduled
     first *)
  let db = make_db ~edges:(chain 8) () in
  let q =
    Ast.(
      Comp
        [
          branch
            [ ("a", Rel "Edge"); ("b", Rel "Edge") ]
            ~target:[ field "a" "src"; field "b" "dst" ]
            ~where:
              (conj
                 (eq (field "a" "dst") (field "b" "src"))
                 (eq (field "b" "src") (str "n3")));
        ])
  in
  let plan =
    Plan.of_range
      ~schema_of_rel:(fun n -> Relation.schema (Database.get db n))
      q
  in
  (match (List.hd plan.Plan.p_branches).Plan.bp_steps with
  | first :: _ ->
    Alcotest.check Alcotest.string "constant-keyed binder first" "b"
      first.Plan.s_var
  | [] -> Alcotest.fail "empty plan");
  Alcotest.check rel_testable "reordered plan correct" (Database.query db q)
    (Plan.run (Database.eval_env db) plan)

(* Property: compiled plans (indexes on and off) equal direct evaluation
   on random three-way-join queries. *)
let prop_plan_equals_direct =
  let open QCheck in
  let open Ast in
  let term v =
    Gen.oneof
      [
        Gen.oneofl [ field v "src"; field v "dst" ];
        Gen.map (fun i -> str (Fmt.str "n%d" i)) (Gen.int_bound 8);
      ]
  in
  let vars = [ "a"; "b"; "c" ] in
  let cmp =
    Gen.map3
      (fun op x y -> Cmp (op, x, y))
      (Gen.oneofl [ Eq; Ne; Lt; Le ])
      (Gen.oneof (List.map term vars))
      (Gen.oneof (List.map term vars))
  in
  let gen =
    Gen.map2
      (fun f1 f2 ->
        Comp
          [
            branch
              [ ("a", Rel "Edge"); ("b", Rel "Edge"); ("c", Rel "Edge") ]
              ~target:[ field "a" "src"; field "c" "dst" ]
              ~where:(conj f1 f2);
          ])
      cmp cmp
  in
  QCheck.Test.make ~name:"plan = direct (indexes on and off)" ~count:120
    (make gen ~print:range_to_string) (fun q ->
      let db =
        let db = Database.create () in
        Database.declare db "Edge" edge_schema;
        let edge a b = Dc_relation.Tuple.make2 (s a) (s b) in
        Database.set db "Edge"
          (Relation.of_list edge_schema
             (chain 6 @ [ edge "n2" "n5"; edge "n0" "n4" ]));
        db
      in
      let direct = Database.query db q in
      let plan =
        Plan.of_range
          ~schema_of_rel:(fun n -> Relation.schema (Database.get db n))
          q
      in
      let env = Database.eval_env db in
      Relation.equal direct (Plan.run ~use_indexes:true env plan)
      && Relation.equal direct (Plan.run ~use_indexes:false env plan))

(* ------------------------------------------------------------------ *)
(* Prepared query forms *)

let test_prepared_nonrecursive () =
  let db = make_db ~edges:(chain 10) () in
  (* form: two-step pairs whose head equals the parameter *)
  let form =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "ahead2", [])) ]
            ~where:(eq (field "r" "head") (Param "Obj"));
        ])
  in
  let prepared =
    Planner.prepare db ~params:[ ("Obj", Value.TStr) ] form
  in
  Alcotest.check Alcotest.bool "compiled to a plan" true
    (contains (Planner.prepared_description prepared) "compiled plan");
  List.iter
    (fun v ->
      (* reference: substitute the constant and evaluate directly *)
      let direct =
        Database.query db
          Ast.(
            Comp
              [
                branch
                  [ ("r", Construct (Rel "Edge", "ahead2", [])) ]
                  ~where:(eq (field "r" "head") (str v));
              ])
      in
      Alcotest.check rel_testable
        (Fmt.str "prepared(%s) = direct" v)
        direct
        (Planner.run_prepared prepared [ Value.Str v ]))
    [ "n0"; "n4"; "n9"; "absent" ]

let test_prepared_recursive_falls_back () =
  let db = make_db ~edges:(chain 6) () in
  let form =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "tc", [])) ]
            ~where:(eq (field "r" "src") (Param "Obj"));
        ])
  in
  let prepared = Planner.prepare db ~params:[ ("Obj", Value.TStr) ] form in
  Alcotest.check Alcotest.bool "interpreted" true
    (contains (Planner.prepared_description prepared) "interpreted");
  let result = Planner.run_prepared prepared [ Value.Str "n2" ] in
  Alcotest.check Alcotest.int "reachable from n2" 4 (Relation.cardinal result)

let test_prepared_argument_checks () =
  let db = make_db () in
  let form = Ast.(Comp [ branch [ ("r", Rel "Edge") ] ~where:(eq (field "r" "src") (Param "Obj")) ]) in
  let prepared = Planner.prepare db ~params:[ ("Obj", Value.TStr) ] form in
  (match Planner.run_prepared prepared [] with
  | _ -> Alcotest.fail "expected arity error"
  | exception Eval.Runtime_error _ -> ());
  match Planner.run_prepared prepared [ Value.Int 3 ] with
  | _ -> Alcotest.fail "expected type error"
  | exception Eval.Runtime_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Materialized views with incremental maintenance *)

let test_materialize_insert () =
  let db = make_db ~edges:(chain 20) () in
  let view = Materialize.create db ~constructor:"tc" ~base:"Edge" ~args:[] in
  let initial = Materialize.value view in
  Alcotest.check Alcotest.int "initial closure" (20 * 21 / 2)
    (Relation.cardinal initial);
  (* extend the chain by one edge; the view must match a recomputation *)
  Materialize.insert view [ pair "n20" "n21" ];
  let maintained = Materialize.value view in
  let recomputed = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
  Alcotest.check rel_testable "maintained = recomputed" recomputed maintained;
  Alcotest.check Alcotest.int "one more generation" (21 * 22 / 2)
    (Relation.cardinal maintained);
  (* the incremental run derives far less than a recomputation would *)
  let incr_derived = (Materialize.last_stats view).Fixpoint.tuples_derived in
  Materialize.refresh view;
  let full_derived = (Materialize.last_stats view).Fixpoint.tuples_derived in
  Alcotest.check Alcotest.bool
    (Fmt.str "incremental cheaper (%d vs %d)" incr_derived full_derived)
    true
    (incr_derived * 2 < full_derived)

let test_materialize_insert_random () =
  (* property-style: random graph, random extra edges, always equal *)
  let rng = ref 11 in
  for _ = 1 to 5 do
    incr rng;
    let base = Dc_workload.Graph_gen.random_graph ~seed:!rng ~nodes:12 ~edges:20 in
    let db = Database.create () in
    Database.declare db "Edge" edge_schema;
    Database.set db "Edge"
      (Relation.fold
         (fun t acc -> Relation.add_unchecked t acc)
         base (Relation.empty edge_schema));
    Database.define_constructor db (Constructor.transitive_closure ());
    let view = Materialize.create db ~constructor:"tc" ~base:"Edge" ~args:[] in
    let extra =
      Dc_workload.Graph_gen.random_graph ~seed:(!rng + 100) ~nodes:12 ~edges:5
    in
    Materialize.insert view
      (List.filter
         (fun t -> not (Relation.mem t (Database.get db "Edge")))
         (Relation.to_list extra));
    let recomputed = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
    Alcotest.check rel_testable "maintained = recomputed under random growth"
      recomputed (Materialize.value view)
  done

let test_materialize_delete () =
  let db = make_db ~edges:(chain 6) () in
  let view = Materialize.create db ~constructor:"tc" ~base:"Edge" ~args:[] in
  Materialize.delete view (pair "n3" "n4");
  let recomputed = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
  Alcotest.check rel_testable "delete recomputes" recomputed
    (Materialize.value view);
  Alcotest.check Alcotest.bool "chain broken" false
    (Relation.mem (pair "n0" "n6") (Materialize.value view))

(* Property: planner-chosen methods agree with direct evaluation on random
   graphs and random source restrictions. *)
let prop_planner_agrees =
  let arb =
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 20) (pair (int_bound 7) (int_bound 7)))
        (int_bound 7))
  in
  QCheck.Test.make ~name:"planner methods = direct" ~count:40 arb
    (fun (edges, start) ->
      let edges =
        List.map (fun (a, b) -> pair (Fmt.str "n%d" a) (Fmt.str "n%d" b)) edges
      in
      let db =
        let db = Database.create () in
        Database.declare db "Edge" edge_schema;
        Database.set db "Edge" (Relation.of_list edge_schema edges);
        Database.define_constructor db (Constructor.transitive_closure ());
        Database.define_constructor db (Constructor.ahead_2 ());
        db
      in
      List.for_all
        (fun (con, attr) ->
          let q = restricted ~attr ~value:(Fmt.str "n%d" start) con in
          let d = Planner.plan db q in
          Relation.equal (Database.query db q) (Planner.execute db d))
        [ ("tc", "src"); ("ahead2", "head") ])

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_compile"
    [
      ("depgraph", [ Alcotest.test_case "sccs" `Quick test_depgraph ]);
      ( "quant-graph",
        [
          Alcotest.test_case "recursive detected" `Quick
            test_quant_graph_recursive;
          Alcotest.test_case "mutual cycle through two heads" `Quick
            test_quant_graph_mutual;
          Alcotest.test_case "acyclic detected" `Quick test_quant_graph_acyclic;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "inline selector" `Quick test_inline_selector;
          Alcotest.test_case "inline constructor" `Quick test_inline_constructor;
          Alcotest.test_case "N1 flatten" `Quick test_flatten_n1;
          Alcotest.test_case "N2/N3 flatten" `Quick test_flatten_n2_n3;
        ] );
      ( "planner",
        [
          Alcotest.test_case "pushed (non-recursive)" `Quick
            test_push_nonrecursive;
          Alcotest.test_case "magic (recursive + constant)" `Quick
            test_magic_route;
          Alcotest.test_case "magic with residual" `Quick
            test_magic_with_residual;
          Alcotest.test_case "direct (no restriction)" `Quick test_direct_route;
          Alcotest.test_case "decompiled (selector over view)" `Quick
            test_decompiled_route;
          Alcotest.test_case "explain" `Quick test_explain_output;
        ] );
      ( "access-paths",
        [
          Alcotest.test_case "logical = physical" `Quick test_access_paths_agree;
          Alcotest.test_case "unsupported predicate" `Quick
            test_physical_unsupported;
        ] );
      ( "plan",
        [
          Alcotest.test_case "compiled for pushed" `Quick
            test_plan_compiles_pushed;
          Alcotest.test_case "ablation agrees" `Quick
            test_plan_ablation_same_result;
          Alcotest.test_case "rejects applications" `Quick
            test_plan_rejects_applications;
          Alcotest.test_case "correlated step" `Quick test_plan_correlated;
          Alcotest.test_case "binder reordering" `Quick
            test_plan_reorders_binders;
        ] );
      ( "prepared",
        [
          Alcotest.test_case "compiled form" `Quick test_prepared_nonrecursive;
          Alcotest.test_case "recursive fallback" `Quick
            test_prepared_recursive_falls_back;
          Alcotest.test_case "argument checks" `Quick
            test_prepared_argument_checks;
        ] );
      ( "materialize",
        [
          Alcotest.test_case "insert maintains" `Quick test_materialize_insert;
          Alcotest.test_case "random growth" `Quick
            test_materialize_insert_random;
          Alcotest.test_case "delete recomputes" `Quick test_materialize_delete;
        ] );
      ("properties", qcheck [ prop_planner_agrees; prop_plan_equals_direct ]);
    ]
