(* Tests for Dc_relation: values, schemas, tuples, relations, algebra. *)

open Dc_relation

let i n = Value.Int n
let s v = Value.Str v

let rel_testable = Alcotest.testable Relation.pp Relation.equal

let bin = Schema.make [ ("src", Value.TInt); ("dst", Value.TInt) ]

let pairs l = Relation.of_pairs bin (List.map (fun (a, b) -> (i a, i b)) l)

let test_value_order () =
  Alcotest.check Alcotest.bool "int order" true (Value.compare (i 1) (i 2) < 0);
  Alcotest.check Alcotest.bool "str order" true
    (Value.compare (s "a") (s "b") < 0);
  Alcotest.check Alcotest.bool "cross-type total" true
    (Value.compare (i 1) (s "a") <> 0)

let test_value_arith () =
  Alcotest.check Alcotest.bool "int add" true
    (Value.equal (Value.add (i 2) (i 3)) (i 5));
  Alcotest.check Alcotest.bool "str add" true
    (Value.equal (Value.add (s "a") (s "b")) (s "ab"));
  match Value.add (i 1) (s "x") with
  | _ -> Alcotest.fail "expected Type_error"
  | exception Value.Type_error _ -> ()

let test_schema_key () =
  let sch =
    Schema.make ~key:[ "id" ] [ ("id", Value.TInt); ("v", Value.TStr) ]
  in
  Alcotest.check Alcotest.(list int) "key positions" [ 0 ]
    (Schema.key_positions sch);
  Alcotest.check Alcotest.bool "not whole tuple" false
    (Schema.key_is_whole_tuple sch);
  match Schema.make [ ("x", Value.TInt); ("x", Value.TStr) ] with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Schema.Schema_error _ -> ()

let test_tuple_project () =
  let t = Tuple.of_list [ i 1; i 2; i 3 ] in
  Alcotest.check Alcotest.bool "project [2;0]" true
    (Tuple.equal (Tuple.project t [ 2; 0 ]) (Tuple.of_list [ i 3; i 1 ]))

let test_set_ops () =
  let a = pairs [ (1, 2); (2, 3) ] and b = pairs [ (2, 3); (3, 4) ] in
  Alcotest.check rel_testable "union"
    (pairs [ (1, 2); (2, 3); (3, 4) ])
    (Relation.union a b);
  Alcotest.check rel_testable "inter" (pairs [ (2, 3) ]) (Relation.inter a b);
  Alcotest.check rel_testable "diff" (pairs [ (1, 2) ]) (Relation.diff a b);
  Alcotest.check Alcotest.bool "subset" true
    (Relation.subset (Relation.inter a b) a)

let test_type_check () =
  let r = Relation.empty bin in
  match Relation.add (Tuple.of_list [ i 1; s "x" ]) r with
  | _ -> Alcotest.fail "expected Type_mismatch"
  | exception Relation.Type_mismatch _ -> ()

let test_join () =
  let a = pairs [ (1, 2); (2, 3) ] and b = pairs [ (2, 9); (3, 7) ] in
  let j = Algebra.join ~on:[ (1, 0) ] a b in
  Alcotest.check Alcotest.int "join size" 2 (Relation.cardinal j);
  Alcotest.check Alcotest.bool "join content" true
    (Relation.mem (Tuple.of_list [ i 1; i 2; i 2; i 9 ]) j)

let test_compose () =
  let a = pairs [ (1, 2); (2, 3) ] and b = pairs [ (2, 5); (3, 6) ] in
  Alcotest.check rel_testable "compose"
    (pairs [ (1, 5); (2, 6) ])
    (Algebra.compose a b)

let test_tc () =
  let edges = pairs [ (1, 2); (2, 3); (3, 1) ] in
  let tc = Algebra.transitive_closure edges in
  Alcotest.check Alcotest.int "cycle closure is complete" 9
    (Relation.cardinal tc)

let test_project_dedup () =
  let r = pairs [ (1, 2); (1, 3) ] in
  let p = Algebra.project [ 0 ] r in
  Alcotest.check Alcotest.int "dedup" 1 (Relation.cardinal p)

let test_index () =
  let r = pairs [ (1, 2); (1, 3); (2, 4) ] in
  let idx = Index.build [ 0 ] r in
  Alcotest.check Alcotest.int "bucket count" 2 (Index.buckets idx);
  Alcotest.check Alcotest.int "lookup 1" 2
    (List.length (Index.lookup_values idx [ i 1 ]));
  Alcotest.check Alcotest.int "lookup missing" 0
    (List.length (Index.lookup_values idx [ i 9 ]))

let test_csv_roundtrip () =
  let sch = Schema.make [ ("name", Value.TStr); ("n", Value.TInt) ] in
  let r =
    Relation.of_list sch
      [
        Tuple.of_list [ s "plain"; i 1 ];
        Tuple.of_list [ s "with,comma"; i 2 ];
        Tuple.of_list [ s "with\"quote"; i 3 ];
      ]
  in
  let path = Filename.temp_file "dc_csv" ".csv" in
  Csv.save r path;
  let r' = Csv.load sch path in
  Sys.remove path;
  Alcotest.check rel_testable "roundtrip" r r'

let test_csv_types () =
  let sch = Schema.make [ ("n", Value.TInt) ] in
  match Csv.of_lines ~header:false sch [ "notanint" ] with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Csv.Parse_error _ -> ()

let test_schema_project_rename () =
  let sch =
    Schema.make ~key:[ "id" ]
      [ ("id", Value.TInt); ("name", Value.TStr); ("age", Value.TInt) ]
  in
  let p = Schema.project sch [ 2; 0 ] ~key:None in
  Alcotest.check Alcotest.(list string) "projected names" [ "age"; "id" ]
    (Schema.attr_names p);
  let r = Schema.rename sch [ "k"; "n"; "a" ] in
  Alcotest.check Alcotest.(list string) "renamed" [ "k"; "n"; "a" ]
    (Schema.attr_names r);
  Alcotest.check Alcotest.(list int) "key positions preserved" [ 0 ]
    (Schema.key_positions r);
  match Schema.rename sch [ "x" ] with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Schema.Schema_error _ -> ()

let test_with_schema () =
  let r = pairs [ (1, 2) ] in
  let renamed =
    Relation.with_schema (Schema.make [ ("a", Value.TInt); ("b", Value.TInt) ]) r
  in
  Alcotest.check Alcotest.(list string) "viewed names" [ "a"; "b" ]
    (Schema.attr_names (Relation.schema renamed));
  Alcotest.check Alcotest.bool "tuples shared" true (Relation.equal r renamed);
  match
    Relation.with_schema (Schema.make [ ("a", Value.TStr); ("b", Value.TInt) ]) r
  with
  | _ -> Alcotest.fail "expected Type_mismatch"
  | exception Relation.Type_mismatch _ -> ()

let test_refinements () =
  let sch =
    Schema.make
      ~refinements:[ ("id", Schema.Int_range (1, 100)) ]
      [ ("id", Value.TInt); ("v", Value.TStr) ]
  in
  Alcotest.check Alcotest.bool "in range" true
    (Tuple.in_domain sch (Tuple.make2 (i 50) (s "x")));
  Alcotest.check Alcotest.bool "out of range" false
    (Tuple.in_domain sch (Tuple.make2 (i 0) (s "x")));
  (* enforced by checked insertion *)
  (match Relation.add (Tuple.make2 (i 101) (s "x")) (Relation.empty sch) with
  | _ -> Alcotest.fail "expected Type_mismatch"
  | exception Relation.Type_mismatch _ -> ());
  (* survives project and rename *)
  let p = Schema.project sch [ 0 ] ~key:None in
  Alcotest.check Alcotest.bool "projection keeps refinement" true
    (Schema.attr_refinement p 0 = Schema.Int_range (1, 100));
  let r = Schema.rename sch [ "k"; "w" ] in
  Alcotest.check Alcotest.bool "rename keeps refinement" true
    (Schema.attr_refinement r 0 = Schema.Int_range (1, 100))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop k =
    k + nn <= nh && (String.sub haystack k nn = needle || loop (k + 1))
  in
  nn = 0 || loop 0

let test_pp_table () =
  let out = Fmt.str "%a" Relation.pp_table (pairs [ (1, 2); (10, 20) ]) in
  Alcotest.check Alcotest.bool "has header" true (contains out "src");
  Alcotest.check Alcotest.bool "has count" true (contains out "(2 tuples)")

let test_semijoin () =
  let a = pairs [ (1, 2); (3, 4); (5, 6) ] in
  let b = pairs [ (2, 9); (6, 9) ] in
  Alcotest.check rel_testable "semijoin"
    (pairs [ (1, 2); (5, 6) ])
    (Algebra.semijoin ~on:[ (1, 0) ] a b)

let prop_join_is_filtered_product =
  QCheck.Test.make ~name:"join = product + filter" ~count:60
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_bound 12)
          (QCheck.pair (QCheck.int_bound 4) (QCheck.int_bound 4)))
       (QCheck.list_of_size (QCheck.Gen.int_bound 12)
          (QCheck.pair (QCheck.int_bound 4) (QCheck.int_bound 4))))
    (fun (la, lb) ->
      let a = pairs la and b = pairs lb in
      let joined = Algebra.join ~on:[ (1, 0) ] a b in
      let filtered =
        Relation.filter
          (fun t -> Value.equal (Tuple.get t 1) (Tuple.get t 2))
          (Algebra.product a b)
      in
      Relation.equal joined filtered)

(* Property tests on set-algebra laws. *)
let arb_rel =
  let open QCheck in
  let gen_pair = Gen.(pair (int_bound 8) (int_bound 8)) in
  make
    Gen.(
      map
        (fun ps -> pairs (List.map (fun (a, b) -> (a, b)) ps))
        (list_size (int_bound 30) gen_pair))
    ~print:(fun r -> Fmt.str "%a" Relation.pp r)

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes" ~count:100
    (QCheck.pair arb_rel arb_rel) (fun (a, b) ->
      Relation.equal (Relation.union a b) (Relation.union b a))

let prop_diff_union =
  QCheck.Test.make ~name:"(a-b) ∪ (a∩b) = a" ~count:100
    (QCheck.pair arb_rel arb_rel) (fun (a, b) ->
      Relation.equal
        (Relation.union (Relation.diff a b) (Relation.inter a b))
        a)

let prop_tc_idempotent =
  QCheck.Test.make ~name:"tc(tc(r)) = tc(r)" ~count:50 arb_rel (fun r ->
      let tc = Algebra.transitive_closure r in
      Relation.equal tc (Algebra.transitive_closure tc))

let prop_tc_contains =
  QCheck.Test.make ~name:"r ⊆ tc(r)" ~count:100 arb_rel (fun r ->
      Relation.subset r (Algebra.transitive_closure r))

let prop_compose_assoc =
  QCheck.Test.make ~name:"compose associative" ~count:60
    (QCheck.triple arb_rel arb_rel arb_rel) (fun (a, b, c) ->
      Relation.equal
        (Algebra.compose (Algebra.compose a b) c)
        (Algebra.compose a (Algebra.compose b c)))

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dc_relation"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
        ] );
      ( "schema",
        [
          Alcotest.test_case "keys" `Quick test_schema_key;
          Alcotest.test_case "tuple project" `Quick test_tuple_project;
          Alcotest.test_case "project/rename" `Quick test_schema_project_rename;
          Alcotest.test_case "with_schema view" `Quick test_with_schema;
          Alcotest.test_case "pp_table" `Quick test_pp_table;
          Alcotest.test_case "domain refinements (2.1)" `Quick test_refinements;
        ] );
      ( "relation",
        [
          Alcotest.test_case "set ops" `Quick test_set_ops;
          Alcotest.test_case "type check" `Quick test_type_check;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "transitive closure" `Quick test_tc;
          Alcotest.test_case "project dedup" `Quick test_project_dedup;
          Alcotest.test_case "index" `Quick test_index;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "type errors" `Quick test_csv_types;
        ] );
      ( "properties",
        qcheck
          [
            prop_union_commutes;
            prop_diff_union;
            prop_tc_idempotent;
            prop_tc_contains;
            prop_compose_assoc;
            prop_join_is_filtered_product;
          ] );
    ]
