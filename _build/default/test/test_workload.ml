(* Tests for Dc_workload: PRNG determinism and range, generator shapes. *)

open Dc_relation
open Dc_workload

let rel_card = Relation.cardinal

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  Alcotest.check Alcotest.(list int) "same seed, same stream" (seq a) (seq b);
  let c = Rng.create 43 in
  Alcotest.check Alcotest.bool "different seed, different stream" false
    (seq (Rng.create 42) = seq c)

let test_rng_range () =
  (* regression: Int64 -> int truncation must never yield negatives *)
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 6 in
    if v < 0 || v >= 6 then Alcotest.failf "out of range: %d" v
  done;
  let r = Rng.create 9 in
  for _ = 1 to 1_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split () =
  let r = Rng.create 1 in
  let s = Rng.split r in
  let a = List.init 10 (fun _ -> Rng.int r 100) in
  let b = List.init 10 (fun _ -> Rng.int s 100) in
  Alcotest.check Alcotest.bool "split streams differ" true (a <> b)

let test_chain () =
  let c = Graph_gen.chain 10 in
  Alcotest.check Alcotest.int "10 edges" 10 (rel_card c);
  Alcotest.check Alcotest.int "closure" 55
    (rel_card (Algebra.transitive_closure c))

let test_cycle () =
  let c = Graph_gen.cycle 6 in
  Alcotest.check Alcotest.int "6 edges" 6 (rel_card c);
  (* in a cycle every node reaches every node *)
  Alcotest.check Alcotest.int "closure complete" 36
    (rel_card (Algebra.transitive_closure c))

let test_binary_tree () =
  let t = Graph_gen.binary_tree 4 in
  Alcotest.check Alcotest.int "2^5-2 edges" 30 (rel_card t)

let test_random_graph_dedup () =
  let g = Graph_gen.random_graph ~seed:3 ~nodes:10 ~edges:40 in
  Alcotest.check Alcotest.int "requested edge count" 40 (rel_card g);
  Relation.iter
    (fun t ->
      if Value.equal (Tuple.get t 0) (Tuple.get t 1) then
        Alcotest.fail "self loop generated")
    g

let test_random_graph_deterministic () =
  let a = Graph_gen.random_graph ~seed:5 ~nodes:20 ~edges:30 in
  let b = Graph_gen.random_graph ~seed:5 ~nodes:20 ~edges:30 in
  Alcotest.check Alcotest.bool "same seed, same graph" true (Relation.equal a b)

let test_layered_acyclic () =
  let g = Graph_gen.layered ~layers:4 ~width:3 in
  Alcotest.check Alcotest.int "3 * 9 edges" 27 (rel_card g);
  (* acyclic: closure has no (x, x) pairs *)
  Relation.iter
    (fun t ->
      if Value.equal (Tuple.get t 0) (Tuple.get t 1) then
        Alcotest.fail "layered graph has a cycle")
    (Algebra.transitive_closure g)

let test_two_chains_disjoint () =
  let g = Graph_gen.two_chains 5 in
  let tc = Algebra.transitive_closure g in
  (* no path from the first chain to the second *)
  Alcotest.check Alcotest.bool "disjoint" false
    (Relation.mem
       (Tuple.make2 (Graph_gen.node 0) (Graph_gen.node 100001))
       tc);
  Alcotest.check Alcotest.int "two closures" 30 (Relation.cardinal tc)

let test_scene_shapes () =
  let infront, ontop = Graph_gen.scene ~depth:6 ~stack:2 in
  Alcotest.check Alcotest.int "infront chain" 6 (rel_card infront);
  (* stacks on objects 0, 2, 4: 3 stacks of 2 *)
  Alcotest.check Alcotest.int "ontop stacks" 6 (rel_card ontop)

let test_bom_acyclic () =
  (* regression for the Rng truncation bug: the hierarchy must be layered *)
  let big = Bom_gen.hierarchy ~seed:42 ~levels:5 ~width:6 ~uses:2 in
  let idx s = int_of_string (String.sub s 1 (String.length s - 1)) in
  Relation.iter
    (fun t ->
      match Tuple.get t 0, Tuple.get t 1 with
      | Value.Str a, Value.Str c ->
        let la = idx a / 6 and lc = idx c / 6 in
        if lc <> la + 1 then
          Alcotest.failf "edge %s (level %d) -> %s (level %d)" a la c lc
      | _ -> Alcotest.fail "non-string parts")
    big;
  Alcotest.check Alcotest.int "4 * 6 * 2 edges" 48 (rel_card big)

let test_bom_quantities () =
  let big = Bom_gen.hierarchy ~seed:1 ~levels:3 ~width:4 ~uses:2 in
  Relation.iter
    (fun t ->
      match Tuple.get t 2 with
      | Value.Int q when q >= 1 && q <= 4 -> ()
      | v -> Alcotest.failf "bad quantity %s" (Value.to_string v))
    big

let test_same_generation_tree () =
  let up, flat, down = Graph_gen.same_generation_tree 3 in
  Alcotest.check Alcotest.int "up edges" 14 (rel_card up);
  Alcotest.check Alcotest.int "down edges" 14 (rel_card down);
  Alcotest.check Alcotest.int "flat" 1 (rel_card flat)

let () =
  Alcotest.run "dc_workload"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "range (truncation regression)" `Quick
            test_rng_range;
          Alcotest.test_case "split" `Quick test_rng_split;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "random graph dedup" `Quick
            test_random_graph_dedup;
          Alcotest.test_case "random graph deterministic" `Quick
            test_random_graph_deterministic;
          Alcotest.test_case "layered acyclic" `Quick test_layered_acyclic;
          Alcotest.test_case "two chains disjoint" `Quick
            test_two_chains_disjoint;
          Alcotest.test_case "scene" `Quick test_scene_shapes;
          Alcotest.test_case "same-generation tree" `Quick
            test_same_generation_tree;
        ] );
      ( "bom",
        [
          Alcotest.test_case "acyclic hierarchy" `Quick test_bom_acyclic;
          Alcotest.test_case "quantity bounds" `Quick test_bom_quantities;
        ] );
    ]
