(* Genealogy: ancestors and same-generation cousins, plus the §3.4
   equivalence — the same rules run as a constructor system and as the
   translated Horn-clause program, with identical results.

     dune exec examples/genealogy.exe *)

open Dc_relation
open Dc_calculus
open Dc_core

let p a b = Tuple.make2 (Value.Str a) (Value.Str b)

let edge = Constructor.binary_schema Value.TStr

let () =
  let db = Database.create () in
  (* Parent(child, parent) for a three-generation family *)
  Database.declare db "Parent" edge;
  Database.insert_all db "Parent"
    [
      p "alice" "carol"; p "bob" "carol";      (* siblings *)
      p "carol" "erika"; p "dan" "erika";      (* carol & dan siblings *)
      p "frank" "dan";                         (* frank is alice's cousin-ish *)
    ];

  (* ancestor = transitive closure of Parent *)
  Database.define_constructor db
    (Constructor.transitive_closure ~name:"ancestor" ());
  Fmt.pr "=== Ancestors: Parent{ancestor} ===@.";
  let ancestors = Database.query db Ast.(Construct (Rel "Parent", "ancestor", [])) in
  Fmt.pr "%a@." Relation.pp_table ancestors;

  (* same generation: sg(x,y) <- sibling(x,y);
                      sg(x,y) <- parent(x,u), sg(u,v), parent-inv(v,y) *)
  Database.declare db "Sibling" edge;
  Database.insert_all db "Sibling" [ p "carol" "dan" ];
  Database.declare db "Child" edge;
  Database.set db "Child"
    (Relation.fold
       (fun t acc ->
         Relation.add_unchecked (Tuple.make2 (Tuple.get t 1) (Tuple.get t 0)) acc)
       (Database.get db "Parent")
       (Relation.empty edge));
  Database.define_constructor db (Constructor.same_generation ());
  Fmt.pr "@.=== Same generation (cousins) ===@.";
  let sg =
    Database.query db
      Ast.(
        Construct
          ( Rel "Parent",
            "same_generation",
            [ Arg_range (Rel "Sibling"); Arg_range (Rel "Child") ] ))
  in
  Fmt.pr "%a@." Relation.pp_table sg;
  assert (Relation.mem (p "alice" "frank") sg);

  (* §3.4: run the ancestor rules as a Horn-clause program and compare *)
  Fmt.pr "@.=== Lemma 3.4: same query as Horn clauses ===@.";
  let ctx =
    {
      Dc_datalog.Translate.lookup_constructor = Database.constructor db;
      schema_of =
        (fun n ->
          match Database.get db n with
          | r -> Some (Relation.schema r)
          | exception Database.Error _ -> None);
    }
  in
  let app = Ast.(Construct (Rel "Parent", "ancestor", [])) in
  let program, query_pred = Dc_datalog.Translate.of_application ctx app in
  Fmt.pr "translated program:@.%a@." Dc_datalog.Syntax.pp_program program;
  let edb =
    Dc_datalog.Facts.of_relation "Parent"
      (Database.get db "Parent")
      (Dc_datalog.Facts.empty ())
  in
  let horn = Dc_datalog.Seminaive.query program edb query_pred in
  let horn_rel =
    Dc_datalog.Facts.TS.fold Relation.add_unchecked horn (Relation.empty edge)
  in
  Fmt.pr "@.bottom-up Horn result equals the constructor result: %b@."
    (Relation.equal ancestors horn_rel);
  assert (Relation.equal ancestors horn_rel);

  (* and top-down, PROLOG style (terminates here: the data is acyclic) *)
  let stats = Dc_datalog.Topdown.fresh_stats () in
  let sld = Dc_datalog.Topdown.query ~stats program edb query_pred 2 in
  Fmt.pr "SLD resolution found %d tuples in %d resolution steps@."
    (List.length sld) stats.Dc_datalog.Topdown.resolution_steps
