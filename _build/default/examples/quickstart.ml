(* Quickstart: the paper's constructs through the OCaml API.

     dune exec examples/quickstart.exe

   Walks through: declaring typed relations (§2.2), a selector (§2.3), a
   recursive constructor with least-fixpoint semantics (§3.1-3.2), the
   positivity check (§3.3), and the query compiler's EXPLAIN (§4). *)

open Dc_relation
open Dc_calculus
open Dc_core

let section title = Fmt.pr "@.=== %s ===@." title

let () =
  section "1. Typed relations with key constraints (2.2)";
  let edge_schema = Constructor.binary_schema Value.TStr in
  let db = Database.create () in
  Database.declare db "Edge" edge_schema;
  Database.insert_all db "Edge"
    (List.map
       (fun (a, b) -> Tuple.make2 (Value.Str a) (Value.Str b))
       [ ("a", "b"); ("b", "c"); ("c", "d"); ("x", "y") ]);
  Fmt.pr "Edge =@.%a@." Relation.pp_table (Database.get db "Edge");

  section "2. A selector names a predicate-defined subrelation (2.3)";
  Database.define_selector db
    {
      Defs.sel_name = "from";
      sel_formal = "Rel";
      sel_formal_schema = edge_schema;
      sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(eq (field "r" "src") (Param "Obj"));
    };
  let selected =
    Database.query db
      Ast.(Select (Rel "Edge", "from", [ Arg_scalar (str "b") ]))
  in
  Fmt.pr "Edge[from(\"b\")] =@.%a@." Relation.pp_table selected;

  section "3. A recursive constructor: transitive closure (3.1)";
  (* CONSTRUCTOR tc FOR Rel: edgerel (): edgerel;
     BEGIN EACH r IN Rel: TRUE,
           <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel{tc}: f.dst = b.src
     END tc *)
  Database.define_constructor db (Constructor.transitive_closure ());
  let closure = Database.query db Ast.(Construct (Rel "Edge", "tc", [])) in
  Fmt.pr "Edge{tc} =@.%a@." Relation.pp_table closure;
  (match Database.last_stats db with
  | Some st -> Fmt.pr "fixpoint: %a@." Fixpoint.pp_stats st
  | None -> ());

  section "4. Selector and constructor compose (3.1)";
  let composed =
    Database.query db
      Ast.(
        Construct (Select (Rel "Edge", "from", [ Arg_scalar (str "b") ]), "tc", []))
  in
  Fmt.pr "Edge[from(\"b\")]{tc} =@.%a@." Relation.pp_table composed;

  section "5. The positivity check rejects non-monotone recursion (3.3)";
  (match Database.define_constructor db (Constructor.nonsense ()) with
  | () -> assert false
  | exception Database.Error msg -> Fmt.pr "rejected: %s@." msg);

  section "6. The query compiler picks evaluation methods (4)";
  let restricted =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "tc", [])) ]
            ~where:(eq (field "r" "src") (str "a"));
        ])
  in
  let decision = Dc_compile.Planner.plan db restricted in
  Fmt.pr "%a@." Dc_compile.Planner.explain decision;
  Fmt.pr "result =@.%a@." Relation.pp_table
    (Dc_compile.Planner.execute db decision)
