(* Network reachability dashboard: the §4 runtime machinery working
   together on a live workload —

   - a materialized constructed relation (the reachability closure) kept
     up to date incrementally as links are added (Materialize, [ShTZ 84]);
   - a prepared query form ("which hosts can S reach?") compiled once with
     its parameter as a dummy constant and executed per request;
   - a physical access path serving the same lookups from a partition of
     the materialized closure.

     dune exec examples/network_dashboard.exe *)

open Dc_relation
open Dc_calculus
open Dc_core
open Dc_workload

let host i = Graph_gen.node i

let () =
  (* a random sparse network *)
  let db = Database.create () in
  Database.declare db "Link" Graph_gen.edge_schema;
  Database.set db "Link"
    (Algebra.rename [ "src"; "dst" ]
       (Graph_gen.random_graph ~seed:2026 ~nodes:40 ~edges:70));
  (* left-linear closure: delta maintenance propagates forward *)
  Database.define_constructor db
    (Constructor.transitive_closure ~name:"reach" ~linear:`Left ());

  Fmt.pr "=== Materialize the reachability closure ===@.";
  let view = Dc_compile.Materialize.create db ~constructor:"reach" ~base:"Link" ~args:[] in
  Fmt.pr "links: %d, reachable pairs: %d (%a)@."
    (Relation.cardinal (Database.get db "Link"))
    (Relation.cardinal (Dc_compile.Materialize.value view))
    Fixpoint.pp_stats
    (Dc_compile.Materialize.last_stats view);

  Fmt.pr "@.=== Prepared form: reachable-from(S) ===@.";
  let form =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Link", "reach", [])) ]
            ~where:(eq (field "r" "src") (Param "S"));
        ])
  in
  let prepared =
    Dc_compile.Planner.prepare db ~params:[ ("S", Value.TStr) ] form
  in
  Fmt.pr "%s@." (Dc_compile.Planner.prepared_description prepared);
  List.iter
    (fun h ->
      let reachable = Dc_compile.Planner.run_prepared prepared [ host h ] in
      Fmt.pr "%s reaches %d host(s)@." (Value.to_string (host h)) (Relation.cardinal reachable))
    [ 0; 7; 23 ];

  Fmt.pr "@.=== A new link arrives: n0 -> n23 ===@.";
  Dc_compile.Materialize.insert view [ Tuple.make2 (host 0) (host 23) ];
  Fmt.pr "reachable pairs now: %d (incremental: %a)@."
    (Relation.cardinal (Dc_compile.Materialize.value view))
    Fixpoint.pp_stats
    (Dc_compile.Materialize.last_stats view);
  let reachable = Dc_compile.Planner.run_prepared prepared [ host 0 ] in
  Fmt.pr "n0 now reaches %d host(s)@." (Relation.cardinal reachable);

  Fmt.pr "@.=== Serving lookups from a physical access path (4) ===@.";
  let from_selector =
    {
      Defs.sel_name = "from";
      sel_formal = "Rel";
      sel_formal_schema = Graph_gen.edge_schema;
      sel_params = [ Defs.Scalar_param ("S", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(eq (field "r" "src") (Param "S"));
    }
  in
  let path =
    Dc_compile.Access_path.Physical.build from_selector
      (Dc_compile.Materialize.value view)
  in
  let t0 = Unix.gettimeofday () in
  let total = ref 0 in
  for h = 0 to 39 do
    total :=
      !total
      + Relation.cardinal
          (Dc_compile.Access_path.Physical.apply path [ Eval.V_scalar (host h) ])
  done;
  Fmt.pr "40 lookups, %d pairs, %.2f ms total@." !total
    ((Unix.gettimeofday () -. t0) *. 1000.);
  assert (!total = Relation.cardinal (Dc_compile.Materialize.value view))
