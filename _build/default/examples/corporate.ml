(* Corporate hierarchy: reporting chains with selector-guarded updates and
   negation under the closed-world reading (§3.3/§3.4).

     dune exec examples/corporate.exe

   Shows: a keyed Employee relation (§2.2), referential integrity as a
   selector (the paper's refint example, §2.3), the reporting-chain
   constructor, and a query with NOT over a constructed relation (legal:
   the application is not recursive through the negation). *)

open Dc_relation
open Dc_calculus
open Dc_core

let s v = Value.Str v

let () =
  let db = Database.create () in

  (* Employee(id is the key) *)
  let employee_schema =
    Schema.make ~key:[ "id" ] [ ("id", Value.TStr); ("dept", Value.TStr) ]
  in
  Database.declare db "Employee" employee_schema;
  Database.insert_all db "Employee"
    (List.map
       (fun (i, d) -> Tuple.make2 (s i) (s d))
       [
         ("amy", "eng"); ("bea", "eng"); ("cal", "eng");
         ("dot", "sales"); ("eli", "sales"); ("fay", "exec");
       ]);

  (* ReportsTo(worker, boss) with referential integrity into Employee —
     the paper's refint selector (§2.3):
       SELECTOR refint FOR Rel: reportsrel;
       BEGIN EACH r IN Rel: SOME e1, e2 IN Employee
         (r.worker = e1.id AND r.boss = e2.id)
       END refint *)
  let reports_schema = Schema.make [ ("worker", Value.TStr); ("boss", Value.TStr) ] in
  Database.declare db "ReportsTo" reports_schema;
  Database.declare db "Staging" reports_schema;
  Database.define_selector db
    {
      Defs.sel_name = "refint";
      sel_formal = "Rel";
      sel_formal_schema = reports_schema;
      sel_params = [];
      sel_var = "r";
      sel_pred =
        Ast.(
          Some_in
            ( "e1",
              Rel "Employee",
              Some_in
                ( "e2",
                  Rel "Employee",
                  conj
                    (eq (field "r" "worker") (field "e1" "id"))
                    (eq (field "r" "boss") (field "e2" "id")) ) ));
    };

  (* a legal update through the guarded assignment *)
  Database.set db "Staging"
    (Relation.of_list reports_schema
       (List.map
          (fun (w, b) -> Tuple.make2 (s w) (s b))
          [ ("amy", "cal"); ("bea", "cal"); ("cal", "fay"); ("dot", "eli");
            ("eli", "fay") ]));
  Database.assign_selected db "ReportsTo" ~selector:"refint" ~args:[]
    (Ast.Rel "Staging");
  Fmt.pr "=== ReportsTo (after guarded assignment) ===@.%a@." Relation.pp_table
    (Database.get db "ReportsTo");

  (* an illegal one: "zed" is not an employee *)
  Database.set db "Staging"
    (Relation.of_list reports_schema [ Tuple.make2 (s "zed") (s "fay") ]);
  (match
     Database.assign_selected db "ReportsTo" ~selector:"refint" ~args:[]
       (Ast.Rel "Staging")
   with
  | () -> assert false
  | exception Selector.Selector_violation msg ->
    Fmt.pr "@.referential integrity rejected the update:@.  %s@." msg);

  (* chain of command = transitive closure of ReportsTo *)
  Database.define_constructor db
    (Constructor.transitive_closure ~name:"chain" ~src:"worker" ~dst:"boss" ());
  let chain = Ast.(Construct (Rel "ReportsTo", "chain", [])) in
  Fmt.pr "@.=== Chain of command: ReportsTo{chain} ===@.%a@." Relation.pp_table
    (Database.query db chain);

  (* negation over a constructed relation under the closed world (§3.4):
     employees with no boss at all — NOT SOME c IN ReportsTo{chain} (...).
     Legal: the application is complete before the negation applies. *)
  Fmt.pr "@.=== Top of the hierarchy (closed-world negation) ===@.";
  let tops =
    Database.query db
      Ast.(
        Comp
          [
            branch
              [ ("e", Rel "Employee") ]
              ~target:[ field "e" "id" ]
              ~where:
                (Not
                   (Some_in
                      ( "c",
                        Construct (Rel "ReportsTo", "chain", []),
                        eq (field "c" "worker") (field "e" "id") )));
          ])
  in
  Fmt.pr "%a@." Relation.pp_table tops
