examples/genealogy.mli:
