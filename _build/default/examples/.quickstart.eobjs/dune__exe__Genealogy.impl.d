examples/genealogy.ml: Ast Constructor Database Dc_calculus Dc_core Dc_datalog Dc_relation Fmt List Relation Tuple Value
