examples/network_dashboard.mli:
