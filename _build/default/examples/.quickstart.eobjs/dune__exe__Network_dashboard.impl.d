examples/network_dashboard.ml: Algebra Ast Constructor Database Dc_calculus Dc_compile Dc_core Dc_relation Dc_workload Defs Eval Fixpoint Fmt Graph_gen List Relation Tuple Unix Value
