examples/corporate.ml: Ast Constructor Database Dc_calculus Dc_core Dc_relation Defs Fmt List Relation Schema Selector Tuple Value
