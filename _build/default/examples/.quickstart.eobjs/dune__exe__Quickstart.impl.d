examples/quickstart.ml: Ast Constructor Database Dc_calculus Dc_compile Dc_core Dc_relation Defs Fixpoint Fmt List Relation Tuple Value
