examples/corporate.mli:
