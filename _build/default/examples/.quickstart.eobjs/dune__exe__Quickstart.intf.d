examples/quickstart.mli:
