examples/bill_of_materials.ml: Ast Bom_gen Database Dc_calculus Dc_compile Dc_core Dc_relation Dc_workload Defs Eval Fixpoint Fmt List Option Relation Tuple Value
