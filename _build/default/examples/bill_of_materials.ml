(* Bill-of-materials (parts explosion): the classic recursive database
   workload, with quantities multiplied along derivation paths — exercising
   computed target lists inside a recursive constructor.

     dune exec examples/bill_of_materials.exe

   The hierarchy is a small bicycle: assemblies contain components with
   quantities; Contains{explode} derives every (assembly, part, path
   quantity) triple.  A parameterized selector then serves "where used"
   queries through a physical access path (paper §4). *)

open Dc_relation
open Dc_calculus
open Dc_core
open Dc_workload

let str s = Value.Str s
let int i = Value.Int i

let () =
  let db = Database.create () in
  Database.declare db "Contains" Bom_gen.contains_schema;
  Database.insert_all db "Contains"
    (List.map
       (fun (a, c, q) -> Tuple.of_list [ str a; str c; int q ])
       [
         ("bicycle", "frame", 1);
         ("bicycle", "wheel", 2);
         ("bicycle", "drivetrain", 1);
         ("wheel", "rim", 1);
         ("wheel", "spoke", 32);
         ("wheel", "hub", 1);
         ("drivetrain", "crank", 1);
         ("drivetrain", "chain", 1);
         ("crank", "bolt", 4);
         ("hub", "bolt", 2);
       ]);
  Database.define_constructor db (Bom_gen.explode_constructor ());

  Fmt.pr "=== Full parts explosion: Contains{explode} ===@.";
  let exploded = Database.query db Ast.(Construct (Rel "Contains", "explode", [])) in
  Fmt.pr "%a@." Relation.pp_table exploded;

  (* every bolt requirement of the bicycle, with per-path quantities:
     4 via crank (1 crank/drivetrain * 4 bolts) and 2*2=4 via the hubs *)
  Fmt.pr "@.=== Bolts needed per derivation path of \"bicycle\" ===@.";
  let bolts =
    Database.query db
      Ast.(
        Comp
          [
            branch
              [ ("r", Construct (Rel "Contains", "explode", [])) ]
              ~where:
                (conj
                   (eq (field "r" "assembly") (Ast.str "bicycle"))
                   (eq (field "r" "component") (Ast.str "bolt")));
          ])
  in
  Fmt.pr "%a@." Relation.pp_table bolts;

  (* where-used: a selector parameterized by the component *)
  Database.define_selector db
    {
      Defs.sel_name = "uses";
      sel_formal = "Rel";
      sel_formal_schema = Bom_gen.contains_schema;
      sel_params = [ Defs.Scalar_param ("Part", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(eq (field "r" "component") (Param "Part"));
    };
  Fmt.pr "@.=== Where is \"bolt\" used (direct + derived)? ===@.";
  let where_used =
    Database.query db
      Ast.(
        Select
          ( Construct (Rel "Contains", "explode", []),
            "uses",
            [ Arg_scalar (Ast.str "bolt") ] ))
  in
  Fmt.pr "%a@." Relation.pp_table where_used;

  (* the same lookup served by a physical access path (§4): partition the
     exploded relation once, then answer by hash lookup *)
  Fmt.pr "@.=== Same query through a physical access path ===@.";
  let def = Option.get (Database.selector db "uses") in
  let physical = Dc_compile.Access_path.Physical.build def exploded in
  let via_index =
    Dc_compile.Access_path.Physical.apply physical [ Eval.V_scalar (str "bolt") ]
  in
  Fmt.pr "%a@." Relation.pp_table via_index;
  assert (Relation.equal where_used via_index);

  (* scale check on a generated hierarchy *)
  Fmt.pr "@.=== Generated hierarchy (5 levels x 6 parts, 2 uses each) ===@.";
  let big = Bom_gen.hierarchy ~seed:42 ~levels:5 ~width:6 ~uses:2 in
  Database.set db "Contains" big;
  let exploded = Database.query db Ast.(Construct (Rel "Contains", "explode", [])) in
  Fmt.pr "base %d tuples -> exploded %d tuples@." (Relation.cardinal big)
    (Relation.cardinal exploded);
  match Database.last_stats db with
  | Some st -> Fmt.pr "fixpoint: %a@." Fixpoint.pp_stats st
  | None -> ()
