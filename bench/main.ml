(* Benchmark harness: regenerates every experiment of DESIGN.md.

   The paper (VLDB 1985) has no measured tables; its three figures are
   conceptual diagrams and its performance content is a set of explicit
   claims.  Each experiment below reproduces one figure or claim with a
   measured table whose *shape* (who wins, by what trend) must match the
   claim.  EXPERIMENTS.md records the mapping.

     dune exec bench/main.exe               -- all experiment tables + timings
     dune exec bench/main.exe -- e2 e4      -- selected experiments
     dune exec bench/main.exe -- bechamel   -- Bechamel micro-benchmarks only

   Experiments:
     F3  augmented quant graph + plan for the recursive 'ahead' query
     E1  fixpoint iterations track recursion depth (3.1: lim ahead-n)
     E2  set-oriented vs proof-oriented evaluation (1, 4)
     E3  naive vs semi-naive fixpoint (3.1 loop vs differential)
     E4  constraint propagation into recursion (4, Cases 1-3 / capture rule)
     E5  mutual recursion: ahead/above systems (3.1, 3.2)
     E6  constructors = function-free Horn clauses (3.4 lemma)
     E7  logical vs physical access paths (4, runtime level)
     E8  positivity, divergence detection, and the 'strange' example (3.3)
     E9  typed relational checks: key + referential integrity (2.2, 2.3) *)

open Dc_relation
open Dc_calculus
open Dc_core
open Dc_workload

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let ms = Fmt.str "%.2f"

(* ------------------------------------------------------------------ *)
(* Table printing *)

let print_table ~title ~claim header rows =
  Fmt.pr "@.## %s@." title;
  Fmt.pr "paper claim: %s@.@." claim;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Fmt.pr "%s@." (String.concat " | " (List.map2 pad header widths));
  Fmt.pr "%s@."
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter
    (fun row -> Fmt.pr "%s@." (String.concat " | " (List.map2 pad row widths)))
    rows;
  Fmt.pr "@."

let observed fmt = Fmt.pr ("observed: " ^^ fmt ^^ "@.")

(* ------------------------------------------------------------------ *)
(* Shared setup *)

let tc_db ?(strategy = Fixpoint.Seminaive) ?(linear = `Right) edges =
  let db = Database.create ~strategy () in
  Database.declare db "Edge" Graph_gen.edge_schema;
  Database.set db "Edge" edges;
  Database.define_constructor db (Constructor.transitive_closure ~linear ());
  db

let tc_query = Ast.(Construct (Rel "Edge", "tc", []))

let run_tc db =
  let result = Database.query db tc_query in
  let stats = Option.get (Database.last_stats db) in
  (result, stats)

let tc_program =
  Dc_datalog.Syntax.
    [
      rule (atom "path" [ var "X"; var "Y" ]) [ Pos (atom "edge" [ var "X"; var "Y" ]) ];
      rule
        (atom "path" [ var "X"; var "Z" ])
        [
          Pos (atom "edge" [ var "X"; var "Y" ]);
          Pos (atom "path" [ var "Y"; var "Z" ]);
        ];
    ]

let edb_of edges =
  Dc_datalog.Facts.of_relation "edge" edges (Dc_datalog.Facts.empty ())

(* ------------------------------------------------------------------ *)
(* F3: augmented quant graph and plan for the paper's Fig 3 query *)

let exp_f3 () =
  Fmt.pr "@.## F3: augmented quant graph (paper Fig. 3)@.";
  Fmt.pr
    "paper claim: the augmented quant graph of a query over 'ahead' \
     contains a cycle through the constructor head, so the compiler must \
     generate a fixpoint plan; restricting by constants enables a capture \
     rule.@.@.";
  let db = tc_db (Graph_gen.chain 4) in
  (* the unrestricted application: recursive cycle, fixpoint plan *)
  let d1 = Dc_compile.Planner.plan db tc_query in
  Fmt.pr "--- unrestricted application ---@.%a@." Dc_compile.Planner.explain d1;
  (* the restricted application: capture rule *)
  let restricted =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "tc", [])) ]
            ~where:(eq (field "r" "src") (str "n0"));
        ])
  in
  let d2 = Dc_compile.Planner.plan db restricted in
  Fmt.pr "--- restricted application ---@.%a@." Dc_compile.Planner.explain d2

(* ------------------------------------------------------------------ *)
(* E1: fixpoint iterations track recursion depth *)

let exp_e1 () =
  let rows =
    List.map
      (fun n ->
        let edges = Graph_gen.chain n in
        let _, st_r = run_tc (tc_db ~linear:`Right edges) in
        let _, st_n = run_tc (tc_db ~linear:`Non edges) in
        let tc_size = n * (n + 1) / 2 in
        [
          string_of_int n;
          string_of_int tc_size;
          string_of_int st_r.Fixpoint.rounds;
          string_of_int st_n.Fixpoint.rounds;
        ])
      [ 4; 8; 16; 32; 64 ]
  in
  print_table ~title:"E1: iterations to the least fixpoint (3.1, 3.2)"
    ~claim:
      "the sequence ahead-n converges to ahead after finitely many steps; \
       iteration count tracks the recursion depth of the data (linear in \
       the diameter for the paper's right-linear rule, logarithmic for the \
       non-linear variant)"
    [ "chain n"; "|tc|"; "rounds (right-linear)"; "rounds (non-linear)" ]
    rows;
  observed
    "right-linear rounds grow linearly with n; non-linear rounds grow \
     logarithmically";
  (* the convergence series itself: new tuples per round (the lim ahead-n
     sequence made visible) *)
  let series linear =
    let _, st = run_tc (tc_db ~linear (Graph_gen.chain 16)) in
    String.concat " "
      (List.map string_of_int (List.rev st.Fixpoint.round_deltas))
  in
  Fmt.pr "@.convergence series on chain 16 (new tuples per round):@.";
  Fmt.pr "  right-linear: %s@." (series `Right);
  Fmt.pr "  non-linear:   %s@." (series `Non)

(* ------------------------------------------------------------------ *)
(* E2: set-oriented vs proof-oriented *)

let exp_e2 () =
  let budget = { Dc_datalog.Topdown.max_steps = 5_000_000; max_depth = 2_000 } in
  let row name edges =
    let db = tc_db edges in
    let (result, stats), bu_ms = time (fun () -> run_tc db) in
    let sld_stats = Dc_datalog.Topdown.fresh_stats () in
    let sld_outcome, td_ms =
      time (fun () ->
          match
            Dc_datalog.Topdown.query ~budget ~stats:sld_stats tc_program
              (edb_of edges) "path" 2
          with
          | tuples -> Fmt.str "%d tuples" (List.length tuples)
          | exception Dc_datalog.Topdown.Budget_exhausted msg ->
            (* the depth fuse fires on infinite derivations (cyclic data);
               the step fuse on merely-exponential duplicated subproofs *)
            let is_depth =
              let rec has i =
                i + 5 <= String.length msg
                && (String.sub msg i 5 = "depth" || has (i + 1))
              in
              has 0
            in
            if is_depth then "DIVERGES" else "> step budget")
    in
    [
      name;
      string_of_int (Relation.cardinal edges);
      string_of_int (Relation.cardinal result);
      ms bu_ms;
      string_of_int stats.Fixpoint.tuples_produced;
      (if sld_outcome = "DIVERGES" then "-" else ms td_ms);
      string_of_int sld_stats.Dc_datalog.Topdown.resolution_steps;
      sld_outcome;
    ]
  in
  let rows =
    [
      row "chain 64" (Graph_gen.chain 64);
      row "tree d=7" (Graph_gen.binary_tree 7);
      row "layered 6x3" (Graph_gen.layered ~layers:6 ~width:3);
      row "layered 8x3" (Graph_gen.layered ~layers:8 ~width:3);
      row "layered 10x3" (Graph_gen.layered ~layers:10 ~width:3);
      row "cycle 24" (Graph_gen.cycle 24);
    ]
  in
  print_table
    ~title:"E2: set-oriented construction vs proof-oriented resolution (1, 4)"
    ~claim:
      "many recursive queries can be evaluated more efficiently within the \
       set-construction framework of database systems than with \
       proof-oriented methods; and the problem of endless loops is \
       eliminated (3.4)"
    [
      "workload"; "|edges|"; "|tc|"; "bottom-up ms"; "tuples";
      "top-down ms"; "SLD steps"; "SLD outcome";
    ]
    rows;
  observed
    "bottom-up work is bounded by the answer size; SLD re-proves shared \
     subgoals (steps explode on the layered DAGs) and loops forever on \
     cyclic data, where the fixpoint still terminates"

(* ------------------------------------------------------------------ *)
(* E2b: tabling — the proof-oriented world's eventual fix *)

let exp_e2b () =
  let row name edges =
    let db = tc_db edges in
    let (result, _), bu_ms = time (fun () -> run_tc db) in
    let tstats = Dc_datalog.Tabled.fresh_stats () in
    let tabled, tab_ms =
      time (fun () ->
          Dc_datalog.Tabled.query ~stats:tstats tc_program (edb_of edges)
            "path" 2)
    in
    assert (Dc_datalog.Facts.TS.cardinal tabled = Relation.cardinal result);
    [
      name;
      string_of_int (Relation.cardinal result);
      ms bu_ms;
      ms tab_ms;
      string_of_int tstats.Dc_datalog.Tabled.calls;
      string_of_int tstats.Dc_datalog.Tabled.rounds;
    ]
  in
  let rows =
    [
      row "chain 64" (Graph_gen.chain 64);
      row "layered 8x3" (Graph_gen.layered ~layers:8 ~width:3);
      row "cycle 24" (Graph_gen.cycle 24);
    ]
  in
  print_table
    ~title:
      "E2b: tabled resolution — memoization turns proof search into a \
       goal-directed fixpoint"
    ~claim:
      "(extension beyond the paper) the deficiencies E2 exhibits are \
       inherent to memoization-free resolution, not to the top-down \
       direction: tabling terminates on cycles and shares subproofs — \
       converging on the set-oriented behaviour the paper advocates"
    [
      "workload"; "|tc|"; "bottom-up ms"; "tabled ms"; "tabled calls";
      "rounds";
    ]
    rows;
  observed
    "tabling terminates on the cycle where plain SLD diverged, and its \
     work is polynomial like the bottom-up engines — at the price of \
     maintaining per-subgoal tables"

let exp_e3 () =
  let rows =
    List.map
      (fun n ->
        let edges = Graph_gen.chain n in
        let (_, st_naive), naive_ms =
          time (fun () -> run_tc (tc_db ~strategy:Fixpoint.Naive edges))
        in
        let (_, st_semi), semi_ms =
          time (fun () -> run_tc (tc_db ~strategy:Fixpoint.Seminaive edges))
        in
        [
          string_of_int n;
          ms naive_ms;
          string_of_int st_naive.Fixpoint.tuples_derived;
          ms semi_ms;
          string_of_int st_semi.Fixpoint.tuples_derived;
          Fmt.str "%.1fx" (naive_ms /. max 0.001 semi_ms);
        ])
      [ 16; 32; 64; 128; 256 ]
  in
  print_table
    ~title:"E3: naive vs semi-naive fixpoint computation (3.1, 4)"
    ~claim:
      "the REPEAT loop of 3.1 recomputes the whole expression each round; \
       differential (semi-naive) evaluation of the same constructor avoids \
       rediscovering old tuples, with growing advantage in the recursion \
       depth"
    [
      "chain n"; "naive ms"; "naive derived"; "semi-naive ms";
      "semi-naive derived"; "speedup";
    ]
    rows;
  observed
    "the naive engine re-derives the whole closure every round (derived \
     ~n^3/6 tuples) while semi-naive derives each tuple at most twice \
     (~n^2); the speedup factor grows with n"

(* ------------------------------------------------------------------ *)
(* E4: constraint propagation into recursive definitions *)

let exp_e4 () =
  let restricted =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "tc", [])) ]
            ~where:(eq (field "r" "src") (str "n1"));
        ])
  in
  let rows =
    List.map
      (fun n ->
        let edges = Graph_gen.two_chains n in
        (* full fixpoint then filter, on the paper's right-linear rule *)
        let db_r = tc_db ~linear:`Right edges in
        let full, full_ms = time (fun () -> Database.query db_r restricted) in
        (* capture rule on each recursion orientation: magic sets prunes
           everything for the left-linear rule (the magic set stays at the
           query constant), but still derives the whole suffix closure for
           the right-linear one — the orientation condition of [Naqv 84] *)
        let magic linear =
          let db = tc_db ~linear edges in
          let decision = Dc_compile.Planner.plan db restricted in
          (match decision.Dc_compile.Planner.d_method with
          | Dc_compile.Planner.Magic _ -> ()
          | m ->
            Fmt.failwith "expected the magic method, got %s"
              (Dc_compile.Planner.method_name m));
          let pushed, pushed_ms =
            time (fun () -> Dc_compile.Planner.execute db decision)
          in
          assert (Relation.equal full pushed);
          pushed_ms
        in
        let right_ms = magic `Right in
        let left_ms = magic `Left in
        [
          string_of_int n;
          string_of_int (Relation.cardinal full);
          ms full_ms;
          ms right_ms;
          ms left_ms;
          Fmt.str "%.1fx" (full_ms /. max 0.001 left_ms);
        ])
      [ 32; 64; 128; 256 ]
  in
  print_table
    ~title:"E4: propagating restrictions into constructors (4, Cases 1-3)"
    ~claim:
      "propagating the constraints given by pred(r) into the constructor \
       definition may considerably reduce query evaluation costs (4); for \
       recursive cycles, capture rules [Ullm 84] handle the propagation — \
       subject to conditions on the definition (here: the recursion \
       orientation)"
    [
      "two chains n"; "|answer|"; "full+filter ms"; "magic right-lin ms";
      "magic left-lin ms"; "speedup (left)";
    ]
    rows;
  observed
    "with the left-linear rule the capture rule constructs only the tuples \
     reachable from the bound constant (the gap to the full fixpoint grows \
     with n); with the right-linear rule the magic set itself grows along \
     the chain, so little is saved — exactly the special-case sensitivity \
     the paper attributes to capture rules"

(* ------------------------------------------------------------------ *)
(* E5: mutual recursion *)

let exp_e5 () =
  let rows =
    List.map
      (fun depth ->
        let infront, ontop = Graph_gen.scene ~depth ~stack:3 in
        let make strategy =
          let db = Database.create ~strategy () in
          Database.declare db "Infront" (Constructor.infront_schema Value.TStr);
          Database.declare db "Ontop" (Constructor.ontop_schema Value.TStr);
          Database.set db "Infront" infront;
          Database.set db "Ontop" ontop;
          let ahead, above = Constructor.ahead_above () in
          Database.define_constructors db [ ahead; above ];
          db
        in
        let q =
          Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
        in
        let db_s = make Fixpoint.Seminaive in
        let ahead_rel, semi_ms = time (fun () -> Database.query db_s q) in
        let st = Option.get (Database.last_stats db_s) in
        let db_n = make Fixpoint.Naive in
        let ahead_naive, naive_ms = time (fun () -> Database.query db_n q) in
        assert (Relation.equal ahead_rel ahead_naive);
        [
          string_of_int depth;
          string_of_int (Relation.cardinal ahead_rel);
          string_of_int st.Fixpoint.applications;
          string_of_int st.Fixpoint.rounds;
          ms semi_ms;
          ms naive_ms;
        ])
      [ 8; 16; 32; 48 ]
  in
  print_table
    ~title:"E5: mutually recursive constructors ahead/above (3.1, 3.2)"
    ~claim:
      "the values of mutually recursive constructed relations are the \
       limits of mutually defined sequences, computed by one simultaneous \
       fixpoint over the system of applications (3.2)"
    [
      "scene depth"; "|ahead|"; "applications"; "rounds"; "semi-naive ms";
      "naive ms";
    ]
    rows;
  observed
    "one run discovers both applications (ahead and above instances) and \
     iterates them jointly; both strategies converge to the same limit, \
     semi-naive cheaper"

(* ------------------------------------------------------------------ *)
(* E6: constructors = function-free Horn clauses (lemma 3.4) *)

let exp_e6 () =
  let rows =
    List.map
      (fun (name, edges) ->
        let db = tc_db edges in
        let (con_result, _), con_ms = time (fun () -> run_tc db) in
        let ctx =
          {
            Dc_datalog.Translate.lookup_constructor = Database.constructor db;
            schema_of =
              (fun n ->
                match Database.get db n with
                | r -> Some (Relation.schema r)
                | exception Database.Error _ -> None);
          }
        in
        let program, query_pred = Dc_datalog.Translate.of_application ctx tc_query in
        let horn, horn_ms =
          time (fun () ->
              Dc_datalog.Seminaive.query program
                (Dc_datalog.Facts.of_relation "Edge" edges
                   (Dc_datalog.Facts.empty ()))
                query_pred)
        in
        let equal =
          Dc_datalog.Facts.TS.equal horn
            (Relation.fold Dc_datalog.Facts.TS.add con_result
               Dc_datalog.Facts.TS.empty)
        in
        [
          name;
          string_of_int (Relation.cardinal edges);
          string_of_int (Relation.cardinal con_result);
          string_of_bool equal;
          ms con_ms;
          ms horn_ms;
        ])
      [
        ("random 60/90", Graph_gen.random_graph ~seed:7 ~nodes:60 ~edges:90);
        ("random 80/160", Graph_gen.random_graph ~seed:9 ~nodes:80 ~edges:160);
        ("chain 100", Graph_gen.chain 100);
        ("cycle 60", Graph_gen.cycle 60);
      ]
  in
  print_table
    ~title:"E6: constructor mechanism = function-free Horn clauses (3.4)"
    ~claim:
      "the constructor mechanism is as powerful as function-free PROLOG \
       without cut, fail, and negation: the translated Horn program \
       computes the same relation"
    [
      "workload"; "|edges|"; "|result|"; "equal"; "constructor ms";
      "Horn (semi-naive) ms";
    ]
    rows;
  observed
    "results agree on every workload; both are set-oriented bottom-up \
     computations with comparable cost"

(* ------------------------------------------------------------------ *)
(* E7: logical vs physical access paths *)

let exp_e7 () =
  let edges = Graph_gen.random_graph ~seed:3 ~nodes:500 ~edges:4000 in
  let sel =
    {
      Defs.sel_name = "from";
      sel_formal = "Rel";
      sel_formal_schema = Graph_gen.edge_schema;
      sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(eq (field "r" "src") (Param "Obj"));
    }
  in
  let env = Eval.make_env [ ("Edge", edges) ] in
  let logical = Dc_compile.Access_path.Logical.create env sel edges in
  let keys k = List.init k (fun i -> [ Eval.V_scalar (Value.Str (Fmt.str "n%d" (i mod 500))) ]) in
  let rows =
    List.map
      (fun k ->
        let ks = keys k in
        let (), logical_ms =
          time (fun () ->
              List.iter
                (fun args -> ignore (Dc_compile.Access_path.Logical.apply logical args))
                ks)
        in
        let physical, build_ms =
          time (fun () -> Dc_compile.Access_path.Physical.build sel edges)
        in
        let (), lookup_ms =
          time (fun () ->
              List.iter
                (fun args ->
                  ignore (Dc_compile.Access_path.Physical.apply physical args))
                ks)
        in
        [
          string_of_int k;
          ms logical_ms;
          ms build_ms;
          ms lookup_ms;
          ms (build_ms +. lookup_ms);
          (if logical_ms < build_ms +. lookup_ms then "logical" else "physical");
        ])
      [ 1; 10; 100; 1000 ]
  in
  print_table
    ~title:"E7: logical vs physical access paths for parameterized selectors (4)"
    ~claim:
      "a physical access path materializes and partitions the relation by \
       the parameter values; it would be generated only in case of heavy \
       query usage (4)"
    [
      "lookups"; "logical total ms"; "physical build ms";
      "physical lookups ms"; "physical total ms"; "winner";
    ]
    rows;
  observed
    "recomputing the filter wins for one-shot use; the materialized \
     partition amortizes its build cost under repeated use, exactly the \
     paper's 'heavy query usage' condition"

(* ------------------------------------------------------------------ *)
(* E8: positivity and non-monotone definitions *)

let exp_e8 () =
  let check def =
    match Positivity.check_program [ def ] with
    | Ok () -> "accepted"
    | Error _ -> "REJECTED"
  in
  let evaluate (def : Defs.constructor_def) base_rel base_name =
    let db = Database.create ~check_positivity:false () in
    Database.declare db base_name (Relation.schema base_rel);
    Database.set db base_name base_rel;
    Database.define_constructor db def;
    match
      Database.query db Ast.(Construct (Rel base_name, def.Defs.con_name, []))
    with
    | r -> Fmt.str "converges (%d tuples)" (Relation.cardinal r)
    | exception Fixpoint.Divergence _ -> "oscillation detected"
  in
  let str_schema = Schema.make [ ("x", Value.TStr) ] in
  let strs =
    Relation.of_list str_schema
      [ Tuple.make1 (Value.Str "a"); Tuple.make1 (Value.Str "b") ]
  in
  let card_schema = Schema.make [ ("number", Value.TInt) ] in
  let cards =
    Relation.of_list card_schema
      (List.init 7 (fun i -> Tuple.make1 (Value.Int i)))
  in
  let tc = Constructor.transitive_closure () in
  let nonsense = Constructor.nonsense () in
  let strange = Constructor.strange () in
  let rows =
    [
      [ "tc (positive)"; check tc;
        (let db = tc_db (Graph_gen.chain 4) in
         Fmt.str "converges (%d tuples)" (Relation.cardinal (Database.query db tc_query))) ];
      [ "nonsense (3.3)"; check nonsense; evaluate nonsense strs "R" ];
      [ "strange [Hehn 84]"; check strange; evaluate strange cards "Baserel" ];
    ]
  in
  print_table
    ~title:"E8: the positivity constraint and non-monotone recursion (3.3)"
    ~claim:
      "the DBPL compiler accepts only constructors satisfying the \
       positivity constraint; 'nonsense' has no limit (the iteration \
       oscillates), while 'strange' is non-monotone yet its iteration \
       converges to {0,2,4,6} — it is rejected anyway"
    [ "definition"; "static check"; "unchecked evaluation" ]
    rows;
  observed
    "static positivity rejects both non-monotone definitions; the runtime \
     fuse identifies the period-2 oscillation of 'nonsense'; 'strange' \
     converges to 4 tuples exactly as the paper computes"

(* ------------------------------------------------------------------ *)
(* E9: typed relational checks *)

let exp_e9 () =
  let rows =
    List.map
      (fun n ->
        let schema =
          Schema.make ~key:[ "id" ] [ ("id", Value.TInt); ("v", Value.TInt) ]
        in
        let tuples =
          List.init n (fun i -> Tuple.make2 (Value.Int i) (Value.Int (i * 7)))
        in
        let _, keyed_ms = time (fun () -> Relation.of_list schema tuples) in
        let unkeyed = Schema.make [ ("id", Value.TInt); ("v", Value.TInt) ] in
        let _, raw_ms = time (fun () -> Relation.of_list unkeyed tuples) in
        (* referential check through the refint selector pattern (2.3) *)
        let edges = Graph_gen.chain n in
        let db = Database.create () in
        Database.declare db "Edge" Graph_gen.edge_schema;
        Database.set db "Edge" edges;
        Database.declare db "Closure" Graph_gen.edge_schema;
        Database.define_selector db
          {
            Defs.sel_name = "endpoints_exist";
            sel_formal = "Rel";
            sel_formal_schema = Graph_gen.edge_schema;
            sel_params = [];
            sel_var = "r";
            sel_pred =
              Ast.(
                Some_in
                  ( "e1",
                    Rel "Edge",
                    conj
                      (disj
                         (eq (field "r" "src") (field "e1" "src"))
                         (eq (field "r" "src") (field "e1" "dst")))
                      (Some_in
                         ( "e2",
                           Rel "Edge",
                           disj
                             (eq (field "r" "dst") (field "e2" "src"))
                             (eq (field "r" "dst") (field "e2" "dst")) )) ));
          };
        let (), guarded_ms =
          time (fun () ->
              Database.assign_selected db "Closure" ~selector:"endpoints_exist"
                ~args:[] Ast.(Rel "Edge"))
        in
        [
          string_of_int n;
          ms raw_ms;
          ms keyed_ms;
          ms guarded_ms;
        ])
      [ 100; 400; 1600 ]
  in
  print_table
    ~title:"E9: run-time cost of the generated type checks (2.2, 2.3)"
    ~claim:
      "the relational type checker performs a key-uniqueness test on every \
       assignment, and selector-guarded assignment evaluates the selection \
       predicate over the whole right-hand side — DBPL makes these checks \
       explicit, uniform, and optimizable"
    [ "tuples"; "set build ms"; "+ key check ms"; "+ referential check ms" ]
    rows;
  observed
    "key checking adds modest per-tuple cost; the quantified referential \
     predicate dominates, motivating the paper's selector factoring (one \
     uniform place for the optimizer to attack)"

(* ------------------------------------------------------------------ *)
(* E10: incremental maintenance of materialized constructed relations *)

let exp_e10 () =
  let rows =
    List.map
      (fun (nodes, edges) ->
        let base = Graph_gen.random_graph ~seed:5 ~nodes ~edges in
        let extra = Graph_gen.random_graph ~seed:77 ~nodes ~edges:8 in
        let fresh =
          List.filter (fun t -> not (Relation.mem t base)) (Relation.to_list extra)
        in
        let make () =
          (* left-linear recursion: the delta propagates forward *)
          let db = tc_db ~linear:`Left base in
          Dc_compile.Materialize.create db ~constructor:"tc" ~base:"Edge"
            ~args:[]
        in
        let view = make () in
        let closure0 = Relation.cardinal (Dc_compile.Materialize.value view) in
        let (), incr_ms =
          time (fun () -> Dc_compile.Materialize.insert view fresh)
        in
        let incr_stats = Dc_compile.Materialize.last_stats view in
        let (), full_ms = time (fun () -> Dc_compile.Materialize.refresh view) in
        let full_stats = Dc_compile.Materialize.last_stats view in
        [
          Fmt.str "%d/%d +%d" nodes edges (List.length fresh);
          string_of_int closure0;
          ms incr_ms;
          string_of_int incr_stats.Fixpoint.tuples_derived;
          ms full_ms;
          string_of_int full_stats.Fixpoint.tuples_derived;
          Fmt.str "%.1fx" (full_ms /. max 0.001 incr_ms);
        ])
      [ (60, 120); (120, 240); (240, 480) ]
  in
  print_table
    ~title:
      "E10: incremental maintenance of materialized constructed relations \
       (4, [ShTZ 84])"
    ~claim:
      "physical access paths over constructed relations must be maintained \
       under updates; the paper defers to [ShTZ 84] — we reproduce the \
       standard delta-seeded maintenance: propagate only the consequences \
       of the inserted tuples"
    [
      "graph +ins"; "|tc|"; "incremental ms"; "incr derived"; "recompute ms";
      "full derived"; "speedup";
    ]
    rows;
  observed
    "maintenance cost tracks the consequences of the insertion, not the \
     size of the closure; the advantage grows with the relation"

(* ------------------------------------------------------------------ *)
(* E12: the §3.4 design-space comparison — the six alternatives vs the
   constructor approach *)

let exp_e12 () =
  let edges = Graph_gen.random_graph ~seed:21 ~nodes:120 ~edges:220 in
  let reference = Algebra.transitive_closure edges in
  let check r = assert (Relation.equal r reference) in
  let timed name note f =
    let r, t = time f in
    check r;
    [ name; ms t; note ]
  in
  let rows =
    [
      timed "1. program iteration (3.1 loop)"
        "opaque to the optimizer; naive re-evaluation"
        (fun () -> Alternatives.program_iteration edges);
      (let (), t =
         time (fun () ->
             (* answer 200 membership questions tuple-at-a-time *)
             for i = 0 to 199 do
               ignore
                 (Alternatives.membership_function edges
                    (Graph_gen.node (i mod 120))
                    (Graph_gen.node ((i * 7) mod 120)))
             done)
       in
       [ "2a. recursive boolean function"; ms t;
         "200 membership tests, re-traversing each time" ]);
      timed "2b/5. recursive relation function (3.4 listing)"
        "'functions are too general to be optimized'"
        (fun () -> Alternatives.recursive_function edges);
      timed "3. specialized TC operator (QBE/QUEL*)"
        "efficient but closed to other recursions"
        (fun () -> Alternatives.specialized_operator edges);
      timed "4. equational definition (lfp combinator)"
        "declarative; still whole-expression iteration"
        (fun () -> Alternatives.equational edges);
      (let edb = edb_of edges in
       let r, t =
         time (fun () ->
             Dc_datalog.Facts.to_relation Graph_gen.edge_schema
               (Dc_datalog.Facts.singleton_set "path"
                  (Dc_datalog.Seminaive.query tc_program edb "path"))
               "path")
       in
       check r;
       [ "6. logic programming (semi-naive Horn)"; ms t;
         "set-oriented bottom-up; PROLOG reading diverges on cycles" ]);
      (let db = tc_db edges in
       let r, t = time (fun () -> Database.query db tc_query) in
       check (Relation.with_schema Graph_gen.edge_schema r);
       [ "7. CONSTRUCTOR (this paper)"; ms t;
         "declarative, typed, recognized and optimized by the compiler" ]);
    ]
  in
  print_table
    ~title:"E12: the 3.4 design space — six alternatives vs constructors"
    ~claim:
      "program iteration and recursive functions are too general to \
       optimize; specialized operators are procedural and closed; \
       equational definitions and logic programming are close relatives; \
       constructors keep the declarative fixpoint semantics inside the \
       typed language where the compiler can recognize and optimize it"
    [ "alternative (3.4)"; "ms (random 120/220)"; "paper's assessment" ]
    rows;
  observed
    "every alternative computes the same closure; the loop/function forms \
     pay naive re-evaluation, the specialized operator and the constructor \
     pipeline are semi-naive — but only the constructor form is also a \
     first-class, typed, optimizable language object"

(* ------------------------------------------------------------------ *)
(* E11: ablation — what hash-index join scheduling buys the compiled plans *)

let exp_e11 () =
  let rows =
    List.map
      (fun (nodes, edges) ->
        let rel = Graph_gen.random_graph ~seed:13 ~nodes ~edges in
        let db = Database.create () in
        Database.declare db "Edge" Graph_gen.edge_schema;
        Database.set db "Edge" rel;
        Database.define_constructor db (Constructor.ahead_2 ());
        (* two-step pairs from a restricted source: a pushed, compiled
           two-way join *)
        let q =
          Ast.(
            Comp
              [
                branch
                  [ ("r", Construct (Rel "Edge", "ahead2", [])) ]
                  ~where:(eq (field "r" "head") (str "n1"));
              ])
        in
        let d = Dc_compile.Planner.plan db q in
        let indexed, on_ms =
          time (fun () -> Dc_compile.Planner.execute ~use_indexes:true db d)
        in
        let scanned, off_ms =
          time (fun () -> Dc_compile.Planner.execute ~use_indexes:false db d)
        in
        assert (Relation.equal indexed scanned);
        [
          Fmt.str "%d/%d" nodes edges;
          string_of_int (Relation.cardinal indexed);
          ms on_ms;
          ms off_ms;
          Fmt.str "%.1fx" (off_ms /. max 0.001 on_ms);
        ])
      [ (100, 600); (200, 2400); (400, 9600) ]
  in
  print_table
    ~title:
      "E11: ablation — indexed pipelines vs naive scans in compiled plans \
       (4, [JaKo 83])"
    ~claim:
      "the range-nested, set-oriented evaluation the paper builds on \
       ([JaKo 83]) derives its efficiency from evaluating quantified join \
       terms through restricted ranges rather than per-tuple predicate \
       tests; disabling the index access path in the same plan isolates \
       that effect"
    [ "graph"; "|answer|"; "indexed ms"; "scans ms"; "advantage" ]
    rows;
  observed
    "identical plans, identical answers; the hash-index access path wins \
     by a factor that grows with the relation size (the join inner loop \
     is no longer linear in the base)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment *)

let bechamel_tests () =
  let open Bechamel in
  let chain32 = Graph_gen.chain 32 in
  let layered = Graph_gen.layered ~layers:5 ~width:3 in
  let two_chains = Graph_gen.two_chains 48 in
  let infront, ontop = Graph_gen.scene ~depth:12 ~stack:2 in
  let random = Graph_gen.random_graph ~seed:7 ~nodes:40 ~edges:70 in
  let restricted =
    Ast.(
      Comp
        [
          branch
            [ ("r", Construct (Rel "Edge", "tc", [])) ]
            ~where:(eq (field "r" "src") (str "n1"));
        ])
  in
  let sel =
    {
      Defs.sel_name = "from";
      sel_formal = "Rel";
      sel_formal_schema = Graph_gen.edge_schema;
      sel_params = [ Defs.Scalar_param ("Obj", Value.TStr) ];
      sel_var = "r";
      sel_pred = Ast.(eq (field "r" "src") (Param "Obj"));
    }
  in
  let physical = Dc_compile.Access_path.Physical.build sel two_chains in
  Test.make_grouped ~name:"data-constructors"
    [
      Test.make ~name:"e1-tc-rounds (chain 32, semi-naive)"
        (Staged.stage (fun () -> run_tc (tc_db chain32)));
      Test.make ~name:"e2-bottom-up (layered 5x3)"
        (Staged.stage (fun () -> run_tc (tc_db layered)));
      Test.make ~name:"e2-top-down-SLD (layered 5x3)"
        (Staged.stage (fun () ->
             Dc_datalog.Topdown.query tc_program (edb_of layered) "path" 2));
      Test.make ~name:"e3-naive (chain 32)"
        (Staged.stage (fun () ->
             run_tc (tc_db ~strategy:Fixpoint.Naive chain32)));
      Test.make ~name:"e3-seminaive (chain 32)"
        (Staged.stage (fun () ->
             run_tc (tc_db ~strategy:Fixpoint.Seminaive chain32)));
      Test.make ~name:"e4-full-then-filter (two chains 48)"
        (Staged.stage (fun () ->
             Database.query (tc_db two_chains) restricted));
      Test.make ~name:"e4-magic-left-linear (two chains 48)"
        (Staged.stage (fun () ->
             let db = tc_db ~linear:`Left two_chains in
             Dc_compile.Planner.plan_and_execute db restricted));
      Test.make ~name:"e5-mutual-ahead-above (scene 12x2)"
        (Staged.stage (fun () ->
             let db = Database.create () in
             Database.declare db "Infront" (Constructor.infront_schema Value.TStr);
             Database.declare db "Ontop" (Constructor.ontop_schema Value.TStr);
             Database.set db "Infront" infront;
             Database.set db "Ontop" ontop;
             let ahead, above = Constructor.ahead_above () in
             Database.define_constructors db [ ahead; above ];
             Database.query db
               Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))));
      Test.make ~name:"e6-horn-seminaive (random 40/70)"
        (Staged.stage (fun () ->
             Dc_datalog.Seminaive.query tc_program (edb_of random) "path"));
      Test.make ~name:"e7-logical-lookup"
        (Staged.stage (fun () ->
             let env = Eval.make_env [ ("Edge", two_chains) ] in
             let logical = Dc_compile.Access_path.Logical.create env sel two_chains in
             Dc_compile.Access_path.Logical.apply logical
               [ Eval.V_scalar (Value.Str "n7") ]));
      Test.make ~name:"e7-physical-lookup"
        (Staged.stage (fun () ->
             Dc_compile.Access_path.Physical.apply physical
               [ Eval.V_scalar (Value.Str "n7") ]));
      Test.make ~name:"e8-positivity-check"
        (Staged.stage (fun () ->
             Positivity.check_program
               [ Constructor.transitive_closure (); Constructor.nonsense () ]));
      Test.make ~name:"e9-keyed-build (400 tuples)"
        (Staged.stage (fun () ->
             let schema =
               Schema.make ~key:[ "id" ] [ ("id", Value.TInt); ("v", Value.TInt) ]
             in
             Relation.of_list schema
               (List.init 400 (fun i ->
                    Tuple.make2 (Value.Int i) (Value.Int (i * 7))))));
      Test.make ~name:"e10-incremental-insert (random 60/120)"
        (Staged.stage (fun () ->
             let base = Graph_gen.random_graph ~seed:5 ~nodes:60 ~edges:120 in
             let db = tc_db ~linear:`Left base in
             let view =
               Dc_compile.Materialize.create db ~constructor:"tc" ~base:"Edge"
                 ~args:[]
             in
             Dc_compile.Materialize.insert view
               [ Tuple.make2 (Graph_gen.node 0) (Graph_gen.node 59) ]));
      Test.make ~name:"e2c-tabled (layered 5x3)"
        (Staged.stage (fun () ->
             Dc_datalog.Tabled.query tc_program (edb_of layered) "path" 2));
      (let db = tc_db (Graph_gen.random_graph ~seed:13 ~nodes:100 ~edges:600) in
       Database.define_constructor db (Constructor.ahead_2 ());
       let q =
         Ast.(
           Comp
             [
               branch
                 [ ("r", Construct (Rel "Edge", "ahead2", [])) ]
                 ~where:(eq (field "r" "head") (str "n1"));
             ])
       in
       let d = Dc_compile.Planner.plan db q in
       Test.make ~name:"e11-indexed-plan (random 100/600)"
         (Staged.stage (fun () -> Dc_compile.Planner.execute db d)));
    ]

let run_bechamel () =
  let open Bechamel in
  Fmt.pr "@.## Bechamel micro-benchmarks (monotonic clock, ns/run)@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (bechamel_tests ()) in
  let results = Analyze.all ols instance raw in
  let entries =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
        let pretty =
          if est > 1e6 then Fmt.str "%10.3f ms" (est /. 1e6)
          else if est > 1e3 then Fmt.str "%10.3f us" (est /. 1e3)
          else Fmt.str "%10.0f ns" est
        in
        Fmt.pr "  %-55s %s@." name pretty
      | _ -> Fmt.pr "  %-55s (no estimate)@." name)
    entries

(* ------------------------------------------------------------------ *)
(* JSON mode: machine-readable timings for the perf trajectory.

   `dune exec bench/main.exe -- json BENCH_1.json` runs a fixed set of
   recursive experiments and writes one record per experiment: name,
   wall-clock milliseconds (best of three runs), fixpoint rounds, tuples
   produced.  The workloads are deterministic, so successive snapshots
   (BENCH_1.json, BENCH_2.json, ...) are directly comparable. *)

type json_record = {
  jr_name : string;
  jr_wall_ms : float;
  jr_rounds : int;
  jr_tuples : int;
}

let best_of_3 f =
  let results = List.init 3 (fun _ -> time f) in
  let r = fst (List.hd results) in
  (r, List.fold_left (fun m (_, t) -> min m t) infinity results)

let json_experiments ?(only = []) () =
  let keep name = only = [] || List.mem name only in
  let record name f =
    if not (keep name) then None
    else
      let (rounds, tuples), wall_ms = best_of_3 f in
      Some
        { jr_name = name; jr_wall_ms = wall_ms; jr_rounds = rounds;
          jr_tuples = tuples }
  in
  List.filter_map Fun.id
  [
    (* e3: semi-naive chain closure through the constructor fixpoint *)
    record "e3_chain_seminaive_512" (fun () ->
        let _, st = run_tc (tc_db ~strategy:Fixpoint.Seminaive (Graph_gen.chain 512)) in
        (st.Fixpoint.rounds, st.Fixpoint.tuples_produced));
    (* e3: naive re-evaluation on a shorter chain (cubic work) *)
    record "e3_chain_naive_128" (fun () ->
        let _, st = run_tc (tc_db ~strategy:Fixpoint.Naive (Graph_gen.chain 128)) in
        (st.Fixpoint.rounds, st.Fixpoint.tuples_produced));
    (* e6: random Horn workload through the semi-naive Datalog engine *)
    record "e6_random_horn_200_500" (fun () ->
        let edges = Graph_gen.random_graph ~seed:7 ~nodes:200 ~edges:500 in
        let stats = Dc_datalog.Seminaive.fresh_stats () in
        let result =
          Dc_datalog.Seminaive.query ~stats tc_program (edb_of edges) "path"
        in
        (stats.Dc_datalog.Seminaive.rounds, Dc_datalog.Facts.TS.cardinal result));
    (* e5: mutually recursive ahead/above system *)
    record "e5_mutual_scene_64" (fun () ->
        let infront, ontop = Graph_gen.scene ~depth:64 ~stack:3 in
        let db = Database.create ~strategy:Fixpoint.Seminaive () in
        Database.declare db "Infront" (Constructor.infront_schema Value.TStr);
        Database.declare db "Ontop" (Constructor.ontop_schema Value.TStr);
        Database.set db "Infront" infront;
        Database.set db "Ontop" ontop;
        let ahead, above = Constructor.ahead_above () in
        Database.define_constructors db [ ahead; above ];
        let r =
          Database.query db
            Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
        in
        let st = Option.get (Database.last_stats db) in
        ignore r;
        (st.Fixpoint.rounds, st.Fixpoint.tuples_produced));
    (* e5: mutually recursive system, deeper scene *)
    record "e5_mutual_scene_256" (fun () ->
        let infront, ontop = Graph_gen.scene ~depth:256 ~stack:3 in
        let db = Database.create ~strategy:Fixpoint.Seminaive () in
        Database.declare db "Infront" (Constructor.infront_schema Value.TStr);
        Database.declare db "Ontop" (Constructor.ontop_schema Value.TStr);
        Database.set db "Infront" infront;
        Database.set db "Ontop" ontop;
        let ahead, above = Constructor.ahead_above () in
        Database.define_constructors db [ ahead; above ];
        let r =
          Database.query db
            Ast.(Construct (Rel "Infront", "ahead", [ Arg_range (Rel "Ontop") ]))
        in
        let st = Option.get (Database.last_stats db) in
        ignore r;
        (st.Fixpoint.rounds, st.Fixpoint.tuples_produced));
    (* e3: non-linear closure (path o path) — joins delta against the big
       full value from both sides every round, the index-heaviest shape *)
    record "e3_chain_nonlinear_256" (fun () ->
        let _, st =
          run_tc (tc_db ~strategy:Fixpoint.Seminaive ~linear:`Non (Graph_gen.chain 256))
        in
        (st.Fixpoint.rounds, st.Fixpoint.tuples_produced));
    (* e6: denser random Horn workload *)
    record "e6_random_horn_300_900" (fun () ->
        let edges = Graph_gen.random_graph ~seed:11 ~nodes:300 ~edges:900 in
        let stats = Dc_datalog.Seminaive.fresh_stats () in
        let result =
          Dc_datalog.Seminaive.query ~stats tc_program (edb_of edges) "path"
        in
        (stats.Dc_datalog.Seminaive.rounds, Dc_datalog.Facts.TS.cardinal result));
    (* e4: magic-sets capture rule on the left-linear rule (Datalog path) *)
    record "e4_magic_left_256" (fun () ->
        let edges = Graph_gen.two_chains 256 in
        let db = tc_db ~linear:`Left edges in
        let restricted =
          Ast.(
            Comp
              [
                branch
                  [ ("r", Construct (Rel "Edge", "tc", [])) ]
                  ~where:(eq (field "r" "src") (str "n1"));
              ])
        in
        let r = Dc_compile.Planner.plan_and_execute db restricted in
        (0, Relation.cardinal r));
    (* e4: same goal-directed shape, twice the chain length *)
    record "e4_magic_left_512" (fun () ->
        let edges = Graph_gen.two_chains 512 in
        let db = tc_db ~linear:`Left edges in
        let restricted =
          Ast.(
            Comp
              [
                branch
                  [ ("r", Construct (Rel "Edge", "tc", [])) ]
                  ~where:(eq (field "r" "src") (str "n1"));
              ])
        in
        let r = Dc_compile.Planner.plan_and_execute db restricted in
        (0, Relation.cardinal r));
  ]

let print_records records =
  List.iter
    (fun r ->
      Fmt.pr "%-28s %10.2f ms  rounds=%-5d tuples=%d@." r.jr_name r.jr_wall_ms
        r.jr_rounds r.jr_tuples)
    records

(* The two cheapest recursive experiments — a seconds-long sanity pass
   (`make bench-smoke`) confirming the harness and the kernel still run. *)
let run_smoke () =
  print_records
    (json_experiments ~only:[ "e5_mutual_scene_64"; "e4_magic_left_256" ] ())

(* Observability overhead: interleaved A/B of the same workload with
   metrics collection disabled versus enabled — the difference is the
   cost of the [Obs.on ()] checks plus the per-round clock reads and
   histogram updates (operator-level profiling is EXPLAIN ANALYZE only
   and never on this path).  Interleaving (A B A B ...) keeps allocator
   and cache drift out of the comparison, exactly like `guard-overhead`. *)

let obs_overhead_bound = 10.0 (* percent; CI sanity bound, not the claim *)

type obs_overhead = {
  oo_name : string;
  oo_base_ms : float; (* metrics disabled, min over rounds *)
  oo_obs_ms : float; (* metrics enabled, min over rounds *)
}

let oo_pct r = (r.oo_obs_ms -. r.oo_base_ms) /. r.oo_base_ms *. 100.0

let obs_overhead_records () =
  let module Obs = Dc_obs.Obs in
  let saved = Obs.on () in
  let workloads =
    [
      ( "e3_chain_seminaive_512",
        fun () ->
          let db = tc_db ~strategy:Fixpoint.Seminaive (Graph_gen.chain 512) in
          ignore (Database.query db tc_query) );
      ( "e6_random_horn_200_500",
        fun () ->
          let edges = Graph_gen.random_graph ~seed:7 ~nodes:200 ~edges:500 in
          ignore (Dc_datalog.Seminaive.query tc_program (edb_of edges) "path")
      );
    ]
  in
  let rounds = 7 in
  let records =
    List.map
      (fun (name, f) ->
        Obs.set_enabled false;
        f ();
        (* warm-up *)
        let base = ref infinity and obs = ref infinity in
        for _ = 1 to rounds do
          Obs.set_enabled false;
          let (), t_base = time f in
          Obs.set_enabled true;
          let (), t_obs = time f in
          base := min !base t_base;
          obs := min !obs t_obs
        done;
        { oo_name = name; oo_base_ms = !base; oo_obs_ms = !obs })
      workloads
  in
  Obs.set_enabled saved;
  records

(* Aggregate overhead: total enabled time vs total disabled time — the
   number the issue bounds at 2% and BENCH_4.json records. *)
let oo_aggregate records =
  let b = List.fold_left (fun a r -> a +. r.oo_base_ms) 0. records in
  let o = List.fold_left (fun a r -> a +. r.oo_obs_ms) 0. records in
  (o -. b) /. b *. 100.0

let print_obs_overhead records =
  List.iter
    (fun r ->
      Fmt.pr "%-28s off=%sms on=%sms overhead=%+.1f%%@." r.oo_name
        (ms r.oo_base_ms) (ms r.oo_obs_ms) (oo_pct r))
    records;
  Fmt.pr "aggregate overhead %+.1f%% (bound %.0f%%)@." (oo_aggregate records)
    obs_overhead_bound

let run_obs_overhead () =
  let records = obs_overhead_records () in
  print_obs_overhead records;
  if oo_aggregate records > obs_overhead_bound then begin
    Fmt.epr "obs overhead above bound@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* IVM: maintained views vs recompute-per-update (the paper §4 remark
   "Maintenance for such access paths is discussed in [ShTZ 84]", now
   measurable).  One deterministic stream of single-edge inserts and
   deletes runs against (a) a materialized transitive closure kept live
   by the lib/ivm maintainer and (b) a database that refixpoints the
   closure from scratch after every update.  Both sides end with the
   same extent; the ratio is the maintenance win for small deltas. *)

type ivm_record = {
  ir_name : string;
  ir_updates : int;
  ir_maintained_ms : float;
  ir_recompute_ms : float;
}

let ir_speedup r = r.ir_recompute_ms /. r.ir_maintained_ms

(* step [i]: toggle one deterministic pseudo-random edge *)
let ivm_step db i nodes =
  let t =
    Tuple.of_list
      [ Graph_gen.node (i mod nodes); Graph_gen.node ((i * 7 + 3) mod nodes) ]
  in
  if Relation.mem t (Database.get db "Edge") then Database.delete db "Edge" t
  else Database.insert db "Edge" t

let ivm_records () =
  let module Ivm = Dc_ivm.Ivm in
  let run name ~edges ~nodes ~updates =
    let maintained () =
      let db = tc_db edges in
      let view = Ivm.materialize db ~constructor:"tc" ~base:"Edge" ~args:[] in
      let (), t =
        time (fun () ->
            for i = 0 to updates - 1 do
              ivm_step db i nodes;
              ignore (Ivm.cardinal view)
            done)
      in
      (Ivm.cardinal view, t)
    in
    let recompute () =
      let db = tc_db edges in
      let card = ref 0 in
      let (), t =
        time (fun () ->
            for i = 0 to updates - 1 do
              ivm_step db i nodes;
              card := Relation.cardinal (Database.query db tc_query)
            done)
      in
      (!card, t)
    in
    let mc, mt = maintained () in
    let rc, rt = recompute () in
    if mc <> rc then
      Fmt.failwith "ivm bench %s: maintained extent %d <> recomputed %d" name
        mc rc;
    {
      ir_name = name;
      ir_updates = updates;
      ir_maintained_ms = mt;
      ir_recompute_ms = rt;
    }
  in
  [
    run "ivm_tc_chain_128" ~edges:(Graph_gen.chain 128) ~nodes:129 ~updates:64;
    run "ivm_tc_random_96_192"
      ~edges:(Graph_gen.random_graph ~seed:5 ~nodes:96 ~edges:192)
      ~nodes:96 ~updates:64;
  ]

let print_ivm records =
  List.iter
    (fun r ->
      Fmt.pr
        "%-24s %d updates: maintained=%sms recompute-per-update=%sms \
         speedup=%.1fx@."
        r.ir_name r.ir_updates (ms r.ir_maintained_ms) (ms r.ir_recompute_ms)
        (ir_speedup r))
    records

let run_ivm () = print_ivm (ivm_records ())

(* ------------------------------------------------------------------ *)
(* Aggregates (PR 10).  Two claims the BENCH "aggregates" section tracks:

   (a) premappability pays: recursive MIN evaluated semi-naively WITH
       per-group bounds (one accumulator per (src, dst), worse paths
       subsumed inside the fixpoint) vs the naive recompute that runs
       the same recursion unaggregated — accumulating every distinct
       path weight — and aggregates once at the end.  A weighted layered
       DAG keeps the unaggregated variant finite while giving it a wide
       weight lattice to enumerate.

   (b) incremental aggregate maintenance pays: a maintained SUM view
       (counting plan over raw contributions + per-group adjustment)
       vs a from-scratch recompute after every base update. *)

module Agg = Dc_agg.Agg

type agg_min_record = {
  am_name : string;
  am_bounded_ms : float;
  am_naive_ms : float;
  am_groups : int; (* result tuples: one bound per group *)
  am_raw : int; (* distinct path-weight tuples the bounds never enumerate *)
}

let am_speedup r = r.am_naive_ms /. r.am_bounded_ms

let sp_agg_program =
  Dc_datalog.Syntax.
    [
      rule
        (atom "sp" [ var "S"; var "D"; var "W" ])
        [ Pos (atom "edge" [ var "S"; var "D"; var "W" ]) ];
      rule
        (atom "sp" [ var "S"; var "D"; Binop (Ast.Add, var "W1", var "W2") ])
        [
          Pos (atom "sp" [ var "S"; var "M"; var "W1" ]);
          Pos (atom "edge" [ var "M"; var "D"; var "W2" ]);
        ];
    ]

let sp_spec = { Agg.group = [ 0; 1 ]; value = 2; op = Agg.Min }

(* complete bipartite between adjacent layers, uniform weights 1..max_w *)
let weighted_layered ~seed ~layers ~width ~max_w =
  let rng = Rng.create seed in
  let tuples = ref [] in
  for l = 0 to layers - 2 do
    for a = 0 to width - 1 do
      for b = 0 to width - 1 do
        tuples :=
          Tuple.of_list
            [
              Graph_gen.node ((l * width) + a);
              Graph_gen.node (((l + 1) * width) + b);
              Value.Int (1 + Rng.int rng max_w);
            ]
          :: !tuples
      done
    done
  done;
  Relation.of_list Graph_gen.weighted_edge_schema !tuples

let agg_min_records () =
  let module TS = Dc_datalog.Facts.TS in
  let run name rel =
    let edb = edb_of rel in
    let aggs = [ ("sp", sp_spec) ] in
    let bounded, bounded_ms =
      time (fun () -> Dc_datalog.Seminaive.query ~aggs sp_agg_program edb "sp")
    in
    let raw, naive_ms =
      time (fun () -> Dc_datalog.Seminaive.query sp_agg_program edb "sp")
    in
    let reference =
      List.fold_left
        (fun acc t -> TS.add t acc)
        TS.empty
        (Agg.aggregate sp_spec (TS.elements raw))
    in
    if not (TS.equal bounded reference) then
      Fmt.failwith
        "agg bench %s: bounded result (%d) <> aggregate of naive recompute \
         (%d)"
        name (TS.cardinal bounded) (TS.cardinal reference);
    {
      am_name = name;
      am_bounded_ms = bounded_ms;
      am_naive_ms = naive_ms;
      am_groups = TS.cardinal bounded;
      am_raw = TS.cardinal raw;
    }
  in
  (* DAGs only: the unaggregated arm must terminate, and on a cycle the
     path-weight lattice is unbounded (exactly what the bounds fix — but
     no baseline to compare against) *)
  let random_weighted_dag ~seed ~nodes ~edges ~max_w =
    let rng = Rng.create seed in
    let seen = Hashtbl.create (2 * edges) in
    let tuples = ref [] in
    let guard = ref (100 * edges) in
    while Hashtbl.length seen < edges && !guard > 0 do
      decr guard;
      let a = Rng.int rng nodes and b = Rng.int rng nodes in
      let a, b = (min a b, max a b) in
      if a <> b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.replace seen (a, b) ();
        tuples :=
          Tuple.of_list
            [
              Graph_gen.node a; Graph_gen.node b;
              Value.Int (1 + Rng.int rng max_w);
            ]
          :: !tuples
      end
    done;
    Relation.of_list Graph_gen.weighted_edge_schema !tuples
  in
  [
    run "agg_min_layered_6x4"
      (weighted_layered ~seed:11 ~layers:6 ~width:4 ~max_w:30);
    run "agg_min_dag_48_192"
      (random_weighted_dag ~seed:12 ~nodes:48 ~edges:192 ~max_w:9);
  ]

(* (b): SUM per source over a weighted edge relation, dst discriminating *)
let agg_view_src =
  {|TYPE wedge  = RELATION src, dst OF RECORD src, dst: STRING; w: INTEGER END;
    TYPE persrc = RELATION src OF RECORD src: STRING; v: INTEGER END;
    VAR E: wedge;
    CONSTRUCTOR total FOR Rel: wedge (): persrc;
    BEGIN <e.src, e.dst, SUM e.w> OF EACH e IN Rel: TRUE GROUP BY e.src
    END total;|}

let agg_view_query = Ast.(Construct (Rel "E", "total", []))

(* step [i]: toggle one deterministic pseudo-random weighted edge *)
let agg_view_step db i nodes =
  let s = Graph_gen.node (i mod nodes)
  and d = Graph_gen.node (((i * 7) + 3) mod nodes) in
  let existing =
    Relation.fold
      (fun t acc ->
        if Value.equal (Tuple.get t 0) s && Value.equal (Tuple.get t 1) d then
          Some t
        else acc)
      (Database.get db "E") None
  in
  match existing with
  | Some t -> Database.delete db "E" t
  | None ->
    Database.insert db "E" (Tuple.of_list [ s; d; Value.Int (1 + (i mod 9)) ])

let agg_view_db ~nodes ~edges =
  let db, _ = Dc_lang.Elaborate.run_string agg_view_src in
  Database.set db "E"
    (Graph_gen.random_weighted_graph ~seed:13 ~nodes ~edges ~max_w:9);
  db

let agg_view_records () =
  let module Ivm = Dc_ivm.Ivm in
  let run name ~nodes ~edges ~updates =
    let maintained () =
      let db = agg_view_db ~nodes ~edges in
      let view = Ivm.materialize db ~constructor:"total" ~base:"E" ~args:[] in
      let (), t =
        time (fun () ->
            for i = 0 to updates - 1 do
              agg_view_step db i nodes;
              ignore (Ivm.cardinal view)
            done)
      in
      (Ivm.cardinal view, t)
    in
    let recompute () =
      let db = agg_view_db ~nodes ~edges in
      let card = ref 0 in
      let (), t =
        time (fun () ->
            for i = 0 to updates - 1 do
              agg_view_step db i nodes;
              card := Relation.cardinal (Database.query db agg_view_query)
            done)
      in
      (!card, t)
    in
    let mc, mt = maintained () in
    let rc, rt = recompute () in
    if mc <> rc then
      Fmt.failwith "agg view bench %s: maintained extent %d <> recomputed %d"
        name mc rc;
    {
      ir_name = name;
      ir_updates = updates;
      ir_maintained_ms = mt;
      ir_recompute_ms = rt;
    }
  in
  [
    run "agg_sum_view_96_384" ~nodes:96 ~edges:384 ~updates:256;
    run "agg_sum_view_192_768" ~nodes:192 ~edges:768 ~updates:256;
  ]

let print_agg (mins, views) =
  List.iter
    (fun r ->
      Fmt.pr
        "%-24s bounded=%sms naive-recompute=%sms speedup=%.1fx (%d groups vs \
         %d raw tuples)@."
        r.am_name (ms r.am_bounded_ms) (ms r.am_naive_ms) (am_speedup r)
        r.am_groups r.am_raw)
    mins;
  print_ivm views

let agg_records () = (agg_min_records (), agg_view_records ())

let run_agg () = print_agg (agg_records ())

(* ------------------------------------------------------------------ *)
(* Parallel scaling: the heaviest two recursive workloads plus one
   maintained-view update stream, each run at P = 1, 2, 4 and the
   machine's recommended degree.  Degrees above the recommendation are
   dropped (except P = 1, always kept), so a single-core runner degrades
   to the sequential cell and the curve never fails — it just flattens.
   Each cell's speedup is measured against the P = 1 cell of the same
   workload. *)

module Par = Dc_par.Par

type par_record = {
  pr_name : string;
  pr_domains : int;
  pr_wall_ms : float;
  pr_speedup : float; (* vs this workload's P = 1 cell *)
}

let par_degrees () =
  let top = Domain.recommended_domain_count () in
  List.sort_uniq compare (List.filter (fun p -> p = 1 || p <= top) [ 1; 2; 4; top ])

let par_records () =
  let degrees = par_degrees () in
  let run name f =
    let cells =
      List.map
        (fun p ->
          let (), wall = best_of_3 (fun () -> Par.with_domains p f) in
          (p, wall))
        degrees
    in
    let base = List.assoc 1 cells in
    List.map
      (fun (p, wall) ->
        {
          pr_name = name;
          pr_domains = p;
          pr_wall_ms = wall;
          pr_speedup = base /. wall;
        })
      cells
  in
  let nonlinear () =
    ignore
      (run_tc
         (tc_db ~strategy:Fixpoint.Seminaive ~linear:`Non (Graph_gen.chain 256)))
  in
  let horn () =
    let edges = Graph_gen.random_graph ~seed:11 ~nodes:300 ~edges:900 in
    ignore (Dc_datalog.Seminaive.query tc_program (edb_of edges) "path")
  in
  let ivm_stream () =
    let module Ivm = Dc_ivm.Ivm in
    let db = tc_db (Graph_gen.chain 128) in
    let view = Ivm.materialize db ~constructor:"tc" ~base:"Edge" ~args:[] in
    for i = 0 to 63 do
      ivm_step db i 129;
      ignore (Ivm.cardinal view)
    done
  in
  run "e3_chain_nonlinear_256" nonlinear
  @ run "e6_random_horn_300_900" horn
  @ run "ivm_tc_chain_128_stream" ivm_stream

let print_parallel records =
  List.iter
    (fun r ->
      Fmt.pr "%-28s P=%-2d %10.2f ms  speedup=%.2fx@." r.pr_name r.pr_domains
        r.pr_wall_ms r.pr_speedup)
    records

let run_parallel () = print_parallel (par_records ())

(* ------------------------------------------------------------------ *)
(* Serving: mixed read/write throughput through the session layer at
   1-64 simulated clients over one shared database (a maintained
   transitive-closure view on a chain graph).  Each client is a thread
   with its own session issuing a seeded 90/10 read/write mix: reads
   evaluate on the client thread against published snapshots (the live
   view served from its frozen extent), writes serialize through the
   server's single writer and publish the next version. *)

type serve_record = {
  sv_clients : int;
  sv_statements : int;
  sv_reads : int;
  sv_writes : int;
  sv_wall_ms : float;
  sv_per_s : float;
}

let serve_nodes = 96
let serve_stmts_per_client = 50

let serve_records () =
  let module Server = Dc_server.Server in
  let module Ivm = Dc_ivm.Ivm in
  List.map
    (fun clients ->
      let db = tc_db (Graph_gen.chain serve_nodes) in
      ignore (Ivm.materialize db ~constructor:"tc" ~base:"Edge" ~args:[]);
      let srv = Server.create db in
      let reads = Atomic.make 0 and writes = Atomic.make 0 in
      let client c () =
        let s = Server.open_session srv in
        let rng = Rng.create (0x5EED + c) in
        for _ = 1 to serve_stmts_per_client do
          if Rng.bool rng 0.9 then begin
            ignore (Server.query s tc_query);
            Atomic.incr reads
          end
          else begin
            let i = Rng.int rng 100_000 in
            Server.submit srv (fun () -> ivm_step db i serve_nodes);
            Atomic.incr writes
          end
        done;
        Server.close_session s
      in
      let (), wall =
        time (fun () ->
            let ths = List.init clients (fun c -> Thread.create (client c) ()) in
            List.iter Thread.join ths)
      in
      Server.shutdown srv;
      let stmts = clients * serve_stmts_per_client in
      {
        sv_clients = clients;
        sv_statements = stmts;
        sv_reads = Atomic.get reads;
        sv_writes = Atomic.get writes;
        sv_wall_ms = wall;
        sv_per_s = float_of_int stmts /. wall *. 1000.;
      })
    [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* Socket serving: the same 90/10 mix, but each client is a real TCP
   connection speaking the wire protocol, reads recompute a transitive
   closure per statement and ship the rows back over the socket, and
   evaluation runs on the domain pool at the ambient [Par.domains]
   degree (CI forces [DC_DOMAINS=4]; on a single-core box the degree
   degrades to 1 and the curve measures pure serialization).  The
   harness is closed-loop with per-statement client think time, so the
   curve shows the server absorbing concurrency: at C=1 the server
   idles while the client "thinks", and additional clients fill that
   idle capacity until the service rate saturates.  Writes toggle one
   scratch edge per client so the extent — and the cost of a read —
   stays constant across client counts.  Each point is the better of
   two runs.  This is the served-database number: parse + elaborate +
   evaluate + serialize. *)

let socket_chain = 48
let socket_stmts_per_client = 50
let socket_think_s = 0.02

let socket_setup_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    {|
TYPE node = STRING;
TYPE edgerel = RELATION a, b OF RECORD a, b: node END;
VAR Edge: edgerel;
CONSTRUCTOR tc FOR Rel: edgerel (): edgerel;
BEGIN EACH e IN Rel: TRUE,
      <e.a, p.b> OF EACH e IN Rel, EACH p IN Rel{tc()}: e.b = p.a
END tc;
INSERT Edge VALUES |};
  for i = 0 to socket_chain - 1 do
    if i > 0 then Buffer.add_string b ", ";
    Buffer.add_string b (Fmt.str {|("n%d", "n%d")|} i (i + 1))
  done;
  Buffer.add_string b ";\n";
  Buffer.contents b

let socket_records () =
  let module Server = Dc_server.Server in
  let module Net = Dc_net.Net in
  let one_run clients =
    let db = Database.create () in
    let srv = Server.create db in
    let s = Server.open_session srv in
    ignore (Server.execute s socket_setup_src);
    Server.close_session s;
    let listener = Net.listen srv (Net.Tcp ("127.0.0.1", 0)) in
    let port = Net.bound_port listener in
    let reads = Atomic.make 0 and writes = Atomic.make 0 in
    let client c () =
      let cl = Net.Client.connect (Net.Tcp ("127.0.0.1", port)) in
      let rng = Rng.create (0x50CC + c) in
      let have = ref false in
      for _ = 1 to socket_stmts_per_client do
        Thread.delay socket_think_s;
        if Rng.bool rng 0.9 then begin
          ignore (Net.Client.query cl "QUERY Edge{tc()};");
          Atomic.incr reads
        end
        else begin
          (* extent-neutral: toggle this client's scratch edge *)
          ignore
            (Net.Client.exec cl
               (Fmt.str
                  (if !have then {|DELETE Edge VALUES ("x%d", "y%d");|}
                   else {|INSERT Edge VALUES ("x%d", "y%d");|})
                  c c));
          have := not !have;
          Atomic.incr writes
        end
      done;
      Net.Client.close cl
    in
    (* one warm read so every point starts with hot caches *)
    let warm = Net.Client.connect (Net.Tcp ("127.0.0.1", port)) in
    ignore (Net.Client.query warm "QUERY Edge{tc()};");
    Net.Client.close warm;
    let (), wall =
      time (fun () ->
          let ths = List.init clients (fun c -> Thread.create (client c) ()) in
          List.iter Thread.join ths)
    in
    Net.stop listener;
    Server.shutdown srv;
    let stmts = clients * socket_stmts_per_client in
    {
      sv_clients = clients;
      sv_statements = stmts;
      sv_reads = Atomic.get reads;
      sv_writes = Atomic.get writes;
      sv_wall_ms = wall;
      sv_per_s = float_of_int stmts /. wall *. 1000.;
    }
  in
  List.map
    (fun clients ->
      let a = one_run clients in
      let b = one_run clients in
      if a.sv_wall_ms <= b.sv_wall_ms then a else b)
    [ 1; 2; 4; 8; 16 ]

let print_serving ?(label = "serve") records =
  List.iter
    (fun r ->
      Fmt.pr
        "%s C=%-3d %5d stmts (%d reads / %d writes) %10.2f ms  %8.0f stmt/s@."
        label r.sv_clients r.sv_statements r.sv_reads r.sv_writes r.sv_wall_ms
        r.sv_per_s)
    records

(* ------------------------------------------------------------------ *)
(* Durability: sustained update throughput with the WAL on the commit
   path (one fsynced record per commit) against the in-memory store and
   against the pre-WAL baseline — rewriting the whole CSV directory
   after every commit — plus recovery time: checkpoint + log-suffix
   replay versus reloading the CSV image from scratch. *)

type wal_record = {
  wr_name : string;
  wr_updates : int;
  wr_wall_ms : float;
  wr_per_s : float;
}

type recovery_record = {
  rr_name : string;
  rr_replayed : int;
  rr_wall_ms : float;
}

let rec bench_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun e -> bench_rm_rf (Filename.concat path e))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let bench_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "dc_bench_wal_%d_%s" (Unix.getpid ()) tag)
  in
  bench_rm_rf d;
  bench_rm_rf (d ^ ".old");
  bench_rm_rf (d ^ ".tmp");
  d

let wal_nodes = 64
let wal_updates = 500

(* the same seeded single-relation update stream for every variant *)
let wal_stream () =
  let rng = Rng.create 0xD0_0D in
  List.init wal_updates (fun _ ->
      let a = Rng.int rng wal_nodes and b = Rng.int rng wal_nodes in
      let t =
        Tuple.of_list [ Graph_gen.node a; Graph_gen.node b ]
      in
      if Rng.bool rng 0.8 then ([ t ], []) else ([], [ t ]))

let wal_base_db () =
  let db = Database.create () in
  Database.declare db "edge" Graph_gen.edge_schema;
  Database.set db "edge" (Graph_gen.chain wal_nodes);
  db

let wal_throughput () =
  let module Durable = Dc_wal.Durable in
  let stream = wal_stream () in
  let drive db =
    List.iter
      (fun (adds, dels) -> Database.update_batch db [ ("edge", adds, dels) ])
      stream
  in
  let record name f =
    let (), wall = time f in
    {
      wr_name = name;
      wr_updates = wal_updates;
      wr_wall_ms = wall;
      wr_per_s = float_of_int wal_updates /. wall *. 1000.;
    }
  in
  let in_memory = record "update_in_memory" (fun () -> drive (wal_base_db ())) in
  let with_wal every name =
    let dir = bench_dir name in
    let db = wal_base_db () in
    let dur = Durable.open_dir ~db ~checkpoint_every:every dir in
    let r = record name (fun () -> drive db) in
    Durable.close dur;
    bench_rm_rf dir;
    r
  in
  let wal_only = with_wal 1_000_000 "update_wal_fsync" in
  let wal_ckpt = with_wal 64 "update_wal_ckpt64" in
  let csv =
    let dir = bench_dir "csv_rewrite" in
    let db = wal_base_db () in
    let r =
      record "update_csv_rewrite" (fun () ->
          List.iter
            (fun (adds, dels) ->
              Database.update_batch db [ ("edge", adds, dels) ];
              Dc_lang.Storage.save db dir)
            (wal_stream ()))
    in
    bench_rm_rf dir;
    r
  in
  [ in_memory; wal_only; wal_ckpt; csv ]

let wal_recovery () =
  let module Durable = Dc_wal.Durable in
  let stream = wal_stream () in
  let drive db =
    List.iter
      (fun (adds, dels) -> Database.update_batch db [ ("edge", adds, dels) ])
      stream
  in
  (* a directory whose whole stream sits in the log after one early
     checkpoint: recovery replays every record through the commit path
     (the handle is abandoned, not closed — closing would checkpoint) *)
  let replay_dir = bench_dir "recover_replay" in
  let db = wal_base_db () in
  let _abandoned =
    Durable.open_dir ~db ~checkpoint_every:1_000_000 replay_dir
  in
  drive db;
  (* the same state checkpointed: recovery is one image load, no replay *)
  let ckpt_dir = bench_dir "recover_ckpt" in
  let db2 = wal_base_db () in
  let dur2 = Durable.open_dir ~db:db2 ~checkpoint_every:1_000_000 ckpt_dir in
  drive db2;
  Durable.close dur2;
  (* the CSV baseline of the same final state *)
  let csv_dir = bench_dir "recover_csv" in
  Dc_lang.Storage.save db2 csv_dir;
  let recover name dir =
    let dur, wall = time (fun () -> Durable.open_dir dir) in
    let r =
      { rr_name = name; rr_replayed = Durable.replayed dur; rr_wall_ms = wall }
    in
    Durable.close dur;
    r
  in
  let from_log = recover "recover_replay_log" replay_dir in
  let from_ckpt = recover "recover_checkpoint" ckpt_dir in
  let from_csv =
    let _, wall = time (fun () -> Dc_lang.Storage.load csv_dir) in
    { rr_name = "load_csv_image"; rr_replayed = 0; rr_wall_ms = wall }
  in
  List.iter bench_rm_rf [ replay_dir; ckpt_dir; csv_dir ];
  [ from_log; from_ckpt; from_csv ]

let print_wal (updates, recovery) =
  List.iter
    (fun r ->
      Fmt.pr "%-24s %5d updates %10.2f ms  %8.0f commits/s@." r.wr_name
        r.wr_updates r.wr_wall_ms r.wr_per_s)
    updates;
  List.iter
    (fun r ->
      Fmt.pr "%-24s replayed=%-5d %10.2f ms@." r.rr_name r.rr_replayed
        r.rr_wall_ms)
    recovery

let wal_records () = (wal_throughput (), wal_recovery ())
let run_wal () = print_wal (wal_records ())

(* ------------------------------------------------------------------ *)
(* Group commit: 16 client threads submitting durable single-tuple
   commits concurrently.  The server's writer drains its queue into one
   [Wal.append_batch] per wakeup — one shared fsync amortized over the
   whole batch, every client released only after it — so sustained
   commits/s must sit well above the per-commit [update_wal_fsync]
   number from the durability table. *)

let group_writers = 16
let group_per_writer = 250

let group_commit_record () =
  let module Server = Dc_server.Server in
  let dir = bench_dir "group_commit" in
  let srv = Server.open_durable ~checkpoint_every:1_000_000 dir in
  Server.submit srv (fun () ->
      let db = Server.db srv in
      Database.declare db "edge" Graph_gen.edge_schema;
      Database.set db "edge" (Graph_gen.chain wal_nodes));
  let writer w () =
    let rng = Rng.create (0x6C0 + w) in
    for _ = 1 to group_per_writer do
      let a = Rng.int rng wal_nodes and b = Rng.int rng wal_nodes in
      let t = Tuple.of_list [ Graph_gen.node a; Graph_gen.node b ] in
      let adds, dels = if Rng.bool rng 0.8 then ([ t ], []) else ([], [ t ]) in
      Server.submit srv (fun () ->
          Database.update_batch (Server.db srv) [ ("edge", adds, dels) ])
    done
  in
  let (), wall =
    time (fun () ->
        let ths =
          List.init group_writers (fun w -> Thread.create (writer w) ())
        in
        List.iter Thread.join ths)
  in
  Server.shutdown srv;
  bench_rm_rf dir;
  let n = group_writers * group_per_writer in
  {
    wr_name = Fmt.str "update_wal_group%d" group_writers;
    wr_updates = n;
    wr_wall_ms = wall;
    wr_per_s = float_of_int n /. wall *. 1000.;
  }

let run_serve () =
  print_serving ~label:"serve(inproc)" (serve_records ());
  print_serving ~label:"serve(socket)" (socket_records ());
  let g = group_commit_record () in
  Fmt.pr "%-24s %5d updates %10.2f ms  %8.0f commits/s@." g.wr_name
    g.wr_updates g.wr_wall_ms g.wr_per_s

let run_json path =
  (* Experiments run with metrics enabled so the snapshot embeds per-phase
     breakdowns (span histograms, per-round fixpoint/Datalog series). *)
  Dc_obs.Obs.reset ();
  Dc_obs.Obs.set_enabled true;
  let records = json_experiments () in
  let metrics_json = Dc_obs.Obs.to_json () in
  Dc_obs.Obs.set_enabled false;
  let overhead = obs_overhead_records () in
  let ivm = ivm_records () in
  let (agg_mins, agg_views) = agg_records () in
  let parallel = par_records () in
  let serving = serve_records () in
  let socket_serving = socket_records () in
  let group_commit = group_commit_record () in
  let durability = wal_records () in
  let oc = open_out path in
  let field_sep = ref "" in
  output_string oc "{\n  \"experiments\": [\n";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s    { \"name\": %S, \"wall_ms\": %.3f, \"rounds\": %d, \"tuples\": %d }"
        !field_sep r.jr_name r.jr_wall_ms r.jr_rounds r.jr_tuples;
      field_sep := ",\n")
    records;
  output_string oc "\n  ],\n  \"obs_overhead\": {\n    \"workloads\": [\n";
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s      { \"name\": %S, \"base_ms\": %.3f, \"metrics_ms\": %.3f, \
         \"overhead_pct\": %.2f }"
        !field_sep r.oo_name r.oo_base_ms r.oo_obs_ms (oo_pct r);
      field_sep := ",\n")
    overhead;
  Printf.fprintf oc "\n    ],\n    \"aggregate_pct\": %.2f\n  },\n"
    (oo_aggregate overhead);
  output_string oc "  \"ivm\": [\n";
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s    { \"name\": %S, \"updates\": %d, \"maintained_ms\": %.3f, \
         \"recompute_per_update_ms\": %.3f, \"speedup\": %.2f }"
        !field_sep r.ir_name r.ir_updates r.ir_maintained_ms r.ir_recompute_ms
        (ir_speedup r);
      field_sep := ",\n")
    ivm;
  output_string oc "\n  ],\n";
  output_string oc "  \"aggregates\": {\n    \"recursive_min\": [\n";
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s      { \"name\": %S, \"bounded_ms\": %.3f, \"naive_ms\": %.3f, \
         \"speedup\": %.2f, \"groups\": %d, \"raw_tuples\": %d }"
        !field_sep r.am_name r.am_bounded_ms r.am_naive_ms (am_speedup r)
        r.am_groups r.am_raw;
      field_sep := ",\n")
    agg_mins;
  output_string oc "\n    ],\n    \"maintained_view\": [\n";
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s      { \"name\": %S, \"updates\": %d, \"maintained_ms\": %.3f, \
         \"recompute_per_update_ms\": %.3f, \"speedup\": %.2f }"
        !field_sep r.ir_name r.ir_updates r.ir_maintained_ms r.ir_recompute_ms
        (ir_speedup r);
      field_sep := ",\n")
    agg_views;
  output_string oc "\n    ]\n  },\n";
  Printf.fprintf oc "  \"parallel\": {\n    \"degrees\": [%s],\n    \"cells\": [\n"
    (String.concat ", " (List.map string_of_int (par_degrees ())));
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s      { \"name\": %S, \"domains\": %d, \"wall_ms\": %.3f, \
         \"speedup\": %.2f }"
        !field_sep r.pr_name r.pr_domains r.pr_wall_ms r.pr_speedup;
      field_sep := ",\n")
    parallel;
  output_string oc "\n    ]\n  },\n";
  let emit_serve_rows rows =
    field_sep := "";
    List.iter
      (fun r ->
        Printf.fprintf oc
          "%s      { \"clients\": %d, \"statements\": %d, \"reads\": %d, \
           \"writes\": %d, \"wall_ms\": %.3f, \"stmt_per_s\": %.0f }"
          !field_sep r.sv_clients r.sv_statements r.sv_reads r.sv_writes
          r.sv_wall_ms r.sv_per_s;
        field_sep := ",\n")
      rows
  in
  output_string oc "  \"serving\": {\n    \"in_process\": [\n";
  emit_serve_rows serving;
  output_string oc "\n    ],\n    \"socket\": [\n";
  emit_serve_rows socket_serving;
  Printf.fprintf oc
    "\n\
    \    ],\n\
    \    \"group_commit\": { \"name\": %S, \"updates\": %d, \"wall_ms\": \
     %.3f, \"commits_per_s\": %.0f }\n\
    \  },\n"
    group_commit.wr_name group_commit.wr_updates group_commit.wr_wall_ms
    group_commit.wr_per_s;
  let updates, recovery = durability in
  output_string oc "  \"durability\": {\n    \"updates\": [\n";
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s      { \"name\": %S, \"updates\": %d, \"wall_ms\": %.3f, \
         \"commits_per_s\": %.0f }"
        !field_sep r.wr_name r.wr_updates r.wr_wall_ms r.wr_per_s;
      field_sep := ",\n")
    updates;
  output_string oc "\n    ],\n    \"recovery\": [\n";
  field_sep := "";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "%s      { \"name\": %S, \"replayed\": %d, \"wall_ms\": %.3f }"
        !field_sep r.rr_name r.rr_replayed r.rr_wall_ms;
      field_sep := ",\n")
    recovery;
  output_string oc "\n    ]\n  },\n";
  Printf.fprintf oc "  \"metrics\": %s\n}\n" metrics_json;
  close_out oc;
  print_records records;
  print_obs_overhead overhead;
  print_ivm ivm;
  print_agg (agg_mins, agg_views);
  print_parallel parallel;
  print_serving ~label:"serve(inproc)" serving;
  print_serving ~label:"serve(socket)" socket_serving;
  Fmt.pr "%-24s %5d updates %10.2f ms  %8.0f commits/s@." group_commit.wr_name
    group_commit.wr_updates group_commit.wr_wall_ms group_commit.wr_per_s;
  print_wal durability;
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Guard overhead: interleaved A/B of the same workloads with no guard
   (the shared never-tripping [Guard.none]) versus an active guard with
   generous limits — the difference is the cost of the per-emission tick
   plus the limit compares.  Interleaving (A B A B ...) instead of
   back-to-back blocks keeps allocator and cache drift out of the
   comparison.  `guard-overhead` exits non-zero above a lenient CI bound
   (noise on shared runners dwarfs the real cost, which BENCH/EXPERIMENTS
   track more precisely). *)

let guard_overhead_bound = 15.0 (* percent; CI sanity bound, not the claim *)

let run_guard_overhead () =
  let module Guard = Dc_guard.Guard in
  let workloads =
    [
      ( "e3_chain_seminaive_512",
        fun guard ->
          let db = tc_db ~strategy:Fixpoint.Seminaive (Graph_gen.chain 512) in
          ignore (Database.query ?guard db tc_query) );
      ( "e6_random_horn_200_500",
        fun guard ->
          let edges = Graph_gen.random_graph ~seed:7 ~nodes:200 ~edges:500 in
          let guard = Option.value guard ~default:Guard.none in
          ignore
            (Dc_datalog.Seminaive.query ~guard tc_program (edb_of edges) "path")
      );
    ]
  in
  let rounds = 7 in
  let generous () =
    Guard.create ~rows:max_int ~rounds:max_int ~millis:86_400_000 ()
  in
  let worst = ref 0.0 in
  List.iter
    (fun (name, f) ->
      f None;
      (* warm-up *)
      let base = ref infinity and guarded = ref infinity in
      for _ = 1 to rounds do
        let (), t_base = time (fun () -> f None) in
        let (), t_guard = time (fun () -> f (Some (generous ()))) in
        base := min !base t_base;
        guarded := min !guarded t_guard
      done;
      let overhead = (!guarded -. !base) /. !base *. 100.0 in
      if overhead > !worst then worst := overhead;
      Fmt.pr "%-28s none=%sms guarded=%sms overhead=%+.1f%%@." name (ms !base)
        (ms !guarded) overhead)
    workloads;
  Fmt.pr "worst overhead %+.1f%% (bound %.0f%%)@." !worst guard_overhead_bound;
  if !worst > guard_overhead_bound then begin
    Fmt.epr "guard overhead above bound@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("f3", exp_f3); ("e1", exp_e1); ("e2", exp_e2); ("e2b", exp_e2b);
    ("e3", exp_e3);
    ("e4", exp_e4); ("e5", exp_e5); ("e6", exp_e6); ("e7", exp_e7);
    ("e8", exp_e8); ("e9", exp_e9); ("e10", exp_e10); ("e11", exp_e11);
    ("e12", exp_e12);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> List.filter (fun a -> a <> "--") rest
    | [] -> []
  in
  Fmt.pr "# Data Constructors (VLDB 1985) — experiment harness@.";
  match args with
  | [] ->
    List.iter (fun (_, f) -> f ()) experiments;
    run_bechamel ()
  | [ "bechamel" ] -> run_bechamel ()
  | [ "json"; path ] -> run_json path
  | [ "smoke" ] -> run_smoke ()
  | [ "ivm" ] -> run_ivm ()
  | [ "agg" ] -> run_agg ()
  | [ "parallel" ] -> run_parallel ()
  | [ "serve" ] -> run_serve ()
  | [ "wal" ] -> run_wal ()
  | [ "guard-overhead" ] -> run_guard_overhead ()
  | [ "obs-overhead" ] -> run_obs_overhead ()
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt (String.lowercase_ascii name) experiments with
        | Some f -> f ()
        | None when name = "bechamel" -> run_bechamel ()
        | None -> Fmt.epr "unknown experiment %s@." name)
      names
