(** The append-only write-ahead log: one CRC-framed record per committed
    version, fsynced before the commit's snapshot publishes.  Recovery
    scans from the start and truncates the first torn or corrupt frame —
    a crash mid-append loses only the unacknowledged commit. *)

open Dc_relation

type record = {
  r_lsn : int;
  r_version : int;
  r_changes : (string * Tuple.t list * Tuple.t list) list;
      (** (relation, inserted, deleted), in application order *)
}

type t

val load : string -> t * record list
(** Open (creating if absent) and scan the log: the intact records in
    order, with any torn tail truncated away.  The handle is positioned
    for appending. *)

val append : t -> version:int -> changes:(string * Tuple.t list * Tuple.t list) list -> int
(** Append one record and fsync; returns its LSN.  On an injected fault
    ([wal.append]/[wal.fsync]) the torn bytes stay on disk, like a real
    crash; on a real I/O error the clean boundary is restored.
    @raise Dc_guard.Guard.Exhausted / [Unix.Unix_error] *)

val append_batch :
  t -> (int * (string * Tuple.t list * Tuple.t list) list) list -> int list
(** [append_batch t [(version, changes); ...]] is the group-commit
    append: every record's frame is written back to back, then a single
    fsync makes the whole batch durable.  Returns the LSNs in order.
    Frames stay strictly per-commit, so a crash mid-batch (the
    [wal.group] failpoint fires between consecutive frames, [wal.append]
    inside each) keeps a prefix of complete frames and recovery lands on
    an exact commit boundary.  On an injected fault the bytes written so
    far stay on disk; on a real I/O error the pre-batch boundary is
    restored so the caller can re-root durability in a checkpoint.
    Batch sizes feed the {e dc_wal_group_size} histogram. *)

val reset : t -> unit
(** Truncate to empty (after a checkpoint made the log redundant); the
    [wal.truncate] failpoint fires first. *)

val set_next_lsn : t -> int -> unit
(** Raise the next LSN to at least [lsn] (checkpoint LSNs share the
    sequence). *)

val next_lsn : t -> int

val size : t -> int
(** Bytes of durable (complete, CRC-framed) records currently in the
    log — the replay suffix a recovery would read.  Drops to 0 on
    {!reset}.  Size-based checkpoint scheduling reads this. *)

val close : t -> unit
