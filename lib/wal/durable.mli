(** Durability for the versioned store: a data directory holding a
    checkpoint image plus a write-ahead log, wired into
    {!Dc_core.Database}'s commit hooks.

    Every data commit appends one CRC-framed, fsynced WAL record before
    its snapshot publishes; catalog-shaped commits (DDL, wholesale
    assignment, view (un)registration) write a full checkpoint instead;
    periodic checkpoints bound the replay suffix.  A checkpoint captures
    the catalog (as DBPL source), paged relation extents, and every
    materialized view's fact store and derivation counts.

    Recovery ([open_dir] on a non-empty directory) applies the
    checkpoint, truncates any torn WAL tail, and replays the remaining
    records through [Database.update_batch] — the ordinary commit path,
    driving incremental view maintenance — arriving at exactly the last
    durable version. *)

open Dc_core

exception Recovery_error of string

type t

val open_dir : ?db:Database.t -> ?checkpoint_every:int -> string -> t
(** Open (creating if needed) a data directory and recover from it.
    [db] supplies the database to recover into (default: a fresh one;
    must not have conflicting declarations).  If [db] already has
    committed state and the directory is empty, an initial checkpoint
    roots it.  [checkpoint_every] (default 1024) is the number of logged
    records between periodic checkpoints.
    @raise Recovery_error on a corrupt checkpoint (torn WAL tails are
    truncated silently — they are expected after a crash). *)

val db : t -> Database.t
(** The recovered, hook-attached database: commits on it are durable. *)

val checkpoint : t -> unit
(** Take a checkpoint now (graceful-shutdown path). *)

val close : t -> unit
(** Final checkpoint (unless redundant), detach hooks, close the log. *)

val durable_lsn : t -> int
val replayed : t -> int
(** Number of WAL records replayed by [open_dir] (0 = clean start). *)
