(** Durability for the versioned store: a data directory holding a
    checkpoint image plus a write-ahead log, wired into
    {!Dc_core.Database}'s commit hooks.

    Every data commit appends one CRC-framed, fsynced WAL record before
    its snapshot publishes; catalog-shaped commits (DDL, wholesale
    assignment, view (un)registration) write a full checkpoint instead;
    periodic checkpoints bound the replay suffix.  A checkpoint captures
    the catalog (as DBPL source), paged relation extents, and every
    materialized view's fact store and derivation counts.

    Recovery ([open_dir] on a non-empty directory) applies the
    checkpoint, truncates any torn WAL tail, and replays the remaining
    records through [Database.update_batch] — the ordinary commit path,
    driving incremental view maintenance — arriving at exactly the last
    durable version. *)

open Dc_core

exception Recovery_error of string

type t

val open_dir : ?db:Database.t -> ?checkpoint_every:int -> string -> t
(** Open (creating if needed) a data directory and recover from it.
    [db] supplies the database to recover into (default: a fresh one;
    must not have conflicting declarations).  If [db] already has
    committed state and the directory is empty, an initial checkpoint
    roots it.  [checkpoint_every] (default 1024) is the number of logged
    records between periodic checkpoints.
    @raise Recovery_error on a corrupt checkpoint (torn WAL tails are
    truncated silently — they are expected after a crash). *)

val db : t -> Database.t
(** The recovered, hook-attached database: commits on it are durable. *)

val checkpoint : t -> unit
(** Take a checkpoint now (graceful-shutdown path). *)

val group : t -> (unit -> 'a) -> 'a
(** [group t f] runs [f] in group-commit mode: data commits performed
    inside [f] buffer their WAL records instead of paying a per-commit
    fsync, and when [f] returns the whole batch is appended and fsynced
    once ({!Dc_wal.Wal.append_batch}).  Callers must treat a commit as
    acknowledged only after [group] returns — inside [f] the commit is
    published in memory but not yet durable.  Catalog commits inside the
    group still checkpoint immediately (the image subsumes the buffered
    records, which are dropped).  On a real I/O failure during the batch
    flush, durability is re-rooted in a full checkpoint.  Single-caller
    discipline: only the serving writer thread may call this; nested
    calls join the outer group.  An exception from [f] still flushes the
    records of the commits that succeeded before propagating. *)

val close : t -> unit
(** Final checkpoint (unless redundant), detach hooks, close the log. *)

val durable_lsn : t -> int
val replayed : t -> int
(** Number of WAL records replayed by [open_dir] (0 = clean start). *)
