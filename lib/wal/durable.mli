(** Durability for the versioned store: a data directory holding a
    checkpoint image plus a write-ahead log, wired into
    {!Dc_core.Database}'s commit hooks.

    Every data commit appends one CRC-framed, fsynced WAL record before
    its snapshot publishes; catalog-shaped commits (DDL, wholesale
    assignment, view (un)registration) write a full checkpoint instead;
    periodic checkpoints bound the replay suffix.  A checkpoint captures
    the catalog (as DBPL source), paged relation extents, and every
    materialized view's fact store and derivation counts.

    Recovery ([open_dir] on a non-empty directory) applies the
    checkpoint, truncates any torn WAL tail, and replays the remaining
    records through [Database.update_batch] — the ordinary commit path,
    driving incremental view maintenance — arriving at exactly the last
    durable version. *)

open Dc_core

exception Recovery_error of string

type checkpoint_policy = {
  cp_records : int option;  (** checkpoint after this many logged records *)
  cp_bytes : int option;  (** … or once the WAL holds this many bytes *)
  cp_seconds : float option;
      (** … or this long after the previous checkpoint, measured at the
          next commit (no timer thread — an idle database never
          checkpoints spontaneously) *)
}
(** When to take a periodic checkpoint; the first criterion to trip
    wins, [None] disables one.  Record counts mis-size replay cost when
    commit widths vary (one record can carry a million-tuple assignment
    delta), so [cp_bytes] bounds the actual suffix a recovery must read
    and [cp_seconds] bounds staleness on slow-trickle streams.  All
    three [None] turns periodic checkpoints off entirely — catalog
    commits and {!close} still write them. *)

val default_policy : checkpoint_policy
(** 1024 records or 4 MiB of WAL, whichever comes first; no time bound. *)

type t

val open_dir :
  ?db:Database.t -> ?checkpoint_every:int -> ?policy:checkpoint_policy ->
  string -> t
(** Open (creating if needed) a data directory and recover from it.
    [db] supplies the database to recover into (default: a fresh one;
    must not have conflicting declarations).  If [db] already has
    committed state and the directory is empty, an initial checkpoint
    roots it.  [policy] (default {!default_policy}) schedules periodic
    checkpoints; [checkpoint_every] is the legacy record-count-only
    spelling of the same and may not be combined with [policy].
    @raise Recovery_error on a corrupt checkpoint (torn WAL tails are
    truncated silently — they are expected after a crash). *)

val db : t -> Database.t
(** The recovered, hook-attached database: commits on it are durable. *)

val checkpoint : t -> unit
(** Take a checkpoint now (graceful-shutdown path). *)

val group : t -> (unit -> 'a) -> 'a
(** [group t f] runs [f] in group-commit mode: data commits performed
    inside [f] buffer their WAL records instead of paying a per-commit
    fsync, and when [f] returns the whole batch is appended and fsynced
    once ({!Dc_wal.Wal.append_batch}).  Callers must treat a commit as
    acknowledged only after [group] returns — inside [f] the commit is
    published in memory but not yet durable.  Catalog commits inside the
    group still checkpoint immediately (the image subsumes the buffered
    records, which are dropped).  On a real I/O failure during the batch
    flush, durability is re-rooted in a full checkpoint.  Single-caller
    discipline: only the serving writer thread may call this; nested
    calls join the outer group.  An exception from [f] still flushes the
    records of the commits that succeeded before propagating. *)

val close : t -> unit
(** Final checkpoint (unless redundant), detach hooks, close the log. *)

val durable_lsn : t -> int
val replayed : t -> int
(** Number of WAL records replayed by [open_dir] (0 = clean start). *)
