(** Binary encoding primitives shared by the write-ahead log and
    checkpoints: little-endian u32, LEB128 varints (zigzag for signed),
    length-prefixed strings, tagged values and tuples, and the
    [\[u32 len\]\[u32 crc\]\[payload\]] framing convention with a
    table-driven CRC-32 (reflected IEEE polynomial). *)

open Dc_relation

exception Corrupt of string
(** Malformed input: the WAL reader treats it as a torn tail, the
    checkpoint reader as fatal corruption. *)

val crc32 : ?pos:int -> ?len:int -> string -> int

(** {1 Writers} *)

val u32 : Buffer.t -> int -> unit
val varint : Buffer.t -> int -> unit
(** Unsigned LEB128; the argument must be non-negative. *)

val zigzag : Buffer.t -> int -> unit
val string_ : Buffer.t -> string -> unit
val value : Buffer.t -> Value.t -> unit
val tuple : Buffer.t -> Tuple.t -> unit
val tuples : Buffer.t -> Tuple.t list -> unit

(** {1 Readers} *)

type cursor = {
  data : string;
  mutable pos : int;
  limit : int;
}

val cursor : ?pos:int -> ?limit:int -> string -> cursor
val at_end : cursor -> bool
val read_u32 : cursor -> int
val read_varint : cursor -> int
val read_zigzag : cursor -> int
val read_string : cursor -> string
val read_value : cursor -> Value.t
val read_tuple : cursor -> Tuple.t
val read_tuples : cursor -> Tuple.t list

(** {1 Framing} *)

val add_frame : Buffer.t -> string -> unit
val frame_string : string -> string

val read_frame : string -> int -> string * int
(** [read_frame data pos] decodes the frame at [pos]: its payload and the
    offset just past it.  @raise Corrupt on short data, an implausible
    declared length, or a CRC mismatch. *)
