(* Binary encoding primitives of the write-ahead log and checkpoints.

   Everything durable is built from five little-endian primitives —
   fixed u32, unsigned LEB128 varints, zigzag-folded signed varints,
   length-prefixed strings, float bits as int64 — plus a tagged encoding
   of {!Dc_relation.Value.t} and tuples, and one framing convention:

     frame := [u32 payload-length][u32 crc32(payload)][payload]

   The CRC is the reflected IEEE polynomial (0xEDB88320), table-driven,
   pure OCaml.  Readers are cursors over an immutable string; any
   malformed input raises {!Corrupt} — the WAL reader treats that as a
   torn tail, the checkpoint reader as fatal corruption. *)

open Dc_relation

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE, reflected) *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Writers (append to a Buffer) *)

let u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF))

(* unsigned LEB128; callers must pass non-negative values *)
let rec varint buf n =
  if n < 0x80 then Buffer.add_char buf (Char.chr n)
  else begin
    Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
    varint buf (n lsr 7)
  end

(* signed via zigzag fold: 0,-1,1,-2,... -> 0,1,2,3,... *)
let zigzag buf n = varint buf ((n lsl 1) lxor (n asr 62))

let string_ buf s =
  varint buf (String.length s);
  Buffer.add_string buf s

let value buf = function
  | Value.Int i ->
    Buffer.add_char buf '\000';
    zigzag buf i
  | Value.Str s ->
    Buffer.add_char buf '\001';
    string_ buf s
  | Value.Bool b ->
    Buffer.add_char buf '\002';
    Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Float f ->
    Buffer.add_char buf '\003';
    Buffer.add_int64_le buf (Int64.bits_of_float f)

let tuple buf t =
  let vs = Tuple.to_list t in
  varint buf (List.length vs);
  List.iter (value buf) vs

let tuples buf ts =
  varint buf (List.length ts);
  List.iter (tuple buf) ts

(* ------------------------------------------------------------------ *)
(* Readers (cursor over an immutable string) *)

type cursor = {
  data : string;
  mutable pos : int;
  limit : int;
}

let cursor ?(pos = 0) ?limit data =
  let limit = match limit with Some l -> l | None -> String.length data in
  { data; pos; limit }

let at_end c = c.pos >= c.limit

let byte c =
  if c.pos >= c.limit then corrupt "unexpected end of input";
  let b = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  b

let read_u32 c =
  let b0 = byte c in
  let b1 = byte c in
  let b2 = byte c in
  let b3 = byte c in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let read_varint c =
  let rec go shift acc =
    if shift > 62 then corrupt "varint overflow";
    let b = byte c in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag c =
  let n = read_varint c in
  (n lsr 1) lxor (-(n land 1))

let read_string c =
  let len = read_varint c in
  if len < 0 || c.pos + len > c.limit then corrupt "string runs past input";
  let s = String.sub c.data c.pos len in
  c.pos <- c.pos + len;
  s

let read_value c =
  match byte c with
  | 0 -> Value.Int (read_zigzag c)
  | 1 -> Value.str (read_string c)
  | 2 -> Value.Bool (byte c <> 0)
  | 3 ->
    let lo = read_u32 c and hi = read_u32 c in
    Value.Float
      (Int64.float_of_bits
         (Int64.logor
            (Int64.of_int lo)
            (Int64.shift_left (Int64.of_int hi) 32)))
  | t -> corrupt "unknown value tag %d" t

let read_tuple c =
  let n = read_varint c in
  if n < 0 || n > 4096 then corrupt "implausible tuple arity %d" n;
  Tuple.of_list (List.init n (fun _ -> read_value c))

let read_tuples c =
  let n = read_varint c in
  if n < 0 then corrupt "negative tuple count";
  List.init n (fun _ -> read_tuple c)

(* ------------------------------------------------------------------ *)
(* Framing *)

let max_frame = 1 lsl 30 (* sanity bound on declared payload lengths *)

let add_frame buf payload =
  u32 buf (String.length payload);
  u32 buf (crc32 payload);
  Buffer.add_string buf payload

let frame_string payload =
  let buf = Buffer.create (String.length payload + 8) in
  add_frame buf payload;
  Buffer.contents buf

(* [read_frame data pos] decodes one frame starting at [pos], returning
   the payload and the offset just past it.  Short data, an implausible
   length, or a CRC mismatch all raise [Corrupt]. *)
let read_frame data pos =
  let n = String.length data in
  if pos + 8 > n then corrupt "truncated frame header";
  let c = cursor ~pos data in
  let len = read_u32 c in
  let crc = read_u32 c in
  if len < 0 || len > max_frame then corrupt "implausible frame length %d" len;
  if pos + 8 + len > n then corrupt "truncated frame payload";
  if crc32 ~pos:(pos + 8) ~len data <> crc then corrupt "frame crc mismatch";
  (String.sub data (pos + 8) len, pos + 8 + len)
