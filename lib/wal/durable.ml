(* The durability orchestrator: ties a [Database.t] to a data directory
   holding a checkpoint and a write-ahead log, through the database's
   commit hooks.

   Layout:
     <dir>/checkpoint.dat   magic "DCCKPT01" + framed checkpoint image
     <dir>/wal.log          CRC-framed records since that checkpoint

   Protocol per commit (installed as [Database.wal_hooks]):

   - a data commit appends one WAL record carrying the commit's net
     per-relation deltas and fsyncs it {e before} the snapshot publishes
     — an acknowledged commit is on disk.  Empty deltas still log, so
     durable versions stay consecutive.
   - a catalog-marked commit (DDL, wholesale assignment, MATERIALIZE /
     DROP of a view) has no replayable delta: it writes a full
     checkpoint instead, also pre-publication.
   - after publication, a checkpoint is taken when the [checkpoint_policy]
     says the replay suffix has grown too expensive: too many logged
     records, too many WAL bytes ([Wal.size]), or too much wall time
     since the last checkpoint — whichever criterion trips first.

   A checkpoint is a consistent image of the whole committed state:
   catalog source (re-elaborated through the front end on recovery),
   paged relation extents, and every materialized view's fact store plus
   derivation counts — so recovery re-registers maintainers without
   refixpointing.  It is written to checkpoint.tmp, fsynced, renamed
   over checkpoint.dat, the directory fsynced, and only then is the WAL
   truncated; a crash anywhere in that sequence leaves either the old
   (checkpoint ⊕ full log) or the new (checkpoint ⊕ skippable log)
   state recoverable.

   Recovery = apply checkpoint, then replay the WAL suffix through
   [Database.update_batch] — the ordinary commit path, driving the same
   incremental view maintenance a live update stream does — arriving at
   exactly the last durable version.  Records at or below the
   checkpoint's version are skipped (the wal.truncate crash window). *)

open Dc_relation
open Dc_core
open Dc_calculus
module Guard = Dc_guard.Guard
module Failpoint = Guard.Failpoint
module Obs = Dc_obs.Obs
module Ivm = Dc_ivm.Ivm
module Storage = Dc_lang.Storage

exception Recovery_error of string

let recovery_error fmt = Fmt.kstr (fun s -> raise (Recovery_error s)) fmt

let magic = "DCCKPT01"
let page_tuples = 256

let m_checkpoint_ms = lazy (Obs.Histogram.make "dc_wal_checkpoint_ms")
let m_recovered = lazy (Obs.Counter.make "dc_wal_recovered_records")

(* When to take a periodic checkpoint: after [cp_records] logged
   records, after the WAL grows past [cp_bytes], or after [cp_seconds]
   of wall time since the last one — whichever trips first; [None]
   disables a criterion.  Record counts mis-size replay cost when
   commits vary wildly in width (one record can carry a million-tuple
   assignment delta), so the byte criterion bounds the actual suffix the
   next recovery must read, and the time criterion bounds staleness on
   slow-trickle streams. *)
type checkpoint_policy = {
  cp_records : int option;
  cp_bytes : int option;
  cp_seconds : float option;
}

let default_policy =
  { cp_records = Some 1024; cp_bytes = Some (4 * 1024 * 1024); cp_seconds = None }

type t = {
  dir : string;
  db : Database.t;
  wal : Wal.t;
  policy : checkpoint_policy;
  mutable since_checkpoint : int;
  mutable last_checkpoint_at : float; (* Unix.gettimeofday at the last one *)
  mutable lsn : int; (* last durable LSN *)
  mutable replayed : int; (* records replayed at open *)
  mutable group :
    (int * (string * Tuple.t list * Tuple.t list) list) list ref option;
      (* when [Some pending], commits buffer their records (newest first)
         instead of appending; [group] flushes them in one fsynced batch *)
}

let db t = t.db
let durable_lsn t = t.lsn
let replayed t = t.replayed
let wal_path dir = Filename.concat dir "wal.log"
let ckpt_path dir = Filename.concat dir "checkpoint.dat"
let tmp_path dir = Filename.concat dir "checkpoint.tmp"

(* ------------------------------------------------------------------ *)
(* Checkpoint encoding *)

let encode_arg buf = function
  | Ast.Arg_scalar (Ast.Const c) ->
    Buffer.add_char buf '\000';
    Codec.value buf c
  | Ast.Arg_range (Ast.Rel n) ->
    Buffer.add_char buf '\001';
    Codec.string_ buf n
  | _ ->
    recovery_error
      "cannot checkpoint a view over a computed argument (only constants \
       and named relations)"

let decode_arg c =
  match Codec.read_varint c with
  | 0 -> Ast.Arg_scalar (Ast.Const (Codec.read_value c))
  | 1 -> Ast.Arg_range (Ast.Rel (Codec.read_string c))
  | t -> raise (Codec.Corrupt (Fmt.str "unknown view-argument tag %d" t))

let encode_view_dump (d : Ivm.dump) =
  let buf = Buffer.create 1024 in
  Codec.string_ buf d.dp_con;
  Codec.string_ buf d.dp_base;
  Codec.varint buf (List.length d.dp_args);
  List.iter (encode_arg buf) d.dp_args;
  Buffer.add_char buf (if d.dp_stale then '\001' else '\000');
  Codec.varint buf (List.length d.dp_store);
  List.iter
    (fun (pred, ts) ->
      Codec.string_ buf pred;
      Codec.tuples buf ts)
    d.dp_store;
  Codec.varint buf (List.length d.dp_supports);
  List.iter
    (fun (pred, rows) ->
      Codec.string_ buf pred;
      Codec.varint buf (List.length rows);
      List.iter
        (fun (t, n) ->
          Codec.tuple buf t;
          Codec.varint buf n)
        rows)
    d.dp_supports;
  Buffer.contents buf

let decode_view_dump payload : Ivm.dump =
  let c = Codec.cursor payload in
  let dp_con = Codec.read_string c in
  let dp_base = Codec.read_string c in
  let dp_args = List.init (Codec.read_varint c) (fun _ -> decode_arg c) in
  let dp_stale = Codec.read_varint c <> 0 in
  let dp_store =
    List.init (Codec.read_varint c) (fun _ ->
        let pred = Codec.read_string c in
        (pred, Codec.read_tuples c))
  in
  let dp_supports =
    List.init (Codec.read_varint c) (fun _ ->
        let pred = Codec.read_string c in
        ( pred,
          List.init (Codec.read_varint c) (fun _ ->
              let t = Codec.read_tuple c in
              (t, Codec.read_varint c)) ))
  in
  { dp_con; dp_base; dp_args; dp_stale; dp_store; dp_supports }

(* Page a relation's tuples into frames of at most [page_tuples] rows.
   Pages carry their own CRC framing, so a damaged extent is detected at
   page granularity. *)
let pages_of_relation rel =
  let pages = ref [] and page = ref [] and n = ref 0 in
  let flush () =
    if !n > 0 then begin
      let buf = Buffer.create 1024 in
      Codec.tuples buf (List.rev !page);
      pages := Buffer.contents buf :: !pages;
      page := [];
      n := 0
    end
  in
  Relation.iter
    (fun t ->
      page := t :: !page;
      incr n;
      if !n >= page_tuples then flush ())
    rel;
  flush ();
  List.rev !pages

let encode_checkpoint db ~version ~lsn =
  let rels =
    List.map
      (fun name -> (name, pages_of_relation (Database.get db name)))
      (Database.relation_names db)
  in
  let views = List.map (fun v -> encode_view_dump (Ivm.dump v)) (Ivm.views db) in
  let meta = Buffer.create 1024 in
  Codec.varint meta version;
  Codec.varint meta lsn;
  Codec.string_ meta (Storage.render_catalog db);
  Codec.varint meta (List.length rels);
  List.iter
    (fun (name, pages) ->
      Codec.string_ meta name;
      Codec.varint meta (List.length pages))
    rels;
  Codec.varint meta (List.length views);
  let out = Buffer.create 65536 in
  Buffer.add_string out magic;
  Codec.add_frame out (Buffer.contents meta);
  List.iter
    (fun (_, pages) -> List.iter (Codec.add_frame out) pages)
    rels;
  List.iter (Codec.add_frame out) views;
  Buffer.contents out

(* Parse a checkpoint image and build the database it describes.  Any
   corruption is fatal: the image was published by an atomic rename, so
   a bad frame means real damage, not a torn write. *)
let apply_checkpoint ?db data =
  if
    String.length data < String.length magic
    || not (String.equal (String.sub data 0 (String.length magic)) magic)
  then recovery_error "checkpoint: bad magic";
  let pos = ref (String.length magic) in
  let next_frame () =
    let payload, next = Codec.read_frame data !pos in
    pos := next;
    payload
  in
  let meta = Codec.cursor (next_frame ()) in
  let version = Codec.read_varint meta in
  let lsn = Codec.read_varint meta in
  let catalog = Codec.read_string meta in
  let rels =
    List.init (Codec.read_varint meta) (fun _ ->
        let name = Codec.read_string meta in
        (name, Codec.read_varint meta))
  in
  let n_views = Codec.read_varint meta in
  let db = Storage.load_catalog ?db catalog in
  List.iter
    (fun (name, n_pages) ->
      let schema = Relation.schema (Database.get db name) in
      let tuples =
        List.concat
          (List.init n_pages (fun _ ->
               Codec.read_tuples (Codec.cursor (next_frame ()))))
      in
      if tuples <> [] then
        Database.set db name (Relation.of_list schema tuples))
    rels;
  for _ = 1 to n_views do
    ignore (Ivm.restore db (decode_view_dump (next_frame ())))
  done;
  Database.restore_version db version;
  (db, version, lsn)

(* ------------------------------------------------------------------ *)
(* Checkpoint writing *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    let finally () = Unix.close fd in
    Fun.protect ~finally (fun () -> Unix.fsync fd)
  | exception Unix.Unix_error _ -> ()

let write_checkpoint t ~version =
  let t0 = if Obs.on () then Obs.now_ms () else 0. in
  let ck_lsn = max (t.lsn + 1) (Wal.next_lsn t.wal) in
  let image = encode_checkpoint t.db ~version ~lsn:ck_lsn in
  let tmp = tmp_path t.dir in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (let finally () = Unix.close fd in
   Fun.protect ~finally (fun () ->
       let written = ref 0 in
       let len = String.length image in
       while !written < len do
         written :=
           !written + Unix.write_substring fd image !written (len - !written)
       done;
       Unix.fsync fd));
  (* the crash window the matrix test drives: tmp is complete but not yet
     visible; recovery ignores it and uses the previous checkpoint *)
  Failpoint.hit "wal.checkpoint";
  Sys.rename tmp (ckpt_path t.dir);
  fsync_dir t.dir;
  (* from here the new image is the recovery root: the log is redundant
     (replay skips records at or below [version]) and can be truncated.
     [Wal.reset] fires the wal.truncate failpoint first. *)
  Wal.reset t.wal;
  Wal.set_next_lsn t.wal (ck_lsn + 1);
  t.lsn <- ck_lsn;
  t.since_checkpoint <- 0;
  t.last_checkpoint_at <- Unix.gettimeofday ();
  Database.set_durable_lsn t.db ck_lsn;
  (* records still buffered by an active group are at or below the image's
     version, so the image subsumes them; replay would skip them anyway *)
  (match t.group with Some pending -> pending := [] | None -> ());
  if Obs.on () then
    Obs.Histogram.observe (Lazy.force m_checkpoint_ms) (Obs.now_ms () -. t0)

let checkpoint t = write_checkpoint t ~version:(Database.version t.db)

(* First criterion to trip wins; everything [None] means periodic
   checkpoints are off (catalog commits and [close] still write them). *)
let checkpoint_due t =
  (match t.policy.cp_records with
  | Some n -> t.since_checkpoint >= n
  | None -> false)
  || (match t.policy.cp_bytes with
     | Some n -> t.since_checkpoint > 0 && Wal.size t.wal >= n
     | None -> false)
  ||
  match t.policy.cp_seconds with
  | Some s ->
    t.since_checkpoint > 0 && Unix.gettimeofday () -. t.last_checkpoint_at >= s
  | None -> false

(* ------------------------------------------------------------------ *)
(* Hooks *)

let hooks t =
  {
    Database.wh_append =
      (fun ~version ~catalog ~changes ->
        if catalog then
          (* no replayable delta: checkpoint the full (already mutated,
             not yet published) state at the version about to publish *)
          write_checkpoint t ~version
        else begin
          match t.group with
          | Some pending ->
            (* group mode: buffer the record; [flush_group] appends the
               whole batch and fsyncs once.  The durable LSN does not
               advance until that shared fsync. *)
            pending := (version, changes) :: !pending
          | None ->
            let lsn = Wal.append t.wal ~version ~changes in
            t.lsn <- lsn;
            t.since_checkpoint <- t.since_checkpoint + 1;
            Database.set_durable_lsn t.db lsn
        end);
    wh_published =
      (fun ~version -> if checkpoint_due t then write_checkpoint t ~version);
  }

(* ------------------------------------------------------------------ *)
(* Group commit *)

let flush_group t records =
  match records with
  | [] -> ()
  | records -> (
    match Wal.append_batch t.wal records with
    | lsns ->
      let last = List.fold_left max t.lsn lsns in
      t.lsn <- last;
      t.since_checkpoint <- t.since_checkpoint + List.length records;
      Database.set_durable_lsn t.db last;
      (* buffered records bypassed wh_published's periodic check, so the
         replay-suffix bound is enforced here instead *)
      if checkpoint_due t then
        write_checkpoint t ~version:(Database.version t.db)
    | exception (Guard.Exhausted (Guard.Fault_injected _, _) as e) ->
      (* simulated crash: propagate raw, disk state stays as the "kill"
         left it *)
      raise e
    | exception _ ->
      (* real I/O failure mid-batch: the commits are already published
         in memory and the log was restored to the pre-batch boundary —
         re-root durability in a full checkpoint instead *)
      write_checkpoint t ~version:(Database.version t.db))

let group t f =
  match t.group with
  | Some _ -> f () (* nested: the outer group owns the flush *)
  | None ->
    let pending = ref [] in
    t.group <- Some pending;
    let r =
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    t.group <- None;
    (* flush even when [f] raised: commits that did succeed inside the
       group are published and their callers will be acknowledged *)
    flush_group t (List.rev !pending);
    (match r with
    | Ok v -> v
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt)

(* ------------------------------------------------------------------ *)
(* Open / recover *)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let open_dir ?db ?checkpoint_every ?policy dir =
  let policy =
    match (policy, checkpoint_every) with
    | Some _, Some _ ->
      invalid_arg "Durable.open_dir: pass checkpoint_every or policy, not both"
    | Some p, None -> p
    | None, Some n ->
      (* legacy knob: a pure record-count policy *)
      { cp_records = Some n; cp_bytes = None; cp_seconds = None }
    | None, None -> default_policy
  in
  (match policy.cp_records with
  | Some n when n < 1 -> invalid_arg "Durable.open_dir: cp_records"
  | _ -> ());
  (match policy.cp_bytes with
  | Some n when n < 1 -> invalid_arg "Durable.open_dir: cp_bytes"
  | _ -> ());
  (match policy.cp_seconds with
  | Some s when s <= 0. -> invalid_arg "Durable.open_dir: cp_seconds"
  | _ -> ());
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    recovery_error "%s exists and is not a directory" dir;
  (* a leftover tmp is an unpublished checkpoint from a crash: discard *)
  if Sys.file_exists (tmp_path dir) then Sys.remove (tmp_path dir);
  let db, lsn =
    if Sys.file_exists (ckpt_path dir) then begin
      let db, _version, lsn =
        try apply_checkpoint ?db (read_file (ckpt_path dir))
        with Codec.Corrupt msg ->
          recovery_error "%s: corrupt checkpoint (%s)" (ckpt_path dir) msg
      in
      (db, lsn)
    end
    else ((match db with Some db -> db | None -> Database.create ()), 0)
  in
  let wal, records = Wal.load (wal_path dir) in
  let t =
    { dir; db; wal; policy; since_checkpoint = 0;
      last_checkpoint_at = Unix.gettimeofday (); lsn; replayed = 0;
      group = None }
  in
  (* replay the suffix: records at or below the checkpoint version are
     from the wal.truncate crash window and already in the image *)
  List.iter
    (fun (r : Wal.record) ->
      if r.r_version > Database.version db then begin
        Database.restore_version db (r.r_version - 1);
        Database.update_batch db r.r_changes;
        t.replayed <- t.replayed + 1;
        t.since_checkpoint <- t.since_checkpoint + 1;
        t.lsn <- max t.lsn r.r_lsn
      end)
    records;
  if Obs.on () && t.replayed > 0 then
    Obs.Counter.add (Lazy.force m_recovered) t.replayed;
  Wal.set_next_lsn wal (t.lsn + 1);
  Database.set_durable_lsn db t.lsn;
  Database.set_wal_hooks db (Some (hooks t));
  (* attaching a directory to a database that already has state (e.g.
     [run --data] over a script-built database): root it in a checkpoint
     immediately, otherwise that state would never reach disk *)
  if
    Database.version db > 0
    && (not (Sys.file_exists (ckpt_path dir)))
    && records = []
  then checkpoint t;
  t

let close t =
  (* a final checkpoint bounds the next open's replay; skip it when the
     directory is already rooted in one and nothing was logged since *)
  if t.since_checkpoint > 0 || not (Sys.file_exists (ckpt_path t.dir)) then
    checkpoint t;
  Database.set_wal_hooks t.db None;
  Wal.close t.wal
