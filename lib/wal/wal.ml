(* The append-only write-ahead log.

   One frame per committed version: the record carries its LSN, the
   version it makes durable, and the net per-relation insert/delete
   batches of that commit, in application order.  [append] writes the
   frame and fsyncs before returning — the caller publishes the snapshot
   only after the append returns, so an acknowledged commit is on disk.

   Recovery ([load]) scans frames from the start; the first short,
   CRC-corrupt, or undecodable frame marks a torn tail from a crash
   mid-append, which is truncated away and never trusted — everything
   before it is intact by construction (frames are written strictly
   sequentially and fsynced in order).

   Group commit ([append_batch]) amortizes the fsync: the writer drains
   its queued commits, writes all their frames back to back, and pays
   one fsync for the whole batch.  Frames stay strictly per-commit, so
   recovery still lands on an exact commit boundary — a crash mid-batch
   keeps the prefix of complete frames and discards the torn tail.

   Failpoint sites, arming the crash-matrix test:
     wal.append    between the two halves of a frame write (torn record)
     wal.fsync     after the full write, before the fsync
     wal.group     between consecutive frames of a group-commit batch
     wal.truncate  in [reset], before the post-checkpoint truncation *)

module Guard = Dc_guard.Guard
module Failpoint = Guard.Failpoint
module Obs = Dc_obs.Obs
open Dc_relation

type record = {
  r_lsn : int;
  r_version : int;
  r_changes : (string * Tuple.t list * Tuple.t list) list;
      (* (relation, inserted, deleted) in application order *)
}

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable pos : int; (* end of the last durable frame *)
  mutable next_lsn : int;
}

let m_appends = lazy (Obs.Counter.make "dc_wal_appends_total")
let m_fsync_ms = lazy (Obs.Histogram.make "dc_wal_fsync_ms")
let m_group_size = lazy (Obs.Histogram.make "dc_wal_group_size")

(* ------------------------------------------------------------------ *)
(* Record payloads *)

let encode_record r =
  let buf = Buffer.create 256 in
  Codec.varint buf r.r_lsn;
  Codec.varint buf r.r_version;
  Codec.varint buf (List.length r.r_changes);
  List.iter
    (fun (rel, added, removed) ->
      Codec.string_ buf rel;
      Codec.tuples buf added;
      Codec.tuples buf removed)
    r.r_changes;
  Buffer.contents buf

let decode_record payload =
  let c = Codec.cursor payload in
  let r_lsn = Codec.read_varint c in
  let r_version = Codec.read_varint c in
  let n = Codec.read_varint c in
  let r_changes =
    List.init n (fun _ ->
        let rel = Codec.read_string c in
        let added = Codec.read_tuples c in
        let removed = Codec.read_tuples c in
        (rel, added, removed))
  in
  if not (Codec.at_end c) then
    raise (Codec.Corrupt "trailing bytes in wal record");
  { r_lsn; r_version; r_changes }

(* ------------------------------------------------------------------ *)
(* File operations *)

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written :=
      !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

let truncate_to t pos =
  Unix.ftruncate t.fd pos;
  ignore (Unix.lseek t.fd pos Unix.SEEK_SET);
  t.pos <- pos

(* Scan [data] frame by frame; a bad frame is the torn tail.  Returns the
   decoded records and the clean length. *)
let scan data =
  let records = ref [] in
  let pos = ref 0 in
  (try
     while !pos < String.length data do
       let payload, next = Codec.read_frame data !pos in
       records := decode_record payload :: !records;
       pos := next
     done
   with Codec.Corrupt _ -> ());
  (List.rev !records, !pos)

let load path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let data =
    if size = 0 then ""
    else begin
      let b = Bytes.create size in
      let read = ref 0 in
      while !read < size do
        let n = Unix.read fd b !read (size - !read) in
        if n = 0 then raise (Codec.Corrupt "wal shrank while reading");
        read := !read + n
      done;
      Bytes.unsafe_to_string b
    end
  in
  let records, clean = scan data in
  let t = { path; fd; pos = clean; next_lsn = 1 } in
  (* truncate the torn tail so the next append lands on a clean frame
     boundary *)
  if clean < size then truncate_to t clean else ignore (Unix.lseek fd clean Unix.SEEK_SET);
  List.iter (fun r -> t.next_lsn <- max t.next_lsn (r.r_lsn + 1)) records;
  (t, records)

let append t ~version ~changes =
  let lsn = t.next_lsn in
  let frame =
    Codec.frame_string
      (encode_record { r_lsn = lsn; r_version = version; r_changes = changes })
  in
  let len = String.length frame in
  (try
     (* two-part write with the failpoint in between: an injected crash
        here leaves exactly the torn record recovery must discard *)
     let half = len / 2 in
     write_all t.fd frame 0 half;
     Failpoint.hit "wal.append";
     write_all t.fd frame half (len - half);
     Failpoint.hit "wal.fsync";
     let t0 = if Obs.on () then Obs.now_ms () else 0. in
     Unix.fsync t.fd;
     if Obs.on () then begin
       Obs.Histogram.observe (Lazy.force m_fsync_ms) (Obs.now_ms () -. t0);
       Obs.Counter.inc (Lazy.force m_appends)
     end
   with
  | Guard.Exhausted (Guard.Fault_injected _, _) as e ->
    (* simulated crash: leave the torn bytes on disk, like a real kill *)
    raise e
  | e ->
    (* real I/O failure mid-append: restore the clean boundary so the
       commit's rollback leaves the log exactly as before *)
    (try truncate_to t t.pos with _ -> ());
    raise e);
  t.pos <- t.pos + len;
  t.next_lsn <- lsn + 1;
  lsn

let append_batch t records =
  match records with
  | [] -> []
  | _ ->
    let framed =
      List.mapi
        (fun i (version, changes) ->
          let lsn = t.next_lsn + i in
          ( lsn,
            Codec.frame_string
              (encode_record
                 { r_lsn = lsn; r_version = version; r_changes = changes }) ))
        records
    in
    let total = List.fold_left (fun a (_, f) -> a + String.length f) 0 framed in
    (try
       List.iteri
         (fun i (_, frame) ->
           (* the group site sits between commits: an injected crash
              there leaves a prefix of complete frames — exactly the
              boundary recovery must land on *)
           if i > 0 then Failpoint.hit "wal.group";
           let len = String.length frame in
           let half = len / 2 in
           write_all t.fd frame 0 half;
           Failpoint.hit "wal.append";
           write_all t.fd frame half (len - half))
         framed;
       Failpoint.hit "wal.fsync";
       let t0 = if Obs.on () then Obs.now_ms () else 0. in
       Unix.fsync t.fd;
       if Obs.on () then begin
         Obs.Histogram.observe (Lazy.force m_fsync_ms) (Obs.now_ms () -. t0);
         Obs.Counter.add (Lazy.force m_appends) (List.length framed);
         Obs.Histogram.observe (Lazy.force m_group_size)
           (float_of_int (List.length framed))
       end
     with
    | Guard.Exhausted (Guard.Fault_injected _, _) as e ->
      (* simulated crash: leave whatever made it to disk — complete
         frames replay, the torn tail is truncated away *)
      raise e
    | e ->
      (* real I/O failure mid-batch: restore the pre-batch boundary so
         the caller can re-root durability (checkpoint fallback) *)
      (try truncate_to t t.pos with _ -> ());
      raise e);
    t.pos <- t.pos + total;
    t.next_lsn <- t.next_lsn + List.length framed;
    List.map fst framed

let reset t =
  Failpoint.hit "wal.truncate";
  truncate_to t 0;
  Unix.fsync t.fd

let set_next_lsn t lsn = t.next_lsn <- max t.next_lsn lsn
let next_lsn t = t.next_lsn
let size t = t.pos
let close t = Unix.close t.fd
