(** The Datalog rule compiler: shared machinery of the engines, lowering
    each rule body onto the physical operator IR ({!Dc_exec.Ir}).

    Positive atoms become scans or keyed probes (constants and
    already-bound variables form the index key), negated atoms anti-joins,
    built-in tests filters attached at the earliest point their variables
    are bound.  The row threaded through a pipeline is a [Value.t array]
    with one slot per rule variable, mutated in place. *)

open Dc_relation

type row = Value.t array

(** {1 Errors}

    One structured taxonomy for the whole Datalog layer (compiler and
    engines), replacing ad-hoc [Invalid_argument]s. *)

type error_kind =
  | Unsafe_rule  (** negation/test can never be grounded, floundering *)
  | Unbound_variable  (** a variable was consulted before any binding *)
  | Unsupported  (** the engine does not implement this feature *)
  | Internal  (** broken engine invariant — a bug *)

exception Error of error_kind * string

val error : error_kind -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

val pp_error : (error_kind * string) Fmt.t

val dummy : Value.t
(** Placeholder filling unbound slots of a fresh row. *)

(** {1 Extents over fact stores} *)

val store_extent : ?label:string -> Facts.t -> string -> Dc_exec.Extent.t
(** One predicate's tuples as a physical extent; keyed lookups go through
    the store's delta-incremental index cache. *)

val delta_name : string -> string
(** ["Δpred"] — the named source under which a pipeline reads the
    semi-naive delta of [pred] instead of the full store. *)

val split_delta : string -> string option
(** [Some pred] when the name is ["Δpred"], [None] otherwise. *)

val post_name : string -> string
(** ["⊕pred"] — the named source under which a pipeline reads the
    post-update store of [pred]; used by the incremental-maintenance
    counting pass, which telescopes a product of per-atom updates
    (post stores left of the delta, pre stores right of it). *)

val split_post : string -> string option

val store_ctx : Facts.t -> Dc_exec.Ir.ctx
(** Resolve every named source against one store (naive rounds). *)

val delta_ctx : full:Facts.t -> delta:Facts.t -> Dc_exec.Ir.ctx
(** Resolve ["pred"] against [full] and ["Δpred"] against [delta]
    (semi-naive rounds swap stores under an unchanged pipeline). *)

val tri_ctx : pre:Facts.t -> post:Facts.t -> delta:Facts.t -> Dc_exec.Ir.ctx
(** Resolve ["pred"] against [pre], ["⊕pred"] against [post] and
    ["Δpred"] against [delta] (the counting pass's three layers). *)

val group_by_head : Syntax.program -> (string * Syntax.rule list) list
(** Rules grouped by head predicate; predicates ordered by first
    appearance, rules by program order. *)

(** {1 Rule compilation} *)

(** How one positive atom occurrence reads its tuples. *)
type src_spec =
  | Static of Dc_exec.Ir.source
      (** a fixed or named extent: scans and keyed probes apply *)
  | Dynamic of ((row -> Syntax.term list) -> row -> Dc_exec.Extent.t)
      (** correlated consult (the tabled engine's subgoal tables): the
          callback receives [inst], which instantiates the atom's
          arguments from the current row (bound variables become
          constants), and returns the extent to scan for that row *)

type compiled = {
  pipeline : Dc_exec.Ir.t;  (** [Project] over the compiled body *)
  n_slots : int;
  slot : string -> int;  (** slot of a rule variable (raises if unbound) *)
  set_init : (unit -> row) -> unit;
      (** override the initial-row thunk (the tabled engine seeds call
          constants into head-variable slots) *)
}

val compile_rule :
  ?reorder:bool ->
  ?card:(int -> Syntax.atom -> int option) ->
  ?bound:string list ->
  source:(int -> Syntax.atom -> src_spec) ->
  neg_source:(Syntax.atom -> Dc_exec.Ir.source) ->
  label:string Lazy.t ->
  Syntax.rule ->
  compiled
(** Compile one rule body into a pipeline producing head tuples.

    [source i atom] chooses how positive atom [i] (program order, the
    semi-naive engine substitutes delta names this way) reads its tuples;
    [neg_source] resolves negated atoms.  [card i atom] is an optional
    cardinality hint for the join-order rewrite ([Some 0] marks the
    delta); [reorder:false] keeps program order (the tabled engine's
    sideways information passing depends on it).  [bound] lists variables
    pre-bound in the initial row (slots allocated first, in order).

    @raise Error ([Unsafe_rule]) if a negation or test can never be
    grounded. *)

(** {1 Shared delta-rule derivation}

    Semi-naive rounds, insert propagation, DRed over-deletion and the
    counting pass all evaluate the same syntactic object: rule variants
    where one positive occurrence of a "moving" predicate reads a delta
    while the others read full stores.  These helpers derive the variants
    once; engines specialize them through [names] and the runtime
    context. *)

val delta_positions : member:(string -> bool) -> Syntax.rule -> int list
(** Positions (among positive atoms, program order) whose predicate
    satisfies [member]. *)

val compile_variant :
  ?reorder:bool ->
  ?bound:string list ->
  ?delta_pos:int ->
  names:(int -> Syntax.atom -> string) ->
  label:string Lazy.t ->
  Syntax.rule ->
  compiled
(** Compile one variant: positive atom [i] reads the named source
    [names i atom]; negations read the plain predicate name.  [delta_pos]
    marks the delta occurrence with a zero-cardinality hint so the
    join-order rewrite scans it first. *)
