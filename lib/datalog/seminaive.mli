(** Semi-naive bottom-up evaluation with stratified negation: per round,
    one variant per rule and same-stratum IDB occurrence, that occurrence
    reading the previous round's delta.  New facts are applied at round
    end, keeping the stores (and their indexes) immutable within a round. *)

type stats = {
  mutable rounds : int;
  mutable derivations : int;
  mutable round_log : (int * float) list;
      (** (new tuples, wall ms) per round, latest first; only populated
          when metrics are enabled ({!Dc_obs.Obs.on}) *)
}

val fresh_stats : unit -> stats

val run :
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  ?domains:int ->
  ?aggs:(string * Dc_agg.Agg.spec) list ->
  Syntax.program ->
  Facts.t ->
  Facts.t
(** [guard] bounds the evaluation (rounds tick its round budget, emitted
    rows its row budget/deadline).  [trace] records each stratum's
    round-1 and delta pipelines with whole-fixpoint operator counters
    (EXPLAIN).  [domains] (default {!Dc_par.Par.domains}) > 1 shards
    each delta round across that many domains by tuple hash, each shard
    evaluated against frozen full-store indexes with results merged at
    the round barrier; deltas under {!Dc_par.Par.seq_cutoff} stay
    sequential.  [aggs] maps aggregated IDB predicates to their
    aggregate: rule emissions for such a predicate pass through a
    per-stratum group table keeping one accumulator per group
    (semi-naive with per-group bounds — a recursive MIN subsumes rather
    than accumulates); displaced results are withdrawn from the store at
    round end, and aggregated strata always evaluate sequentially.
    @raise Syntax.Unsafe_rule / Stratify.Not_stratifiable
    @raise Dc_guard.Guard.Exhausted when the guard trips *)

val query :
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  ?domains:int ->
  ?aggs:(string * Dc_agg.Agg.spec) list ->
  Syntax.program ->
  Facts.t ->
  string ->
  Facts.TS.t
