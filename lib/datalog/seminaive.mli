(** Semi-naive bottom-up evaluation with stratified negation: per round,
    one variant per rule and same-stratum IDB occurrence, that occurrence
    reading the previous round's delta.  New facts are applied at round
    end, keeping the stores (and their indexes) immutable within a round. *)

type stats = {
  mutable rounds : int;
  mutable derivations : int;
}

val fresh_stats : unit -> stats

val run :
  ?stats:stats -> ?trace:Dc_exec.Ir.trace -> Syntax.program -> Facts.t -> Facts.t
(** [trace] records each stratum's round-1 and delta pipelines with
    whole-fixpoint operator counters (EXPLAIN).
    @raise Syntax.Unsafe_rule / Stratify.Not_stratifiable *)

val query :
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  Syntax.program ->
  Facts.t ->
  string ->
  Facts.TS.t
