(* Semi-naive bottom-up evaluation with stratified negation.

   Within a stratum, each round evaluates one variant per rule and per
   positive occurrence of a same-stratum IDB predicate, with that occurrence
   reading the previous round's delta and all others the full store; rules
   without same-stratum IDB body atoms fire only in the first round.
   Negated atoms always read the completed lower strata (stratification
   guarantees they are stable).

   The variants are where the IR's delta-awareness pays off: each stratum
   compiles once to one round-1 pipeline and one delta pipeline per head
   predicate, the delta occurrence reading the named source "Δpred"; a
   round runs the same pipelines under a context that maps "pred" to the
   full store and "Δpred" to the delta — nothing is rebuilt between
   rounds, and the operator counters accumulate whole-fixpoint totals.
   The delta atom carries a zero-cardinality hint so the join-order
   rewrite scans it first and probes the (indexed) full stores.

   Each per-predicate pipeline is Diff(Union of the rule variants): the
   Diff drops already-known tuples per derivation — the interpreted
   engine's [Facts.mem] guard — and the per-round sink set dedups the
   survivors, so no Distinct operator is needed.  New facts are
   accumulated per round and applied at round end, so the stores the
   joins read stay immutable during a round (their lookup indexes survive
   the whole round). *)

open Syntax

module SS = Set.Make (String)
module TS = Facts.TS
module Ir = Dc_exec.Ir
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs

type stats = {
  mutable rounds : int;
  mutable derivations : int;
  mutable round_log : (int * float) list;
      (* (new tuples, wall ms) per round, latest first; only populated
         when metrics are enabled *)
}

let fresh_stats () = { rounds = 0; derivations = 0; round_log = [] }

let m_rounds = lazy (Obs.Counter.make ~labels:[ ("engine", "seminaive") ] "dc_datalog_rounds_total")
let m_round_ms = lazy (Obs.Histogram.make ~labels:[ ("engine", "seminaive") ] "dc_datalog_round_ms")
let m_round_delta = lazy (Obs.Histogram.make ~labels:[ ("engine", "seminaive") ] "dc_datalog_round_delta")

let observe_round stats ~delta ~t0 ~observing =
  if observing then begin
    let dt = Obs.now_ms () -. t0 in
    stats.round_log <- (delta, dt) :: stats.round_log;
    Obs.Counter.inc (Lazy.force m_rounds);
    Obs.Histogram.observe (Lazy.force m_round_ms) dt;
    Obs.Histogram.observe (Lazy.force m_round_delta) (float_of_int delta)
  end

let run ?(guard = Guard.none) ?stats ?trace (program : program) (edb : Facts.t) =
  check_safe program;
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let stratum = ref 0 in
  let eval_layer store layer =
    incr stratum;
    let layer_preds =
      List.fold_left (fun s r -> SS.add r.head.pred s) SS.empty layer
    in
    let compile ?card ~source r =
      (Engine.compile_rule ?card ~source
         ~neg_source:(fun a -> Ir.Named a.pred)
         ~label:(lazy (Fmt.str "%a" pp_rule r))
         r)
        .Engine.pipeline
    in
    let per_pred groups =
      List.map
        (fun (pred, bodies) ->
          let u = Ir.union ~label:(lazy pred) bodies in
          (pred, Ir.diff ~label:(lazy pred) ~except:(Ir.Named pred) u, u))
        groups
    in
    let round1 =
      per_pred
        (List.map
           (fun (pred, rules) ->
             ( pred,
               List.map
                 (compile ~source:(fun _ (a : atom) ->
                      Engine.Static (Ir.Named a.pred)))
                 rules ))
           (Engine.group_by_head layer))
    in
    let delta_variants r =
      List.map
        (fun dpos ->
          (Engine.compile_variant ~delta_pos:dpos
             ~names:(fun i (a : atom) ->
               if i = dpos then Engine.delta_name a.pred else a.pred)
             ~label:(lazy (Fmt.str "%a" pp_rule r))
             r)
            .Engine.pipeline)
        (Engine.delta_positions
           ~member:(fun p -> SS.mem p layer_preds)
           r)
    in
    let deltas =
      per_pred
        (List.filter_map
           (fun (pred, rules) ->
             match List.concat_map delta_variants rules with
             | [] -> None
             | bodies -> Some (pred, bodies))
           (Engine.group_by_head layer))
    in
    let run_round pipes ctx =
      List.map
        (fun (pred, pipe, u) ->
          let before = u.Ir.tc.Ir.rows in
          let fresh = ref TS.empty in
          Ir.run ~guard ctx pipe (fun t -> fresh := TS.add t !fresh);
          stats.derivations <- stats.derivations + u.Ir.tc.Ir.rows - before;
          (pred, !fresh))
        pipes
    in
    let apply news st =
      List.fold_left (fun st (pred, set) -> Facts.add_set st pred set) st news
    in
    let nonempty news = List.exists (fun (_, s) -> not (TS.is_empty s)) news in
    let new_count news =
      List.fold_left (fun n (_, s) -> n + TS.cardinal s) 0 news
    in
    let full = ref store in
    (* Round 1: all rules against the full store. *)
    Guard.round guard ~site:"datalog.round";
    stats.rounds <- stats.rounds + 1;
    let observing = Obs.on () in
    let t0 = if observing then Obs.now_ms () else 0. in
    let news = run_round round1 (Engine.store_ctx !full) in
    observe_round stats ~delta:(new_count news) ~t0 ~observing;
    let delta = ref (apply news (Facts.empty ())) in
    full := apply news !full;
    (* Subsequent rounds: delta variants only. *)
    let continue = ref (nonempty news) in
    while !continue do
      Guard.round guard ~site:"datalog.round";
      stats.rounds <- stats.rounds + 1;
      let observing = Obs.on () in
      let t0 = if observing then Obs.now_ms () else 0. in
      let news = run_round deltas (Engine.delta_ctx ~full:!full ~delta:!delta) in
      observe_round stats ~delta:(new_count news) ~t0 ~observing;
      delta := apply news (Facts.empty ());
      full := apply news !full;
      continue := nonempty news
    done;
    Option.iter
      (fun tr ->
        List.iter
          (fun (pred, pipe, _) ->
            Ir.Trace.record tr
              ~label:(Fmt.str "stratum %d: %s (round 1)" !stratum pred)
              pipe)
          round1;
        List.iter
          (fun (pred, pipe, _) ->
            Ir.Trace.record tr
              ~label:(Fmt.str "stratum %d: %s (delta rounds)" !stratum pred)
              pipe)
          deltas)
      trace;
    !full
  in
  List.fold_left eval_layer edb (Stratify.layers program)

let query ?guard ?stats ?trace program edb pred =
  Facts.find (run ?guard ?stats ?trace program edb) pred
