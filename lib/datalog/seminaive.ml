(* Semi-naive bottom-up evaluation with stratified negation.

   Within a stratum, each round evaluates one variant per rule and per
   positive occurrence of a same-stratum IDB predicate, with that occurrence
   reading the previous round's delta and all others the full store; rules
   without same-stratum IDB body atoms fire only in the first round.
   Negated atoms always read the completed lower strata (stratification
   guarantees they are stable).

   The variants are where the IR's delta-awareness pays off: each stratum
   compiles once to one round-1 pipeline and one delta pipeline per head
   predicate, the delta occurrence reading the named source "Δpred"; a
   round runs the same pipelines under a context that maps "pred" to the
   full store and "Δpred" to the delta — nothing is rebuilt between
   rounds, and the operator counters accumulate whole-fixpoint totals.
   The delta atom carries a zero-cardinality hint so the join-order
   rewrite scans it first and probes the (indexed) full stores.

   Each per-predicate pipeline is Diff(Union of the rule variants): the
   Diff drops already-known tuples per derivation — the interpreted
   engine's [Facts.mem] guard — and the per-round sink set dedups the
   survivors, so no Distinct operator is needed.  New facts are
   accumulated per round and applied at round end, so the stores the
   joins read stay immutable during a round (their lookup indexes survive
   the whole round). *)

open Syntax

module SS = Set.Make (String)
module TS = Facts.TS
module Ir = Dc_exec.Ir
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Par = Dc_par.Par

type stats = {
  mutable rounds : int;
  mutable derivations : int;
  mutable round_log : (int * float) list;
      (* (new tuples, wall ms) per round, latest first; only populated
         when metrics are enabled *)
}

let fresh_stats () = { rounds = 0; derivations = 0; round_log = [] }

let m_rounds = lazy (Obs.Counter.make ~labels:[ ("engine", "seminaive") ] "dc_datalog_rounds_total")
let m_round_ms = lazy (Obs.Histogram.make ~labels:[ ("engine", "seminaive") ] "dc_datalog_round_ms")
let m_round_delta = lazy (Obs.Histogram.make ~labels:[ ("engine", "seminaive") ] "dc_datalog_round_delta")

let observe_round stats ~delta ~t0 ~observing =
  if observing then begin
    let dt = Obs.now_ms () -. t0 in
    stats.round_log <- (delta, dt) :: stats.round_log;
    Obs.Counter.inc (Lazy.force m_rounds);
    Obs.Histogram.observe (Lazy.force m_round_ms) dt;
    Obs.Histogram.observe (Lazy.force m_round_delta) (float_of_int delta)
  end

(* Prefer a real failure over the secondary [Cancelled] trips the
   first-error hook induces in sibling shards. *)
let prefer_real = function
  | Guard.Exhausted (Guard.Cancelled, _) -> false
  | _ -> true

let run ?(guard = Guard.none) ?stats ?trace ?domains ?(aggs = [])
    (program : program) (edb : Facts.t) =
  check_safe program;
  let domains =
    match domains with Some d -> max 1 d | None -> Par.domains ()
  in
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let stratum = ref 0 in
  let eval_layer store layer =
    incr stratum;
    let layer_preds =
      List.fold_left (fun s r -> SS.add r.head.pred s) SS.empty layer
    in
    (* Aggregated head predicates of this layer share one mutable group
       table between the round-1 and delta pipelines: per-group bounds
       (MIN/MAX) and running COUNT/SUM accumulators persist across
       rounds, so a recursive MIN refines one bound per group instead of
       accumulating every derived cost.  Results the table displaces are
       drained at round end and withdrawn from the full store (they can
       have no same-stratum consumers besides other premappable
       aggregates, which tolerate the stale overestimate until the fresh
       bound displaces their own). *)
    let layer_aggs =
      List.filter (fun (p, _) -> SS.mem p layer_preds) aggs
    in
    let agg_tables = Hashtbl.create 4 in
    let table_for pred spec =
      match Hashtbl.find_opt agg_tables pred with
      | Some t -> t
      | None ->
        let t = Dc_agg.Agg.Group_table.create spec in
        TS.iter
          (fun r -> Dc_agg.Agg.Group_table.seed t r)
          (Facts.find store pred);
        Hashtbl.replace agg_tables pred t;
        t
    in
    let compile ?card ~source r =
      (Engine.compile_rule ?card ~source
         ~neg_source:(fun a -> Ir.Named a.pred)
         ~label:(lazy (Fmt.str "%a" pp_rule r))
         r)
        .Engine.pipeline
    in
    let per_pred groups =
      List.map
        (fun (pred, bodies) ->
          let u = Ir.union ~label:(lazy pred) bodies in
          let top =
            match List.assoc_opt pred layer_aggs with
            | Some spec ->
              Ir.group ~label:(lazy pred) ~table:(table_for pred spec) u
            | None -> Ir.diff ~label:(lazy pred) ~except:(Ir.Named pred) u
          in
          (pred, top, u))
        groups
    in
    let round1 =
      per_pred
        (List.map
           (fun (pred, rules) ->
             ( pred,
               List.map
                 (compile ~source:(fun _ (a : atom) ->
                      Engine.Static (Ir.Named a.pred)))
                 rules ))
           (Engine.group_by_head layer))
    in
    let delta_variants r =
      List.map
        (fun dpos ->
          (Engine.compile_variant ~delta_pos:dpos
             ~names:(fun i (a : atom) ->
               if i = dpos then Engine.delta_name a.pred else a.pred)
             ~label:(lazy (Fmt.str "%a" pp_rule r))
             r)
            .Engine.pipeline)
        (Engine.delta_positions
           ~member:(fun p -> SS.mem p layer_preds)
           r)
    in
    let deltas =
      per_pred
        (List.filter_map
           (fun (pred, rules) ->
             match List.concat_map delta_variants rules with
             | [] -> None
             | bodies -> Some (pred, bodies))
           (Engine.group_by_head layer))
    in
    (* One evaluation of a pipeline list under [ctx]: (pred, fresh
       tuples, derivation count) per head predicate.  Pure with respect
       to [stats] so worker domains can run their private pipeline
       copies through it — the caller folds the returned counts in. *)
    let run_pipes pipes ctx =
      List.map
        (fun (pred, pipe, u) ->
          let before = u.Ir.tc.Ir.rows in
          let fresh = ref TS.empty in
          Ir.run ~guard ctx pipe (fun t -> fresh := TS.add t !fresh);
          (pred, !fresh, u.Ir.tc.Ir.rows - before))
        pipes
    in
    (* Settle a round's results: fold derivation counts, and for
       aggregated predicates drain the tuples the group table displaced
       this round — [fresh \ displaced] becomes the delta, and the
       displaced set is withdrawn from the stores. *)
    let collect_round results =
      List.map
        (fun (pred, fresh, derived) ->
          stats.derivations <- stats.derivations + derived;
          match Hashtbl.find_opt agg_tables pred with
          | None -> (pred, fresh, TS.empty)
          | Some tbl ->
            let displaced =
              List.fold_left
                (fun s t -> TS.add t s)
                TS.empty
                (Dc_agg.Agg.Group_table.drain_displaced tbl)
            in
            (pred, TS.diff fresh displaced, displaced))
        results
    in
    (* Parallel-round machinery, built lazily: a sequential run (P = 1,
       or deltas forever under the cutoff) never compiles the worker
       pipeline copies.  Copy 0 is the canonical [deltas] list (the one
       the trace records); copies 1..P-1 are shape-identical private
       trees so per-operator counters never race, folded back into the
       canonical tree at stratum end. *)
    let worker_deltas =
      lazy
        (Array.init (domains - 1) (fun _ ->
             per_pred
               (List.filter_map
                  (fun (pred, rules) ->
                    match List.concat_map delta_variants rules with
                    | [] -> None
                    | bodies -> Some (pred, bodies))
                  (Engine.group_by_head layer))))
    in
    let keyed_paths =
      lazy
        (List.sort_uniq compare
           (List.concat_map
              (fun (_, pipe, _) -> Ir.keyed_sources pipe)
              deltas))
    in
    let parallel_round ~full ~delta =
      let shards = Facts.partition ~shards:domains delta in
      (* Freeze protocol: build every keyed access path the pipelines
         will probe *now*, on this domain — the shared full-store
         indexes and each private delta shard's.  Workers then only read
         index tables; the lazy build inside [Facts.lookup] never fires
         off the main domain. *)
      List.iter
        (fun (name, positions) ->
          match Engine.split_delta name with
          | Some pred ->
            Array.iter (fun s -> Facts.prewarm s pred positions) shards
          | None -> Facts.prewarm full name positions)
        (Lazy.force keyed_paths);
      let workers = Lazy.force worker_deltas in
      let results =
        Par.map ~shards:domains
          ~on_first_error:(fun _ -> Guard.cancel guard)
          ~prefer:prefer_real
          (fun i ->
            let pipes = if i = 0 then deltas else workers.(i - 1) in
            run_pipes pipes (Engine.delta_ctx ~full ~delta:shards.(i)))
      in
      let t_merge = Obs.now_ms () in
      let merged =
        List.mapi
          (fun k (pred, _, _) ->
            let fresh, derived =
              Array.fold_left
                (fun (acc, n) res ->
                  let _, s, d = List.nth res k in
                  (TS.union acc s, n + d))
                (TS.empty, 0) results
            in
            stats.derivations <- stats.derivations + derived;
            (* parallel rounds are gated off for aggregated strata, so
               there is never a displaced set to withdraw here *)
            (pred, fresh, TS.empty))
          deltas
      in
      if Obs.on () then
        Par.observe_round
          ~shard_sizes:(Array.map Facts.total shards)
          ~merge_ms:(Obs.now_ms () -. t_merge);
      merged
    in
    let apply news st =
      List.fold_left
        (fun st (pred, fresh, displaced) ->
          let st =
            if TS.is_empty displaced then st
            else Facts.remove_set st pred displaced
          in
          Facts.add_set st pred fresh)
        st news
    in
    let nonempty news =
      List.exists (fun (_, s, _) -> not (TS.is_empty s)) news
    in
    let new_count news =
      List.fold_left (fun n (_, s, _) -> n + TS.cardinal s) 0 news
    in
    let full = ref store in
    (* Round 1: all rules against the full store. *)
    Guard.round guard ~site:"datalog.round";
    stats.rounds <- stats.rounds + 1;
    let observing = Obs.on () in
    let t0 = if observing then Obs.now_ms () else 0. in
    let news = collect_round (run_pipes round1 (Engine.store_ctx !full)) in
    observe_round stats ~delta:(new_count news) ~t0 ~observing;
    let delta = ref (apply news (Facts.empty ())) in
    full := apply news !full;
    (* Subsequent rounds: delta variants only.  A round goes parallel
       when a degree is configured, the delta is big enough to amortize
       the partition/merge barrier, and the per-row profiler is off (its
       clock state is global). *)
    let continue = ref (nonempty news) in
    while !continue do
      Guard.round guard ~site:"datalog.round";
      stats.rounds <- stats.rounds + 1;
      let observing = Obs.on () in
      let t0 = if observing then Obs.now_ms () else 0. in
      let news =
        if
          domains > 1
          && layer_aggs = []
             (* group tables are mutable and shared across pipelines:
                aggregated strata stay sequential *)
          && (not !Ir.profiling)
          && Domain.is_main_domain ()
          && Facts.total !delta >= Par.seq_cutoff ()
        then parallel_round ~full:!full ~delta:!delta
        else
          collect_round
            (run_pipes deltas (Engine.delta_ctx ~full:!full ~delta:!delta))
      in
      observe_round stats ~delta:(new_count news) ~t0 ~observing;
      delta := apply news (Facts.empty ());
      full := apply news !full;
      continue := nonempty news
    done;
    (* Fold worker pipeline copies' counters into the canonical trees so
       EXPLAIN and the conservation tests see whole-fixpoint totals. *)
    if Lazy.is_val worker_deltas then
      Array.iter
        (fun copy ->
          List.iter2
            (fun (_, into, _) (_, fresh, _) ->
              ignore (Ir.merge_counters ~into fresh))
            deltas copy)
        (Lazy.force worker_deltas);
    Option.iter
      (fun tr ->
        List.iter
          (fun (pred, pipe, _) ->
            Ir.Trace.record tr
              ~label:(Fmt.str "stratum %d: %s (round 1)" !stratum pred)
              pipe)
          round1;
        List.iter
          (fun (pred, pipe, _) ->
            Ir.Trace.record tr
              ~label:(Fmt.str "stratum %d: %s (delta rounds)" !stratum pred)
              pipe)
          deltas)
      trace;
    !full
  in
  List.fold_left eval_layer edb (Stratify.layers ~aggs program)

let query ?guard ?stats ?trace ?domains ?aggs program edb pred =
  Facts.find (run ?guard ?stats ?trace ?domains ?aggs program edb) pred
