(* Semi-naive bottom-up evaluation with stratified negation.

   Within a stratum, each round evaluates one variant per rule and per
   positive occurrence of a same-stratum IDB predicate, with that occurrence
   reading the previous round's delta and all others the full store; rules
   without same-stratum IDB body atoms fire only in the first round.
   Negated atoms always read the completed lower strata (stratification
   guarantees they are stable).

   New facts are accumulated per round and applied at round end, so the
   stores the joins read stay immutable during a round (their lookup
   indexes survive the whole round). *)

open Syntax

module SS = Set.Make (String)
module TS = Facts.TS

type stats = {
  mutable rounds : int;
  mutable derivations : int;
}

let fresh_stats () = { rounds = 0; derivations = 0 }

(* Per-round accumulator of new facts. *)
module Acc = struct
  type t = (string, TS.t ref) Hashtbl.t

  let create () : t = Hashtbl.create 8

  (* Insert, reporting whether the fact is new to the accumulator — the
     [Set.add] physical-equality shortcut doubles as the membership test,
     saving a separate [mem] descent per derivation. *)
  let add (acc : t) pred tuple =
    match Hashtbl.find_opt acc pred with
    | Some set ->
      let s' = TS.add tuple !set in
      if s' == !set then false
      else begin
        set := s';
        true
      end
    | None ->
      Hashtbl.replace acc pred (ref (TS.singleton tuple));
      true

  let is_empty (acc : t) =
    Hashtbl.fold (fun _ s e -> e && TS.is_empty !s) acc true

  let apply (acc : t) store =
    Hashtbl.fold (fun pred set st -> Facts.add_set st pred !set) acc store

  let to_store (acc : t) =
    Hashtbl.fold
      (fun pred set st -> Facts.add_set st pred !set)
      acc (Facts.empty ())
end

let run ?stats (program : program) (edb : Facts.t) =
  check_safe program;
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let eval_layer store layer =
    let layer_preds =
      List.fold_left (fun s r -> SS.add r.head.pred s) SS.empty layer
    in
    (* positions (among positive atoms) of same-stratum IDB occurrences,
       precomputed per rule *)
    let recursive_positions rule =
      List.filter_map Fun.id
        (List.mapi
           (fun i (a : atom) -> if SS.mem a.pred layer_preds then Some i else None)
           (List.filter_map
              (function
                | Pos a -> Some a
                | Neg _ | Test _ -> None)
              rule.body))
    in
    let with_positions = List.map (fun r -> (r, recursive_positions r)) layer in
    let full = ref store in
    let delta = ref (Facts.empty ()) in
    (* Round 1: all rules against the full store. *)
    stats.rounds <- stats.rounds + 1;
    let acc = Acc.create () in
    Engine.eval_program_round ~store:!full ~neg_store:!full layer
      (fun rule tuple ->
        stats.derivations <- stats.derivations + 1;
        if not (Facts.mem !full rule.head.pred tuple) then
          ignore (Acc.add acc rule.head.pred tuple));
    delta := Acc.to_store acc;
    full := Acc.apply acc !full;
    (* Subsequent rounds: delta variants only. *)
    let continue = ref (not (Acc.is_empty acc)) in
    while !continue do
      stats.rounds <- stats.rounds + 1;
      let acc = Acc.create () in
      let full_now = !full and delta_now = !delta in
      List.iter
        (fun (rule, positions) ->
          List.iter
            (fun dpos ->
              Engine.eval_rule
                ~store_for:(fun i _ -> if i = dpos then delta_now else full_now)
                ~neg_store:full_now rule
                (fun tuple ->
                  stats.derivations <- stats.derivations + 1;
                  if not (Facts.mem full_now rule.head.pred tuple) then
                    ignore (Acc.add acc rule.head.pred tuple)))
            positions)
        with_positions;
      delta := Acc.to_store acc;
      full := Acc.apply acc !full;
      continue := not (Acc.is_empty acc)
    done;
    !full
  in
  List.fold_left eval_layer edb (Stratify.layers program)

let query ?stats program edb pred =
  Facts.find (run ?stats program edb) pred
