(* Translations between constructor systems and Horn-clause programs,
   realizing the §3.4 lemma ("the constructor mechanism is as powerful as
   function-free PROLOG without cut, fail, and negation") in both
   directions:

   - [of_application]: a constructor application over named relations
     becomes a Datalog program, one IDB predicate per reachable
     (constructor, base, arguments) instance, one rule per branch;
   - [to_constructors]: a positive safe Datalog program becomes a system of
     mutually recursive constructors, one per IDB predicate, each grown
     from an empty base relation (the paper's remark at the end of §3.1:
     "the programmer may prefer to start with an empty relation ... if the
     constructor is based on a join of several base relations").

   The equivalence is exercised by property tests (experiment E6): both
   engines must compute the same relations on shared workloads. *)

open Dc_relation
open Dc_calculus
open Syntax

exception Unsupported of string

let unsupported fmt = Fmt.kstr (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Constructor application -> Datalog *)

type context = {
  lookup_constructor : string -> Defs.constructor_def option;
  schema_of : string -> Schema.t option; (* global (EDB) relations *)
}

(* An instance closes a constructor over actual names/values. *)
type instance = {
  inst_con : string;
  inst_base : string; (* global relation name *)
  inst_args : inst_arg list;
}

and inst_arg =
  | IA_rel of string
  | IA_scalar of Value.t

let instance_pred inst =
  let arg_str = function
    | IA_rel n -> n
    | IA_scalar v -> String.map (function '"' -> '_' | c -> c) (Value.to_string v)
  in
  String.concat "__"
    (inst.inst_con :: inst.inst_base :: List.map arg_str inst.inst_args)

(* Union-find over variable names, for Eq-conjunct unification. *)
module Uf = struct
  let find parent v =
    let rec loop v =
      match Hashtbl.find_opt parent v with
      | Some p when p <> v -> loop p
      | _ -> v
    in
    loop v

  let union parent a b =
    let ra = find parent a and rb = find parent b in
    if ra <> rb then Hashtbl.replace parent ra rb
end

let rec translate_instance ctx ~emit_rule ~emit_agg ~seen inst =
  if Hashtbl.mem seen inst then ()
  else begin
    Hashtbl.replace seen inst ();
    let def =
      match ctx.lookup_constructor inst.inst_con with
      | Some d -> d
      | None -> unsupported "unknown constructor %s" inst.inst_con
    in
    (match def.con_agg with
    | Some spec -> emit_agg (instance_pred inst, spec)
    | None -> ());
    (* name environment: formal -> actual global name; params -> args *)
    let rel_env =
      (def.con_formal, inst.inst_base)
      :: List.filter_map
           (fun (p, a) ->
             match p, a with
             | Defs.Rel_param (n, _), IA_rel actual -> Some (n, actual)
             | Defs.Rel_param _, IA_scalar _ -> None
             | Defs.Scalar_param _, _ -> None)
           (List.combine def.con_params inst.inst_args)
    in
    let scalar_env =
      List.filter_map
        (fun (p, a) ->
          match p, a with
          | Defs.Scalar_param (n, _), IA_scalar v -> Some (n, v)
          | _ -> None)
        (List.combine def.con_params inst.inst_args)
    in
    let resolve_rel n =
      match List.assoc_opt n rel_env with
      | Some actual -> actual
      | None -> n (* global *)
    in
    let schema_of_binder = function
      | Ast.Rel n -> (
        let actual = resolve_rel n in
        match ctx.schema_of actual with
        | Some s -> s
        | None ->
          (* formal / param schemas *)
          if n = def.con_formal then def.con_formal_schema
          else
            (match
               List.find_opt
                 (function
                   | Defs.Rel_param (pn, _) -> pn = n
                   | Defs.Scalar_param _ -> false)
                 def.con_params
             with
            | Some (Defs.Rel_param (_, s)) -> s
            | _ -> unsupported "unknown relation %s" n))
      | Ast.Construct (_, c, _) -> (
        match ctx.lookup_constructor c with
        | Some d -> d.con_result
        | None -> unsupported "unknown constructor %s" c)
      | r -> unsupported "untranslatable range %a" Ast.pp_range r
    in
    (* resolve a binder range to a predicate name (registering recursive
       instances) *)
    let pred_of_range = function
      | Ast.Rel n -> resolve_rel n
      | Ast.Construct (Ast.Rel b, c, args) ->
        let inst' =
          {
            inst_con = c;
            inst_base = resolve_rel b;
            inst_args =
              List.map
                (function
                  | Ast.Arg_range (Ast.Rel n) -> IA_rel (resolve_rel n)
                  | Ast.Arg_scalar (Ast.Const v) -> IA_scalar v
                  | Ast.Arg_scalar (Ast.Param p) ->
                    IA_scalar (List.assoc p scalar_env)
                  | a -> unsupported "untranslatable argument %a" Ast.pp_arg a)
                args;
          }
        in
        translate_instance ctx ~emit_rule ~emit_agg ~seen inst';
        instance_pred inst'
      | r -> unsupported "untranslatable range %a" Ast.pp_range r
    in
    let head_pred = instance_pred inst in
    List.iter
      (fun (b : Ast.branch) ->
        (* variables: one per (binder, position) *)
        let var_name v i = Fmt.str "%s_%d" (String.capitalize_ascii v) i in
        let parent = Hashtbl.create 16 in
        let schemas =
          List.map (fun (v, r) -> (v, schema_of_binder r)) b.binders
        in
        let field_var v a =
          let schema =
            match List.assoc_opt v schemas with
            | Some s -> s
            | None -> unsupported "unbound variable %s" v
          in
          var_name v (Schema.attr_index schema a)
        in
        (* process conjuncts: Eq between fields unifies; Eq with constants
           binds; other comparisons become Test literals; negated
           memberships become Neg atoms (the stratified closed-world
           reading — the engines reject recursion through them) *)
        let const_bind = Hashtbl.create 8 in
        let tests = ref [] in
        let negs = ref [] in
        let rec term_of = function
          | Ast.Const v -> Const v
          | Ast.Param p -> Const (List.assoc p scalar_env)
          | Ast.Field (v, a) -> Var (field_var v a)
          | Ast.Binop (op, a, b) -> Binop (op, term_of a, term_of b)
        in
        List.iter
          (fun conj ->
            match conj with
            | Ast.True -> ()
            | Ast.Cmp (Ast.Eq, Ast.Field (v1, a1), Ast.Field (v2, a2)) ->
              Uf.union parent (field_var v1 a1) (field_var v2 a2)
            | Ast.Cmp (Ast.Eq, Ast.Field (v, a), t)
            | Ast.Cmp (Ast.Eq, t, Ast.Field (v, a)) -> (
              match term_of t with
              | Const c -> Hashtbl.replace const_bind (field_var v a) c
              | (Var _ | Binop _) as tv ->
                tests := Test (Ast.Eq, Var (field_var v a), tv) :: !tests)
            | Ast.Cmp (op, t1, t2) ->
              tests := Test (op, term_of t1, term_of t2) :: !tests
            | Ast.Not (Ast.Member (ts, r)) ->
              negs := (List.map term_of ts, r) :: !negs
            | Ast.Not (Ast.In_rel (v, r)) ->
              let schema =
                match List.assoc_opt v schemas with
                | Some s -> s
                | None -> unsupported "unbound variable %s" v
              in
              let ts =
                List.init (Schema.arity schema) (fun i ->
                    Var (var_name v i))
              in
              negs := (ts, r) :: !negs
            | f -> unsupported "untranslatable conjunct %a" Ast.pp_formula f)
          (Ast.conjuncts b.where);
        let resolve_var name =
          let root = Uf.find parent name in
          match Hashtbl.find_opt const_bind root with
          | Some c -> Const c
          | None -> (
            (* a variable unified with a constant through another member *)
            match
              Hashtbl.fold
                (fun v c acc ->
                  if acc = None && Uf.find parent v = root then Some c else acc)
                const_bind None
            with
            | Some c -> Const c
            | None -> Var root)
        in
        let body_atoms =
          List.map
            (fun (v, r) ->
              let pred = pred_of_range r in
              let schema = List.assoc v schemas in
              Pos
                {
                  pred;
                  args =
                    List.init (Schema.arity schema) (fun i ->
                        resolve_var (var_name v i));
                })
            b.binders
        in
        let rec resolve_term = function
          | Var v -> resolve_var v
          | Const _ as c -> c
          | Binop (op, a, b) -> Binop (op, resolve_term a, resolve_term b)
        in
        let resolve_test = function
          | Test (op, a, b) -> Test (op, resolve_term a, resolve_term b)
          | l -> l
        in
        let neg_literals =
          List.rev_map
            (fun (ts, r) ->
              Neg { pred = pred_of_range r; args = List.map resolve_term ts })
            !negs
        in
        let head_args =
          match b.target with
          | [] -> (
            match b.binders with
            | [ (v, r) ] ->
              let schema = schema_of_binder r in
              List.init (Schema.arity schema) (fun i ->
                  resolve_var (var_name v i))
            | _ -> unsupported "identity branch with several binders")
          | ts -> List.map (fun t -> resolve_term (term_of t)) ts
        in
        emit_rule
          {
            head = { pred = head_pred; args = head_args };
            body = body_atoms @ List.rev_map resolve_test !tests @ neg_literals;
          })
      def.con_body
  end

(* Translate the application  Base{c(args)}  (all names global).  Returns
   the program, the query predicate name, and the aggregate spec of every
   aggregated instance (the [?aggs] argument for [Seminaive.run] /
   [Stratify]). *)
let of_application_full ctx (range : Ast.range) =
  match range with
  | Ast.Construct (Ast.Rel base, c, args) ->
    let inst =
      {
        inst_con = c;
        inst_base = base;
        inst_args =
          List.map
            (function
              | Ast.Arg_range (Ast.Rel n) -> IA_rel n
              | Ast.Arg_scalar (Ast.Const v) -> IA_scalar v
              | a -> unsupported "untranslatable argument %a" Ast.pp_arg a)
            args;
      }
    in
    let rules = ref [] in
    let aggs = ref [] in
    let seen = Hashtbl.create 8 in
    translate_instance ctx
      ~emit_rule:(fun r -> rules := r :: !rules)
      ~emit_agg:(fun pa -> aggs := pa :: !aggs)
      ~seen inst;
    (List.rev !rules, instance_pred inst, List.rev !aggs)
  | r -> unsupported "not a constructor application: %a" Ast.pp_range r

(* Aggregate-free legacy entry point: engines other than the aggregate-
   aware semi-naive path must not silently evaluate aggregated systems as
   plain Horn clauses. *)
let of_application ctx range =
  match of_application_full ctx range with
  | program, pred, [] -> (program, pred)
  | _ ->
    unsupported
      "aggregated constructor system: only the aggregate-aware semi-naive \
       path evaluates it"

(* ------------------------------------------------------------------ *)
(* Datalog -> constructors *)

(* [to_constructors schema_of program] builds one constructor per IDB
   predicate.  Each constructor's formal base is an empty relation named
   ["__bottom_<pred>"]; EDB predicates are referenced as global relations.
   Returns the definitions plus the (name, schema) list of bottom relations
   the caller must declare (empty). *)
let to_constructors (schema_of : string -> Schema.t) (program : program) =
  check_safe program;
  let idb = idb_preds program in
  let bottom p = "__bottom_" ^ p in
  let range_of_pred p =
    if SS.mem p idb then
      Ast.Construct (Ast.Rel (bottom p), p, [])
    else Ast.Rel p
  in
  let branch_of_rule (r : rule) =
    if r.body = [] then
      unsupported
        "ground fact rule %a: facts belong in the EDB, not the program"
        pp_rule r;
    (* binder per positive atom; var bindings collected left to right *)
    let positives =
      List.filter_map
        (function
          | Pos a -> Some a
          | Neg _ -> unsupported "negation not supported in to_constructors"
          | Test _ -> None)
        r.body
    in
    let tests =
      List.filter_map
        (function
          | Test (op, a, b) -> Some (op, a, b)
          | Pos _ -> None
          | Neg _ -> None)
        r.body
    in
    let binders =
      List.mapi (fun i a -> (Fmt.str "b%d" i, a)) positives
    in
    (* first binding of each variable: var -> Ast term *)
    let binding = Hashtbl.create 16 in
    let constraints = ref [] in
    List.iter
      (fun (bv, (a : atom)) ->
        let schema = schema_of a.pred in
        List.iteri
          (fun i arg ->
            let here = Ast.Field (bv, Schema.attr_name schema i) in
            match arg with
            | Const c -> constraints := Ast.eq here (Ast.Const c) :: !constraints
            | Binop _ ->
              unsupported "computed term in body atom argument of %a" pp_atom a
            | Var v -> (
              match Hashtbl.find_opt binding v with
              | None -> Hashtbl.replace binding v here
              | Some t -> constraints := Ast.eq here t :: !constraints))
          a.args)
      binders;
    let rec term_of = function
      | Const c -> Ast.Const c
      | Binop (op, a, b) -> Ast.Binop (op, term_of a, term_of b)
      | Var v -> (
        match Hashtbl.find_opt binding v with
        | Some t -> t
        | None -> unsupported "unsafe rule: unbound variable %s" v)
    in
    List.iter
      (fun (op, a, b) ->
        constraints := Ast.Cmp (op, term_of a, term_of b) :: !constraints)
      tests;
    {
      Ast.binders =
        List.map (fun (bv, (a : atom)) -> (bv, range_of_pred a.pred)) binders;
      target = List.map term_of r.head.args;
      where = Ast.conj_list (List.rev !constraints);
    }
  in
  let defs =
    List.map
      (fun p ->
        let schema = schema_of p in
        let branches =
          List.filter_map
            (fun r ->
              if String.equal r.head.pred p then Some (branch_of_rule r)
              else None)
            program
        in
        {
          Defs.con_name = p;
          con_formal = "__Bottom";
          con_formal_schema = schema;
          con_params = [];
          con_result = schema;
          con_agg = None;
          con_body = branches;
        })
      (SS.elements idb)
  in
  let bottoms = List.map (fun p -> (bottom p, schema_of p)) (SS.elements idb) in
  (defs, bottoms)
