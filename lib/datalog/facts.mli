(** Fact store for the bottom-up Datalog engines: predicate name → set of
    ground tuples, with lazily built hash indexes per (predicate, bound
    positions).  Values are persistent; indexes are maintained
    delta-incrementally along the linear chain of stores an engine
    produces ([add]/[add_set] push just the new tuples into existing
    indexes), and older snapshots transparently rebuild private indexes
    on demand. *)

open Dc_relation

module TS : Set.S with type elt = Tuple.t

type t

val empty : unit -> t
val find : t -> string -> TS.t
val cardinal : t -> string -> int
val total : t -> int
val mem : t -> string -> Tuple.t -> bool

val add : t -> string -> Tuple.t -> t
val add_set : t -> string -> TS.t -> t

val remove : t -> string -> Tuple.t -> t
(** Persistent deletion.  On the cache-owning store the departed tuple is
    also dropped from every cached index of the predicate (the deletion
    mirror of delta-incremental [add]); older snapshots rebuild private
    indexes on demand as usual.  No-op when the tuple is absent. *)

val remove_set : t -> string -> TS.t -> t
val singleton_set : string -> TS.t -> t
val of_list : (string * Tuple.t) list -> t

val preds : t -> string list
val iter : (string -> Tuple.t -> unit) -> t -> unit
val equal : t -> t -> bool

val lookup : t -> string -> int list -> Tuple.t -> Tuple.t list
(** [lookup store pred positions key]: tuples of [pred] whose projection
    onto [positions] equals [key] (indexed; [positions = []] returns all). *)

val prewarm : t -> string -> int list -> unit
(** Build the (pred, positions) index now, on the calling domain.
    Parallel rounds prewarm every keyed access path of a shared store
    before fanning out, so concurrent {!lookup}s from worker domains are
    pure reads. *)

val partition_set : shards:int -> TS.t -> TS.t array
(** Hash-partition a tuple set into [shards] disjoint covering subsets by
    the cached structural tuple hash; deterministic for a fixed shard
    count.  [shards <= 1] returns the set unsplit. *)

val partition : shards:int -> t -> t array
(** Partition every predicate of a store with {!partition_set}; each
    shard is a private store with a private index cache. *)

val freeze : t -> t
(** An immutable published view of the store (O(1): the tuple map is
    persistent).  A frozen store may be read from several threads at
    once: it never installs an index cache and never touches the live
    ownership chain it was frozen from. *)

val is_frozen : t -> bool

val to_relation : Schema.t -> t -> string -> Relation.t
val of_relation : string -> Relation.t -> t -> t

val pp : t Fmt.t
