(* Fact store for the bottom-up Datalog engines: a map from predicate name
   to a set of ground tuples, with hash indexes per (predicate, bound
   positions).

   Runtime kernel: indexes are maintained delta-incrementally instead of
   being dropped on every insertion.  The tuple map is persistent, but a
   mutable index cache is threaded along the linear chain of stores the
   engines actually produce (each round's [add_set] yields the next
   store).  A global version counter identifies which store in the chain
   currently "owns" the cache:

   - [add]/[add_set] on the owning store push just the new tuples into
     every cached index of that predicate and hand ownership to the child
     store, so semi-naive rounds extend indexes by their deltas;
   - a store that lost ownership (an older snapshot that was branched
     from) transparently falls back to rebuilding into a private cache on
     its next lookup, so sharing is an optimization, never a correctness
     concern. *)

open Dc_relation

module TS = Set.Make (Tuple)
module SM = Map.Make (String)

type cache = {
  mutable owner : int; (* version of the store allowed to use/extend this *)
  tables : (string * int list, Index.t) Hashtbl.t;
}

type t = {
  tuples : TS.t SM.t;
  version : int;
  mutable cache : cache;
  frozen : bool;
      (* a frozen store may be read by several threads at once: index
         lookups build private throwaway indexes instead of installing a
         cache that concurrent readers would then mutate together *)
}

(* Atomic: snapshot readers freeze stores and writer threads advance the
   live chain concurrently, and versions must stay globally unique. *)
let version_counter = Atomic.make 0

let new_version () = Atomic.fetch_and_add version_counter 1 + 1

let fresh_cache version = { owner = version; tables = Hashtbl.create 16 }

let empty () =
  let version = new_version () in
  { tuples = SM.empty; version; cache = fresh_cache version; frozen = false }

let find store pred =
  Option.value (SM.find_opt pred store.tuples) ~default:TS.empty

let cardinal store pred = TS.cardinal (find store pred)

let total store = SM.fold (fun _ s n -> n + TS.cardinal s) store.tuples 0

let mem store pred tuple = TS.mem tuple (find store pred)

(* Push new tuples of [pred] into every cached index of that predicate. *)
let extend_cached cache pred fresh =
  Hashtbl.iter
    (fun (p, _) idx -> if String.equal p pred then TS.iter (Index.add idx) fresh)
    cache.tables

(* Drop departed tuples of [pred] from every cached index of that
   predicate — the deletion mirror of [extend_cached].  [Index.remove]
   undoes one insertion, which matches: the add path only ever pushes a
   genuinely-new tuple once. *)
let shrink_cached cache pred gone =
  Hashtbl.iter
    (fun (p, _) idx ->
      if String.equal p pred then TS.iter (Index.remove idx) gone)
    cache.tables

let owns store = store.cache.owner = store.version

let add store pred tuple =
  let set = find store pred in
  if TS.mem tuple set then store
  else
    let version = new_version () in
    let tuples = SM.add pred (TS.add tuple set) store.tuples in
    if owns store then begin
      let cache = store.cache in
      extend_cached cache pred (TS.singleton tuple);
      cache.owner <- version;
      { tuples; version; cache; frozen = false }
    end
    else { tuples; version; cache = fresh_cache version; frozen = false }

let add_set store pred set =
  if TS.is_empty set then store
  else
    let old = find store pred in
    let version = new_version () in
    let tuples = SM.add pred (TS.union set old) store.tuples in
    if owns store then begin
      let cache = store.cache in
      (* Only the genuinely new tuples may enter the indexes: buckets hold
         lists, so re-adding a known tuple would duplicate lookup rows. *)
      extend_cached cache pred (TS.diff set old);
      cache.owner <- version;
      { tuples; version; cache; frozen = false }
    end
    else { tuples; version; cache = fresh_cache version; frozen = false }

let remove_set store pred set =
  let old = find store pred in
  let gone = TS.inter set old in
  if TS.is_empty gone then store
  else
    let version = new_version () in
    let remaining = TS.diff old gone in
    let tuples =
      if TS.is_empty remaining then SM.remove pred store.tuples
      else SM.add pred remaining store.tuples
    in
    if owns store then begin
      let cache = store.cache in
      shrink_cached cache pred gone;
      cache.owner <- version;
      { tuples; version; cache; frozen = false }
    end
    else { tuples; version; cache = fresh_cache version; frozen = false }

let remove store pred tuple = remove_set store pred (TS.singleton tuple)

let singleton_set pred set = add_set (empty ()) pred set

let of_list l =
  List.fold_left (fun st (pred, tuple) -> add st pred tuple) (empty ()) l

let preds store = List.map fst (SM.bindings store.tuples)

let iter f store = SM.iter (fun pred set -> TS.iter (f pred) set) store.tuples

let equal a b = SM.equal TS.equal a.tuples b.tuples

(* Tuples of [pred] whose projection onto [positions] equals [key].
   [positions = []] degenerates to one bucket under the empty key image,
   i.e. the full extent — cached like any other access path instead of
   re-materializing [TS.elements] per call. *)
let build_index store pred positions =
  let set = find store pred in
  let idx = Index.create ~size:(max 16 (TS.cardinal set)) positions in
  TS.iter (Index.add idx) set;
  idx

let ensure_index store pred positions =
  if store.frozen then
    (* never install a cache on a frozen store: concurrent readers would
       share (and race on) the same hashtable.  Rare path — frozen-view
       serving goes through [to_relation], not keyed lookups. *)
    build_index store pred positions
  else
    let cache =
      if owns store then store.cache
      else begin
        (* this snapshot was branched away from the cache's owning chain;
           rebuild into a private cache so stale readers stay correct *)
        let c = fresh_cache store.version in
        store.cache <- c;
        c
      end
    in
    let cache_key = (pred, positions) in
    match Hashtbl.find_opt cache.tables cache_key with
    | Some idx -> idx
    | None ->
      let idx = build_index store pred positions in
      Hashtbl.replace cache.tables cache_key idx;
      idx

let lookup store pred positions key =
  Index.lookup (ensure_index store pred positions) key

(* Parallel-round support: build the (pred, positions) index now, on the
   calling domain.  A round driver prewarms every keyed access path its
   pipelines will probe before fanning out, after which concurrent
   [lookup]s from worker domains only *read* the cache table and the
   index — [lookup]'s lazy build and cache reassignment never fire off
   the main domain. *)
let prewarm store pred positions = ignore (ensure_index store pred positions)

(* Hash-partition one tuple set into [shards] disjoint covering subsets
   keyed on the cached structural tuple hash.  Deterministic for a fixed
   shard count: the hash depends only on the tuple's values. *)
let partition_set ~shards set =
  if shards <= 1 then [| set |]
  else begin
    let out = Array.make shards TS.empty in
    TS.iter
      (fun t ->
        let i = Tuple.hash t mod shards in
        out.(i) <- TS.add t out.(i))
      set;
    out
  end

(* Partition a whole store predicate-wise with [partition_set].  Each
   shard is a private store with a private (empty) index cache, so lazy
   index builds over shard-local deltas stay single-domain. *)
let partition ~shards store =
  if shards <= 1 then [| store |]
  else begin
    let out = Array.init shards (fun _ -> ref SM.empty) in
    SM.iter
      (fun pred set ->
        Array.iteri
          (fun i s -> if not (TS.is_empty s) then out.(i) := SM.add pred s !(out.(i)))
          (partition_set ~shards set))
      store.tuples;
    Array.map
      (fun m ->
        let version = new_version () in
        { tuples = !m; version; cache = fresh_cache version; frozen = false })
      out
  end

(* Publish an immutable view of the store for snapshot readers.  The
   tuple map is persistent, so this is O(1); the frozen store never
   installs an index cache (see [ensure_index]), so concurrent readers
   share only immutable structure and never touch the writer's live
   ownership chain. *)
let freeze store =
  { tuples = store.tuples;
    version = new_version ();
    cache = { owner = 0; tables = Hashtbl.create 1 };
    frozen = true }

let is_frozen store = store.frozen

(* Conversions to/from {!Dc_relation.Relation}. *)
let to_relation schema store pred =
  TS.fold Relation.add_unchecked (find store pred) (Relation.empty schema)

let of_relation pred rel store =
  Relation.fold (fun t st -> add st pred t) rel store

let pp ppf store =
  SM.iter
    (fun pred set ->
      TS.iter (fun t -> Fmt.pf ppf "%s%a@." pred Tuple.pp t) set)
    store.tuples
