(** Tabled top-down evaluation (OLDT / QSQ style) for positive programs:
    memoized subgoal tables iterated to a goal-directed least fixpoint —
    the proof-oriented world's eventual answer to the weaknesses the paper
    attributes to it (terminates on cyclic data, shares subproofs, explores
    only query-relevant subgoals).  Experiment E2b compares it against
    plain SLD and bottom-up construction. *)

type stats = {
  mutable rounds : int;
  mutable calls : int;  (** distinct call patterns tabled *)
  mutable derivations : int;  (** answers produced, duplicates included *)
}

val fresh_stats : unit -> stats

val solve :
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  ?max_rounds:int ->
  Syntax.program ->
  Facts.t ->
  Syntax.atom ->
  Facts.TS.t
(** All ground instances of the goal derivable from program + EDB.
    IDB subgoals resolve only through rules and tables: facts stored in
    the EDB under an IDB predicate name are not consulted (keep base facts
    under EDB-only predicates, as the bottom-up engines' workloads do).
    @raise Invalid_argument on negation or budget exhaustion. *)

val query :
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  ?max_rounds:int ->
  Syntax.program ->
  Facts.t ->
  string ->
  int ->
  Facts.TS.t
(** Open query on a predicate of the given arity. *)
