(** Tabled top-down evaluation (OLDT / QSQ style) for positive programs:
    memoized subgoal tables iterated to a goal-directed least fixpoint —
    the proof-oriented world's eventual answer to the weaknesses the paper
    attributes to it (terminates on cyclic data, shares subproofs, explores
    only query-relevant subgoals).  Experiment E2b compares it against
    plain SLD and bottom-up construction. *)

type stats = {
  mutable rounds : int;
  mutable calls : int;  (** distinct call patterns tabled *)
  mutable derivations : int;  (** answers produced, duplicates included *)
  mutable round_log : (int * float) list;
      (** (new answers across all tables, wall ms) per round, latest
          first; only populated when metrics are enabled
          ({!Dc_obs.Obs.on}) *)
}

val fresh_stats : unit -> stats

val default_max_rounds : int

val solve :
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  ?max_rounds:int ->
  Syntax.program ->
  Facts.t ->
  Syntax.atom ->
  Facts.TS.t
(** All ground instances of the goal derivable from program + EDB.
    IDB subgoals resolve only through rules and tables: facts stored in
    the EDB under an IDB predicate name are not consulted (keep base facts
    under EDB-only predicates, as the bottom-up engines' workloads do).

    The round fuse is a guard round budget: [guard] (full budget mix)
    takes precedence, otherwise a fresh guard over [max_rounds] (default
    {!default_max_rounds}) is used.
    @raise Dc_guard.Guard.Exhausted when the budget trips
    @raise Engine.Error ([Unsupported]) on negation *)

val query :
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  ?max_rounds:int ->
  Syntax.program ->
  Facts.t ->
  string ->
  int ->
  Facts.TS.t
(** Open query on a predicate of the given arity. *)
