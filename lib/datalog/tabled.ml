(* Tabled top-down evaluation (OLDT / QSQ style), for positive programs.

   The paper's closing argument (§4) is that set-oriented construction
   beats tuple-oriented theorem proving; the PROLOG community's eventual
   answer was tabling: memoize subgoals and their answers, turning the
   proof search into a goal-directed fixpoint.  This engine implements the
   idea in its simplest complete form:

   - a {e call pattern} is an atom with its ground arguments kept and its
     variables canonicalized ([path(1, V0)]);
   - every distinct pattern gets an answer table; rule bodies resolve IDB
     subgoals against the tables (registering new patterns on first use),
     EDB subgoals against the fact store;
   - the engine iterates all registered patterns until no table grows —
     a least fixpoint over exactly the subgoals relevant to the query,
     i.e. the top-down counterpart of magic sets.

   Rule bodies execute as pipelines of the shared operator IR, compiled
   once per (rule, adornment) — the adornment being which call positions
   are bound — and reused across every call of that shape: EDB atoms read
   the fact store's indexed extents, IDB atoms are correlated scans that
   canonicalize the instantiated subgoal, register its table and consume
   the answers.  Body atom order is preserved (no join reordering): it is
   the rule's sideways information passing, which decides which call
   patterns get tabled.  Call constants are seeded into the initial row's
   head-variable slots.

   Consequences measured in experiment E2b: termination on cyclic data
   (where plain SLD loops), no duplicated subproofs (tables are shared),
   and goal-directed work bounded by the relevant subgoals. *)

open Dc_relation
open Syntax

module TS = Facts.TS
module Ir = Dc_exec.Ir
module Extent = Dc_exec.Extent
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs

type stats = {
  mutable rounds : int;
  mutable calls : int; (* distinct call patterns tabled *)
  mutable derivations : int; (* answers produced, duplicates included *)
  mutable round_log : (int * float) list;
      (* (new answers across all tables, wall ms) per round, latest
         first; only populated when metrics are enabled *)
}

let fresh_stats () = { rounds = 0; calls = 0; derivations = 0; round_log = [] }

let m_rounds = lazy (Obs.Counter.make ~labels:[ ("engine", "tabled") ] "dc_datalog_rounds_total")
let m_round_ms = lazy (Obs.Histogram.make ~labels:[ ("engine", "tabled") ] "dc_datalog_round_ms")
let m_round_delta = lazy (Obs.Histogram.make ~labels:[ ("engine", "tabled") ] "dc_datalog_round_delta")

(* Canonical call pattern: ground args kept, variables numbered in order
   of first occurrence. *)
type call = {
  c_pred : string;
  c_args : term list;
}

(* Computed (Binop) head terms belong to the aggregate extension, which
   only the semi-naive engine evaluates; a goal-directed engine meeting
   one is a caller error. *)
let no_binop () =
  invalid_arg "Tabled: computed (Binop) terms require the semi-naive engine"

let canonicalize (pred : string) (args : term list) =
  let mapping = Hashtbl.create 4 in
  let c_args =
    List.map
      (function
        | Binop _ -> no_binop ()
        | Const _ as t -> t
        | Var v -> (
          match Hashtbl.find_opt mapping v with
          | Some t -> t
          | None ->
            let t = Var (Fmt.str "V%d" (Hashtbl.length mapping)) in
            Hashtbl.replace mapping v t;
            t))
      args
  in
  { c_pred = pred; c_args }

(* The adornment of a call: which argument positions carry constants.
   Pipelines depend only on this shape — the constants themselves flow in
   through the initial row. *)
let adornment (call : call) =
  String.concat ""
    (List.map
       (function
         | Const _ -> "b"
         | Var _ -> "f"
         | Binop _ -> no_binop ())
       call.c_args)

type state = {
  program : rule array;
  idb : SS.t;
  edb : Facts.t;
  tables : (call, TS.t ref) Hashtbl.t;
  compiled : (int * string, Engine.compiled) Hashtbl.t;
      (* per (rule index, adornment) *)
  mutable compiled_order : Engine.compiled list; (* reverse, for EXPLAIN *)
  mutable order : call list; (* registration order *)
  mutable changed : bool;
  guard : Guard.t;
  stats : stats;
}

let ensure_call st call =
  match Hashtbl.find_opt st.tables call with
  | Some t -> t
  | None ->
    let t = ref TS.empty in
    Hashtbl.replace st.tables call t;
    st.order <- call :: st.order;
    st.stats.calls <- st.stats.calls + 1;
    st.changed <- true;
    t

(* Compile (or fetch) rule [ri]'s pipeline for the call's adornment. *)
let compile_for st ri rule call =
  let adn = adornment call in
  let key = (ri, adn) in
  match Hashtbl.find_opt st.compiled key with
  | Some c -> c
  | None ->
    let bound =
      List.rev
        (List.fold_left2
           (fun acc head_arg call_arg ->
             match head_arg, call_arg with
             | Var v, Const _ -> if List.mem v acc then acc else v :: acc
             | _ -> acc)
           [] rule.head.args call.c_args)
    in
    let source _ (a : atom) =
      if SS.mem a.pred st.idb then
        Engine.Dynamic
          (fun inst row ->
            (* consult (and register) the instantiated subgoal's table *)
            let answers = ensure_call st (canonicalize a.pred (inst row)) in
            {
              Extent.label = Fmt.str "table %s" a.pred;
              cardinal = (fun () -> Some (TS.cardinal !answers));
              iter = (fun f -> TS.iter f !answers);
              lookup =
                (fun _ _ ->
                  Engine.error Internal "tabled: keyed table lookup");
              mem = (fun t -> TS.mem t !answers);
            })
      else Engine.Static (Ir.Fixed (Engine.store_extent st.edb a.pred))
    in
    let c =
      Engine.compile_rule ~reorder:false ~bound ~source
        ~neg_source:(fun _ ->
          Engine.error Unsupported "tabled: negation not supported")
        ~label:(lazy (Fmt.str "%a  [%s/%s]" pp_rule rule call.c_pred adn))
        rule
    in
    Hashtbl.replace st.compiled key c;
    st.compiled_order <- c :: st.compiled_order;
    c

(* Evaluate the rules for one call pattern, adding new answers. *)
let evaluate_call st (call : call) =
  let table = Hashtbl.find st.tables call in
  Array.iteri
    (fun ri rule ->
      if String.equal rule.head.pred call.c_pred then begin
        let compiled = compile_for st ri rule call in
        (* bind the head against the call pattern: constants flow into the
           initial row's slots; a clash means the rule cannot serve it *)
        let ok = ref true in
        let writes = ref [] in
        let seen = Hashtbl.create 4 in
        List.iter2
          (fun head_arg call_arg ->
            match head_arg, call_arg with
            | Binop _, _ | _, Binop _ -> no_binop ()
            | _, Var _ -> ()
            | Const c', Const c -> if not (Value.equal c c') then ok := false
            | Var v, Const c -> (
              let s = compiled.Engine.slot v in
              match Hashtbl.find_opt seen s with
              | Some w -> if not (Value.equal w c) then ok := false
              | None ->
                Hashtbl.replace seen s c;
                writes := (s, c) :: !writes))
          rule.head.args call.c_args;
        if !ok then begin
          let writes = !writes in
          let n = compiled.Engine.n_slots in
          compiled.Engine.set_init (fun () ->
              let row = Array.make n Engine.dummy in
              List.iter (fun (s, v) -> row.(s) <- v) writes;
              row);
          Ir.run ~guard:st.guard Ir.empty_ctx compiled.Engine.pipeline
            (fun answer ->
              st.stats.derivations <- st.stats.derivations + 1;
              if not (TS.mem answer !table) then begin
                table := TS.add answer !table;
                st.changed <- true
              end)
        end
      end)
    st.program

let default_max_rounds = 100_000

let solve ?guard ?stats ?trace ?(max_rounds = default_max_rounds)
    (program : program) (edb : Facts.t) (goal : atom) =
  check_safe program;
  let stats = Option.value stats ~default:(fresh_stats ()) in
  (* The hard-coded round fuse is now just a default guard: callers can
     pass their own guard (any budget mix) or a custom [max_rounds]. *)
  let guard =
    match guard with
    | Some g -> g
    | None -> Guard.create ~rounds:max_rounds ()
  in
  let st =
    {
      program = Array.of_list program;
      idb = idb_preds program;
      edb;
      tables = Hashtbl.create 64;
      compiled = Hashtbl.create 64;
      compiled_order = [];
      order = [];
      changed = false;
      guard;
      stats;
    }
  in
  let root = canonicalize goal.pred goal.args in
  let root_table = ensure_call st root in
  let table_sizes () =
    Hashtbl.fold (fun _ t acc -> acc + TS.cardinal !t) st.tables 0
  in
  let rec loop () =
    Guard.round guard ~site:"tabled.round";
    st.changed <- false;
    stats.rounds <- stats.rounds + 1;
    let observing = Obs.on () in
    if not observing then List.iter (evaluate_call st) st.order
    else begin
      let t0 = Obs.now_ms () in
      let before = table_sizes () in
      List.iter (evaluate_call st) st.order;
      let delta = table_sizes () - before in
      let dt = Obs.now_ms () -. t0 in
      stats.round_log <- (delta, dt) :: stats.round_log;
      Obs.Counter.inc (Lazy.force m_rounds);
      Obs.Histogram.observe (Lazy.force m_round_ms) dt;
      Obs.Histogram.observe (Lazy.force m_round_delta) (float_of_int delta)
    end;
    if st.changed then loop ()
  in
  loop ();
  Option.iter
    (fun tr ->
      List.iter
        (fun (c : Engine.compiled) ->
          Ir.Trace.record tr
            ~label:(Lazy.force c.Engine.pipeline.Ir.tlabel)
            c.Engine.pipeline)
        (List.rev st.compiled_order))
    trace;
  (* keep only answers matching the goal's constants and repeated-variable
     equalities (tables over-approximate repeated-variable patterns) *)
  let matches t =
    let seen = Hashtbl.create 4 in
    List.for_all2
      (fun arg v ->
        match arg with
        | Binop _ -> no_binop ()
        | Const c -> Value.equal c v
        | Var x -> (
          match Hashtbl.find_opt seen x with
          | Some w -> Value.equal w v
          | None ->
            Hashtbl.replace seen x v;
            true))
      goal.args (Tuple.to_list t)
  in
  TS.filter matches !root_table

let query ?guard ?stats ?trace ?max_rounds program edb pred arity =
  solve ?guard ?stats ?trace ?max_rounds program edb
    (atom pred (List.init arity (fun i -> Var (Fmt.str "Q%d" i))))
