(** Function-free Horn clauses (Datalog) — the comparison formalism of
    paper §3.4, with the extensions the experiments need: built-in
    comparison literals and (stratified) negation. *)

open Dc_relation

type binop = Dc_calculus.Ast.binop

type term =
  | Var of string
  | Const of Value.t
  | Binop of binop * term * term
      (** computed value: rule heads and tests only; engines reject it in
          body atom argument positions *)

type cmpop = Dc_calculus.Ast.cmpop

type atom = {
  pred : string;
  args : term list;
}

type lit =
  | Pos of atom
  | Neg of atom
  | Test of cmpop * term * term  (** built-in comparison *)

type rule = {
  head : atom;
  body : lit list;
}

type program = rule list

(** {1 Builders} *)

val var : string -> term
val const : Value.t -> term
val cint : int -> term
val cstr : string -> term
val atom : string -> term list -> atom
val rule : atom -> lit list -> rule
val fact : string -> Value.t list -> rule

(** {1 Analyses} *)

val term_vars : term -> string list
val atom_vars : atom -> string list
val lit_vars : lit -> string list
val rule_vars : rule -> string list
val is_ground_atom : atom -> bool

val unsafe_vars : rule -> string list
(** Head/negation/test variables missing from every positive body atom
    (range restriction). *)

val is_safe : rule -> bool

exception Unsafe_rule of rule

val check_safe : program -> unit
(** @raise Unsafe_rule on the first unsafe rule. *)

module SS : Set.S with type elt = string

val idb_preds : program -> SS.t
(** Predicates defined by rule heads. *)

val body_preds : rule -> string list
val edb_preds : program -> SS.t
(** Predicates referenced only in bodies. *)

(** {1 Printing} *)

val pp_term : term Fmt.t
val pp_atom : atom Fmt.t
val pp_lit : lit Fmt.t
val pp_rule : rule Fmt.t
val pp_program : program Fmt.t
