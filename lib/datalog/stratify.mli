(** Stratification of Datalog programs with negation: assign each IDB
    predicate a stratum such that positive dependencies are non-decreasing
    and negative dependencies strictly increase.  Programs with a negative
    cycle — the Horn-side counterpart of the definitions the paper's
    positivity constraint rules out (§3.3) — are rejected. *)

module SM : Map.S with type key = string

exception Not_stratifiable of string

val strata :
  ?aggs:(string * Dc_agg.Agg.spec) list -> Syntax.program -> int SM.t
(** Stratum of each IDB predicate.  [aggs] maps aggregated IDB predicates
    to their aggregate spec: consumers of COUNT/SUM predicates (only exact
    at fixpoint) are bumped strictly above, as are non-MIN/MAX consumers
    of MIN/MAX predicates — while MIN/MAX heads may share a stratum with
    the MIN/MAX predicates they consume (premappable recursion, e.g.
    shortest paths).  Recursion through COUNT/SUM diverges and raises.
    @raise Not_stratifiable *)

val layers :
  ?aggs:(string * Dc_agg.Agg.spec) list -> Syntax.program ->
  Syntax.program list
(** Rules grouped by head stratum, lowest first (empty layers dropped). *)

val is_stratifiable : Syntax.program -> bool

val sccs : Syntax.program -> string list list
(** Strongly connected components of the positive dependency graph over
    IDB predicates, in topological (dependencies-first) order — the unit
    of work for incremental maintenance. *)

val recursive : Syntax.program -> string list -> bool
(** Does some rule with a head in the component also consult the
    component in a positive body atom?  (A singleton predicate without a
    self-loop is not recursive.) *)
