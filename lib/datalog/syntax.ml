(* Function-free Horn clauses (Datalog), the comparison formalism of paper
   §3.4: "the constructor mechanism is as powerful as function-free PROLOG
   without cut, fail, and negation".

   We implement the common extensions needed by the experiments: built-in
   comparison literals and stratified negation (the latter mirrors the
   closed-world reading the paper adopts). *)

open Dc_relation

type binop = Dc_calculus.Ast.binop

type term =
  | Var of string
  | Const of Value.t
  | Binop of binop * term * term
      (* computed value — admitted in rule heads and tests only (the
         premapped-aggregate rules need [D1 + W2] in the head); engines
         reject it in body atom argument positions *)

type cmpop = Dc_calculus.Ast.cmpop

type atom = {
  pred : string;
  args : term list;
}

type lit =
  | Pos of atom
  | Neg of atom
  | Test of cmpop * term * term (* built-in comparison *)

type rule = {
  head : atom;
  body : lit list;
}

type program = rule list

let var v = Var v
let const c = Const c
let cint i = Const (Value.Int i)
let cstr s = Const (Value.str s)

let atom pred args = { pred; args }

let rule head body = { head; body }

let fact pred values = { head = atom pred (List.map const values); body = [] }

(* ------------------------------------------------------------------ *)

let rec term_vars = function
  | Var v -> [ v ]
  | Const _ -> []
  | Binop (_, a, b) -> term_vars a @ term_vars b

let atom_vars a = List.concat_map term_vars a.args

let lit_vars = function
  | Pos a | Neg a -> atom_vars a
  | Test (_, a, b) -> term_vars a @ term_vars b

let rule_vars r = atom_vars r.head @ List.concat_map lit_vars r.body

let is_ground_atom a =
  List.for_all (fun t -> term_vars t = [] && match t with Const _ -> true | _ -> false) a.args

(* Range restriction (safety): every variable of the head, of a negated
   atom, and of a built-in test must occur in some positive body atom. *)
let unsafe_vars r =
  let positive =
    List.concat_map
      (function
        | Pos a -> atom_vars a
        | Neg _ | Test _ -> [])
      r.body
  in
  let required =
    atom_vars r.head
    @ List.concat_map
        (function
          | Neg a -> atom_vars a
          | Test (_, a, b) -> term_vars a @ term_vars b
          | Pos _ -> [])
        r.body
  in
  List.sort_uniq String.compare
    (List.filter (fun v -> not (List.mem v positive)) required)

let is_safe r = unsafe_vars r = []

exception Unsafe_rule of rule

let check_safe program =
  List.iter (fun r -> if not (is_safe r) then raise (Unsafe_rule r)) program

(* Predicates defined by rule heads (IDB) vs. referenced only in bodies
   (EDB). *)
module SS = Set.Make (String)

let idb_preds program =
  List.fold_left (fun s r -> SS.add r.head.pred s) SS.empty program

let body_preds r =
  List.filter_map
    (function
      | Pos a | Neg a -> Some a.pred
      | Test _ -> None)
    r.body

let edb_preds program =
  let idb = idb_preds program in
  List.fold_left
    (fun s r ->
      List.fold_left
        (fun s p -> if SS.mem p idb then s else SS.add p s)
        s (body_preds r))
    SS.empty program

(* ------------------------------------------------------------------ *)

let rec pp_term ppf = function
  | Var v -> Fmt.string ppf v
  | Const c -> Value.pp ppf c
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a %a %a)" pp_term a Dc_calculus.Ast.pp_binop op pp_term b

let pp_atom ppf a =
  Fmt.pf ppf "%s(%a)" a.pred Fmt.(list ~sep:(any ", ") pp_term) a.args

let pp_lit ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Fmt.pf ppf "not %a" pp_atom a
  | Test (op, a, b) ->
    Fmt.pf ppf "%a %a %a" pp_term a Dc_calculus.Ast.pp_cmpop op pp_term b

let pp_rule ppf r =
  match r.body with
  | [] -> Fmt.pf ppf "%a." pp_atom r.head
  | body ->
    Fmt.pf ppf "%a :- %a." pp_atom r.head
      Fmt.(list ~sep:(any ", ") pp_lit)
      body

let pp_program ppf p = Fmt.(list ~sep:(any "@.") pp_rule) ppf p
