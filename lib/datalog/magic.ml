(* Magic-sets transformation: the "capture rules" style optimization the
   paper's §4 points at ([Ullm 84]) for propagating query constants into
   recursive definitions.

   Given a positive, safe program and a query atom with some constant
   arguments, the transformation produces an adorned program with magic
   predicates so that bottom-up evaluation only derives facts relevant to
   the query bindings.  Sideways information passing is left-to-right.

   This is the general form of the paper's §4 "Case" rules: the pushed
   selection of experiment E4 is exactly what magic sets achieves on the
   parameterized transitive-closure query. *)

open Syntax

module SS = Syntax.SS

exception Unsupported of string

type adornment = bool list (* true = bound *)

let adornment_string ad =
  String.concat "" (List.map (fun b -> if b then "b" else "f") ad)

let adorned_name p ad = Fmt.str "%s__%s" p (adornment_string ad)
let magic_name p ad = Fmt.str "m_%s__%s" p (adornment_string ad)

(* bound arguments of an atom under an adornment *)
let bound_args (a : atom) (ad : adornment) =
  List.filteri (fun i _ -> List.nth ad i) a.args

(* Computed (Binop) terms belong to the aggregate extension, which only
   the semi-naive engine evaluates. *)
let no_binop () =
  invalid_arg "Magic: computed (Binop) terms require the semi-naive engine"

let atom_adornment bound_vars (a : atom) : adornment =
  List.map
    (function
      | Const _ -> true
      | Var v -> SS.mem v bound_vars
      | Binop _ -> no_binop ())
    a.args

(* Transform [program] for [query]; returns the transformed program, the
   seed fact, and the adorned name of the query predicate. *)
let transform (program : program) (query : atom) =
  List.iter
    (fun r ->
      if
        List.exists
          (function
            | Neg _ -> true
            | Pos _ | Test _ -> false)
          r.body
      then raise (Unsupported "magic sets: negation not supported"))
    program;
  let idb = idb_preds program in
  let query_ad =
    List.map
      (function
        | Const _ -> true
        | Var _ -> false
        | Binop _ -> no_binop ())
      query.args
  in
  let out = ref [] in
  let emitted = Hashtbl.create 16 in
  (* Process one (pred, adornment) pair: adorn all rules for pred. *)
  let rec process pred (ad : adornment) =
    if not (Hashtbl.mem emitted (pred, ad)) then begin
      Hashtbl.replace emitted (pred, ad) ();
      List.iter
        (fun rule ->
          if String.equal rule.head.pred pred then adorn_rule rule ad)
        program
    end
  and adorn_rule rule (ad : adornment) =
    (* variables bound on entry: head vars in bound positions *)
    let entry_bound =
      List.fold_left2
        (fun s arg b ->
          match arg with
          | Var v when b -> SS.add v s
          | Var _ | Const _ -> s
          | Binop _ -> no_binop ())
        SS.empty rule.head.args ad
    in
    let magic_head_atom =
      { pred = magic_name rule.head.pred ad; args = bound_args rule.head ad }
    in
    (* walk the body left-to-right, accumulating bound vars and emitting
       magic rules for IDB atoms *)
    let rec walk bound prefix_rev = function
      | [] -> List.rev prefix_rev
      | Test (op, x, y) :: rest ->
        let bound =
          List.fold_left (fun s v -> SS.add v s) bound
            (term_vars x @ term_vars y)
        in
        walk bound (Test (op, x, y) :: prefix_rev) rest
      | Neg _ :: _ -> assert false
      | Pos a :: rest ->
        let lit, bound' =
          if SS.mem a.pred idb then begin
            let a_ad = atom_adornment bound a in
            process a.pred a_ad;
            (* magic rule: m_a^ad(bound args) :- m_head^ad(...), prefix *)
            out :=
              {
                head = { pred = magic_name a.pred a_ad; args = bound_args a a_ad };
                body = Pos magic_head_atom :: List.rev prefix_rev;
              }
              :: !out;
            ( Pos { a with pred = adorned_name a.pred a_ad },
              List.fold_left (fun s v -> SS.add v s) bound (atom_vars a) )
          end
          else
            (Pos a, List.fold_left (fun s v -> SS.add v s) bound (atom_vars a))
        in
        walk bound' (lit :: prefix_rev) rest
    in
    let body = walk entry_bound [] rule.body in
    out :=
      {
        head = { rule.head with pred = adorned_name rule.head.pred ad };
        body = Pos magic_head_atom :: body;
      }
      :: !out
  in
  if not (SS.mem query.pred idb) then
    raise (Unsupported "magic sets: query predicate is not IDB");
  process query.pred query_ad;
  let seed =
    {
      head =
        { pred = magic_name query.pred query_ad; args = bound_args query query_ad };
      body = [];
    }
  in
  (seed :: List.rev !out, adorned_name query.pred query_ad)

(* Evaluate [query] against [program]/[edb] through the magic transform
   with semi-naive evaluation; returns the set of query-matching tuples of
   the original predicate. *)
let answer ?guard ?stats ?trace (program : program) (edb : Facts.t)
    (query : atom) =
  let transformed, adorned_query = transform program query in
  let store = Seminaive.run ?guard ?stats ?trace transformed edb in
  let matching = Facts.find store adorned_query in
  (* keep only tuples agreeing with the query constants *)
  Facts.TS.filter
    (fun t ->
      List.for_all2
        (fun arg v ->
          match arg with
          | Const c -> Dc_relation.Value.equal c v
          | Var _ -> true
          | Binop _ -> no_binop ())
        query.args (Dc_relation.Tuple.to_list t))
    matching
