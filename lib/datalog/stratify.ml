(* Stratification of Datalog programs with negation.

   Builds the predicate dependency graph (positive and negative edges) and
   assigns each IDB predicate a stratum such that positive dependencies are
   non-decreasing and negative dependencies strictly increase.  Programs
   with a negative cycle are rejected — they correspond exactly to the
   constructor definitions the paper's positivity constraint rules out
   (§3.3). *)

open Syntax

module SM = Map.Make (String)
module SS = Syntax.SS

exception Not_stratifiable of string

(* Aggregate-aware stratification.  [aggs] maps an IDB predicate to the
   aggregate applied to its rule emissions.  The bump discipline extends
   Ullman's relaxation:

   - COUNT/SUM results are only meaningful once their defining stratum has
     reached fixpoint (a partial count is not a count), so any consumer
     sits strictly above — which also makes recursion through COUNT/SUM
     diverge into [Not_stratifiable], the desired rejection;
   - MIN/MAX under the premappability condition tolerate overestimates
     (every improvement propagates and displaces stale bounds by
     subsumption), so MIN/MAX heads may consume MIN/MAX predicates in the
     same stratum — recursive shortest-path stays in one layer — while
     non-aggregated consumers still wait for the final bounds above. *)

(* stratum of each IDB predicate, by iterated relaxation (Ullman's
   algorithm); raises if a stratum exceeds the predicate count. *)
let strata ?(aggs = []) (program : program) =
  let agg_of p = List.assoc_opt p aggs in
  let is_exact p =
    (* aggregated, and only exact at fixpoint (not premappable) *)
    match agg_of p with
    | Some (s : Dc_agg.Agg.spec) -> not (Dc_agg.Agg.premappable s.op)
    | None -> false
  in
  let is_bound p =
    (* aggregated with a refinable per-group bound (MIN/MAX) *)
    match agg_of p with
    | Some (s : Dc_agg.Agg.spec) -> Dc_agg.Agg.premappable s.op
    | None -> false
  in
  let idb = idb_preds program in
  let npreds = SS.cardinal idb in
  let stratum = ref (SS.fold (fun p m -> SM.add p 0 m) idb SM.empty) in
  let get p = Option.value (SM.find_opt p !stratum) ~default:0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun rule ->
        let h = rule.head.pred in
        List.iter
          (fun lit ->
            let bump ~why target =
              if get h < target then begin
                if target > npreds then
                  raise
                    (Not_stratifiable
                       (Fmt.str "predicate %s depends %s (through a cycle)" h
                          why));
                stratum := SM.add h target !stratum;
                changed := true
              end
            in
            match lit with
            | Pos a when SS.mem a.pred idb ->
              if is_exact a.pred then
                bump
                  ~why:
                    (Fmt.str
                       "on the %s aggregate %s, which is only exact at \
                        fixpoint"
                       (match agg_of a.pred with
                       | Some s -> Dc_agg.Agg.op_name s.op
                       | None -> assert false)
                       a.pred)
                  (get a.pred + 1)
              else if is_bound a.pred && not (is_bound h) then
                bump
                  ~why:
                    (Fmt.str "on the final bounds of the aggregate %s" a.pred)
                  (get a.pred + 1)
              else bump ~why:"positively on itself" (get a.pred)
            | Neg a when SS.mem a.pred idb ->
              bump ~why:"negatively on itself" (get a.pred + 1)
            | Pos _ | Neg _ | Test _ -> ())
          rule.body)
      program
  done;
  !stratum

(* Rules grouped by the stratum of their head predicate, lowest first. *)
let layers ?aggs program =
  let strata = strata ?aggs program in
  let get p = Option.value (SM.find_opt p strata) ~default:0 in
  let max_stratum = SM.fold (fun _ s acc -> max s acc) strata 0 in
  List.init (max_stratum + 1) (fun i ->
      List.filter (fun r -> get r.head.pred = i) program)
  |> List.filter (fun l -> l <> [])

let is_stratifiable program =
  match strata program with
  | _ -> true
  | exception Not_stratifiable _ -> false

(* Strongly connected components of the positive dependency graph over
   IDB predicates, in topological (dependencies-first) order — the unit
   of work for incremental maintenance, which runs DRed only on the SCCs
   that are actually recursive and a cheaper counting pass elsewhere.
   Tarjan's algorithm; the reversed emission order of root components is
   already dependencies-first. *)
let sccs (program : program) =
  let idb = idb_preds program in
  let succs =
    List.fold_left
      (fun m rule ->
        let h = rule.head.pred in
        List.fold_left
          (fun m lit ->
            match lit with
            | Pos a when SS.mem a.pred idb ->
              (* edge body-pred → head-pred *)
              let old = Option.value (SM.find_opt a.pred m) ~default:SS.empty in
              SM.add a.pred (SS.add h old) m
            | Pos _ | Neg _ | Test _ -> m)
          m rule.body)
      (SS.fold (fun p m -> SM.add p SS.empty m) idb SM.empty)
      program
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    SS.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Option.value (SM.find_opt v succs) ~default:SS.empty);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  SS.iter (fun p -> if not (Hashtbl.mem index p) then strongconnect p) idb;
  (* Tarjan emits each SCC after all SCCs reachable from it along edges
     already fully explored; with edges pointing body → head, reversing
     the emission list yields dependencies-first order. *)
  !components

(* Is the SCC [preds] recursive, i.e. does some rule with a head in the
   component also consult the component in a positive body atom?  A
   singleton without a self-loop is not. *)
let recursive program preds =
  let inside = SS.of_list preds in
  List.exists
    (fun rule ->
      SS.mem rule.head.pred inside
      && List.exists
           (function
             | Pos (a : atom) -> SS.mem a.pred inside
             | Neg _ | Test _ -> false)
           rule.body)
    program
