(* The Datalog rule compiler: shared machinery of the engines, now a
   lowering onto the physical operator IR instead of a tuple-at-a-time
   substitution interpreter.

   One rule body becomes one pipeline: positive atoms compile to scans or
   keyed probes (argument positions holding constants or already-bound
   variables form the index key), negated atoms to anti-joins, built-in
   tests to filters attached at the earliest point their variables are
   bound.  The row threaded through the pipeline is a [Value.t array] with
   one slot per rule variable, written in place — the executor's
   depth-first traversal makes the reuse safe, so a rule evaluation
   allocates one row per run, not one substitution per binding step.

   Delta-awareness comes from the IR's named sources: an atom occurrence
   reads "pred" (the full store) or "Δpred" (the round's delta), and the
   per-round context swaps the stores under an unchanged pipeline — the
   semi-naive engine rebuilds nothing between rounds. *)

open Dc_relation
open Syntax

module Ir = Dc_exec.Ir
module Extent = Dc_exec.Extent
module Join_order = Dc_exec.Join_order

type row = Value.t array

(* Structured errors: one taxonomy for the whole Datalog layer instead of
   ad-hoc [invalid_arg]s, so drivers can distinguish user mistakes
   (unsafe rules) from engine limitations and internal invariants. *)
type error_kind =
  | Unsafe_rule
  | Unbound_variable
  | Unsupported
  | Internal

let error_kind_name = function
  | Unsafe_rule -> "unsafe rule"
  | Unbound_variable -> "unbound variable"
  | Unsupported -> "unsupported"
  | Internal -> "internal"

exception Error of error_kind * string

let error kind fmt =
  Fmt.kstr (fun s -> raise (Error (kind, s))) fmt

let pp_error ppf (kind, msg) =
  Fmt.pf ppf "%s: %s" (error_kind_name kind) msg

let dummy = Value.Bool false

(* ------------------------------------------------------------------ *)
(* Extents over fact stores, and the naming convention that lets one
   pipeline read either the full store or a semi-naive delta. *)

let store_extent ?label (store : Facts.t) pred =
  let label = Option.value label ~default:pred in
  {
    Extent.label;
    cardinal = (fun () -> Some (Facts.cardinal store pred));
    iter = (fun f -> Facts.TS.iter f (Facts.find store pred));
    lookup =
      (fun positions values ->
        Facts.lookup store pred positions (Tuple.of_list values));
    mem = (fun t -> Facts.mem store pred t);
  }

let delta_prefix = "\xce\x94" (* UTF-8 Δ *)

let delta_name pred = delta_prefix ^ pred

let split_delta name =
  let n = String.length delta_prefix in
  if String.length name > n && String.equal (String.sub name 0 n) delta_prefix
  then Some (String.sub name n (String.length name - n))
  else None

(* Second naming layer for the incremental-maintenance counting pass,
   which telescopes a product of per-atom updates: positions left of the
   delta read the post-update store ("⊕pred"), the delta position reads
   "Δpred", positions right of it read the pre-update store ("pred"). *)
let post_prefix = "\xe2\x8a\x95" (* UTF-8 ⊕ *)

let post_name pred = post_prefix ^ pred

let split_post name =
  let n = String.length post_prefix in
  if String.length name > n && String.equal (String.sub name 0 n) post_prefix
  then Some (String.sub name n (String.length name - n))
  else None

let store_ctx store : Ir.ctx = fun name -> store_extent store name

let delta_ctx ~full ~delta : Ir.ctx =
 fun name ->
  match split_delta name with
  | Some pred -> store_extent ~label:name delta pred
  | None -> store_extent full name

let tri_ctx ~pre ~post ~delta : Ir.ctx =
 fun name ->
  match split_delta name with
  | Some pred -> store_extent ~label:name delta pred
  | None -> (
    match split_post name with
    | Some pred -> store_extent ~label:name post pred
    | None -> store_extent pre name)

(* Rules grouped by head predicate, both orders preserved (predicates by
   first appearance, rules by program order). *)
let group_by_head (rules : program) =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.head.pred with
      | Some l -> l := r :: !l
      | None ->
        Hashtbl.replace tbl r.head.pred (ref [ r ]);
        order := r.head.pred :: !order)
    rules;
  List.rev_map (fun p -> (p, List.rev !(Hashtbl.find tbl p))) !order

(* ------------------------------------------------------------------ *)
(* Rule compilation *)

type src_spec =
  | Static of Ir.source
  | Dynamic of ((row -> term list) -> row -> Extent.t)
      (* correlated consult (the tabled engine's subgoal tables): receives
         [inst], which instantiates the atom's arguments from the current
         row, and returns the extent to scan *)

type compiled = {
  pipeline : Ir.t;
  n_slots : int;
  slot : string -> int;
  set_init : (unit -> row) -> unit;
      (* override the initial-row thunk (tabled seeds call constants) *)
}

(* Position-wise classification of one atom's arguments, given the
   variables bound before the atom. *)
type arg_action =
  | Key_const of Value.t (* constant: part of the index key *)
  | Key_slot of int (* bound variable: part of the index key *)
  | Write of int (* first occurrence: bind the slot *)
  | Check of int (* repeated within the atom: equality check *)

let compile_rule ?(reorder = true) ?(card = fun _ _ -> None) ?(bound = [])
    ~source ~neg_source ~label rule =
  let positives =
    Array.of_list
      (List.filter_map
         (function
           | Pos a -> Some a
           | Neg _ | Test _ -> None)
         rule.body)
  in
  let constraints =
    List.filter
      (function
        | Pos _ -> false
        | Neg _ | Test _ -> true)
      rule.body
  in
  let n = Array.length positives in
  let bound0 = SS.of_list bound in
  (* Body atoms of a conjunctive rule commute, so placement goes through
     the shared join-order rule: most usable index keys first, cardinality
     hint (the semi-naive delta) second, program order last. *)
  let order =
    if not reorder then List.init n Fun.id
    else begin
      let pos_vars = Array.map (fun a -> SS.of_list (atom_vars a)) positives in
      Join_order.order
        (List.init n (fun i ->
             {
               Join_order.deps = [];
               card = card i positives.(i);
               keys_given =
                 (fun placed ->
                   let bnd =
                     List.fold_left
                       (fun s j -> SS.union s pos_vars.(j))
                       bound0 placed
                   in
                   List.length
                     (List.filter
                        (function
                          | Const _ -> true
                          | Var v -> SS.mem v bnd
                          | Binop _ -> false (* rejected below *))
                        positives.(i).args));
             }))
    end
  in
  (* Slot allocation, in placement order. *)
  let slots = Hashtbl.create 8 in
  let nslots = ref 0 in
  let alloc v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      Hashtbl.replace slots v s;
      s
  in
  let slot v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None -> error Unbound_variable "compile_rule: unbound variable %s" v
  in
  List.iter (fun v -> ignore (alloc v)) bound;
  let rec getter = function
    | Const c -> fun (_ : row) -> c
    | Var v ->
      let s = slot v in
      fun row -> row.(s)
    | Binop (op, a, b) ->
      (* computed term (premapped-aggregate heads, tests): evaluated per
         row from the getters of its operands *)
      let ga = getter a and gb = getter b in
      let f =
        match (op : Dc_calculus.Ast.binop) with
        | Add -> Value.add
        | Sub -> Value.sub
        | Mul -> Value.mul
      in
      fun row -> f (ga row) (gb row)
  in
  (* Negations and tests attach at the earliest prefix where they are
     ground (safety guarantees they eventually are). *)
  let bound_now = ref bound0 in
  let lit_ready = function
    | Pos _ -> true
    | Neg a -> List.for_all (fun v -> SS.mem v !bound_now) (atom_vars a)
    | Test (_, x, y) ->
      List.for_all (fun v -> SS.mem v !bound_now) (term_vars x @ term_vars y)
  in
  let attach lit node =
    match lit with
    | Test (op, x, y) ->
      let gx = getter x and gy = getter y in
      Ir.filter
        ~label:(lazy (Fmt.str "%a" pp_lit lit))
        ~pred:(fun row -> Dc_calculus.Eval.eval_cmp op (gx row) (gy row))
        node
    | Neg a ->
      let getters = List.map getter a.args in
      Ir.anti_join
        ~label:(lazy (Fmt.str "%a" pp_lit lit))
        ~src:(neg_source a)
        ~key:(fun row -> Tuple.of_list (List.map (fun g -> g row) getters))
        node
    | Pos _ -> assert false
  in
  let pending = ref constraints in
  let node = ref (Ir.seed ()) in
  let attach_ready () =
    let ready, still = List.partition lit_ready !pending in
    pending := still;
    List.iter (fun lit -> node := attach lit !node) ready
  in
  attach_ready ();
  List.iter
    (fun i ->
      let a = positives.(i) in
      let actions =
        List.mapi
          (fun p arg ->
            ( p,
              match arg with
              | Const c -> Key_const c
              | Binop _ ->
                error Unsupported
                  "compile_rule: computed term in body atom argument: %a"
                  pp_atom a
              | Var v ->
                if SS.mem v !bound_now then Key_slot (slot v)
                else (
                  match Hashtbl.find_opt slots v with
                  | Some s -> Check s (* repeated within this atom *)
                  | None -> Write (alloc v)) ))
          a.args
      in
      (* Compile a list of per-position actions into the bind closure run
         on each candidate tuple. *)
      let bind_of items =
        let acts = Array.of_list items in
        let m = Array.length acts in
        fun row t ->
          let rec go k =
            k = m
            ||
            match acts.(k) with
            | p, Write s ->
              row.(s) <- Tuple.get t p;
              go (k + 1)
            | p, Check s -> Value.equal row.(s) (Tuple.get t p) && go (k + 1)
            | p, Key_const c -> Value.equal c (Tuple.get t p) && go (k + 1)
            | p, Key_slot s -> Value.equal row.(s) (Tuple.get t p) && go (k + 1)
          in
          if go 0 then Some row else None
      in
      let alabel = lazy (Fmt.str "%a" pp_atom a) in
      (match source i a with
      | Dynamic mk ->
        (* Correlated consult: key positions degrade to checks (the
           generated extent has no access path), and [inst] rebuilds the
           atom's arguments with bound variables instantiated. *)
        let inst_items =
          List.map
            (fun arg ->
              match arg with
              | Const c -> fun (_ : row) -> Const c
              | Binop _ ->
                error Unsupported
                  "compile_rule: computed term in body atom argument: %a"
                  pp_atom a
              | Var v ->
                if SS.mem v !bound_now then begin
                  let s = slot v in
                  fun row -> Const row.(s)
                end
                else fun _ -> Var v)
            a.args
        in
        let inst row = List.map (fun f -> f row) inst_items in
        node :=
          Ir.correlated_scan ~label:alabel ~gen:(mk inst) ~bind:(bind_of actions)
            !node
      | Static src -> (
        let keys =
          List.filter_map
            (fun (p, act) ->
              match act with
              | Key_const c -> Some (p, fun (_ : row) -> c)
              | Key_slot s -> Some (p, fun row -> row.(s))
              | Write _ | Check _ -> None)
            actions
        in
        match keys with
        | [] -> node := Ir.scan ~label:alabel ~src ~bind:(bind_of actions) !node
        | keys ->
          let positions = List.map fst keys in
          let kgetters = List.map snd keys in
          let rest =
            List.filter
              (fun (_, act) ->
                match act with
                | Write _ | Check _ -> true
                | Key_const _ | Key_slot _ -> false)
              actions
          in
          node :=
            Ir.lookup ~label:alabel ~src ~positions
              ~key:(fun row -> List.map (fun g -> g row) kgetters)
              ~bind:(bind_of rest) !node));
      bound_now := SS.union !bound_now (SS.of_list (atom_vars a));
      attach_ready ())
    order;
  if !pending <> [] then
    error Unsafe_rule "compile_rule: unsafe rule (ungroundable constraint): %a"
      pp_rule rule;
  let head_getters = List.map getter rule.head.args in
  let tuple row = Tuple.of_list (List.map (fun g -> g row) head_getters) in
  let n_slots = !nslots in
  let init_ref = ref (fun () -> Array.make n_slots dummy) in
  let pipeline = Ir.project ~label ~init:(fun () -> !init_ref ()) ~tuple !node in
  { pipeline; n_slots; slot; set_init = (fun f -> init_ref := f) }

(* ------------------------------------------------------------------ *)
(* Shared delta-rule derivation.

   Every incremental evaluation scheme in this codebase — semi-naive
   rounds, insert propagation, DRed over-deletion, the counting pass —
   needs the same syntactic object: rule variants where one positive
   occurrence of a "moving" predicate reads a delta while the others read
   a full store.  The variants differ only in which named sources they
   consult, so they are derived here once and specialized per engine by
   the [names] function and the runtime context. *)

(* Positions (among the positive atoms, in program order) whose predicate
   satisfies [member] — the candidate delta positions of [rule]. *)
let delta_positions ~member rule =
  List.filter_map Fun.id
    (List.mapi
       (fun i (a : atom) -> if member a.pred then Some i else None)
       (List.filter_map
          (function
            | Pos a -> Some a
            | Neg _ | Test _ -> None)
          rule.body))

(* One variant of [rule]: positive atom [i] reads the named source
   [names i atom] (so the caller decides which occurrences see a delta,
   a post-update store, or the plain store), negations read the plain
   predicate name.  [delta_pos] marks the delta occurrence with a
   zero-cardinality hint so the join-order rewrite scans it first. *)
let compile_variant ?reorder ?bound ?delta_pos ~names ~label rule =
  let card =
    match delta_pos with
    | None -> fun _ _ -> None
    | Some d -> fun i _ -> if i = d then Some 0 else None
  in
  compile_rule ?reorder ?bound ~card
    ~source:(fun i a -> Static (Ir.Named (names i a)))
    ~neg_source:(fun (a : atom) -> Ir.Named a.pred)
    ~label rule
