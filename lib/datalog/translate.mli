(** Translations between constructor systems and Horn-clause programs —
    the §3.4 lemma ("the constructor mechanism is as powerful as
    function-free PROLOG without cut, fail, and negation") in both
    directions. *)

open Dc_relation
open Dc_calculus

exception Unsupported of string
(** Raised on constructs outside the Horn fragment (negation, universal
    quantification, computed targets, non-name arguments, ...). *)

(** Resolution context for the constructor → Horn direction. *)
type context = {
  lookup_constructor : string -> Defs.constructor_def option;
  schema_of : string -> Schema.t option;  (** global (EDB) relations *)
}

(** A constructor instance closed over actual names/values. *)
type instance = {
  inst_con : string;
  inst_base : string;
  inst_args : inst_arg list;
}

and inst_arg =
  | IA_rel of string
  | IA_scalar of Value.t

val instance_pred : instance -> string
(** Predicate name of an instance, e.g. ["ahead__Infront__Ontop"]. *)

val of_application_full :
  context ->
  Ast.range ->
  Syntax.program * string * (string * Dc_agg.Agg.spec) list
(** Translate an application [Base{c(args)}] over named relations: one IDB
    predicate per reachable instance, one rule per branch.  Returns the
    program, the query predicate, and the aggregate spec of every
    aggregated instance — feed the latter to [Seminaive.run ?aggs].
    Aggregated branch targets may carry computed ([Binop]) head terms.
    @raise Unsupported *)

val of_application : context -> Ast.range -> Syntax.program * string
(** Aggregate-free variant of {!of_application_full} for the engines that
    cannot evaluate aggregates; an aggregated system raises [Unsupported]
    instead of being silently evaluated as plain Horn clauses.
    @raise Unsupported *)

val to_constructors :
  (string -> Schema.t) ->
  Syntax.program ->
  Defs.constructor_def list * (string * Schema.t) list
(** [to_constructors schema_of program] builds one constructor per IDB
    predicate, each grown from an empty base relation named
    ["__bottom_<pred>"] (cf. the paper's end-of-§3.1 remark).  Returns the
    definitions and the bottom relations the caller must declare (empty).
    @raise Unsupported on negation or ground fact rules. *)
