(** Naive bottom-up evaluation: per stratum, iterate all rules against the
    whole current store until fixpoint.  The reference engine and the
    unoptimized baseline of experiment E3. *)

type stats = {
  mutable rounds : int;
  mutable derivations : int;  (** head tuples produced, with duplicates *)
  mutable round_log : (int * float) list;
      (** (new tuples, wall ms) per round, latest first; only populated
          when metrics are enabled ({!Dc_obs.Obs.on}) *)
}

val fresh_stats : unit -> stats

val run :
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  Syntax.program ->
  Facts.t ->
  Facts.t
(** Evaluate the (stratified) program over the EDB; returns the full store.
    [guard] bounds the evaluation (rounds tick its round budget, emitted
    rows its row budget/deadline).  [trace] records each stratum's
    compiled pipeline with whole-fixpoint operator counters (EXPLAIN).
    @raise Syntax.Unsafe_rule / Stratify.Not_stratifiable
    @raise Dc_guard.Guard.Exhausted when the guard trips *)

val query :
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  ?trace:Dc_exec.Ir.trace ->
  Syntax.program ->
  Facts.t ->
  string ->
  Facts.TS.t
(** All facts of one predicate after evaluation. *)
