(* Top-down SLD resolution: the "proof-oriented, tuple-at-a-time" evaluator
   the paper contrasts with set-oriented construction (§1, §4 closing
   paragraph).

   Faithful to 1985 PROLOG's declarative core for function-free programs:
   depth-first search, leftmost literal selection, clauses tried in program
   order, no memoization.  Consequences the experiments exhibit:
   - repeated subgoals are re-proved (exponential duplicated work on DAGs);
   - cyclic data makes the search space infinite — only a resource budget
     stops it, which is precisely the "problem of endless loops" the
     paper's positivity + fixpoint approach eliminates (§3.4).

   Negation as failure is provided for ground negative literals. *)

open Dc_relation
open Syntax

module Subst = Map.Make (String)
module Guard = Dc_guard.Guard

exception Budget_exhausted of string

type stats = {
  mutable resolution_steps : int; (* clause/fact resolution attempts *)
  mutable solutions : int;
  mutable max_goal_depth : int;
}

let fresh_stats () = { resolution_steps = 0; solutions = 0; max_goal_depth = 0 }

(* ------------------------------------------------------------------ *)
(* Unification (function-free: terms are variables or constants) *)

(* Computed (Binop) terms belong to the aggregate extension, which only
   the semi-naive engine evaluates. *)
let no_binop () =
  invalid_arg "Topdown: computed (Binop) terms require the semi-naive engine"

let rec walk subst t =
  match t with
  | Var v -> (
    match Subst.find_opt v subst with
    | Some t' -> walk subst t'
    | None -> t)
  | Const _ -> t
  | Binop _ -> no_binop ()

let unify_term subst a b =
  let a = walk subst a and b = walk subst b in
  match a, b with
  | Binop _, _ | _, Binop _ -> no_binop ()
  | Const x, Const y -> if Value.equal x y then Some subst else None
  | Var v, t | t, Var v -> Some (Subst.add v t subst)

let unify_args subst args1 args2 =
  let rec loop subst = function
    | [], [] -> Some subst
    | a :: r1, b :: r2 -> (
      match unify_term subst a b with
      | Some s -> loop s (r1, r2)
      | None -> None)
    | _ -> None
  in
  loop subst (args1, args2)

(* ------------------------------------------------------------------ *)
(* Standardizing apart: fresh variable names per clause use. *)

let rename_counter = ref 0

let rename_rule (r : rule) =
  incr rename_counter;
  let suffix = Fmt.str "#%d" !rename_counter in
  let rn = function
    | Var v -> Var (v ^ suffix)
    | Const _ as t -> t
    | Binop _ -> no_binop ()
  in
  let rn_atom a = { a with args = List.map rn a.args } in
  {
    head = rn_atom r.head;
    body =
      List.map
        (function
          | Pos a -> Pos (rn_atom a)
          | Neg a -> Neg (rn_atom a)
          | Test (op, x, y) -> Test (op, rn x, rn y))
        r.body;
  }

(* ------------------------------------------------------------------ *)
(* The resolution loop *)

type budget = {
  max_steps : int;
  max_depth : int;
}

let default_budget = { max_steps = 10_000_000; max_depth = 100_000 }

let step_label = lazy "sld resolution step"

let solve ?(budget = default_budget) ?(guard = Guard.none) ?stats
    (program : program) (edb : Facts.t) (goal : atom) =
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let solutions = ref [] in
  (* The step budget is a thin alias over a guard row budget: an internal
     guard enforces [budget.max_steps] under the legacy [Budget_exhausted]
     exception, while the caller's [guard] (deadline, cancellation, row
     budget) trips with the structured [Guard.Exhausted]. *)
  let ig = Guard.create ~rows:budget.max_steps () in
  let step () =
    stats.resolution_steps <- stats.resolution_steps + 1;
    (try Guard.tick ig step_label with
    | Guard.Exhausted (Guard.Rows_exhausted n, _) ->
      raise
        (Budget_exhausted
           (Fmt.str "SLD search exceeded %d resolution steps" n)));
    Guard.tick guard step_label
  in
  let rec prove subst depth goals k =
    if depth > stats.max_goal_depth then stats.max_goal_depth <- depth;
    if depth > budget.max_depth then
      raise
        (Budget_exhausted
           (Fmt.str "SLD search exceeded depth %d" budget.max_depth));
    match goals with
    | [] -> k subst
    | Test (op, x, y) :: rest -> (
      match walk subst x, walk subst y with
      | Const a, Const b ->
        if Dc_calculus.Eval.eval_cmp op a b then prove subst depth rest k
      | _ -> Engine.error Unsafe_rule "topdown: non-ground comparison")
    | Neg a :: rest ->
      (* negation as failure on ground literals *)
      let ground = { a with args = List.map (walk subst) a.args } in
      if not (is_ground_atom ground) then
        Engine.error Unsafe_rule "topdown: floundering (non-ground negation)";
      let found = ref false in
      (try prove subst depth [ Pos ground ] (fun _ -> found := true; raise Exit)
       with Exit -> ());
      if not !found then prove subst depth rest k
    | Pos a :: rest ->
      (* EDB facts first (as a PROLOG database would), with argument
         indexing on the positions already bound, then rules. *)
      let positions, key =
        List.fold_right
          (fun (i, arg) (ps, vs) ->
            match walk subst arg with
            | Const v -> (i :: ps, v :: vs)
            | Var _ -> (ps, vs)
            | Binop _ -> no_binop ())
          (List.mapi (fun i t -> (i, t)) a.args)
          ([], [])
      in
      let fact_candidates = Facts.lookup edb a.pred positions (Tuple.of_list key) in
      List.iter
        (fun tuple ->
          step ();
          match
            unify_args subst a.args
              (List.map (fun v -> Const v) (Tuple.to_list tuple))
          with
          | Some s -> prove s depth rest k
          | None -> ())
        fact_candidates;
      List.iter
        (fun rule ->
          if String.equal rule.head.pred a.pred then begin
            step ();
            let rule = rename_rule rule in
            match unify_args subst a.args rule.head.args with
            | Some s -> prove s (depth + 1) (rule.body @ rest) k
            | None -> ()
          end)
        program
  in
  prove Subst.empty 0
    [ Pos goal ]
    (fun subst ->
      let answer =
        List.map
          (fun t ->
            match walk subst t with
            | Const v -> v
            | Var _ -> Engine.error Internal "topdown: non-ground answer"
            | Binop _ -> no_binop ())
          goal.args
      in
      stats.solutions <- stats.solutions + 1;
      solutions := Tuple.of_list answer :: !solutions);
  List.sort_uniq Tuple.compare !solutions

(* All derivable tuples of [pred] with the given arity (open query). *)
let query ?budget ?guard ?stats program edb pred arity =
  let goal = atom pred (List.init arity (fun i -> Var (Fmt.str "Q%d" i))) in
  solve ?budget ?guard ?stats program edb goal
