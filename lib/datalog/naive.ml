(* Naive bottom-up evaluation: every stratum iterates all of its rules
   against the whole current store until nothing changes.  The reference
   engine: trivially correct, used as oracle for the others and as the
   unoptimized baseline in the iteration benchmarks.

   Each stratum compiles, once, to one pipeline per head predicate —
   Diff(Union of the rules' bodies), the Diff dropping already-known
   tuples — whose named sources are re-resolved against the grown store
   every round; the operator counters therefore accumulate whole-fixpoint
   totals.  The per-round sink set dedups the survivors, so no Distinct
   operator is needed.  New facts are collected per round and applied at
   round end, so the store read by the joins is immutable during a
   round. *)

open Syntax

module TS = Facts.TS
module Ir = Dc_exec.Ir
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs

type stats = {
  mutable rounds : int;
  mutable derivations : int; (* head tuples produced, duplicates included *)
  mutable round_log : (int * float) list;
      (* (new tuples, wall ms) per round, latest first; only populated
         when metrics are enabled *)
}

let fresh_stats () = { rounds = 0; derivations = 0; round_log = [] }

let m_rounds = lazy (Obs.Counter.make ~labels:[ ("engine", "naive") ] "dc_datalog_rounds_total")
let m_round_ms = lazy (Obs.Histogram.make ~labels:[ ("engine", "naive") ] "dc_datalog_round_ms")
let m_round_delta = lazy (Obs.Histogram.make ~labels:[ ("engine", "naive") ] "dc_datalog_round_delta")

let run ?(guard = Guard.none) ?stats ?trace (program : program) (edb : Facts.t) =
  check_safe program;
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let stratum = ref 0 in
  let eval_layer store layer =
    incr stratum;
    let pipelines =
      List.map
        (fun (pred, rules) ->
          let bodies =
            List.map
              (fun r ->
                (Engine.compile_rule
                   ~source:(fun _ (a : atom) -> Engine.Static (Ir.Named a.pred))
                   ~neg_source:(fun a -> Ir.Named a.pred)
                   ~label:(lazy (Fmt.str "%a" pp_rule r))
                   r)
                  .Engine.pipeline)
              rules
          in
          let u = Ir.union ~label:(lazy pred) bodies in
          (pred, Ir.diff ~label:(lazy pred) ~except:(Ir.Named pred) u, u))
        (Engine.group_by_head layer)
    in
    let current = ref store in
    let changed = ref true in
    while !changed do
      changed := false;
      Guard.round guard ~site:"datalog.round";
      stats.rounds <- stats.rounds + 1;
      let observing = Obs.on () in
      let t0 = if observing then Obs.now_ms () else 0. in
      let ctx = Engine.store_ctx !current in
      let news =
        List.map
          (fun (pred, pipe, u) ->
            let before = u.Ir.tc.Ir.rows in
            let fresh = ref TS.empty in
            Ir.run ~guard ctx pipe (fun t -> fresh := TS.add t !fresh);
            stats.derivations <- stats.derivations + u.Ir.tc.Ir.rows - before;
            (pred, !fresh))
          pipelines
      in
      if observing then begin
        let delta =
          List.fold_left (fun n (_, s) -> n + TS.cardinal s) 0 news
        in
        let dt = Obs.now_ms () -. t0 in
        stats.round_log <- (delta, dt) :: stats.round_log;
        Obs.Counter.inc (Lazy.force m_rounds);
        Obs.Histogram.observe (Lazy.force m_round_ms) dt;
        Obs.Histogram.observe (Lazy.force m_round_delta) (float_of_int delta)
      end;
      current :=
        List.fold_left
          (fun st (pred, set) ->
            if TS.is_empty set then st
            else begin
              changed := true;
              Facts.add_set st pred set
            end)
          !current news
    done;
    Option.iter
      (fun tr ->
        List.iter
          (fun (pred, pipe, _) ->
            Ir.Trace.record tr
              ~label:(Fmt.str "stratum %d: %s" !stratum pred)
              pipe)
          pipelines)
      trace;
    !current
  in
  List.fold_left eval_layer edb (Stratify.layers program)

(* Convenience: all facts of one predicate after evaluation. *)
let query ?guard ?stats ?trace program edb pred =
  Facts.find (run ?guard ?stats ?trace program edb) pred
