(** Magic-sets transformation — the general form of the "capture rules"
    the paper's §4 points at ([Ullm 84]) for propagating query constants
    into recursive definitions.  Positive safe programs, left-to-right
    sideways information passing. *)

exception Unsupported of string

type adornment = bool list
(** Per-argument: [true] = bound. *)

val adornment_string : adornment -> string
(** e.g. ["bf"]. *)

val adorned_name : string -> adornment -> string
val magic_name : string -> adornment -> string

val transform : Syntax.program -> Syntax.atom -> Syntax.program * string
(** [transform program query] adorns the program for the query's binding
    pattern and adds magic predicates and the seed fact.  Returns the
    transformed program and the adorned query predicate name.
    @raise Unsupported on negation or non-IDB queries. *)

val answer :
  ?guard:Dc_guard.Guard.t ->
  ?stats:Seminaive.stats ->
  ?trace:Dc_exec.Ir.trace ->
  Syntax.program ->
  Facts.t ->
  Syntax.atom ->
  Facts.TS.t
(** Evaluate the query through the transform with semi-naive evaluation;
    returns the tuples of the original predicate matching the query
    constants.  [guard] is passed through to the semi-naive engine.
    @raise Dc_guard.Guard.Exhausted when the guard trips *)
