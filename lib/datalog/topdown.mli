(** Top-down SLD resolution — the "proof-oriented, tuple-at-a-time"
    evaluator the paper contrasts with set-oriented construction (§1, §4).

    Faithful to 1985 PROLOG's declarative core for function-free programs:
    depth-first search, leftmost selection, clauses in program order,
    argument indexing on bound positions, no memoization.  Hence: repeated
    subgoals are re-proved, and cyclic data makes the search infinite —
    only the resource budget stops it (the "endless loops" the paper's
    approach eliminates, §3.4).  Negation as failure on ground literals. *)

open Dc_relation

exception Budget_exhausted of string

type stats = {
  mutable resolution_steps : int;  (** clause/fact resolution attempts *)
  mutable solutions : int;
  mutable max_goal_depth : int;
}

val fresh_stats : unit -> stats

type budget = {
  max_steps : int;
  max_depth : int;
}

val default_budget : budget

val solve :
  ?budget:budget ->
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  Syntax.program ->
  Facts.t ->
  Syntax.atom ->
  Tuple.t list
(** All ground instances of the goal atom derivable from program + EDB,
    sorted and deduplicated.  [budget] is enforced as a guard row budget
    under the legacy exception; [guard] adds caller-side limits
    (deadline, cancellation, row budget) with the structured error.
    @raise Budget_exhausted when [budget] trips
    @raise Dc_guard.Guard.Exhausted when [guard] trips *)

val query :
  ?budget:budget ->
  ?guard:Dc_guard.Guard.t ->
  ?stats:stats ->
  Syntax.program ->
  Facts.t ->
  string ->
  int ->
  Tuple.t list
(** Open query: all derivable tuples of a predicate of the given arity. *)
