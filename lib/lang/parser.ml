(* Recursive-descent parser for the DBPL surface language.

   The concrete syntax follows the paper's listings:

     TYPE infrontrel = RELATION front, back OF RECORD front, back: parttype END;
     VAR Infront: infrontrel;
     SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
     BEGIN EACH r IN Rel: r.front = Obj END hidden_by;
     CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
     BEGIN EACH r IN Rel: TRUE,
           <r.front, ah.tail> OF EACH r IN Rel, EACH ah IN Rel{ahead(Ontop)}:
             r.back = ah.head
     END ahead;

   plus a small command layer: INSERT/DELETE ... VALUES, assignment
   (Rel := range, Rel[sel(args)] := range), QUERY, PRINT, EXPLAIN. *)

open Surface

exception Parse_error of string

type state = {
  tokens : Token.located array;
  mutable cursor : int;
}

let error st fmt =
  let { Token.tok; line; col } = st.tokens.(st.cursor) in
  Fmt.kstr
    (fun s ->
      raise
        (Parse_error (Fmt.str "%d:%d: %s (at '%s')" line col s (Token.to_string tok))))
    fmt

let peek st = st.tokens.(st.cursor).Token.tok

let peek2 st =
  if st.cursor + 1 < Array.length st.tokens then
    st.tokens.(st.cursor + 1).Token.tok
  else Token.Eof

let advance st = st.cursor <- st.cursor + 1

let eat st tok =
  if peek st = tok then advance st
  else error st "expected '%s'" (Token.to_string tok)

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Token.Ident s ->
    advance st;
    s
  | _ -> error st "expected an identifier"

(* ------------------------------------------------------------------ *)
(* Types *)

let int_literal st =
  let neg = accept st Token.Minus in
  match peek st with
  | Token.Int_lit i ->
    advance st;
    if neg then -i else i
  | _ -> error st "expected an integer literal"

let scalar_type st =
  match peek st with
  | Token.Kw_range ->
    (* RANGE lo..hi — the 2.1 refined integer subtype *)
    advance st;
    let lo = int_literal st in
    eat st Token.Dot;
    eat st Token.Dot;
    let hi = int_literal st in
    if lo > hi then error st "empty RANGE %d..%d" lo hi;
    S_range (lo, hi)
  | Token.Kw_integer ->
    advance st;
    S_integer
  | Token.Kw_string ->
    advance st;
    S_string
  | Token.Kw_boolean ->
    advance st;
    S_boolean
  | Token.Kw_real ->
    advance st;
    S_real
  | Token.Ident s ->
    advance st;
    S_named s
  | _ -> error st "expected a type"

let ident_list st =
  let rec loop acc =
    let id = ident st in
    if accept st Token.Comma then loop (id :: acc) else List.rev (id :: acc)
  in
  loop []

(* RELATION [key attrs] OF RECORD fields END [KEY attrs] *)
let relation_type st =
  eat st Token.Kw_relation;
  let key_front =
    match peek st with
    | Token.Kw_of -> []
    | _ -> ident_list st
  in
  eat st Token.Kw_of;
  eat st Token.Kw_record;
  let rec fields acc =
    let names = ident_list st in
    eat st Token.Colon;
    let ty = scalar_type st in
    let acc = (names, ty) :: acc in
    if accept st Token.Semi then
      match peek st with
      | Token.Kw_end -> List.rev acc
      | _ -> fields acc
    else List.rev acc
  in
  let fs = fields [] in
  eat st Token.Kw_end;
  let key_back = if accept st Token.Kw_key then ident_list st else [] in
  T_relation { key = key_front @ key_back; fields = fs }

let type_expr st =
  match peek st with
  | Token.Kw_relation -> relation_type st
  | _ -> T_scalar (scalar_type st)

(* (name: type; name: type) *)
let params st =
  if accept st Token.Lparen then begin
    if accept st Token.Rparen then []
    else begin
      let rec loop acc =
        let p_name = ident st in
        eat st Token.Colon;
        let p_type = scalar_type st in
        let acc = { p_name; p_type } :: acc in
        if accept st Token.Semi || accept st Token.Comma then loop acc
        else begin
          eat st Token.Rparen;
          List.rev acc
        end
      in
      loop []
    end
  end
  else []

(* ------------------------------------------------------------------ *)
(* Terms *)

let rec term st =
  (* left-associative: 10 - 3 - 2 = (10 - 3) - 2 *)
  let rec loop lhs =
    match peek st with
    | Token.Plus ->
      advance st;
      loop (T_binop (Dc_calculus.Ast.Add, lhs, term_factor st))
    | Token.Minus ->
      advance st;
      loop (T_binop (Dc_calculus.Ast.Sub, lhs, term_factor st))
    | _ -> lhs
  in
  loop (term_factor st)

and term_factor st =
  let rec loop lhs =
    match peek st with
    | Token.Star ->
      advance st;
      loop (T_binop (Dc_calculus.Ast.Mul, lhs, term_primary st))
    | _ -> lhs
  in
  loop (term_primary st)

and term_primary st =
  match peek st with
  | Token.Int_lit i ->
    advance st;
    T_int i
  | Token.Float_lit f ->
    advance st;
    T_float f
  | Token.String_lit s ->
    advance st;
    T_string s
  | Token.Minus ->
    advance st;
    (match term_primary st with
    | T_int i -> T_int (-i)
    | T_float f -> T_float (-.f)
    | _ -> error st "expected a numeric literal after unary minus")
  | Token.Lparen ->
    advance st;
    let t = term st in
    eat st Token.Rparen;
    t
  | Token.Ident v when peek2 st = Token.Dot ->
    advance st;
    advance st;
    let a = ident st in
    T_field (v, a)
  | Token.Ident v ->
    advance st;
    T_name v
  | _ -> error st "expected a term"

(* ------------------------------------------------------------------ *)
(* Ranges *)

let rec range st =
  let base =
    match peek st with
    | Token.Ident n ->
      advance st;
      R_name n
    | Token.Lbrace ->
      advance st;
      let bs = branches st in
      eat st Token.Rbrace;
      R_comp bs
    | _ -> error st "expected a relation name or a comprehension"
  in
  range_suffixes st base

and range_suffixes st base =
  match peek st with
  | Token.Lbracket ->
    advance st;
    let s = ident st in
    let args = arg_list st in
    eat st Token.Rbracket;
    range_suffixes st (R_select (base, s, args))
  | Token.Lbrace -> (
    (* '{' starts a constructor application suffix only when followed by an
       identifier; '{EACH'/'{<' would be a (non-suffix) comprehension and
       cannot appear in suffix position. *)
    match peek2 st with
    | Token.Ident _ ->
      advance st;
      let c = ident st in
      let args = arg_list st in
      eat st Token.Rbrace;
      range_suffixes st (R_construct (base, c, args))
    | _ -> base)
  | _ -> base

and arg_list st =
  if accept st Token.Lparen then begin
    if accept st Token.Rparen then []
    else begin
      let rec loop acc =
        let a =
          match peek st with
          | Token.Ident n
            when peek2 st = Token.Comma || peek2 st = Token.Rparen
                 || peek2 st = Token.Lbrace || peek2 st = Token.Lbracket -> (
            (* a bare name (possibly with application suffixes): could be a
               relation or a scalar parameter — elaboration decides *)
            match peek2 st with
            | Token.Lbrace | Token.Lbracket ->
              advance st;
              A_range (range_suffixes st (R_name n))
            | _ ->
              advance st;
              A_name n)
          | _ -> A_term (term st)
        in
        let acc = a :: acc in
        if accept st Token.Comma then loop acc
        else begin
          eat st Token.Rparen;
          List.rev acc
        end
      in
      loop []
    end
  end
  else []

(* ------------------------------------------------------------------ *)
(* Formulas *)

and formula st =
  let lhs = formula_and st in
  if accept st Token.Kw_or then F_or (lhs, formula st) else lhs

and formula_and st =
  let lhs = formula_atom st in
  if accept st Token.Kw_and then F_and (lhs, formula_and st) else lhs

and formula_atom st =
  match peek st with
  | Token.Kw_true ->
    advance st;
    F_true
  | Token.Kw_false ->
    advance st;
    F_false
  | Token.Kw_not ->
    advance st;
    F_not (formula_atom st)
  | Token.Kw_some | Token.Kw_all ->
    let universal = peek st = Token.Kw_all in
    advance st;
    let vars = ident_list st in
    eat st Token.Kw_in;
    let r = range st in
    eat st Token.Lparen;
    let body = formula st in
    eat st Token.Rparen;
    let mk v acc = if universal then F_all (v, r, acc) else F_some (v, r, acc) in
    List.fold_right mk vars body
  | Token.Lparen ->
    advance st;
    let f = formula st in
    eat st Token.Rparen;
    f
  | Token.Lt ->
    (* <t1, ..., tk> IN range *)
    advance st;
    let rec terms acc =
      let t = term st in
      if accept st Token.Comma then terms (t :: acc) else List.rev (t :: acc)
    in
    let ts = terms [] in
    eat st Token.Gt;
    eat st Token.Kw_in;
    F_member (ts, range st)
  | Token.Ident v when peek2 st = Token.Kw_in ->
    (* r IN range *)
    advance st;
    advance st;
    F_in (v, range st)
  | _ -> (
    let lhs = term st in
    let op =
      match peek st with
      | Token.Eq -> Dc_calculus.Ast.Eq
      | Token.Ne -> Dc_calculus.Ast.Ne
      | Token.Lt -> Dc_calculus.Ast.Lt
      | Token.Le -> Dc_calculus.Ast.Le
      | Token.Gt -> Dc_calculus.Ast.Gt
      | Token.Ge -> Dc_calculus.Ast.Ge
      | _ -> error st "expected a comparison operator"
    in
    advance st;
    F_cmp (op, lhs, term st))

(* ------------------------------------------------------------------ *)
(* Branches *)

and branch st =
  (* MIN/MAX/COUNT/SUM are contextual keywords: they prefix a target term
     only when followed by something that starts a term (so [MIN.w] is
     still a field of a variable named MIN, and [<MIN>] a bare name). *)
  let agg = ref None in
  let starts_term = function
    | Token.Ident _ | Token.Int_lit _ | Token.Float_lit _
    | Token.String_lit _ | Token.Lparen | Token.Minus ->
      true
    | _ -> false
  in
  let target =
    if peek st = Token.Lt then begin
      advance st;
      let rec terms i acc =
        (match peek st with
        | Token.Ident s when starts_term (peek2 st) -> (
          match Dc_agg.Agg.op_of_name s with
          | Some op ->
            if !agg <> None then
              error st "at most one aggregated target term per branch";
            advance st;
            agg := Some (op, i)
          | None -> ())
        | _ -> ());
        let t = term st in
        if accept st Token.Comma then terms (i + 1) (t :: acc)
        else List.rev (t :: acc)
      in
      let ts = terms 0 [] in
      eat st Token.Gt;
      eat st Token.Kw_of;
      ts
    end
    else []
  in
  let rec binders acc =
    eat st Token.Kw_each;
    let v = ident st in
    eat st Token.Kw_in;
    let r = range st in
    let acc = (v, r) :: acc in
    if peek st = Token.Comma && peek2 st = Token.Kw_each then begin
      advance st;
      binders acc
    end
    else List.rev acc
  in
  let bs = binders [] in
  eat st Token.Colon;
  let where = formula st in
  (* GROUP BY t1, t2 — the term list stops at a comma that begins the
     next branch (EACH ... or <...> OF ...). *)
  let group =
    match (peek st, peek2 st) with
    | Token.Ident "GROUP", Token.Ident "BY" ->
      advance st;
      advance st;
      let rec terms acc =
        let t = term st in
        let acc = t :: acc in
        match (peek st, peek2 st) with
        | Token.Comma, (Token.Kw_each | Token.Lt) -> List.rev acc
        | Token.Comma, _ ->
          advance st;
          terms acc
        | _ -> List.rev acc
      in
      terms []
    | _ -> []
  in
  if !agg = None && group <> [] then
    error st "GROUP BY needs an aggregated (MIN/MAX/COUNT/SUM) target term";
  { b_target = target; b_agg = !agg; b_group = group; b_binders = bs; b_where = where }

and branches st =
  let rec loop acc =
    let b = branch st in
    if accept st Token.Comma then loop (b :: acc) else List.rev (b :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Declarations and statements *)

let tuple_literals st =
  let rec tuples acc =
    eat st Token.Lparen;
    let rec terms acc' =
      let t = term st in
      if accept st Token.Comma then terms (t :: acc') else List.rev (t :: acc')
    in
    let row = terms [] in
    eat st Token.Rparen;
    let acc = row :: acc in
    if accept st Token.Comma then tuples acc else List.rev acc
  in
  tuples []

let decl st =
  match peek st with
  | Token.Kw_type ->
    advance st;
    let name = ident st in
    eat st Token.Eq;
    let ty = type_expr st in
    eat st Token.Semi;
    D_type (name, ty)
  | Token.Kw_var ->
    advance st;
    let name = ident st in
    eat st Token.Colon;
    let tyname = ident st in
    eat st Token.Semi;
    D_var (name, tyname)
  | Token.Kw_selector ->
    advance st;
    let s_name = ident st in
    let s_params = params st in
    eat st Token.Kw_for;
    let s_formal = ident st in
    eat st Token.Colon;
    let s_formal_type = ident st in
    eat st Token.Semi;
    eat st Token.Kw_begin;
    eat st Token.Kw_each;
    let s_var = ident st in
    eat st Token.Kw_in;
    let s_range = ident st in
    eat st Token.Colon;
    let s_pred = formula st in
    eat st Token.Kw_end;
    let closing = ident st in
    if not (String.equal closing s_name) then
      error st "END %s does not match SELECTOR %s" closing s_name;
    eat st Token.Semi;
    D_selector { s_name; s_params; s_formal; s_formal_type; s_var; s_range; s_pred }
  | Token.Kw_constructor ->
    advance st;
    let c_name = ident st in
    eat st Token.Kw_for;
    let c_formal = ident st in
    eat st Token.Colon;
    let c_formal_type = ident st in
    let c_params = params st in
    eat st Token.Colon;
    let c_result_type = ident st in
    eat st Token.Semi;
    eat st Token.Kw_begin;
    let c_body = branches st in
    eat st Token.Kw_end;
    let closing = ident st in
    if not (String.equal closing c_name) then
      error st "END %s does not match CONSTRUCTOR %s" closing c_name;
    eat st Token.Semi;
    D_constructor { c_name; c_formal; c_formal_type; c_params; c_result_type; c_body }
  | Token.Kw_insert ->
    advance st;
    let name = ident st in
    eat st Token.Kw_values;
    let rows = tuple_literals st in
    eat st Token.Semi;
    D_insert (name, rows)
  | Token.Kw_delete ->
    advance st;
    let name = ident st in
    eat st Token.Kw_values;
    let rows = tuple_literals st in
    eat st Token.Semi;
    D_delete (name, rows)
  | Token.Kw_query ->
    advance st;
    let r = range st in
    eat st Token.Semi;
    D_query r
  | Token.Kw_print ->
    advance st;
    let r = range st in
    eat st Token.Semi;
    D_print r
  | Token.Kw_explain -> (
    advance st;
    let analyze = accept st Token.Kw_analyze in
    match peek st with
    | Token.Kw_insert | Token.Kw_delete ->
      (* EXPLAIN [ANALYZE] INSERT/DELETE Rel VALUES (..): run the update
         and show the view-maintenance pipeline *)
      let eu_delete = peek st = Token.Kw_delete in
      advance st;
      let eu_rel = ident st in
      eat st Token.Kw_values;
      let eu_rows = tuple_literals st in
      eat st Token.Semi;
      D_explain_update { eu_analyze = analyze; eu_delete; eu_rel; eu_rows }
    | _ ->
      let r = range st in
      eat st Token.Semi;
      if analyze then D_explain_analyze r else D_explain r)
  | Token.Kw_materialize ->
    advance st;
    let r = range st in
    eat st Token.Semi;
    D_materialize r
  | Token.Kw_show -> (
    advance st;
    match peek st with
    | Token.Kw_snapshot ->
      advance st;
      eat st Token.Semi;
      D_show_snapshot
    | _ ->
      eat st Token.Kw_metrics;
      eat st Token.Semi;
      D_show_metrics)
  | Token.Kw_begin when peek2 st = Token.Semi ->
    (* BEGIN; — a read-only snapshot transaction (BEGIN inside
       selector/constructor declarations is always followed by more) *)
    advance st;
    eat st Token.Semi;
    D_begin
  | Token.Kw_commit ->
    advance st;
    eat st Token.Semi;
    D_commit
  | Token.Kw_set when peek2 st = Token.Ident "MAINTAIN" ->
    (* SET MAINTAIN ON | OFF *)
    advance st;
    advance st;
    let on =
      match ident st with
      | "ON" -> true
      | "OFF" -> false
      | s -> error st "expected ON or OFF, got %s" s
    in
    eat st Token.Semi;
    D_maintain on
  | Token.Kw_set when peek2 st = Token.Ident "PARALLEL" ->
    (* SET PARALLEL n | DEFAULT *)
    advance st;
    advance st;
    let d =
      match peek st with
      | Token.Ident "DEFAULT" ->
        advance st;
        None
      | _ ->
        let n = int_literal st in
        if n < 1 then error st "parallel degree must be at least 1";
        Some n
    in
    eat st Token.Semi;
    D_parallel d
  | Token.Kw_set ->
    (* SET LIMIT ROWS n, ROUNDS n, MILLIS n;   or   SET LIMIT NONE; *)
    advance st;
    eat st Token.Kw_limit;
    let kind st =
      match ident st with
      | "ROWS" -> L_rows
      | "ROUNDS" -> L_rounds
      | "MILLIS" -> L_millis
      | k -> error st "expected ROWS, ROUNDS, MILLIS or NONE, got %s" k
    in
    let items =
      match peek st with
      | Token.Ident "NONE" ->
        advance st;
        []
      | _ ->
        let rec loop acc =
          let k = kind st in
          let n = int_literal st in
          if n < 0 then error st "limit value must be non-negative";
          let acc = (k, n) :: acc in
          if accept st Token.Comma then loop acc else List.rev acc
        in
        loop []
    in
    eat st Token.Semi;
    D_limit items
  | Token.Ident _ -> (
    let name = ident st in
    match peek st with
    | Token.Assign ->
      advance st;
      let r = range st in
      eat st Token.Semi;
      D_assign (name, None, [], r)
    | Token.Lbracket ->
      advance st;
      let sel = ident st in
      let args = arg_list st in
      eat st Token.Rbracket;
      eat st Token.Assign;
      let r = range st in
      eat st Token.Semi;
      D_assign (name, Some sel, args, r)
    | _ -> error st "expected ':=' or '[' after identifier")
  | _ -> error st "expected a declaration or statement"

let program st =
  let rec loop acc =
    if peek st = Token.Eof then List.rev acc else loop (decl st :: acc)
  in
  loop []

let parse src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  program { tokens; cursor = 0 }

let parse_range src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; cursor = 0 } in
  let r = range st in
  if peek st <> Token.Eof then error st "trailing input after range";
  r
