(** Tokens of the DBPL surface language (keywords upper case, MODULA-2
    style, following the paper's listings). *)

type t =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Kw_type
  | Kw_var
  | Kw_selector
  | Kw_constructor
  | Kw_for
  | Kw_begin
  | Kw_end
  | Kw_each
  | Kw_in
  | Kw_some
  | Kw_all
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_true
  | Kw_false
  | Kw_relation
  | Kw_of
  | Kw_record
  | Kw_key
  | Kw_integer
  | Kw_string
  | Kw_boolean
  | Kw_real
  | Kw_range
  | Kw_insert
  | Kw_delete
  | Kw_values
  | Kw_query
  | Kw_print
  | Kw_explain
  | Kw_analyze
  | Kw_set
  | Kw_limit
  | Kw_show
  | Kw_metrics
  | Kw_materialize
  | Kw_commit
  | Kw_snapshot
  | Semi
  | Colon
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne  (** [#], as in the paper *)
  | Assign  (** [:=] *)
  | Plus
  | Minus
  | Star
  | Eof

val keywords : (string * t) list
(** Keyword spelling table. *)

val to_string : t -> string

(** A token with its source position (1-based line and column). *)
type located = {
  tok : t;
  line : int;
  col : int;
}
