(* Elaboration: resolve surface type names, lower the surface syntax onto
   the calculus AST of [Dc_calculus], and execute declarations against a
   [Dc_core.Database].

   This plays the front half of the DBPL compiler: after elaboration,
   everything is checked by [Typecheck] (via [Database]) and evaluated by
   the fixpoint machinery; EXPLAIN goes through [Dc_compile.Planner]. *)

open Dc_relation
open Dc_calculus
open Dc_core
open Surface
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Ivm = Dc_ivm.Ivm

exception Elab_error of string

let elab_error fmt = Fmt.kstr (fun s -> raise (Elab_error s)) fmt

type env = {
  db : Database.t;
  mutable scalar_types : (string * (Value.ty * Schema.refinement)) list;
  mutable relation_types : (string * Schema.t) list;
  buffer : Buffer.t; (* QUERY/PRINT/EXPLAIN output *)
  mutable pinned : Snapshot.t option;
      (* BEGIN ... COMMIT read-only transaction: while pinned, every
         QUERY/PRINT observes this one published version *)
}

let create db =
  (* aggregated constructor systems evaluate through the compiled
     datalog pipeline; every database driven by this front end gets the
     bridge (covers dbpl run/serve, catalog reload, WAL recovery) *)
  Dc_compile.Agg_eval.install db;
  {
    db;
    scalar_types = [];
    relation_types = [];
    buffer = Buffer.create 256;
    pinned = None;
  }

let output env fmt = Fmt.kstr (fun s -> Buffer.add_string env.buffer s) fmt
let pinned env = env.pinned

(* Return and clear the accumulated output, so each [run] (or each
   server-session statement) yields only its own QUERY/EXPLAIN text. *)
let drain_output env =
  let out = Buffer.contents env.buffer in
  Buffer.clear env.buffer;
  out

(* Per-statement snapshot isolation for server sessions: pin [snap] for
   the duration of [f] unless an explicit BEGIN already pinned one (the
   open transaction wins). *)
let with_snapshot env snap f =
  match env.pinned with
  | Some _ -> f ()
  | None ->
    env.pinned <- Some snap;
    Fun.protect ~finally:(fun () -> env.pinned <- None) f

(* ------------------------------------------------------------------ *)
(* Types *)

(* A surface scalar resolves to a value type plus the 2.1 domain
   refinement it carries (RANGE subtypes, possibly through aliases). *)
let resolve_scalar env = function
  | S_integer -> (Value.TInt, Schema.No_refinement)
  | S_string -> (Value.TStr, Schema.No_refinement)
  | S_boolean -> (Value.TBool, Schema.No_refinement)
  | S_real -> (Value.TFloat, Schema.No_refinement)
  | S_range (lo, hi) -> (Value.TInt, Schema.Int_range (lo, hi))
  | S_named n -> (
    match List.assoc_opt n env.scalar_types with
    | Some pair -> pair
    | None -> elab_error "unknown scalar type %s" n)

let resolve_relation_type env n =
  match List.assoc_opt n env.relation_types with
  | Some s -> s
  | None -> elab_error "unknown relation type %s" n

let elaborate_type env name = function
  | T_scalar s ->
    env.scalar_types <- (name, resolve_scalar env s) :: env.scalar_types
  | T_relation { key; fields } ->
    let resolved =
      List.concat_map
        (fun (names, ty) ->
          let ty, refine = resolve_scalar env ty in
          List.map (fun n -> (n, ty, refine)) names)
        fields
    in
    let attrs = List.map (fun (n, ty, _) -> (n, ty)) resolved in
    let refinements =
      List.filter_map
        (fun (n, _, r) -> if r = Schema.No_refinement then None else Some (n, r))
        resolved
    in
    let key = if key = [] then None else Some key in
    env.relation_types <-
      (name, Schema.make ?key ~refinements attrs) :: env.relation_types

(* Parameter types: relation type name wins, then scalar. *)
let elaborate_param env { p_name; p_type } =
  match p_type with
  | S_named n when List.mem_assoc n env.relation_types ->
    Defs.Rel_param (p_name, resolve_relation_type env n)
  | s -> Defs.Scalar_param (p_name, fst (resolve_scalar env s))

(* ------------------------------------------------------------------ *)
(* Scopes: names usable as relations vs. scalar parameters while lowering
   ranges inside definitions. *)

type scope = {
  rel_names : string list; (* formal + relation parameters *)
  scalar_names : string list; (* scalar parameters *)
}

let empty_scope = { rel_names = []; scalar_names = [] }

let rec lower_term env scope = function
  | T_int i -> Ast.Const (Value.Int i)
  | T_float f -> Ast.Const (Value.Float f)
  | T_string s -> Ast.Const (Value.str s)
  | T_field (v, a) -> Ast.Field (v, a)
  | T_name n ->
    if List.mem n scope.scalar_names then Ast.Param n
    else elab_error "unknown name %s (not a scalar parameter)" n
  | T_binop (op, a, b) ->
    Ast.Binop (op, lower_term env scope a, lower_term env scope b)

let rec lower_formula env scope = function
  | F_true -> Ast.True
  | F_false -> Ast.False
  | F_cmp (op, a, b) ->
    Ast.Cmp (op, lower_term env scope a, lower_term env scope b)
  | F_not f -> Ast.Not (lower_formula env scope f)
  | F_and (a, b) -> Ast.And (lower_formula env scope a, lower_formula env scope b)
  | F_or (a, b) -> Ast.Or (lower_formula env scope a, lower_formula env scope b)
  | F_some (v, r, f) ->
    Ast.Some_in (v, lower_range env scope r, lower_formula env scope f)
  | F_all (v, r, f) ->
    Ast.All_in (v, lower_range env scope r, lower_formula env scope f)
  | F_in (v, r) -> Ast.In_rel (v, lower_range env scope r)
  | F_member (ts, r) ->
    Ast.Member (List.map (lower_term env scope) ts, lower_range env scope r)

and lower_range env scope = function
  | R_name n -> Ast.Rel n
  | R_select (r, s, args) ->
    Ast.Select (lower_range env scope r, s, List.map (lower_arg env scope) args)
  | R_construct (r, c, args) ->
    Ast.Construct (lower_range env scope r, c, List.map (lower_arg env scope) args)
  | R_comp bs ->
    List.iter
      (fun (b : branch) ->
        if b.b_agg <> None then
          elab_error
            "aggregates (MIN/MAX/COUNT/SUM) are only allowed in constructor \
             branches, not in a comprehension")
      bs;
    Ast.Comp (List.map (lower_branch env scope) bs)

and lower_arg env scope = function
  | A_term t -> Ast.Arg_scalar (lower_term env scope t)
  | A_range r -> Ast.Arg_range (lower_range env scope r)
  | A_name n ->
    (* relation name (global, formal, or parameter) wins over scalar *)
    let is_rel =
      List.mem n scope.rel_names
      || List.exists (String.equal n) (Database.relation_names env.db)
    in
    if is_rel then Ast.Arg_range (Ast.Rel n)
    else if List.mem n scope.scalar_names then Ast.Arg_scalar (Ast.Param n)
    else elab_error "unknown argument name %s" n

and lower_branch env scope (b : branch) =
  {
    Ast.binders = List.map (fun (v, r) -> (v, lower_range env scope r)) b.b_binders;
    target = List.map (lower_term env scope) b.b_target;
    where = lower_formula env scope b.b_where;
  }

let scope_of_params params =
  List.fold_left
    (fun scope p ->
      match p with
      | Defs.Rel_param (n, _) -> { scope with rel_names = n :: scope.rel_names }
      | Defs.Scalar_param (n, _) ->
        { scope with scalar_names = n :: scope.scalar_names })
    empty_scope params

(* ------------------------------------------------------------------ *)
(* Constant rows for INSERT/DELETE *)

let constant env = function
  | T_int i -> Value.Int i
  | T_float f -> Value.Float f
  | T_string s -> Value.str s
  | t ->
    ignore env;
    elab_error "INSERT/DELETE rows must be constants (got %s)"
      (match t with
      | T_field (v, a) -> v ^ "." ^ a
      | T_name n -> n
      | _ -> "expression")

let row env ts = Tuple.of_list (List.map (constant env) ts)

(* ------------------------------------------------------------------ *)
(* Declaration execution *)

(* A surface term rendered for error messages. *)
let rec surface_term_to_string = function
  | T_int i -> string_of_int i
  | T_float f -> string_of_float f
  | T_string s -> Fmt.str "%S" s
  | T_field (v, a) -> v ^ "." ^ a
  | T_name n -> n
  | T_binop (op, a, b) ->
    Fmt.str "(%s %a %s)" (surface_term_to_string a) Ast.pp_binop op
      (surface_term_to_string b)

(* The aggregate spec a constructor's branches declare: every targeted
   branch must carry the same operator, the same aggregated position, and
   the same grouping; the GROUP BY terms must be target terms.  Identity
   branches pass raw tuples through and are always allowed.  Positions
   index the raw target tuple — [Typecheck.aggregated_schema] turns them
   into the result schema, [Seminaive] into per-group accumulators. *)
let spec_of_branches c_name (body : branch list) =
  let spec_of (b : branch) =
    match b.b_agg with
    | None ->
      if b.b_group <> [] then
        elab_error "constructor %s: GROUP BY needs an aggregated target" c_name;
      None
    | Some (op, value) ->
      let position t =
        let rec find i = function
          | [] ->
            elab_error
              "constructor %s: GROUP BY term %s is not one of the branch's \
               target terms"
              c_name (surface_term_to_string t)
          | t' :: rest -> if t' = t then i else find (i + 1) rest
        in
        find 0 b.b_target
      in
      let group =
        match b.b_group with
        | [] ->
          (* default grouping: every non-aggregated target, in order *)
          List.filteri (fun i _ -> i <> value) b.b_target
          |> List.mapi (fun i _ -> if i < value then i else i + 1)
        | g -> List.map position g
      in
      if List.mem value group then
        elab_error
          "constructor %s: the aggregated term cannot also be grouped on"
          c_name;
      Some { Dc_agg.Agg.group; value; op }
  in
  let specs = List.filter_map spec_of body in
  match specs with
  | [] -> None
  | s :: rest ->
    if not (List.for_all (( = ) s) rest) then
      elab_error
        "constructor %s: every aggregated branch must use the same operator, \
         aggregated position, and grouping"
        c_name;
    List.iter
      (fun (b : branch) ->
        if b.b_agg = None && b.b_target <> [] then
          elab_error
            "constructor %s: mixes aggregated and plain targeted branches \
             (mark the target with %s or drop the aggregate)"
            c_name
            (Dc_agg.Agg.op_name s.Dc_agg.Agg.op))
      body;
    Some s

let lower_constructor env
    ({ c_name; c_formal; c_formal_type; c_params; c_result_type; c_body } :
      constructor_decl) =
  let params = List.map (elaborate_param env) c_params in
  let scope =
    let s = scope_of_params params in
    { s with rel_names = c_formal :: s.rel_names }
  in
  {
    Defs.con_name = c_name;
    con_formal = c_formal;
    con_formal_schema = resolve_relation_type env c_formal_type;
    con_params = params;
    con_result = resolve_relation_type env c_result_type;
    con_agg = spec_of_branches c_name c_body;
    con_body = List.map (lower_branch env scope) c_body;
  }

(* Statements allowed inside a BEGIN ... COMMIT read-only transaction:
   everything that doesn't mutate the shared database.  (EXPLAIN runs
   against the live planner but only reads.) *)
let read_only = function
  | D_query _ | D_print _ | D_explain _ | D_explain_analyze _
  | D_show_metrics | D_show_snapshot | D_begin | D_commit | D_type _
  | D_parallel _ ->
    true
  | D_var _ | D_selector _ | D_constructor _ | D_insert _ | D_delete _
  | D_assign _ | D_limit _ | D_materialize _ | D_maintain _
  | D_explain_update _ ->
    false

let execute_decl env decl =
  (match (env.pinned, read_only decl) with
  | Some _, false ->
    elab_error
      "statement not allowed inside BEGIN ... COMMIT (read-only snapshot \
       transaction)"
  | _ -> ());
  match decl with
  | D_type (name, ty) -> elaborate_type env name ty
  | D_var (name, tyname) ->
    Database.declare env.db name (resolve_relation_type env tyname)
  | D_selector { s_name; s_params; s_formal; s_formal_type; s_var; s_range; s_pred }
    ->
    if not (String.equal s_range s_formal) then
      elab_error "selector %s: body ranges over %s, not the formal %s" s_name
        s_range s_formal;
    let params = List.map (elaborate_param env) s_params in
    let scope =
      let s = scope_of_params params in
      { s with rel_names = s_formal :: s.rel_names }
    in
    Database.define_selector env.db
      {
        Defs.sel_name = s_name;
        sel_formal = s_formal;
        sel_formal_schema = resolve_relation_type env s_formal_type;
        sel_params = params;
        sel_var = s_var;
        sel_pred = lower_formula env scope s_pred;
      }
  | D_constructor c -> Database.define_constructor env.db (lower_constructor env c)
  | D_insert (name, rows) ->
    Database.insert_all env.db name (List.map (row env) rows)
  | D_delete (name, rows) ->
    List.iter (fun r -> Database.delete env.db name (row env r)) rows
  | D_assign (name, None, _, r) ->
    Database.assign env.db name (lower_range env empty_scope r)
  | D_assign (name, Some sel, args, r) ->
    let args = List.map (lower_arg env empty_scope) args in
    Database.assign_selected env.db name ~selector:sel ~args
      (lower_range env empty_scope r)
  | D_limit items ->
    (* SET LIMIT merges the listed budgets into the database's declarative
       limits; SET LIMIT NONE (an empty item list) clears them all. *)
    let limits =
      match items with
      | [] -> Guard.no_limits
      | items ->
        List.fold_left
          (fun l (kind, n) ->
            match kind with
            | L_rows -> { l with Guard.l_rows = Some n }
            | L_rounds -> { l with Guard.l_rounds = Some n }
            | L_millis -> { l with Guard.l_millis = Some n })
          (Database.limits env.db) items
    in
    Database.set_limits env.db limits
  | D_query r | D_print r -> (
    let range = lower_range env empty_scope r in
    match env.pinned with
    | Some snap -> (
      (* pinned transaction: evaluate against the frozen snapshot *)
      match Snapshot.query snap range with
      | result ->
        output env "QUERY %s@\n%a@\n@\n"
          (Ast.range_to_string range)
          Relation.pp_table result
      | exception Guard.Exhausted (reason, progress) ->
        output env "QUERY %s@\n%a@\n@\n"
          (Ast.range_to_string range)
          Guard.pp_report (reason, progress))
    | None -> (
      (* under metrics, queries run traced so the registry accumulates
         per-operator row totals even without EXPLAIN *)
      let trace =
        if Obs.on () then Some (Dc_exec.Ir.Trace.create ()) else None
      in
      match Database.query ?trace env.db range with
      | result ->
        Option.iter Dc_exec.Ir.Trace.register_metrics trace;
        output env "QUERY %s@\n%a@\n@\n"
          (Ast.range_to_string range)
          Relation.pp_table result
      | exception Guard.Exhausted (reason, progress) ->
        output env "QUERY %s@\n%a@\n@\n"
          (Ast.range_to_string range)
          Guard.pp_report (reason, progress)))
  | D_explain r -> (
    let range = lower_range env empty_scope r in
    let decision = Dc_compile.Planner.plan env.db range in
    (* run the decision under a trace: EXPLAIN shows the physical operator
       pipelines actually executed, with their row/probe counters *)
    let trace = Dc_exec.Ir.Trace.create () in
    match Dc_compile.Planner.execute ~trace env.db decision with
    | _ ->
      Dc_exec.Ir.Trace.register_metrics trace;
      output env "EXPLAIN %s@\n%a"
        (Ast.range_to_string range)
        Dc_compile.Planner.explain decision;
      if not (Dc_exec.Ir.Trace.is_empty trace) then
        output env "physical:@\n%a" Dc_exec.Ir.Trace.pp trace;
      output env "@\n"
    | exception Guard.Exhausted (reason, progress) ->
      output env "EXPLAIN %s@\n%a"
        (Ast.range_to_string range)
        Dc_compile.Planner.explain decision;
      output env "%a@\n@\n" Guard.pp_report (reason, progress))
  | D_explain_analyze r -> (
    let range = lower_range env empty_scope r in
    let decision = Dc_compile.Planner.plan env.db range in
    let trace = Dc_exec.Ir.Trace.create () in
    (* per-round series: a Magic decision runs the translated program
       through the semi-naive engine (these stats), everything else that
       recurses runs the constructor fixpoint (the database's last stats) *)
    let dstats = Dc_datalog.Seminaive.fresh_stats () in
    Database.reset_last_stats env.db;
    let header () =
      output env "EXPLAIN ANALYZE %s@\n%a"
        (Ast.range_to_string range)
        Dc_compile.Planner.explain decision
    in
    let rounds () =
      let log =
        match decision.Dc_compile.Planner.d_method with
        | Dc_compile.Planner.Magic _ -> List.rev dstats.Dc_datalog.Seminaive.round_log
        | _ -> (
          match Database.last_stats env.db with
          | Some st ->
            (* both latest-first; zip defensively (times are only
               recorded while metrics are enabled) *)
            let rec zip acc ds ts =
              match ds, ts with
              | d :: ds, t :: ts -> zip ((d, t) :: acc) ds ts
              | _ -> acc
            in
            zip [] st.Fixpoint.round_deltas st.Fixpoint.round_times
          | None -> [])
      in
      match log with
      | [] -> ()
      | log ->
        output env "fixpoint rounds:@\n";
        List.iteri
          (fun i (delta, ms) ->
            output env "  round %d: delta=%d time=%.2fms@\n" (i + 1) delta ms)
          log
    in
    match
      Dc_exec.Ir.profiled (fun () ->
          Dc_compile.Planner.execute ~trace ~datalog_stats:dstats env.db
            decision)
    with
    | _ ->
      Dc_exec.Ir.Trace.register_metrics trace;
      header ();
      if not (Dc_exec.Ir.Trace.is_empty trace) then
        output env "physical:@\n%a" Dc_exec.Ir.Trace.pp_analyze trace;
      rounds ();
      output env "@\n"
    | exception Guard.Exhausted (reason, progress) ->
      header ();
      output env "%a@\n@\n" Guard.pp_report (reason, progress))
  | D_materialize r -> (
    let range = lower_range env empty_scope r in
    match range with
    | Ast.Construct (Ast.Rel base, constructor, args) -> (
      match Ivm.materialize env.db ~constructor ~base ~args with
      | view ->
        output env "MATERIALIZE %s@\nview %s: %s, %d tuples@\n@\n"
          (Ast.range_to_string range)
          (Ivm.name view) (Ivm.plan_kind view) (Ivm.cardinal view)
      | exception Ivm.Error msg -> elab_error "%s" msg)
    | _ ->
      elab_error
        "MATERIALIZE expects a constructor application Rel{con(args)}, got %s"
        (Ast.range_to_string range))
  | D_maintain on ->
    Database.set_maintain env.db on;
    output env "SET MAINTAIN %s@\n@\n" (if on then "ON" else "OFF")
  | D_parallel d ->
    (match d with
    | Some n -> Dc_par.Par.set_domains n
    | None -> Dc_par.Par.reset_domains ());
    output env "SET PARALLEL %d@\n@\n" (Dc_par.Par.domains ())
  | D_explain_update { eu_analyze; eu_delete; eu_rel; eu_rows } -> (
    let rows = List.map (row env) eu_rows in
    let verb = if eu_delete then "DELETE" else "INSERT" in
    let header () =
      output env "EXPLAIN%s %s %s@\n"
        (if eu_analyze then " ANALYZE" else "")
        verb eu_rel
    in
    Ivm.reset_reports ();
    let apply () =
      if eu_delete then List.iter (Database.delete env.db eu_rel) rows
      else Database.insert_all env.db eu_rel rows
    in
    match apply () with
    | () ->
      header ();
      (match Ivm.reports () with
      | [] -> output env "no maintained views over %s@\n" eu_rel
      | reports ->
        List.iter (fun rp -> output env "%a@\n" Ivm.pp_report rp) reports);
      output env "@\n"
    | exception Guard.Exhausted (reason, progress) ->
      header ();
      output env "%a@\n@\n" Guard.pp_report (reason, progress))
  | D_show_metrics ->
    output env "SHOW METRICS@\n%s@\n" (Obs.to_prometheus ())
  | D_show_snapshot ->
    (* inside a transaction this describes the pinned version, otherwise
       the latest published one *)
    let snap =
      match env.pinned with
      | Some s -> s
      | None -> Database.snapshot env.db
    in
    output env "SHOW SNAPSHOT@\n%a@\n@\n" Snapshot.pp_summary snap
  | D_begin ->
    let snap =
      match env.pinned with
      | Some _ -> elab_error "BEGIN: a transaction is already open"
      | None -> Database.snapshot env.db
    in
    env.pinned <- Some snap;
    output env "BEGIN@\npinned snapshot version %d@\n@\n"
      (Snapshot.version snap)
  | D_commit -> (
    match env.pinned with
    | None -> elab_error "COMMIT without BEGIN"
    | Some snap ->
      env.pinned <- None;
      output env "COMMIT@\nreleased snapshot version %d@\n@\n"
        (Snapshot.version snap))

(* Run a whole surface program; returns accumulated QUERY/EXPLAIN output.
   Consecutive CONSTRUCTOR declarations are defined as one group, so
   mutually recursive constructors typecheck — write them adjacently, as
   the paper's listings do. *)
let run env (p : program) =
  (* Observability directives imply observability: a program that asks for
     EXPLAIN ANALYZE or SHOW METRICS gets the registry populated without
     needing DC_METRICS in the environment.  Enabling is sticky — the
     registry keeps accumulating for later SHOW METRICS in the session. *)
  if
    (not (Obs.on ()))
    && List.exists
         (function
           | D_explain_analyze _ | D_show_metrics
           | D_explain_update { eu_analyze = true; _ } ->
             true
           | _ -> false)
         p
  then Obs.set_enabled true;
  let flush pending =
    match pending with
    | [] -> ()
    | group ->
      if env.pinned <> None then
        elab_error
          "statement not allowed inside BEGIN ... COMMIT (read-only \
           snapshot transaction)";
      Database.define_constructors env.db
        (List.rev_map (lower_constructor env) group)
  in
  let pending =
    List.fold_left
      (fun pending decl ->
        match decl with
        | D_constructor c -> c :: pending
        | d ->
          flush pending;
          execute_decl env d;
          [])
      [] p
  in
  flush pending;
  drain_output env

(* Lower a standalone query range (no definition parameters in scope). *)
let lower_query env r = lower_range env empty_scope r

let run_string ?db src =
  let db = Option.value db ~default:(Database.create ()) in
  let env = create db in
  let program = Obs.Span.timed "parse" (fun () -> Parser.parse src) in
  let out = run env program in
  (db, out)
