(* Tokens of the DBPL surface language.

   Keywords follow the paper's listings (MODULA-2 style, upper case):
   TYPE, VAR, SELECTOR, CONSTRUCTOR, FOR, BEGIN, END, EACH, IN, SOME, ALL,
   NOT, AND, OR, TRUE, FALSE, RELATION, OF, RECORD, KEY, and the statement
   keywords of our small command layer (INSERT, VALUES, QUERY, PRINT,
   EXPLAIN, DELETE).  [#] is inequality, [:=] assignment, [(* ... *)]
   comments — all as in the paper. *)

type t =
  (* literals and identifiers *)
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  (* keywords *)
  | Kw_type
  | Kw_var
  | Kw_selector
  | Kw_constructor
  | Kw_for
  | Kw_begin
  | Kw_end
  | Kw_each
  | Kw_in
  | Kw_some
  | Kw_all
  | Kw_not
  | Kw_and
  | Kw_or
  | Kw_true
  | Kw_false
  | Kw_relation
  | Kw_of
  | Kw_record
  | Kw_key
  | Kw_integer
  | Kw_string
  | Kw_boolean
  | Kw_real
  | Kw_range
  | Kw_insert
  | Kw_delete
  | Kw_values
  | Kw_query
  | Kw_print
  | Kw_explain
  | Kw_analyze
  | Kw_set
  | Kw_limit
  | Kw_show
  | Kw_metrics
  | Kw_materialize
  | Kw_commit
  | Kw_snapshot
  (* punctuation and operators *)
  | Semi
  | Colon
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne (* # *)
  | Assign (* := *)
  | Plus
  | Minus
  | Star
  | Eof

let keywords =
  [
    ("TYPE", Kw_type);
    ("VAR", Kw_var);
    ("SELECTOR", Kw_selector);
    ("CONSTRUCTOR", Kw_constructor);
    ("FOR", Kw_for);
    ("BEGIN", Kw_begin);
    ("END", Kw_end);
    ("EACH", Kw_each);
    ("IN", Kw_in);
    ("SOME", Kw_some);
    ("ALL", Kw_all);
    ("NOT", Kw_not);
    ("AND", Kw_and);
    ("OR", Kw_or);
    ("TRUE", Kw_true);
    ("FALSE", Kw_false);
    ("RELATION", Kw_relation);
    ("OF", Kw_of);
    ("RECORD", Kw_record);
    ("KEY", Kw_key);
    ("INTEGER", Kw_integer);
    ("STRING", Kw_string);
    ("BOOLEAN", Kw_boolean);
    ("REAL", Kw_real);
    ("RANGE", Kw_range);
    ("INSERT", Kw_insert);
    ("DELETE", Kw_delete);
    ("VALUES", Kw_values);
    ("QUERY", Kw_query);
    ("PRINT", Kw_print);
    ("EXPLAIN", Kw_explain);
    ("ANALYZE", Kw_analyze);
    ("SET", Kw_set);
    ("LIMIT", Kw_limit);
    ("SHOW", Kw_show);
    ("METRICS", Kw_metrics);
    ("MATERIALIZE", Kw_materialize);
    ("COMMIT", Kw_commit);
    ("SNAPSHOT", Kw_snapshot);
  ]

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Fmt.str "%S" s
  | Semi -> ";"
  | Colon -> ":"
  | Comma -> ","
  | Dot -> "."
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "#"
  | Assign -> ":="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Eof -> "<eof>"
  | kw -> (
    match List.find_opt (fun (_, t) -> t = kw) keywords with
    | Some (s, _) -> s
    | None -> "<token>")

(* A token with its source position. *)
type located = {
  tok : t;
  line : int;
  col : int;
}
