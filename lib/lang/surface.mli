(** Surface abstract syntax of the DBPL subset, as parsed; the elaborator
    resolves type names and lowers everything onto [Dc_calculus.Ast]. *)

type scalar_type =
  | S_integer
  | S_string
  | S_boolean
  | S_real
  | S_named of string  (** alias — may denote a scalar or a relation type *)
  | S_range of int * int
      (** refined integers: [RANGE lo..hi] (paper §2.1's partidtype) *)

type type_expr =
  | T_scalar of scalar_type
  | T_relation of {
      key : string list;  (** [[]] = whole-tuple key *)
      fields : (string list * scalar_type) list;
          (** e.g. [front, back: parttype] *)
    }

type param = {
  p_name : string;
  p_type : scalar_type;  (** resolved to scalar or relation at elaboration *)
}

type term =
  | T_int of int
  | T_float of float
  | T_string of string
  | T_field of string * string  (** [r.front] *)
  | T_name of string  (** parameter reference *)
  | T_binop of Dc_calculus.Ast.binop * term * term

type formula =
  | F_true
  | F_false
  | F_cmp of Dc_calculus.Ast.cmpop * term * term
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula
  | F_some of string * range * formula
  | F_all of string * range * formula
  | F_in of string * range  (** [r IN range] *)
  | F_member of term list * range  (** [<t, ...> IN range] *)

and range =
  | R_name of string
  | R_select of range * string * arg list  (** [range[sel(args)]] *)
  | R_construct of range * string * arg list  (** [range{con(args)}] *)
  | R_comp of branch list  (** [{ branch, ... }] *)

and arg =
  | A_term of term
  | A_name of string  (** a relation or a scalar parameter — elaboration decides *)
  | A_range of range

and branch = {
  b_target : term list;  (** [[]] = identity *)
  b_agg : (Dc_agg.Agg.op * int) option;
      (** [MIN]/[MAX]/[COUNT]/[SUM] prefix on the target term at this
          index — at most one per branch *)
  b_group : term list;
      (** [GROUP BY] terms after the where formula; [[]] defaults to
          every non-aggregated target term *)
  b_binders : (string * range) list;
  b_where : formula;
}

type selector_decl = {
  s_name : string;
  s_params : param list;
  s_formal : string;
  s_formal_type : string;
  s_var : string;
  s_range : string;  (** must equal the formal *)
  s_pred : formula;
}

type constructor_decl = {
  c_name : string;
  c_formal : string;
  c_formal_type : string;
  c_params : param list;
  c_result_type : string;
  c_body : branch list;
}

(** A [SET LIMIT] budget kind. *)
type limit_kind =
  | L_rows
  | L_rounds
  | L_millis

type decl =
  | D_type of string * type_expr
  | D_var of string * string  (** [VAR name : relation-type-name] *)
  | D_selector of selector_decl
  | D_constructor of constructor_decl
  | D_insert of string * term list list
  | D_delete of string * term list list
  | D_assign of string * string option * arg list * range
      (** [Rel := range] or [Rel[sel(args)] := range] *)
  | D_query of range
  | D_print of range
  | D_explain of range
  | D_explain_analyze of range
      (** [EXPLAIN ANALYZE r;] — the EXPLAIN tree with per-operator wall
          time and per-round fixpoint statistics *)
  | D_show_metrics  (** [SHOW METRICS;] — dump the observability registry *)
  | D_limit of (limit_kind * int) list
      (** [SET LIMIT ROWS n, ROUNDS n, MILLIS n;] merged into the current
          limits; the empty list ([SET LIMIT NONE;]) clears them all *)
  | D_materialize of range
      (** [MATERIALIZE Rel{con(args)};] — compute the extent once and keep
          it incrementally maintained under INSERT/DELETE *)
  | D_maintain of bool  (** [SET MAINTAIN ON;] / [SET MAINTAIN OFF;] *)
  | D_parallel of int option
      (** [SET PARALLEL n;] — evaluate fixpoints on [n] domains;
          [SET PARALLEL DEFAULT;] restores the environment-derived
          degree *)
  | D_explain_update of {
      eu_analyze : bool;
      eu_delete : bool;
      eu_rel : string;
      eu_rows : term list list;
    }
      (** [EXPLAIN [ANALYZE] INSERT/DELETE Rel VALUES (..);] — perform
          the update and print the maintenance pipeline's report *)
  | D_show_snapshot
      (** [SHOW SNAPSHOT;] — current published version, relation count,
          and maintained-view staleness *)
  | D_begin
      (** [BEGIN;] — pin the session to the current published snapshot:
          all reads until [COMMIT;] observe that one version *)
  | D_commit  (** [COMMIT;] — release the pinned snapshot *)

type program = decl list
