(** Database persistence: one CSV per relation plus a catalog of
    declarations written in the DBPL surface syntax.  Loading replays the
    catalog through the ordinary front end (parser, type checker,
    positivity check), so a stored database re-validates itself. *)

open Dc_core

exception Storage_error of string

val save : Database.t -> string -> unit
(** [save db dir] writes [dir/catalog.dbpl] and [dir/<relation>.csv]
    files, atomically at the directory level: everything lands in
    [dir.tmp] which is renamed into place only once complete, so a crash
    mid-save (the [storage.save] failpoint) leaves the previous state
    loadable.  Mutually recursive constructors are emitted adjacently, in
    dependency order.  @raise Storage_error *)

val load : ?db:Database.t -> string -> Database.t
(** Replay a saved database into a fresh (or given) database; falls back
    to [dir.old] when [dir] lacks a catalog (a save crashed mid-swap).
    @raise Storage_error / parser / typechecking / positivity errors as
    the catalog is re-elaborated. *)

val render_catalog : Database.t -> string
(** The catalog as parser-compatible DBPL source — also the catalog image
    a WAL checkpoint embeds. *)

val load_catalog : ?db:Database.t -> string -> Database.t
(** Elaborate catalog source into a fresh (or given) database (no CSVs). *)
