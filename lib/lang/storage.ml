(* Database persistence: save a database as a directory containing one CSV
   file per relation plus a catalog written in the DBPL surface syntax
   (TYPE/VAR/SELECTOR/CONSTRUCTOR declarations).  Loading replays the
   catalog through the ordinary front end — parser, elaborator, type
   checker, positivity check — and then bulk-loads the CSVs, so a stored
   database re-validates itself completely on the way in.

   Layout:
     <dir>/catalog.dbpl      declarations, parser-compatible
     <dir>/<relation>.csv    one file per relation variable

   Saving is atomic at the directory level: everything is written into
   <dir>.tmp, which is renamed into place only once complete — the old
   state survives as <dir>.old for the instant of the swap, and [load]
   falls back to it, so a crash at any point leaves a loadable database
   (the [storage.save] failpoint drives the regression test). *)

open Dc_relation
open Dc_core
open Dc_calculus
module Failpoint = Dc_guard.Guard.Failpoint

exception Storage_error of string

let storage_error fmt = Fmt.kstr (fun s -> raise (Storage_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Rendering declarations in the surface grammar *)

let scalar_keyword = function
  | Value.TInt -> "INTEGER"
  | Value.TStr -> "STRING"
  | Value.TBool -> "BOOLEAN"
  | Value.TFloat -> "REAL"

(* a field's concrete type: the 2.1 refinement syntax when present *)
let field_type ty = function
  | Schema.No_refinement -> scalar_keyword ty
  | Schema.Int_range (lo, hi) -> Fmt.str "RANGE %d..%d" lo hi

(* TYPE t_<name> = RELATION k1, k2 OF RECORD a: T; b: T END; *)
let render_type buf name schema =
  let keys =
    if Schema.key_is_whole_tuple schema then Schema.attr_names schema
    else List.map (Schema.attr_name schema) (Schema.key_positions schema)
  in
  let fields =
    String.concat "; "
      (List.mapi
         (fun i a ->
           Fmt.str "%s: %s" a
             (field_type (Schema.attr_ty schema i) (Schema.attr_refinement schema i)))
         (Schema.attr_names schema))
  in
  Buffer.add_string buf
    (Fmt.str "TYPE %s = RELATION %s OF RECORD %s END;\n" name
       (String.concat ", " keys) fields)

(* Stable type name per distinct schema. *)
type type_table = {
  mutable types : (string * Schema.t) list; (* name -> schema, insertion order *)
  mutable counter : int;
}

let type_name_of table schema =
  match
    List.find_opt (fun (_, s) -> Schema.equal s schema) table.types
  with
  | Some (n, _) -> n
  | None ->
    table.counter <- table.counter + 1;
    let n = Fmt.str "t%d" table.counter in
    table.types <- table.types @ [ (n, schema) ];
    n

let render_params table params =
  match params with
  | [] -> ""
  | ps ->
    let one = function
      | Defs.Scalar_param (n, ty) -> Fmt.str "%s: %s" n (scalar_keyword ty)
      | Defs.Rel_param (n, schema) ->
        Fmt.str "%s: %s" n (type_name_of table schema)
    in
    Fmt.str " (%s)" (String.concat "; " (List.map one ps))

let render_selector table buf (d : Defs.selector_def) =
  Buffer.add_string buf
    (Fmt.str "SELECTOR %s%s FOR %s: %s;\nBEGIN EACH %s IN %s: %s END %s;\n"
       d.sel_name
       (render_params table d.sel_params)
       d.sel_formal
       (type_name_of table d.sel_formal_schema)
       d.sel_var d.sel_formal
       (Ast.formula_to_string d.sel_pred)
       d.sel_name)

(* An aggregated branch re-renders its MIN/MAX/COUNT/SUM prefix and an
   explicit GROUP BY, so the catalog round-trips through the parser to
   the same [con_agg] spec.  Identity branches have no target to mark. *)
let render_branch agg (b : Ast.branch) =
  match (agg, b.Ast.target) with
  | None, _ | _, [] -> Fmt.str "%a" Ast.pp_branch b
  | Some (spec : Dc_agg.Agg.spec), ts ->
    let target =
      String.concat ", "
        (List.mapi
           (fun i t ->
             if i = spec.value then
               Fmt.str "%s %s" (Dc_agg.Agg.op_name spec.op)
                 (Ast.term_to_string t)
             else Ast.term_to_string t)
           ts)
    in
    let binders =
      String.concat ", "
        (List.map
           (fun (v, r) -> Fmt.str "EACH %s IN %s" v (Ast.range_to_string r))
           b.Ast.binders)
    in
    let group =
      (* an empty group (global aggregate) only arises from a
         single-term target, where the parser's default reproduces it *)
      match spec.group with
      | [] -> ""
      | g ->
        Fmt.str " GROUP BY %s"
          (String.concat ", "
             (List.map (fun i -> Ast.term_to_string (List.nth ts i)) g))
    in
    Fmt.str "<%s> OF %s: %s%s" target binders
      (Ast.formula_to_string b.Ast.where)
      group

let render_constructor table buf (d : Defs.constructor_def) =
  Buffer.add_string buf
    (Fmt.str "CONSTRUCTOR %s FOR %s: %s%s: %s;\nBEGIN %s END %s;\n" d.con_name
       d.con_formal
       (type_name_of table d.con_formal_schema)
       (render_params table d.con_params)
       (type_name_of table d.con_result)
       (String.concat ",\n      " (List.map (render_branch d.con_agg) d.con_body))
       d.con_name)

(* ------------------------------------------------------------------ *)
(* Catalog rendering / replay (also the WAL checkpoint's catalog image) *)

let render_catalog db =
  let table = { types = []; counter = 0 } in
  let vars = Buffer.create 256 in
  List.iter
    (fun name ->
      let rel = Database.get db name in
      let tname = type_name_of table (Relation.schema rel) in
      Buffer.add_string vars (Fmt.str "VAR %s: %s;\n" name tname))
    (Database.relation_names db);
  let defs = Buffer.create 256 in
  List.iter
    (fun name ->
      match Database.selector db name with
      | Some d -> render_selector table defs d
      | None -> ())
    (Database.selector_names db);
  (* mutually recursive constructors must stay adjacent: emit in SCC
     dependency order *)
  let all_constructors =
    List.filter_map (Database.constructor db) (Database.constructor_names db)
  in
  List.iter
    (fun component -> List.iter (render_constructor table defs) component)
    (Positivity.sccs all_constructors);
  (* types first (collected while rendering), then vars, then defs *)
  let decls = Buffer.create 1024 in
  List.iter (fun (n, s) -> render_type decls n s) table.types;
  Buffer.add_buffer decls vars;
  Buffer.add_buffer decls defs;
  Buffer.contents decls

let load_catalog ?(db = Database.create ()) source =
  let env = Elaborate.create db in
  ignore (Elaborate.run env (Parser.parse source));
  db

(* ------------------------------------------------------------------ *)
(* Save *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let save db dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    storage_error "%s exists and is not a directory" dir;
  let catalog = render_catalog db in
  let tmp = dir ^ ".tmp" and old = dir ^ ".old" in
  rm_rf tmp;
  Sys.mkdir tmp 0o755;
  List.iter
    (fun name ->
      Csv.save (Database.get db name) (Filename.concat tmp (name ^ ".csv"));
      Failpoint.hit "storage.save")
    (Database.relation_names db);
  Out_channel.with_open_bin (Filename.concat tmp "catalog.dbpl") (fun oc ->
      Out_channel.output_string oc catalog);
  (* the swap: the previous state survives as <dir>.old for the one
     unavoidable instant where <dir> itself does not exist *)
  rm_rf old;
  if Sys.file_exists dir then Sys.rename dir old;
  Sys.rename tmp dir;
  rm_rf old

(* ------------------------------------------------------------------ *)
(* Load *)

let load ?(db = Database.create ()) dir =
  let catalog_in d = Filename.concat d "catalog.dbpl" in
  let src =
    if Sys.file_exists (catalog_in dir) then dir
    else if Sys.file_exists (catalog_in (dir ^ ".old")) then dir ^ ".old"
    else storage_error "%s: no catalog.dbpl" dir
  in
  let source = In_channel.with_open_text (catalog_in src) In_channel.input_all in
  let db = load_catalog ~db source in
  List.iter
    (fun name ->
      let path = Filename.concat src (name ^ ".csv") in
      if Sys.file_exists path then begin
        let schema = Relation.schema (Database.get db name) in
        Database.set db name (Csv.load schema path)
      end)
    (Database.relation_names db);
  db
