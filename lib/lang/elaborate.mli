(** Elaboration: resolve surface type names, lower the surface syntax onto
    the calculus AST, and execute declarations against a
    [Dc_core.Database] (the front half of the DBPL compiler). *)

open Dc_core
open Surface

exception Elab_error of string

type env
(** Elaboration state: the database plus type-alias tables and the
    accumulated QUERY/PRINT/EXPLAIN output. *)

val create : Database.t -> env

val pinned : env -> Snapshot.t option
(** The snapshot pinned by an open [BEGIN ... COMMIT] read-only
    transaction, if any: while pinned, every QUERY/PRINT observes that
    one published version and mutating statements are rejected. *)

val read_only : decl -> bool
(** Statements that never mutate the shared database — allowed inside a
    read-only transaction, and servable from a snapshot without going
    through a serializing writer. *)

val lower_constructor : env -> constructor_decl -> Dc_calculus.Defs.constructor_def
(** Lower one constructor declaration (types resolved, body lowered). *)

val execute_decl : env -> decl -> unit
(** Execute one declaration/statement.  Note: [D_constructor] is defined
    individually here; use {!run} for programs with mutual recursion. *)

val with_snapshot : env -> Snapshot.t -> (unit -> 'a) -> 'a
(** Pin [snap] for the duration of the callback unless an explicit
    [BEGIN] already pinned one (the open transaction wins) — the
    per-statement snapshot isolation used by server sessions. *)

val drain_output : env -> string
(** Return and clear the accumulated QUERY/PRINT/EXPLAIN output, so a
    session executing statement by statement (via {!execute_decl}) gets
    each statement's own text. *)

val run : env -> program -> string
(** Execute a whole program; consecutive CONSTRUCTOR declarations are
    defined as one group (so mutually recursive constructors typecheck —
    write them adjacently, as the paper's listings do).  Returns this
    run's QUERY/PRINT/EXPLAIN output (the buffer is drained, so repeated
    [run]s on one env each return only their own output). *)

val lower_query : env -> Surface.range -> Dc_calculus.Ast.range
(** Lower a standalone query range (no definition parameters in scope). *)

val run_string : ?db:Database.t -> string -> Database.t * string
(** Parse and run source text against a fresh (or given) database. *)
