(* Constraint propagation into constructor definitions (paper §4,
   Cases 1–3), including the recursive case via capture rules.

   The query under consideration is the canonical restricted application

     { EACH r IN Base{c(args)}: pred(r) }

   - If [c] is non-recursive, the application is decompiled and the
     predicate distributed over the resulting branches:
       Case 1 (selector): single expression, single variable — conjoin;
       Case 2 (join): substitute r.f by the target term in position f;
       Case 3 (union): treat each branch separately, provided pred
       satisfies the positivity constraint w.r.t. the application.
   - If [c] is recursive and the restriction binds attributes to constants,
     the paper points at capture rules ([Ullm 84]); we implement the
     general such rule: translate the application to Horn clauses
     ({!Dc_datalog.Translate}) and evaluate with the magic-sets transform,
     which propagates the constants into the fixpoint so that only
     relevant tuples are constructed. *)

open Dc_relation
open Dc_calculus
open Ast

exception Not_applicable of string

let not_applicable fmt = Fmt.kstr (fun s -> raise (Not_applicable s)) fmt

(* The canonical restricted-application shape, if the query has it. *)
let restricted_application = function
  | Comp [ { binders = [ (v, (Construct _ as app)) ]; target = []; where } ] ->
    Some (v, app, where)
  | Construct _ as app -> Some ("r", app, True)
  | _ -> None

(* Constant restrictions of the shape  v.attr = const  among the top-level
   conjuncts; returns (bindings, residual conjuncts). *)
let constant_bindings v where =
  List.partition_map
    (fun conj ->
      match conj with
      | Cmp (Eq, Field (v', a), Const c) when v' = v -> Either.Left (a, c)
      | Cmp (Eq, Const c, Field (v', a)) when v' = v -> Either.Left (a, c)
      | f -> Either.Right f)
    (conjuncts where)

(* Substitute occurrences of [v.<result attr>] in [pred] by per-branch
   replacement terms; [replace attr] yields the term for a result
   attribute.  Stops at quantifiers that shadow [v]. *)
let substitute_result v replace pred =
  let rec subst_term = function
    | Field (v', a) when v' = v -> replace a
    | Binop (op, a, b) -> Binop (op, subst_term a, subst_term b)
    | t -> t
  in
  let rec subst_formula = function
    | (True | False) as f -> f
    | Cmp (op, a, b) -> Cmp (op, subst_term a, subst_term b)
    | Not f -> Not (subst_formula f)
    | And (a, b) -> And (subst_formula a, subst_formula b)
    | Or (a, b) -> Or (subst_formula a, subst_formula b)
    | Some_in (x, r, f) ->
      if String.equal x v then Some_in (x, r, f)
      else Some_in (x, r, subst_formula f)
    | All_in (x, r, f) ->
      if String.equal x v then All_in (x, r, f)
      else All_in (x, r, subst_formula f)
    | In_rel _ as f -> f
    | Member (ms, r) -> Member (List.map subst_term ms, r)
  in
  subst_formula pred

(* Distribute a restriction over the branches of a decompiled application.
   [result] is the constructor's declared result schema (the type of the
   tuple variable [v]); [schema_of_range] resolves binder-range schemas for
   identity branches. *)
let push_into_branches ~result ~schema_of_range v pred branches =
  List.map
    (fun (b : branch) ->
      match b.target, b.binders with
      | [], [ (bv, range) ] ->
        (* Case 1: the branch copies its binder; map result attributes to
           the binder's positionally corresponding attributes *)
        let base_schema = schema_of_range range in
        let replace a =
          let i = Schema.attr_index result a in
          Field (bv, Schema.attr_name base_schema i)
        in
        { b with where = conj b.where (substitute_result v replace pred) }
      | [], _ -> not_applicable "identity branch with several binders"
      | ts, _ ->
        (* Case 2: substitute r.f by the target term in position f *)
        let replace a =
          let i = Schema.attr_index result a in
          match List.nth_opt ts i with
          | Some t -> t
          | None -> not_applicable "no target term for attribute %s" a
        in
        { b with where = conj b.where (substitute_result v replace pred) })
    branches

(* Case 3 side condition: pred must be positive in the application being
   pushed into (else the constructed relation has to be computed fully
   before pred can be evaluated, [JaKo 83]). *)
let positive_in_application pred con =
  List.for_all
    (fun (o : Positivity.occurrence) ->
      match o.occ_target with
      | Positivity.App c when String.equal c con -> o.occ_depth mod 2 = 0
      | _ -> true)
    (Positivity.occurrences_formula pred)

(* Push a restriction into a *non-recursive* application by decompiling
   and distributing (Cases 1–3).  Returns the rewritten query range. *)
let push_nonrecursive ~constructor_of ~schema_of_range v app pred =
  match app with
  | Construct (base, c, args) -> (
    match constructor_of c with
    | None -> not_applicable "unknown constructor %s" c
    | Some (def : Defs.constructor_def) -> (
      if not (positive_in_application pred c) then
        not_applicable "restriction not positive in %s" c;
      match
        Rewrite.instantiate_constructor ~schema_of:schema_of_range def base args
      with
      | Comp branches ->
        Comp
          (push_into_branches ~result:def.con_result ~schema_of_range v pred
             branches)
      | _ -> assert false))
  | _ -> not_applicable "not a constructor application"

(* ------------------------------------------------------------------ *)
(* The recursive capture rule *)

(* Build the Horn program and adorned query for evaluating
   {EACH r IN app: r.a1 = c1 AND ...} through magic sets.  [schema] is the
   constructor's result schema. *)
let magic_query ~ctx ~schema app (bindings : (string * Value.t) list) =
  let program, query_pred = Dc_datalog.Translate.of_application ctx app in
  let query_args =
    List.mapi
      (fun i name ->
        ignore name;
        let attr = Schema.attr_name schema i in
        match List.assoc_opt attr bindings with
        | Some c -> Dc_datalog.Syntax.Const c
        | None -> Dc_datalog.Syntax.Var (Fmt.str "Q%d" i))
      (Schema.attr_names schema)
  in
  (program, Dc_datalog.Syntax.atom query_pred query_args)

let run_magic ?guard ?stats ?trace ~edb ~schema program query =
  let answers =
    Dc_datalog.Magic.answer ?guard ?stats ?trace program edb query
  in
  Dc_datalog.Facts.TS.fold Relation.add_unchecked answers
    (Relation.empty schema)
