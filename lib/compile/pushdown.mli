(** Constraint propagation into constructor definitions (paper §4,
    Cases 1–3), including the recursive case via capture rules (magic sets
    over the §3.4 translation). *)

open Dc_relation
open Dc_calculus
open Ast

exception Not_applicable of string

val restricted_application : range -> (var * range * formula) option
(** Recognize [{EACH r IN Base{c(args)}: pred}] (or a bare application);
    returns (variable, application, restriction). *)

val constant_bindings :
  var -> formula -> (string * Value.t) list * formula list
(** Split the top-level conjuncts into [v.attr = const] bindings and the
    residual conjuncts. *)

val substitute_result : var -> (string -> term) -> formula -> formula
(** Replace [v.<attr>] by per-attribute replacement terms (stops at
    quantifiers shadowing [v]). *)

val push_into_branches :
  result:Schema.t ->
  schema_of_range:(range -> Schema.t) ->
  var ->
  formula ->
  branch list ->
  branch list
(** Distribute a restriction over decompiled branches: Case 1 (identity
    branch — conjoin, attributes mapped positionally), Case 2 (join —
    substitute by target terms). @raise Not_applicable *)

val positive_in_application : formula -> string -> bool
(** Case 3 side condition: the restriction is positive in the application
    being pushed into. *)

val push_nonrecursive :
  constructor_of:(string -> Defs.constructor_def option) ->
  schema_of_range:(range -> Schema.t) ->
  var ->
  range ->
  formula ->
  range
(** Decompile a non-recursive application and push the restriction
    (Cases 1–3). @raise Not_applicable *)

val magic_query :
  ctx:Dc_datalog.Translate.context ->
  schema:Schema.t ->
  range ->
  (string * Value.t) list ->
  Dc_datalog.Syntax.program * Dc_datalog.Syntax.atom
(** The recursive capture rule: translate the application to Horn clauses
    and build the adorned query for the constant bindings. *)

val run_magic :
  ?guard:Dc_guard.Guard.t ->
  ?stats:Dc_datalog.Seminaive.stats ->
  ?trace:Dc_exec.Ir.trace ->
  edb:Dc_datalog.Facts.t ->
  schema:Schema.t ->
  Dc_datalog.Syntax.program ->
  Dc_datalog.Syntax.atom ->
  Relation.t
(** Evaluate a magic query and convert the answers back to a relation. *)
