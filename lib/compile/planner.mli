(** The query-compilation level of paper §4: choose an evaluation method
    per query form, following the paper's three-level strategy — dependency
    graph (type-checking level), augmented quant graph + decompilation or
    fixpoint plan (query compilation level), execution (runtime level). *)

open Dc_relation
open Dc_calculus
open Dc_core

(** Chosen evaluation method. *)
type method_ =
  | Direct  (** evaluate as written: LFP of the application system *)
  | Decompiled of Ast.range  (** inlined as a view (acyclic) *)
  | Pushed of Ast.range  (** restriction distributed over branches *)
  | Magic of {
      program : Dc_datalog.Syntax.program;
      query : Dc_datalog.Syntax.atom;
      schema : Schema.t;
      residual : Ast.formula;  (** conjuncts magic could not absorb *)
      var : Ast.var;
    }  (** the recursive capture rule *)

type decision = {
  d_query : Ast.range;
  d_method : method_;
  d_plan : Plan.t option;
      (** physical plan for [Decompiled]/[Pushed] methods (when the
          rewritten query compiles to a static pipeline) *)
  d_quant_graph : Quant_graph.t;
  d_recursive : bool;
  d_notes : string list;  (** human-readable planning notes *)
}

val method_name : method_ -> string

val translate_ctx : Database.t -> Dc_datalog.Translate.context

val plan : Database.t -> Ast.range -> decision
(** Typecheck and plan a query. *)

val edb_for : Database.t -> Dc_datalog.Syntax.program -> Dc_datalog.Facts.t
(** Collect the EDB relations a translated program references. *)

val execute :
  ?use_indexes:bool ->
  ?trace:Dc_exec.Ir.trace ->
  ?guard:Dc_guard.Guard.t ->
  ?datalog_stats:Dc_datalog.Seminaive.stats ->
  Database.t ->
  decision ->
  Relation.t
(** Runtime level: run the decision.  [use_indexes:false] forces full
    scans in compiled plans (the E11 ablation).  [trace] records every
    physical pipeline the execution lowers and runs, whatever the method
    — compiled plan, direct fixpoint, or magic-sets Datalog rounds.
    [guard] (default: a fresh guard over the database's limits) governs
    the execution whatever the method.  [datalog_stats], when given,
    receives the semi-naive round statistics of a [Magic] execution
    (EXPLAIN ANALYZE's per-round series for that method).
    @raise Dc_guard.Guard.Exhausted when the guard trips *)

val plan_and_execute : Database.t -> Ast.range -> Relation.t

(** {1 Prepared query forms}

    §4: "database programming languages ... contain only incompletely
    specified query forms"; a prepared form is compiled once with its
    scalar parameters as dummy constants (the paper's logical access path)
    and executed many times with actual values. *)

type prepared

val prepare :
  Database.t ->
  params:(string * Dc_relation.Value.ty) list ->
  Ast.range ->
  prepared
(** Typecheck and compile a query form whose [Ast.Param] placeholders are
    listed in [params].  Non-recursive forms become static plans with the
    parameters as index keys; recursive forms fall back to per-call
    interpretation. *)

val run_prepared : prepared -> Dc_relation.Value.t list -> Relation.t
(** @raise Dc_calculus.Eval.Runtime_error on arity/type mismatch. *)

val prepared_description : prepared -> string
(** How the form was compiled (shown by diagnostics). *)

val explain : decision Fmt.t
(** Query, method, notes, rewritten form / translated program, and the
    augmented quant graph. *)
