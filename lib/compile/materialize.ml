(* Materialized constructed relations with incremental maintenance under
   base insertions (paper §4: "Maintenance for such access paths is
   discussed in [ShTZ 84]").

   A materialized view caches the value of one constructor application
   Base{c(args)}.  On insertion of Δ into the base, the view is maintained
   by the classic delta derivation: evaluate, per branch and per occurrence
   of the base, a variant with that occurrence bound to Δ (recursive
   occurrences bound to the cached value, other base occurrences to the
   grown base); whatever is new seeds a delta-initialized fixpoint run
   ([Fixpoint.apply ~seed ~seed_delta]) that propagates only consequences.

   The delta derivation applies to definitions in the semi-naive class
   whose self-recursion is the root application itself (no scalar/relation
   parameters feeding the recursion) and whose base occurrences are binder
   ranges; anything else falls back to a seeded (still sound, merely less
   incremental) or full recomputation.  Deletions always recompute —
   monotone seeding is unsound under shrinkage. *)

open Dc_relation
open Dc_calculus
open Dc_core

type t = {
  db : Database.t;
  constructor : string;
  base : string; (* base relation variable *)
  args : Ast.arg list;
  mutable value : Relation.t;
  mutable stats : Fixpoint.stats; (* of the last (re)computation *)
}

let application m = Ast.Construct (Ast.Rel m.base, m.constructor, m.args)

let value m = m.value
let last_stats m = m.stats

let def_of db constructor =
  match Database.constructor db constructor with
  | Some d -> d
  | None ->
    raise (Database.Error (Fmt.str "unknown constructor %s" constructor))

let compute ?seed ?seed_delta m =
  let def = def_of m.db m.constructor in
  let env = Database.eval_env m.db in
  let base = Database.get m.db m.base in
  let args = Eval.eval_args env m.args in
  let stats = Fixpoint.fresh_stats () in
  m.value <-
    (match seed with
    | Some previous ->
      Fixpoint.resume ~strategy:(Database.strategy m.db) ~stats ~previous
        ?delta:seed_delta env def base args
    | None ->
      Fixpoint.apply ~strategy:(Database.strategy m.db) ~stats env def base
        args);
  m.stats <- stats

let create db ~constructor ~base ~args =
  let m =
    {
      db;
      constructor;
      base;
      args;
      value = Relation.empty (def_of db constructor).Defs.con_result;
      stats = Fixpoint.fresh_stats ();
    }
  in
  Database.check_query db (application m);
  compute m;
  m

let refresh m = compute m

(* ------------------------------------------------------------------ *)
(* The delta derivation *)

exception Fallback

(* The definition is delta-maintainable when: no parameters (so the only
   self application is the root), every occurrence of the formal is a
   binder range, and every Construct occurrence is a binder-range
   application of the definition itself to the bare formal. *)
let check_maintainable (def : Defs.constructor_def) =
  if def.con_params <> [] then raise Fallback;
  let formal = def.con_formal in
  List.iter
    (fun (b : Ast.branch) ->
      (* the formal must not appear outside binder ranges *)
      if Vars.S.mem formal (Vars.rel_names_formula b.where) then raise Fallback;
      List.iter
        (fun (_, r) ->
          match r with
          | Ast.Rel _ -> ()
          | Ast.Construct (Ast.Rel n, c, [])
            when String.equal n formal && String.equal c def.con_name ->
            ()
          | _ -> raise Fallback)
        b.binders)
    def.con_body

(* Evaluate the delta variants: per branch, one variant per binder over the
   bare formal, with that binder bound to [delta_base], other formal
   binders to the grown base, and recursive applications to [old]. *)
let delta_candidates m (def : Defs.constructor_def) ~old ~delta_base =
  let env0 = Database.eval_env m.db in
  let base = Database.get m.db m.base in
  let delta_name = "__delta_base" in
  let hooks =
    {
      env0.Eval.hooks with
      Eval.on_construct =
        (fun env b d args ->
          if String.equal d.Defs.con_name def.Defs.con_name then
            Relation.with_schema def.con_result old
          else env0.Eval.hooks.Eval.on_construct env b d args);
    }
  in
  let env =
    Eval.bind_rel
      (Eval.bind_rel { env0 with Eval.hooks } def.con_formal
         (Relation.with_schema def.con_formal_schema base))
      delta_name
      (Relation.with_schema def.con_formal_schema delta_base)
  in
  let acc = ref (Relation.empty def.con_result) in
  List.iter
    (fun (b : Ast.branch) ->
      List.iteri
        (fun i (_, r) ->
          match r with
          | Ast.Rel n when String.equal n def.con_formal ->
            let binders =
              List.mapi
                (fun j (v, r) ->
                  if j = i then (v, Ast.Rel delta_name) else (v, r))
                b.binders
            in
            acc :=
              Eval.eval_branch env { b with binders }
                ~emit:(fun acc t -> Relation.add_unchecked t acc)
                !acc
          | _ -> ())
        b.binders)
    def.con_body;
  !acc

(* Insert tuples into the base relation and maintain the view. *)
let insert m tuples =
  let def = def_of m.db m.constructor in
  let old_base = Database.get m.db m.base in
  let fresh =
    List.filter (fun t -> not (Relation.mem t old_base)) tuples
  in
  Database.insert_all m.db m.base fresh;
  if fresh = [] then ()
  else
    match check_maintainable def with
    | () ->
      let delta_base =
        List.fold_left
          (fun r t -> Relation.add_unchecked t r)
          (Relation.empty (Relation.schema old_base))
          fresh
      in
      let candidates =
        delta_candidates m def ~old:m.value ~delta_base
      in
      let seed_delta = Relation.diff candidates m.value in
      compute ~seed:m.value ~seed_delta m
    | exception Fallback ->
      (* still sound: inflationary iteration from the old value *)
      compute ~seed:m.value m

(* Delete a tuple from the base; the seed is invalid, recompute. *)
let delete m tuple =
  Database.delete m.db m.base tuple;
  compute m
