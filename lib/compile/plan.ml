(* Physical query plans: the compiled form of (constructor-free) calculus
   queries, produced at the query-compilation level and interpreted at the
   runtime level (paper §4: "compilation is usually decoupled from
   execution" in a database programming language).

   A compiled comprehension is a union of branch pipelines; each pipeline
   is a sequence of binder steps — a scan or an indexed lookup keyed by
   equality conjuncts on previously bound variables — with residual filters
   attached to the earliest step at which they are closed.  This reifies
   exactly the join scheduling the dynamic evaluator performs, but fixes
   the decisions at compile time and makes them printable (EXPLAIN).

   Recursive constructor applications cannot be compiled into a static
   pipeline (they need the §3.2 fixpoint); the planner only sends
   decompiled/pushed — hence application-free — queries here. *)

open Dc_relation
open Dc_calculus
open Ast

exception Not_compilable of string

let not_compilable fmt = Fmt.kstr (fun s -> raise (Not_compilable s)) fmt

type source =
  | Src_rel of string (* named relation, resolved at run time *)
  | Src_comp of t (* nested compiled comprehension *)

and access =
  | Full_scan
  | Index_lookup of (string * term) list (* attr = closed term *)

and step = {
  s_var : var;
  s_source : source;
  s_access : access;
  s_filters : formula list; (* closed once this step's variable is bound *)
  s_correlated : bool; (* source references earlier binders: evaluate per
                          outer binding *)
}

and branch_plan = {
  bp_prefilters : formula list; (* closed before any binding *)
  bp_steps : step list;
  bp_target : term list; (* [] = identity of the single step *)
}

and t = {
  p_branches : branch_plan list;
  p_schema : Schema.t;
}

(* ------------------------------------------------------------------ *)
(* Compilation *)

type cenv = {
  schema_of_rel : string -> Schema.t;
  bound : Vars.S.t; (* outer variables (correlated compilation) *)
}

let rec source_schema cenv = function
  | Src_rel n -> cenv.schema_of_rel n
  | Src_comp p -> p.p_schema

and compile_source cenv = function
  | Rel n -> Src_rel n
  | Comp branches -> Src_comp (compile cenv branches)
  | (Select _ | Construct _) as r ->
    not_compilable "unresolved application in %a (decompile first)"
      Ast.pp_range r

(* Infer the output schema of a branch from binder schemas, mirroring the
   evaluator's rules. *)
and branch_schema _cenv (b : branch) binder_schemas =
  match b.target with
  | [] -> (
    match binder_schemas with
    | [ (_, s) ] -> s
    | _ -> not_compilable "identity branch must have exactly one binder")
  | ts ->
    let used = Hashtbl.create 8 in
    let ty_of t =
      let rec term_ty = function
        | Const v -> Value.type_of v
        | Param _ -> not_compilable "free parameter in compiled query"
        | Field (v, a) -> (
          match List.assoc_opt v binder_schemas with
          | Some s -> Schema.attr_ty s (Schema.attr_index s a)
          | None -> not_compilable "unbound variable %s" v)
        | Binop (_, x, _) -> term_ty x
      in
      term_ty t
    in
    let attr i t =
      let base =
        match t with
        | Field (_, a) -> a
        | _ -> Fmt.str "c%d" i
      in
      let name = if Hashtbl.mem used base then Fmt.str "%s_%d" base i else base in
      Hashtbl.replace used name ();
      (name, ty_of t)
    in
    Schema.make (List.mapi attr ts)

(* Greedy binder reordering: prefer, at each position, the binder with the
   most equality conjuncts usable as index keys given what is already
   bound (constants first, then join keys), respecting the dependency
   order correlated ranges impose.  Conjunctive WHERE semantics is
   order-independent, so this is always sound. *)
and reorder_binders cenv (b : branch) =
  let conjs = conjuncts b.where in
  let rec pick chosen_rev bound remaining =
    match remaining with
    | [] -> List.rev chosen_rev
    | _ ->
      let eligible =
        List.filter
          (fun (_, range) ->
            Vars.S.subset (Vars.free_vars_range range) bound)
          remaining
      in
      let candidates = if eligible = [] then remaining else eligible in
      let score (v, _) =
        List.length
          (List.filter
             (fun f ->
               match f with
               | Cmp (Eq, Field (v', _), t) | Cmp (Eq, t, Field (v', _)) ->
                 v' = v && Vars.S.subset (Vars.free_vars_term t) bound
               | _ -> false)
             conjs)
      in
      let best =
        List.fold_left
          (fun acc c -> if score c > score acc then c else acc)
          (List.hd candidates) (List.tl candidates)
      in
      pick (best :: chosen_rev)
        (Vars.S.add (fst best) bound)
        (List.filter (fun (v, _) -> v <> fst best) remaining)
  in
  match b.binders with
  | [] | [ _ ] -> b
  | binders -> { b with binders = pick [] cenv.bound binders }

and compile_branch cenv (b : branch) =
  let b = if b.target = [] then b else reorder_binders cenv b in
  let conjs = conjuncts b.where in
  let binder_vars = List.map fst b.binders in
  let position_of f =
    let needed = Vars.S.diff (Vars.free_vars_formula f) cenv.bound in
    let rec last i best = function
      | [] -> best
      | v :: rest -> last (i + 1) (if Vars.S.mem v needed then i else best) rest
    in
    last 0 (-1) binder_vars
  in
  let tagged = List.map (fun f -> (position_of f, f)) conjs in
  let prefilters =
    List.filter_map (fun (i, f) -> if i < 0 then Some f else None) tagged
  in
  let bound_before i =
    List.filteri (fun j _ -> j < i) binder_vars
    |> List.fold_left (fun s v -> Vars.S.add v s) cenv.bound
  in
  let binder_schemas = ref [] in
  let steps =
    List.mapi
      (fun i (v, range) ->
        let source =
          compile_source { cenv with bound = bound_before i } range
        in
        binder_schemas := !binder_schemas @ [ (v, source_schema cenv source) ];
        let here =
          List.filter_map (fun (j, f) -> if j = i then Some f else None) tagged
        in
        let closed t = Vars.S.subset (Vars.free_vars_term t) (bound_before i) in
        let keys, filters =
          List.partition_map
            (fun f ->
              match f with
              | Cmp (Eq, Field (v', a), t) when v' = v && closed t ->
                Either.Left (a, t)
              | Cmp (Eq, t, Field (v', a)) when v' = v && closed t ->
                Either.Left (a, t)
              | f -> Either.Right f)
            here
        in
        let correlated =
          not (Vars.S.subset (Vars.free_vars_range range) cenv.bound)
        in
        let access =
          (* a correlated source is re-evaluated per outer binding; keys
             degrade to filters there *)
          if correlated || keys = [] then Full_scan else Index_lookup keys
        in
        let filters =
          if correlated && keys <> [] then
            List.map (fun (a, t) -> Cmp (Eq, Field (v, a), t)) keys @ filters
          else filters
        in
        {
          s_var = v;
          s_source = source;
          s_access = access;
          s_filters = filters;
          s_correlated = correlated;
        })
      b.binders
  in
  ( { bp_prefilters = prefilters; bp_steps = steps; bp_target = b.target },
    branch_schema cenv b !binder_schemas )

and compile cenv (branches : branch list) =
  match branches with
  | [] -> not_compilable "empty comprehension"
  | _ ->
    let compiled = List.map (compile_branch cenv) branches in
    let schema = snd (List.hd compiled) in
    { p_branches = List.map fst compiled; p_schema = schema }

(* Compile a full query range. *)
let of_range ~schema_of_rel (range : Ast.range) =
  let cenv = { schema_of_rel; bound = Vars.S.empty } in
  match range with
  | Rel n ->
    {
      p_branches =
        [
          {
            bp_prefilters = [];
            bp_steps =
              [
                {
                  s_var = "r";
                  s_source = Src_rel n;
                  s_access = Full_scan;
                  s_filters = [];
                  s_correlated = false;
                };
              ];
            bp_target = [];
          };
        ];
      p_schema = schema_of_rel n;
    }
  | Comp branches -> compile cenv branches
  | r -> not_compilable "unresolved application in %a" Ast.pp_range r

(* ------------------------------------------------------------------ *)
(* Execution *)

(* [use_indexes = false] forces full scans (the E11 ablation: what the
   paper's range-nested evaluation buys over tuple-wise filtering). *)
let run ?(use_indexes = true) env (plan : t) =
  let rec run_plan env (plan : t) =
    List.fold_left
      (fun acc bp -> run_branch env bp acc)
      (Relation.empty plan.p_schema)
      plan.p_branches
  and source_rel env = function
    | Src_rel n -> Eval.lookup_rel env n
    | Src_comp p -> run_plan env p
  and run_branch env (bp : branch_plan) acc =
    if not (List.for_all (Eval.eval_formula env) bp.bp_prefilters) then acc
    else begin
      (* pre-evaluate uncorrelated sources and build their indexes once *)
      let prepared =
        List.map
          (fun step ->
            if step.s_correlated then `Correlated step
            else
            let rel = source_rel env step.s_source in
            let schema = Relation.schema rel in
            match step.s_access with
            | Index_lookup keys when use_indexes ->
              let positions =
                List.map (fun (a, _) -> Schema.attr_index schema a) keys
              in
              `Indexed
                ( step,
                  schema,
                  Index_cache.get env.Eval.icache positions rel,
                  List.map snd keys )
            | Index_lookup keys ->
              (* ablation: evaluate keys as per-tuple filters *)
              let filters =
                List.map (fun (a, t) -> Cmp (Eq, Field (step.s_var, a), t)) keys
              in
              `Scan ({ step with s_filters = filters @ step.s_filters }, schema, rel)
            | Full_scan -> `Scan (step, schema, rel))
          bp.bp_steps
      in
      let rec go env acc = function
        | [] ->
          let t =
            match bp.bp_target with
            | [] -> (
              match bp.bp_steps with
              | [ step ] -> (
                match Eval.SM.find_opt step.s_var env.Eval.vars with
                | Some b -> b.Eval.b_tuple
                | None -> assert false)
              | _ -> assert false)
            | ts -> Tuple.of_list (List.map (Eval.eval_term env) ts)
          in
          Relation.add_unchecked t acc
        | `Scan (step, schema, rel) :: rest ->
          Relation.fold
            (fun t acc ->
              let env' = Eval.bind_var env step.s_var t schema in
              if List.for_all (Eval.eval_formula env') step.s_filters then
                go env' acc rest
              else acc)
            rel acc
        | `Correlated step :: rest ->
          let rel = source_rel env step.s_source in
          let schema = Relation.schema rel in
          Relation.fold
            (fun t acc ->
              let env' = Eval.bind_var env step.s_var t schema in
              if List.for_all (Eval.eval_formula env') step.s_filters then
                go env' acc rest
              else acc)
            rel acc
        | `Indexed (step, schema, idx, key_terms) :: rest ->
          let key = List.map (Eval.eval_term env) key_terms in
          List.fold_left
            (fun acc t ->
              let env' = Eval.bind_var env step.s_var t schema in
              if List.for_all (Eval.eval_formula env') step.s_filters then
                go env' acc rest
              else acc)
            acc
            (Index.lookup_values idx key)
      in
      go env acc prepared
    end
  in
  run_plan env plan

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_access ppf = function
  | Full_scan -> Fmt.string ppf "scan"
  | Index_lookup keys ->
    Fmt.pf ppf "index on %a"
      Fmt.(list ~sep:(any ", ") (fun ppf (a, t) -> Fmt.pf ppf "%s = %a" a Ast.pp_term t))
      keys

let rec pp_source ppf = function
  | Src_rel n -> Fmt.string ppf n
  | Src_comp p -> Fmt.pf ppf "(@[<v>%a@])" pp p

and pp_step ppf s =
  Fmt.pf ppf "%a %s IN %a" pp_access s.s_access s.s_var pp_source s.s_source;
  List.iter (fun f -> Fmt.pf ppf "@   filter %a" Ast.pp_formula f) s.s_filters

and pp_branch ppf bp =
  List.iter
    (fun f -> Fmt.pf ppf "prefilter %a@ " Ast.pp_formula f)
    bp.bp_prefilters;
  Fmt.pf ppf "@[<v2>pipeline:";
  List.iter (fun s -> Fmt.pf ppf "@ %a" pp_step s) bp.bp_steps;
  (match bp.bp_target with
  | [] -> ()
  | ts ->
    Fmt.pf ppf "@ project <%a>" Fmt.(list ~sep:(any ", ") Ast.pp_term) ts);
  Fmt.pf ppf "@]"

and pp ppf plan =
  match plan.p_branches with
  | [ b ] -> pp_branch ppf b
  | bs ->
    Fmt.pf ppf "@[<v2>union:";
    List.iter (fun b -> Fmt.pf ppf "@ %a" pp_branch b) bs;
    Fmt.pf ppf "@]"
