(* Physical query plans: the compiled form of (constructor-free) calculus
   queries, produced at the query-compilation level and interpreted at the
   runtime level (paper §4: "compilation is usually decoupled from
   execution" in a database programming language).

   A compiled comprehension is a union of branch pipelines; each pipeline
   is a sequence of binder steps — a scan or an indexed lookup keyed by
   equality conjuncts on previously bound variables — with residual filters
   attached to the earliest step at which they are closed.  This reifies
   exactly the join scheduling the dynamic evaluator performs, but fixes
   the decisions at compile time and makes them printable (EXPLAIN).

   Recursive constructor applications cannot be compiled into a static
   pipeline (they need the §3.2 fixpoint); the planner only sends
   decompiled/pushed — hence application-free — queries here. *)

open Dc_relation
open Dc_calculus
open Ast

exception Not_compilable of string

let not_compilable fmt = Fmt.kstr (fun s -> raise (Not_compilable s)) fmt

type source =
  | Src_rel of string (* named relation, resolved at run time *)
  | Src_comp of t (* nested compiled comprehension *)

and access =
  | Full_scan
  | Index_lookup of (string * term) list (* attr = closed term *)

and step = {
  s_var : var;
  s_source : source;
  s_access : access;
  s_filters : formula list; (* closed once this step's variable is bound *)
  s_correlated : bool; (* source references earlier binders: evaluate per
                          outer binding *)
}

and branch_plan = {
  bp_prefilters : formula list; (* closed before any binding *)
  bp_steps : step list;
  bp_target : term list; (* [] = identity of the single step *)
}

and t = {
  p_branches : branch_plan list;
  p_schema : Schema.t;
}

(* ------------------------------------------------------------------ *)
(* Compilation *)

type cenv = {
  schema_of_rel : string -> Schema.t;
  bound : Vars.S.t; (* outer variables (correlated compilation) *)
}

let rec source_schema cenv = function
  | Src_rel n -> cenv.schema_of_rel n
  | Src_comp p -> p.p_schema

and compile_source cenv = function
  | Rel n -> Src_rel n
  | Comp branches -> Src_comp (compile cenv branches)
  | (Select _ | Construct _) as r ->
    not_compilable "unresolved application in %a (decompile first)"
      Ast.pp_range r

(* Infer the output schema of a branch from binder schemas, mirroring the
   evaluator's rules. *)
and branch_schema _cenv (b : branch) binder_schemas =
  match b.target with
  | [] -> (
    match binder_schemas with
    | [ (_, s) ] -> s
    | _ -> not_compilable "identity branch must have exactly one binder")
  | ts ->
    let used = Hashtbl.create 8 in
    let ty_of t =
      let rec term_ty = function
        | Const v -> Value.type_of v
        | Param _ -> not_compilable "free parameter in compiled query"
        | Field (v, a) -> (
          match List.assoc_opt v binder_schemas with
          | Some s -> Schema.attr_ty s (Schema.attr_index s a)
          | None -> not_compilable "unbound variable %s" v)
        | Binop (_, x, _) -> term_ty x
      in
      term_ty t
    in
    let attr i t =
      let base =
        match t with
        | Field (_, a) -> a
        | _ -> Fmt.str "c%d" i
      in
      let name = if Hashtbl.mem used base then Fmt.str "%s_%d" base i else base in
      Hashtbl.replace used name ();
      (name, ty_of t)
    in
    Schema.make (List.mapi attr ts)

(* Binder reordering: delegated to the shared IR-level rewrite rule
   ({!Dc_exec.Join_order}) — prefer, at each position, the binder with the
   most equality conjuncts usable as index keys given what is already
   bound (cardinalities are unknown at compile time, so the key count
   decides alone), respecting the dependency order correlated ranges
   impose.  Conjunctive WHERE semantics is order-independent, so this is
   always sound. *)
and reorder_binders cenv (b : branch) =
  match b.binders with
  | [] | [ _ ] -> b
  | binders ->
    let conjs = conjuncts b.where in
    let arr = Array.of_list binders in
    let var_pos = List.mapi (fun i (v, _) -> (v, i)) binders in
    let candidates =
      List.mapi
        (fun i (v, range) ->
          let deps =
            Vars.S.fold
              (fun fv deps ->
                match List.assoc_opt fv var_pos with
                | Some j when j <> i -> j :: deps
                | _ -> deps)
              (Vars.free_vars_range range) []
          in
          let keys_given placed =
            let bound =
              List.fold_left
                (fun s j -> Vars.S.add (fst arr.(j)) s)
                cenv.bound placed
            in
            List.length
              (List.filter
                 (fun f ->
                   match f with
                   | Cmp (Eq, Field (v', _), t) | Cmp (Eq, t, Field (v', _)) ->
                     v' = v && Vars.S.subset (Vars.free_vars_term t) bound
                   | _ -> false)
                 conjs)
          in
          { Dc_exec.Join_order.deps; card = None; keys_given })
        binders
    in
    let order = Dc_exec.Join_order.order candidates in
    { b with binders = List.map (fun i -> arr.(i)) order }

and compile_branch cenv (b : branch) =
  let b = if b.target = [] then b else reorder_binders cenv b in
  let conjs = conjuncts b.where in
  let binder_vars = List.map fst b.binders in
  let position_of f =
    let needed = Vars.S.diff (Vars.free_vars_formula f) cenv.bound in
    let rec last i best = function
      | [] -> best
      | v :: rest -> last (i + 1) (if Vars.S.mem v needed then i else best) rest
    in
    last 0 (-1) binder_vars
  in
  let tagged = List.map (fun f -> (position_of f, f)) conjs in
  let prefilters =
    List.filter_map (fun (i, f) -> if i < 0 then Some f else None) tagged
  in
  let bound_before i =
    List.filteri (fun j _ -> j < i) binder_vars
    |> List.fold_left (fun s v -> Vars.S.add v s) cenv.bound
  in
  let binder_schemas = ref [] in
  let steps =
    List.mapi
      (fun i (v, range) ->
        let source =
          compile_source { cenv with bound = bound_before i } range
        in
        binder_schemas := !binder_schemas @ [ (v, source_schema cenv source) ];
        let here =
          List.filter_map (fun (j, f) -> if j = i then Some f else None) tagged
        in
        let closed t = Vars.S.subset (Vars.free_vars_term t) (bound_before i) in
        let keys, filters =
          List.partition_map
            (fun f ->
              match f with
              | Cmp (Eq, Field (v', a), t) when v' = v && closed t ->
                Either.Left (a, t)
              | Cmp (Eq, t, Field (v', a)) when v' = v && closed t ->
                Either.Left (a, t)
              | f -> Either.Right f)
            here
        in
        let correlated =
          not (Vars.S.subset (Vars.free_vars_range range) cenv.bound)
        in
        let access =
          (* a correlated source is re-evaluated per outer binding; keys
             degrade to filters there *)
          if correlated || keys = [] then Full_scan else Index_lookup keys
        in
        let filters =
          if correlated && keys <> [] then
            List.map (fun (a, t) -> Cmp (Eq, Field (v, a), t)) keys @ filters
          else filters
        in
        {
          s_var = v;
          s_source = source;
          s_access = access;
          s_filters = filters;
          s_correlated = correlated;
        })
      b.binders
  in
  ( { bp_prefilters = prefilters; bp_steps = steps; bp_target = b.target },
    branch_schema cenv b !binder_schemas )

and compile cenv (branches : branch list) =
  match branches with
  | [] -> not_compilable "empty comprehension"
  | _ ->
    let compiled = List.map (compile_branch cenv) branches in
    let schema = snd (List.hd compiled) in
    { p_branches = List.map fst compiled; p_schema = schema }

(* Compile a full query range. *)
let of_range ~schema_of_rel (range : Ast.range) =
  let cenv = { schema_of_rel; bound = Vars.S.empty } in
  match range with
  | Rel n ->
    {
      p_branches =
        [
          {
            bp_prefilters = [];
            bp_steps =
              [
                {
                  s_var = "r";
                  s_source = Src_rel n;
                  s_access = Full_scan;
                  s_filters = [];
                  s_correlated = false;
                };
              ];
            bp_target = [];
          };
        ];
      p_schema = schema_of_rel n;
    }
  | Comp branches -> compile cenv branches
  | r -> not_compilable "unresolved application in %a" Ast.pp_range r

(* ------------------------------------------------------------------ *)
(* Execution: lower the plan onto the shared operator IR and run it on
   the one physical executor.  A [Plan.t] is thereby a thin, printable
   wrapper over IR construction — the compile-time record of decisions,
   with the runtime shared with the calculus evaluator and the Datalog
   engines. *)

module Ir = Dc_exec.Ir

(* [use_indexes = false] forces full scans (the E11 ablation: what the
   paper's range-nested evaluation buys over tuple-wise filtering). *)
let rec lower ~use_indexes env (plan : t) : Ir.t =
  let static_schema env = function
    | Src_rel n -> Relation.schema (Eval.lookup_rel env n)
    | Src_comp p -> p.p_schema
  in
  let lower_branch (bp : branch_plan) : Ir.t =
    let fmt_formula f = Fmt.str "%a" Ast.pp_formula f in
    let add_filters filters node =
      List.fold_left
        (fun node f ->
          Ir.filter ~label:(lazy (fmt_formula f))
            ~pred:(fun env -> Eval.eval_formula env f)
            node)
        node filters
    in
    (* branch prefilters gate the whole pipeline: a filter on the seed.
       They are closed before any binding, so they are also decidable at
       lowering time — a dead branch skips source evaluation entirely. *)
    let node = add_filters bp.bp_prefilters (Ir.seed ()) in
    if not (List.for_all (Eval.eval_formula env) bp.bp_prefilters) then
      Ir.project ~label:(lazy "<dead branch>") ~init:(fun () -> env)
        ~tuple:(fun _ -> assert false)
        node
    else
    let node =
      List.fold_left
        (fun node step ->
          if step.s_correlated then
            let schema = static_schema env step.s_source in
            let gen env =
              Dc_exec.Extent.of_relation ~label:step.s_var
                ~cache:env.Eval.icache
                (source_rel ~use_indexes env step.s_source)
            in
            let bind env t =
              Some (Eval.bind_var env step.s_var t schema)
            in
            add_filters step.s_filters
              (Ir.correlated_scan
                 ~label:(lazy (Fmt.str "%s IN ..." step.s_var))
                 ~gen ~bind node)
          else begin
            let rel = source_rel ~use_indexes env step.s_source in
            let schema = Relation.schema rel in
            let src_label =
              match step.s_source with
              | Src_rel n -> n
              | Src_comp _ -> "<subquery>"
            in
            let ext =
              Dc_exec.Extent.of_relation ~label:src_label
                ~cache:env.Eval.icache rel
            in
            let bind env t = Some (Eval.bind_var env step.s_var t schema) in
            let node =
              match step.s_access with
              | Index_lookup keys when use_indexes ->
                let positions =
                  List.map (fun (a, _) -> Schema.attr_index schema a) keys
                in
                let key_terms = List.map snd keys in
                let key env = List.map (Eval.eval_term env) key_terms in
                Ir.lookup
                  ~label:
                    (lazy
                      (Fmt.str "%s IN %s on (%s)" step.s_var src_label
                         (String.concat ", " (List.map fst keys))))
                  ~src:(Ir.Fixed ext) ~positions ~key ~bind node
              | Index_lookup keys ->
                (* ablation: evaluate keys as per-tuple filters *)
                let filters =
                  List.map
                    (fun (a, t) -> Cmp (Eq, Field (step.s_var, a), t))
                    keys
                in
                add_filters filters
                  (Ir.scan
                     ~label:(lazy (Fmt.str "%s IN %s" step.s_var src_label))
                     ~src:(Ir.Fixed ext) ~bind node)
              | Full_scan ->
                Ir.scan
                  ~label:(lazy (Fmt.str "%s IN %s" step.s_var src_label))
                  ~src:(Ir.Fixed ext) ~bind node
            in
            add_filters step.s_filters node
          end)
        node bp.bp_steps
    in
    let tuple =
      match bp.bp_target with
      | [] -> (
        match bp.bp_steps with
        | [ step ] ->
          fun env ->
            (match Eval.SM.find_opt step.s_var env.Eval.vars with
            | Some b -> b.Eval.b_tuple
            | None -> assert false)
        | _ -> assert false)
      | ts -> fun env -> Tuple.of_list (List.map (Eval.eval_term env) ts)
    in
    let label =
      lazy
        (match bp.bp_target with
        | [] ->
          Fmt.str "[%s]"
            (String.concat ", " (List.map (fun s -> s.s_var) bp.bp_steps))
        | ts ->
          Fmt.str "<%s>"
            (String.concat ", " (List.map (fun t -> Fmt.str "%a" Ast.pp_term t) ts)))
    in
    Ir.project ~label ~init:(fun () -> env) ~tuple node
  in
  match List.map lower_branch plan.p_branches with
  | [ one ] -> one
  | branches -> Ir.union ~label:(lazy "branches") branches

and source_rel ~use_indexes env = function
  | Src_rel n -> Eval.lookup_rel env n
  | Src_comp p -> exec ~use_indexes env p

and exec ~use_indexes env (plan : t) =
  let pipeline = lower ~use_indexes env plan in
  let acc = ref (Relation.empty plan.p_schema) in
  Ir.run ~guard:env.Eval.guard Ir.empty_ctx pipeline (fun t ->
      acc := Relation.add_unchecked t !acc);
  !acc

(* Public entry: lower, record the pipeline for EXPLAIN when the
   environment traces, execute. *)
let run ?(use_indexes = true) env (plan : t) =
  let pipeline = lower ~use_indexes env plan in
  (match env.Eval.trace with
  | Some tr -> Ir.Trace.record tr ~label:"compiled plan" pipeline
  | None -> ());
  let acc = ref (Relation.empty plan.p_schema) in
  Ir.run ~guard:env.Eval.guard Ir.empty_ctx pipeline (fun t ->
      acc := Relation.add_unchecked t !acc);
  !acc

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_access ppf = function
  | Full_scan -> Fmt.string ppf "scan"
  | Index_lookup keys ->
    Fmt.pf ppf "index on %a"
      Fmt.(list ~sep:(any ", ") (fun ppf (a, t) -> Fmt.pf ppf "%s = %a" a Ast.pp_term t))
      keys

let rec pp_source ppf = function
  | Src_rel n -> Fmt.string ppf n
  | Src_comp p -> Fmt.pf ppf "(@[<v>%a@])" pp p

and pp_step ppf s =
  Fmt.pf ppf "%a %s IN %a" pp_access s.s_access s.s_var pp_source s.s_source;
  List.iter (fun f -> Fmt.pf ppf "@   filter %a" Ast.pp_formula f) s.s_filters

and pp_branch ppf bp =
  List.iter
    (fun f -> Fmt.pf ppf "prefilter %a@ " Ast.pp_formula f)
    bp.bp_prefilters;
  Fmt.pf ppf "@[<v2>pipeline:";
  List.iter (fun s -> Fmt.pf ppf "@ %a" pp_step s) bp.bp_steps;
  (match bp.bp_target with
  | [] -> ()
  | ts ->
    Fmt.pf ppf "@ project <%a>" Fmt.(list ~sep:(any ", ") Ast.pp_term) ts);
  Fmt.pf ppf "@]"

and pp ppf plan =
  match plan.p_branches with
  | [ b ] -> pp_branch ppf b
  | bs ->
    Fmt.pf ppf "@[<v2>union:";
    List.iter (fun b -> Fmt.pf ppf "@ %a" pp_branch b) bs;
    Fmt.pf ppf "@]"
