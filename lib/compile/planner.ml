(* The query-compilation level of paper §4: given a query form over
   selected/constructed relations, choose an evaluation method.

   The decision procedure follows the paper:
   1. build the constructor dependency graph (type-checking level) and the
      augmented quant graph of the query;
   2. acyclic applications are decompiled into subqueries on base relations
      (view optimization, rules N1–N3, Cases 1–3 pushdown);
   3. cyclic subgraphs get a fixpoint plan; when the query restricts the
      constructed relation by constants, the capture-rule path (magic
      sets over the translated Horn program) propagates the constants into
      the fixpoint. *)

open Dc_relation
open Dc_calculus
open Dc_core

type method_ =
  | Direct (* evaluate as written: LFP of the application system *)
  | Decompiled of Ast.range (* inlined as a view (acyclic) *)
  | Pushed of Ast.range (* restriction distributed over branches *)
  | Magic of {
      program : Dc_datalog.Syntax.program;
      query : Dc_datalog.Syntax.atom;
      schema : Schema.t;
      residual : Ast.formula; (* conjuncts magic could not absorb *)
      var : Ast.var;
    }

type decision = {
  d_query : Ast.range;
  d_method : method_;
  d_plan : Plan.t option; (* physical plan for Decompiled/Pushed methods *)
  d_quant_graph : Quant_graph.t;
  d_recursive : bool;
  d_notes : string list;
}

let method_name = function
  | Direct -> "direct fixpoint"
  | Decompiled _ -> "decompiled view"
  | Pushed _ -> "pushed restriction"
  | Magic _ -> "magic (capture rule)"

(* ------------------------------------------------------------------ *)

let translate_ctx db =
  {
    Dc_datalog.Translate.lookup_constructor = Database.constructor db;
    schema_of =
      (fun n ->
        match Database.get db n with
        | r -> Some (Relation.schema r)
        | exception Database.Error _ -> None);
  }

let plan db (query : Ast.range) =
  Dc_obs.Obs.Span.timed "plan" @@ fun () ->
  Database.check_query db query;
  let defs =
    List.filter_map (Database.constructor db)
      (List.sort_uniq String.compare
         (List.map (fun (a : Vars.app) -> a.app_con) (Vars.apps_of_range query)
         @ List.concat_map
             (fun (a : Vars.app) ->
               match Database.constructor db a.app_con with
               | Some d ->
                 List.map
                   (fun (a' : Vars.app) -> a'.app_con)
                   (Vars.apps_of_branches d.con_body)
               | None -> [])
             (Vars.apps_of_range query)))
  in
  (* close over transitive dependencies *)
  let rec closure acc =
    let more =
      List.concat_map
        (fun (d : Defs.constructor_def) ->
          List.filter_map
            (fun c ->
              if List.exists (fun (d : Defs.constructor_def) -> d.con_name = c) acc
              then None
              else Database.constructor db c)
            (Positivity.dependencies d))
        acc
    in
    if more = [] then acc else closure (acc @ more)
  in
  let defs = closure defs in
  let dep = Depgraph.build defs in
  let graph = Quant_graph.build ~lookup:(Database.constructor db) query in
  let recursive = Quant_graph.is_recursive graph in
  let notes = ref [] in
  let note fmt = Fmt.kstr (fun s -> notes := s :: !notes) fmt in
  let schema_of_range r =
    (* used by pushdown Case 1 to map attributes positionally *)
    Eval.range_schema (Database.eval_env db) [] r
  in
  let method_ =
    match Pushdown.restricted_application query with
    | Some (v, (Ast.Construct (_, c, _) as app), where) -> (
      let bindings, residual = Pushdown.constant_bindings v where in
      if not (Depgraph.is_recursive dep c) then begin
        (* acyclic application: decompile + push the whole restriction *)
        match
          Pushdown.push_nonrecursive
            ~constructor_of:(Database.constructor db)
            ~schema_of_range v app where
        with
        | pushed ->
          note "constructor %s acyclic: decompiled, restriction pushed" c;
          Pushed (Rewrite.flatten_range pushed)
        | exception Pushdown.Not_applicable msg ->
          note "pushdown not applicable (%s): decompiling only" msg;
          Decompiled
            (Rewrite.decompile ~schema_of:schema_of_range
               ~selector_of:(Database.selector db)
               ~constructor_of:(Database.constructor db)
               ~is_recursive:(Depgraph.is_recursive dep)
               query)
      end
      else if bindings <> [] then begin
        match Database.constructor db c with
        | None -> Direct
        | Some def -> (
          match
            Pushdown.magic_query ~ctx:(translate_ctx db)
              ~schema:def.con_result app bindings
          with
          | program, q ->
            note
              "recursive cycle through %s with %d constant binding(s): \
               capture rule (magic sets)"
              c (List.length bindings);
            Magic
              {
                program;
                query = q;
                schema = def.con_result;
                residual = Ast.conj_list residual;
                var = v;
              }
          | exception Dc_datalog.Translate.Unsupported msg ->
            note "translation unsupported (%s): direct fixpoint" msg;
            Direct)
      end
      else begin
        note "recursive application without constant restriction: fixpoint";
        Direct
      end)
    | Some (_, _, _) | None ->
      if recursive then begin
        note "recursive quant graph: fixpoint evaluation";
        Direct
      end
      else begin
        let has_defs =
          Vars.apps_of_range query <> []
          ||
          match query with
          | Ast.Select _ -> true
          | _ -> Rewrite.flatten_range query <> query
        in
        if has_defs then begin
          note "acyclic query: full decompilation and view optimization";
          Decompiled
            (Rewrite.decompile ~schema_of:schema_of_range
               ~selector_of:(Database.selector db)
               ~constructor_of:(Database.constructor db)
               ~is_recursive:(Depgraph.is_recursive dep)
               query)
        end
        else Direct
      end
  in
  let plan_of_method =
    match method_ with
    | Decompiled q | Pushed q -> (
      let schema_of_rel n =
        match Database.get db n with
        | r -> Relation.schema r
        | exception Database.Error msg -> raise (Plan.Not_compilable msg)
      in
      match Plan.of_range ~schema_of_rel q with
      | p ->
        note "compiled to a physical plan (%d branch pipeline(s))"
          (List.length p.Plan.p_branches);
        Some p
      | exception Plan.Not_compilable msg ->
        note "not compilable to a static plan (%s): interpreting" msg;
        None)
    | Direct | Magic _ -> None
  in
  {
    d_query = query;
    d_method = method_;
    d_plan = plan_of_method;
    d_quant_graph = graph;
    d_recursive = recursive;
    d_notes = List.rev !notes;
  }

(* ------------------------------------------------------------------ *)
(* Runtime level: execute a decision. *)

let edb_for db program =
  Dc_datalog.Syntax.SS.fold
    (fun pred edb ->
      match Database.get db pred with
      | rel -> Dc_datalog.Facts.of_relation pred rel edb
      | exception Database.Error _ -> edb)
    (Dc_datalog.Syntax.edb_preds program)
    (Dc_datalog.Facts.empty ())

let execute ?use_indexes ?trace ?guard ?datalog_stats db (d : decision) =
  match d.d_method, d.d_plan with
  | (Decompiled _ | Pushed _), Some plan ->
    Database.coerce
      (Dc_calculus.Eval.range_schema (Database.eval_env db) [] d.d_query)
      (Plan.run ?use_indexes (Database.eval_env ?trace ?guard db) plan)
  | Direct, _ -> Database.query ?trace ?guard db d.d_query
  | (Decompiled q | Pushed q), None -> Database.query ?trace ?guard db q
  | Magic { program; query; schema; residual; var }, _ ->
    let edb = edb_for db program in
    let guard =
      match guard with
      | Some g -> g
      | None -> Dc_guard.Guard.of_limits (Database.limits db)
    in
    let result =
      Pushdown.run_magic ~guard ?stats:datalog_stats ?trace ~edb ~schema
        program query
    in
    if residual = Ast.True then result
    else
      let env = Database.eval_env db in
      Relation.filter
        (fun t ->
          Eval.eval_formula (Eval.bind_var env var t schema) residual)
        result

let plan_and_execute db query = execute db (plan db query)

(* ------------------------------------------------------------------ *)
(* Prepared query forms.

   "Database programming languages are frequently used to implement
   higher-level interfaces and therefore contain only incompletely
   specified query forms" (§4).  A prepared form is a query with scalar
   parameter placeholders, compiled once — the paper's logical access
   path: "a compiled procedure with dummy constants" — and executed many
   times with actual values. *)

type prepared = {
  pr_params : (string * Dc_relation.Value.ty) list;
  pr_run : Dc_relation.Value.t list -> Relation.t;
  pr_description : string;
}

let prepared_description p = p.pr_description

let prepare db ~params (query : Ast.range) =
  (* typecheck the form once, parameters in scope *)
  Typecheck.check_query
    (Typecheck.with_scalar_params (Database.typecheck_env db) params)
    query;
  let bind_scalars env values =
    if List.length values <> List.length params then
      Dc_calculus.Eval.runtime_error "prepared form expects %d argument(s)"
        (List.length params);
    List.fold_left2
      (fun env (name, ty) v ->
        if Dc_relation.Value.type_of v <> ty then
          Dc_calculus.Eval.runtime_error
            "prepared form: argument %s expects %s" name
            (Dc_relation.Value.type_name ty);
        Eval.bind_scalar env name v)
      env params values
  in
  (* dummy constants close the form for schema inference *)
  let dummies =
    List.map
      (fun (_, ty) ->
        match (ty : Dc_relation.Value.ty) with
        | TInt -> Dc_relation.Value.Int 0
        | TStr -> Dc_relation.Value.Str ""
        | TBool -> Dc_relation.Value.Bool false
        | TFloat -> Dc_relation.Value.Float 0.)
      params
  in
  let dep =
    Depgraph.build
      (List.filter_map (Database.constructor db)
         (Database.constructor_names db))
  in
  (* compile what we can: decompile acyclic applications, then a static
     plan (Param placeholders act as closed index keys) *)
  let compiled =
    match
      Rewrite.decompile
        ~schema_of:(fun r ->
          Eval.range_schema
            (bind_scalars (Database.eval_env db) dummies)
            [] r)
        ~selector_of:(Database.selector db)
        ~constructor_of:(Database.constructor db)
        ~is_recursive:(Depgraph.is_recursive dep)
        query
    with
    | q -> (
      let schema_of_rel n =
        match Database.get db n with
        | r -> Relation.schema r
        | exception Database.Error msg -> raise (Plan.Not_compilable msg)
      in
      match Plan.of_range ~schema_of_rel q with
      | p -> Some p
      | exception Plan.Not_compilable _ -> None)
    | exception _ -> None
  in
  match compiled with
  | Some plan ->
    {
      pr_params = params;
      pr_run =
        (fun values ->
          Plan.run (bind_scalars (Database.eval_env db) values) plan);
      pr_description = Fmt.str "compiled plan:@.%a" Plan.pp plan;
    }
  | None ->
    (* recursive or otherwise uncompilable: interpret per call with the
       parameters bound (the paper's "partial logical access paths") *)
    {
      pr_params = params;
      pr_run =
        (fun values ->
          Eval.eval_range (bind_scalars (Database.eval_env db) values) query);
      pr_description = "interpreted form (recursive application)";
    }

let run_prepared p values = p.pr_run values

let explain ppf (d : decision) =
  Fmt.pf ppf "query: %a@." Ast.pp_range d.d_query;
  Fmt.pf ppf "method: %s@." (method_name d.d_method);
  List.iter (fun n -> Fmt.pf ppf "note: %s@." n) d.d_notes;
  (match d.d_method with
  | Decompiled q | Pushed q ->
    Fmt.pf ppf "rewritten: %a@." Ast.pp_range q;
    (match d.d_plan with
    | Some plan -> Fmt.pf ppf "plan:@.%a@." Plan.pp plan
    | None -> ())
  | Magic { program; query; _ } ->
    Fmt.pf ppf "translated program:@.%a@." Dc_datalog.Syntax.pp_program program;
    Fmt.pf ppf "magic query: %a@." Dc_datalog.Syntax.pp_atom query
  | Direct -> ());
  Quant_graph.pp ppf d.d_quant_graph
