(** Evaluation of constructor applications over aggregated systems
    (MIN/MAX/COUNT/SUM heads): translate to Horn clauses, run the
    aggregate-aware semi-naive engine (per-group bounds, stratified
    COUNT/SUM), read the query predicate back at the declared result
    type.  The front end installs this on every database it creates. *)

open Dc_relation
open Dc_calculus

val eval :
  ?guard:Dc_guard.Guard.t ->
  Dc_core.Database.t ->
  Defs.constructor_def ->
  Relation.t ->
  Eval.arg_value list ->
  Relation.t
(** [guard] defaults to a fresh guard over the database's limits.
    @raise Dc_datalog.Translate.Unsupported outside the Horn fragment
    @raise Dc_datalog.Stratify.Not_stratifiable on recursion through
    COUNT/SUM or negation *)

val install : Dc_core.Database.t -> unit
(** Wire {!eval} in as the database's aggregate evaluator
    ({!Dc_core.Database.set_agg_eval}). *)
