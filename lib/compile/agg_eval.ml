(* Evaluation of constructor applications whose system contains
   aggregated definitions (MIN/MAX/COUNT/SUM heads).

   The core database cannot run these itself: its naive branch-at-a-time
   fixpoint has no notion of a per-group accumulator and would re-emit
   every displaced bound.  This module is the bridge the front end
   installs via {!Dc_core.Database.set_agg_eval}: the application is
   translated to Horn clauses ({!Dc_datalog.Translate.of_application_full},
   which also reports which predicates are aggregated), evaluated with the
   aggregate-aware semi-naive engine (grouped accumulators, per-group
   bounds, displaced results withdrawn at round end, COUNT/SUM strata
   above their bodies), and the query predicate's extent is read back at
   the constructor's declared result type. *)

open Dc_relation
open Dc_calculus
module Database = Dc_core.Database
module Translate = Dc_datalog.Translate
module Facts = Dc_datalog.Facts
module Seminaive = Dc_datalog.Seminaive
module Guard = Dc_guard.Guard

(* Names under which the (already evaluated) base relation and relation
   arguments enter the translation as global relations.  The prefix
   cannot collide with user relations: the surface grammar rejects
   leading underscores. *)
let base_name = "__agg_base"
let arg_name i = Fmt.str "__agg_arg%d" i

let eval ?guard db (def : Defs.constructor_def) (base : Relation.t)
    (args : Eval.arg_value list) =
  let guard =
    match guard with
    | Some g -> g
    | None -> Guard.of_limits (Database.limits db)
  in
  let extra = ref [ (base_name, base) ] in
  let ast_args =
    List.mapi
      (fun i (a : Eval.arg_value) ->
        match a with
        | Eval.V_scalar v -> Ast.Arg_scalar (Ast.Const v)
        | Eval.V_rel r ->
          let n = arg_name i in
          extra := (n, r) :: !extra;
          Ast.Arg_range (Ast.Rel n))
      args
  in
  let range = Ast.Construct (Ast.Rel base_name, def.con_name, ast_args) in
  let ctx =
    {
      Translate.lookup_constructor = Database.constructor db;
      schema_of =
        (fun n ->
          match List.assoc_opt n !extra with
          | Some r -> Some (Relation.schema r)
          | None -> (
            match Database.get db n with
            | r -> Some (Relation.schema r)
            | exception Database.Error _ -> None));
    }
  in
  let program, pred, aggs = Translate.of_application_full ctx range in
  let edb =
    Dc_datalog.Syntax.SS.fold
      (fun p edb ->
        match List.assoc_opt p !extra with
        | Some r -> Facts.of_relation p r edb
        | None -> (
          match Database.get db p with
          | r -> Facts.of_relation p r edb
          | exception Database.Error _ -> edb))
      (Dc_datalog.Syntax.edb_preds program)
      (Facts.empty ())
  in
  let store = Seminaive.run ~guard ~aggs program edb in
  Facts.to_relation def.con_result store pred

(* Install on a database: every application of an aggregated constructor
   system is routed here by [Database.eval_env]. *)
let install db = Database.set_agg_eval db (fun db def base args -> eval db def base args)
