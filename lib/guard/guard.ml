(* The unified resource governor.  See guard.mli for the contract.

   Hot-path design: [tick] is called once per operator row emission in
   the physical executor, so it must cost almost nothing when no limit
   is in force.  The shared [none] guard has every limit at [max_int]
   and no deadline, so a tick is: one (rarely-taken) failpoint-armed
   read, one increment, and one combined comparison.  The deadline is
   polled only every 256 rows — wall clocks are expensive — while
   [round]/[check] poll it unconditionally, so coarse-grained loops
   still respect deadlines even when few rows flow. *)

type limits = {
  l_millis : int option;
  l_rows : int option;
  l_rounds : int option;
}

let no_limits = { l_millis = None; l_rows = None; l_rounds = None }

let limits ?millis ?rows ?rounds () =
  { l_millis = millis; l_rows = rows; l_rounds = rounds }

let pp_limits ppf l =
  let field name = function
    | None -> None
    | Some v -> Some (Fmt.str "%s=%d" name v)
  in
  match
    List.filter_map Fun.id
      [
        field "rows" l.l_rows;
        field "rounds" l.l_rounds;
        field "millis" l.l_millis;
      ]
  with
  | [] -> Fmt.string ppf "none"
  | fs -> Fmt.(list ~sep:(any ", ") string) ppf fs

type reason =
  | Rows_exhausted of int
  | Rounds_exhausted of int
  | Deadline_exceeded of int
  | Cancelled
  | Fault_injected of string

type progress = {
  pg_rows : int;
  pg_rounds : int;
  pg_elapsed_ms : float;
  pg_operator : string option;
  pg_site : string option;
}

exception Exhausted of reason * progress

(* The consumed-budget cells are [Atomic.t]: one guard is shared by all
   worker domains of a parallel round (lib/par), so the row budget is a
   single process-wide pool and exhaustion trips as soon as the *global*
   count crosses the limit — each domain may overshoot by at most its
   in-flight tick, never by a per-domain budget.  Cancellation is an
   atomic flag for the same reason: [cancel] from any domain (the pool's
   first-error hook) is visible to every sibling's next tick. *)
type t = {
  lim_rows : int;
  lim_rounds : int;
  lim_millis : int;
  deadline : float;  (* absolute, Unix epoch seconds; +inf when unset *)
  has_deadline : bool;
  started : float;
  rows : int Atomic.t;
  rounds : int Atomic.t;
  cancelled : bool Atomic.t;
}

let now () = Unix.gettimeofday ()

let none =
  {
    lim_rows = max_int;
    lim_rounds = max_int;
    lim_millis = max_int;
    deadline = infinity;
    has_deadline = false;
    started = 0.;
    rows = Atomic.make 0;
    rounds = Atomic.make 0;
    cancelled = Atomic.make false;
  }

let is_none g = g == none

let create ?millis ?rows ?rounds () =
  let started = now () in
  let lim v = Option.value v ~default:max_int in
  {
    lim_rows = lim rows;
    lim_rounds = lim rounds;
    lim_millis = lim millis;
    deadline =
      (match millis with
      | None -> infinity
      | Some ms -> started +. (float_of_int ms /. 1000.));
    has_deadline = millis <> None;
    started;
    rows = Atomic.make 0;
    rounds = Atomic.make 0;
    cancelled = Atomic.make false;
  }

let of_limits l =
  match l with
  | { l_millis = None; l_rows = None; l_rounds = None } -> none
  | { l_millis; l_rows; l_rounds } ->
      create ?millis:l_millis ?rows:l_rows ?rounds:l_rounds ()

let cancel g = if g != none then Atomic.set g.cancelled true
let rows g = Atomic.get g.rows
let rounds g = Atomic.get g.rounds
let elapsed_ms g = if g == none then 0. else (now () -. g.started) *. 1000.

let progress ?operator ?site g =
  {
    pg_rows = Atomic.get g.rows;
    pg_rounds = Atomic.get g.rounds;
    pg_elapsed_ms = elapsed_ms g;
    pg_operator = operator;
    pg_site = site;
  }

(* Cold path: decide which limit tripped and raise.  Called only after
   the combined hot-path comparison already said "something is wrong",
   so clarity beats speed here.  Cancellation wins over budget trips so
   that a cancelled guard reports [Cancelled] even at a budget edge. *)
let trip ?operator ?site g =
  let reason =
    if Atomic.get g.cancelled then Cancelled
    else if Atomic.get g.rows > g.lim_rows then Rows_exhausted g.lim_rows
    else if Atomic.get g.rounds > g.lim_rounds then
      Rounds_exhausted g.lim_rounds
    else Deadline_exceeded g.lim_millis
  in
  raise (Exhausted (reason, progress ?operator ?site g))

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

module Failpoint = struct
  let armed = ref false
  let table : (string, int ref) Hashtbl.t = Hashtbl.create 7

  let arm site n =
    if n < 1 then invalid_arg "Guard.Failpoint.arm: count must be >= 1";
    Hashtbl.replace table site (ref n);
    armed := true

  let reset () =
    Hashtbl.reset table;
    armed := false

  let pending () =
    Hashtbl.fold (fun site r acc -> (site, !r) :: acc) table []
    |> List.sort compare

  let hit ?guard site =
    (* Failpoints fire deterministically on the main domain only: pool
       workers hitting the same site neither decrement the schedule nor
       race the table, so an armed count of N means N main-domain hits
       regardless of the parallelism degree. *)
    if not (Domain.is_main_domain ()) then ()
    else
    match Hashtbl.find_opt table site with
    | None -> ()
    | Some r ->
        decr r;
        if !r <= 0 then begin
          Hashtbl.remove table site;
          if Hashtbl.length table = 0 then armed := false;
          let g = Option.value guard ~default:none in
          raise (Exhausted (Fault_injected site, progress ~site g))
        end

  let install spec =
    String.split_on_char ',' spec
    |> List.iter (fun part ->
           let part = String.trim part in
           if part <> "" then
             match String.index_opt part '=' with
             | None -> arm part 1
             | Some i ->
                 let site = String.trim (String.sub part 0 i) in
                 let count =
                   String.trim
                     (String.sub part (i + 1) (String.length part - i - 1))
                 in
                 let n =
                   match int_of_string_opt count with
                   | Some n when n >= 1 -> n
                   | _ ->
                       invalid_arg
                         (Fmt.str "Guard.Failpoint.install: bad count %S in %S"
                            count spec)
                 in
                 if site = "" then
                   invalid_arg
                     (Fmt.str "Guard.Failpoint.install: empty site in %S" spec);
                 arm site n)

  (* Arm the env-var schedule once at startup so any binary (tests, CI,
     the CLI) can be fault-injected without code changes. *)
  let () =
    match Sys.getenv_opt "DC_FAILPOINT" with
    | None | Some "" -> ()
    | Some spec -> (
        try install spec
        with Invalid_argument msg ->
          reset ();
          Fmt.epr "warning: ignoring DC_FAILPOINT: %s@." msg)
end

(* ------------------------------------------------------------------ *)
(* Tick sites                                                          *)

(* The [g != none] fast path matters doubly under parallelism: the
   shared unlimited guard would otherwise be a cache line fought over by
   every domain on every emitted row.  [none] can never trip (all limits
   at max_int, no deadline, cancel is a no-op), so skipping its
   bookkeeping is observationally neutral. *)

let tick g label =
  if !Failpoint.armed then Failpoint.hit ~guard:g "exec.row";
  if g != none then begin
    let n = Atomic.fetch_and_add g.rows 1 + 1 in
    if
      n > g.lim_rows
      || Atomic.get g.cancelled
      || (g.has_deadline && n land 255 = 0 && now () > g.deadline)
    then trip ~operator:(Lazy.force label) g
  end

let round g ~site =
  if !Failpoint.armed then Failpoint.hit ~guard:g site;
  if g != none then begin
    let n = Atomic.fetch_and_add g.rounds 1 + 1 in
    if
      n > g.lim_rounds
      || Atomic.get g.cancelled
      || (g.has_deadline && now () > g.deadline)
    then trip ~site g
  end

let check g ~site =
  if !Failpoint.armed then Failpoint.hit ~guard:g site;
  if
    g != none
    && (Atomic.get g.cancelled || (g.has_deadline && now () > g.deadline))
  then trip ~site g

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let pp_reason ppf = function
  | Rows_exhausted n -> Fmt.pf ppf "row budget exhausted (limit %d)" n
  | Rounds_exhausted n -> Fmt.pf ppf "round budget exhausted (limit %d)" n
  | Deadline_exceeded ms -> Fmt.pf ppf "deadline exceeded (limit %d ms)" ms
  | Cancelled -> Fmt.string ppf "cancelled"
  | Fault_injected site -> Fmt.pf ppf "fault injected at %s" site

let pp_progress ppf p =
  Fmt.pf ppf "%d rows, %d rounds, %.1f ms elapsed" p.pg_rows p.pg_rounds
    p.pg_elapsed_ms;
  (match p.pg_operator with
  | Some op -> Fmt.pf ppf ", at operator %s" op
  | None -> ());
  match p.pg_site with
  | Some site -> Fmt.pf ppf ", at site %s" site
  | None -> ()

let pp_report ppf (reason, p) =
  Fmt.pf ppf "@[<v>evaluation stopped: %a@,partial progress: %a@]" pp_reason
    reason pp_progress p
