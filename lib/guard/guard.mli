(** The unified resource governor of the evaluation stack.

    A {!t} carries a wall-clock deadline, a row/step budget, a fixpoint
    round budget, and a cooperative cancellation flag.  The physical
    executor ({!Dc_exec.Ir}) {!tick}s it on every operator emission — the
    same hot-path hooks that maintain the per-operator row counters — and
    every fixpoint driver (constructor fixpoint, the four Datalog engines,
    SLD resolution) calls {!round} once per iteration.  Whichever limit
    trips first raises the single structured error {!Exhausted}, carrying
    the partial progress made (rows produced, rounds completed, elapsed
    time, the EXPLAIN label of the tripping operator).

    Guards are plain mutable values with no global registry: the shared
    {!none} guard never trips, costing one increment and one compare per
    emission, so engines thread a guard unconditionally instead of
    branching on an option on the hot path.

    {!Failpoint} is the deterministic fault-injection layer used to verify
    abort atomicity: "raise at the Nth hit of site S", armed through the
    API or the [DC_FAILPOINT] environment variable. *)

(** Declarative limits (what the surface language's [SET LIMIT] sets). *)
type limits = {
  l_millis : int option;  (** wall-clock budget per evaluation *)
  l_rows : int option;  (** operator row-emission budget *)
  l_rounds : int option;  (** fixpoint / Datalog round budget *)
}

val no_limits : limits

val limits : ?millis:int -> ?rows:int -> ?rounds:int -> unit -> limits

val pp_limits : limits Fmt.t

(** Why an evaluation was stopped. *)
type reason =
  | Rows_exhausted of int  (** row budget (the limit) exceeded *)
  | Rounds_exhausted of int  (** round budget (the limit) exceeded *)
  | Deadline_exceeded of int  (** wall-clock budget in ms exceeded *)
  | Cancelled  (** {!cancel} was called *)
  | Fault_injected of string  (** a {!Failpoint} site fired *)

(** Partial progress at the moment of the trip. *)
type progress = {
  pg_rows : int;  (** operator rows emitted under this guard *)
  pg_rounds : int;  (** fixpoint rounds completed *)
  pg_elapsed_ms : float;
  pg_operator : string option;  (** EXPLAIN label of the tripping operator *)
  pg_site : string option;  (** tick site, when not an operator tick *)
}

exception Exhausted of reason * progress

type t

val none : t
(** The shared never-tripping guard (all limits infinite).  {!cancel} on
    it is a no-op, so it is safe to install as a default everywhere. *)

val create : ?millis:int -> ?rows:int -> ?rounds:int -> unit -> t
(** A fresh guard; omitted limits are infinite.  The deadline clock
    starts now. *)

val of_limits : limits -> t
(** {!create} from declarative limits; returns {!none} when every field
    is [None] (no allocation, no clock read). *)

val is_none : t -> bool
(** Is this the shared {!none} guard (i.e. no limits are in force)? *)

val cancel : t -> unit
(** Cooperative cancellation: the next {!tick}/{!round}/{!check} raises
    [Exhausted (Cancelled, _)].  No-op on {!none}. *)

val rows : t -> int
val rounds : t -> int
val elapsed_ms : t -> float

val tick : t -> string Lazy.t -> unit
(** Hot-path tick, called per operator row emission with the operator's
    (lazy) EXPLAIN label.  Counts the row; trips on row budget or
    cancellation immediately, on the deadline every 256 rows.
    @raise Exhausted *)

val round : t -> site:string -> unit
(** Per-fixpoint-round tick.  Counts the round; trips on round budget,
    cancellation, or deadline (checked unconditionally — rounds are
    coarse).  Also a {!Failpoint} site.  @raise Exhausted *)

val check : t -> site:string -> unit
(** Deadline/cancellation check without counting anything (evaluation
    entry points).  Also a {!Failpoint} site.  @raise Exhausted *)

val pp_reason : reason Fmt.t
val pp_progress : progress Fmt.t

val pp_report : (reason * progress) Fmt.t
(** The user-facing exhaustion report: reason, partial progress, and the
    tripping operator's EXPLAIN label. *)

(** Deterministic fault injection: a site fires (raises
    [Exhausted (Fault_injected site, _)]) at its Nth hit, then disarms.
    Sites in the stack: ["exec.row"] (every executor emission),
    ["eval.branch"] (calculus branch evaluation), ["fixpoint.round"],
    ["fixpoint.commit"] (mid round-commit, between per-application
    updates), ["datalog.round"], ["tabled.round"].

    When nothing is armed the cost is one mutable bool read per tick. *)
module Failpoint : sig
  val armed : bool ref
  (** True while any site is armed; hot paths gate on this. *)

  val arm : string -> int -> unit
  (** [arm site n]: the [n]th {!hit} of [site] raises (n >= 1). *)

  val install : string -> unit
  (** Parse and arm a schedule: ["site=N,site=N,..."]; a bare ["site"]
      means [site=1].  The [DC_FAILPOINT] environment variable is
      installed at startup (invalid specs are ignored with a warning).
      @raise Invalid_argument on a malformed spec *)

  val reset : unit -> unit
  (** Disarm every site. *)

  val hit : ?guard:t -> string -> unit
  (** Count one hit of [site]; raises when its counter reaches zero.
      [guard] supplies the progress snapshot for the error.
      @raise Exhausted *)

  val pending : unit -> (string * int) list
  (** Armed sites and their remaining hit counts. *)
end
