(** The network front end: a Unix-socket / TCP listener serving the
    {!Wire} protocol over {!Dc_server.Server} sessions, plus the client
    used by tests, bench, and [dbpl connect].

    One accept thread per listener and one thread per connection; the
    writer thread never touches a socket, so a hostile or stalled peer
    can only ever cost its own connection: incoming frame lengths are
    validated against [max_frame] before the body is read, every
    in-flight read/write runs under [io_timeout], and any protocol
    violation earns an [Err Protocol] response and a closed connection. *)

open Dc_relation

exception Timeout
(** An in-flight frame read/write exceeded its timeout. *)

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : addr Fmt.t

val addr_of_string : string -> addr option
(** Parse ["unix:/path"], ["/path"], ["tcp:host:port"], ["host:port"],
    [":port"], or ["port"] (bare ports bind 127.0.0.1). *)

(** {1 Listener} *)

type listener

val listen :
  ?max_frame:int ->
  ?io_timeout:float ->
  ?idle_timeout:float ->
  Dc_server.Server.t ->
  addr ->
  listener
(** Bind [addr] and serve connections over [srv]'s sessions (one session
    per connection, opened after the handshake).  [max_frame] (default
    {!Wire.default_max_frame}) bounds incoming frame payloads;
    [io_timeout] (default 30s) bounds each in-flight frame read/write;
    [idle_timeout] (default negative = forever) bounds the wait for a
    new request between statements.  TCP port [0] binds an ephemeral
    port — recover it with {!bound_port}. *)

val stop : listener -> unit
(** Close the listening socket, disconnect every live connection, and
    join all threads.  Idempotent.  Unix socket files are unlinked. *)

val bound_addr : listener -> Unix.sockaddr
val bound_port : listener -> int
(** The actual TCP port (after ephemeral binding).
    @raise Invalid_argument on a unix-socket listener. *)

val connection_count : listener -> int

(** {1 Client} *)

module Client : sig
  exception Remote of Wire.error_code * string
  (** The server answered with an [Err] frame (or broke protocol). *)

  type t

  val connect : ?max_frame:int -> ?timeout:float -> addr -> t
  (** Connect and handshake.  [timeout] (default 30s) bounds every
      subsequent request round trip. *)

  val exec : t -> string -> string
  (** Execute DBPL statements, returning their printed output. *)

  val query : t -> string -> int * string list * Tuple.t list
  (** Evaluate one [QUERY ...;] statement: observed snapshot version,
      column names, and result tuples. *)

  val snapshot : t -> int * int option * int * int * string
  (** [SHOW SNAPSHOT] structured: version, durable LSN, relation count,
      view count, and the rendered summary. *)

  val metrics : t -> [ `Text | `Json ] -> string

  val close : t -> unit
  (** Send [Bye] (best effort) and close the socket.  Idempotent. *)
end
