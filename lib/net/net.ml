(* The network front end: a Unix-socket/TCP listener serving the wire
   protocol over Server sessions, and the client used by tests, bench,
   and [dbpl connect].

   Thread model: one accept thread per listener, one thread per
   connection.  Connection threads spend their lives blocked in
   [Unix.select]/[read]/[write] (releasing the runtime lock) or inside
   [Server] calls — reads evaluate on pool worker domains, writes block
   on the writer's group commit.  The writer thread itself never touches
   a socket, so a slow, stalled, or hostile peer can only ever wedge its
   own connection thread:

   - the length prefix of an incoming frame is validated against this
     side's [max_frame] before one body byte is read or allocated, so a
     hostile peer cannot balloon memory;
   - every read and write of an in-flight frame runs under [io_timeout];
     a peer that stalls mid-frame is disconnected — only *waiting for a
     new request* (the idle gap between statements) is exempt;
   - any protocol violation (bad CRC, unknown tag, oversized claim)
     earns a best-effort [Err Protocol] response and a closed
     connection, never a crash.

   Instruments: dc_net_connections (gauge), dc_net_connections_total,
   dc_net_frames_total{dir}, dc_net_bytes_total{dir},
   dc_net_protocol_errors_total, dc_net_requests_total{kind}. *)

open Dc_relation
open Dc_core
module Codec = Dc_wal.Codec
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Server = Dc_server.Server

exception Timeout

(* a peer closing mid-write must surface as EPIPE on the offending
   connection, not kill the whole process *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

(* "unix:/path", "/path", "tcp:host:port", "host:port", ":port", "port" *)
let addr_of_string s =
  let s = String.trim s in
  let tcp rest =
    match String.rindex_opt rest ':' with
    | Some i ->
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      let host = if host = "" then "127.0.0.1" else host in
      (match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> Some (Tcp (host, p))
      | _ -> None)
    | None -> (
      match int_of_string_opt rest with
      | Some p when p >= 0 && p < 65536 -> Some (Tcp ("127.0.0.1", p))
      | _ -> None)
  in
  if s = "" then None
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Some (Unix_sock (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if s.[0] = '/' || s.[0] = '.' then Some (Unix_sock s)
  else tcp s

(* ------------------------------------------------------------------ *)
(* Instruments *)

let g_conns = lazy (Obs.Gauge.make "dc_net_connections")
let c_conns = lazy (Obs.Counter.make "dc_net_connections_total")
let c_proto_errors = lazy (Obs.Counter.make "dc_net_protocol_errors_total")

let dir_counter name dir = Obs.Counter.make ~labels:[ ("dir", dir) ] name
let c_frames_in = lazy (dir_counter "dc_net_frames_total" "in")
let c_frames_out = lazy (dir_counter "dc_net_frames_total" "out")
let c_bytes_in = lazy (dir_counter "dc_net_bytes_total" "in")
let c_bytes_out = lazy (dir_counter "dc_net_bytes_total" "out")

let c_requests kind =
  Obs.Counter.make ~labels:[ ("kind", kind) ] "dc_net_requests_total"

let c_req_stmt = lazy (c_requests "stmt")
let c_req_query = lazy (c_requests "query")
let c_req_other = lazy (c_requests "other")

(* ------------------------------------------------------------------ *)
(* Timed frame I/O over a file descriptor *)

(* [timeout < 0.] means wait forever. *)
let wait_io ~read fd timeout =
  let r, w = if read then ([ fd ], []) else ([], [ fd ]) in
  let rec wait () =
    match Unix.select r w [] timeout with
    | [], [], [] -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

(* Read exactly [len] bytes under [timeout] per chunk.  [eof_ok] permits
   a clean end-of-stream before the first byte (returns [None]). *)
let read_exact ?(eof_ok = false) fd ~timeout len =
  let buf = Bytes.create len in
  let got = ref 0 in
  let eof = ref false in
  while !got < len && not !eof do
    wait_io ~read:true fd timeout;
    match Unix.read fd buf !got (len - !got) with
    | 0 ->
      if eof_ok && !got = 0 then eof := true
      else raise (Wire.Protocol_error "connection closed mid-frame")
    | n -> got := !got + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  done;
  if !eof then None else Some (Bytes.unsafe_to_string buf)

let write_all fd ~timeout s =
  let len = String.length s in
  let sent = ref 0 in
  while !sent < len do
    wait_io ~read:false fd timeout;
    match Unix.write_substring fd s !sent (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  done;
  if Obs.on () then Obs.Counter.add (Lazy.force c_bytes_out) len

(* Receive one frame payload.  The 8-byte header is read first and its
   declared length checked against [max_frame] before any body byte is
   read — an oversized claim never allocates.  [idle] bounds the wait
   for the first header byte (the between-requests gap); [timeout]
   bounds every subsequent chunk. *)
let recv_frame ?(idle = -1.) fd ~timeout ~max_frame =
  wait_io ~read:true fd idle;
  match read_exact ~eof_ok:true fd ~timeout 8 with
  | None -> None
  | Some header ->
    let c = Codec.cursor header in
    let len = Codec.read_u32 c in
    let crc = Codec.read_u32 c in
    if len > max_frame then
      raise
        (Wire.Protocol_error
           (Fmt.str "frame of %d bytes exceeds max_frame %d" len max_frame));
    let payload =
      match read_exact fd ~timeout len with
      | Some p -> p
      | None -> assert false (* eof_ok is false *)
    in
    if Codec.crc32 payload <> crc then
      raise (Wire.Protocol_error "frame CRC mismatch");
    if Obs.on () then begin
      Obs.Counter.inc (Lazy.force c_frames_in);
      Obs.Counter.add (Lazy.force c_bytes_in) (len + 8)
    end;
    Some payload

let send_frame fd ~timeout payload =
  write_all fd ~timeout (Codec.frame_string payload);
  if Obs.on () then Obs.Counter.inc (Lazy.force c_frames_out)

(* ------------------------------------------------------------------ *)
(* Error taxonomy *)

let classify_exn : exn -> Wire.error_code * string = function
  | Dc_lang.Lexer.Lex_error m | Dc_lang.Parser.Parse_error m -> (Wire.Parse, m)
  | Dc_calculus.Typecheck.Error m -> (Wire.Type, m)
  | Dc_lang.Elaborate.Elab_error m
  | Dc_lang.Storage.Storage_error m
  | Database.Error m
  | Dc_ivm.Ivm.Error m
  | Dc_calculus.Eval.Runtime_error m
  | Fixpoint.Divergence m
  | Relation.Key_violation m
  | Selector.Selector_violation m ->
    (Wire.Semantic, m)
  | Guard.Exhausted (reason, progress) ->
    (Wire.Limit, Fmt.str "%a" Guard.pp_report (reason, progress))
  | Server.Error m -> (Wire.Server, m)
  | Wire.Protocol_error m | Codec.Corrupt m -> (Wire.Protocol, m)
  | e -> (Wire.Internal, Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Listener *)

type conn = { c_fd : Unix.file_descr; mutable c_thread : Thread.t option }

type listener = {
  srv : Server.t;
  addr : addr;
  lfd : Unix.file_descr;
  sockaddr : Unix.sockaddr;
  max_frame : int;
  io_timeout : float;
  idle_timeout : float;
  m : Mutex.t;
  mutable conns : conn list;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
}

let bound_addr l = Unix.getsockname l.lfd

let bound_port l =
  match bound_addr l with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "Net.bound_port: unix socket"

let connection_count l = Mutex.protect l.m (fun () -> List.length l.conns)

let handle_request l session = function
  | Wire.Stmt src ->
    if Obs.on () then Obs.Counter.inc (Lazy.force c_req_stmt);
    Wire.Output (Server.execute session src)
  | Wire.Query src ->
    if Obs.on () then Obs.Counter.inc (Lazy.force c_req_query);
    let rel, version = Server.query_string session src in
    Wire.Rows
      {
        version;
        columns = Schema.attr_names (Relation.schema rel);
        tuples = Relation.to_list rel;
      }
  | Wire.Snapshot ->
    if Obs.on () then Obs.Counter.inc (Lazy.force c_req_other);
    let snap = Database.snapshot (Server.db l.srv) in
    Wire.Snap
      {
        version = Snapshot.version snap;
        durable_lsn = Snapshot.durable_lsn snap;
        relations = Snapshot.relation_count snap;
        views = List.length (Snapshot.view_names snap);
        summary = Fmt.str "%a" Snapshot.pp_summary snap;
      }
  | Wire.Metrics fmt ->
    if Obs.on () then Obs.Counter.inc (Lazy.force c_req_other);
    Wire.Metrics_body
      (match fmt with `Text -> Obs.to_prometheus () | `Json -> Obs.to_json ())
  | Wire.Bye ->
    if Obs.on () then Obs.Counter.inc (Lazy.force c_req_other);
    Wire.Bye_ok

let send_response l fd resp =
  let payload = Wire.encode_response resp in
  send_frame fd ~timeout:l.io_timeout payload

(* Serve one connection to completion.  Raises nothing: every exit path
   is a normal return; the caller closes the socket. *)
let serve_conn l fd =
  (* handshake: the client preamble must arrive within io_timeout — an
     endpoint that connects and says nothing is not yet a session *)
  match
    match read_exact ~eof_ok:true fd ~timeout:l.io_timeout Wire.preamble_length with
    | None -> None
    | Some pre -> Some (Wire.decode_preamble pre)
  with
  | None -> ()
  | exception e ->
    if Obs.on () then Obs.Counter.inc (Lazy.force c_proto_errors);
    let code, message = classify_exn e in
    (try send_response l fd (Wire.Err { code; message }) with _ -> ())
  | Some peer_max -> (
    match write_all fd ~timeout:l.io_timeout
            (Wire.encode_preamble ~max_frame:l.max_frame)
    with
    | exception _ -> ()
    | () -> (
      match Server.open_session l.srv with
      | exception e ->
        let code, message = classify_exn e in
        (try send_response l fd (Wire.Err { code; message }) with _ -> ())
      | session ->
        let send resp =
          let payload = Wire.encode_response resp in
          let payload =
            if String.length payload > peer_max then
              Wire.encode_response
                (Wire.Err
                   {
                     code = Wire.Server;
                     message =
                       Fmt.str "response of %d bytes exceeds peer max_frame %d"
                         (String.length payload) peer_max;
                   })
            else payload
          in
          send_frame fd ~timeout:l.io_timeout payload
        in
        let rec loop () =
          match
            recv_frame ~idle:l.idle_timeout fd ~timeout:l.io_timeout
              ~max_frame:l.max_frame
          with
          | None -> () (* clean EOF between requests *)
          | Some payload -> (
            match Wire.decode_request payload with
            | exception e ->
              if Obs.on () then Obs.Counter.inc (Lazy.force c_proto_errors);
              let code, message = classify_exn e in
              (try send (Wire.Err { code; message }) with _ -> ())
            | Wire.Bye -> ( try send Wire.Bye_ok with _ -> ())
            | req ->
              let resp =
                try handle_request l session req
                with e ->
                  let code, message = classify_exn e in
                  Wire.Err { code; message }
              in
              send resp;
              loop ())
          | exception Timeout -> ()
          | exception e ->
            (* transport-level violation: oversized claim, CRC mismatch,
               torn frame — answer if the pipe still works, then drop *)
            if Obs.on () then Obs.Counter.inc (Lazy.force c_proto_errors);
            let code, message = classify_exn e in
            (try send (Wire.Err { code; message }) with _ -> ())
        in
        let finally () = Server.close_session session in
        Fun.protect ~finally (fun () -> try loop () with _ -> ())))

let conn_thread l conn () =
  (try serve_conn l conn.c_fd with _ -> ());
  (try Unix.close conn.c_fd with _ -> ());
  Mutex.protect l.m (fun () ->
      l.conns <- List.filter (fun c -> c != conn) l.conns);
  if Obs.on () then Obs.Gauge.add (Lazy.force g_conns) (-1.)

let accept_loop l () =
  let continue = ref true in
  while !continue do
    (* poll so [stop] is noticed: closing an fd does not wake a thread
       blocked in accept(2) *)
    if Mutex.protect l.m (fun () -> l.stopping) then continue := false
    else
      match wait_io ~read:true l.lfd 0.25 with
      | exception Timeout -> ()
      | exception _ -> continue := false
      | () -> (
        match Unix.accept ~cloexec:true l.lfd with
    | fd, _peer ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> () (* unix-domain sockets *));
      let conn = { c_fd = fd; c_thread = None } in
      let admitted =
        Mutex.protect l.m (fun () ->
            if l.stopping then false
            else begin
              l.conns <- conn :: l.conns;
              true
            end)
      in
      if admitted then begin
        if Obs.on () then begin
          Obs.Gauge.add (Lazy.force g_conns) 1.;
          Obs.Counter.inc (Lazy.force c_conns)
        end;
        conn.c_thread <- Some (Thread.create (conn_thread l conn) ())
      end
          else (try Unix.close fd with _ -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception _ ->
          (* the listening socket was closed by [stop] *)
          continue := false)
  done

let listen ?(max_frame = Wire.default_max_frame) ?(io_timeout = 30.)
    ?(idle_timeout = -1.) srv addr =
  if max_frame < Wire.min_max_frame then
    invalid_arg "Net.listen: max_frame below Wire.min_max_frame";
  Lazy.force ignore_sigpipe;
  let domain, sockaddr =
    match addr with
    | Unix_sock path ->
      (* a stale socket file from a dead process blocks bind *)
      (match (Unix.stat path).Unix.st_kind with
      | Unix.S_SOCK -> ( try Unix.unlink path with _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
            invalid_arg (Fmt.str "Net.listen: cannot resolve %s" host)
          | { Unix.h_addr_list; _ } -> h_addr_list.(0)
          | exception Not_found ->
            invalid_arg (Fmt.str "Net.listen: cannot resolve %s" host))
      in
      (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  in
  let lfd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind lfd sockaddr;
     Unix.listen lfd 64
   with e ->
     (try Unix.close lfd with _ -> ());
     raise e);
  let l =
    {
      srv;
      addr;
      lfd;
      sockaddr;
      max_frame;
      io_timeout;
      idle_timeout;
      m = Mutex.create ();
      conns = [];
      accept_thread = None;
      stopping = false;
    }
  in
  l.accept_thread <- Some (Thread.create (accept_loop l) ());
  l

let stop l =
  let first =
    Mutex.protect l.m (fun () ->
        if l.stopping then false
        else begin
          l.stopping <- true;
          true
        end)
  in
  if first then begin
    (* the accept loop polls [stopping]; join it before closing its fd *)
    (match l.accept_thread with
    | Some th ->
      Thread.join th;
      l.accept_thread <- None
    | None -> ());
    (try Unix.close l.lfd with _ -> ());
    (* shut live connections down (threads close the fds themselves) *)
    let conns = Mutex.protect l.m (fun () -> l.conns) in
    List.iter
      (fun c -> try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with _ -> ())
      conns;
    List.iter (fun c -> Option.iter Thread.join c.c_thread) conns;
    match l.addr with
    | Unix_sock path -> ( try Unix.unlink path with _ -> ())
    | Tcp _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Client *)

module Client = struct
  exception Remote of Wire.error_code * string

  type t = {
    fd : Unix.file_descr;
    max_frame : int; (* bound on incoming frames *)
    peer_max : int; (* the server's advertised bound *)
    timeout : float;
    m : Mutex.t; (* one in-flight request per client *)
    mutable closed : bool;
  }

  let connect ?(max_frame = Wire.default_max_frame) ?(timeout = 30.) addr =
    Lazy.force ignore_sigpipe;
    let domain, sockaddr =
      match addr with
      | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
      | Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> raise Not_found
            | { Unix.h_addr_list; _ } -> h_addr_list.(0))
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
    in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd sockaddr;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      write_all fd ~timeout (Wire.encode_preamble ~max_frame);
      let peer_max =
        match read_exact fd ~timeout Wire.preamble_length with
        | Some pre -> Wire.decode_preamble pre
        | None -> assert false
      in
      { fd; max_frame; peer_max; timeout; m = Mutex.create (); closed = false }
    with e ->
      (try Unix.close fd with _ -> ());
      raise e

  let close c =
    if not c.closed then begin
      c.closed <- true;
      (* best-effort goodbye so the server logs a clean disconnect *)
      (try
         send_frame c.fd ~timeout:c.timeout (Wire.encode_request Wire.Bye);
         ignore
           (recv_frame ~idle:c.timeout c.fd ~timeout:c.timeout
              ~max_frame:c.max_frame)
       with _ -> ());
      try Unix.close c.fd with _ -> ()
    end

  let roundtrip c req =
    Mutex.protect c.m (fun () ->
        if c.closed then raise (Remote (Wire.Server, "client is closed"));
        let payload = Wire.encode_request req in
        if String.length payload > c.peer_max then
          raise
            (Remote
               ( Wire.Protocol,
                 Fmt.str "request of %d bytes exceeds server max_frame %d"
                   (String.length payload) c.peer_max ));
        send_frame c.fd ~timeout:c.timeout payload;
        match
          recv_frame ~idle:c.timeout c.fd ~timeout:c.timeout
            ~max_frame:c.max_frame
        with
        | None ->
          c.closed <- true;
          (try Unix.close c.fd with _ -> ());
          raise (Remote (Wire.Server, "server closed the connection"))
        | Some resp -> (
          match Wire.decode_response resp with
          | Wire.Err { code; message } -> raise (Remote (code, message))
          | resp -> resp))

  let exec c src =
    match roundtrip c (Wire.Stmt src) with
    | Wire.Output out -> out
    | r ->
      raise
        (Remote (Wire.Protocol, Fmt.str "unexpected reply %a" Wire.pp_response r))

  let query c src =
    match roundtrip c (Wire.Query src) with
    | Wire.Rows { version; columns; tuples } -> (version, columns, tuples)
    | r ->
      raise
        (Remote (Wire.Protocol, Fmt.str "unexpected reply %a" Wire.pp_response r))

  let snapshot c =
    match roundtrip c Wire.Snapshot with
    | Wire.Snap s -> (s.version, s.durable_lsn, s.relations, s.views, s.summary)
    | r ->
      raise
        (Remote (Wire.Protocol, Fmt.str "unexpected reply %a" Wire.pp_response r))

  let metrics c fmt =
    match roundtrip c (Wire.Metrics fmt) with
    | Wire.Metrics_body body -> body
    | r ->
      raise
        (Remote (Wire.Protocol, Fmt.str "unexpected reply %a" Wire.pp_response r))
end
