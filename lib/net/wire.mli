(** The DBPL wire protocol: frame grammar and payload codecs, pure
    bytes-in/bytes-out (no sockets — the protocol fuzzer drives these
    decoders directly).

    Connections open with a fixed 9-byte preamble (magic ["DCNP"], one
    version byte, a little-endian u32 advertising the largest frame
    payload the sender accepts), client first, server answering with its
    own.  Every subsequent message is one CRC-framed payload in the
    WAL's {!Dc_wal.Codec} convention — [\[u32 len\]\[u32 crc\]\[payload\]]
    — whose first byte is the message tag.  One request frame yields
    exactly one response frame. *)

open Dc_relation

exception Protocol_error of string
(** A peer violated the protocol (bad preamble, oversized frame claim,
    CRC mismatch at the transport layer).  Distinct from
    {!Dc_wal.Codec.Corrupt}, which the payload decoders raise on
    malformed message bodies; the listener maps both to an [Err]
    response with the [Protocol] code and closes the connection. *)

val magic : string
val version : int

val default_max_frame : int
(** Default bound on incoming frame payloads (8 MiB). *)

val min_max_frame : int
(** Smallest advertisable bound (4 KiB) — a peer claiming less is
    rejected at the handshake. *)

val preamble_length : int

(** {1 Messages} *)

type error_code =
  | Parse
  | Type
  | Semantic
  | Limit
  | Server
  | Protocol
  | Internal

type request =
  | Stmt of string  (** execute statements; replied with [Output] *)
  | Query of string  (** exactly one QUERY; replied with [Rows] *)
  | Snapshot  (** replied with [Snap] *)
  | Metrics of [ `Text | `Json ]  (** replied with [Metrics_body] *)
  | Bye  (** replied with [Bye_ok]; the connection then closes *)

type response =
  | Output of string
  | Rows of { version : int; columns : string list; tuples : Tuple.t list }
      (** query result with the snapshot version it observed *)
  | Snap of {
      version : int;
      durable_lsn : int option;
      relations : int;
      views : int;
      summary : string;
    }
  | Metrics_body of string
  | Bye_ok
  | Err of { code : error_code; message : string }

(** {1 Handshake} *)

val encode_preamble : max_frame:int -> string

val decode_preamble : string -> int
(** Validate a peer preamble and return its advertised [max_frame].
    @raise Protocol_error on bad magic, version, or bound. *)

(** {1 Payload codecs}

    Encoders produce the unframed payload (frame it with
    {!Dc_wal.Codec.frame_string}); decoders are strict — an unknown tag,
    a malformed body, or trailing bytes raise {!Dc_wal.Codec.Corrupt},
    and nothing else. *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** {1 Comparison and printing (tests)} *)

val error_code_to_int : error_code -> int
val error_code_of_int : int -> error_code
val pp_error_code : error_code Fmt.t
val equal_request : request -> request -> bool
val equal_response : response -> response -> bool
val pp_request : request Fmt.t
val pp_response : response Fmt.t
