(* The wire protocol: frame grammar and payload codecs.

   Everything after the handshake travels in the WAL's framing
   convention ([Codec]): [u32 len][u32 crc32(payload)][payload], varints
   and tagged values inside.  One request frame yields exactly one
   response frame; the first payload byte is the message tag.

   Handshake: the client speaks first with a fixed 9-byte preamble —
   magic "DCNP", one protocol-version byte, and a little-endian u32
   advertising the largest frame *payload* the sender is willing to
   receive.  The server validates and answers with its own preamble.
   Each side enforces its own bound on incoming frames (the length
   prefix is checked against it before the body is read or allocated)
   and respects the peer's bound when sending.

   This module is pure bytes-in/bytes-out — no sockets — so the
   protocol fuzzer exercises every decoder without a listener. *)

open Dc_relation
module Codec = Dc_wal.Codec

exception Protocol_error of string

let proto_error fmt = Fmt.kstr (fun s -> raise (Protocol_error s)) fmt
let magic = "DCNP"
let version = 1
let default_max_frame = 8 * 1024 * 1024
let min_max_frame = 4096
let preamble_length = String.length magic + 1 + 4

(* ------------------------------------------------------------------ *)
(* Messages *)

type error_code =
  | Parse (* lexing / parsing *)
  | Type (* typechecking *)
  | Semantic (* elaboration, storage, constraint violations *)
  | Limit (* guard budget exhausted *)
  | Server (* admission control, shutdown, overload *)
  | Protocol (* malformed frame or message *)
  | Internal (* anything unclassified *)

let error_code_to_int = function
  | Parse -> 1
  | Type -> 2
  | Semantic -> 3
  | Limit -> 4
  | Server -> 5
  | Protocol -> 6
  | Internal -> 7

let error_code_of_int = function
  | 1 -> Parse
  | 2 -> Type
  | 3 -> Semantic
  | 4 -> Limit
  | 5 -> Server
  | 6 -> Protocol
  | 7 -> Internal
  | n -> raise (Codec.Corrupt (Fmt.str "unknown error code %d" n))

let pp_error_code ppf c =
  Fmt.string ppf
    (match c with
    | Parse -> "parse"
    | Type -> "type"
    | Semantic -> "semantic"
    | Limit -> "limit"
    | Server -> "server"
    | Protocol -> "protocol"
    | Internal -> "internal")

type request =
  | Stmt of string (* execute statements, reply [Output] *)
  | Query of string (* one QUERY statement, reply [Rows] *)
  | Snapshot (* reply [Snap] *)
  | Metrics of [ `Text | `Json ] (* reply [Metrics_body] *)
  | Bye (* reply [Bye_ok], then the connection closes *)

type response =
  | Output of string
  | Rows of { version : int; columns : string list; tuples : Tuple.t list }
  | Snap of {
      version : int;
      durable_lsn : int option;
      relations : int;
      views : int;
      summary : string;
    }
  | Metrics_body of string
  | Bye_ok
  | Err of { code : error_code; message : string }

(* ------------------------------------------------------------------ *)
(* Handshake preamble *)

let encode_preamble ~max_frame =
  let buf = Buffer.create preamble_length in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Codec.u32 buf max_frame;
  Buffer.contents buf

let decode_preamble s =
  if String.length s <> preamble_length then
    proto_error "preamble: expected %d bytes, got %d" preamble_length
      (String.length s);
  if not (String.equal (String.sub s 0 4) magic) then
    proto_error "preamble: bad magic %S (not a DBPL peer?)" (String.sub s 0 4);
  let v = Char.code s.[4] in
  if v <> version then
    proto_error "preamble: protocol version %d, this peer speaks %d" v version;
  let max_frame = Codec.read_u32 (Codec.cursor ~pos:5 s) in
  if max_frame < min_max_frame then
    proto_error "preamble: max_frame %d below the floor %d" max_frame
      min_max_frame;
  max_frame

(* ------------------------------------------------------------------ *)
(* Payload codecs *)

let tag_stmt = 0x01
let tag_query = 0x02
let tag_snapshot = 0x03
let tag_metrics = 0x04
let tag_bye = 0x05
let tag_output = 0x81
let tag_rows = 0x82
let tag_snap = 0x83
let tag_metrics_body = 0x84
let tag_bye_ok = 0x85
let tag_err = 0x7f

let with_tag tag fill =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr tag);
  fill buf;
  Buffer.contents buf

let encode_request = function
  | Stmt src -> with_tag tag_stmt (fun b -> Codec.string_ b src)
  | Query src -> with_tag tag_query (fun b -> Codec.string_ b src)
  | Snapshot -> with_tag tag_snapshot ignore
  | Metrics fmt ->
    with_tag tag_metrics (fun b ->
        Codec.varint b (match fmt with `Text -> 0 | `Json -> 1))
  | Bye -> with_tag tag_bye ignore

let encode_response = function
  | Output s -> with_tag tag_output (fun b -> Codec.string_ b s)
  | Rows { version; columns; tuples } ->
    with_tag tag_rows (fun b ->
        Codec.varint b version;
        Codec.varint b (List.length columns);
        List.iter (Codec.string_ b) columns;
        Codec.tuples b tuples)
  | Snap { version; durable_lsn; relations; views; summary } ->
    with_tag tag_snap (fun b ->
        Codec.varint b version;
        Codec.zigzag b (match durable_lsn with Some l -> l | None -> -1);
        Codec.varint b relations;
        Codec.varint b views;
        Codec.string_ b summary)
  | Metrics_body s -> with_tag tag_metrics_body (fun b -> Codec.string_ b s)
  | Bye_ok -> with_tag tag_bye_ok ignore
  | Err { code; message } ->
    with_tag tag_err (fun b ->
        Codec.varint b (error_code_to_int code);
        Codec.string_ b message)

(* Strict decoders: a tag the peer does not know, or trailing bytes
   after a well-formed body, is [Codec.Corrupt] — the fuzzer checks that
   no input crashes with anything else. *)

let open_payload payload =
  if String.length payload = 0 then
    raise (Codec.Corrupt "empty message payload");
  (Char.code payload.[0], Codec.cursor ~pos:1 payload)

let finish c v =
  if not (Codec.at_end c) then
    raise (Codec.Corrupt "trailing bytes after message body");
  v

let decode_request payload =
  let tag, c = open_payload payload in
  if tag = tag_stmt then finish c (Stmt (Codec.read_string c))
  else if tag = tag_query then finish c (Query (Codec.read_string c))
  else if tag = tag_snapshot then finish c Snapshot
  else if tag = tag_metrics then
    finish c
      (Metrics
         (match Codec.read_varint c with
         | 0 -> `Text
         | 1 -> `Json
         | n -> raise (Codec.Corrupt (Fmt.str "unknown metrics format %d" n))))
  else if tag = tag_bye then finish c Bye
  else raise (Codec.Corrupt (Fmt.str "unknown request tag 0x%02x" tag))

let decode_response payload =
  let tag, c = open_payload payload in
  if tag = tag_output then finish c (Output (Codec.read_string c))
  else if tag = tag_rows then begin
    let version = Codec.read_varint c in
    let columns =
      List.init (Codec.read_varint c) (fun _ -> Codec.read_string c)
    in
    let tuples = Codec.read_tuples c in
    finish c (Rows { version; columns; tuples })
  end
  else if tag = tag_snap then begin
    let version = Codec.read_varint c in
    let lsn = Codec.read_zigzag c in
    let relations = Codec.read_varint c in
    let views = Codec.read_varint c in
    let summary = Codec.read_string c in
    finish c
      (Snap
         {
           version;
           durable_lsn = (if lsn < 0 then None else Some lsn);
           relations;
           views;
           summary;
         })
  end
  else if tag = tag_metrics_body then
    finish c (Metrics_body (Codec.read_string c))
  else if tag = tag_bye_ok then finish c Bye_ok
  else if tag = tag_err then begin
    let code = error_code_of_int (Codec.read_varint c) in
    let message = Codec.read_string c in
    finish c (Err { code; message })
  end
  else raise (Codec.Corrupt (Fmt.str "unknown response tag 0x%02x" tag))

(* ------------------------------------------------------------------ *)
(* Equality and printing (tests) *)

let equal_request (a : request) (b : request) =
  match (a, b) with
  | Stmt x, Stmt y | Query x, Query y -> String.equal x y
  | Snapshot, Snapshot | Bye, Bye -> true
  | Metrics x, Metrics y -> x = y
  | _ -> false

let equal_response (a : response) (b : response) =
  match (a, b) with
  | Output x, Output y | Metrics_body x, Metrics_body y -> String.equal x y
  | Bye_ok, Bye_ok -> true
  | Rows a, Rows b ->
    a.version = b.version
    && List.equal String.equal a.columns b.columns
    && List.equal Tuple.equal a.tuples b.tuples
  | Snap a, Snap b ->
    a.version = b.version
    && a.durable_lsn = b.durable_lsn
    && a.relations = b.relations && a.views = b.views
    && String.equal a.summary b.summary
  | Err a, Err b -> a.code = b.code && String.equal a.message b.message
  | _ -> false

let pp_request ppf = function
  | Stmt s -> Fmt.pf ppf "Stmt %S" s
  | Query s -> Fmt.pf ppf "Query %S" s
  | Snapshot -> Fmt.string ppf "Snapshot"
  | Metrics `Text -> Fmt.string ppf "Metrics text"
  | Metrics `Json -> Fmt.string ppf "Metrics json"
  | Bye -> Fmt.string ppf "Bye"

let pp_response ppf = function
  | Output s -> Fmt.pf ppf "Output %S" s
  | Rows { version; columns; tuples } ->
    Fmt.pf ppf "Rows v%d %a (%d tuples)" version
      Fmt.(list ~sep:comma string)
      columns (List.length tuples)
  | Snap { version; _ } -> Fmt.pf ppf "Snap v%d" version
  | Metrics_body s -> Fmt.pf ppf "Metrics_body (%d bytes)" (String.length s)
  | Bye_ok -> Fmt.string ppf "Bye_ok"
  | Err { code; message } ->
    Fmt.pf ppf "Err %a %S" pp_error_code code message
