(* Multi-session serving layer over one versioned database.

   Concurrency model (single-writer / multi-reader, MVCC-lite):

   - Read statements (QUERY/PRINT/SHOW SNAPSHOT/BEGIN/COMMIT) pin an
     immutable published {!Dc_core.Snapshot} — the latest per statement,
     or one held across an explicit BEGIN ... COMMIT transaction — and
     evaluate it on a pool worker domain via [Par.run].  Session threads
     are systhreads sharing the main domain's runtime lock, so reads
     that stayed on them would interleave, not parallelize; shipping the
     closure to a domain makes N sessions' reads truly concurrent over
     the frozen snapshot.  (Inside the shipped closure the fixpoint's
     own [Par.map] degrades inline — parallelism is spent across
     readers, not within one read.)

   - Write statements (INSERT/DELETE/assignment/MATERIALIZE/DDL) are
     serialized through one writer thread: the session enqueues the
     statement and blocks until the writer has run it through the
     database's single commit point and published the next snapshot.
     One writer means no write-write races and no locking inside the
     storage spine itself.

   - Group commit: when serving durably, the writer drains its queue
     into a batch and runs the whole batch under [Durable.group] — every
     commit's WAL record is buffered and one [Wal.append_batch] fsync
     makes them all durable.  A session is released ([ack]) only after
     that shared fsync, so the per-client durability contract is
     unchanged while the fsync cost is amortized across the batch.  If
     the batch flush truly fails, each job whose statement had
     "succeeded" in memory is poisoned with the flush error instead.

   - Admission control: a bounded session count, plus per-session
     {!Dc_guard.Guard.limits} under which every statement of that
     session evaluates (the server-level defaults apply when a session
     doesn't bring its own).

   Observability: [dc_server_sessions], [dc_server_queue_depth],
   [dc_server_commits_total], [dc_server_statements_total{kind}] and the
   [dc_server_statement_ms{kind}] latency histograms. *)

open Dc_core
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Durable = Dc_wal.Durable

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Instruments *)

let g_sessions = lazy (Obs.Gauge.make "dc_server_sessions")
let g_queue = lazy (Obs.Gauge.make "dc_server_queue_depth")
let c_commits = lazy (Obs.Counter.make "dc_server_commits_total")

let c_statements kind =
  Obs.Counter.make ~labels:[ ("kind", kind) ] "dc_server_statements_total"

let h_latency kind =
  Obs.Histogram.make ~labels:[ ("kind", kind) ] "dc_server_statement_ms"

let c_reads = lazy (c_statements "read")
let c_writes = lazy (c_statements "write")
let h_read_ms = lazy (h_latency "read")
let h_write_ms = lazy (h_latency "write")

(* ------------------------------------------------------------------ *)
(* Writer thread and job queue *)

type job = {
  run : unit -> unit;
      (* execute the statement, capturing result or exception into the
         submitter's slot; never raises *)
  ack : unit -> unit;
      (* release the blocked submitter — called only after the batch's
         shared fsync (or immediately when not durable) *)
  poison : exn -> unit;
      (* batch flush failed: a captured in-memory success is not durable,
         replace it with the flush error (captured failures keep their
         own exception — their commit rolled back and logged nothing) *)
}

type t = {
  db : Database.t;
  wal : Durable.t option; (* durability: closed (final checkpoint) on shutdown *)
  max_sessions : int;
  default_limits : Guard.limits;
  m : Mutex.t; (* guards queue, session count, shutdown flag *)
  job_ready : Condition.t;
  queue : job Queue.t;
  mutable session_count : int;
  mutable next_session : int;
  mutable stopping : bool;
  mutable writer : Thread.t option;
  mutable writer_id : int;
}

(* Bound on jobs drained into one group: keeps worst-case ack latency
   for the first job in a batch proportional to the batch, not to an
   unboundedly deep queue. *)
let max_group = 128

(* Drain a batch of enqueued jobs, run them all (as one group commit
   when durable), then ack every submitter.  Jobs transport their own
   result/exception back to the submitting session, so the writer loop
   never dies. *)
let writer_loop srv () =
  let rec loop () =
    Mutex.lock srv.m;
    while Queue.is_empty srv.queue && not srv.stopping do
      Condition.wait srv.job_ready srv.m
    done;
    if Queue.is_empty srv.queue && srv.stopping then Mutex.unlock srv.m
    else begin
      let batch = ref [] in
      let n = ref 0 in
      while !n < max_group && not (Queue.is_empty srv.queue) do
        batch := Queue.pop srv.queue :: !batch;
        incr n
      done;
      let batch = List.rev !batch in
      if Obs.on () then
        Obs.Gauge.set (Lazy.force g_queue)
          (float_of_int (Queue.length srv.queue));
      Mutex.unlock srv.m;
      (try
         match srv.wal with
         | Some d ->
           Durable.group d (fun () -> List.iter (fun j -> j.run ()) batch)
         | None -> List.iter (fun j -> j.run ()) batch
       with e ->
         (* only the group flush can raise — every [run] captures its
            own exceptions *)
         List.iter (fun j -> j.poison e) batch);
      List.iter (fun j -> j.ack ()) batch;
      loop ()
    end
  in
  loop ()

let create ?(max_sessions = 64) ?(limits = Guard.no_limits) ?wal db =
  let srv =
    {
      db;
      wal;
      max_sessions;
      default_limits = limits;
      m = Mutex.create ();
      job_ready = Condition.create ();
      queue = Queue.create ();
      session_count = 0;
      next_session = 1;
      stopping = false;
      writer = None;
      writer_id = -1;
    }
  in
  let th = Thread.create (writer_loop srv) () in
  srv.writer <- Some th;
  srv.writer_id <- Thread.id th;
  srv

let db srv = srv.db
let session_count srv = Mutex.protect srv.m (fun () -> srv.session_count)

let queue_depth srv = Mutex.protect srv.m (fun () -> Queue.length srv.queue)

(* Serialize [f] through the writer thread and wait for its result.
   Called from the writer thread itself (a job spawning sub-work), run
   inline — blocking would deadlock the only writer. *)
let submit (srv : t) (f : unit -> 'a) : 'a =
  if Thread.id (Thread.self ()) = srv.writer_id then
    (* a job spawning sub-work runs inline (blocking would deadlock the
       only writer); it joins the currently open commit group, and the
       enclosing job's ack still waits for the shared fsync *)
    f ()
  else begin
    let m = Mutex.create () in
    let done_ = Condition.create () in
    let result : ('a, exn) Result.t option ref = ref None in
    let acked = ref false in
    let job =
      {
        run =
          (fun () ->
            let r =
              match f () with v -> Ok v | exception e -> Result.Error e
            in
            Mutex.protect m (fun () -> result := Some r));
        poison =
          (fun e ->
            Mutex.protect m (fun () ->
                match !result with
                | Some (Result.Error _) -> ()
                | Some (Ok _) | None -> result := Some (Result.Error e)));
        ack =
          (fun () ->
            Mutex.protect m (fun () -> acked := true);
            Condition.signal done_);
      }
    in
    Mutex.lock srv.m;
    if srv.stopping then begin
      Mutex.unlock srv.m;
      error "server is shut down"
    end;
    Queue.add job srv.queue;
    if Obs.on () then
      Obs.Gauge.set (Lazy.force g_queue)
        (float_of_int (Queue.length srv.queue));
    Condition.signal srv.job_ready;
    Mutex.unlock srv.m;
    Mutex.lock m;
    while not !acked do
      Condition.wait done_ m
    done;
    Mutex.unlock m;
    match !result with
    | Some (Ok v) -> v
    | Some (Result.Error e) -> raise e
    | None -> error "writer dropped the job"
  end

let shutdown srv =
  Mutex.lock srv.m;
  srv.stopping <- true;
  Condition.signal srv.job_ready;
  Mutex.unlock srv.m;
  match srv.writer with
  | Some th ->
    (* the writer drains every queued job before exiting, so no commit is
       cut off mid-flight; only then is the WAL checkpointed and closed *)
    Thread.join th;
    srv.writer <- None;
    Option.iter Durable.close srv.wal
  | None -> ()

(* Durability-first constructor: recover [dir] (creating it when new) and
   serve the recovered database; [shutdown] then closes with a final
   checkpoint. *)
let open_durable ?max_sessions ?(limits = Guard.no_limits) ?checkpoint_every
    dir =
  let db = Database.create ~limits () in
  let wal = Durable.open_dir ~db ?checkpoint_every dir in
  create ?max_sessions ~limits ~wal db

let durable srv = srv.wal

(* ------------------------------------------------------------------ *)
(* Sessions *)

type session = {
  server : t;
  id : int;
  env : Dc_lang.Elaborate.env;
      (* private elaboration state: output buffer, pinned transaction
         snapshot, session-local type aliases.  Only ever touched by the
         session's own statement — reads on the session thread, writes
         inside the writer job while the session blocks — so it is never
         accessed from two threads at once. *)
  limits : Guard.limits;
  mutable open_ : bool;
}

let open_session ?limits srv =
  Mutex.lock srv.m;
  if srv.stopping then begin
    Mutex.unlock srv.m;
    error "server is shut down"
  end;
  if srv.session_count >= srv.max_sessions then begin
    let n = srv.session_count in
    Mutex.unlock srv.m;
    error "too many sessions (%d open, max %d)" n srv.max_sessions
  end;
  srv.session_count <- srv.session_count + 1;
  let id = srv.next_session in
  srv.next_session <- id + 1;
  Mutex.unlock srv.m;
  if Obs.on () then Obs.Gauge.add (Lazy.force g_sessions) 1.;
  {
    server = srv;
    id;
    env = Dc_lang.Elaborate.create srv.db;
    limits = Option.value limits ~default:srv.default_limits;
    open_ = true;
  }

let close_session s =
  if s.open_ then begin
    s.open_ <- false;
    Mutex.protect s.server.m (fun () ->
        s.server.session_count <- s.server.session_count - 1);
    if Obs.on () then Obs.Gauge.add (Lazy.force g_sessions) (-1.)
  end

let session_id s = s.id

(* A statement the session thread can serve from a snapshot without the
   writer: everything {!Dc_lang.Elaborate.read_only} except EXPLAIN
   (diagnostics of the live planner state) and SET PARALLEL (global
   configuration) — those serialize with the writes. *)
let session_local (d : Dc_lang.Surface.decl) =
  match d with
  | D_query _ | D_print _ | D_show_snapshot | D_begin | D_commit
  | D_show_metrics | D_type _ ->
    true
  | _ -> false

(* Statements that observe data through a snapshot and therefore want
   per-statement pinning when no transaction is open. *)
let wants_snapshot (d : Dc_lang.Surface.decl) =
  match d with D_query _ | D_print _ | D_show_snapshot -> true | _ -> false

(* The statement snapshot carries the session's admission-control
   limits, so snapshot reads evaluate under the per-session guard. *)
let session_snapshot s =
  let snap = Database.snapshot s.server.db in
  if s.limits = Guard.no_limits then snap
  else { snap with Snapshot.limits = s.limits }

let execute_decl s (d : Dc_lang.Surface.decl) =
  if not s.open_ then error "session %d is closed" s.id;
  let t0 = if Obs.on () then Obs.now_ms () else 0. in
  let read = session_local d in
  (try
     if read then
       if wants_snapshot d then begin
         (* pin the snapshot on the session thread (so "latest" means
            latest at submission), then evaluate on a pool worker domain:
            snapshot reads from N sessions run truly in parallel instead
            of interleaving on the main domain's runtime lock.  An open
            BEGIN's pinned snapshot takes precedence inside
            [with_snapshot]. *)
         let snap = session_snapshot s in
         Dc_par.Par.run (fun () ->
             Dc_lang.Elaborate.with_snapshot s.env snap (fun () ->
                 Dc_lang.Elaborate.execute_decl s.env d))
       end
       else Dc_lang.Elaborate.execute_decl s.env d
     else
       submit s.server (fun () ->
           Dc_lang.Elaborate.execute_decl s.env d;
           if Obs.on () then Obs.Counter.inc (Lazy.force c_commits))
   with e ->
     (* keep the session clean: a failed statement must not leak its
        partial output into the next statement's result *)
     ignore (Dc_lang.Elaborate.drain_output s.env);
     raise e);
  if Obs.on () then begin
    let ms = Obs.now_ms () -. t0 in
    if read then begin
      Obs.Counter.inc (Lazy.force c_reads);
      Obs.Histogram.observe (Lazy.force h_read_ms) ms
    end
    else begin
      Obs.Counter.inc (Lazy.force c_writes);
      Obs.Histogram.observe (Lazy.force h_write_ms) ms
    end
  end;
  Dc_lang.Elaborate.drain_output s.env

(* Execute a parsed program statement by statement.  Unlike
   {!Dc_lang.Elaborate.run} there is no whole-program constructor
   grouping across other statements, but consecutive CONSTRUCTOR
   declarations are still registered as one (mutually recursive) group —
   through the writer, like any DDL. *)
let execute_program s (p : Dc_lang.Surface.program) =
  if not s.open_ then error "session %d is closed" s.id;
  let buf = Buffer.create 256 in
  let flush_group pending =
    match pending with
    | [] -> ()
    | group ->
      let defs =
        List.rev_map (Dc_lang.Elaborate.lower_constructor s.env) group
      in
      submit s.server (fun () ->
          Database.define_constructors s.server.db defs;
          if Obs.on () then Obs.Counter.inc (Lazy.force c_commits))
  in
  let pending =
    List.fold_left
      (fun pending (d : Dc_lang.Surface.decl) ->
        match d with
        | D_constructor c -> c :: pending
        | d ->
          flush_group pending;
          Buffer.add_string buf (execute_decl s d);
          [])
      [] p
  in
  flush_group pending;
  Buffer.contents buf

let execute s src = execute_program s (Dc_lang.Parser.parse src)

(* Run session work under the session's guard limits: a fresh guard per
   statement, like [Database.query]'s default, but from the session's
   admission-control budgets. *)
let session_guard s = Guard.of_limits s.limits

let query s range =
  if not s.open_ then error "session %d is closed" s.id;
  let snap =
    match Dc_lang.Elaborate.pinned s.env with
    | Some snap -> snap
    | None -> Database.snapshot s.server.db
  in
  Dc_par.Par.run (fun () ->
      (Snapshot.query ~guard:(session_guard s) snap range, Snapshot.version snap))

let query_string s src =
  if not s.open_ then error "session %d is closed" s.id;
  match Dc_lang.Parser.parse src with
  | [ Dc_lang.Surface.D_query r ] ->
    query s (Dc_lang.Elaborate.lower_query s.env r)
  | _ -> error "expected exactly one QUERY statement"
