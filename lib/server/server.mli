(** Multi-session serving layer over one versioned {!Dc_core.Database}
    (single-writer / multi-reader snapshot isolation).

    Reads pin an immutable published {!Dc_core.Snapshot} — one per
    statement, or one held across an explicit [BEGIN ... COMMIT]
    read-only transaction — and evaluate on a pool worker domain
    ({!Dc_par.Par.run}), so concurrent sessions' reads run truly in
    parallel rather than interleaving on the main domain.  Writes
    serialize through one writer thread that runs the database's single
    commit point and publishes the next snapshot; when serving durably
    the writer drains its queue into group commits — one shared WAL
    fsync per batch, each session released only after that fsync.
    Sessions are bounded (admission control) and each evaluates under
    its own {!Dc_guard.Guard.limits}.

    Instruments (when metrics are on): [dc_server_sessions],
    [dc_server_queue_depth], [dc_server_commits_total],
    [dc_server_statements_total{kind}], [dc_server_statement_ms{kind}]. *)

open Dc_core

exception Error of string

type t
(** A running server: one database, one writer thread, many sessions. *)

val create :
  ?max_sessions:int ->
  ?limits:Dc_guard.Guard.limits ->
  ?wal:Dc_wal.Durable.t ->
  Database.t ->
  t
(** Start a server (and its writer thread) over [db].  [max_sessions]
    (default 64) bounds concurrently open sessions; [limits] is the
    default per-session guard budget.  [wal] (which must be attached to
    the same [db]) is closed — final checkpoint included — by
    {!shutdown}. *)

val open_durable :
  ?max_sessions:int ->
  ?limits:Dc_guard.Guard.limits ->
  ?checkpoint_every:int ->
  string ->
  t
(** Recover the data directory (creating it when new) and serve the
    recovered database; {!shutdown} drains, checkpoints, and closes it. *)

val db : t -> Database.t

val durable : t -> Dc_wal.Durable.t option
val session_count : t -> int
val queue_depth : t -> int
(** Writer-queue depth at this instant (pending write statements). *)

val submit : t -> (unit -> 'a) -> 'a
(** Serialize a closure through the writer thread and wait for its
    result (exceptions re-raised in the caller).  Runs inline when
    called from the writer thread itself. *)

val shutdown : t -> unit
(** Stop accepting work, drain the queue, join the writer thread, and —
    when serving durably — take a final checkpoint and close the WAL. *)

(** {1 Sessions} *)

type session

val open_session : ?limits:Dc_guard.Guard.limits -> t -> session
(** @raise Error when the server is shut down or at [max_sessions]. *)

val close_session : session -> unit
val session_id : session -> int

val execute : session -> string -> string
(** Parse and execute DBPL statements, returning their printed output.
    Read statements run on the calling thread against a snapshot (the
    pinned one inside [BEGIN ... COMMIT], else the latest published
    version per statement); write statements block until the writer has
    committed and published them. *)

val execute_decl : session -> Dc_lang.Surface.decl -> string
(** Execute one parsed statement (see {!execute}). *)

val execute_program : session -> Dc_lang.Surface.program -> string
(** Execute a parsed program statement by statement; consecutive
    CONSTRUCTOR declarations still register as one mutually recursive
    group. *)

val query : session -> Dc_calculus.Ast.range -> Dc_relation.Relation.t * int
(** Library-level read: evaluate a calculus range against the session's
    current snapshot (pinned or latest) under the session's guard
    limits, returning the result and the snapshot version it observed.
    Never touches the writer; evaluates on a pool worker domain. *)

val query_string : session -> string -> Dc_relation.Relation.t * int
(** Parse a single [QUERY ...;] statement and evaluate it as {!query} —
    the wire protocol's row-returning read path.
    @raise Error when [src] is not exactly one QUERY statement. *)
