(* Grouped aggregates for rule heads (ROADMAP item 2).

   The design follows Zaniolo et al., "Fixpoint Semantics and Optimization
   of Recursive Datalog Programs with Aggregates" (and LDL++ before it):

   - MIN and MAX are {e premappable}: they commute with monotone rule
     bodies, so they may be applied {e inside} the fixpoint.  A recursive
     MIN-aggregated predicate keeps one current bound per group instead of
     the full extent of derived values; a newly derived tuple either
     improves the bound (and displaces the old one) or is subsumed.
   - COUNT and SUM are not premappable: a partial count is not a count.
     They are admitted only in {e stratified} positions — every predicate
     an aggregation reads must be complete before the aggregate stratum
     runs (the stratification rules live in [Dc_datalog.Stratify]).

   Aggregation is over the {e distinct set} of raw tuples derived for the
   predicate (LDL++'s count<Y> convention): duplicate derivations of the
   same raw tuple contribute once.  Programs that need per-witness
   contributions carry discriminator columns in the raw tuple and project
   them away through the group. *)

open Dc_relation

type op =
  | Min
  | Max
  | Count
  | Sum

(* Which raw-tuple columns survive into the result, and which one is
   aggregated.  A result tuple is the [group] projection (in order)
   followed by the accumulated value; any remaining raw columns are
   discriminators — they make contributions distinct, then vanish. *)
type spec = {
  group : int list;
  value : int;
  op : op;
}

let op_name = function
  | Min -> "MIN"
  | Max -> "MAX"
  | Count -> "COUNT"
  | Sum -> "SUM"

let op_of_name = function
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | _ -> None

let pp_op ppf o = Fmt.string ppf (op_name o)

(* MIN/MAX commute with monotone bodies; COUNT/SUM do not. *)
let premappable = function
  | Min | Max -> true
  | Count | Sum -> false

let result_ty op (raw : Value.ty) =
  match op with
  | Count -> Value.TInt
  | Min | Max | Sum -> raw

let value_admissible op (ty : Value.ty) =
  match op, ty with
  | Count, _ -> true
  | (Min | Max | Sum), (Value.TInt | Value.TFloat) -> true
  | (Min | Max | Sum), _ -> false

(* [better op candidate incumbent]: does the candidate strictly improve a
   MIN/MAX bound? *)
let better op a b =
  match op with
  | Min -> Value.compare a b < 0
  | Max -> Value.compare a b > 0
  | Count | Sum -> invalid_arg "Agg.better: not a bound aggregate"

type violation = {
  agg_con : string; (* offending constructor / predicate *)
  agg_reason : string;
}

exception Inadmissible of violation

let pp_violation ppf v =
  Fmt.pf ppf "aggregate in %s not admissible: %s" v.agg_con v.agg_reason

let inadmissible con fmt =
  Fmt.kstr (fun s -> raise (Inadmissible { agg_con = con; agg_reason = s })) fmt

let () =
  Printexc.register_printer (function
    | Inadmissible v -> Some (Fmt.str "%a" pp_violation v)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Reference semantics: aggregate a raw extent from scratch.  The oracle
   tests difference the incremental paths against this, and the IVM
   bound-violation path rescans one group through it. *)

let result_of_raw spec raw =
  Tuple.of_list
    (List.map (Tuple.get raw) spec.group @ [ Tuple.get raw spec.value ])

let accumulate spec acc v =
  match spec.op, acc with
  | _, None -> (
    match spec.op with
    | Count -> Some (Value.Int 1)
    | Min | Max | Sum -> Some v)
  | Count, Some (Value.Int n) -> Some (Value.Int (n + 1))
  | Count, Some _ -> invalid_arg "Agg.accumulate: count accumulator"
  | Sum, Some a -> Some (Value.add a v)
  | (Min | Max), Some a -> if better spec.op v a then Some v else Some a

(* Full recompute of the distinct-set aggregate over [raws]. *)
let aggregate spec (raws : Tuple.t list) : Tuple.t list =
  let module TM = Map.Make (Tuple) in
  let seen = Hashtbl.create 64 in
  let groups =
    List.fold_left
      (fun m raw ->
        if Hashtbl.mem seen raw then m
        else begin
          Hashtbl.replace seen raw ();
          let key = Tuple.project raw spec.group in
          let v = Tuple.get raw spec.value in
          TM.update key (fun acc -> accumulate spec acc v) m
        end)
      TM.empty raws
  in
  TM.fold
    (fun key acc out -> Tuple.of_list (Tuple.to_list key @ [ acc ]) :: out)
    groups []

(* ------------------------------------------------------------------ *)
(* The grouped accumulator behind the IR's Group operator.

   One table lives for the duration of one stratum's fixpoint (or one
   maintained view).  [offer] feeds it a raw tuple; when the group's
   result changes, the new result tuple is returned and the old one is
   queued as displaced.  The evaluator's round loop treats emissions as
   the delta and removes drained displacements from the store — per-group
   bounds instead of full extents. *)

module Group_table = struct
  type entry = {
    mutable acc : Value.t;
    mutable result : Tuple.t;
  }

  type t = {
    t_spec : spec;
    groups : (Tuple.t, entry) Hashtbl.t;
    seen : (Tuple.t, unit) Hashtbl.t; (* raw distinct-set (COUNT/SUM only) *)
    mutable displaced : Tuple.t list;
  }

  let create spec =
    {
      t_spec = spec;
      groups = Hashtbl.create 64;
      seen = Hashtbl.create 64;
      displaced = [];
    }

  let spec t = t.t_spec
  let group_count t = Hashtbl.length t.groups

  let result_tuple key acc = Tuple.of_list (Tuple.to_list key @ [ acc ])

  let offer t raw =
    let spec = t.t_spec in
    let distinct = not (premappable spec.op) in
    if distinct && Hashtbl.mem t.seen raw then None
    else begin
      if distinct then Hashtbl.replace t.seen raw ();
      let key = Tuple.project raw spec.group in
      let v = Tuple.get raw spec.value in
      match Hashtbl.find_opt t.groups key with
      | None ->
        let acc =
          match accumulate spec None v with
          | Some a -> a
          | None -> assert false
        in
        let result = result_tuple key acc in
        Hashtbl.replace t.groups key { acc; result };
        Some result
      | Some e -> (
        match accumulate spec (Some e.acc) v with
        | Some acc when not (Value.equal acc e.acc) ->
          t.displaced <- e.result :: t.displaced;
          let result = result_tuple key acc in
          e.acc <- acc;
          e.result <- result;
          Some result
        | _ -> None)
    end

  (* Install an existing result tuple without emitting (restore paths). *)
  let seed t result =
    let n = Tuple.arity result - 1 in
    let key = Tuple.project result (List.init n Fun.id) in
    let acc = Tuple.get result n in
    Hashtbl.replace t.groups key { acc; result }

  let drain_displaced t =
    let d = t.displaced in
    t.displaced <- [];
    d

  (* IVM retraction for COUNT/SUM: remove one raw contribution.  Returns
     [(old_result, new_result_opt)] when the group's result changes;
     [new_result_opt = None] means the group became empty. *)
  let retract t raw =
    let spec = t.t_spec in
    if premappable spec.op then
      invalid_arg "Agg.Group_table.retract: MIN/MAX retract by group rescan";
    if not (Hashtbl.mem t.seen raw) then None
    else begin
      Hashtbl.remove t.seen raw;
      let key = Tuple.project raw spec.group in
      let v = Tuple.get raw spec.value in
      match Hashtbl.find_opt t.groups key with
      | None -> None
      | Some e ->
        let old = e.result in
        let acc' =
          match spec.op, e.acc with
          | Count, Value.Int n -> Value.Int (n - 1)
          | Count, _ -> invalid_arg "Agg.retract: count accumulator"
          | Sum, a -> Value.sub a v
          | (Min | Max), _ -> assert false
        in
        let emptied =
          match spec.op, acc' with
          | Count, Value.Int 0 -> true
          | Sum, _ ->
            not
              (Hashtbl.fold
                 (fun r () found ->
                   found || Tuple.equal (Tuple.project r spec.group) key)
                 t.seen false)
          | _ -> false
        in
        if emptied then begin
          Hashtbl.remove t.groups key;
          Some (old, None)
        end
        else begin
          let result = result_tuple key acc' in
          e.acc <- acc';
          e.result <- result;
          Some (old, Some result)
        end
    end

  (* Drop a group entirely (MIN/MAX bound violation: the caller rescans
     the surviving raw tuples and re-offers them). *)
  let forget_group t key = Hashtbl.remove t.groups key

  let current t key =
    Option.map (fun e -> e.result) (Hashtbl.find_opt t.groups key)

  let iter_results f t = Hashtbl.iter (fun _ e -> f e.result) t.groups
end
