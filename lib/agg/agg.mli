(** Grouped aggregates for rule heads: MIN/MAX premapped into the
    fixpoint with one bound per group (Zaniolo et al.), COUNT/SUM
    stratified.  Aggregation is over the distinct set of raw tuples
    (LDL++'s count<Y> convention). *)

open Dc_relation

type op =
  | Min
  | Max
  | Count
  | Sum

type spec = {
  group : int list;  (** raw positions copied into the result, in order *)
  value : int;  (** raw position of the aggregated value *)
  op : op;
}

val op_name : op -> string
val op_of_name : string -> op option
val pp_op : op Fmt.t

val premappable : op -> bool
(** May the operator be applied inside a recursive fixpoint?  True for
    MIN/MAX (bounds only improve), false for COUNT/SUM (a partial count
    is not a count — they must be stratified). *)

val result_ty : op -> Value.ty -> Value.ty
(** Type of the accumulated column given the raw value column's type. *)

val value_admissible : op -> Value.ty -> bool
(** COUNT accepts any value type; MIN/MAX/SUM need INTEGER or REAL. *)

val better : op -> Value.t -> Value.t -> bool
(** [better op a b]: does [a] strictly improve bound [b]?  MIN/MAX only. *)

type violation = {
  agg_con : string;
  agg_reason : string;
}

exception Inadmissible of violation
(** The typed admission error: COUNT/SUM in a recursive cycle,
    non-monotone use of a recursive bound, mismatched branch specs, ... *)

val pp_violation : violation Fmt.t
val inadmissible : string -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val result_of_raw : spec -> Tuple.t -> Tuple.t
(** Group projection of a raw tuple followed by its (unaccumulated)
    value — the shape a result tuple takes. *)

val accumulate : spec -> Value.t option -> Value.t -> Value.t option

val aggregate : spec -> Tuple.t list -> Tuple.t list
(** From-scratch reference: group the distinct raw tuples and fold each
    group.  The differential oracle and the IVM per-group rescan use
    this. *)

(** The grouped accumulator behind the IR's Group operator: one current
    result per group; offers either improve it (displacing the previous
    result) or are subsumed. *)
module Group_table : sig
  type t

  val create : spec -> t
  val spec : t -> spec
  val group_count : t -> int

  val offer : t -> Tuple.t -> Tuple.t option
  (** Feed one raw tuple; returns the group's new result tuple when it
      changed (the displaced predecessor is queued). *)

  val seed : t -> Tuple.t -> unit
  (** Install an existing result tuple without emitting (restore). *)

  val drain_displaced : t -> Tuple.t list
  (** Result tuples invalidated since the last drain. *)

  val retract : t -> Tuple.t -> (Tuple.t * Tuple.t option) option
  (** COUNT/SUM maintenance: remove one raw contribution.  Returns
      [(old_result, new_result)] when the group changed; a [None] new
      result means the group emptied. *)

  val forget_group : t -> Tuple.t -> unit
  (** Drop a group (MIN/MAX bound violation: caller rescans raws). *)

  val current : t -> Tuple.t -> Tuple.t option
  val iter_results : (Tuple.t -> unit) -> t -> unit
end
