(* A physical extent: the runtime face of one stored or computed relation
   as the operator IR sees it — iteration, keyed lookup through an access
   path, membership, and an (optional) cardinality estimate.

   Everything is a closure record so the executor is agnostic about where
   tuples live: [Dc_relation.Relation] values, the Datalog fact store's
   per-predicate tuple sets, or a tabled engine's growing answer tables
   all wrap into the same shape.  Keyed lookups go through whatever index
   structure the producer maintains ({!Dc_relation.Index_cache} for
   relations, the fact store's own per-(predicate, positions) cache for
   Datalog), so the delta-incremental index maintenance of the runtime
   kernel keeps paying off underneath the shared executor. *)

open Dc_relation

type t = {
  label : string;  (* for EXPLAIN *)
  cardinal : unit -> int option;  (* None: unknown without work *)
  iter : (Tuple.t -> unit) -> unit;
  lookup : int list -> Value.t list -> Tuple.t list;
      (* tuples whose projection on the positions equals the key *)
  mem : Tuple.t -> bool;
}

(* Wrap a relation.  [cache] supplies the per-evaluation index cache so
   lookups hit indexes that stay warm across fixpoint rounds; without one,
   a private cache still amortizes index builds within this extent. *)
let of_relation ?label ?cache rel =
  let cache =
    match cache with
    | Some c -> c
    | None -> Index_cache.create ()
  in
  {
    label = Option.value label ~default:(Schema.attr_names (Relation.schema rel) |> String.concat ",");
    cardinal = (fun () -> Some (Relation.cardinal rel));
    iter = (fun f -> Relation.iter f rel);
    lookup =
      (fun positions values ->
        Index.lookup_values (Index_cache.get cache positions rel) values);
    mem = (fun t -> Relation.mem t rel);
  }

let empty ~label =
  {
    label;
    cardinal = (fun () -> Some 0);
    iter = (fun _ -> ());
    lookup = (fun _ _ -> []);
    mem = (fun _ -> false);
  }
