(* The IR-level join-order rewrite: one greedy rule shared by the calculus
   evaluator, the compiled planner, and the Datalog rule compiler, where
   previously each kept its own heuristic (smallest-range-first in Eval,
   most-index-keys-first in the planner).

   At each position pick, among the candidates whose dependencies are
   already placed, the one with

   1. the most equality conjuncts usable as index keys given what is
      bound so far (constants and earlier binders) — a keyed probe beats
      any scan;
   2. on a tie, the smallest known cardinality (unknown sorts last) —
      scan the small side, probe the large one.  In a semi-naive round the
      delta is the small side, so this is "scan the delta, probe the
      base";
   3. on a tie, the original position (stability: program order is the
      programmer's hint).

   Conjunctive WHERE/body semantics is order-independent, so the rewrite
   is always sound; dependencies (a correlated range mentioning an earlier
   binder's variable) are respected as hard constraints.  If at some step
   no candidate's dependencies are satisfiable (mutual correlation), the
   remaining candidates are emitted in original order — the executor's
   correlated scans still evaluate them correctly. *)

type candidate = {
  deps : int list;  (* candidate indices that must be placed first *)
  card : int option;  (* known cardinality of the source, if cheap *)
  keys_given : int list -> int;
      (* usable equality-key count, given the placed candidate indices *)
}

let order (cands : candidate list) : int list =
  let cands = Array.of_list cands in
  let n = Array.length cands in
  if n <= 1 then List.init n Fun.id
  else begin
    let placed = ref [] (* reverse placement order *) in
    let placed_set = Array.make n false in
    let remaining = ref (List.init n Fun.id) in
    let result = ref [] in
    let eff_card i =
      match cands.(i).card with
      | Some c -> c
      | None -> max_int
    in
    while !remaining <> [] do
      let available =
        List.filter
          (fun i -> List.for_all (fun d -> placed_set.(d)) cands.(i).deps)
          !remaining
      in
      match available with
      | [] ->
        (* unsatisfiable dependencies: give up, keep program order *)
        result := List.rev !remaining @ !result;
        List.iter (fun i -> placed_set.(i) <- true) !remaining;
        remaining := []
      | first :: rest ->
        let score i = cands.(i).keys_given (List.rev !placed) in
        let best =
          List.fold_left
            (fun best i ->
              let sb = score best and si = score i in
              if si > sb then i
              else if si = sb && eff_card i < eff_card best then i
              else best)
            first rest
        in
        result := best :: !result;
        placed := best :: !placed;
        placed_set.(best) <- true;
        remaining := List.filter (fun i -> i <> best) !remaining
    done;
    List.rev !result
  end
