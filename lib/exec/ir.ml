(* The physical operator IR: one pull/push executor under the calculus
   evaluator, the compiled query plans, the constructor fixpoint, and the
   bottom-up Datalog engines (paper §4's single runtime level).

   Two layers:

   - row operators ('row node) thread an engine-specific row through a
     pipeline of scans, index probes, filters and anti-joins.  The row type
     is the engine's choice — the calculus evaluator threads its
     environment (persistent variable bindings), the Datalog engines a
     mutable [Value.t array] with one slot per rule variable — so the IR
     imposes no common tuple format on the hot path;
   - tuple operators (t) sit on top: [Project] grounds a row to an output
     tuple (packing the row type existentially, so whole pipelines are a
     monomorphic value), [Union]/[Diff]/[Distinct] combine tuple streams.

   Delta-awareness: a pipeline names its inputs ([Named] sources) and is
   executed against a [ctx] that resolves names to {!Extent.t}s.  A
   semi-naive round substitutes the delta for one occurrence by running
   the same pipeline under a different ctx — nothing is rebuilt, and the
   per-operator counters keep accumulating across rounds.

   Every operator carries mutable counters (rows emitted, lookups/probes
   performed); {!pp} renders the operator tree with the counters, which is
   what EXPLAIN prints after running a query. *)

open Dc_relation
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs

exception Exec_error of string

let exec_error fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

type counters = {
  mutable rows : int;  (* rows/tuples emitted downstream *)
  mutable probes : int;  (* index lookups / membership tests performed *)
  mutable ms : float;  (* attributed wall time, only under {!profiled} *)
}

let fresh_counters () = { rows = 0; probes = 0; ms = 0. }

(* EXPLAIN ANALYZE profiling.  Reading the clock per emitted row would
   cost more than many operators' own work, so it never happens in normal
   runs (including metrics-enabled runs: the registry gets per-round and
   per-phase timings, operators only row counts).  Inside [profiled] each
   emission charges the elapsed time since the previous emission to the
   emitting operator — attribution by "who produced the next row", the
   classic sampling-free approximation for push pipelines. *)
let profiling = ref false
let prof_last = ref 0.

let[@inline] prof_tick (c : counters) =
  if !profiling then begin
    let t = Obs.now_ms () in
    c.ms <- c.ms +. (t -. !prof_last);
    prof_last := t
  end

let profiled f =
  let saved = !profiling in
  profiling := true;
  prof_last := Obs.now_ms ();
  Fun.protect ~finally:(fun () -> profiling := saved) f

(* ------------------------------------------------------------------ *)
(* Sources and execution contexts *)

type source =
  | Fixed of Extent.t  (* resolved at build time *)
  | Named of string  (* resolved per run through the ctx *)

type ctx = string -> Extent.t

let empty_ctx : ctx = fun n -> exec_error "unresolved source %s" n

let ctx_of_list l : ctx =
 fun n ->
  match List.assoc_opt n l with
  | Some e -> e
  | None -> exec_error "unresolved source %s" n

let resolve (ctx : ctx) = function
  | Fixed e -> e
  | Named n -> ctx n

let source_label = function
  | Fixed e -> e.Extent.label
  | Named n -> n

(* ------------------------------------------------------------------ *)
(* Row operators *)

(* Labels are lazy: they exist only for EXPLAIN, and the calculus
   evaluator lowers pipelines per fixpoint round — formatting an operator
   label eagerly would put [Fmt.str] on the fixpoint hot path. *)
type 'row node = {
  op : 'row op;
  label : string Lazy.t;
  c : counters;
}

and 'row op =
  | Seed  (* emit the run's initial row once *)
  | Scan of 'row access  (* leaf: iterate the source, bind each tuple *)
  | Nested_loop_join of 'row access  (* per input row, iterate the source *)
  | Index_lookup of 'row keyed  (* leaf: one keyed probe on the seed row *)
  | Hash_join of 'row keyed  (* per input row, probe the source's index *)
  | Correlated_scan of {
      cs_input : 'row node;
      cs_gen : 'row -> Extent.t;  (* source depends on the current row *)
      cs_bind : 'row -> Tuple.t -> 'row option;
    }
  | Filter of {
      f_input : 'row node;
      f_pred : 'row -> bool;
    }
  | Anti_join of {
      aj_input : 'row node;
      aj_src : source;
      aj_key : 'row -> Tuple.t;  (* drop rows whose key is in the source *)
    }

and 'row access = {
  a_input : 'row node;
  a_src : source;
  a_bind : 'row -> Tuple.t -> 'row option;  (* None: tuple rejected *)
}

and 'row keyed = {
  k_input : 'row node;
  k_src : source;
  k_positions : int list;  (* key positions in the source's tuples *)
  k_key : 'row -> Value.t list;  (* key values from the current row *)
  k_bind : 'row -> Tuple.t -> 'row option;
}

(* Smart constructors: the scan/probe of a seed row is a leaf access; fed
   by a non-trivial input it is a join.  The executor treats the pair
   identically — the split exists so EXPLAIN names operators honestly. *)

let seed () = { op = Seed; label = lazy "seed"; c = fresh_counters () }

let scan ~label ~src ~bind input =
  let acc = { a_input = input; a_src = src; a_bind = bind } in
  match input.op with
  | Seed -> { op = Scan acc; label; c = fresh_counters () }
  | _ -> { op = Nested_loop_join acc; label; c = fresh_counters () }

let lookup ~label ~src ~positions ~key ~bind input =
  let k =
    { k_input = input; k_src = src; k_positions = positions; k_key = key;
      k_bind = bind }
  in
  match input.op with
  | Seed -> { op = Index_lookup k; label; c = fresh_counters () }
  | _ -> { op = Hash_join k; label; c = fresh_counters () }

let correlated_scan ~label ~gen ~bind input =
  { op = Correlated_scan { cs_input = input; cs_gen = gen; cs_bind = bind };
    label; c = fresh_counters () }

let filter ~label ~pred input =
  { op = Filter { f_input = input; f_pred = pred }; label;
    c = fresh_counters () }

let anti_join ~label ~src ~key input =
  { op = Anti_join { aj_input = input; aj_src = src; aj_key = key }; label;
    c = fresh_counters () }

(* ------------------------------------------------------------------ *)
(* Tuple operators *)

type t = {
  top : top;
  tlabel : string Lazy.t;
  tc : counters;
}

and top =
  | Project : {
      p_input : 'row node;
      p_init : unit -> 'row;  (* fresh initial row for one run *)
      p_tuple : 'row -> Tuple.t;
    }
      -> top
  | Union of t list
  | Diff of {
      d_input : t;
      d_except : source;  (* drop tuples present in the source *)
    }
  | Distinct of t  (* emit each tuple once per run *)
  | Group of {
      g_input : t;  (* raw tuples *)
      g_table : Dc_agg.Agg.Group_table.t;
          (* grouped accumulator: emits a result tuple when a group's
             aggregate changes; the displaced predecessor queues in the
             table for the evaluator's round loop to drain *)
    }

let project ~label ~init ~tuple input =
  { top = Project { p_input = input; p_init = init; p_tuple = tuple };
    tlabel = label; tc = fresh_counters () }

let union ~label ts = { top = Union ts; tlabel = label; tc = fresh_counters () }

let diff ~label ~except t =
  { top = Diff { d_input = t; d_except = except }; tlabel = label;
    tc = fresh_counters () }

let distinct ~label t =
  { top = Distinct t; tlabel = label; tc = fresh_counters () }

let group ~label ~table t =
  { top = Group { g_input = t; g_table = table }; tlabel = label;
    tc = fresh_counters () }

(* ------------------------------------------------------------------ *)
(* Execution.  Push-based internally: each operator folds its input and
   calls the continuation per row — no closure of the whole pipeline into
   an intermediate structure, no per-tuple allocation beyond what the
   row representation itself requires.

   The guard is ticked on exactly the emissions that bump [c.rows]: the
   row counters and the governor share hot-path hooks, so a pipeline
   with no limits pays one increment and one compare per row.  [guard]
   is a plain parameter here (not optional) because the polymorphic
   recursion annotation doesn't admit optional arguments. *)

let rec run_node :
    'row. Guard.t -> ctx -> 'row node -> 'row -> ('row -> unit) -> unit =
  fun (type row) guard ctx (node : row node) (init : row) (k : row -> unit) ->
   let c = node.c in
   let label = node.label in
   match node.op with
   | Seed ->
     c.rows <- c.rows + 1;
     Guard.tick guard label;
     prof_tick c;
     k init
   | Scan a | Nested_loop_join a ->
     let ext = resolve ctx a.a_src in
     let bind = a.a_bind in
     run_node guard ctx a.a_input init (fun row ->
         ext.Extent.iter (fun t ->
             match bind row t with
             | Some row' ->
               c.rows <- c.rows + 1;
               Guard.tick guard label;
               prof_tick c;
               k row'
             | None -> ()))
   | Index_lookup kd | Hash_join kd ->
     let ext = resolve ctx kd.k_src in
     let bind = kd.k_bind in
     run_node guard ctx kd.k_input init (fun row ->
         c.probes <- c.probes + 1;
         let matches = ext.Extent.lookup kd.k_positions (kd.k_key row) in
         List.iter
           (fun t ->
             match bind row t with
             | Some row' ->
               c.rows <- c.rows + 1;
               Guard.tick guard label;
               prof_tick c;
               k row'
             | None -> ())
           matches)
   | Correlated_scan cs ->
     run_node guard ctx cs.cs_input init (fun row ->
         let ext = cs.cs_gen row in
         ext.Extent.iter (fun t ->
             match cs.cs_bind row t with
             | Some row' ->
               c.rows <- c.rows + 1;
               Guard.tick guard label;
               prof_tick c;
               k row'
             | None -> ()))
   | Filter f ->
     run_node guard ctx f.f_input init (fun row ->
         if f.f_pred row then begin
           c.rows <- c.rows + 1;
           Guard.tick guard label;
           prof_tick c;
           k row
         end)
   | Anti_join aj ->
     let ext = resolve ctx aj.aj_src in
     run_node guard ctx aj.aj_input init (fun row ->
         c.probes <- c.probes + 1;
         if not (ext.Extent.mem (aj.aj_key row)) then begin
           c.rows <- c.rows + 1;
           Guard.tick guard label;
           prof_tick c;
           k row
         end)

module TH = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let rec run ?(guard = Guard.none) (ctx : ctx) (t : t) (k : Tuple.t -> unit) =
  let c = t.tc in
  let label = t.tlabel in
  match t.top with
  | Project p ->
    run_node guard ctx p.p_input (p.p_init ()) (fun row ->
        c.rows <- c.rows + 1;
        Guard.tick guard label;
        prof_tick c;
        k (p.p_tuple row))
  | Union ts ->
    List.iter
      (fun sub ->
        run ~guard ctx sub (fun tuple ->
            c.rows <- c.rows + 1;
            Guard.tick guard label;
            prof_tick c;
            k tuple))
      ts
  | Diff d ->
    let ext = resolve ctx d.d_except in
    run ~guard ctx d.d_input (fun tuple ->
        c.probes <- c.probes + 1;
        if not (ext.Extent.mem tuple) then begin
          c.rows <- c.rows + 1;
          Guard.tick guard label;
          prof_tick c;
          k tuple
        end)
  | Distinct sub ->
    let seen = TH.create 64 in
    run ~guard ctx sub (fun tuple ->
        if not (TH.mem seen tuple) then begin
          TH.replace seen tuple ();
          c.rows <- c.rows + 1;
          Guard.tick guard label;
          prof_tick c;
          k tuple
        end)
  | Group g ->
    run ~guard ctx g.g_input (fun raw ->
        c.probes <- c.probes + 1;
        match Dc_agg.Agg.Group_table.offer g.g_table raw with
        | None -> () (* subsumed by the group's current bound *)
        | Some result ->
          c.rows <- c.rows + 1;
          Guard.tick guard label;
          prof_tick c;
          k result)

(* Early-exit probe: does the pipeline emit at least one tuple?  The
   incremental-maintenance rederivation step asks this per candidate
   tuple (with the candidate's values pre-bound through [set_init]), so
   stopping at the first witness instead of draining the pipeline is the
   whole point of the operator. *)
exception Found

let exists ?guard (ctx : ctx) (t : t) =
  match run ?guard ctx t (fun _ -> raise_notrace Found) with
  | () -> false
  | exception Found -> true

(* Run a pipeline and collect its output into a relation. *)
let collect ?(ctx = empty_ctx) ?guard ~schema t =
  let acc = ref (Relation.empty schema) in
  run ?guard ctx t (fun tuple -> acc := Relation.add_unchecked tuple !acc);
  !acc

(* ------------------------------------------------------------------ *)
(* Printing: the operator tree with post-run counters. *)

(* [times:true] is the EXPLAIN ANALYZE rendering; plain EXPLAIN keeps the
   historical counter-only form (and its golden test) byte-identical. *)
let pp_counters_gen ~times ppf (c : counters) =
  if times then
    if c.probes = 0 then Fmt.pf ppf "[rows=%d time=%.2fms]" c.rows c.ms
    else Fmt.pf ppf "[rows=%d probes=%d time=%.2fms]" c.rows c.probes c.ms
  else if c.probes = 0 then Fmt.pf ppf "[rows=%d]" c.rows
  else Fmt.pf ppf "[rows=%d probes=%d]" c.rows c.probes

let pp_counters = pp_counters_gen ~times:false

let op_name : type row. row op -> string = function
  | Seed -> "seed"
  | Scan _ -> "scan"
  | Nested_loop_join _ -> "nested-loop-join"
  | Index_lookup _ -> "index-lookup"
  | Hash_join _ -> "hash-join"
  | Correlated_scan _ -> "correlated-scan"
  | Filter _ -> "filter"
  | Anti_join _ -> "anti-join"

let top_name = function
  | Project _ -> "project"
  | Union _ -> "union"
  | Diff _ -> "diff"
  | Distinct _ -> "distinct"
  | Group _ -> "group"

let rec pp_node_gen : type row. bool -> row node Fmt.t =
 fun times ppf node ->
  let pp_counters = pp_counters_gen ~times in
  (match node.op with
  | Seed -> Fmt.pf ppf "%s %a" (op_name node.op) pp_counters node.c
  | _ ->
    Fmt.pf ppf "%s %s %a" (op_name node.op) (Lazy.force node.label) pp_counters
      node.c);
  let child : row node option =
    match node.op with
    | Seed -> None
    | Scan a | Nested_loop_join a -> Some a.a_input
    | Index_lookup k | Hash_join k -> Some k.k_input
    | Correlated_scan cs -> Some cs.cs_input
    | Filter f -> Some f.f_input
    | Anti_join aj -> Some aj.aj_input
  in
  match child with
  | None | Some { op = Seed; _ } -> ()  (* elide the seed leaf *)
  | Some input -> Fmt.pf ppf "@,%a" (pp_node_gen times) input

let pp_node ppf node = pp_node_gen false ppf node

let rec pp_gen times ppf (t : t) =
  let pp_counters = pp_counters_gen ~times in
  match t.top with
  | Project p ->
    Fmt.pf ppf "@[<v2>%s %s %a@,%a@]" (top_name t.top) (Lazy.force t.tlabel)
      pp_counters t.tc (pp_node_gen times) p.p_input
  | Union ts ->
    Fmt.pf ppf "@[<v2>%s %s %a" (top_name t.top) (Lazy.force t.tlabel)
      pp_counters t.tc;
    List.iter (fun sub -> Fmt.pf ppf "@,%a" (pp_gen times) sub) ts;
    Fmt.pf ppf "@]"
  | Diff d ->
    Fmt.pf ppf "@[<v2>%s (except %s) %s %a@,%a@]" (top_name t.top)
      (source_label d.d_except) (Lazy.force t.tlabel) pp_counters t.tc
      (pp_gen times) d.d_input
  | Distinct sub ->
    Fmt.pf ppf "@[<v2>%s %s %a@,%a@]" (top_name t.top) (Lazy.force t.tlabel)
      pp_counters t.tc (pp_gen times) sub
  | Group g ->
    let spec = Dc_agg.Agg.Group_table.spec g.g_table in
    Fmt.pf ppf "@[<v2>%s (%s) %s %a@,%a@]" (top_name t.top)
      (Dc_agg.Agg.op_name spec.Dc_agg.Agg.op)
      (Lazy.force t.tlabel) pp_counters t.tc (pp_gen times) g.g_input

let pp ppf t = pp_gen false ppf t
let pp_analyze ppf t = pp_gen true ppf t

(* ------------------------------------------------------------------ *)
(* Traces: the EXPLAIN-facing record of every pipeline a query execution
   lowered and ran.  Pipelines are registered under a label; re-running
   the same label (fixpoint rounds re-lowering a variant, semi-naive
   rounds re-running a stratum) merges counters into the stored tree when
   the shapes agree, so EXPLAIN shows totals over the whole execution. *)

module Trace = struct
  type entry = {
    e_label : string;
    mutable e_pipeline : t;
    mutable e_runs : int;
  }

  type trace = {
    mutable entries : entry list;  (* reverse registration order *)
    mutable scope : string;  (* label prefix set by the current driver *)
  }

  let create () = { entries = []; scope = "query" }

  let scoped tr scope f =
    let saved = tr.scope in
    tr.scope <- scope;
    Fun.protect ~finally:(fun () -> tr.scope <- saved) f

  exception Shape_mismatch

  (* Fold the counters of [fresh] into [stored], requiring equal shape. *)
  let rec merge_node : type row sow. row node -> sow node -> unit =
   fun stored fresh ->
    if
      op_name stored.op <> op_name fresh.op
      || Lazy.force stored.label <> Lazy.force fresh.label
    then raise Shape_mismatch;
    stored.c.rows <- stored.c.rows + fresh.c.rows;
    stored.c.probes <- stored.c.probes + fresh.c.probes;
    stored.c.ms <- stored.c.ms +. fresh.c.ms;
    let child : type r. r node -> r node option =
     fun n ->
      match n.op with
      | Seed -> None
      | Scan a | Nested_loop_join a -> Some a.a_input
      | Index_lookup k | Hash_join k -> Some k.k_input
      | Correlated_scan cs -> Some cs.cs_input
      | Filter f -> Some f.f_input
      | Anti_join aj -> Some aj.aj_input
    in
    match child stored, child fresh with
    | None, None -> ()
    | Some s, Some f -> merge_node s f
    | _ -> raise Shape_mismatch

  let rec merge stored fresh =
    if
      top_name stored.top <> top_name fresh.top
      || Lazy.force stored.tlabel <> Lazy.force fresh.tlabel
    then raise Shape_mismatch;
    stored.tc.rows <- stored.tc.rows + fresh.tc.rows;
    stored.tc.probes <- stored.tc.probes + fresh.tc.probes;
    stored.tc.ms <- stored.tc.ms +. fresh.tc.ms;
    match stored.top, fresh.top with
    | Project s, Project f -> merge_node s.p_input f.p_input
    | Union ss, Union fs ->
      if List.length ss <> List.length fs then raise Shape_mismatch;
      List.iter2 merge ss fs
    | Diff s, Diff f -> merge s.d_input f.d_input
    | Distinct s, Distinct f -> merge s f
    | Group s, Group f -> merge s.g_input f.g_input
    | _ -> raise Shape_mismatch

  (* Register a pipeline (before or after running it: counters are read
     at print time).  The label is prefixed by the current scope. *)
  let record tr ?label pipeline =
    let label =
      match label with
      | Some l -> Fmt.str "%s: %s" tr.scope l
      | None -> tr.scope
    in
    match List.find_opt (fun e -> String.equal e.e_label label) tr.entries with
    | None ->
      tr.entries <-
        { e_label = label; e_pipeline = pipeline; e_runs = 1 } :: tr.entries
    | Some e ->
      e.e_runs <- e.e_runs + 1;
      (* the same (prebuilt) pipeline re-registered across rounds already
         accumulates in place; a freshly lowered tree of the same shape
         has the stored totals folded in; a changed shape (e.g. a
         cardinality-driven reorder flipped between rounds) keeps the
         latest tree *)
      if not (pipeline == e.e_pipeline) then (
        (match merge pipeline e.e_pipeline with
        | () -> ()
        | exception Shape_mismatch -> ());
        e.e_pipeline <- pipeline)

  let entries tr = List.rev tr.entries

  let is_empty tr = tr.entries = []

  let pp_with times ppf tr =
    List.iter
      (fun e ->
        if e.e_runs = 1 then
          Fmt.pf ppf "@[<v2>%s:@,%a@]@." e.e_label (pp_gen times) e.e_pipeline
        else
          Fmt.pf ppf "@[<v2>%s (%d runs, counters totalled):@,%a@]@." e.e_label
            e.e_runs (pp_gen times) e.e_pipeline)
      (entries tr)

  let pp ppf tr = pp_with false ppf tr
  let pp_analyze ppf tr = pp_with true ppf tr

  (* Flatten every operator of every entry into
     (entry label, operator name, operator label, counters) — the data
     behind [register_metrics] and the conservation property tests. *)
  let counters tr =
    let acc = ref [] in
    let push entry op lbl c = acc := (entry, op, lbl, c) :: !acc in
    let rec walk_node : type row. string -> row node -> unit =
     fun entry n ->
      push entry (op_name n.op) (Lazy.force n.label) n.c;
      match n.op with
      | Seed -> ()
      | Scan a | Nested_loop_join a -> walk_node entry a.a_input
      | Index_lookup k | Hash_join k -> walk_node entry k.k_input
      | Correlated_scan cs -> walk_node entry cs.cs_input
      | Filter f -> walk_node entry f.f_input
      | Anti_join aj -> walk_node entry aj.aj_input
    in
    let rec walk entry (t : t) =
      push entry (top_name t.top) (Lazy.force t.tlabel) t.tc;
      match t.top with
      | Project p -> walk_node entry p.p_input
      | Union ts -> List.iter (walk entry) ts
      | Diff d -> walk entry d.d_input
      | Distinct s -> walk entry s
      | Group g -> walk entry g.g_input
    in
    List.iter (fun e -> walk e.e_label e.e_pipeline) (entries tr);
    List.rev !acc

  (* Publish a completed trace's per-operator totals into the metrics
     registry (dc_operator_rows_total / dc_operator_probes_total, labelled
     by entry, operator and operator label).  Repeated occurrences of the
     same labelled operator accumulate. *)
  let register_metrics tr =
    if Obs.on () then
      List.iter
        (fun (entry, op, lbl, c) ->
          let labels = [ ("entry", entry); ("label", lbl); ("op", op) ] in
          Obs.Counter.add
            (Obs.Counter.make ~labels "dc_operator_rows_total")
            c.rows;
          if c.probes > 0 then
            Obs.Counter.add
              (Obs.Counter.make ~labels "dc_operator_probes_total")
              c.probes)
        (counters tr)
end

type trace = Trace.trace

(* ------------------------------------------------------------------ *)
(* Parallel-round support.

   A pipeline's counters are plain mutable ints on the hot path, so
   worker domains never share one tree: each worker runs its own
   freshly compiled copy, and the barrier folds the copies' counters
   back into the canonical tree with [merge_counters].  [keyed_sources]
   tells the round driver which (named source, key positions) access
   paths the pipeline will probe, so shared build-side indexes can be
   prewarmed on the main domain before the fan-out — workers then only
   ever *read* the index tables. *)

(* Fold [fresh]'s counters into [into]; [false] if the trees' shapes
   disagree (counters are then simply not merged — EXPLAIN under a
   shape-changing reorder already tolerates this). *)
let merge_counters ~into fresh =
  match Trace.merge into fresh with
  | () -> true
  | exception Trace.Shape_mismatch -> false

(* Every (name, key positions) pair the pipeline probes through a keyed
   access path on a [Named] source, deduplicated. *)
let keyed_sources (t : t) =
  let acc = ref [] in
  let add src positions =
    match src with
    | Named n -> acc := (n, positions) :: !acc
    | Fixed _ -> ()
  in
  let rec walk_node : type row. row node -> unit =
   fun n ->
    match n.op with
    | Seed -> ()
    | Scan a | Nested_loop_join a -> walk_node a.a_input
    | Index_lookup k | Hash_join k ->
      add k.k_src k.k_positions;
      walk_node k.k_input
    | Correlated_scan cs -> walk_node cs.cs_input
    | Filter f -> walk_node f.f_input
    | Anti_join aj -> walk_node aj.aj_input
  in
  let rec walk (t : t) =
    match t.top with
    | Project p -> walk_node p.p_input
    | Union ts -> List.iter walk ts
    | Diff d -> walk d.d_input
    | Distinct s -> walk s
    | Group g -> walk g.g_input
  in
  walk t;
  List.sort_uniq compare !acc
