(* CSV reader/writer for relation payloads.

   The reader is a whole-content character scanner, not line-based:
   double-quoted fields may contain commas, doubled-quote escapes, and
   raw newlines (so any string value round-trips), and rows may be
   separated by LF or CRLF.  Values are parsed against an expected schema
   so load errors surface as type mismatches, not silent strings.

   Writer discipline: a field is quoted exactly when it trims to empty
   or contains a comma, quote, CR, or LF — an unquoted empty field is
   how a blank line is recognized (and skipped), so empty and
   whitespace-only strings must be quoted to survive the trip in a
   single-column relation. *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* Whole-content scan into rows of raw field strings.  A row consisting
   of a single unquoted all-whitespace field is a blank line and is
   dropped; a quoted empty field ([""]) is data and survives. *)
let parse_rows content =
  let n = String.length content in
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let rows = ref [] in
  let saw_quote = ref false in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    (match (List.rev !fields, !saw_quote) with
    | [ f ], false when String.trim f = "" -> () (* blank line *)
    | row, _ -> rows := row :: !rows);
    fields := [];
    saw_quote := false
  in
  let rec plain i =
    if i >= n then begin
      if Buffer.length buf > 0 || !fields <> [] || !saw_quote then flush_row ()
    end
    else
      match content.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '\r' when i + 1 < n && content.[i + 1] = '\n' ->
        flush_row ();
        plain (i + 2)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 ->
        saw_quote := true;
        quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then parse_error "unterminated quoted field"
    else
      match content.[i] with
      | '"' when i + 1 < n && content.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let parse_value ty s =
  match (ty : Value.ty) with
  | Value.TInt -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Value.Int i
    | None -> parse_error "expected INTEGER, got %S" s)
  | Value.TFloat -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Value.Float f
    | None -> parse_error "expected REAL, got %S" s)
  | Value.TBool -> (
    match String.lowercase_ascii (String.trim s) with
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> parse_error "expected BOOLEAN, got %S" s)
  | Value.TStr -> Value.str s

let parse_row schema fields =
  let types = Schema.attr_types schema in
  if List.length fields <> List.length types then
    parse_error "expected %d fields, got %d" (List.length types)
      (List.length fields);
  Tuple.of_list (List.map2 parse_value types fields)

let of_string ?(header = true) schema content =
  let rows = parse_rows content in
  let rows =
    if header then match rows with [] -> [] | _ :: tl -> tl else rows
  in
  Relation.of_list schema (List.map (parse_row schema) rows)

let of_lines ?header schema lines =
  of_string ?header schema (String.concat "\n" lines)

let load ?header schema path =
  of_string ?header schema (In_channel.with_open_bin path In_channel.input_all)

let escape s =
  if
    String.equal (String.trim s) ""
    || String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let cell = function
  | Value.Str s -> escape s
  | Value.Int i -> string_of_int i
  | Value.Bool b -> string_of_bool b
  | Value.Float f -> string_of_float f

let save ?(header = true) rel path =
  let oc = open_out_bin path in
  if header then
    output_string oc
      (String.concat ","
         (List.map escape (Schema.attr_names (Relation.schema rel)))
      ^ "\n");
  Relation.iter
    (fun t ->
      output_string oc
        (String.concat "," (List.map cell (Tuple.to_list t)) ^ "\n"))
    rel;
  close_out oc
