(* Minimal CSV reader/writer for loading example data sets.

   Understands double-quoted fields with doubled-quote escapes, which is
   all the bundled examples need.  Values are parsed against an expected
   schema so load errors surface as type mismatches, not silent strings. *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let split_line line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let n = String.length line in
  let rec plain i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
        flush ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then parse_error "unterminated quoted field: %s" line
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let parse_value ty s =
  match (ty : Value.ty) with
  | Value.TInt -> (
    match int_of_string_opt (String.trim s) with
    | Some i -> Value.Int i
    | None -> parse_error "expected INTEGER, got %S" s)
  | Value.TFloat -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Value.Float f
    | None -> parse_error "expected REAL, got %S" s)
  | Value.TBool -> (
    match String.lowercase_ascii (String.trim s) with
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> parse_error "expected BOOLEAN, got %S" s)
  | Value.TStr -> Value.str s

let parse_row schema fields =
  let types = Schema.attr_types schema in
  if List.length fields <> List.length types then
    parse_error "expected %d fields, got %d" (List.length types)
      (List.length fields);
  Tuple.of_list (List.map2 parse_value types fields)

let of_lines ?(header = true) schema lines =
  let lines = if header then List.tl lines else lines in
  let rows =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else Some (parse_row schema (split_line line)))
      lines
  in
  Relation.of_list schema rows

let load ?header schema path =
  let ic = open_in path in
  let rec read acc =
    match In_channel.input_line ic with
    | Some l -> read (l :: acc)
    | None -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  of_lines ?header schema lines

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let cell = function
  | Value.Str s -> escape s
  | Value.Int i -> string_of_int i
  | Value.Bool b -> string_of_bool b
  | Value.Float f -> string_of_float f

let save ?(header = true) rel path =
  let oc = open_out path in
  if header then
    output_string oc
      (String.concat "," (Schema.attr_names (Relation.schema rel)) ^ "\n");
  Relation.iter
    (fun t ->
      output_string oc
        (String.concat "," (List.map cell (Tuple.to_list t)) ^ "\n"))
    rel;
  close_out oc
