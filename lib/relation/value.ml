(* Atomic attribute values of the DBPL data model (paper §2.1).

   DBPL is a strongly typed language; we mirror its scalar universe with a
   dynamically tagged value type and enforce schema conformance at
   elaboration time (see {!Dc_calculus.Typecheck}) plus runtime assertions
   in {!Relation}. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float

type ty =
  | TInt
  | TStr
  | TBool
  | TFloat

let type_of = function
  | Int _ -> TInt
  | Str _ -> TStr
  | Bool _ -> TBool
  | Float _ -> TFloat

let type_name = function
  | TInt -> "INTEGER"
  | TStr -> "STRING"
  | TBool -> "BOOLEAN"
  | TFloat -> "REAL"

(* ------------------------------------------------------------------ *)
(* Interning (runtime kernel).

   The fixpoint hot path compares and hashes the same small population of
   strings (node names, part identifiers) millions of times.  The intern
   pool hash-conses them: [str]/[intern] return a canonical, physically
   unique string per content, mapped to a dense integer id.  Comparison
   fast paths then decide equality of interned values by pointer identity
   alone; the dense ids give downstream layers an integer key space.

   Interning is optional — [Str] built directly from a raw string is still
   a legal value and all operations remain correct on it; it merely misses
   the fast paths. *)

let intern_pool : (string, string * int) Hashtbl.t = Hashtbl.create 4096

(* The pool is process-global mutable state; interning happens at parse
   and load time, but worker domains may still construct [Str] values
   (e.g. string concatenation in a parallel round), so pool access is
   serialized.  Uncontended mutex acquisition is a few nanoseconds —
   invisible next to the Hashtbl probe it guards. *)
let intern_mutex = Mutex.create ()

let intern_string s =
  Mutex.lock intern_mutex;
  let c =
    match Hashtbl.find_opt intern_pool s with
    | Some (canonical, _) -> canonical
    | None ->
      Hashtbl.add intern_pool s (s, Hashtbl.length intern_pool);
      s
  in
  Mutex.unlock intern_mutex;
  c

let intern_id s =
  Mutex.lock intern_mutex;
  let id =
    match Hashtbl.find_opt intern_pool s with
    | Some (_, id) -> id
    | None ->
      let id = Hashtbl.length intern_pool in
      Hashtbl.add intern_pool s (s, id);
      id
  in
  Mutex.unlock intern_mutex;
  id

let interned_count () =
  Mutex.lock intern_mutex;
  let n = Hashtbl.length intern_pool in
  Mutex.unlock intern_mutex;
  n

let str s = Str (intern_string s)

let intern = function
  | Str s as v ->
    let c = intern_string s in
    if c == s then v else Str c
  | v -> v

let compare a b =
  if a == b then 0
  else
    match a, b with
    | Int x, Int y -> Int.compare x y
    | Str x, Str y -> if x == y then 0 else String.compare x y
    | Bool x, Bool y -> Bool.compare x y
    | Float x, Float y -> Float.compare x y
    | Int _, (Str _ | Bool _ | Float _) -> -1
    | (Str _ | Bool _ | Float _), Int _ -> 1
    | Str _, (Bool _ | Float _) -> -1
    | (Bool _ | Float _), Str _ -> 1
    | Bool _, Float _ -> -1
    | Float _, Bool _ -> 1

let equal a b =
  a == b
  ||
  match a, b with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> x == y || String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Float x, Float y -> Float.compare x y = 0
  | _ -> false

(* Allocation-free: tuples hash every cell at construction, so this runs
   on the hottest path of the engine.  Values of different types may
   collide; [equal] disambiguates. *)
let hash = function
  | Int x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bool b -> Bool.to_int b + 0x2cf5
  | Float f -> Hashtbl.hash f

let pp ppf = function
  | Int x -> Fmt.int ppf x
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Float f -> Fmt.float ppf f

let to_string v = Fmt.str "%a" pp v

let pp_ty ppf ty = Fmt.string ppf (type_name ty)

(* Arithmetic on values, used by computed terms in target lists
   (e.g. quantity multiplication in bill-of-materials rules). *)

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let add a b =
  match a, b with
  | Int x, Int y -> Int (x + y)
  | Float x, Float y -> Float (x +. y)
  | Str x, Str y -> Str (x ^ y)
  | _ ->
    type_error "cannot add %s and %s"
      (type_name (type_of a)) (type_name (type_of b))

let sub a b =
  match a, b with
  | Int x, Int y -> Int (x - y)
  | Float x, Float y -> Float (x -. y)
  | _ ->
    type_error "cannot subtract %s from %s"
      (type_name (type_of b)) (type_name (type_of a))

let mul a b =
  match a, b with
  | Int x, Int y -> Int (x * y)
  | Float x, Float y -> Float (x *. y)
  | _ ->
    type_error "cannot multiply %s and %s"
      (type_name (type_of a)) (type_name (type_of b))
