(* Per-evaluation index cache (runtime kernel).

   Relations are immutable values, so a hash index built on one is valid
   for exactly that value.  The cache keys entries on *physical identity*
   of the relation plus the indexed positions: a hit is only possible for
   the very record that was indexed, which makes cache consistency trivial
   without equality checks or generation counters.

   Fixpoint evaluators additionally [advance] the cache when a recursive
   relation grows monotonically from [old_rel] to [next] by [delta]: the
   existing index is extended in place with [delta]'s tuples and re-keyed
   to [next], so across rounds each access path is built once and then
   grows by deltas.  Only entries that were looked up since their last
   advance are carried forward — an index no round probes anymore is
   dropped instead of being grown forever.

   Entries live in a small move-to-front list — the working set of a
   constructor body is a handful of (relation, positions) pairs, and the
   list keeps identity comparison cheap and eviction LRU-ish. *)

type entry = {
  mutable e_rel : Relation.t;
  e_positions : int list;
  e_index : Index.t;
  mutable e_warm : bool; (* hit since last advance? *)
}

(* Open transaction (see [protect]): enough state to restore the cache
   exactly on abort.  The entry list spine and each entry's mutable
   fields are snapshotted eagerly; in-place [Index.extend]s performed by
   [advance] are journalled as (entry, delta) pairs and undone tuple by
   tuple via [Index.remove]. *)
type txn = {
  saved_entries : entry list;
  saved_fields : (entry * Relation.t * bool) list; (* (e, e_rel, e_warm) *)
  mutable advances : (entry * Relation.t) list;
}

type t = {
  mutable entries : entry list;
  cap : int;
  mutable txn : txn option;
  frozen : bool;
      (* a frozen cache is a published, read-only set of access paths:
         [get] never inserts, never reorders, never marks warm — safe to
         share by reference between concurrent reader sessions *)
  shared : t option;
      (* optional frozen fallback consulted on a miss before building:
         snapshot readers borrow the writer's prewarmed indexes without
         copying them.  Borrowed indexes are returned for lookup only and
         never enter [entries], so [advance] cannot mutate shared state. *)
}

let create ?(cap = 64) ?shared () =
  { entries = []; cap; txn = None; frozen = false; shared }

let clear c = c.entries <- []

let same_positions = List.equal Int.equal

let rec truncate n = function
  | [] -> []
  | _ when n = 0 -> []
  | e :: rest -> e :: truncate (n - 1) rest

(* Pure lookup against a frozen cache: no move-to-front, no warm bit —
   multiple domains may probe one frozen cache concurrently. *)
let frozen_get c positions rel =
  List.find_map
    (fun e ->
      if e.e_rel == rel && same_positions e.e_positions positions then
        Some e.e_index
      else None)
    c.entries

let get c positions rel =
  if c.frozen then
    match frozen_get c positions rel with
    | Some idx -> idx
    | None -> Index.build positions rel
  else
    let rec find acc = function
      | [] -> None
      | e :: rest ->
        if e.e_rel == rel && same_positions e.e_positions positions then begin
          (* move-to-front *)
          e.e_warm <- true;
          c.entries <- e :: List.rev_append acc rest;
          Some e.e_index
        end
        else find (e :: acc) rest
    in
    match find [] c.entries with
    | Some idx -> idx
    | None -> (
      (* a shared frozen hit is used in place but not adopted: adopting
         would expose the borrowed index to [advance]'s in-place extends *)
      match Option.bind c.shared (fun s -> frozen_get s positions rel) with
      | Some idx -> idx
      | None ->
        let idx = Index.build positions rel in
        let e =
          { e_rel = rel; e_positions = positions; e_index = idx; e_warm = true }
        in
        c.entries <- e :: truncate (c.cap - 1) c.entries;
        idx)

(* Insert a prebuilt index (publish-time prewarming). *)
let put c positions rel idx =
  let e =
    { e_rel = rel; e_positions = positions; e_index = idx; e_warm = true }
  in
  c.entries <- e :: truncate (c.cap - 1) c.entries

(* Publish the current contents as an immutable, shareable cache.  The
   entry records are shared by reference, so only caches that will not be
   [advance]d afterwards (publish-time prewarm sets) should be frozen. *)
let freeze c = { entries = c.entries; cap = c.cap; txn = None; frozen = true; shared = None }

let is_frozen c = c.frozen

let advance c ~old_rel ~delta ~next =
  c.entries <-
    List.filter
      (fun e ->
        if e.e_rel == old_rel then
          if e.e_warm then begin
            Index.extend e.e_index delta;
            (match c.txn with
            | Some txn -> txn.advances <- (e, delta) :: txn.advances
            | None -> ());
            e.e_rel <- next;
            e.e_warm <- false;
            true
          end
          else false (* cold: nobody probed it since last growth — drop *)
        else true)
      c.entries

let length c = List.length c.entries

let protect c f =
  match c.txn with
  | Some _ ->
      (* Nested expansions share the outermost transaction: the outer
         rollback restores past every inner mutation anyway. *)
      f ()
  | None ->
      let txn =
        {
          saved_entries = c.entries;
          saved_fields = List.map (fun e -> (e, e.e_rel, e.e_warm)) c.entries;
          advances = [];
        }
      in
      c.txn <- Some txn;
      let rollback () =
        (* Newest advance first: buckets are prepend-on-add, so undoing
           in reverse insertion order peels list heads. *)
        List.iter
          (fun (e, delta) -> Relation.iter (Index.remove e.e_index) delta)
          txn.advances;
        List.iter
          (fun (e, rel, warm) ->
            e.e_rel <- rel;
            e.e_warm <- warm)
          txn.saved_fields;
        c.entries <- txn.saved_entries
      in
      let finish () = c.txn <- None in
      (match f () with
      | v ->
          finish ();
          v
      | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          rollback ();
          finish ();
          Printexc.raise_with_backtrace exn bt)

(* Deep observational snapshot, for tests asserting abort atomicity. *)
type snapshot = (Relation.t * int list * Tuple.t list * bool) list

let snapshot c =
  List.map
    (fun e ->
      let tuples = ref [] in
      Index.iter (fun _ bucket -> tuples := bucket @ !tuples) e.e_index;
      let tuples = List.sort Tuple.compare !tuples in
      (e.e_rel, e.e_positions, tuples, e.e_warm))
    c.entries

let snapshot_equal (a : snapshot) (b : snapshot) =
  List.length a = List.length b
  && List.for_all2
       (fun (ra, pa, ta, wa) (rb, pb, tb, wb) ->
         ra == rb && pa = pb && wa = wb && List.equal Tuple.equal ta tb)
       a b
