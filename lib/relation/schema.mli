(** Relation schemas with key constraints (paper §2.2).

    A schema models a DBPL relation type
    [reltype = RELATION key OF elementtype]: a list of named, typed
    attributes together with the positions of the key attributes. *)

(** Domain refinements (paper §2.1, e.g. [partidtype IS RANGE 1..100]):
    symbolic domain predicates attached to attributes, enforced by the
    generated run-time checks whenever a tuple enters a relation. *)
type refinement =
  | No_refinement
  | Int_range of int * int  (** inclusive bounds *)

val satisfies_refinement : refinement -> Value.t -> bool
val pp_refinement : refinement Fmt.t

type attr = {
  attr_name : string;
  attr_ty : Value.ty;
  attr_refine : refinement;
}

type t

exception Schema_error of string

val make :
  ?key:string list ->
  ?refinements:(string * refinement) list ->
  (string * Value.ty) list ->
  t
(** [make ~key attrs] builds a schema. [key] lists the key attribute names;
    omitted or empty means the whole tuple is the key (the DBPL default for
    set-valued relations, making the §2.2 key constraint vacuous).
    [refinements] attaches §2.1 domain predicates by attribute name.
    @raise Schema_error on empty or duplicate attributes / unknown key. *)

val arity : t -> int

val attr_names : t -> string list
val attr_types : t -> Value.ty list

val attr_types_array : t -> Value.ty array
(** Positional attribute types as an array, precomputed at [make] time.
    The returned array is owned by the schema — do not mutate. *)

val find_attr : t -> string -> int option
(** Position of a named attribute, if any. *)

val attr_index : t -> string -> int
(** @raise Schema_error if the attribute does not exist. *)

val attr_ty : t -> int -> Value.ty
val attr_name : t -> int -> string
val attr_refinement : t -> int -> refinement

val refinements : t -> (string * refinement) list
(** The non-trivial refinements, by attribute name. *)

val key_positions : t -> int list
(** Positions of key attributes, strictly increasing. *)

val key_is_whole_tuple : t -> bool

val compatible : t -> t -> bool
(** Positional type compatibility (union compatibility); attribute names
    may differ. *)

val equal : t -> t -> bool

val project : t -> int list -> key:string list option -> t
(** [project s positions ~key] is the schema of a projection onto
    [positions] (in the given order) with the given key. *)

val rename : t -> string list -> t
(** Rename all attributes positionally, keeping types and key positions. *)

val pp : t Fmt.t
