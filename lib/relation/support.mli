(** Derivation-count bookkeeping for incrementally maintained extents:
    per derived tuple, the number of distinct rule derivations currently
    producing it.  Under an update a tuple leaves its extent exactly when
    the count drops to zero and enters when it rises from zero — the
    counting algorithm's fast path for non-recursive predicates (recursive
    components fall back to delete-and-rederive, where counts are
    unsound). *)

type t

val create : unit -> t

val count : t -> string -> Tuple.t -> int
(** Current count (0 when untracked). *)

val set : t -> string -> Tuple.t -> int -> unit
(** Overwrite a count; 0 untracks the tuple. *)

val add : t -> string -> Tuple.t -> int -> int * int
(** [add s pred tuple d] adjusts the count by [d] and returns
    [(old, new)] — callers classify by the zero-crossing direction. *)

val clear_pred : t -> string -> unit
val reset : t -> unit
val iter_pred : t -> string -> (Tuple.t -> int -> unit) -> unit

val total : t -> int
(** Number of tracked tuples across all predicates. *)

val snapshot : t -> unit -> unit
(** Capture the full state; the returned thunk restores it (rollback to
    the pre-update snapshot on a failed maintenance step). *)

val dump : t -> (string * (Tuple.t * int) list) list
(** Deterministic full dump, sorted by predicate then tuple — what a
    checkpoint writes and recovery restores via {!set}. *)

val pp : t Fmt.t
