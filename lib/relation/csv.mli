(** CSV I/O for relations, typed against a schema.

    Full value round-tripping: quoted fields may contain commas, doubled
    quotes, and raw newlines; the writer quotes exactly the fields that
    need it (including the empty string, which would otherwise read back
    as a blank line). *)

exception Parse_error of string

val parse_rows : string -> string list list
(** Scan CSV content into rows of raw field strings (LF or CRLF row
    separators; blank lines dropped; a quoted empty field survives).
    @raise Parse_error on an unterminated quote. *)

val parse_value : Value.ty -> string -> Value.t
(** @raise Parse_error if the text does not parse at the expected type. *)

val parse_row : Schema.t -> string list -> Tuple.t

val of_string : ?header:bool -> Schema.t -> string -> Relation.t
(** Build a relation from CSV content; [header] (default true) drops the
    first row. *)

val of_lines : ?header:bool -> Schema.t -> string list -> Relation.t

val load : ?header:bool -> Schema.t -> string -> Relation.t
(** Load a CSV file. *)

val save : ?header:bool -> Relation.t -> string -> unit
(** Write a relation as CSV, attribute names as header by default. *)
