(** Per-evaluation cache of hash indexes, keyed on the {e physical
    identity} of the indexed relation plus the indexed positions.

    Because relations are immutable, identity keying makes hits trivially
    sound. Fixpoint loops call {!advance} when a recursive relation grows
    monotonically, so an access path is built once per fixpoint and then
    extended by per-round deltas instead of being rebuilt every round. *)

type t

val create : ?cap:int -> ?shared:t -> unit -> t
(** A fresh cache holding at most [cap] (default 64) entries, evicted
    LRU-ish.  When [shared] (a {!freeze}d cache) is given, misses consult
    it before building: hits are borrowed for lookup only and never enter
    this cache's own entries, so {!advance} cannot mutate shared state. *)

val get : t -> int list -> Relation.t -> Index.t
(** [get c positions rel] returns the cached index for exactly this
    relation value (physical identity) and positions, building and
    caching it on a miss.  On a frozen cache the lookup is pure: misses
    build a throwaway index without mutating the cache. *)

val frozen_get : t -> int list -> Relation.t -> Index.t option
(** Pure identity lookup: no move-to-front, no warm marking, no
    insertion.  Safe to call concurrently on a {!freeze}d cache. *)

val put : t -> int list -> Relation.t -> Index.t -> unit
(** [put c positions rel idx] inserts a prebuilt index — used at
    publish time to carry prewarmed access paths into the next
    snapshot's cache by reference. *)

val freeze : t -> t
(** An immutable, shareable view of the cache's current entries (shared
    by reference).  Only freeze caches that will no longer be
    {!advance}d. *)

val is_frozen : t -> bool

val advance : t -> old_rel:Relation.t -> delta:Relation.t -> next:Relation.t -> unit
(** [advance c ~old_rel ~delta ~next] upgrades every entry indexed on
    [old_rel] that was hit by {!get} since its last advance: extends its
    index with [delta]'s tuples in place and re-keys it to [next].
    Entries on [old_rel] that went unprobed are dropped instead of grown.
    Sound only when [next = union old_rel delta] and [delta] is disjoint
    from [old_rel]. *)

val clear : t -> unit

val length : t -> int
(** Current number of cached entries. *)

val protect : t -> (unit -> 'a) -> 'a
(** [protect c f] runs [f] in a cache transaction: if [f] raises, every
    mutation the cache saw meanwhile — entries added or evicted by
    {!get}, and the in-place index extensions and re-keyings done by
    {!advance} — is rolled back, leaving the cache observationally
    identical to its state before the call, and the exception is
    re-raised.  Nested calls join the outermost transaction.  This is
    what makes an aborted constructor expansion atomic. *)

type snapshot

val snapshot : t -> snapshot
(** Deep observational capture of the cache (entry order, keyed
    relations, index contents, warm flags) — for atomicity tests. *)

val snapshot_equal : snapshot -> snapshot -> bool
