(** Hash indexes: partition a relation by the values of selected attribute
    positions (the "physical access path" primitive of paper §4). *)

type t

val build : int list -> Relation.t -> t
(** [build positions rel] hashes every tuple of [rel] under the projection
    onto [positions]. *)

val create : ?size:int -> int list -> t
(** An empty index on [positions]; grow it with {!add}/{!extend}. *)

val add : t -> Tuple.t -> unit
(** Insert one tuple into its bucket. The caller is responsible for not
    inserting the same tuple twice (indexes store lists, not sets). *)

val extend : t -> Relation.t -> unit
(** [extend idx delta] adds every tuple of [delta] — the delta-incremental
    maintenance step: an index built on [r] then extended with
    [diff r' r] answers lookups exactly as one freshly built on [r']. *)

val extend_seq : t -> Tuple.t Seq.t -> unit

val remove : t -> Tuple.t -> unit
(** Undo one insertion of the tuple (first occurrence in its bucket);
    no-op when absent. Used to roll back {!extend} on abort. *)

val positions : t -> int list

val lookup : t -> Tuple.t -> Tuple.t list
(** Tuples whose projection equals the given key image. *)

val lookup_values : t -> Value.t list -> Tuple.t list

val buckets : t -> int
(** Number of distinct key images. *)

val iter : (Tuple.t -> Tuple.t list -> unit) -> t -> unit
