(* Relation schemas: attribute names/types plus the key constraint of
   paper §2.2 ("RELATION key OF elementtype").

   A schema corresponds to a DBPL relation type such as

     infrontrel = RELATION front, back OF RECORD front, back: parttype END

   The key is a subset of attributes whose values must be unique across the
   relation (enforced by {!Relation}). *)

(* Domain refinements (paper §2.1): currently prevalent languages "only
   allow type definitions based on restricted propositional logic", e.g.
   partidtype IS RANGE 1..100 — the domain predicate (1 <= p AND p <= 100).
   Refinements are symbolic so schemas stay comparable values; the type
   checker turns them into the generated run-time test of §2.1:
   IF (1 <= ix) AND (ix <= 100) THEN p := ix ELSE <exception>. *)
type refinement =
  | No_refinement
  | Int_range of int * int (* inclusive bounds *)

let satisfies_refinement refinement v =
  match refinement, (v : Value.t) with
  | No_refinement, _ -> true
  | Int_range (lo, hi), Value.Int i -> lo <= i && i <= hi
  | Int_range _, _ -> false

let pp_refinement ppf = function
  | No_refinement -> ()
  | Int_range (lo, hi) -> Fmt.pf ppf " RANGE %d..%d" lo hi

type attr = {
  attr_name : string;
  attr_ty : Value.ty;
  attr_refine : refinement;
}

type t = {
  attrs : attr array;
  key : int array; (* positions of the key attributes, strictly increasing *)
  types : Value.ty array;
      (* attr_ty of each attribute, precomputed so per-tuple type checks
         ([Tuple.well_typed]) don't re-derive the array on every call *)
}

exception Schema_error of string

let schema_error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let arity s = Array.length s.attrs

let attr_names s = Array.to_list (Array.map (fun a -> a.attr_name) s.attrs)

let attr_types s = Array.to_list s.types

let attr_types_array s = s.types

let find_attr s name =
  let rec loop i =
    if i >= Array.length s.attrs then None
    else if String.equal s.attrs.(i).attr_name name then Some i
    else loop (i + 1)
  in
  loop 0

let attr_index s name =
  match find_attr s name with
  | Some i -> i
  | None -> schema_error "unknown attribute %s" name

let attr_ty s i = s.attrs.(i).attr_ty

let attr_name s i = s.attrs.(i).attr_name

let attr_refinement s i = s.attrs.(i).attr_refine

let refinements s =
  List.filter_map
    (fun a ->
      if a.attr_refine = No_refinement then None
      else Some (a.attr_name, a.attr_refine))
    (Array.to_list s.attrs)

let make ?key ?(refinements = []) attrs =
  if attrs = [] then schema_error "a relation schema needs at least one attribute";
  let names = List.map fst attrs in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    schema_error "duplicate attribute name in schema (%s)"
      (String.concat ", " names);
  let attrs =
    Array.of_list
      (List.map
         (fun (attr_name, attr_ty) ->
           {
             attr_name;
             attr_ty;
             attr_refine =
               Option.value
                 (List.assoc_opt attr_name refinements)
                 ~default:No_refinement;
           })
         attrs)
  in
  let types = Array.map (fun a -> a.attr_ty) attrs in
  let s = { attrs; key = [||]; types } in
  let key_positions =
    match key with
    | None | Some [] ->
      (* DBPL: the whole tuple is the key when no key is declared, which
         makes the key constraint vacuous for set-valued relations. *)
      Array.init (Array.length attrs) Fun.id
    | Some names -> Array.of_list (List.map (attr_index s) names)
  in
  let sorted_key = Array.copy key_positions in
  Array.sort Int.compare sorted_key;
  { s with key = sorted_key }

let key_positions s = Array.to_list s.key

let key_is_whole_tuple s = Array.length s.key = arity s

(* Two schemas are compatible (union-compatible in Codd's sense) when the
   attribute types agree positionally; names may differ as DBPL identifies
   tuple components positionally across assignment. *)
let compatible a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.attr_ty = y.attr_ty) a.attrs b.attrs

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> x.attr_ty = y.attr_ty && String.equal x.attr_name y.attr_name)
       a.attrs b.attrs
  && a.key = b.key

let project s positions ~key =
  let attrs = List.map (fun i -> (attr_name s i, attr_ty s i)) positions in
  let refinements =
    List.filter_map
      (fun i ->
        match attr_refinement s i with
        | No_refinement -> None
        | r -> Some (attr_name s i, r))
      positions
  in
  make ?key ~refinements attrs

let rename s names =
  if List.length names <> arity s then
    schema_error "rename: expected %d attribute names, got %d" (arity s)
      (List.length names);
  let attrs =
    List.map2 (fun name a -> (name, a.attr_ty)) names (Array.to_list s.attrs)
  in
  let refinements =
    List.map2 (fun name a -> (name, a.attr_refine)) names (Array.to_list s.attrs)
    |> List.filter (fun (_, r) -> r <> No_refinement)
  in
  let key = List.map (fun i -> List.nth names i) (key_positions s) in
  make ~key ~refinements attrs

let pp ppf s =
  let pp_attr ppf a =
    Fmt.pf ppf "%s: %s%a" a.attr_name (Value.type_name a.attr_ty) pp_refinement
      a.attr_refine
  in
  let keys = List.map (attr_name s) (key_positions s) in
  Fmt.pf ppf "RELATION %s OF RECORD %a END"
    (String.concat ", " keys)
    Fmt.(array ~sep:(any "; ") pp_attr)
    s.attrs
