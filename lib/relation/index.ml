(* Hash indexes on attribute positions.

   The paper's §4 runtime level materializes "physical access paths" —
   partitions of a relation by the values of selected attributes.  This
   module is that partitioning primitive; it also backs the hash joins in
   {!Algebra} and in the calculus evaluator.

   Runtime kernel: indexes are mutable and growable.  [create]/[add]/
   [extend] let the fixpoint layers keep one index per (relation,
   positions) alive across rounds and feed it only the per-round deltas,
   instead of rebuilding from scratch each round. *)

module Key = struct
  type t = Tuple.t (* the projected key image *)

  let equal = Tuple.equal
  let hash = Tuple.hash
end

module H = Hashtbl.Make (Key)

type t = {
  positions : int list;
  pos_arr : int array; (* [positions] precompiled for the projection loop *)
  table : Tuple.t list H.t;
}

let create ?(size = 64) positions =
  { positions; pos_arr = Array.of_list positions; table = H.create size }

let add idx t =
  let k = Tuple.project_arr t idx.pos_arr in
  match H.find_opt idx.table k with
  | Some prev -> H.replace idx.table k (t :: prev)
  | None -> H.add idx.table k [ t ]

let extend idx rel = Relation.iter (add idx) rel

let remove idx t =
  let k = Tuple.project_arr t idx.pos_arr in
  match H.find_opt idx.table k with
  | None -> ()
  | Some bucket ->
      (* Drop the first occurrence only: [add] stores one entry per
         insertion, so remove must undo exactly one insertion. *)
      let rec drop = function
        | [] -> []
        | x :: rest -> if Tuple.equal x t then rest else x :: drop rest
      in
      (match drop bucket with
      | [] -> H.remove idx.table k
      | bucket' -> H.replace idx.table k bucket')

let extend_seq idx seq = Seq.iter (add idx) seq

let build positions rel =
  let idx = create ~size:(max 16 (Relation.cardinal rel)) positions in
  extend idx rel;
  idx

let positions idx = idx.positions

let lookup idx key = Option.value (H.find_opt idx.table key) ~default:[]

let lookup_values idx values = lookup idx (Tuple.of_list values)

let buckets idx = H.length idx.table

let iter f idx = H.iter f idx.table

