(** Relations: finite typed sets of tuples with the key constraint of
    paper §2.2.

    Values are persistent; every update returns a new relation. Operations
    that admit a tuple enforce (a) schema conformance and (b) uniqueness of
    the key image, raising {!Type_mismatch} / {!Key_violation} exactly where
    DBPL's generated run-time checks would raise an exception. *)

type t

exception Key_violation of string
exception Type_mismatch of string

val schema : t -> Schema.t

val empty : Schema.t -> t
val singleton : Schema.t -> Tuple.t -> t

val of_list : Schema.t -> Tuple.t list -> t
(** @raise Key_violation / Type_mismatch per offending tuple. *)

val of_pairs : Schema.t -> (Value.t * Value.t) list -> t
(** Convenience for binary relations. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : Tuple.t -> t -> bool

val to_list : t -> Tuple.t list
(** In increasing {!Tuple.compare} order. *)

val to_seq : t -> Tuple.t Seq.t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val exists : (Tuple.t -> bool) -> t -> bool
val for_all : (Tuple.t -> bool) -> t -> bool
val choose_opt : t -> Tuple.t option

val add : Tuple.t -> t -> t
(** Checked insertion.
    @raise Type_mismatch if the tuple does not conform to the schema.
    @raise Key_violation if a different tuple with the same key image is
    already present. *)

val add_unchecked : Tuple.t -> t -> t
(** Insertion without the key check (asserts well-typedness); used by the
    fixpoint engine on derived relations with whole-tuple keys. *)

val remove : Tuple.t -> t -> t

val violates_key : t -> Tuple.t -> bool
(** Would adding this (absent) tuple violate the key constraint? *)

val union : t -> t -> t
(** Schema-compatible union (left schema wins).
    @raise Key_violation if merging keyed relations collides. *)

val inter : t -> t -> t
val diff : t -> t -> t
val filter : (Tuple.t -> bool) -> t -> t

val with_schema : Schema.t -> t -> t
(** Re-view the relation at a positionally compatible schema (attribute
    names and keys taken from the new schema; tuples shared).
    @raise Type_mismatch if the schemas are not compatible. *)

val equal : t -> t -> bool
(** Same tuple set under compatible schemas. *)

val subset : t -> t -> bool
val compare_tuples : t -> t -> int

val partition_hash : shards:int -> t -> t array
(** Hash-partition into [shards] disjoint covering relations keyed on the
    cached structural tuple hash; deterministic for a fixed shard count.
    [shards <= 1] returns the relation unsplit. *)

val content_hash : t -> int
(** Deterministic hash of the tuple set (memoization of relation-valued
    constructor arguments). *)

val pp : t Fmt.t
(** Set-brace rendering, e.g. [{<1, 2>, <2, 3>}]. *)

val pp_table : t Fmt.t
(** Aligned textual table with header, used by the CLI and examples. *)
