(* Tuples are immutable value arrays; the element type of a relation.

   Tuples carry no schema of their own: schema conformance is checked when
   a tuple enters a relation, mirroring DBPL's record values flowing into
   typed relation variables.

   Runtime kernel: a tuple caches its structural hash in the record so
   [Tuple_set] balancing, [Hashtbl.Make] instances, and index lookups stop
   re-walking the cell array.  The cache fills lazily on first use — most
   derived tuples only ever flow through ordered sets (pure comparisons),
   and hashing their cells eagerly at construction measurably slows the
   fixpoint emit path. *)

type t = {
  cells : Value.t array;
  mutable h : int; (* cached hash; negative = not yet computed *)
}

let hash_seed = 17

let hash_cells cells =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) hash_seed cells

(* [make] takes ownership of [cells]: every caller below passes a freshly
   allocated array that is never mutated afterwards. *)
let make cells = { cells; h = -1 }

let hash t =
  let h = t.h in
  if h >= 0 then h
  else begin
    let h = hash_cells t.cells land max_int in
    t.h <- h;
    h
  end

let empty = make [||]

let arity t = Array.length t.cells

let of_list l = make (Array.of_list l)

let to_list t = Array.to_list t.cells

let get t i = t.cells.(i)

let make1 v = make [| v |]

let make2 a b = make [| a; b |]

let make3 a b c = make [| a; b; c |]

let compare a b =
  if a == b then 0
  else
    let xa = a.cells and xb = b.cells in
    let la = Array.length xa and lb = Array.length xb in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec loop i =
        if i >= la then 0
        else
          let c = Value.compare xa.(i) xb.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

let equal a b =
  a == b
  || ((a.h < 0 || b.h < 0 || a.h = b.h)
     &&
     let xa = a.cells and xb = b.cells in
     let la = Array.length xa in
     la = Array.length xb
     &&
     let rec loop i = i >= la || (Value.equal xa.(i) xb.(i) && loop (i + 1)) in
     loop 0)

let project t positions =
  match positions with
  | [] -> empty
  | _ ->
    let n = List.length positions in
    let src = t.cells in
    let cells = Array.make n src.(List.hd positions) in
    List.iteri (fun i p -> Array.unsafe_set cells i src.(p)) positions;
    make cells

let project_arr t positions =
  let n = Array.length positions in
  if n = 0 then empty
  else begin
    let src = t.cells in
    let cells = Array.make n src.(Array.unsafe_get positions 0) in
    for i = 1 to n - 1 do
      Array.unsafe_set cells i src.(Array.unsafe_get positions i)
    done;
    make cells
  end

let well_typed schema t =
  let tys = Schema.attr_types_array schema in
  let cells = t.cells in
  Array.length cells = Array.length tys
  &&
  let rec loop i =
    i >= Array.length tys
    || (Value.type_of (Array.unsafe_get cells i) = Array.unsafe_get tys i
       && loop (i + 1))
  in
  loop 0

(* Typing plus the §2.1 domain refinements — the full generated check. *)
let in_domain schema t =
  well_typed schema t
  &&
  let cells = t.cells in
  let rec loop i =
    i >= Array.length cells
    || (Schema.satisfies_refinement
          (Schema.attr_refinement schema i)
          (Array.unsafe_get cells i)
       && loop (i + 1))
  in
  loop 0

let concat a b = make (Array.append a.cells b.cells)

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ", ") Value.pp) t.cells

let to_string t = Fmt.str "%a" pp t
