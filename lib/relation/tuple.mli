(** Tuples: immutable sequences of {!Value.t}, the elements of relations.

    The representation is abstract; it caches the structural hash at
    construction so set and hash-table operations over tuples cost an
    integer read instead of an array walk. *)

type t

val arity : t -> int

val of_list : Value.t list -> t
val to_list : t -> Value.t list

val get : t -> int -> Value.t

val make1 : Value.t -> t
val make2 : Value.t -> Value.t -> t
val make3 : Value.t -> Value.t -> Value.t -> t

val compare : t -> t -> int
(** Lexicographic order; shorter tuples sort first. *)

val equal : t -> t -> bool
(** Structural equality with a cached-hash fast path. *)

val hash : t -> int
(** Memoized in the tuple on first use; the 31-polynomial over
    {!Value.hash} of the cells. *)

val project : t -> int list -> t
(** [project t positions] keeps the listed positions in the given order. *)

val project_arr : t -> int array -> t
(** Like {!project} with precompiled positions — the index hot path. *)

val well_typed : Schema.t -> t -> bool
(** Does the tuple conform to the schema (arity and per-position type)? *)

val in_domain : Schema.t -> t -> bool
(** {!well_typed} plus the §2.1 domain refinements of every attribute. *)

val concat : t -> t -> t

val pp : t Fmt.t
val to_string : t -> string
