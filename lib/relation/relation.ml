(* Relations: finite, typed sets of tuples with the §2.2 key constraint.

   The legal values of a relation variable are tuple sets in which the key
   attributes identify elements uniquely:

     ALL r1,r2 IN rel (r1.key = r2.key ==> r1 = r2)

   Relations are persistent (balanced-tree sets), which the fixpoint engine
   relies on for cheap snapshots of iteration states. *)

module Tuple_set = Set.Make (Tuple)

type t = {
  schema : Schema.t;
  tuples : Tuple_set.t;
}

exception Key_violation of string
exception Type_mismatch of string

let key_violation fmt = Fmt.kstr (fun s -> raise (Key_violation s)) fmt
let type_mismatch fmt = Fmt.kstr (fun s -> raise (Type_mismatch s)) fmt

let schema r = r.schema

let empty schema = { schema; tuples = Tuple_set.empty }

let cardinal r = Tuple_set.cardinal r.tuples

let is_empty r = Tuple_set.is_empty r.tuples

let mem t r = Tuple_set.mem t r.tuples

let to_list r = Tuple_set.elements r.tuples

let to_seq r = Tuple_set.to_seq r.tuples

let fold f r acc = Tuple_set.fold f r.tuples acc

let iter f r = Tuple_set.iter f r.tuples

let exists p r = Tuple_set.exists p r.tuples

let for_all p r = Tuple_set.for_all p r.tuples

let choose_opt r = Tuple_set.choose_opt r.tuples

let check_type r t =
  if not (Tuple.well_typed r.schema t) then
    type_mismatch "tuple %a does not conform to schema %a" Tuple.pp t
      Schema.pp r.schema
  else if not (Tuple.in_domain r.schema t) then
    (* the generated §2.1 domain check:
       IF (lo <= ix) AND (ix <= hi) THEN p := ix ELSE <exception> *)
    type_mismatch "tuple %a violates a domain refinement of %a" Tuple.pp t
      Schema.pp r.schema

(* Key images currently present.  Only materialized when the key is a
   proper subset of the attributes; with whole-tuple keys the set itself
   enforces the constraint. *)
let key_of schema t = Tuple.project t (Schema.key_positions schema)

let violates_key r t =
  (not (Schema.key_is_whole_tuple r.schema))
  && (not (mem t r))
  && exists (fun u -> Tuple.equal (key_of r.schema u) (key_of r.schema t)) r

(* [add] enforces both typing and the key constraint, mirroring the
   type-checker-generated conditional assignment of §2.2:
     IF ALL x1,x2 IN rex (x1.key = x2.key ==> x1 = x2)
     THEN rel := rex ELSE <exception> *)
let add t r =
  check_type r t;
  if violates_key r t then
    key_violation "key %a already present" Tuple.pp (key_of r.schema t);
  { r with tuples = Tuple_set.add t r.tuples }

(* [add_unchecked] is used by the fixpoint engine on derived relations whose
   schemas declare whole-tuple keys; it still asserts well-typedness. *)
let add_unchecked t r =
  assert (Tuple.well_typed r.schema t);
  { r with tuples = Tuple_set.add t r.tuples }

let remove t r = { r with tuples = Tuple_set.remove t r.tuples }

let of_list schema ts = List.fold_left (fun r t -> add t r) (empty schema) ts

let of_pairs schema vs =
  of_list schema (List.map (fun (a, b) -> Tuple.make2 a b) vs)

let singleton schema t = add t (empty schema)

let check_compatible op a b =
  if not (Schema.compatible a.schema b.schema) then
    type_mismatch "%s: incompatible schemas %a and %a" op Schema.pp a.schema
      Schema.pp b.schema

(* Union keeps the left schema; key constraint is re-checked only for
   keyed schemas. *)
let union a b =
  check_compatible "union" a b;
  if Tuple_set.is_empty b.tuples then a
  else if Schema.key_is_whole_tuple a.schema then
    { a with tuples = Tuple_set.union a.tuples b.tuples }
  else Tuple_set.fold add b.tuples a

let inter a b =
  check_compatible "inter" a b;
  { a with tuples = Tuple_set.inter a.tuples b.tuples }

let diff a b =
  check_compatible "diff" a b;
  if Tuple_set.is_empty b.tuples then a
  else { a with tuples = Tuple_set.diff a.tuples b.tuples }

let filter p r = { r with tuples = Tuple_set.filter p r.tuples }

(* Re-view a relation at a positionally compatible schema (e.g. an actual
   relation passed for a formal parameter whose type uses different
   attribute names).  The tuple set is shared. *)
let with_schema schema r =
  if not (Schema.compatible schema r.schema) then
    type_mismatch "cannot view %a at schema %a" Schema.pp r.schema Schema.pp
      schema;
  { r with schema }

let equal a b =
  Schema.compatible a.schema b.schema && Tuple_set.equal a.tuples b.tuples

let subset a b =
  Schema.compatible a.schema b.schema && Tuple_set.subset a.tuples b.tuples

let compare_tuples a b = Tuple_set.compare a.tuples b.tuples

(* Hash-partition into [shards] disjoint covering relations keyed on the
   cached structural tuple hash; deterministic for a fixed shard count.
   Parallel fixpoint rounds split a delta this way before fanning out. *)
let partition_hash ~shards r =
  if shards <= 1 then [| r |]
  else begin
    let out = Array.make shards Tuple_set.empty in
    Tuple_set.iter
      (fun t ->
        let i = Tuple.hash t mod shards in
        out.(i) <- Tuple_set.add t out.(i))
      r.tuples;
    Array.map (fun tuples -> { r with tuples }) out
  end

(* Deterministic structural hash of the tuple set, used to memoize
   constructor applications on relation-valued arguments. *)
let content_hash r =
  Tuple_set.fold (fun t acc -> (acc * 1000003) + Tuple.hash t) r.tuples 5381

let pp ppf r =
  let iter_tuples f rel = iter f rel in
  Fmt.pf ppf "{@[<hov>%a@]}"
    (Fmt.iter ~sep:(Fmt.any ",@ ") iter_tuples Tuple.pp)
    r

let pp_table ppf r =
  let names = Schema.attr_names r.schema in
  let widths =
    List.mapi
      (fun i name ->
        fold
          (fun t w -> max w (String.length (Value.to_string (Tuple.get t i))))
          r (String.length name))
      names
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  Fmt.pf ppf "%s@."
    (String.concat " | " (List.map2 pad names widths));
  Fmt.pf ppf "%s@." line;
  iter
    (fun t ->
      let cells =
        List.mapi (fun i w -> pad (Value.to_string (Tuple.get t i)) w) widths
      in
      Fmt.pf ppf "%s@." (String.concat " | " cells))
    r;
  Fmt.pf ppf "(%d tuple%s)" (cardinal r) (if cardinal r = 1 then "" else "s")
