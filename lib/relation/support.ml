(* Derivation-count bookkeeping for incrementally maintained extents.

   The counting algorithm for non-recursive predicates keeps, per derived
   tuple, the number of distinct rule derivations that currently produce
   it.  A base-relation update then translates into count adjustments:
   a tuple leaves the extent exactly when its count drops to zero, and
   enters it when the count rises from zero — no rederivation search
   needed.  (Recursive components cannot use counts soundly — a cycle can
   keep a tuple's count positive through derivations that themselves
   depend on the deleted tuple — and fall back to DRed.)

   One [t] holds the tables of every counted predicate of one maintained
   view, keyed by predicate name.  Counts are plain mutable state; the
   enclosing maintenance step is made atomic by [snapshot]/restore. *)

module HT = Hashtbl.Make (Tuple)

type t = (string, int HT.t) Hashtbl.t

let create () : t = Hashtbl.create 8

let table (s : t) pred =
  match Hashtbl.find_opt s pred with
  | Some tbl -> tbl
  | None ->
    let tbl = HT.create 64 in
    Hashtbl.replace s pred tbl;
    tbl

let count (s : t) pred tuple =
  match Hashtbl.find_opt s pred with
  | None -> 0
  | Some tbl -> Option.value (HT.find_opt tbl tuple) ~default:0

let set (s : t) pred tuple n =
  let tbl = table s pred in
  if n = 0 then HT.remove tbl tuple else HT.replace tbl tuple n

(* Adjust and return the (old, new) pair — the commit loop classifies
   tuples by the zero-crossing direction. *)
let add (s : t) pred tuple d =
  let tbl = table s pred in
  let old = Option.value (HT.find_opt tbl tuple) ~default:0 in
  let now = old + d in
  if now = 0 then HT.remove tbl tuple else HT.replace tbl tuple now;
  (old, now)

let clear_pred (s : t) pred = Hashtbl.remove s pred

let reset (s : t) = Hashtbl.reset s

let iter_pred (s : t) pred f =
  match Hashtbl.find_opt s pred with
  | None -> ()
  | Some tbl -> HT.iter f tbl

let total (s : t) =
  Hashtbl.fold (fun _ tbl acc -> acc + HT.length tbl) s 0

(* Capture the full current state; the returned thunk restores it (used
   to roll a failed maintenance step back to the pre-update snapshot). *)
let snapshot (s : t) =
  let saved =
    Hashtbl.fold (fun pred tbl acc -> (pred, HT.copy tbl) :: acc) s []
  in
  fun () ->
    Hashtbl.reset s;
    List.iter (fun (pred, tbl) -> Hashtbl.replace s pred tbl) saved

(* Deterministic full dump — the checkpoint writer's view of the counts.
   Sorted by predicate name, tuples by [Tuple.compare], so equal states
   serialize identically. *)
let dump (s : t) =
  Hashtbl.fold
    (fun pred tbl acc ->
      let rows = HT.fold (fun t n acc -> (t, n) :: acc) tbl [] in
      (pred, List.sort (fun (a, _) (b, _) -> Tuple.compare a b) rows) :: acc)
    s []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf (s : t) =
  Hashtbl.iter
    (fun pred tbl ->
      HT.iter (fun t n -> Fmt.pf ppf "%s%a = %d@." pred Tuple.pp t n) tbl)
    s
