(** Atomic attribute values of the DBPL data model (paper §2.1). *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Float of float

(** Scalar types of the DBPL type calculus. *)
type ty =
  | TInt
  | TStr
  | TBool
  | TFloat

val type_of : t -> ty
(** [type_of v] is the scalar type of [v]. *)

val type_name : ty -> string
(** DBPL keyword spelling of a scalar type, e.g. [TInt -> "INTEGER"]. *)

val compare : t -> t -> int
(** Total order; values of distinct types are ordered by type tag. *)

val equal : t -> t -> bool

val hash : t -> int

(** {1 Interning}

    The runtime kernel hash-conses strings: [str]/[intern] return values
    whose payload is the canonical, physically unique string for its
    content, so [equal]/[compare] on two interned values decide string
    equality by pointer identity. Interning is optional — a [Str] built
    directly from a raw string remains fully supported, it merely skips
    the fast path. *)

val str : string -> t
(** [str s] is [Str c] where [c] is the canonical interned copy of [s].
    Preferred constructor for strings on hot paths. *)

val intern : t -> t
(** Canonicalize the payload of a [Str]; identity on other values. *)

val intern_id : string -> int
(** Dense integer id of an interned string (interning it if needed).
    Ids are assigned in first-intern order, starting at 0. *)

val interned_count : unit -> int
(** Number of distinct strings in the intern pool. *)

val pp : t Fmt.t
val pp_ty : ty Fmt.t
val to_string : t -> string

exception Type_error of string
(** Raised by arithmetic on incompatible operands; the static type checker
    prevents this for elaborated programs. *)

val add : t -> t -> t
(** Addition ([Int]/[Float]); string concatenation on [Str]. *)

val sub : t -> t -> t
val mul : t -> t -> t
