(** The positivity constraint of paper §3.3.

    Definitions (paper, verbatim): a name appears {e under ALL} if the
    expression is [ALL r IN exp (p)] and the name appears in [exp] (names
    appearing only in [p] are not under that ALL); a name appears
    {e under NOT} if it appears in a negated factor.  An expression
    satisfies the positivity constraint when every occurrence of each
    argument relation sits under an {b even} total number of negations and
    universal quantifiers — which implies monotonicity (§3.3 lemma), so the
    §3.2 fixpoint iteration converges. *)

(** What an occurrence refers to. *)
type target =
  | Rel_name of string  (** occurrence of a named relation *)
  | App of string  (** occurrence of a constructor application *)

type occurrence = {
  occ_target : target;
  occ_depth : int;  (** number of enclosing NOTs and ALL-range positions *)
}

val occurrences_formula : Ast.formula -> occurrence list
val occurrences_range : Ast.range -> occurrence list
val occurrences_branches : Ast.branch list -> occurrence list

val positive_in_formula : Ast.formula -> string -> bool
(** Every occurrence of the named relation has even depth. *)

val positive_in_branches : Ast.branch list -> string -> bool

(** {1 Checking constructor systems} *)

type violation = {
  v_constructor : string;  (** the definition containing the occurrence *)
  v_occurrence : string;  (** the recursive application at fault *)
  v_depth : int;
}

val pp_violation : violation Fmt.t

val check_system :
  Defs.constructor_def list -> (unit, violation list) result
(** Check one (mutually recursive) system: every application of an
    in-system constructor must satisfy positivity. *)

val dependencies : Defs.constructor_def -> string list
(** Constructors applied in a definition's body (with repetitions). *)

val sccs : Defs.constructor_def list -> Defs.constructor_def list list
(** Strongly connected components of the application-dependency graph
    (Tarjan), in dependency order. *)

val check_program :
  Defs.constructor_def list -> (unit, violation list) result
(** Per-SCC positivity for a whole program: non-recursive uses of other,
    independently computable constructors under NOT/ALL remain legal. *)

val check_aggregates : Defs.constructor_def list -> unit
(** Aggregate admission, per SCC: COUNT/SUM definitions may not sit in a
    recursive component (a partial count is not a count), while MIN/MAX
    definitions in a recursive component must satisfy the premappability
    condition — the aggregated target monotone non-decreasing in every
    recursive bound, group/discriminator targets independent of the
    bounds, and where-clause tests on a bound closed under improvement
    (downward for MIN, upward for MAX).
    @raise Dc_agg.Agg.Inadmissible describing the violating definition *)
