(** Selector and constructor definitions (paper §2.3, §3).

    Syntactic objects abstracting "conditional patterns" (selectors) and
    "expressional patterns" (constructors); their semantics lives in
    [Dc_core] (filtering and least fixpoints respectively). *)

open Dc_relation

(** Formal parameters of a definition. *)
type param =
  | Scalar_param of string * Value.ty
  | Rel_param of string * Schema.t

val param_name : param -> string

(** [SELECTOR name (params) FOR Rel: reltype;
     BEGIN EACH v IN Rel: pred END name] *)
type selector_def = {
  sel_name : string;
  sel_formal : string;  (** the [FOR] formal, conventionally ["Rel"] *)
  sel_formal_schema : Schema.t;
  sel_params : param list;
  sel_var : Ast.var;  (** the [EACH] variable of the body *)
  sel_pred : Ast.formula;
}

(** [CONSTRUCTOR name FOR Rel: reltype (params): resulttype;
     BEGIN branch, branch, ... END name] *)
type constructor_def = {
  con_name : string;
  con_formal : string;
  con_formal_schema : Schema.t;
  con_params : param list;
  con_result : Schema.t;
  con_agg : Dc_agg.Agg.spec option;
      (** aggregate applied to the branches' raw emissions (every branch
          shares the spec); [con_result] is the aggregated schema:
          group attributes followed by the accumulated value *)
  con_body : Ast.branch list;
}

val pp_param : param Fmt.t
val pp_selector : selector_def Fmt.t
val pp_constructor : constructor_def Fmt.t
