(* The positivity constraint of paper §3.3.

   Definitions (verbatim from the paper):
   - a name appears under ALL if the expression is
     [ALL r IN exp (p)] and the name appears in [exp] — names appearing
     only in [p] are NOT under that ALL;
   - a name appears under NOT if it appears in a negated factor;
   - an expression [f(Rel_1, ..., Rel_n)] satisfies the positivity
     constraint if every occurrence of each [Rel_i] appears under an even
     total number of negations and universal quantifiers.

   The DBPL compiler accepts only constructor systems whose recursive
   applications satisfy positivity; by the §3.3 lemma such systems are
   monotonic, so the §3.2 least fixpoint exists and is reached in finitely
   many steps. *)

open Ast

type target =
  | Rel_name of string (* occurrence of a named relation *)
  | App of string (* occurrence of a constructor application *)

type occurrence = {
  occ_target : target;
  occ_depth : int; (* total number of enclosing NOTs and ALL-ranges *)
}

let rec formula_occ depth acc = function
  | True | False | Cmp _ -> acc
  | Not f -> formula_occ (depth + 1) acc f
  | And (a, b) | Or (a, b) -> formula_occ depth (formula_occ depth acc a) b
  | Some_in (_, r, f) ->
    (* existential range is not under the quantifier *)
    formula_occ depth (range_occ depth acc r) f
  | All_in (_, r, f) ->
    (* names in the range ARE under the ALL; names in the body are not *)
    formula_occ depth (range_occ (depth + 1) acc r) f
  | In_rel (_, r) | Member (_, r) -> range_occ depth acc r

and range_occ depth acc = function
  | Rel n -> { occ_target = Rel_name n; occ_depth = depth } :: acc
  | Select (r, _, args) ->
    List.fold_left (arg_occ depth) (range_occ depth acc r) args
  | Construct (r, c, args) ->
    let acc = { occ_target = App c; occ_depth = depth } :: acc in
    List.fold_left (arg_occ depth) (range_occ depth acc r) args
  | Comp branches -> List.fold_left (branch_occ depth) acc branches

and arg_occ depth acc = function
  | Arg_scalar _ -> acc
  | Arg_range r -> range_occ depth acc r

and branch_occ depth acc { binders; where; _ } =
  let acc =
    List.fold_left (fun acc (_, r) -> range_occ depth acc r) acc binders
  in
  formula_occ depth acc where

let occurrences_formula f = List.rev (formula_occ 0 [] f)
let occurrences_range r = List.rev (range_occ 0 [] r)
let occurrences_branches bs = List.rev (List.fold_left (branch_occ 0) [] bs)

(* A formula/expression is positive in [name] if every occurrence of that
   relation name has even depth. *)
let positive_in_formula f name =
  List.for_all
    (fun o -> o.occ_target <> Rel_name name || o.occ_depth mod 2 = 0)
    (occurrences_formula f)

let positive_in_branches bs name =
  List.for_all
    (fun o -> o.occ_target <> Rel_name name || o.occ_depth mod 2 = 0)
    (occurrences_branches bs)

(* ------------------------------------------------------------------ *)
(* Checking a constructor system *)

type violation = {
  v_constructor : string; (* the definition containing the occurrence *)
  v_occurrence : string; (* recursive application (or name) at fault  *)
  v_depth : int;
}

let pp_violation ppf v =
  Fmt.pf ppf
    "constructor %s: recursive occurrence of %s under %d NOT/ALL(s) (odd)"
    v.v_constructor v.v_occurrence v.v_depth

(* Check that every recursive application inside the given (mutually
   recursive) system of definitions satisfies positivity.  [defs] is the
   full system; occurrences of constructors outside the system are
   applications of already-checked, fully-computable relations and are
   exempt (they behave as constants during this system's iteration). *)
let check_system (defs : Defs.constructor_def list) =
  let in_system c =
    List.exists (fun (d : Defs.constructor_def) -> d.con_name = c) defs
  in
  let violations =
    List.concat_map
      (fun (d : Defs.constructor_def) ->
        List.filter_map
          (fun o ->
            match o.occ_target with
            | App c when in_system c && o.occ_depth mod 2 <> 0 ->
              Some
                {
                  v_constructor = d.con_name;
                  v_occurrence = c;
                  v_depth = o.occ_depth;
                }
            | App _ | Rel_name _ -> None)
          (occurrences_branches d.con_body))
      defs
  in
  if violations = [] then Ok () else Error violations

(* ------------------------------------------------------------------ *)
(* Whole-program check: partition constructors into strongly connected
   components of their application-dependency graph (Tarjan) and apply the
   positivity check to each component separately, so that a *non-recursive*
   use of another, independently computable constructor under NOT/ALL
   remains legal (it acts as a constant during this system's iteration). *)

let dependencies (d : Defs.constructor_def) =
  List.filter_map
    (fun o ->
      match o.occ_target with
      | App c -> Some c
      | Rel_name _ -> None)
    (occurrences_branches d.con_body)

let sccs (defs : Defs.constructor_def list) =
  let find name =
    List.find_opt (fun (d : Defs.constructor_def) -> d.con_name = name) defs
  in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next = ref 0 in
  let components = ref [] in
  let rec strongconnect (d : Defs.constructor_def) =
    let v = d.con_name in
    Hashtbl.replace index v !next;
    Hashtbl.replace lowlink v !next;
    incr next;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        match find w with
        | None -> () (* unknown constructor: typechecking reports it *)
        | Some dw ->
          if not (Hashtbl.mem index w) then begin
            strongconnect dw;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (dependencies d);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      components :=
        List.filter_map find comp :: !components
    end
  in
  List.iter
    (fun (d : Defs.constructor_def) ->
      if not (Hashtbl.mem index d.con_name) then strongconnect d)
    defs;
  List.rev !components

(* ------------------------------------------------------------------ *)
(* Aggregate admission (define time).

   COUNT/SUM are only exact at fixpoint — a partial count is not a count —
   so they are admitted only outside recursive components.  MIN/MAX may
   run inside a recursive fixpoint (one refinable bound per group) under
   the premappability condition [Zaniolo et al.]: every use of a
   recursive component's accumulated value must tolerate overestimates,
   i.e. the aggregated target term is monotone non-decreasing in each
   recursive value field, no group/discriminator target depends on one,
   and where-clause tests on one are closed under improvement (downward
   for MIN, upward for MAX).  Violations raise the typed
   {!Dc_agg.Agg.Inadmissible} error. *)

module Agg = Dc_agg.Agg

let check_aggregates (defs : Defs.constructor_def list) =
  List.iter
    (fun (comp : Defs.constructor_def list) ->
      let in_comp c = List.exists (fun d -> d.Defs.con_name = c) comp in
      let recursive =
        match comp with
        | [ d ] -> List.mem d.Defs.con_name (dependencies d)
        | _ -> true
      in
      let find c = List.find_opt (fun d -> d.Defs.con_name = c) defs in
      List.iter
        (fun (d : Defs.constructor_def) ->
          match d.con_agg with
          | None -> ()
          | Some spec ->
            if not recursive then ()
            else if not (Agg.premappable spec.op) then
              Agg.inadmissible d.con_name
                "recursive through its own %s aggregate — a partial %s is \
                 not a %s; break the cycle or use MIN/MAX"
                (Agg.op_name spec.op) (Agg.op_name spec.op)
                (Agg.op_name spec.op)
            else
              (* premappability: per branch, locate binders ranging over
                 this component and the attribute carrying their
                 accumulated value *)
              List.iter
                (fun (b : Ast.branch) ->
                  let rec_value_fields =
                    List.filter_map
                      (fun (v, r) ->
                        match r with
                        | Ast.Construct (_, c, _) when in_comp c -> (
                          match find c with
                          | Some dc ->
                            let res = dc.Defs.con_result in
                            Some
                              (v,
                               Dc_relation.Schema.attr_name res
                                 (Dc_relation.Schema.arity res - 1))
                          | None -> None)
                        | _ -> None)
                      b.binders
                  in
                  if rec_value_fields <> [] then begin
                    let is_rv v a =
                      List.exists
                        (fun (v', a') -> v = v' && a = a')
                        rec_value_fields
                    in
                    let rec mentions = function
                      | Ast.Field (v, a) -> is_rv v a
                      | Ast.Const _ | Ast.Param _ -> false
                      | Ast.Binop (_, x, y) -> mentions x || mentions y
                    in
                    (* monotone non-decreasing in the recursive values *)
                    let rec monotone = function
                      | Ast.Field _ | Ast.Const _ | Ast.Param _ -> true
                      | Ast.Binop (Ast.Add, x, y) -> monotone x && monotone y
                      | Ast.Binop (Ast.Sub, x, y) ->
                        monotone x && not (mentions y)
                      | Ast.Binop (Ast.Mul, x, y) ->
                        not (mentions x) && not (mentions y)
                    in
                    List.iteri
                      (fun i t ->
                        if i = spec.value then begin
                          if not (monotone t) then
                            Agg.inadmissible d.con_name
                              "the %s target %a is not monotone in the \
                               recursive bound (improvements could not \
                               propagate)"
                              (Agg.op_name spec.op) Ast.pp_term t
                        end
                        else if mentions t then
                          Agg.inadmissible d.con_name
                            "target %a places a recursive bound outside \
                             the aggregated column"
                            Ast.pp_term t)
                      b.target;
                    let ok_cmp op =
                      match (spec.op, (op : Ast.cmpop)) with
                      | Agg.Min, (Ast.Lt | Ast.Le) -> true
                      | Agg.Max, (Ast.Gt | Ast.Ge) -> true
                      | _ -> false
                    in
                    let flip = function
                      | Ast.Lt -> Ast.Gt
                      | Ast.Le -> Ast.Ge
                      | Ast.Gt -> Ast.Lt
                      | Ast.Ge -> Ast.Le
                      | (Ast.Eq | Ast.Ne) as o -> o
                    in
                    let rec formula_mentions = function
                      | Ast.True | Ast.False -> false
                      | Ast.Cmp (_, x, y) -> mentions x || mentions y
                      | Ast.Not f -> formula_mentions f
                      | Ast.And (x, y) | Ast.Or (x, y) ->
                        formula_mentions x || formula_mentions y
                      | Ast.Some_in (_, _, f) | Ast.All_in (_, _, f) ->
                        formula_mentions f
                      | Ast.In_rel _ -> false
                      | Ast.Member (ts, _) -> List.exists mentions ts
                    in
                    List.iter
                      (fun conj ->
                        if formula_mentions conj then
                          match conj with
                          | Ast.Cmp (op, x, y)
                            when mentions x && not (mentions y)
                                 && ok_cmp op ->
                            ()
                          | Ast.Cmp (op, x, y)
                            when mentions y && not (mentions x)
                                 && ok_cmp (flip op) ->
                            ()
                          | conj ->
                            Agg.inadmissible d.con_name
                              "condition %a tests a recursive %s bound in \
                               a way not closed under improvement"
                              Ast.pp_formula conj (Agg.op_name spec.op))
                      (Ast.conjuncts b.where)
                  end)
                d.con_body)
        comp)
    (sccs defs)

(* Per-SCC positivity for a whole program of constructor definitions. *)
let check_program defs =
  let violations =
    List.concat_map
      (fun comp ->
        match check_system comp with
        | Ok () -> []
        | Error vs -> vs)
      (sccs defs)
  in
  if violations = [] then Ok () else Error violations
