(* Set-oriented evaluation of calculus expressions.

   This is the paper's "set-construction framework": branches are executed
   as pipelined scans with hash-index lookups for equi-join conjuncts, not
   tuple-at-a-time resolution.  The evaluator is parameterized by hooks for
   selector and constructor application so that [Dc_core] can install the
   fixpoint semantics without a dependency cycle.

   Join scheduling: for each branch we take the binders in program order;
   every top-level conjunct of the WHERE formula is attached to the first
   binder position at which all its tuple variables are bound.  Conjuncts of
   shape [v.a = t] (with [t] closed under earlier binders) become hash-index
   keys for binder [v]; everything else becomes a filter at its position.
   Uncorrelated binder ranges are evaluated and indexed once per branch. *)

open Dc_relation
open Ast

exception Runtime_error of string

let runtime_error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

module SM = Map.Make (String)

type arg_value =
  | V_scalar of Value.t
  | V_rel of Relation.t

type binding = { b_tuple : Tuple.t; b_schema : Schema.t }

type env = {
  rels : Relation.t SM.t;
  vars : binding SM.t;
  scalars : Value.t SM.t;
  hooks : hooks;
  icache : Index_cache.t;
}

and hooks = {
  selector_def : string -> Defs.selector_def option;
  constructor_def : string -> Defs.constructor_def option;
  on_select : env -> Relation.t -> Defs.selector_def -> arg_value list -> Relation.t;
  on_construct :
    env -> Relation.t -> Defs.constructor_def -> arg_value list -> Relation.t;
}

let no_hooks =
  {
    selector_def = (fun _ -> None);
    constructor_def = (fun _ -> None);
    on_select = (fun _ _ def _ -> runtime_error "no semantics for selector %s" def.Defs.sel_name);
    on_construct =
      (fun _ _ def _ -> runtime_error "no semantics for constructor %s" def.Defs.con_name);
  }

let make_env ?(vars = []) ?(scalars = []) ?(hooks = no_hooks) rels =
  {
    rels = SM.of_seq (List.to_seq rels);
    vars =
      SM.of_seq
        (List.to_seq
           (List.map (fun (v, t, s) -> (v, { b_tuple = t; b_schema = s })) vars));
    scalars = SM.of_seq (List.to_seq scalars);
    hooks;
    icache = Index_cache.create ();
  }

let bind_rel env name rel = { env with rels = SM.add name rel env.rels }

(* Drop all tuple-variable bindings (used when a definition body is
   evaluated in a fresh scope: bodies never reference outer tuple vars). *)
let clear_vars env = { env with vars = SM.empty }

let bind_var env v tuple schema =
  { env with vars = SM.add v { b_tuple = tuple; b_schema = schema } env.vars }

let bind_scalar env name v = { env with scalars = SM.add name v env.scalars }

let lookup_rel env n =
  match SM.find_opt n env.rels with
  | Some r -> r
  | None -> runtime_error "unknown relation %s" n

let selector_def env s =
  match env.hooks.selector_def s with
  | Some d -> d
  | None -> runtime_error "unknown selector %s" s

let constructor_def env c =
  match env.hooks.constructor_def c with
  | Some d -> d
  | None -> runtime_error "unknown constructor %s" c

(* ------------------------------------------------------------------ *)
(* Schema of a range expression, computed without evaluating it. *)

let rec range_schema env ctx = function
  | Rel n -> Relation.schema (lookup_rel env n)
  | Select (r, _, _) -> range_schema env ctx r
  | Construct (_, c, _) -> (constructor_def env c).Defs.con_result
  | Comp [] -> runtime_error "empty comprehension"
  | Comp (b :: _) -> branch_schema env ctx b

and branch_schema env ctx { binders; target; _ } =
  let ctx' =
    List.fold_left
      (fun ctx' (v, r) -> (v, range_schema env ctx' r) :: ctx')
      ctx binders
  in
  match target with
  | [] -> (
    match binders with
    | [ (_, r) ] -> range_schema env ctx r
    | _ -> runtime_error "identity branch must have exactly one binder")
  | ts ->
    let used = Hashtbl.create 8 in
    let attr i t =
      let base =
        match t with
        | Field (_, a) -> a
        | _ -> Fmt.str "c%d" i
      in
      let name =
        if Hashtbl.mem used base then Fmt.str "%s_%d" base i else base
      in
      Hashtbl.replace used name ();
      (name, term_ty env ctx' t)
    in
    Schema.make (List.mapi attr ts)

and term_ty env ctx = function
  | Const v -> Value.type_of v
  | Param p -> (
    match SM.find_opt p env.scalars with
    | Some v -> Value.type_of v
    | None -> runtime_error "unknown scalar parameter %s" p)
  | Field (v, a) -> (
    let schema =
      match List.assoc_opt v ctx with
      | Some s -> s
      | None -> (
        match SM.find_opt v env.vars with
        | Some b -> b.b_schema
        | None -> runtime_error "unbound tuple variable %s" v)
    in
    match Schema.find_attr schema a with
    | Some i -> Schema.attr_ty schema i
    | None -> runtime_error "no attribute %s on %s" a v)
  | Binop (_, a, _) -> term_ty env ctx a

(* ------------------------------------------------------------------ *)
(* Terms and formulas *)

let rec eval_term env = function
  | Const v -> v
  | Param p -> (
    match SM.find_opt p env.scalars with
    | Some v -> v
    | None -> runtime_error "unknown scalar parameter %s" p)
  | Field (v, a) -> (
    match SM.find_opt v env.vars with
    | None -> runtime_error "unbound tuple variable %s" v
    | Some b -> Tuple.get b.b_tuple (Schema.attr_index b.b_schema a))
  | Binop (op, a, b) -> (
    let va = eval_term env a and vb = eval_term env b in
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb)

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval_formula env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> eval_cmp op (eval_term env a) (eval_term env b)
  | Not f -> not (eval_formula env f)
  | And (a, b) -> eval_formula env a && eval_formula env b
  | Or (a, b) -> eval_formula env a || eval_formula env b
  | Some_in (v, r, f) ->
    let rel = eval_range env r in
    let schema = Relation.schema rel in
    Relation.exists (fun t -> eval_formula (bind_var env v t schema) f) rel
  | All_in (v, r, f) ->
    let rel = eval_range env r in
    let schema = Relation.schema rel in
    Relation.for_all (fun t -> eval_formula (bind_var env v t schema) f) rel
  | In_rel (v, r) -> (
    match SM.find_opt v env.vars with
    | None -> runtime_error "unbound tuple variable %s" v
    | Some b -> Relation.mem b.b_tuple (eval_range env r))
  | Member (ts, r) ->
    let t = Tuple.of_list (List.map (eval_term env) ts) in
    Relation.mem t (eval_range env r)

(* ------------------------------------------------------------------ *)
(* Ranges and branches *)

and eval_range env = function
  | Rel n -> lookup_rel env n
  | Select (r, s, args) ->
    let base = eval_range env r in
    let def = selector_def env s in
    env.hooks.on_select env base def (eval_args env args)
  | Construct (r, c, args) ->
    let base = eval_range env r in
    let def = constructor_def env c in
    env.hooks.on_construct env base def (eval_args env args)
  | Comp branches -> eval_comp env branches

and eval_args env args =
  List.map
    (function
      | Arg_scalar t -> V_scalar (eval_term env t)
      | Arg_range r -> V_rel (eval_range env r))
    args

and eval_comp ?schema env branches =
  match branches with
  | [] -> runtime_error "empty comprehension"
  | first :: _ ->
    (* The result schema may be imposed from outside (a constructor's
       declared result type); branches are positionally compatible. *)
    let schema =
      match schema with
      | Some s -> s
      | None -> branch_schema env [] first
    in
    List.fold_left
      (fun acc b ->
        eval_branch env b ~emit:(fun acc t -> Relation.add_unchecked t acc) acc)
      (Relation.empty schema) branches

(* Evaluate one branch, folding [emit] over the produced tuples. *)
and eval_branch : 'a. env -> branch -> emit:('a -> Tuple.t -> 'a) -> 'a -> 'a =
  fun env { binders; target; where } ~emit acc ->
  let conjs = conjuncts where in
  (* Variables already bound in the enclosing env count as position 0. *)
  let outer = SM.fold (fun v _ s -> Vars.S.add v s) env.vars Vars.S.empty in
  (* Assign each conjunct to the earliest binder index after which it is
     closed; conjuncts closed by the outer env alone are checked first. *)
  let binder_vars = List.map fst binders in
  let position_of_conj binder_vars f =
    let fv = Vars.free_vars_formula f in
    let needed = Vars.S.diff fv outer in
    let rec last_index i best = function
      | [] -> best
      | v :: rest ->
        last_index (i + 1) (if Vars.S.mem v needed then i else best) rest
    in
    last_index 0 (-1) binder_vars
  in
  let tagged = List.map (fun f -> (position_of_conj binder_vars f, f)) conjs in
  let pre = List.filter_map (fun (i, f) -> if i < 0 then Some f else None) tagged in
  if not (List.for_all (eval_formula env) pre) then acc
  else begin
    (* Join reorder: when every binder range is closed under the outer env
       (no binder range mentions another binder's variable), the branch is
       a filtered cross product and binder order is semantically free.
       Pre-evaluate the ranges and scan the smallest relation first — the
       larger ones then become index probes, and their (stable) indexes
       stay warm in [env.icache] across fixpoint rounds.  In a semi-naive
       round this turns "scan the base, probe the delta" into "scan the
       delta, probe the base". *)
    let binders, binder_vars, tagged, pre_evaled =
      let closed (_, r) = Vars.S.subset (Vars.free_vars_range r) outer in
      if List.length binders > 1 && List.for_all closed binders then begin
        let evaled =
          List.map (fun (v, r) -> (v, r, eval_range env r)) binders
        in
        let by_card =
          List.stable_sort
            (fun (_, _, a) (_, _, b) ->
              Int.compare (Relation.cardinal a) (Relation.cardinal b))
            evaled
        in
        let binders = List.map (fun (v, r, _) -> (v, r)) by_card in
        let binder_vars = List.map fst binders in
        let tagged = List.map (fun f -> (position_of_conj binder_vars f, f)) conjs in
        (binders, binder_vars, tagged,
         List.map (fun (_, _, rel) -> Some rel) by_card)
      end
      else (binders, binder_vars, tagged, List.map (fun _ -> None) binders)
    in
    (* Per-binder plan: index keys + residual filters. *)
    let bound_before i =
      List.filteri (fun j _ -> j < i) binder_vars
      |> List.fold_left (fun s v -> Vars.S.add v s) outer
    in
    let plan_for i (v, range) =
      let here = List.filter_map (fun (j, f) -> if j = i then Some f else None) tagged in
      let closed_term t = Vars.S.subset (Vars.free_vars_term t) (bound_before i) in
      let keys, filters =
        List.partition_map
          (fun f ->
            match f with
            | Cmp (Eq, Field (v', a), t) when v' = v && closed_term t ->
              Either.Left (a, t)
            | Cmp (Eq, t, Field (v', a)) when v' = v && closed_term t ->
              Either.Left (a, t)
            | _ -> Either.Right f)
          here
      in
      let correlated =
        not (Vars.S.subset (Vars.free_vars_range range) outer)
      in
      (v, range, correlated, keys, filters)
    in
    let plans = List.mapi plan_for binders in
    (* Pre-evaluate and index uncorrelated ranges. *)
    let prepared =
      List.map2
        (fun (v, range, correlated, keys, filters) pre ->
          if correlated then `Correlated (v, range, keys, filters)
          else begin
            let rel =
              match pre with Some r -> r | None -> eval_range env range
            in
            let schema = Relation.schema rel in
            match keys with
            | [] -> `Scan (v, rel, schema, filters)
            | _ ->
              let positions =
                List.map (fun (a, _) -> Schema.attr_index schema a) keys
              in
              let idx = Index_cache.get env.icache positions rel in
              let key_terms = List.map snd keys in
              `Indexed (v, schema, idx, key_terms, filters)
          end)
        plans pre_evaled
    in
    let rec go env acc = function
      | [] ->
        let t =
          match target with
          | [] -> (
            match binders with
            | [ (v, _) ] -> (SM.find v env.vars).b_tuple
            | _ -> runtime_error "identity branch must have exactly one binder")
          | ts -> Tuple.of_list (List.map (eval_term env) ts)
        in
        emit acc t
      | step :: rest -> (
        let try_tuple schema filters v acc t =
          let env' = bind_var env v t schema in
          if List.for_all (eval_formula env') filters then go env' acc rest
          else acc
        in
        match step with
        | `Scan (v, rel, schema, filters) ->
          Relation.fold (fun t acc -> try_tuple schema filters v acc t) rel acc
        | `Indexed (v, schema, idx, key_terms, filters) ->
          let key = List.map (eval_term env) key_terms in
          List.fold_left (try_tuple schema filters v) acc
            (Index.lookup_values idx key)
        | `Correlated (v, range, keys, filters) ->
          (* Key conjuncts degrade to filters on a correlated range. *)
          let rel = eval_range env range in
          let schema = Relation.schema rel in
          let filters =
            List.map (fun (a, t) -> Cmp (Eq, Field (v, a), t)) keys @ filters
          in
          Relation.fold (fun t acc -> try_tuple schema filters v acc t) rel acc)
    in
    go env acc prepared
  end

(* Convenience: evaluate a query range to a relation. *)
let query env range = eval_range env range
