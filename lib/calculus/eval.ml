(* Set-oriented evaluation of calculus expressions.

   This is the paper's "set-construction framework": branches are executed
   as pipelined scans with hash-index lookups for equi-join conjuncts, not
   tuple-at-a-time resolution.  The evaluator is parameterized by hooks for
   selector and constructor application so that [Dc_core] can install the
   fixpoint semantics without a dependency cycle.

   Branch evaluation is a *lowering* onto the shared physical operator IR
   ({!Dc_exec.Ir}): binders become scans / keyed probes, WHERE conjuncts
   become index keys or filter operators at the earliest position where
   they are closed, and the resulting pipeline runs on the one executor
   all engines share.  The row threaded through the pipeline is the
   environment itself, so terms and formulas evaluate unchanged.  Join
   order is delegated to the IR-level rewrite ({!Dc_exec.Join_order}):
   keyed probes first, then smallest pre-evaluated range — which in a
   semi-naive fixpoint round turns "scan the base, probe the delta" into
   "scan the delta, probe the base", with the probed indexes staying warm
   in [env.icache] across rounds. *)

open Dc_relation
open Ast
module Guard = Dc_guard.Guard

exception Runtime_error of string

let runtime_error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

module SM = Map.Make (String)

type arg_value =
  | V_scalar of Value.t
  | V_rel of Relation.t

type binding = { b_tuple : Tuple.t; b_schema : Schema.t }

type env = {
  rels : Relation.t SM.t;
  vars : binding SM.t;
  scalars : Value.t SM.t;
  hooks : hooks;
  icache : Index_cache.t;
  trace : Dc_exec.Ir.trace option;
  guard : Guard.t;
}

and hooks = {
  selector_def : string -> Defs.selector_def option;
  constructor_def : string -> Defs.constructor_def option;
  on_select : env -> Relation.t -> Defs.selector_def -> arg_value list -> Relation.t;
  on_construct :
    env -> Relation.t -> Defs.constructor_def -> arg_value list -> Relation.t;
}

let no_hooks =
  {
    selector_def = (fun _ -> None);
    constructor_def = (fun _ -> None);
    on_select = (fun _ _ def _ -> runtime_error "no semantics for selector %s" def.Defs.sel_name);
    on_construct =
      (fun _ _ def _ -> runtime_error "no semantics for constructor %s" def.Defs.con_name);
  }

let make_env ?(vars = []) ?(scalars = []) ?(hooks = no_hooks) ?trace
    ?(guard = Guard.none) ?icache rels =
  {
    rels = SM.of_seq (List.to_seq rels);
    vars =
      SM.of_seq
        (List.to_seq
           (List.map (fun (v, t, s) -> (v, { b_tuple = t; b_schema = s })) vars));
    scalars = SM.of_seq (List.to_seq scalars);
    hooks;
    icache =
      (match icache with Some c -> c | None -> Index_cache.create ());
    trace;
    guard;
  }

let with_trace env trace = { env with trace = Some trace }

let with_guard env guard = { env with guard }

let bind_rel env name rel = { env with rels = SM.add name rel env.rels }

(* Drop all tuple-variable bindings (used when a definition body is
   evaluated in a fresh scope: bodies never reference outer tuple vars). *)
let clear_vars env = { env with vars = SM.empty }

let bind_var env v tuple schema =
  { env with vars = SM.add v { b_tuple = tuple; b_schema = schema } env.vars }

let bind_scalar env name v = { env with scalars = SM.add name v env.scalars }

let lookup_rel env n =
  match SM.find_opt n env.rels with
  | Some r -> r
  | None -> runtime_error "unknown relation %s" n

let selector_def env s =
  match env.hooks.selector_def s with
  | Some d -> d
  | None -> runtime_error "unknown selector %s" s

let constructor_def env c =
  match env.hooks.constructor_def c with
  | Some d -> d
  | None -> runtime_error "unknown constructor %s" c

(* ------------------------------------------------------------------ *)
(* Schema of a range expression, computed without evaluating it. *)

let rec range_schema env ctx = function
  | Rel n -> Relation.schema (lookup_rel env n)
  | Select (r, _, _) -> range_schema env ctx r
  | Construct (_, c, _) -> (constructor_def env c).Defs.con_result
  | Comp [] -> runtime_error "empty comprehension"
  | Comp (b :: _) -> branch_schema env ctx b

and branch_schema env ctx { binders; target; _ } =
  let ctx' =
    List.fold_left
      (fun ctx' (v, r) -> (v, range_schema env ctx' r) :: ctx')
      ctx binders
  in
  match target with
  | [] -> (
    match binders with
    | [ (_, r) ] -> range_schema env ctx r
    | _ -> runtime_error "identity branch must have exactly one binder")
  | ts ->
    let used = Hashtbl.create 8 in
    let attr i t =
      let base =
        match t with
        | Field (_, a) -> a
        | _ -> Fmt.str "c%d" i
      in
      let name =
        if Hashtbl.mem used base then Fmt.str "%s_%d" base i else base
      in
      Hashtbl.replace used name ();
      (name, term_ty env ctx' t)
    in
    Schema.make (List.mapi attr ts)

and term_ty env ctx = function
  | Const v -> Value.type_of v
  | Param p -> (
    match SM.find_opt p env.scalars with
    | Some v -> Value.type_of v
    | None -> runtime_error "unknown scalar parameter %s" p)
  | Field (v, a) -> (
    let schema =
      match List.assoc_opt v ctx with
      | Some s -> s
      | None -> (
        match SM.find_opt v env.vars with
        | Some b -> b.b_schema
        | None -> runtime_error "unbound tuple variable %s" v)
    in
    match Schema.find_attr schema a with
    | Some i -> Schema.attr_ty schema i
    | None -> runtime_error "no attribute %s on %s" a v)
  | Binop (_, a, _) -> term_ty env ctx a

(* ------------------------------------------------------------------ *)
(* Terms and formulas *)

let rec eval_term env = function
  | Const v -> v
  | Param p -> (
    match SM.find_opt p env.scalars with
    | Some v -> v
    | None -> runtime_error "unknown scalar parameter %s" p)
  | Field (v, a) -> (
    match SM.find_opt v env.vars with
    | None -> runtime_error "unbound tuple variable %s" v
    | Some b -> Tuple.get b.b_tuple (Schema.attr_index b.b_schema a))
  | Binop (op, a, b) -> (
    let va = eval_term env a and vb = eval_term env b in
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb)

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval_formula env = function
  | True -> true
  | False -> false
  | Cmp (op, a, b) -> eval_cmp op (eval_term env a) (eval_term env b)
  | Not f -> not (eval_formula env f)
  | And (a, b) -> eval_formula env a && eval_formula env b
  | Or (a, b) -> eval_formula env a || eval_formula env b
  | Some_in (v, r, f) ->
    let rel = eval_range env r in
    let schema = Relation.schema rel in
    Relation.exists (fun t -> eval_formula (bind_var env v t schema) f) rel
  | All_in (v, r, f) ->
    let rel = eval_range env r in
    let schema = Relation.schema rel in
    Relation.for_all (fun t -> eval_formula (bind_var env v t schema) f) rel
  | In_rel (v, r) -> (
    match SM.find_opt v env.vars with
    | None -> runtime_error "unbound tuple variable %s" v
    | Some b -> Relation.mem b.b_tuple (eval_range env r))
  | Member (ts, r) ->
    let t = Tuple.of_list (List.map (eval_term env) ts) in
    Relation.mem t (eval_range env r)

(* ------------------------------------------------------------------ *)
(* Ranges and branches *)

and eval_range env = function
  | Rel n -> lookup_rel env n
  | Select (r, s, args) ->
    let base = eval_range env r in
    let def = selector_def env s in
    env.hooks.on_select env base def (eval_args env args)
  | Construct (r, c, args) ->
    let base = eval_range env r in
    let def = constructor_def env c in
    env.hooks.on_construct env base def (eval_args env args)
  | Comp branches -> eval_comp env branches

and eval_args env args =
  List.map
    (function
      | Arg_scalar t -> V_scalar (eval_term env t)
      | Arg_range r -> V_rel (eval_range env r))
    args

and eval_comp ?schema env branches =
  match branches with
  | [] -> runtime_error "empty comprehension"
  | first :: _ ->
    (* The result schema may be imposed from outside (a constructor's
       declared result type); branches are positionally compatible. *)
    let schema =
      match schema with
      | Some s -> s
      | None -> branch_schema env [] first
    in
    List.fold_left
      (fun acc b ->
        eval_branch env b ~emit:(fun acc t -> Relation.add_unchecked t acc) acc)
      (Relation.empty schema) branches

(* Lower one branch onto the operator IR (no execution): binders become
   scan/probe operators in the order the shared {!Dc_exec.Join_order}
   rewrite picks, WHERE conjuncts become index keys or filter operators at
   the earliest closed position.  Uncorrelated ranges are evaluated once,
   here, and wrapped as fixed extents over [env.icache]-backed indexes;
   correlated ranges become correlated scans re-evaluated per outer row. *)
and lower_branch env { binders; target; where } =
  let module Ir = Dc_exec.Ir in
  let conjs = conjuncts where in
  (* Variables already bound in the enclosing env count as position 0. *)
  let outer = SM.fold (fun v _ s -> Vars.S.add v s) env.vars Vars.S.empty in
  let position_of_conj binder_vars f =
    let fv = Vars.free_vars_formula f in
    let needed = Vars.S.diff fv outer in
    let rec last_index i best = function
      | [] -> best
      | v :: rest ->
        last_index (i + 1) (if Vars.S.mem v needed then i else best) rest
    in
    last_index 0 (-1) binder_vars
  in
  let binder_vars = List.map fst binders in
  (* Join reorder (IR rewrite rule): keyed probes first, then the smallest
     pre-evaluated range; ranges mentioning earlier binders impose
     dependencies.  Pre-evaluation of closed ranges happens once here (it
     was due anyway) and doubles as the cardinality estimate. *)
  let binder_arr = Array.of_list binders in
  let evaled =
    Array.map
      (fun (_, r) ->
        if Vars.S.subset (Vars.free_vars_range r) outer then
          Some (eval_range env r)
        else None)
      binder_arr
  in
  let order =
    if Array.length binder_arr <= 1 then
      List.init (Array.length binder_arr) Fun.id
    else begin
      let var_pos = List.mapi (fun i v -> (v, i)) binder_vars in
      let key_conjs =
        (* (binder var, term that must be closed) per equality conjunct *)
        List.filter_map
          (function
            | Cmp (Eq, Field (v, _), t) when List.mem_assoc v var_pos ->
              Some (v, t)
            | Cmp (Eq, t, Field (v, _)) when List.mem_assoc v var_pos ->
              Some (v, t)
            | _ -> None)
          conjs
      in
      let candidates =
        Array.to_list
          (Array.mapi
             (fun i (v, r) ->
               let deps =
                 Vars.S.fold
                   (fun fv deps ->
                     match List.assoc_opt fv var_pos with
                     | Some j when j <> i -> j :: deps
                     | _ -> deps)
                   (Vars.free_vars_range r) []
               in
               let card =
                 Option.map Relation.cardinal evaled.(i)
               in
               let keys_given placed =
                 let bound =
                   List.fold_left
                     (fun s j -> Vars.S.add (fst binder_arr.(j)) s)
                     outer placed
                 in
                 List.length
                   (List.filter
                      (fun (v', t) ->
                        v' = v
                        && Vars.S.subset (Vars.free_vars_term t) bound)
                      key_conjs)
               in
               { Dc_exec.Join_order.deps; card; keys_given })
             binder_arr)
      in
      Dc_exec.Join_order.order candidates
    end
  in
  let binders = List.map (fun i -> binder_arr.(i)) order in
  let evaled = List.map (fun i -> evaled.(i)) order in
  let binder_vars = List.map fst binders in
  let tagged = List.map (fun f -> (position_of_conj binder_vars f, f)) conjs in
  let bound_before i =
    List.filteri (fun j _ -> j < i) binder_vars
    |> List.fold_left (fun s v -> Vars.S.add v s) outer
  in
  (* Build the pipeline bottom-up; the row is the environment itself. *)
  let schemas_so_far = ref [] in
  let add_filters filters node =
    List.fold_left
      (fun node f ->
        Ir.filter
          ~label:(lazy (Fmt.str "%a" Ast.pp_formula f))
          ~pred:(fun env -> eval_formula env f)
          node)
      node filters
  in
  let node =
    List.fold_left
      (fun (i, node) ((v, range), pre_rel) ->
        let here =
          List.filter_map (fun (j, f) -> if j = i then Some f else None) tagged
        in
        let closed_term t =
          Vars.S.subset (Vars.free_vars_term t) (bound_before i)
        in
        let keys, filters =
          List.partition_map
            (fun f ->
              match f with
              | Cmp (Eq, Field (v', a), t) when v' = v && closed_term t ->
                Either.Left (a, t)
              | Cmp (Eq, t, Field (v', a)) when v' = v && closed_term t ->
                Either.Left (a, t)
              | _ -> Either.Right f)
            here
        in
        let correlated =
          not (Vars.S.subset (Vars.free_vars_range range) outer)
        in
        let node =
          if correlated then begin
            (* Key conjuncts degrade to filters on a correlated range. *)
            let schema = range_schema env !schemas_so_far range in
            schemas_so_far := (v, schema) :: !schemas_so_far;
            let filters =
              List.map (fun (a, t) -> Cmp (Eq, Field (v, a), t)) keys @ filters
            in
            let gen env =
              Dc_exec.Extent.of_relation ~label:v ~cache:env.icache
                (eval_range env range)
            in
            let bind env t = Some (bind_var env v t schema) in
            add_filters filters
              (Ir.correlated_scan
                 ~label:(lazy (v ^ " IN ..."))
                 ~gen ~bind node)
          end
          else begin
            let rel =
              match pre_rel with
              | Some r -> r
              | None -> eval_range env range
            in
            let schema = Relation.schema rel in
            schemas_so_far := (v, schema) :: !schemas_so_far;
            let src_label =
              match range with
              | Rel n -> n
              | _ -> "<computed>"
            in
            let ext =
              Dc_exec.Extent.of_relation ~label:src_label ~cache:env.icache
                rel
            in
            let bind env t = Some (bind_var env v t schema) in
            let node =
              match keys with
              | [] ->
                Ir.scan
                  ~label:(lazy (v ^ " IN " ^ src_label))
                  ~src:(Ir.Fixed ext) ~bind node
              | _ ->
                let positions =
                  List.map (fun (a, _) -> Schema.attr_index schema a) keys
                in
                let key_terms = List.map snd keys in
                let key env = List.map (eval_term env) key_terms in
                Ir.lookup
                  ~label:
                    (lazy
                      (Fmt.str "%s IN %s on (%s)" v src_label
                         (String.concat ", " (List.map fst keys))))
                  ~src:(Ir.Fixed ext) ~positions ~key ~bind node
            in
            add_filters filters node
          end
        in
        (i + 1, node))
      (0, Ir.seed ())
      (List.combine binders evaled)
    |> snd
  in
  let tuple =
    match target with
    | [] -> (
      match binders with
      | [ (v, _) ] -> fun env -> (SM.find v env.vars).b_tuple
      | _ -> runtime_error "identity branch must have exactly one binder")
    | ts -> fun env -> Tuple.of_list (List.map (eval_term env) ts)
  in
  let label =
    lazy
      (match target with
      | [] -> Fmt.str "[%s]" (String.concat ", " binder_vars)
      | ts ->
        Fmt.str "<%s>"
          (String.concat ", "
             (List.map (fun t -> Fmt.str "%a" Ast.pp_term t) ts)))
  in
  Ir.project ~label ~init:(fun () -> env) ~tuple node

(* Evaluate one branch, folding [emit] over the produced tuples.
   Conjuncts closed by the outer env alone gate the whole branch before
   any range is evaluated or lowered. *)
and eval_branch : 'a. env -> branch -> emit:('a -> Tuple.t -> 'a) -> 'a -> 'a =
  fun env branch ~emit acc ->
  let module Ir = Dc_exec.Ir in
  let outer = SM.fold (fun v _ s -> Vars.S.add v s) env.vars Vars.S.empty in
  let binder_vars = List.map fst branch.binders in
  let pre =
    (* conjuncts needing no binder variable (same rule as the lowering's
       position assignment, which puts them at position -1) *)
    List.filter
      (fun f ->
        let needed = Vars.S.diff (Vars.free_vars_formula f) outer in
        not (List.exists (fun v -> Vars.S.mem v needed) binder_vars))
      (conjuncts branch.where)
  in
  if not (List.for_all (eval_formula env) pre) then acc
  else begin
    if !Guard.Failpoint.armed then
      Guard.Failpoint.hit ~guard:env.guard "eval.branch";
    let pipeline = lower_branch env branch in
    (match env.trace with
    | Some tr ->
      Ir.Trace.record tr ~label:(Lazy.force pipeline.Ir.tlabel) pipeline
    | None -> ());
    let acc = ref acc in
    Ir.run ~guard:env.guard Ir.empty_ctx pipeline (fun t -> acc := emit !acc t);
    !acc
  end

(* Convenience: evaluate a query range to a relation. *)
let query env range = eval_range env range
