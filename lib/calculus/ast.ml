(* Abstract syntax of the DBPL tuple relational calculus (paper §2–3).

   The calculus is the common core shared by queries, selector bodies and
   constructor bodies.  A {e comprehension} is a union of {e branches}; each
   branch binds tuple variables over range expressions, filters with a
   first-order formula, and projects through a target list:

     <f.front, b.back> OF EACH f IN Rel, EACH b IN Rel{ahead}: f.back = b.head

   Range expressions name base relations and may apply selectors
   ([Rel[s(args)]]) and constructors ([Rel{c(args)}]) — the two abstraction
   mechanisms of the paper — or nest a comprehension (range nesting,
   [JaKo 83]). *)

open Dc_relation

type var = string

type cmpop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type binop =
  | Add
  | Sub
  | Mul

type term =
  | Const of Value.t
  | Field of var * string (* r.front *)
  | Param of string (* scalar parameter of a selector/constructor *)
  | Binop of binop * term * term

type formula =
  | True
  | False
  | Cmp of cmpop * term * term
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Some_in of var * range * formula (* SOME r IN range (p) *)
  | All_in of var * range * formula (* ALL r IN range (p)  *)
  | In_rel of var * range (* r IN range              *)
  | Member of term list * range (* <t1, ..., tk> IN range *)

and range =
  | Rel of string (* named relation (global, formal, or parameter) *)
  | Select of range * string * arg list (* Rel[s(args)]  *)
  | Construct of range * string * arg list (* Rel{c(args)}  *)
  | Comp of branch list (* nested comprehension (union of branches) *)

and arg =
  | Arg_scalar of term
  | Arg_range of range

and branch = {
  binders : (var * range) list; (* EACH v IN range, ... *)
  target : term list; (* [] = identity projection of the sole binder *)
  where : formula;
}

(* ------------------------------------------------------------------ *)
(* Smart constructors *)

let conj a b =
  match a, b with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let disj a b =
  match a, b with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let conj_list = List.fold_left conj True

let field v a = Field (v, a)

let int i = Const (Value.Int i)
let str s = Const (Value.str s)

let eq a b = Cmp (Eq, a, b)

let branch ?(where = True) ?(target = []) binders = { binders; target; where }

(* A branch that copies a range verbatim: EACH r IN range: TRUE *)
let identity_branch ?(v = "r") range = branch [ (v, range) ]

(* Negate a comparison operator (used when pushing NOT inward). *)
let negate_cmpop = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Split a formula into its top-level conjuncts. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | True -> []
  | f -> [ f ]

(* ------------------------------------------------------------------ *)
(* Pretty-printing in the paper's concrete syntax *)

let pp_cmpop ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "="
    | Ne -> "#"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*")

let rec pp_term ppf = function
  | Const v -> Value.pp ppf v
  | Field (v, a) -> Fmt.pf ppf "%s.%s" v a
  | Param p -> Fmt.string ppf p
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_term a pp_binop op pp_term b

let rec pp_formula ppf = function
  | True -> Fmt.string ppf "TRUE"
  | False -> Fmt.string ppf "FALSE"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %a %a" pp_term a pp_cmpop op pp_term b
  | Not f -> Fmt.pf ppf "NOT (%a)" pp_formula f
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_formula a pp_formula b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_formula a pp_formula b
  | Some_in (v, r, f) ->
    Fmt.pf ppf "SOME %s IN %a (%a)" v pp_range r pp_formula f
  | All_in (v, r, f) ->
    Fmt.pf ppf "ALL %s IN %a (%a)" v pp_range r pp_formula f
  | In_rel (v, r) -> Fmt.pf ppf "%s IN %a" v pp_range r
  | Member (ts, r) ->
    Fmt.pf ppf "<%a> IN %a" Fmt.(list ~sep:(any ", ") pp_term) ts pp_range r

and pp_range ppf = function
  | Rel name -> Fmt.string ppf name
  | Select (r, s, args) -> Fmt.pf ppf "%a[%s%a]" pp_range r s pp_args args
  | Construct (r, c, args) -> Fmt.pf ppf "%a{%s%a}" pp_range r c pp_args args
  | Comp branches ->
    Fmt.pf ppf "{@[<hov>%a@]}" Fmt.(list ~sep:(any ",@ ") pp_branch) branches

and pp_args ppf = function
  | [] -> ()
  | args -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_arg) args

and pp_arg ppf = function
  | Arg_scalar t -> pp_term ppf t
  | Arg_range r -> pp_range ppf r

and pp_branch ppf { binders; target; where } =
  let pp_binder ppf (v, r) = Fmt.pf ppf "EACH %s IN %a" v pp_range r in
  (match target with
  | [] -> ()
  | ts -> Fmt.pf ppf "<%a> OF " Fmt.(list ~sep:(any ", ") pp_term) ts);
  Fmt.pf ppf "%a: %a"
    Fmt.(list ~sep:(any ", ") pp_binder)
    binders pp_formula where

let term_to_string t = Fmt.str "%a" pp_term t
let formula_to_string f = Fmt.str "%a" pp_formula f
let range_to_string r = Fmt.str "%a" pp_range r
