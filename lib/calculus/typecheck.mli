(** Static type checking of calculus expressions against relation schemas —
    the DBPL compiler's type-checking level (paper §4).

    The checker infers a schema for every range expression (nested
    comprehensions included; selector applications are type-preserving,
    constructor applications take their declared result type) and validates
    terms, comparisons, quantifiers, memberships, and argument lists. *)

open Dc_relation

exception Error of string

(** Checking environment: name resolution for relations, selectors,
    constructors, and scalar parameters in scope. *)
type env = {
  schema_of_rel : string -> Schema.t option;
  selector_of : string -> Defs.selector_def option;
  constructor_of : string -> Defs.constructor_def option;
  scalar_params : (string * Value.ty) list;
}

val env :
  ?selectors:Defs.selector_def list ->
  ?constructors:Defs.constructor_def list ->
  ?scalar_params:(string * Value.ty) list ->
  (string * Schema.t) list ->
  env
(** Build an environment from association lists. *)

val with_rel : env -> string -> Schema.t -> env
(** Bind one more relation name (e.g. a definition's formal). *)

val with_scalar_params : env -> (string * Value.ty) list -> env

type ctx = (Ast.var * Schema.t) list
(** Tuple-variable context: variable → schema of its range. *)

val infer_term : env -> ctx -> Ast.term -> Value.ty
(** @raise Error on unbound variables, unknown attributes/parameters, or
    operator/operand mismatches. *)

val check_formula : env -> ctx -> Ast.formula -> unit

val infer_range : env -> ctx -> Ast.range -> Schema.t
(** Schema of a range expression.
    @raise Error on unknown names or arity/type mismatches. *)

val infer_branch : env -> ctx -> Ast.branch -> Schema.t
(** Output schema of one branch (attribute names from [Field] targets,
    positional names otherwise). *)

val infer_branches : env -> ctx -> Ast.branch list -> Schema.t
(** Schema of a comprehension; all branches must be positionally
    compatible with the first. *)

val check_args :
  env -> ctx -> string -> Defs.param list -> Ast.arg list -> unit
(** Arguments against formal parameters (arity, kind, type). *)

val aggregated_schema :
  who:string -> Dc_agg.Agg.spec -> Schema.t -> Schema.t
(** Result schema of an aggregated constructor given its branches' raw
    schema: group attributes (in spec order) followed by the accumulated
    value ({!Dc_agg.Agg.result_ty}); remaining raw attributes are
    discriminators and vanish.
    @raise Error on out-of-range positions or an inadmissible value type *)

val check_selector_def : env -> Defs.selector_def -> unit

val check_constructor_def : env -> Defs.constructor_def -> unit
(** For an aggregated constructor ([con_agg]), the branches' inferred raw
    schema is grouped/folded through {!aggregated_schema} before the
    [con_result] comparison. *)

val check_query : env -> Ast.range -> unit

val result_of : (unit -> 'a) -> ('a, string) result
(** Run a checking thunk, capturing {!Error} as [Error msg]. *)
