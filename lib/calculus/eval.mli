(** Set-oriented evaluation of calculus expressions — the paper's
    "set-construction framework".

    Branches execute as pipelined scans with hash-index lookups for
    equi-join conjuncts (each WHERE conjunct is attached to the first
    binder position at which its variables are bound; conjuncts of shape
    [v.a = closed-term] become index keys).  Selector and constructor
    applications are delegated to {!hooks}, which [Dc_core] instantiates
    with the filtering and fixpoint semantics — keeping this module free of
    a dependency on the engine. *)

open Dc_relation

exception Runtime_error of string

val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

module SM : Map.S with type key = string

(** Evaluated actual arguments. *)
type arg_value =
  | V_scalar of Value.t
  | V_rel of Relation.t

type binding = {
  b_tuple : Tuple.t;
  b_schema : Schema.t;
}

(** Evaluation environment. *)
type env = {
  rels : Relation.t SM.t;  (** named relations in scope *)
  vars : binding SM.t;  (** bound tuple variables *)
  scalars : Value.t SM.t;  (** scalar parameter values *)
  hooks : hooks;
  icache : Index_cache.t;
      (** per-evaluation index cache, keyed on relation identity +
          positions; fixpoint drivers advance it with per-round deltas *)
  trace : Dc_exec.Ir.trace option;
      (** when set, every lowered physical pipeline is recorded here with
          its post-run operator counters (EXPLAIN) *)
  guard : Dc_guard.Guard.t;
      (** resource governor ticked by every pipeline this environment
          runs; defaults to [Guard.none] (no limits) *)
}

and hooks = {
  selector_def : string -> Defs.selector_def option;
  constructor_def : string -> Defs.constructor_def option;
  on_select :
    env -> Relation.t -> Defs.selector_def -> arg_value list -> Relation.t;
  on_construct :
    env -> Relation.t -> Defs.constructor_def -> arg_value list -> Relation.t;
}

val no_hooks : hooks
(** Hooks that resolve no definitions (applications raise). *)

val make_env :
  ?vars:(Ast.var * Tuple.t * Schema.t) list ->
  ?scalars:(string * Value.t) list ->
  ?hooks:hooks ->
  ?trace:Dc_exec.Ir.trace ->
  ?guard:Dc_guard.Guard.t ->
  ?icache:Index_cache.t ->
  (string * Relation.t) list ->
  env
(** [icache] installs an existing index cache instead of a fresh one —
    typically a private cache created with a frozen [?shared] fallback so
    the evaluation borrows a published snapshot's prewarmed indexes. *)

val with_trace : env -> Dc_exec.Ir.trace -> env
(** Enable pipeline tracing on an existing environment. *)

val with_guard : env -> Dc_guard.Guard.t -> env
(** Install a resource governor on an existing environment. *)

val bind_rel : env -> string -> Relation.t -> env
val bind_var : env -> Ast.var -> Tuple.t -> Schema.t -> env
val bind_scalar : env -> string -> Value.t -> env

val clear_vars : env -> env
(** Drop all tuple-variable bindings (definition bodies evaluate in a
    fresh variable scope). *)

val lookup_rel : env -> string -> Relation.t
(** @raise Runtime_error if unknown. *)

val range_schema : env -> (Ast.var * Schema.t) list -> Ast.range -> Schema.t
(** Schema of a range, computed without evaluating it (constructor
    applications contribute their declared result type). *)

val eval_term : env -> Ast.term -> Value.t
val eval_cmp : Ast.cmpop -> Value.t -> Value.t -> bool
val eval_formula : env -> Ast.formula -> bool
val eval_range : env -> Ast.range -> Relation.t
val eval_args : env -> Ast.arg list -> arg_value list

val eval_comp : ?schema:Schema.t -> env -> Ast.branch list -> Relation.t
(** Evaluate a comprehension. [schema] imposes the result schema (used for
    constructor bodies, whose result type is declared); otherwise it is
    inferred from the first branch. *)

val eval_branch :
  env -> Ast.branch -> emit:('a -> Tuple.t -> 'a) -> 'a -> 'a
(** Fold [emit] over the tuples one branch produces (after join
    scheduling); used directly by the semi-naive fixpoint engine. *)

val query : env -> Ast.range -> Relation.t
(** Alias of {!eval_range}. *)
