(* Static type checking of calculus expressions against relation schemas.

   Plays the role of the DBPL compiler's type-checking level (paper §4):
   every query, selector body and constructor body is checked before
   evaluation, so the evaluator can assume well-formed input.  The checker
   infers a schema for every range expression, including nested
   comprehensions, selector applications (type-preserving) and constructor
   applications (result type taken from the definition). *)

open Dc_relation
open Ast

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

type env = {
  schema_of_rel : string -> Schema.t option;
  selector_of : string -> Defs.selector_def option;
  constructor_of : string -> Defs.constructor_def option;
  scalar_params : (string * Value.ty) list;
}

let env ?(selectors = []) ?(constructors = []) ?(scalar_params = []) rels =
  {
    schema_of_rel = (fun n -> List.assoc_opt n rels);
    selector_of =
      (fun n ->
        List.find_opt (fun (s : Defs.selector_def) -> s.sel_name = n) selectors);
    constructor_of =
      (fun n ->
        List.find_opt
          (fun (c : Defs.constructor_def) -> c.con_name = n)
          constructors);
    scalar_params;
  }

let with_rel env name schema =
  {
    env with
    schema_of_rel =
      (fun n -> if String.equal n name then Some schema else env.schema_of_rel n);
  }

let with_scalar_params env params =
  { env with scalar_params = params @ env.scalar_params }

(* Tuple-variable context: variable -> schema of its range. *)
type ctx = (var * Schema.t) list

let lookup_var ctx v =
  match List.assoc_opt v ctx with
  | Some s -> s
  | None -> error "unbound tuple variable %s" v

let comparable op ty =
  match op, (ty : Value.ty) with
  | (Eq | Ne), _ -> true
  | (Lt | Le | Gt | Ge), (Value.TInt | Value.TFloat | Value.TStr) -> true
  | (Lt | Le | Gt | Ge), Value.TBool -> false

let rec infer_term env ctx = function
  | Const v -> Value.type_of v
  | Field (v, a) ->
    let schema = lookup_var ctx v in
    (match Schema.find_attr schema a with
    | Some i -> Schema.attr_ty schema i
    | None ->
      error "tuple variable %s has no attribute %s (schema %a)" v a Schema.pp
        schema)
  | Param p -> (
    match List.assoc_opt p env.scalar_params with
    | Some ty -> ty
    | None -> error "unknown scalar parameter %s" p)
  | Binop (op, a, b) -> (
    let ta = infer_term env ctx a and tb = infer_term env ctx b in
    if ta <> tb then
      error "operands of %a have different types %s and %s" pp_binop op
        (Value.type_name ta) (Value.type_name tb);
    match op, ta with
    | Add, (Value.TInt | Value.TFloat | Value.TStr) -> ta
    | (Sub | Mul), (Value.TInt | Value.TFloat) -> ta
    | _, _ ->
      error "operator %a not defined at type %s" pp_binop op
        (Value.type_name ta))

let rec check_formula env ctx = function
  | True | False -> ()
  | Cmp (op, a, b) ->
    let ta = infer_term env ctx a and tb = infer_term env ctx b in
    if ta <> tb then
      error "comparison %a between %s and %s" pp_cmpop op (Value.type_name ta)
        (Value.type_name tb);
    if not (comparable op ta) then
      error "ordering comparison on %s" (Value.type_name ta)
  | Not f -> check_formula env ctx f
  | And (a, b) | Or (a, b) ->
    check_formula env ctx a;
    check_formula env ctx b
  | Some_in (v, r, f) | All_in (v, r, f) ->
    let schema = infer_range env ctx r in
    check_formula env ((v, schema) :: ctx) f
  | In_rel (v, r) ->
    let sv = lookup_var ctx v in
    let sr = infer_range env ctx r in
    if not (Schema.compatible sv sr) then
      error "%s IN %a: incompatible element type" v pp_range r
  | Member (ts, r) ->
    let schema = infer_range env ctx r in
    if List.length ts <> Schema.arity schema then
      error "<...> IN %a: expected %d components, got %d" pp_range r
        (Schema.arity schema) (List.length ts);
    List.iteri
      (fun i t ->
        let ty = infer_term env ctx t in
        if ty <> Schema.attr_ty schema i then
          error "component %d of membership test has type %s, expected %s" i
            (Value.type_name ty)
            (Value.type_name (Schema.attr_ty schema i)))
      ts

and infer_range env ctx = function
  | Rel n -> (
    match env.schema_of_rel n with
    | Some s -> s
    | None -> error "unknown relation %s" n)
  | Select (r, s, args) -> (
    let base = infer_range env ctx r in
    match env.selector_of s with
    | None -> error "unknown selector %s" s
    | Some def ->
      if not (Schema.compatible base def.sel_formal_schema) then
        error "selector %s applied to %a whose type does not match the formal"
          s pp_range r;
      check_args env ctx s def.sel_params args;
      base (* a selector names a sub-relation: type-preserving *))
  | Construct (r, c, args) -> (
    let base = infer_range env ctx r in
    match env.constructor_of c with
    | None -> error "unknown constructor %s" c
    | Some def ->
      if not (Schema.compatible base def.con_formal_schema) then
        error
          "constructor %s applied to %a whose type does not match the formal"
          c pp_range r;
      check_args env ctx c def.con_params args;
      def.con_result)
  | Comp branches -> infer_branches env ctx branches

and check_args env ctx who params args =
  if List.length params <> List.length args then
    error "%s expects %d argument(s), got %d" who (List.length params)
      (List.length args);
  List.iter2
    (fun param arg ->
      match param, arg with
      | Defs.Scalar_param (n, ty), Arg_scalar t ->
        let ta = infer_term env ctx t in
        if ta <> ty then
          error "%s: parameter %s expects %s, got %s" who n
            (Value.type_name ty) (Value.type_name ta)
      | Defs.Rel_param (n, schema), Arg_range r ->
        let sr = infer_range env ctx r in
        if not (Schema.compatible schema sr) then
          error "%s: relation parameter %s has incompatible type" who n
      | Defs.Scalar_param (n, _), Arg_range _ ->
        error "%s: parameter %s expects a scalar, got a relation" who n
      | Defs.Rel_param (n, _), Arg_scalar _ ->
        error "%s: parameter %s expects a relation, got a scalar" who n)
    params args

(* The schema of a branch's output.  Attribute names come from the target
   terms ([Field] terms keep their attribute name, others get positional
   names); every branch of a comprehension must be positionally
   type-compatible with the first. *)
and infer_branch env ctx ({ binders; target; where } as b) =
  if binders = [] then error "branch with no EACH binder: %a" pp_branch b;
  let ctx' =
    List.fold_left
      (fun ctx' (v, r) ->
        if List.mem_assoc v ctx' then error "duplicate binder %s" v;
        (v, infer_range env ctx' r) :: ctx')
      ctx binders
  in
  check_formula env ctx' where;
  match target with
  | [] -> (
    match binders with
    | [ (_, r) ] -> infer_range env ctx r
    | _ -> error "identity branch must have exactly one binder: %a" pp_branch b)
  | ts ->
    let used = Hashtbl.create 8 in
    let attr i t =
      let base =
        match t with
        | Field (_, a) -> a
        | _ -> Fmt.str "c%d" i
      in
      let name =
        if Hashtbl.mem used base then Fmt.str "%s_%d" base i else base
      in
      Hashtbl.replace used name ();
      (name, infer_term env ctx' t)
    in
    Schema.make (List.mapi attr ts)

and infer_branches env ctx = function
  | [] -> error "empty comprehension"
  | first :: rest ->
    let schema = infer_branch env ctx first in
    List.iter
      (fun b ->
        let s = infer_branch env ctx b in
        if not (Schema.compatible schema s) then
          error "branch %a has type %a, incompatible with %a" pp_branch b
            Schema.pp s Schema.pp schema)
      rest;
    schema

(* ------------------------------------------------------------------ *)
(* Definition-level checks *)

let def_params_env env params =
  List.fold_left
    (fun env p ->
      match p with
      | Defs.Scalar_param (n, ty) -> with_scalar_params env [ (n, ty) ]
      | Defs.Rel_param (n, schema) -> with_rel env n schema)
    env params

let check_selector_def env (def : Defs.selector_def) =
  let env = def_params_env env def.sel_params in
  let env = with_rel env def.sel_formal def.sel_formal_schema in
  check_formula env
    [ (def.sel_var, def.sel_formal_schema) ]
    def.sel_pred

(* The schema an aggregated constructor's results take: the raw emissions
   of the branches are grouped on [spec.group] and folded on [spec.value]
   (remaining raw attributes are discriminators that make contributions
   distinct and then vanish). *)
let aggregated_schema ~who (spec : Dc_agg.Agg.spec) raw =
  let arity = Schema.arity raw in
  let check_pos i =
    if i < 0 || i >= arity then
      error "constructor %s: aggregate position %d outside the raw tuple of %d attributes"
        who i arity
  in
  List.iter check_pos spec.group;
  check_pos spec.value;
  let vty = Schema.attr_ty raw spec.value in
  if not (Dc_agg.Agg.value_admissible spec.op vty) then
    error "constructor %s: %s cannot aggregate values of type %s" who
      (Dc_agg.Agg.op_name spec.op) (Value.type_name vty);
  Schema.make
    (List.map (fun i -> (Schema.attr_name raw i, Schema.attr_ty raw i)) spec.group
    @ [ (Schema.attr_name raw spec.value, Dc_agg.Agg.result_ty spec.op vty) ])

let check_constructor_def env (def : Defs.constructor_def) =
  let env = def_params_env env def.con_params in
  let env = with_rel env def.con_formal def.con_formal_schema in
  let raw = infer_branches env [] def.con_body in
  match def.con_agg with
  | None ->
    if not (Schema.compatible raw def.con_result) then
      error "constructor %s: body has type %a but result type is %a"
        def.con_name Schema.pp raw Schema.pp def.con_result
  | Some spec ->
    let result = aggregated_schema ~who:def.con_name spec raw in
    if not (Schema.compatible result def.con_result) then
      error
        "constructor %s: aggregated body has type %a but result type is %a"
        def.con_name Schema.pp result Schema.pp def.con_result

let check_query env range = ignore (infer_range env [] range)

let result_of f = try Ok (f ()) with Error msg -> Error msg
