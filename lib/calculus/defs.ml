(* Selector and constructor definitions (paper §2.3, §3).

   These are syntactic objects — abstractions over "conditional patterns"
   (selectors) and "expressional patterns" (constructors).  Their semantics
   lives in [Dc_core]: selectors filter, constructors take least fixpoints. *)

open Dc_relation

type param =
  | Scalar_param of string * Value.ty
  | Rel_param of string * Schema.t

let param_name = function
  | Scalar_param (n, _) -> n
  | Rel_param (n, _) -> n

(* SELECTOR name (params) FOR Rel: reltype;
   BEGIN EACH v IN Rel: pred END name *)
type selector_def = {
  sel_name : string;
  sel_formal : string; (* the FOR formal, conventionally "Rel" *)
  sel_formal_schema : Schema.t;
  sel_params : param list;
  sel_var : Ast.var; (* the EACH variable of the body *)
  sel_pred : Ast.formula;
}

(* CONSTRUCTOR name FOR Rel: reltype (params): resulttype;
   BEGIN branch, branch, ... END name *)
type constructor_def = {
  con_name : string;
  con_formal : string;
  con_formal_schema : Schema.t;
  con_params : param list;
  con_result : Schema.t;
  con_agg : Dc_agg.Agg.spec option;
      (* aggregate applied to the branches' raw emissions (all branches
         share the spec); [con_result] is the aggregated schema *)
  con_body : Ast.branch list;
}

let pp_param ppf = function
  | Scalar_param (n, ty) -> Fmt.pf ppf "%s: %s" n (Value.type_name ty)
  | Rel_param (n, s) -> Fmt.pf ppf "%s: %a" n Schema.pp s

let pp_params ppf = function
  | [] -> ()
  | ps -> Fmt.pf ppf " (%a)" Fmt.(list ~sep:(any "; ") pp_param) ps

let pp_selector ppf s =
  Fmt.pf ppf "@[<v2>SELECTOR %s%a FOR %s: %a;@ BEGIN EACH %s IN %s: %a@]@ END %s"
    s.sel_name pp_params s.sel_params s.sel_formal Schema.pp s.sel_formal_schema
    s.sel_var s.sel_formal Ast.pp_formula s.sel_pred s.sel_name

let pp_constructor ppf c =
  Fmt.pf ppf "@[<v2>CONSTRUCTOR %s FOR %s: %a%a: %a;@ BEGIN %a@]@ END %s"
    c.con_name c.con_formal Schema.pp c.con_formal_schema pp_params
    c.con_params Schema.pp c.con_result
    Fmt.(list ~sep:(any ",@ ") Ast.pp_branch)
    c.con_body c.con_name
