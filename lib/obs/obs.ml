(* Observability registry: counters, gauges, histograms, timed spans.

   One process-wide table of preallocated mutable instruments; observation
   is a field or array-slot increment (no allocation), lookup happens only
   in [make].  Rendering walks a sorted snapshot so Prometheus text and
   JSON always agree. *)

(* ------------------------------------------------------------------ *)
(* Enablement *)

let enabled =
  ref
    (match Sys.getenv_opt "DC_METRICS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let on () = !enabled
let set_enabled b = enabled := b
let now_ms () = Unix.gettimeofday () *. 1000.

(* ------------------------------------------------------------------ *)
(* Instruments *)

type kind = KCounter | KGauge | KHistogram

(* Log-scale bucket upper bounds shared by every histogram: 0.001 * 4^i,
   spanning sub-microsecond observations to ~4.5 hours in ms units (the
   same bounds serve delta-size histograms; deltas are small integers and
   land in the low buckets).  A final implicit +Inf bucket catches the
   rest. *)
let bucket_bounds =
  Array.init 16 (fun i -> 0.001 *. (4. ** float_of_int i))

let n_finite = Array.length bucket_bounds

(* Domain-safe instruments: all hot-path cells are [Atomic.t], so
   concurrent [Counter.inc] / [Histogram.observe] calls from pool worker
   domains (lib/par) lose no updates.  Contention on a shared counter is
   a fetch-and-add on one cache line — acceptable for round-granular and
   merge-granular observations; per-row counters in lib/exec stay
   per-domain (each worker runs its own pipeline copy) and are folded
   with [Ir.Trace.merge_counters] at the barrier instead. *)
type instrument = {
  i_name : string;
  i_labels : (string * string) list; (* sorted by label name *)
  i_kind : kind;
  i_count : int Atomic.t; (* counter value / histogram observation count *)
  i_sum : float Atomic.t; (* gauge value / histogram sum *)
  i_buckets : int Atomic.t array; (* [||] unless histogram; last is +Inf *)
}

(* Lock-free float accumulate over an [Atomic.t] cell. *)
let atomic_add_float cell v =
  let rec loop () =
    let cur = Atomic.get cell in
    if not (Atomic.compare_and_set cell cur (cur +. v)) then loop ()
  in
  loop ()

(* Registry keyed by name + rendered labels; [order] not kept — renderers
   sort, so output is deterministic whatever the registration order.
   The table itself is guarded by [registry_mutex]: instrument creation
   is cold-path ([make] at module init or per phase), so a lock there
   costs nothing, and it keeps concurrent [make]/[reset]/[snapshot]
   calls from racing the Hashtbl's internal resizing. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let key name labels =
  let b = Buffer.create 32 in
  Buffer.add_string b name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\x00';
      Buffer.add_string b k;
      Buffer.add_char b '\x01';
      Buffer.add_string b v)
    labels;
  Buffer.contents b

let find_or_create kind ?(labels = []) name =
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let k = key name labels in
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry k with
  | Some i ->
    if i.i_kind <> kind then
      invalid_arg
        (Printf.sprintf "Obs: instrument %s already registered with a \
                         different kind" name);
    i
  | None ->
    let i =
      {
        i_name = name;
        i_labels = labels;
        i_kind = kind;
        i_count = Atomic.make 0;
        i_sum = Atomic.make 0.;
        i_buckets =
          (if kind = KHistogram then
             Array.init (n_finite + 1) (fun _ -> Atomic.make 0)
           else [||]);
      }
    in
    Hashtbl.add registry k i;
    i

module Counter = struct
  type t = instrument

  let make ?labels name = find_or_create KCounter ?labels name
  let inc c = ignore (Atomic.fetch_and_add c.i_count 1)
  let add c n = ignore (Atomic.fetch_and_add c.i_count n)
  let value c = Atomic.get c.i_count
end

module Gauge = struct
  type t = instrument

  let make ?labels name = find_or_create KGauge ?labels name
  let set g v = Atomic.set g.i_sum v
  let add g v = atomic_add_float g.i_sum v
  let value g = Atomic.get g.i_sum
end

module Histogram = struct
  type t = instrument

  let make ?labels name = find_or_create KHistogram ?labels name

  let observe h v =
    (* linear scan over 16 bounds: branch-predictable, no allocation *)
    let i = ref 0 in
    while !i < n_finite && v > bucket_bounds.(!i) do
      incr i
    done;
    ignore (Atomic.fetch_and_add h.i_buckets.(!i) 1);
    ignore (Atomic.fetch_and_add h.i_count 1);
    atomic_add_float h.i_sum v

  let count h = Atomic.get h.i_count
  let sum h = Atomic.get h.i_sum
  let bucket_counts h = Array.map Atomic.get h.i_buckets
  let bucket_bounds = bucket_bounds
end

(* ------------------------------------------------------------------ *)
(* Spans *)

module Span = struct
  type event = {
    sp_name : string;
    sp_depth : int;
    sp_start_ms : float;
    sp_stop_ms : float;
    sp_seq_start : int;
    sp_seq_stop : int;
  }

  let log : event list ref = ref []
  let log_len = ref 0
  let log_cap = 4096
  let depth = ref 0

  (* Monotonic sequence numbers bumped at every span entry and exit:
     well-nestedness is checked over these exact integers, immune to the
     wall clock's resolution. *)
  let seq = ref 0

  let events () = !log

  let clear () =
    log := [];
    log_len := 0;
    depth := 0;
    seq := 0

  let dropped = lazy (Counter.make "dc_span_events_dropped_total")

  let record name d t0 t1 s0 s1 =
    if !log_len < log_cap then begin
      log :=
        {
          sp_name = name;
          sp_depth = d;
          sp_start_ms = t0;
          sp_stop_ms = t1;
          sp_seq_start = s0;
          sp_seq_stop = s1;
        }
        :: !log;
      incr log_len
    end
    else Counter.inc (Lazy.force dropped)

  let timed name f =
    if not !enabled then f ()
    else begin
      let d = !depth in
      incr depth;
      let s0 = !seq in
      incr seq;
      let t0 = now_ms () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = now_ms () in
          let s1 = !seq in
          incr seq;
          decr depth;
          Histogram.observe
            (Histogram.make ~labels:[ ("span", name) ] "dc_span_ms")
            (t1 -. t0);
          record name d t0 t1 s0 s1)
        f
    end

  let well_nested () =
    (* Replay completed spans in entry order; the sequence intervals of a
       well-nested run behave like balanced parentheses. *)
    let evs =
      List.sort
        (fun a b -> compare a.sp_seq_start b.sp_seq_start)
        (events ())
    in
    let rec go stack = function
      | [] -> true
      | e :: rest ->
        let stack =
          (* pop spans that finished before this one started *)
          let rec pop = function
            | s :: tl when s.sp_seq_stop < e.sp_seq_start -> pop tl
            | st -> st
          in
          pop stack
        in
        let contained =
          match stack with
          | [] -> true
          | parent :: _ -> e.sp_seq_stop < parent.sp_seq_stop
        in
        contained && e.sp_depth = List.length stack && go (e :: stack) rest
    in
    go [] evs
end

(* ------------------------------------------------------------------ *)
(* Reset *)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ i ->
          Atomic.set i.i_count 0;
          Atomic.set i.i_sum 0.;
          Array.iter (fun b -> Atomic.set b 0) i.i_buckets)
        registry);
  Span.clear ()

(* ------------------------------------------------------------------ *)
(* Rendering *)

let snapshot () =
  let all =
    with_registry (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) registry [])
  in
  List.sort
    (fun a b ->
      match String.compare a.i_name b.i_name with
      | 0 -> compare a.i_labels b.i_labels
      | c -> c)
    all

(* Prometheus label-value escaping: backslash, double quote, newline. *)
let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | labels ->
    let items =
      List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels
    in
    "{" ^ String.concat "," items ^ "}"

(* %.17g-style shortest-roundtrip floats would be noisy; metrics consumers
   are fine with a compact decimal. *)
let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_prometheus () =
  let b = Buffer.create 1024 in
  let seen_type : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if not (Hashtbl.mem seen_type i.i_name) then begin
        Hashtbl.add seen_type i.i_name ();
        let ty =
          match i.i_kind with
          | KCounter -> "counter"
          | KGauge -> "gauge"
          | KHistogram -> "histogram"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" i.i_name ty)
      end;
      match i.i_kind with
      | KCounter ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" i.i_name (prom_labels i.i_labels)
             (Atomic.get i.i_count))
      | KGauge ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" i.i_name (prom_labels i.i_labels)
             (prom_float (Atomic.get i.i_sum)))
      | KHistogram ->
        let cum = ref 0 in
        Array.iteri
          (fun bi n ->
            cum := !cum + Atomic.get n;
            let le =
              if bi < n_finite then prom_float bucket_bounds.(bi) else "+Inf"
            in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" i.i_name
                 (prom_labels ~extra:("le", le) i.i_labels)
                 !cum))
          i.i_buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" i.i_name (prom_labels i.i_labels)
             (prom_float (Atomic.get i.i_sum)));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" i.i_name (prom_labels i.i_labels)
             (Atomic.get i.i_count)))
    (snapshot ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"metrics\": [";
  List.iteri
    (fun idx i ->
      if idx > 0 then Buffer.add_string b ", ";
      Buffer.add_string b "{\"name\": \"";
      Buffer.add_string b (json_escape i.i_name);
      Buffer.add_string b "\", \"labels\": {";
      List.iteri
        (fun li (k, v) ->
          if li > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
        i.i_labels;
      Buffer.add_string b "}, ";
      (match i.i_kind with
      | KCounter ->
        Buffer.add_string b
          (Printf.sprintf "\"type\": \"counter\", \"value\": %d"
             (Atomic.get i.i_count))
      | KGauge ->
        Buffer.add_string b
          (Printf.sprintf "\"type\": \"gauge\", \"value\": %s"
             (prom_float (Atomic.get i.i_sum)))
      | KHistogram ->
        Buffer.add_string b
          (Printf.sprintf "\"type\": \"histogram\", \"count\": %d, \"sum\": %s, \"buckets\": ["
             (Atomic.get i.i_count) (prom_float (Atomic.get i.i_sum)));
        let cum = ref 0 in
        Array.iteri
          (fun bi n ->
            cum := !cum + Atomic.get n;
            if bi > 0 then Buffer.add_string b ", ";
            let le =
              if bi < n_finite then prom_float bucket_bounds.(bi)
              else "\"+Inf\""
            in
            Buffer.add_string b
              (Printf.sprintf "{\"le\": %s, \"count\": %d}" le !cum))
          i.i_buckets;
        Buffer.add_string b "]");
      Buffer.add_string b "}")
    (snapshot ());
  Buffer.add_string b "]}";
  Buffer.contents b
