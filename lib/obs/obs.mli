(** Process-wide observability: a registry of counters, gauges and
    histograms plus timed spans, surfaced as Prometheus-style text and
    JSON ([SHOW METRICS], [dbpl --metrics-out], [bench -- json]).

    Design constraints (see DESIGN.md "Observability"):

    - Hot-path friendly: every instrument is a preallocated mutable cell;
      [Counter.inc], [Gauge.add] and [Histogram.observe] allocate nothing.
      Instrument lookup ([make]) allocates and should be done once, at
      module initialisation or per phase — never per row.
    - Off by default: when [on () = false] the instrumented code is
      expected to skip its observations entirely (one [bool] read), so a
      metrics-disabled run pays a branch, not a clock read.  Enabled with
      the [DC_METRICS] environment variable ([1]/[true]/[on]) or
      [set_enabled].
    - The clock is [Unix.gettimeofday] — the best monotonic approximation
      available without C stubs or new dependencies; all durations are in
      milliseconds. *)

val on : unit -> bool
(** Is metrics collection enabled? *)

val set_enabled : bool -> unit
(** Enable/disable collection at runtime (e.g. for [SHOW METRICS] or the
    interleaved A/B bench). *)

val now_ms : unit -> float
(** Wall-clock time in milliseconds. *)

val reset : unit -> unit
(** Zero every registered instrument and clear the span log.  Instruments
    stay registered (handles remain valid). *)

(** Monotonically increasing integer counts (rows, rounds, tuples). *)
module Counter : sig
  type t

  val make : ?labels:(string * string) list -> string -> t
  (** Find-or-create the counter [name] with [labels]; idempotent, so
      repeated [make] calls return the same cell. *)

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Current-level values (live fixpoint applications, derived tuples held
    by the database) — can go down, e.g. on transactional rollback. *)
module Gauge : sig
  type t

  val make : ?labels:(string * string) list -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

(** Distributions over fixed log-scale buckets (durations in ms, per-round
    delta sizes).  Observation is an array increment — no allocation. *)
module Histogram : sig
  type t

  val make : ?labels:(string * string) list -> string -> t

  val observe : t -> float -> unit
  (** Record one observation (bucketed by upper bound, cumulative at
      render time following the Prometheus convention). *)

  val count : t -> int
  val sum : t -> float

  val bucket_counts : t -> int array
  (** Per-bucket (non-cumulative) counts; the last bucket is +Inf. *)

  val bucket_bounds : float array
  (** Upper bounds of the finite buckets (log scale, shared by all
      histograms); [bucket_counts] has one extra +Inf slot. *)
end

(** Timed spans for the compilation/evaluation phases (parse, typecheck,
    plan, execute, fixpoint rounds).  Each completed span records a
    [dc_span_ms{span="<name>"}] histogram observation and an event in a
    bounded in-memory log used by the nesting property tests. *)
module Span : sig
  type event = {
    sp_name : string;
    sp_depth : int;  (** nesting depth at entry (0 = top level) *)
    sp_start_ms : float;
    sp_stop_ms : float;
    sp_seq_start : int;  (** global sequence number at entry *)
    sp_seq_stop : int;  (** global sequence number at exit *)
  }

  val timed : string -> (unit -> 'a) -> 'a
  (** [timed name f] runs [f ()]; when metrics are enabled the elapsed
      time is recorded under [name] (also on exception). *)

  val events : unit -> event list
  (** Completed spans, most recently finished first.  The log is bounded;
      once full, further spans still feed histograms but drop their
      events. *)

  val well_nested : unit -> bool
  (** Spans form a forest: any two span intervals (over the global
      sequence counter) are disjoint or nested, and recorded depths match
      the reconstruction. *)

  val clear : unit -> unit
end

val to_prometheus : unit -> string
(** Render the registry in the Prometheus text exposition format
    ([# TYPE] comments, [_bucket]/[_sum]/[_count] for histograms), sorted
    by name then labels for determinism. *)

val to_json : unit -> string
(** Render the registry as a JSON object [{"metrics": [...]}] carrying
    exactly the same instruments and values as {!to_prometheus}. *)
