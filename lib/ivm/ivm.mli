(** Incremental view maintenance for materialized constructor extents.

    [materialize] translates one constructor application [Base{c(args)}]
    to its Horn program (§3.4), computes the extent once, and registers a
    maintainer with the database so subsequent INSERT/DELETE on the base
    relations update the extent incrementally instead of refixpointing:
    non-recursive components of the translated program by derivation
    counting, recursive components by delete-and-rederive (DRed), both
    driven through the shared delta-variant compiler of
    {!Dc_datalog.Engine}.  Programs with stratified negation fall back to
    a per-update recompute; updates arriving while maintenance is off
    ([SET MAINTAIN OFF]) mark the view stale, and the next serve
    refreshes it.

    Maintenance runs under the database's resource governor; a failed
    propagation (guard exhaustion, injected fault) rolls the view and the
    triggering update back to the pre-update snapshot. *)

open Dc_relation
open Dc_calculus
open Dc_core

exception Error of string

type t

val materialize :
  Database.t -> constructor:string -> base:string -> args:Ast.arg list -> t
(** Translate, compute, and register.  @raise Error on unknown
    constructors, ill-typed applications, or applications outside the
    translatable Horn fragment. *)

val unregister : t -> unit

val name : t -> string
(** The instance predicate of the root application, e.g. ["tc__edge"] —
    also the maintainer name in the database registry. *)

val constructor : t -> string

val depends : t -> string list
(** Base (EDB) relations the view reads; updates to these are routed to
    the maintainer. *)

val plan_kind : t -> string
(** Human-readable maintenance plan, e.g.
    ["incremental (tc__edge:dred)"] or ["recompute (stratified
    negation)"]. *)

val is_stale : t -> bool

val value : t -> Relation.t
(** The maintained extent (refreshes first when stale). *)

val cardinal : t -> int

val refresh : t -> unit
(** From-scratch resynchronization (also rebuilds derivation counts). *)

(** {1 Checkpoint dump / restore}

    The durability layer ([Dc_wal]) checkpoints each materialized view's
    fact store and derivation counts alongside the base relations, so
    recovery re-registers maintainers without refixpointing; the WAL
    replay that follows drives the normal incremental path. *)

val views : Database.t -> t list
(** The views currently materialized over [db] (registration order). *)

type dump = {
  dp_con : string;
  dp_base : string;
  dp_args : Ast.arg list;
  dp_stale : bool;
  dp_store : (string * Tuple.t list) list;  (** per predicate, sorted *)
  dp_supports : (string * (Tuple.t * int) list) list;
      (** derivation counts of the counting predicates, sorted *)
}

val dump : t -> dump
(** Deterministic full capture of the view's maintained state. *)

val restore : Database.t -> dump -> t
(** Recompile the maintenance plan from the (already restored) catalog
    and adopt the dumped store/counts/staleness verbatim — no
    refixpoint.  Registers the maintainer.  @raise Error if the dump's
    constructor is unknown or no longer translatable. *)

val support_counts : t -> (string * (Tuple.t * int) list) list
(** Current derivation counts, sorted (differential-test hook). *)

(** {1 Maintenance reports}

    Every update appends a report; [EXPLAIN ANALYZE] on an INSERT/DELETE
    resets the accumulator, performs the update, and prints what the
    maintenance pipeline did. *)

type phase = {
  ph_label : string;
  ph_tuples : int;
  ph_ms : float;
}

type report = {
  rp_view : string;
  rp_mode : string;
  rp_base : (string * int * int) list;
  mutable rp_phases : phase list;
  mutable rp_plus : int;
  mutable rp_minus : int;
  mutable rp_ms : float;
}

val reports : unit -> report list
(** Reports since the last [reset_reports], oldest first (bounded). *)

val reset_reports : unit -> unit
val pp_report : report Fmt.t
