(* Incremental view maintenance for materialized constructor extents.

   A materialized view caches the least fixpoint of one constructor
   application Base{c(args)} as a Datalog fact store (the §3.4
   translation), and keeps it correct across base-relation INSERT/DELETE
   without refixpointing from scratch.  The maintenance plan is chosen
   per strongly connected component of the translated program's positive
   dependency graph, processed in topological order:

   - non-recursive components use the counting algorithm [GuMS 93]: the
     view tracks, per derived tuple, the number of rule derivations
     currently producing it.  The count adjustment under an update is the
     telescoped product difference — per rule and positive position i,
     one variant reading post-update stores left of i ("⊕pred"), the
     delta at i ("Δpred") and pre-update stores right of i — run once
     against the insertion delta (+1 per emission) and once against the
     deletion delta (−1).  A tuple leaves the extent exactly when its
     count reaches zero and enters when it rises from zero.

   - recursive components use DRed [GuMS 93]: over-delete everything
     derivable from a deleted tuple (semi-naive rounds of the same delta
     variants against the pre-update store), then rederive survivors —
     each over-deleted tuple is probed for an alternative derivation from
     the shrunken store via a head-bound early-exit pipeline
     ([Ir.exists]), and surviving tuples are propagated semi-naively in
     case they resurrect further casualties.  Insertions then propagate
     through a standard semi-naive delta pass.  Counts are unsound here:
     a cycle can keep a tuple's count positive through derivations that
     depend on the deleted tuple itself.

   - non-recursive aggregated predicates (MIN/MAX/COUNT/SUM heads) keep
     derivation counts over the *raw* contributions — the tuples the
     rules emit before the group projection — and maintain one result row
     per group from the raw deltas: COUNT adjusts the count, SUM adds on
     pure insertions, MIN/MAX fold insertions into the current bound.  A
     deletion that hits the bound (or any SUM deletion) is a bound
     violation: the group is recomputed from its surviving raw
     contributions ([Agg.aggregate] over the support table).  The net
     result-row delta then propagates to downstream components exactly
     like any other predicate's.

   Programs with stratified negation or recursive (premapped MIN/MAX)
   aggregates fall back to a full recompute per update (still through the
   maintained store, so reads stay consistent); updates arriving while
   maintenance is off just mark the view stale and the next serve
   refreshes it.

   All phases run under the database's resource governor; the driver in
   [Database] snapshots each view before propagating and rolls back on
   any failure, so an aborted maintenance step leaves the pre-update
   snapshot. *)

open Dc_relation
open Dc_calculus
open Dc_core
open Dc_datalog
module Ir = Dc_exec.Ir
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Par = Dc_par.Par
module Agg = Dc_agg.Agg
module TS = Facts.TS
module SS = Syntax.SS

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Registry instruments *)

let m_updates = lazy (Obs.Counter.make "dc_ivm_updates_total")
let m_maintain_ms = lazy (Obs.Histogram.make "dc_ivm_maintain_ms")
let m_delta_in = lazy (Obs.Histogram.make "dc_ivm_delta_in")
let m_inserted = lazy (Obs.Counter.make "dc_ivm_inserted_total")
let m_deleted = lazy (Obs.Counter.make "dc_ivm_deleted_total")
let m_overdeleted = lazy (Obs.Counter.make "dc_ivm_overdeleted_total")
let m_rederived = lazy (Obs.Counter.make "dc_ivm_rederived_total")
let m_probes = lazy (Obs.Counter.make "dc_ivm_probes_total")
let m_rounds = lazy (Obs.Counter.make "dc_ivm_rounds_total")
let m_refresh = lazy (Obs.Counter.make "dc_ivm_refresh_total")
let g_views = lazy (Obs.Gauge.make "dc_ivm_views")

(* ------------------------------------------------------------------ *)
(* Maintenance reports (EXPLAIN ANALYZE on an update) *)

type phase = {
  ph_label : string;
  ph_tuples : int;
  ph_ms : float;
}

type report = {
  rp_view : string;
  rp_mode : string; (* "incremental" | "recompute" | "stale" *)
  rp_base : (string * int * int) list; (* relation, added, removed *)
  mutable rp_phases : phase list; (* latest first while building *)
  mutable rp_plus : int; (* net growth of the served extent *)
  mutable rp_minus : int;
  mutable rp_ms : float;
}

(* Only the most recent reports are retained — long update streams must
   not accumulate per-update diagnostics without bound. *)
let max_reports = 16
let reports_acc : report list ref = ref []
let n_reports = ref 0

let push_report rp =
  reports_acc := rp :: !reports_acc;
  incr n_reports;
  if !n_reports > max_reports then begin
    reports_acc := List.filteri (fun i _ -> i < max_reports) !reports_acc;
    n_reports := max_reports
  end

let reset_reports () =
  reports_acc := [];
  n_reports := 0

let reports () = List.rev !reports_acc

let pp_report ppf rp =
  Fmt.pf ppf "@[<v>view %s (%s): %a; Δ⁺=%d Δ⁻=%d; %.2f ms" rp.rp_view
    rp.rp_mode
    Fmt.(
      list ~sep:(any ", ") (fun ppf (r, a, d) -> pf ppf "%s +%d/-%d" r a d))
    rp.rp_base rp.rp_plus rp.rp_minus rp.rp_ms;
  List.iter
    (fun ph ->
      Fmt.pf ppf "@,  %-28s %6d tuples %8.2f ms" ph.ph_label ph.ph_tuples
        ph.ph_ms)
    (List.rev rp.rp_phases);
  Fmt.pf ppf "@]"

let timed rp label f =
  let t0 = Obs.now_ms () in
  let tuples = f () in
  rp.rp_phases <-
    { ph_label = label; ph_tuples = tuples; ph_ms = Obs.now_ms () -. t0 }
    :: rp.rp_phases

(* ------------------------------------------------------------------ *)
(* Compiled maintenance plans *)

(* One delta variant of one rule: the positive occurrence at the marked
   position reads a delta, the rest read whatever the phase's context
   maps plain names to. *)
type variant = {
  v_head : string;
  v_delta_pred : string; (* predicate at the delta position *)
  v_pipe : Ir.t;
}

(* Head-bound early-exit rederivation probe: [p_match candidate] checks
   the head's constants and repeated variables against the candidate and,
   when consistent, returns the initial-row thunk binding the head
   variables; [Ir.exists] then asks whether the body has any witness. *)
type probe = {
  p_compiled : Engine.compiled;
  p_match : Tuple.t -> (unit -> Engine.row) option;
}

(* Lazily-grown pool of private compiled copies.  Pipelines carry
   mutable per-operator counters and probes a shared initial-row slot,
   so shards on worker domains each need their own; copies are compiled
   on the main domain the first time a parallel pass wants them and then
   reused for the life of the plan. *)
type 'a copies = {
  cp_make : unit -> 'a;
  mutable cp_pool : 'a array;
}

let copies cp_make = { cp_make; cp_pool = [||] }

let copies_get cp n =
  if Array.length cp.cp_pool < n then
    cp.cp_pool <-
      Array.append cp.cp_pool
        (Array.init
           (n - Array.length cp.cp_pool)
           (fun _ -> cp.cp_make ()));
  cp.cp_pool

type scc_kind =
  | Counting of {
      c_init : (string * Ir.t) list;
          (* raw plain pipelines: emissions = derivations, used to
             (re)build counts from a full store *)
      c_variants : variant list;
          (* tri-named: ⊕ left of the delta, plain right of it *)
      c_copies : variant list copies; (* worker-domain pipeline copies *)
    }
  | Dred of {
      d_variants : variant list;
      d_copies : variant list copies;
      d_probes : (string * probe list) list; (* per component predicate *)
      d_probe_copies : (string * probe list) list copies;
    }
  | Agg_counting of {
      a_spec : Agg.spec;
      a_init : Ir.t list;
          (* plain pipelines whose emissions are the raw contributions *)
      a_variants : variant list;
      a_copies : variant list copies;
    }

type scc = {
  s_preds : string list;
  s_set : SS.t;
  s_kind : scc_kind;
}

type plan =
  | Incremental of scc list
  | Recompute of string (* why the incremental path does not apply *)

type status =
  | Live
  | Stale

type t = {
  db : Database.t;
  name : string; (* instance predicate of the root application *)
  con : string;
  base : string;
  args : Ast.arg list;
  def : Defs.constructor_def;
  program : Syntax.program;
  aggs : (string * Agg.spec) list; (* aggregated instance predicates *)
  query_pred : string;
  depends : string list; (* EDB relations the translated program reads *)
  plan : plan;
  supports : Support.t; (* derivation counts of the counting predicates *)
  mutable store : Facts.t; (* EDB ∪ IDB at the last synchronized state *)
  mutable status : status;
}

let name v = v.name
let constructor v = v.con
let depends v = v.depends
let is_stale v = v.status = Stale

(* ------------------------------------------------------------------ *)
(* Per-database view registry

   [Database] only knows maintainers as opaque closures; the durability
   layer needs the concrete views back (to checkpoint their stores and
   derivation counts), so materialization keeps a side registry keyed by
   physical database identity.  Single-writer discipline: mutated only on
   the committing thread, like everything else behind the commit point. *)

let registry : (Database.t * t list ref) list ref = ref []

let registry_entry db =
  match List.find_opt (fun (d, _) -> d == db) !registry with
  | Some (_, e) -> e
  | None ->
    let e = ref [] in
    registry := (db, e) :: !registry;
    e

let track view =
  let e = registry_entry view.db in
  e := view :: List.filter (fun v -> not (String.equal v.name view.name)) !e

let untrack view =
  let e = registry_entry view.db in
  e := List.filter (fun v -> not (String.equal v.name view.name)) !e

let views db = List.rev !(registry_entry db)

let plan_kind v =
  match v.plan with
  | Incremental sccs ->
    Fmt.str "incremental (%s)"
      (String.concat ", "
         (List.map
            (fun s ->
              Fmt.str "%s:%s"
                (String.concat "," s.s_preds)
                (match s.s_kind with
                | Counting _ -> "counting"
                | Dred _ -> "dred"
                | Agg_counting { a_spec; _ } ->
                  Fmt.str "agg-counting %a" Agg.pp_op a_spec.op))
            sccs))
  | Recompute why -> Fmt.str "recompute (%s)" why

(* ------------------------------------------------------------------ *)
(* Plan compilation *)

let positive_atoms (r : Syntax.rule) =
  List.filter_map
    (function
      | Syntax.Pos a -> Some a
      | Syntax.Neg _ | Syntax.Test _ -> None)
    r.body

let rule_label r = lazy (Fmt.str "%a" Syntax.pp_rule r)

(* Delta variants of [rule], one per positive position; [names] decides
   what the non-delta occurrences are called. *)
let variants_of ~names rule =
  let atoms = Array.of_list (positive_atoms rule) in
  List.map
    (fun dpos ->
      {
        v_head = rule.Syntax.head.pred;
        v_delta_pred = atoms.(dpos).Syntax.pred;
        v_pipe =
          (Engine.compile_variant ~delta_pos:dpos
             ~names:(fun i a -> names dpos i a)
             ~label:(rule_label rule) rule)
            .Engine.pipeline;
      })
    (Engine.delta_positions ~member:(fun _ -> true) rule)

let compile_probe (rule : Syntax.rule) =
  let head = Array.of_list rule.head.args in
  (* first occurrence of each head variable, in order *)
  let bound, _ =
    Array.fold_left
      (fun (acc, seen) t ->
        match t with
        | Syntax.Var v when not (SS.mem v seen) -> (v :: acc, SS.add v seen)
        | Syntax.Var _ | Syntax.Const _ -> (acc, seen)
        | Syntax.Binop _ ->
          (* computed heads are routed to Recompute by [compile_plan] *)
          raise (Error "probe compilation: computed (Binop) head term"))
      ([], SS.empty) head
  in
  let bound = List.rev bound in
  let compiled =
    Engine.compile_variant ~bound
      ~names:(fun _ (a : Syntax.atom) -> a.pred)
      ~label:(rule_label rule) rule
  in
  (* per head position: what to do with the candidate's value there *)
  let actions =
    let seen = Hashtbl.create 8 in
    Array.mapi
      (fun i t ->
        match t with
        | Syntax.Const c -> `Check_const c
        | Syntax.Binop _ ->
          raise (Error "probe compilation: computed (Binop) head term")
        | Syntax.Var v -> (
          match Hashtbl.find_opt seen v with
          | Some j -> `Check_eq j
          | None ->
            Hashtbl.replace seen v i;
            `Bind (compiled.Engine.slot v)))
      head
  in
  let n = Array.length actions in
  let p_match tuple =
    let rec consistent i =
      i = n
      ||
      match actions.(i) with
      | `Check_const c -> Value.equal c (Tuple.get tuple i) && consistent (i + 1)
      | `Check_eq j ->
        Value.equal (Tuple.get tuple j) (Tuple.get tuple i) && consistent (i + 1)
      | `Bind _ -> consistent (i + 1)
    in
    if not (consistent 0) then None
    else
      Some
        (fun () ->
          let row = Array.make compiled.Engine.n_slots Engine.dummy in
          Array.iteri
            (fun i act ->
              match act with
              | `Bind s -> row.(s) <- Tuple.get tuple i
              | `Check_const _ | `Check_eq _ -> ())
            actions;
          row)
  in
  { p_compiled = compiled; p_match }

let compile_plan ?(aggs = []) (program : Syntax.program) =
  let has_neg =
    List.exists
      (fun (r : Syntax.rule) ->
        List.exists
          (function
            | Syntax.Neg _ -> true
            | Syntax.Pos _ | Syntax.Test _ -> false)
          r.body)
      program
  in
  let rec term_has_binop = function
    | Syntax.Binop _ -> true
    | Syntax.Var _ | Syntax.Const _ -> false
  and lit_has_binop = function
    | Syntax.Pos a | Syntax.Neg a -> List.exists term_has_binop a.Syntax.args
    | Syntax.Test (_, a, b) -> term_has_binop a || term_has_binop b
  in
  (* computed terms are fine inside an aggregated predicate's rules (the
     counting pipelines just evaluate them); anywhere else the DRed
     probes cannot match them against a candidate head *)
  let has_binop =
    List.exists
      (fun (r : Syntax.rule) ->
        (not (List.mem_assoc r.head.pred aggs))
        && (List.exists term_has_binop r.head.args
           || List.exists lit_has_binop r.body))
      program
  in
  let sccs = Stratify.sccs program in
  let recursive_agg =
    List.exists
      (fun preds ->
        Stratify.recursive program preds
        && List.exists (fun p -> List.mem_assoc p aggs) preds)
      sccs
  in
  if has_neg then Recompute "stratified negation"
  else if recursive_agg then Recompute "recursive aggregate (per-group bounds)"
  else if has_binop then Recompute "computed head terms"
  else
    Incremental
      (List.map
         (fun preds ->
           let s_set = SS.of_list preds in
           let rules =
             List.filter
               (fun (r : Syntax.rule) -> SS.mem r.head.pred s_set)
               program
           in
           let s_kind =
             match preds with
             | [ p ] when List.mem_assoc p aggs ->
               (* non-recursive aggregated predicate: counting over the
                  raw contributions plus a per-group aggregate layer *)
               let make_variants () =
                 List.concat_map
                   (variants_of ~names:(fun dpos i (a : Syntax.atom) ->
                        if i < dpos then Engine.post_name a.pred
                        else if i = dpos then Engine.delta_name a.pred
                        else a.pred))
                   rules
               in
               Agg_counting
                 {
                   a_spec = List.assoc p aggs;
                   a_init =
                     List.map
                       (fun (r : Syntax.rule) ->
                         (Engine.compile_variant
                            ~names:(fun _ (a : Syntax.atom) -> a.pred)
                            ~label:(rule_label r) r)
                           .Engine.pipeline)
                       rules;
                   a_variants = make_variants ();
                   a_copies = copies make_variants;
                 }
             | _ ->
             if Stratify.recursive program preds then begin
               let make_variants () =
                 List.concat_map
                   (variants_of ~names:(fun dpos i (a : Syntax.atom) ->
                        if i = dpos then Engine.delta_name a.pred
                        else a.pred))
                   rules
               in
               let make_probes () =
                 List.map
                   (fun p ->
                     ( p,
                       List.filter_map
                         (fun (r : Syntax.rule) ->
                           if String.equal r.head.pred p then
                             Some (compile_probe r)
                           else None)
                         rules ))
                   preds
               in
               Dred
                 {
                   d_variants = make_variants ();
                   d_copies = copies make_variants;
                   d_probes = make_probes ();
                   d_probe_copies = copies make_probes;
                 }
             end
             else begin
               let make_variants () =
                 List.concat_map
                   (variants_of ~names:(fun dpos i (a : Syntax.atom) ->
                        if i < dpos then Engine.post_name a.pred
                        else if i = dpos then Engine.delta_name a.pred
                        else a.pred))
                   rules
               in
               Counting
                 {
                   c_init =
                     List.map
                       (fun (r : Syntax.rule) ->
                         ( r.head.pred,
                           (Engine.compile_variant
                              ~names:(fun _ (a : Syntax.atom) -> a.pred)
                              ~label:(rule_label r) r)
                             .Engine.pipeline ))
                       rules;
                   c_variants = make_variants ();
                   c_copies = copies make_variants;
                 }
             end
           in
           { s_preds = preds; s_set; s_kind })
         sccs)

(* ------------------------------------------------------------------ *)
(* Refresh (from-scratch synchronization) *)

let fresh_edb view =
  SS.fold
    (fun p acc -> Facts.of_relation p (Database.get view.db p) acc)
    (Syntax.edb_preds view.program)
    (Facts.empty ())

(* The support-table name of an aggregated predicate's raw contributions
   — disjoint from every real predicate ('!' cannot appear in one). *)
let raw_name pred = pred ^ "!raw"

let init_supports view =
  Support.reset view.supports;
  match view.plan with
  | Recompute _ -> ()
  | Incremental sccs ->
    List.iter
      (fun s ->
        match s.s_kind with
        | Dred _ -> ()
        | Counting { c_init; _ } ->
          List.iter
            (fun (head, pipe) ->
              Ir.run (Engine.store_ctx view.store) pipe (fun t ->
                  ignore (Support.add view.supports head t 1)))
            c_init
        | Agg_counting { a_init; _ } ->
          let rawp = raw_name (List.hd s.s_preds) in
          List.iter
            (fun pipe ->
              Ir.run (Engine.store_ctx view.store) pipe (fun t ->
                  ignore (Support.add view.supports rawp t 1)))
            a_init)
      sccs

let refresh view =
  let guard = Guard.of_limits (Database.limits view.db) in
  view.store <-
    Seminaive.run ~guard ~aggs:view.aggs view.program (fresh_edb view);
  init_supports view;
  view.status <- Live;
  if Obs.on () then Obs.Counter.inc (Lazy.force m_refresh)

(* ------------------------------------------------------------------ *)
(* The incremental update *)

(* Per-update driver state: [pre] is the synchronized store before the
   update; [mid] applies every net deletion committed so far (but no
   insertion); [post] applies both; [dplus]/[dminus] accumulate the net
   per-predicate deltas, EDB first, then each component in topological
   order — so a component always sees finished pre/mid/post states and
   deltas for everything below it. *)
type update_state = {
  pre : Facts.t;
  mutable mid : Facts.t;
  mutable post : Facts.t;
  mutable dplus : Facts.t;
  mutable dminus : Facts.t;
  guard : Guard.t;
  rp : report;
}

let round st =
  Guard.round st.guard ~site:"ivm.round";
  if Obs.on () then Obs.Counter.inc (Lazy.force m_rounds)

(* Run the variants whose delta predicate is non-empty in [delta]. *)
let run_variants st ~ctx ~delta variants emit =
  List.iter
    (fun v ->
      if Facts.cardinal delta v.v_delta_pred > 0 then
        Ir.run ~guard:st.guard ctx v.v_pipe (emit v.v_head))
    variants

(* Prefer a real failure over the secondary [Cancelled] trips the
   first-error hook induces in sibling shards. *)
let prefer_real = function
  | Guard.Exhausted (Guard.Cancelled, _) -> false
  | _ -> true

(* Shard a maintenance pass when a parallel degree is configured, the
   delta is big enough to amortize the partition/merge barrier, and the
   per-row profiler is off (its clock state is global). *)
let par_domains total =
  let d = Par.domains () in
  if
    d > 1
    && Domain.is_main_domain ()
    && (not !Ir.profiling)
    && total >= Par.seq_cutoff ()
  then d
  else 1

(* One parallel delta pass: hash-partition [delta] across [domains]
   shards, shard i running the i-th private pipeline copy (copy 0 is the
   canonical list) with the delta sources remapped to its shard.  Every
   keyed access path is built on this domain before the fan-out —
   [resolve] names the (store, predicate) a non-delta source reads under
   the phase's context — so workers only probe frozen indexes.
   Emissions merge at the barrier through [fold], shard order first,
   emission order within a shard. *)
let par_variants st ~domains ~variants ~copies:cp ~ctx_of ~resolve ~delta
    ~fold ~init =
  let shards = Facts.partition ~shards:domains delta in
  List.iter
    (fun (name, positions) ->
      match Engine.split_delta name with
      | Some pred ->
        Array.iter (fun s -> Facts.prewarm s pred positions) shards
      | None ->
        let store, pred = resolve name in
        Facts.prewarm store pred positions)
    (List.sort_uniq compare
       (List.concat_map (fun v -> Ir.keyed_sources v.v_pipe) variants));
  let pool = copies_get cp (domains - 1) in
  let results =
    Par.map ~shards:domains
      ~on_first_error:(fun _ -> Guard.cancel st.guard)
      ~prefer:prefer_real
      (fun i ->
        let vs = if i = 0 then variants else pool.(i - 1) in
        let out = ref [] in
        run_variants st ~ctx:(ctx_of shards.(i)) ~delta:shards.(i) vs
          (fun head t -> out := (head, t) :: !out);
        List.rev !out)
  in
  let t_merge = Obs.now_ms () in
  let acc =
    Array.fold_left
      (fun acc out ->
        List.fold_left (fun acc (h, t) -> fold acc h t) acc out)
      init results
  in
  if Obs.on () then
    Par.observe_round
      ~shard_sizes:(Array.map Facts.total shards)
      ~merge_ms:(Obs.now_ms () -. t_merge);
  acc

let commit_pred st pred ~net_plus ~net_minus =
  st.dminus <- Facts.add_set st.dminus pred net_minus;
  st.dplus <- Facts.add_set st.dplus pred net_plus;
  st.mid <- Facts.remove_set st.mid pred net_minus;
  st.post <-
    Facts.add_set (Facts.remove_set st.post pred net_minus) pred net_plus

(* Counting pass over one non-recursive component: one telescoped run per
   variant and delta sign, then zero-crossings of the adjusted counts
   become the component's net delta. *)
let counting_scc view st s c_variants c_copies =
  round st;
  let adjust : (string * Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  let record sign head t =
    let key = (head, t) in
    Hashtbl.replace adjust key
      (sign + Option.value (Hashtbl.find_opt adjust key) ~default:0)
  in
  timed st.rp
    (Fmt.str "count %s" (String.concat "," s.s_preds))
    (fun () ->
      let signed sign delta =
        match par_domains (Facts.total delta) with
        | 1 ->
          run_variants st
            ~ctx:(Engine.tri_ctx ~pre:st.pre ~post:st.post ~delta)
            ~delta c_variants (record sign)
        | domains ->
          par_variants st ~domains ~variants:c_variants ~copies:c_copies
            ~ctx_of:(fun shard ->
              Engine.tri_ctx ~pre:st.pre ~post:st.post ~delta:shard)
            ~resolve:(fun name ->
              match Engine.split_post name with
              | Some pred -> (st.post, pred)
              | None -> (st.pre, name))
            ~delta
            ~fold:(fun () h t -> record sign h t)
            ~init:()
      in
      signed 1 st.dplus;
      signed (-1) st.dminus;
      Hashtbl.length adjust);
  let removed = Hashtbl.create 4 and added = Hashtbl.create 4 in
  let bucket tbl pred t =
    Hashtbl.replace tbl pred
      (TS.add t (Option.value (Hashtbl.find_opt tbl pred) ~default:TS.empty))
  in
  Hashtbl.iter
    (fun (pred, t) d ->
      if d <> 0 then begin
        let old, now = Support.add view.supports pred t d in
        if now < 0 then
          error "negative derivation count for %s%a (ivm bug)" pred Tuple.pp t;
        if old > 0 && now = 0 then bucket removed pred t
        else if old = 0 && now > 0 then bucket added pred t
      end)
    adjust;
  List.iter
    (fun pred ->
      let net_minus =
        Option.value (Hashtbl.find_opt removed pred) ~default:TS.empty
      and net_plus =
        Option.value (Hashtbl.find_opt added pred) ~default:TS.empty
      in
      commit_pred st pred ~net_plus ~net_minus)
    s.s_preds

(* Aggregate pass over one non-recursive aggregated predicate: the same
   telescoped counting run, but over the *raw* contributions (what the
   rules emit before the group projection), then a per-group maintenance
   layer turns raw deltas into result-row deltas.  COUNT adjusts the
   stored count; SUM adds on pure insertions; MIN/MAX fold insertions
   into the current bound.  A deletion that witnessed the bound (or any
   SUM deletion, where group emptiness is otherwise unknowable) recomputes
   the group from its surviving raw contributions. *)
let agg_scc view st s (spec : Agg.spec) a_variants a_copies =
  round st;
  let pred = List.hd s.s_preds in
  let rawp = raw_name pred in
  let adjust : (Tuple.t, int) Hashtbl.t = Hashtbl.create 64 in
  let record sign (_ : string) t =
    Hashtbl.replace adjust t
      (sign + Option.value (Hashtbl.find_opt adjust t) ~default:0)
  in
  timed st.rp (Fmt.str "agg count %s" pred) (fun () ->
      let signed sign delta =
        match par_domains (Facts.total delta) with
        | 1 ->
          run_variants st
            ~ctx:(Engine.tri_ctx ~pre:st.pre ~post:st.post ~delta)
            ~delta a_variants (record sign)
        | domains ->
          par_variants st ~domains ~variants:a_variants ~copies:a_copies
            ~ctx_of:(fun shard ->
              Engine.tri_ctx ~pre:st.pre ~post:st.post ~delta:shard)
            ~resolve:(fun name ->
              match Engine.split_post name with
              | Some p -> (st.post, p)
              | None -> (st.pre, name))
            ~delta
            ~fold:(fun () h t -> record sign h t)
            ~init:()
      in
      signed 1 st.dplus;
      signed (-1) st.dminus;
      Hashtbl.length adjust);
  (* zero-crossings of the raw derivation counts: the distinct raw set *)
  let raw_plus = ref TS.empty and raw_minus = ref TS.empty in
  Hashtbl.iter
    (fun t d ->
      if d <> 0 then begin
        let old_c, now = Support.add view.supports rawp t d in
        if now < 0 then
          error "negative raw derivation count for %s%a (ivm bug)" pred
            Tuple.pp t;
        if old_c > 0 && now = 0 then raw_minus := TS.add t !raw_minus
        else if old_c = 0 && now > 0 then raw_plus := TS.add t !raw_plus
      end)
    adjust;
  (* group layer: raw deltas -> result-row deltas *)
  timed st.rp (Fmt.str "agg groups %s" pred) (fun () ->
      let ngroup = List.length spec.group in
      let gkey_raw t = List.map (Tuple.get t) spec.group in
      let gkey_row r = List.init ngroup (Tuple.get r) in
      let old_rows = Hashtbl.create 16 in
      TS.iter
        (fun r -> Hashtbl.replace old_rows (gkey_row r) r)
        (Facts.find st.pre pred);
      let touched : (Value.t list, Tuple.t list ref * Tuple.t list ref) Hashtbl.t
          =
        Hashtbl.create 16
      in
      let touch k =
        match Hashtbl.find_opt touched k with
        | Some e -> e
        | None ->
          let e = (ref [], ref []) in
          Hashtbl.replace touched k e;
          e
      in
      TS.iter (fun t -> let p, _ = touch (gkey_raw t) in p := t :: !p) !raw_plus;
      TS.iter (fun t -> let _, m = touch (gkey_raw t) in m := t :: !m) !raw_minus;
      let rescan : (Value.t list, unit) Hashtbl.t = Hashtbl.create 8 in
      let net_plus = ref TS.empty and net_minus = ref TS.empty in
      let replace old_row new_row =
        match (old_row, new_row) with
        | None, None -> ()
        | Some o, Some n when Tuple.equal o n -> ()
        | o, n ->
          Option.iter (fun r -> net_minus := TS.add r !net_minus) o;
          Option.iter (fun r -> net_plus := TS.add r !net_plus) n
      in
      let one_row = function
        | [ row ] -> Some row
        | [] -> None
        | _ -> error "several result rows for one group of %s (ivm bug)" pred
      in
      let vals ts = List.map (fun t -> Tuple.get t spec.value) ts in
      Hashtbl.iter
        (fun key (plus, minus) ->
          let old_row = Hashtbl.find_opt old_rows key in
          let plus = !plus and minus = !minus in
          match (old_row, spec.op) with
          | None, _ ->
            (* new group: the insertions are its whole raw content *)
            if minus <> [] then
              error "deletion from an absent group of %s (ivm bug)" pred;
            replace None (one_row (Agg.aggregate spec plus))
          | Some o, Agg.Count ->
            let n =
              match Tuple.get o ngroup with
              | Value.Int n -> n
              | v ->
                error "non-integer COUNT %a in %s (ivm bug)" Value.pp v pred
            in
            let n' = n + List.length plus - List.length minus in
            if n' < 0 then error "negative COUNT in %s (ivm bug)" pred;
            replace old_row
              (if n' = 0 then None
               else Some (Tuple.of_list (key @ [ Value.Int n' ])))
          | Some o, Agg.Sum ->
            if minus = [] then
              let s = List.fold_left Value.add (Tuple.get o ngroup) (vals plus) in
              replace old_row (Some (Tuple.of_list (key @ [ s ])))
            else Hashtbl.replace rescan key ()
          | Some o, (Agg.Min | Agg.Max) ->
            let bound = Tuple.get o ngroup in
            if List.exists (fun v -> Value.equal v bound) (vals minus) then
              (* bound violation: a deleted contribution witnessed it *)
              Hashtbl.replace rescan key ()
            else
              let bound' =
                List.fold_left
                  (fun b v -> if Agg.better spec.op v b then v else b)
                  bound (vals plus)
              in
              replace old_row (Some (Tuple.of_list (key @ [ bound' ]))))
        touched;
      if Hashtbl.length rescan > 0 then begin
        (* one pass over the surviving raw contributions, bucketed by
           violated group, then a from-scratch fold per group *)
        let buckets = Hashtbl.create 8 in
        Support.iter_pred view.supports rawp (fun t _ ->
            let k = gkey_raw t in
            if Hashtbl.mem rescan k then
              Hashtbl.replace buckets k
                (t :: Option.value (Hashtbl.find_opt buckets k) ~default:[]));
        Hashtbl.iter
          (fun key () ->
            let raws =
              Option.value (Hashtbl.find_opt buckets key) ~default:[]
            in
            replace (Hashtbl.find_opt old_rows key)
              (one_row (Agg.aggregate spec raws)))
          rescan
      end;
      commit_pred st pred ~net_plus:!net_plus ~net_minus:!net_minus;
      TS.cardinal !net_plus + TS.cardinal !net_minus)

(* DRed over one recursive component. *)
let dred_scc st s d_variants d_copies d_probes d_probe_copies =
  let observing = Obs.on () in
  (* --- over-deletion: everything whose derivation touched a deleted
     tuple, fixpointed against the pre-update store (which still holds
     every deleted tuple, so derivations using several are caught). *)
  let overdeleted : (string, TS.t ref) Hashtbl.t = Hashtbl.create 4 in
  let d_of pred =
    match Hashtbl.find_opt overdeleted pred with
    | Some r -> r
    | None ->
      let r = ref TS.empty in
      Hashtbl.replace overdeleted pred r;
      r
  in
  timed st.rp
    (Fmt.str "overdelete %s" (String.concat "," s.s_preds))
    (fun () ->
      let delta = ref st.dminus in
      let continue = ref true in
      while !continue do
        round st;
        let fresh = ref [] in
        let emitted = ref 0 in
        let emit head t =
          let d = d_of head in
          if Facts.mem st.pre head t && not (TS.mem t !d) then begin
            d := TS.add t !d;
            incr emitted;
            fresh := (head, t) :: !fresh
          end
        in
        (match par_domains (Facts.total !delta) with
        | 1 ->
          run_variants st
            ~ctx:(Engine.delta_ctx ~full:st.pre ~delta:!delta)
            ~delta:!delta d_variants emit
        | domains ->
          par_variants st ~domains ~variants:d_variants ~copies:d_copies
            ~ctx_of:(fun shard -> Engine.delta_ctx ~full:st.pre ~delta:shard)
            ~resolve:(fun name -> (st.pre, name))
            ~delta:!delta
            ~fold:(fun () h t -> emit h t)
            ~init:());
        delta :=
          List.fold_left
            (fun acc (p, t) -> Facts.add acc p t)
            (Facts.empty ()) !fresh;
        continue := !fresh <> []
      done;
      let total =
        Hashtbl.fold (fun _ r acc -> acc + TS.cardinal !r) overdeleted 0
      in
      if observing then
        Obs.Counter.add (Lazy.force m_overdeleted) total;
      total);
  (* --- rederivation: probe each casualty against the shrunken store
     (lower predicates at mid, this component minus the over-deletion);
     survivors re-enter immediately so later probes can lean on them. *)
  let work =
    ref
      (Hashtbl.fold
         (fun pred d acc -> Facts.remove_set acc pred !d)
         overdeleted st.mid)
  in
  let survivors = ref [] in
  timed st.rp
    (Fmt.str "rederive %s" (String.concat "," s.s_preds))
    (fun () ->
      let probes = ref 0 in
      let total_casualties =
        Hashtbl.fold (fun _ r acc -> acc + TS.cardinal !r) overdeleted 0
      in
      (match par_domains total_casualties with
      | 1 ->
        List.iter
          (fun (pred, rules) ->
            match Hashtbl.find_opt overdeleted pred with
            | None -> ()
            | Some d ->
              TS.iter
                (fun t ->
                  let derivable =
                    List.exists
                      (fun p ->
                        match p.p_match t with
                        | None -> false
                        | Some init ->
                          incr probes;
                          p.p_compiled.Engine.set_init init;
                          Ir.exists ~guard:st.guard (Engine.store_ctx !work)
                            p.p_compiled.Engine.pipeline)
                      rules
                  in
                  if derivable then begin
                    work := Facts.add !work pred t;
                    survivors := (pred, t) :: !survivors
                  end)
                !d)
          d_probes
      | domains ->
        (* Probe every casualty against the *frozen* shrunken store: a
           casualty the sequential path would rescue through an
           already-re-entered survivor is instead resurrected by the
           propagation pass below, so freezing loses no results.  Each
           shard probes through its own compiled copies — [set_init]
           mutates the probe's initial-row slot. *)
        let work0 = !work in
        let cas =
          Hashtbl.fold
            (fun pred d acc -> Facts.add_set acc pred !d)
            overdeleted (Facts.empty ())
        in
        let shards = Facts.partition ~shards:domains cas in
        List.iter
          (fun (name, positions) -> Facts.prewarm work0 name positions)
          (List.sort_uniq compare
             (List.concat_map
                (fun (_, rules) ->
                  List.concat_map
                    (fun p -> Ir.keyed_sources p.p_compiled.Engine.pipeline)
                    rules)
                d_probes));
        let pool = copies_get d_probe_copies (domains - 1) in
        let results =
          Par.map ~shards:domains
            ~on_first_error:(fun _ -> Guard.cancel st.guard)
            ~prefer:prefer_real
            (fun i ->
              let probe_list = if i = 0 then d_probes else pool.(i - 1) in
              let n = ref 0 in
              let out = ref [] in
              List.iter
                (fun (pred, rules) ->
                  TS.iter
                    (fun t ->
                      let derivable =
                        List.exists
                          (fun p ->
                            match p.p_match t with
                            | None -> false
                            | Some init ->
                              incr n;
                              p.p_compiled.Engine.set_init init;
                              Ir.exists ~guard:st.guard
                                (Engine.store_ctx work0)
                                p.p_compiled.Engine.pipeline)
                          rules
                      in
                      if derivable then out := (pred, t) :: !out)
                    (Facts.find shards.(i) pred))
                probe_list;
              (!n, List.rev !out))
        in
        Array.iter
          (fun (n, out) ->
            probes := !probes + n;
            List.iter
              (fun (pred, t) ->
                work := Facts.add !work pred t;
                survivors := (pred, t) :: !survivors)
              out)
          results);
      if observing then begin
        Obs.Counter.add (Lazy.force m_probes) !probes;
        Obs.Counter.add (Lazy.force m_rederived) (List.length !survivors)
      end;
      List.length !survivors);
  (* --- propagate survivors: a rederived tuple can resurrect further
     casualties; every emission still inside the over-deletion re-enters. *)
  timed st.rp
    (Fmt.str "propagate %s" (String.concat "," s.s_preds))
    (fun () ->
      let delta =
        ref
          (List.fold_left
             (fun acc (p, t) -> Facts.add acc p t)
             (Facts.empty ()) !survivors)
      in
      let resurrected = ref 0 in
      let continue = ref (Facts.total !delta > 0) in
      while !continue do
        round st;
        let w = !work in
        let fresh = ref [] in
        let emit head t =
          if
            (not (Facts.mem w head t))
            && not (List.exists (fun (p, u) -> p = head && Tuple.equal u t) !fresh)
          then fresh := (head, t) :: !fresh
        in
        (match par_domains (Facts.total !delta) with
        | 1 ->
          run_variants st
            ~ctx:(Engine.delta_ctx ~full:w ~delta:!delta)
            ~delta:!delta d_variants emit
        | domains ->
          par_variants st ~domains ~variants:d_variants ~copies:d_copies
            ~ctx_of:(fun shard -> Engine.delta_ctx ~full:w ~delta:shard)
            ~resolve:(fun name -> (w, name))
            ~delta:!delta
            ~fold:(fun () h t -> emit h t)
            ~init:());
        work :=
          List.fold_left (fun acc (p, t) -> Facts.add acc p t) !work !fresh;
        delta :=
          List.fold_left
            (fun acc (p, t) -> Facts.add acc p t)
            (Facts.empty ()) !fresh;
        resurrected := !resurrected + List.length !fresh;
        continue := !fresh <> []
      done;
      !resurrected);
  (* deletion-phase result per predicate: what stayed deleted *)
  let deleted =
    List.map
      (fun pred ->
        let d =
          match Hashtbl.find_opt overdeleted pred with
          | Some r -> !r
          | None -> TS.empty
        in
        (pred, TS.filter (fun t -> not (Facts.mem !work pred t)) d))
      s.s_preds
  in
  st.mid <-
    List.fold_left
      (fun acc (pred, gone) -> Facts.remove_set acc pred gone)
      st.mid deleted;
  (* --- insertion phase: semi-naive propagation of the lower components'
     net insertions; plain sources read post-update lower stores and the
     component's own evolving value. *)
  let added : (string, TS.t ref) Hashtbl.t = Hashtbl.create 4 in
  let a_of pred =
    match Hashtbl.find_opt added pred with
    | Some r -> r
    | None ->
      let r = ref TS.empty in
      Hashtbl.replace added pred r;
      r
  in
  (* the component's evolving store starts at its mid (deletion-phase)
     state; other predicates resolve against the global post store *)
  let work2 = ref st.mid in
  timed st.rp
    (Fmt.str "insert %s" (String.concat "," s.s_preds))
    (fun () ->
      let delta = ref st.dplus in
      let continue = ref (Facts.total !delta > 0) in
      let grown = ref 0 in
      while !continue do
        round st;
        let w2 = !work2 and post = st.post in
        let ctx_of dstore name =
          match Engine.split_delta name with
          | Some p -> Engine.store_extent ~label:name dstore p
          | None ->
            if SS.mem name s.s_set then Engine.store_extent w2 name
            else Engine.store_extent post name
        in
        let fresh = ref [] in
        let emit head t =
          if
            (not (Facts.mem w2 head t))
            && not (List.exists (fun (p, u) -> p = head && Tuple.equal u t) !fresh)
          then fresh := (head, t) :: !fresh
        in
        (match par_domains (Facts.total !delta) with
        | 1 -> run_variants st ~ctx:(ctx_of !delta) ~delta:!delta d_variants emit
        | domains ->
          par_variants st ~domains ~variants:d_variants ~copies:d_copies
            ~ctx_of
            ~resolve:(fun name ->
              if SS.mem name s.s_set then (w2, name) else (post, name))
            ~delta:!delta
            ~fold:(fun () h t -> emit h t)
            ~init:());
        List.iter
          (fun (p, t) ->
            let a = a_of p in
            a := TS.add t !a)
          !fresh;
        work2 :=
          List.fold_left (fun acc (p, t) -> Facts.add acc p t) !work2 !fresh;
        delta :=
          List.fold_left
            (fun acc (p, t) -> Facts.add acc p t)
            (Facts.empty ()) !fresh;
        grown := !grown + List.length !fresh;
        continue := !fresh <> []
      done;
      !grown);
  (* net deltas: a tuple deleted then re-inserted cancels out *)
  List.iter
    (fun pred ->
      let del = List.assoc pred deleted in
      let add_ =
        match Hashtbl.find_opt added pred with
        | Some r -> !r
        | None -> TS.empty
      in
      let net_minus = TS.diff del add_ and net_plus = TS.diff add_ del in
      commit_pred st pred ~net_plus ~net_minus)
    s.s_preds

let incremental_update view sccs updates =
  let guard = Guard.of_limits (Database.limits view.db) in
  let rp =
    {
      rp_view = view.name;
      rp_mode = "incremental";
      rp_base = List.map (fun (r, a, d) -> (r, List.length a, List.length d)) updates;
      rp_phases = [];
      rp_plus = 0;
      rp_minus = 0;
      rp_ms = 0.;
    }
  in
  let st =
    {
      pre = view.store;
      mid = view.store;
      post = view.store;
      dplus = Facts.empty ();
      dminus = Facts.empty ();
      guard;
      rp;
    }
  in
  (* seed with the base-relation net deltas *)
  List.iter
    (fun (rel, add_l, rem_l) ->
      let ad = TS.of_list add_l and rm = TS.of_list rem_l in
      st.dminus <- Facts.add_set st.dminus rel rm;
      st.dplus <- Facts.add_set st.dplus rel ad;
      st.mid <- Facts.remove_set st.mid rel rm;
      st.post <- Facts.add_set (Facts.remove_set st.post rel rm) rel ad)
    updates;
  List.iter
    (fun s ->
      match s.s_kind with
      | Counting { c_variants; c_copies; _ } ->
        counting_scc view st s c_variants c_copies
      | Dred { d_variants; d_copies; d_probes; d_probe_copies } ->
        dred_scc st s d_variants d_copies d_probes d_probe_copies
      | Agg_counting { a_spec; a_variants; a_copies; _ } ->
        agg_scc view st s a_spec a_variants a_copies)
    sccs;
  (* the [ivm.commit] failpoint moved to [Database.commit] — the single
     commit point that covers this update's publication *)
  rp.rp_plus <- Facts.cardinal st.dplus view.query_pred;
  rp.rp_minus <- Facts.cardinal st.dminus view.query_pred;
  view.store <- st.post;
  rp

let update view updates =
  let t0 = Obs.now_ms () in
  let rp =
    match view.status with
    | Stale ->
      (* an unmaintained update already desynchronized the view; stay
         stale and let the next serve refresh *)
      {
        rp_view = view.name;
        rp_mode = "stale";
        rp_base =
          List.map (fun (r, a, d) -> (r, List.length a, List.length d)) updates;
        rp_phases = [];
        rp_plus = 0;
        rp_minus = 0;
        rp_ms = 0.;
      }
    | Live -> (
      match view.plan with
      | Incremental sccs -> incremental_update view sccs updates
      | Recompute why ->
        let rp =
          {
            rp_view = view.name;
            rp_mode = Fmt.str "recompute: %s" why;
            rp_base =
              List.map
                (fun (r, a, d) -> (r, List.length a, List.length d))
                updates;
            rp_phases = [];
            rp_plus = 0;
            rp_minus = 0;
            rp_ms = 0.;
          }
        in
        let before = Facts.cardinal view.store view.query_pred in
        timed rp "refixpoint" (fun () ->
            refresh view;
            Facts.cardinal view.store view.query_pred - before);
        rp)
  in
  rp.rp_ms <- Obs.now_ms () -. t0;
  push_report rp;
  if Obs.on () then begin
    Obs.Counter.inc (Lazy.force m_updates);
    Obs.Histogram.observe (Lazy.force m_maintain_ms) rp.rp_ms;
    Obs.Histogram.observe
      (Lazy.force m_delta_in)
      (float_of_int
         (List.fold_left
            (fun n (_, a, d) -> n + List.length a + List.length d)
            0 updates));
    Obs.Counter.add (Lazy.force m_inserted) rp.rp_plus;
    Obs.Counter.add (Lazy.force m_deleted) rp.rp_minus
  end

(* ------------------------------------------------------------------ *)
(* Serving *)

let value view =
  if view.status = Stale then refresh view;
  Facts.to_relation view.def.Defs.con_result view.store view.query_pred

(* Does a constructor application match this view?  Same constructor,
   tuple-identical base, and each surface argument naming the same
   relation value / scalar the view was materialized over. *)
let matches view (def : Defs.constructor_def) base (args : Eval.arg_value list)
    =
  String.equal def.Defs.con_name view.con
  && (match Database.get view.db view.base with
     | rel -> Relation.compare_tuples rel base = 0
     | exception Database.Error _ -> false)
  && List.length args = List.length view.args
  && List.for_all2
       (fun a v ->
         match (a, v) with
         | Ast.Arg_scalar (Ast.Const c), Eval.V_scalar w -> Value.equal c w
         | Ast.Arg_range (Ast.Rel n), Eval.V_rel r -> (
           match Database.get view.db n with
           | rel -> Relation.compare_tuples rel r = 0
           | exception Database.Error _ -> false)
         | _ -> false)
       view.args args

(* ------------------------------------------------------------------ *)
(* Materialization *)

let translate_ctx db =
  {
    Translate.lookup_constructor = Database.constructor db;
    schema_of =
      (fun n ->
        match Database.get db n with
        | r -> Some (Relation.schema r)
        | exception Database.Error _ -> None);
  }

let maintainer_of view =
  {
    Database.mt_name = view.name;
    mt_depends = view.depends;
    mt_serve =
      (fun def base args ->
        if matches view def base args then Some (value view) else None);
    mt_update = (fun updates -> update view updates);
    mt_invalidate = (fun () -> view.status <- Stale);
    mt_snapshot =
      (fun () ->
        let store = view.store and status = view.status in
        let restore_supports = Support.snapshot view.supports in
        fun () ->
          view.store <- store;
          view.status <- status;
          restore_supports ());
    mt_stale = (fun () -> view.status = Stale);
    mt_freeze =
      (fun () ->
        (* Publish-time capture for snapshot readers.  A stale view has
           no trustworthy extent and must not refresh here (freezing
           happens inside the commit path), so it declines and readers
           fall back to the fixpoint.  For a Live view, resolve the
           base/argument relation values NOW — [matches]-style name
           lookups at serve time would race with later commits — and
           serve pure comparisons over a frozen store copy. *)
        match view.status with
        | Stale -> None
        | Live -> (
          let resolve name =
            match Database.get view.db name with
            | rel -> Some rel
            | exception Database.Error _ -> None
          in
          let arg_vals =
            List.map
              (function
                | Ast.Arg_scalar (Ast.Const c) -> Some (Eval.V_scalar c)
                | Ast.Arg_range (Ast.Rel n) ->
                  Option.map (fun r -> Eval.V_rel r) (resolve n)
                | _ -> None)
              view.args
          in
          match (resolve view.base, List.for_all Option.is_some arg_vals) with
          | Some base_rel, true ->
            let arg_vals = List.map Option.get arg_vals in
            let store = Facts.freeze view.store in
            let con = view.con
            and result_schema = view.def.Defs.con_result
            and query_pred = view.query_pred in
            Some
              (fun (def : Defs.constructor_def) base args ->
                if
                  String.equal def.Defs.con_name con
                  && Relation.compare_tuples base_rel base = 0
                  && List.length args = List.length arg_vals
                  && List.for_all2
                       (fun v w ->
                         match (v, w) with
                         | Eval.V_scalar a, Eval.V_scalar b -> Value.equal a b
                         | Eval.V_rel a, Eval.V_rel b ->
                           Relation.compare_tuples a b = 0
                         | _ -> false)
                       arg_vals args
                then Some (Facts.to_relation result_schema store query_pred)
                else None)
          | _ -> None));
  }

let materialize db ~constructor ~base ~args =
  let def =
    match Database.constructor db constructor with
    | Some d -> d
    | None -> error "unknown constructor %s" constructor
  in
  let range = Ast.Construct (Ast.Rel base, constructor, args) in
  (try Database.check_query db range with
  | Database.Error msg | Typecheck.Error msg -> error "MATERIALIZE: %s" msg);
  let program, query_pred, aggs =
    try Translate.of_application_full (translate_ctx db) range
    with Translate.Unsupported msg ->
      error "MATERIALIZE %s: not translatable to the Horn fragment (%s)"
        constructor msg
  in
  let depends = SS.elements (Syntax.edb_preds program) in
  let view =
    {
      db;
      name = query_pred;
      con = constructor;
      base;
      args;
      def;
      program;
      aggs;
      query_pred;
      depends;
      plan = compile_plan ~aggs program;
      supports = Support.create ();
      store = Facts.empty ();
      status = Stale;
    }
  in
  refresh view;
  (* track before registering: registration commits, and a durability
     hook checkpointing inside that commit must already see the view *)
  track view;
  (try Database.register_maintainer db (maintainer_of view)
   with e ->
     untrack view;
     raise e);
  if Obs.on () then Obs.Gauge.add (Lazy.force g_views) 1.;
  view

let unregister view =
  (* untrack first, same reason: the unregistration commit's checkpoint
     must no longer include the view *)
  untrack view;
  (try Database.unregister_maintainer view.db view.name
   with e ->
     track view;
     raise e);
  if Obs.on () then Obs.Gauge.add (Lazy.force g_views) (-1.)

let cardinal view = Facts.cardinal view.store view.query_pred

(* ------------------------------------------------------------------ *)
(* Checkpoint dump / restore (the durability layer's view of a view) *)

type dump = {
  dp_con : string;
  dp_base : string;
  dp_args : Ast.arg list;
  dp_stale : bool;
  dp_store : (string * Tuple.t list) list;
  dp_supports : (string * (Tuple.t * int) list) list;
}

let support_counts view = Support.dump view.supports

let dump view =
  {
    dp_con = view.con;
    dp_base = view.base;
    dp_args = view.args;
    dp_stale = (view.status = Stale);
    dp_store =
      List.map
        (fun p -> (p, TS.elements (Facts.find view.store p)))
        (List.sort String.compare (Facts.preds view.store));
    dp_supports = Support.dump view.supports;
  }

(* Rebuild a view from its checkpointed state: recompile the plan from
   the catalog (the definitions must already be restored into [db]), then
   adopt the dumped store, derivation counts, and staleness verbatim —
   no refresh, no refixpoint.  The WAL replay that follows drives the
   normal maintainer path, so recovery exercises exactly the machinery a
   live update stream does. *)
let restore db d =
  let def =
    match Database.constructor db d.dp_con with
    | Some def -> def
    | None -> error "restore: unknown constructor %s" d.dp_con
  in
  let range = Ast.Construct (Ast.Rel d.dp_base, d.dp_con, d.dp_args) in
  let program, query_pred, aggs =
    try Translate.of_application_full (translate_ctx db) range
    with Translate.Unsupported msg ->
      error "restore %s: not translatable (%s)" d.dp_con msg
  in
  let view =
    {
      db;
      name = query_pred;
      con = d.dp_con;
      base = d.dp_base;
      args = d.dp_args;
      def;
      program;
      aggs;
      query_pred;
      depends = SS.elements (Syntax.edb_preds program);
      plan = compile_plan ~aggs program;
      supports = Support.create ();
      store =
        List.fold_left
          (fun acc (p, ts) -> Facts.add_set acc p (TS.of_list ts))
          (Facts.empty ()) d.dp_store;
      status = (if d.dp_stale then Stale else Live);
    }
  in
  List.iter
    (fun (pred, rows) ->
      List.iter (fun (t, n) -> Support.set view.supports pred t n) rows)
    d.dp_supports;
  track view;
  (try Database.register_maintainer db (maintainer_of view)
   with e ->
     untrack view;
     raise e);
  if Obs.on () then Obs.Gauge.add (Lazy.force g_views) 1.;
  view
