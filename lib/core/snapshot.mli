(** An immutable, published database state.

    A snapshot is what a reader session holds: persistent relation
    bindings, the catalog, the evaluation configuration, one frozen
    serve closure per Live maintained view, and a frozen index cache of
    prewarmed access paths.  Snapshots are safe to query concurrently
    from any number of threads while the writer publishes successors;
    {!Database.snapshot} returns the latest published one. *)

open Dc_relation
open Dc_calculus
module SM : Map.S with type key = string

type frozen_serve =
  Defs.constructor_def -> Relation.t -> Eval.arg_value list -> Relation.t option
(** Answer a constructor application from a frozen view extent, or
    decline with [None]. *)

type frozen_view = {
  fv_name : string;
  fv_stale : bool;
  fv_serve : frozen_serve option;  (** [None] iff the view was stale *)
}

type t = {
  version : int;  (** monotone: one publication per commit *)
  rels : Relation.t SM.t;
  selectors : Defs.selector_def SM.t;
  constructors : Defs.constructor_def SM.t;
  strategy : Fixpoint.strategy;
  max_rounds : int;
  limits : Dc_guard.Guard.limits;
  views : frozen_view list;
  icache : Index_cache.t;  (** frozen; prewarmed access paths *)
  durable : int option;
      (** LSN of the last durable WAL record / checkpoint covering this
          state; [None] without an attached write-ahead log *)
}

val version : t -> int

val durable_lsn : t -> int option
(** Durability watermark at publication ([None] = no WAL attached). *)

val relation_count : t -> int
val relation_names : t -> string list
val get : t -> string -> Relation.t option
val view_names : t -> string list

val stale_views : t -> string list
(** Maintained views that were stale at publication: a reader querying
    them re-runs the fixpoint against snapshot relations instead of
    being served from a frozen extent (correct, slower). *)

val typecheck_env : t -> Typecheck.env

val eval_env : ?guard:Dc_guard.Guard.t -> t -> Eval.env
(** Evaluation environment resolving entirely inside the snapshot:
    constructor applications are served from frozen view extents when
    one matches and otherwise run a fixpoint over snapshot values; the
    per-evaluation index cache borrows the snapshot's frozen prewarmed
    indexes read-only.  [guard] defaults to a fresh guard over the
    snapshot's limits. *)

val check_query : t -> Ast.range -> unit

val query : ?guard:Dc_guard.Guard.t -> t -> Ast.range -> Relation.t
(** Typecheck and evaluate against the frozen state.  Thread-safe:
    concurrent [query] calls on one snapshot share only immutable or
    frozen structure.
    @raise Dc_guard.Guard.Exhausted when a limit trips. *)

val pp_summary : t Fmt.t
(** One-line [version/relations/views/staleness] summary (SHOW
    SNAPSHOT). *)
