(* Least-fixpoint semantics of constructor application (paper §3.2).

   Given an application  Actrel{c(args)}, we collect the system of all
   (possibly mutually recursive) constructor applications reachable from it,
   close each definition over its actual base relation and arguments to
   obtain functions  g_1 ... g_l, and iterate

     apply_i^0     = {}                         (i = 1 .. l)
     apply_i^(k+1) = g_i (apply_1^k, ..., apply_l^k)

   until  apply_i^(k+1) = apply_i^k  for every i (Jacobi iteration, exactly
   as in the paper's REPEAT loops).  For positive (hence monotone) systems
   over finite domains the limit exists and is reached after finitely many
   steps [Tars 55], and equals the least fixpoint of the equation system.

   Applications are discovered dynamically: the first time an evaluation
   resolves  Base{c(vs)}  for a not-yet-registered key (constructor name,
   base relation value, argument values), the key is registered at bottom
   and joins the iterated vector from the next round on.

   Two strategies are provided:
   - [Naive]: re-evaluate every g_i from scratch each round;
   - [Seminaive]: differential evaluation.  For definitions whose recursive
     occurrences all appear as top-level binder ranges with construct-free
     bases/arguments (every example in the paper qualifies), each round
     evaluates, per branch and per recursive binder occurrence, a variant
     with that occurrence bound to the previous round's delta and all other
     occurrences bound to the previous full value.  Definitions outside this
     class silently fall back to naive re-evaluation (soundness first).

   Non-monotone systems (only reachable with positivity checking turned
   off, §3.3) are guarded by a convergence fuse: oscillation of period two
   — the behaviour of the paper's "nonsense" constructor — is detected and
   reported as [Divergence]. *)

open Dc_relation
open Dc_calculus
module Guard = Dc_guard.Guard
module Obs = Dc_obs.Obs
module Par = Dc_par.Par

exception Divergence of string

let divergence fmt = Fmt.kstr (fun s -> raise (Divergence s)) fmt

type strategy =
  | Naive
  | Seminaive

type stats = {
  mutable rounds : int; (* fixpoint iterations until convergence *)
  mutable applications : int; (* size l of the application system *)
  mutable body_evaluations : int; (* branch-evaluation passes performed *)
  mutable tuples_produced : int; (* sum of delta sizes over all rounds *)
  mutable tuples_derived : int; (* tuples computed incl. rediscoveries *)
  mutable round_deltas : int list; (* new tuples per round, latest first *)
  mutable round_times : float list; (* wall ms per round, latest first *)
}

let fresh_stats () =
  {
    rounds = 0;
    applications = 0;
    body_evaluations = 0;
    tuples_produced = 0;
    tuples_derived = 0;
    round_deltas = [];
    round_times = [];
  }

(* Registry instruments (lazy: looked up once, shared by every run).
   Counters/histograms only ever grow; the two gauges mirror the live
   database state and are restored on an aborted [apply] so SHOW METRICS
   stays consistent with the journaled index-cache rollback. *)
let m_rounds = lazy (Obs.Counter.make "dc_fixpoint_rounds_total")
let m_round_ms = lazy (Obs.Histogram.make "dc_fixpoint_round_ms")
let m_round_delta = lazy (Obs.Histogram.make "dc_fixpoint_round_delta")
let g_apps = lazy (Obs.Gauge.make "dc_fixpoint_applications")
let g_tuples = lazy (Obs.Gauge.make "dc_fixpoint_tuples")

let pp_stats ppf s =
  Fmt.pf ppf "rounds=%d apps=%d body_evals=%d tuples=%d derived=%d" s.rounds
    s.applications s.body_evaluations s.tuples_produced s.tuples_derived

(* ------------------------------------------------------------------ *)
(* Application keys: constructor name + base value + argument values. *)

module Key = struct
  type t = {
    con : string;
    base : Relation.t;
    args : Eval.arg_value list;
  }

  let compare_arg a b =
    match a, b with
    | Eval.V_scalar x, Eval.V_scalar y -> Value.compare x y
    | Eval.V_rel x, Eval.V_rel y -> Relation.compare_tuples x y
    | Eval.V_scalar _, Eval.V_rel _ -> -1
    | Eval.V_rel _, Eval.V_scalar _ -> 1

  let compare a b =
    let c = String.compare a.con b.con in
    if c <> 0 then c
    else
      let c = Relation.compare_tuples a.base b.base in
      if c <> 0 then c else List.compare compare_arg a.args b.args
end

module KM = Map.Make (Key)
module KS = Set.Make (Key)

(* A registered application: its definition, the environment in which its
   body is evaluated (formal and parameters bound), and the compiled
   semi-naive shape. *)
type app = {
  key : Key.t;
  def : Defs.constructor_def;
  base_env : Eval.env;
  shape : shape;
}

(* Semi-naive shape of a definition body:
   [Diffable]: every Construct occurrence is a top-level binder range with
   construct-free base/args.  Branches without recursive occurrences are
   constant (they contribute only to the first evaluation); recursive
   branches carry the positions of their construct binders, one delta
   variant per position and round.  [Opaque]: anything else; evaluated
   naively every round. *)
and shape =
  | Diffable of rec_branch list (* recursive branches only *)
  | Opaque

and rec_branch = {
  rb_branch : Ast.branch;
  rb_construct_binders : int list;
}

(* Does a range contain any constructor application? *)
let rec has_construct = function
  | Ast.Rel _ -> false
  | Ast.Construct _ -> true
  | Ast.Select (r, _, args) -> has_construct r || List.exists arg_has args
  | Ast.Comp bs ->
    List.exists
      (fun (b : Ast.branch) ->
        List.exists (fun (_, r) -> has_construct r) b.binders
        || formula_has b.where)
      bs

and arg_has = function
  | Ast.Arg_scalar _ -> false
  | Ast.Arg_range r -> has_construct r

and formula_has = function
  | Ast.True | Ast.False | Ast.Cmp _ -> false
  | Ast.Not f -> formula_has f
  | Ast.And (a, b) | Ast.Or (a, b) -> formula_has a || formula_has b
  | Ast.Some_in (_, r, f) | Ast.All_in (_, r, f) ->
    has_construct r || formula_has f
  | Ast.In_rel (_, r) | Ast.Member (_, r) -> has_construct r

(* Positions of diffable construct binders in a branch, or None if the
   branch falls outside the semi-naive class. *)
let classify_branch (b : Ast.branch) =
  let ok = ref (not (formula_has b.where)) in
  let positions =
    List.mapi
      (fun i (_, r) ->
        match r with
        | Ast.Construct (base, _, args) ->
          if has_construct base || List.exists arg_has args then ok := false;
          Some i
        | r ->
          if has_construct r then ok := false;
          None)
      b.binders
    |> List.filter_map Fun.id
  in
  if !ok then Some positions else None

let classify_body (branches : Ast.branch list) =
  let rec loop recursive = function
    | [] -> Diffable (List.rev recursive)
    | b :: rest -> (
      match classify_branch b with
      | None -> Opaque
      | Some [] -> loop recursive rest (* constant branch *)
      | Some positions ->
        loop ({ rb_branch = b; rb_construct_binders = positions } :: recursive)
          rest)
  in
  loop [] branches

(* ------------------------------------------------------------------ *)
(* Engine state *)

type state = {
  mutable apps : app KM.t;
  mutable order : Key.t list; (* registration order (stable iteration) *)
  mutable full : Relation.t KM.t;
  mutable delta : Relation.t KM.t;
  mutable initialized : KS.t; (* apps whose first full evaluation is done *)
  mutable discovered_this_round : bool;
  mutable saw_shrink : bool; (* a value shrank: non-monotone system *)
  strategy : strategy;
  max_rounds : int;
  guard : Guard.t;
  stats : stats;
  lookup_constructor : string -> Defs.constructor_def option;
  domains : int; (* parallelism degree for Diffable variant evaluation *)
  worker_caches : Index_cache.t array;
      (* one private index cache per pool worker (length domains - 1);
         fresh per [apply], so an aborted expansion just discards them —
         only the caller's shared cache needs transactional rollback *)
}

let find_def st c =
  match st.lookup_constructor c with
  | Some d -> d
  | None -> Eval.runtime_error "unknown constructor %s" c

(* Build the body-evaluation environment for an application: formal bound
   to the base value, parameters bound to the argument values, outer tuple
   variables dropped. *)
let app_env env (def : Defs.constructor_def) base args =
  if List.length args <> List.length def.con_params then
    Eval.runtime_error "constructor %s expects %d argument(s), got %d"
      def.con_name
      (List.length def.con_params)
      (List.length args);
  (* Actual base and relation arguments are viewed at the formal types, so
     the body's attribute names resolve regardless of the actual names. *)
  let env =
    Eval.bind_rel (Eval.clear_vars env) def.con_formal
      (Relation.with_schema def.con_formal_schema base)
  in
  List.fold_left2
    (fun env param arg ->
      match param, arg with
      | Defs.Scalar_param (n, _), Eval.V_scalar v -> Eval.bind_scalar env n v
      | Defs.Rel_param (n, schema), Eval.V_rel r ->
        Eval.bind_rel env n (Relation.with_schema schema r)
      | Defs.Scalar_param (n, _), Eval.V_rel _ ->
        Eval.runtime_error "constructor %s: parameter %s expects a scalar"
          def.con_name n
      | Defs.Rel_param (n, _), Eval.V_scalar _ ->
        Eval.runtime_error "constructor %s: parameter %s expects a relation"
          def.con_name n)
    env def.con_params args

let register st env (def : Defs.constructor_def) base args =
  let key = { Key.con = def.con_name; base; args } in
  match KM.find_opt key st.apps with
  | Some app -> app
  | None ->
    let base_env = app_env env def base args in
    let shape =
      match st.strategy with
      | Naive -> Opaque
      | Seminaive -> classify_body def.con_body
    in
    let app = { key; def; base_env; shape } in
    st.apps <- KM.add key app st.apps;
    st.order <- st.order @ [ key ];
    st.full <- KM.add key (Relation.empty def.con_result) st.full;
    st.delta <- KM.add key (Relation.empty def.con_result) st.delta;
    st.discovered_this_round <- true;
    st.stats.applications <- st.stats.applications + 1;
    if Obs.on () then Obs.Gauge.add (Lazy.force g_apps) 1.;
    app

(* Hooks installed while evaluating bodies: selector applications filter;
   constructor applications resolve to the previous round's full value,
   registering unseen keys at bottom. *)
let engine_hooks st base_hooks =
  {
    base_hooks with
    Eval.on_select = (fun env base def args -> Selector.apply env def base args);
    Eval.on_construct =
      (fun env base def args ->
        let app = register st env def base args in
        KM.find app.key st.full);
  }

let with_engine_hooks st (env : Eval.env) =
  { env with Eval.hooks = engine_hooks st env.Eval.hooks }

(* Resolve the key a Construct binder refers to, evaluating its base and
   arguments under the engine (previous-round values). *)
let key_of_construct st env = function
  | Ast.Construct (base_range, c, args) ->
    let base = Eval.eval_range env base_range in
    let def = find_def st c in
    let arg_values = Eval.eval_args env args in
    (register st env def base arg_values).key
  | r ->
    Eval.runtime_error "not a constructor application: %a" Ast.pp_range r

(* Scope trace entries to the application under evaluation, so EXPLAIN
   groups the recorded pipelines per constructor. *)
let traced (env : Eval.env) (app : app) f =
  match env.Eval.trace with
  | Some tr ->
    Dc_exec.Ir.Trace.scoped tr (Fmt.str "fixpoint %s" app.def.con_name) f
  | None -> f ()

(* Naive evaluation of one application's whole body. *)
let eval_full st app =
  let env = with_engine_hooks st app.base_env in
  st.stats.body_evaluations <-
    st.stats.body_evaluations + List.length app.def.con_body;
  traced env app (fun () ->
      Eval.eval_comp ~schema:app.def.con_result env app.def.con_body)

(* Main-domain half of one semi-naive variant: resolve the construct
   binders' keys (this may [register] new applications — all state
   mutation stays here), bind the non-delta occurrences to their full
   values, and rewrite the branch so every construct binder ranges over a
   synthetic [__fix_N] relation name.  The delta occurrence is left as a
   named hole: the caller binds it to the whole delta (sequential) or to
   one hash shard per domain (parallel). *)
let prep_variant st app (rb : rec_branch) delta_pos =
  let env = ref (with_engine_hooks st app.base_env) in
  let counter = ref 0 in
  let hole = ref None in
  let binders =
    List.mapi
      (fun i (v, r) ->
        if List.mem i rb.rb_construct_binders then begin
          let key = key_of_construct st !env r in
          let name = Fmt.str "__fix_%d" !counter in
          incr counter;
          if i = delta_pos then hole := Some (name, KM.find key st.delta)
          else env := Eval.bind_rel !env name (KM.find key st.full);
          (v, Ast.Rel name)
        end
        else (v, r))
      rb.rb_branch.binders
  in
  let dname, drel =
    match !hole with
    | Some h -> h
    | None -> Eval.runtime_error "delta position is not a construct binder"
  in
  (!env, { rb.rb_branch with binders }, dname, drel)

(* Shard the variant's delta across the domain pool?  Only when a degree
   is configured, the delta amortizes the partition/merge barrier, and
   nothing forces single-domain execution (EXPLAIN traces and the
   per-row profiler keep global state; a nested fixpoint on a worker
   domain just runs inline). *)
let par_ok st (app : app) drel =
  st.domains > 1
  && Domain.is_main_domain ()
  && app.base_env.Eval.trace = None
  && (not !Dc_exec.Ir.profiling)
  && Relation.cardinal drel >= Par.seq_cutoff ()

let prefer_real = function
  | Guard.Exhausted (Guard.Cancelled, _) -> false
  | _ -> true

(* One semi-naive variant: branch [rb] with the construct binder at
   [delta_pos] bound to the delta of its key, the others to full.

   Parallel case: the delta is hash-partitioned, each domain evaluates
   the branch over its shard — probing the *frozen* full values through
   its private index cache — into a private output relation, and the
   barrier unions the outputs (set union, so cross-shard duplicates
   collapse; [classify_branch] guarantees the body is construct-free, so
   workers never touch engine state). *)
let eval_variant st app (rb : rec_branch) delta_pos acc =
  let env, branch, dname, drel = prep_variant st app rb delta_pos in
  st.stats.body_evaluations <- st.stats.body_evaluations + 1;
  let emit acc t = Relation.add_unchecked t acc in
  if not (par_ok st app drel) then
    let env = Eval.bind_rel env dname drel in
    traced env app (fun () -> Eval.eval_branch env branch ~emit acc)
  else begin
    let shards = Relation.partition_hash ~shards:st.domains drel in
    let schema = app.def.con_result in
    let outs =
      Par.map ~shards:st.domains
        ~on_first_error:(fun _ -> Guard.cancel st.guard)
        ~prefer:prefer_real
        (fun i ->
          let env = Eval.bind_rel env dname shards.(i) in
          let env =
            if i = 0 then env
            else { env with Eval.icache = st.worker_caches.(i - 1) }
          in
          Eval.eval_branch env branch ~emit (Relation.empty schema))
    in
    let t_merge = Obs.now_ms () in
    let merged = Array.fold_left Relation.union acc outs in
    if Obs.on () then
      Par.observe_round
        ~shard_sizes:(Array.map Relation.cardinal shards)
        ~merge_ms:(Obs.now_ms () -. t_merge);
    merged
  end

(* Advance every distinct per-evaluation index cache reachable from the
   registered applications.  The base environments usually all share the
   caller's cache object (environment derivation copies the field), so
   physical dedup keeps each index from being extended twice. *)
let advance_caches st ~old_rel ~delta ~next =
  let seen = ref [] in
  KM.iter
    (fun _ app ->
      let c = app.base_env.Eval.icache in
      if not (List.memq c !seen) then begin
        seen := c :: !seen;
        Index_cache.advance c ~old_rel ~delta ~next
      end)
    st.apps;
  (* Worker caches advance too, or each parallel round would rebuild the
     full-value indexes from scratch (the new full value is a fresh
     physical record every round).  Safe outside the caller's cache
     transaction: the worker caches live and die with this [apply]. *)
  Array.iter
    (fun c -> Index_cache.advance c ~old_rel ~delta ~next)
    st.worker_caches

(* One Jacobi round over the applications registered at round start.
   Evaluations read the previous round's [st.full]/[st.delta]; updates are
   applied at the end (new registrations during the round keep their bottom
   entries and are evaluated from the next round on).  Returns whether any
   value changed. *)
let round st =
  let changed = ref false in
  let round_delta = ref 0 in
  let keys = st.order in
  let updates =
    List.map
      (fun key ->
        let app = KM.find key st.apps in
        let full = KM.find key st.full in
        let new_value, delta =
          match app.shape with
          | Opaque ->
            let v = eval_full st app in
            st.stats.tuples_derived <-
              st.stats.tuples_derived + Relation.cardinal v;
            (v, Relation.diff v full)
          | Diffable _ when not (KS.mem key st.initialized) ->
            let v = eval_full st app in
            st.stats.tuples_derived <-
              st.stats.tuples_derived + Relation.cardinal v;
            (v, Relation.diff v full)
          | Diffable recursive_branches ->
            (* accumulate only fresh tuples: diffing the (small) variant
               output against the full value beats diffing two full-size
               relations every round *)
            let fresh =
              List.fold_left
                (fun acc rb ->
                  List.fold_left
                    (fun acc pos -> eval_variant st app rb pos acc)
                    acc rb.rb_construct_binders)
                (Relation.empty app.def.con_result)
                recursive_branches
            in
            st.stats.tuples_derived <-
              st.stats.tuples_derived + Relation.cardinal fresh;
            let delta = Relation.diff fresh full in
            (Relation.union full delta, delta)
        in
        let monotone =
          match app.shape with
          | Opaque ->
            (* possibly non-monotone: watch for shrinking values *)
            let grew = Relation.subset full new_value in
            if not grew then st.saw_shrink <- true;
            if not (Relation.equal new_value full) then changed := true;
            grew
          | Diffable _ ->
            if not (Relation.is_empty delta) then changed := true;
            true
        in
        st.stats.tuples_produced <-
          st.stats.tuples_produced + Relation.cardinal delta;
        round_delta := !round_delta + Relation.cardinal delta;
        (key, new_value, delta, monotone))
      keys
  in
  List.iter
    (fun (key, v, d, monotone) ->
      if !Guard.Failpoint.armed then
        Guard.Failpoint.hit ~guard:st.guard "fixpoint.commit";
      (* Delta-advance the cached access paths before the old full value
         becomes unreachable: every index built on it is extended with the
         round's delta and re-keyed to the new value, so next round's
         evaluations hit warm indexes.  Sound only for monotone updates
         (v = old ∪ d); shrinking Opaque values just fall out of the
         cache and are rebuilt. *)
      (if monotone then
         let old_rel = KM.find key st.full in
         advance_caches st ~old_rel ~delta:d ~next:v);
      st.initialized <- KS.add key st.initialized;
      st.full <- KM.add key v st.full;
      st.delta <- KM.add key d st.delta)
    updates;
  st.stats.round_deltas <- !round_delta :: st.stats.round_deltas;
  !changed

(* Run to convergence from the current state. *)
let run st root_key =
  (* Period-2 oscillation detection for unchecked non-monotone systems
     (only armed once a value has shrunk — monotone systems never do). *)
  let prev2 = ref None in
  let rec loop () =
    if st.stats.rounds >= st.max_rounds then
      divergence "no fixpoint after %d rounds (max_rounds exceeded)"
        st.max_rounds;
    Guard.round st.guard ~site:"fixpoint.round";
    let before = st.full in
    st.discovered_this_round <- false;
    let observing = Obs.on () in
    let t0 = if observing then Obs.now_ms () else 0. in
    let changed = round st in
    if observing then begin
      let dt = Obs.now_ms () -. t0 in
      st.stats.round_times <- dt :: st.stats.round_times;
      let delta =
        match st.stats.round_deltas with d :: _ -> d | [] -> 0
      in
      Obs.Counter.inc (Lazy.force m_rounds);
      Obs.Histogram.observe (Lazy.force m_round_ms) dt;
      Obs.Histogram.observe (Lazy.force m_round_delta) (float_of_int delta);
      Obs.Gauge.add (Lazy.force g_tuples) (float_of_int delta)
    end;
    st.stats.rounds <- st.stats.rounds + 1;
    if changed || st.discovered_this_round then begin
      if st.saw_shrink then begin
        (match !prev2 with
        | Some older when KM.equal Relation.equal older st.full ->
          divergence
            "constructor system oscillates with period 2 (non-monotone \
             definition, cf. the 'nonsense' example of paper 3.3)"
        | _ -> ());
        prev2 := Some before
      end;
      loop ()
    end
  in
  loop ();
  KM.find root_key st.full

(* ------------------------------------------------------------------ *)
(* Public entry points *)

let default_max_rounds = 100_000

(* Apply constructor [def] to [base] with [args]; the full §3.2 system is
   discovered and iterated.  [env] supplies global relations plus selector
   and constructor definitions (through its hooks' lookups).

   [seed], when given, starts the root application's iteration from that
   value instead of bottom.  This implements incremental maintenance of a
   materialized constructed relation under base insertions ([ShTZ 84], the
   access-path maintenance the paper's §4 refers to): for a monotone
   system, the inflationary iteration converges to the least fixpoint from
   any point below it, and the previous value of the application is below
   the new fixpoint whenever the base only grew.  Seeding an unrelated or
   shrunken base is unsound — the caller guarantees growth. *)
let apply ?(strategy = Seminaive) ?(max_rounds = default_max_rounds) ?guard
    ?stats ?seed ?seed_delta ?domains env (def : Defs.constructor_def) base
    args =
  let stats = Option.value stats ~default:(fresh_stats ()) in
  let domains =
    match domains with Some d -> max 1 d | None -> Par.domains ()
  in
  (* The governor defaults to the environment's own guard, so a limited
     Database evaluation bounds its constructor expansions without every
     hook having to thread the guard explicitly. *)
  let guard = Option.value guard ~default:env.Eval.guard in
  let env = if guard == env.Eval.guard then env else Eval.with_guard env guard in
  let st =
    {
      apps = KM.empty;
      order = [];
      full = KM.empty;
      delta = KM.empty;
      initialized = KS.empty;
      discovered_this_round = false;
      saw_shrink = false;
      strategy;
      max_rounds;
      guard;
      stats;
      lookup_constructor = env.Eval.hooks.Eval.constructor_def;
      domains;
      worker_caches =
        Array.init (max 0 (domains - 1)) (fun _ -> Index_cache.create ());
    }
  in
  (* Snapshot the live gauges before this application registers anything:
     an aborted expansion rolls the database back (index-cache journal
     below), so the gauges must roll back with it or SHOW METRICS after a
     [Guard.Exhausted] trip would report tuples the database no longer
     holds (satellite fix of issue 4). *)
  let restore_gauges =
    if not (Obs.on ()) then Fun.id
    else begin
      let apps0 = Obs.Gauge.value (Lazy.force g_apps) in
      let tuples0 = Obs.Gauge.value (Lazy.force g_tuples) in
      fun () ->
        Obs.Gauge.set (Lazy.force g_apps) apps0;
        Obs.Gauge.set (Lazy.force g_tuples) tuples0
    end
  in
  try
  let app = register st env def base args in
  (match seed with
  | Some value ->
    st.full <-
      KM.add app.key (Relation.with_schema def.con_result value) st.full
  | None -> ());
  (match seed_delta with
  | Some delta ->
    (* fully incremental start: the first round runs only the delta
       variants over the supplied delta instead of a whole-body pass —
       the caller certifies that [seed] ∪ [delta] accounts for every
       derivation whose consequences do not involve [delta] *)
    let delta = Relation.with_schema def.con_result delta in
    st.full <-
      KM.add app.key (Relation.union (KM.find app.key st.full) delta) st.full;
    st.delta <- KM.add app.key delta st.delta;
    st.initialized <- KS.add app.key st.initialized
  | None -> ());
  (* Atomicity of constructor expansion: the rounds mutate the shared
     index cache in place ([advance_caches]); if any guard, failpoint, or
     evaluation error aborts the fixpoint, the cache transaction rolls
     every such mutation back, so callers observe all-or-nothing. *)
  Index_cache.protect env.Eval.icache (fun () -> run st app.key)
  with e ->
    restore_gauges ();
    raise e

(* The delta-state reuse entry point: continue a converged fixpoint from
   its previous value after the base grew.  [delta], when known, restarts
   in fully incremental mode (first round runs only the delta variants);
   without it the first round re-evaluates bodies against [previous] and
   convergence is usually immediate.  The maintenance subsystems
   ([Dc_ivm], [Dc_compile.Materialize]) call this instead of spelling the
   seeding contract out at every site. *)
let resume ?strategy ?max_rounds ?guard ?stats ~previous ?delta env def base
    args =
  apply ?strategy ?max_rounds ?guard ?stats ~seed:previous ?seed_delta:delta
    env def base args
