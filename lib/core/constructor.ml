(* Ready-made constructor definitions: the paper's running examples (§2.3,
   §3.1, §3.3) plus generic recursion patterns used by tests and benches.

   All builders produce plain {!Dc_calculus.Defs.constructor_def} values;
   nothing here extends the semantics. *)

open Dc_relation
open Dc_calculus
open Ast

let binary_schema ?(a = "src") ?(b = "dst") ty =
  Schema.make [ (a, ty); (b, ty) ]

(* ------------------------------------------------------------------ *)
(* Transitive closure (the generalized "ahead" of §3.1):

   CONSTRUCTOR tc FOR Rel: binrel (): binrel;
   BEGIN EACH r IN Rel: TRUE,
         <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel{tc}:
           f.dst = b.src
   END tc

   [linear] selects where the recursive occurrence sits:
   - `Right : pairs join Rel with Rel{tc}   (right-linear, the paper's)
   - `Left  : pairs join Rel{tc} with Rel   (left-linear)
   - `Non   : joins Rel{tc} with Rel{tc}    (non-linear: converges in
              O(log diameter) rounds, used by the iteration benches) *)

type linearity =
  [ `Right
  | `Left
  | `Non
  ]

let transitive_closure ?(name = "tc") ?(src = "src") ?(dst = "dst")
    ?(ty = Value.TStr) ?(linear = `Right) () : Defs.constructor_def =
  let schema = binary_schema ~a:src ~b:dst ty in
  let self = Construct (Rel "Rel", name, []) in
  let f_range, b_range =
    match linear with
    | `Right -> (Rel "Rel", self)
    | `Left -> (self, Rel "Rel")
    | `Non -> (self, self)
  in
  let step =
    branch
      [ ("f", f_range); ("b", b_range) ]
      ~target:[ field "f" src; field "b" dst ]
      ~where:(eq (field "f" dst) (field "b" src))
  in
  {
    con_name = name;
    con_formal = "Rel";
    con_formal_schema = schema;
    con_params = [];
    con_result = schema;
    con_agg = None;
    con_body = [ identity_branch (Rel "Rel"); step ];
  }

(* ------------------------------------------------------------------ *)
(* The bounded family ahead-1 ... ahead-n of §3.1: ahead-1 is the identity
   constructor; ahead-k joins Rel with Rel{ahead-(k-1)}.  Returns the
   definitions in dependency order; apply the last one. *)

let ahead_n ?(prefix = "ahead") ?(ty = Value.TStr) n : Defs.constructor_def list
    =
  if n < 1 then invalid_arg "ahead_n: n must be >= 1";
  let schema = binary_schema ~a:"front" ~b:"back" ty in
  let result = binary_schema ~a:"head" ~b:"tail" ty in
  let def k =
    let body =
      if k = 1 then [ identity_branch (Rel "Rel") ]
      else
        [
          identity_branch (Rel "Rel");
          branch
            [
              ("f", Rel "Rel");
              ("b", Construct (Rel "Rel", Fmt.str "%s_%d" prefix (k - 1), []));
            ]
            ~target:[ field "f" "front"; field "b" "tail" ]
            ~where:(eq (field "f" "back") (field "b" "head"));
        ]
    in
    {
      Defs.con_name = Fmt.str "%s_%d" prefix k;
      con_formal = "Rel";
      con_formal_schema = schema;
      con_params = [];
      con_result = result;
      con_agg = None;
      con_body = body;
    }
  in
  List.init n (fun i -> def (i + 1))

(* ------------------------------------------------------------------ *)
(* The mutually recursive pair of §3.1.  Types:

     infrontrel = RELATION OF RECORD front, back: parttype END
     ontoprel   = RELATION OF RECORD top, base: parttype END
     aheadrel   = RELATION OF RECORD head, tail: parttype END
     aboverel   = RELATION OF RECORD high, low: parttype END

   CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
   BEGIN EACH r IN Rel: TRUE,
         <r.front, ah.tail> OF EACH r IN Rel,
                               EACH ah IN Rel{ahead(Ontop)}:
           r.back = ah.head,
         <r.front, ab.low> OF EACH r IN Rel,
                              EACH ab IN Ontop{above(Rel)}:
           r.back = ab.high
   END ahead   (and symmetrically for above). *)

let infront_schema ty = Schema.make [ ("front", ty); ("back", ty) ]
let ontop_schema ty = Schema.make [ ("top", ty); ("base", ty) ]
let ahead_schema ty = Schema.make [ ("head", ty); ("tail", ty) ]
let above_schema ty = Schema.make [ ("high", ty); ("low", ty) ]

let ahead_above ?(ty = Value.TStr) () :
    Defs.constructor_def * Defs.constructor_def =
  let infront = infront_schema ty
  and ontop = ontop_schema ty
  and aheadrel = ahead_schema ty
  and aboverel = above_schema ty in
  let ahead =
    {
      Defs.con_name = "ahead";
      con_formal = "Rel";
      con_formal_schema = infront;
      con_params = [ Defs.Rel_param ("Ontop", ontop) ];
      con_result = aheadrel;
      con_agg = None;
      con_body =
        [
          identity_branch (Rel "Rel");
          branch
            [
              ("r", Rel "Rel");
              ( "ah",
                Construct (Rel "Rel", "ahead", [ Arg_range (Rel "Ontop") ]) );
            ]
            ~target:[ field "r" "front"; field "ah" "tail" ]
            ~where:(eq (field "r" "back") (field "ah" "head"));
          branch
            [
              ("r", Rel "Rel");
              ( "ab",
                Construct (Rel "Ontop", "above", [ Arg_range (Rel "Rel") ]) );
            ]
            ~target:[ field "r" "front"; field "ab" "low" ]
            ~where:(eq (field "r" "back") (field "ab" "high"));
        ];
    }
  in
  let above =
    {
      Defs.con_name = "above";
      con_formal = "Rel";
      con_formal_schema = ontop;
      con_params = [ Defs.Rel_param ("Infront", infront) ];
      con_result = aboverel;
      con_agg = None;
      con_body =
        [
          identity_branch (Rel "Rel");
          branch
            [
              ("r", Rel "Rel");
              ( "ab",
                Construct (Rel "Rel", "above", [ Arg_range (Rel "Infront") ])
              );
            ]
            ~target:[ field "r" "top"; field "ab" "low" ]
            ~where:(eq (field "r" "base") (field "ab" "high"));
          branch
            [
              ("r", Rel "Rel");
              ( "ah",
                Construct
                  (Rel "Infront", "ahead", [ Arg_range (Rel "Rel") ]) );
            ]
            ~target:[ field "r" "top"; field "ah" "tail" ]
            ~where:(eq (field "r" "base") (field "ah" "head"));
        ];
    }
  in
  (ahead, above)

(* ------------------------------------------------------------------ *)
(* The ahead-2 constructor of §2.3. *)

let ahead_2 ?(ty = Value.TStr) () : Defs.constructor_def =
  let infront = infront_schema ty and aheadrel = ahead_schema ty in
  {
    con_name = "ahead2";
    con_formal = "Rel";
    con_formal_schema = infront;
    con_params = [];
    con_result = aheadrel;
    con_agg = None;
    con_body =
      [
        identity_branch (Rel "Rel");
        branch
          [ ("f", Rel "Rel"); ("b", Rel "Rel") ]
          ~target:[ field "f" "front"; field "b" "back" ]
          ~where:(eq (field "f" "back") (field "b" "front"));
      ];
  }

(* ------------------------------------------------------------------ *)
(* The non-monotone examples of §3.3.  Both violate positivity; they can
   only be evaluated with positivity checking disabled.

   nonsense:  EACH r IN Rel: NOT (r IN Rel{nonsense})     (oscillates)
   strange:   EACH r IN Baserel:
                NOT SOME s IN Baserel{strange} (r.number = s.number + 1)
              (non-monotone, but its iteration happens to converge) *)

let nonsense ?(ty = Value.TStr) () : Defs.constructor_def =
  let schema = Schema.make [ ("x", ty) ] in
  {
    con_name = "nonsense";
    con_formal = "Rel";
    con_formal_schema = schema;
    con_params = [];
    con_result = schema;
    con_agg = None;
    con_body =
      [
        branch
          [ ("r", Rel "Rel") ]
          ~target:[ field "r" "x" ]
          ~where:(Not (In_rel ("r", Construct (Rel "Rel", "nonsense", []))));
      ];
  }

let strange () : Defs.constructor_def =
  let schema = Schema.make [ ("number", Value.TInt) ] in
  {
    con_name = "strange";
    con_formal = "Baserel";
    con_formal_schema = schema;
    con_params = [];
    con_result = schema;
    con_agg = None;
    con_body =
      [
        branch
          [ ("r", Rel "Baserel") ]
          ~target:[ field "r" "number" ]
          ~where:
            (Not
               (Some_in
                  ( "s",
                    Construct (Rel "Baserel", "strange", []),
                    eq (field "r" "number")
                      (Binop (Add, field "s" "number", int 1)) )));
      ];
  }

(* ------------------------------------------------------------------ *)
(* Same-generation: the classic deductive-database benchmark; exercises a
   quadratic recursive rule the paper's framework must handle.

     sg(x, y) <- flat(x, y)
     sg(x, y) <- up(x, u), sg(u, v), down(v, y)

   Base relation: Up (child-to-parent edges); parameters: Flat, Down. *)

let same_generation ?(ty = Value.TStr) () : Defs.constructor_def =
  let edge = binary_schema ty in
  {
    con_name = "same_generation";
    con_formal = "Up";
    con_formal_schema = edge;
    con_params = [ Defs.Rel_param ("Flat", edge); Defs.Rel_param ("Down", edge) ];
    con_result = edge;
    con_agg = None;
    con_body =
      [
        identity_branch (Rel "Flat");
        branch
          [
            ("u", Rel "Up");
            ( "s",
              Construct
                ( Rel "Up",
                  "same_generation",
                  [ Arg_range (Rel "Flat"); Arg_range (Rel "Down") ] ) );
            ("d", Rel "Down");
          ]
          ~target:[ field "u" "src"; field "d" "dst" ]
          ~where:
            (conj
               (eq (field "u" "dst") (field "s" "src"))
               (eq (field "s" "dst") (field "d" "src")));
      ];
  }
