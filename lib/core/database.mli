(** The database programming environment: named relation variables plus
    registries of selector and constructor definitions, with DBPL's checks
    wired in — key constraints on assignment (§2.2), selector-guarded
    assignment (§2.3), static typing and positivity at definition time
    (§3.3, §4), fixpoint semantics at query time (§3.2). *)

open Dc_relation
open Dc_calculus

exception Error of string

type t

val create :
  ?strategy:Fixpoint.strategy ->
  ?check_positivity:bool ->
  ?max_rounds:int ->
  ?limits:Dc_guard.Guard.limits ->
  unit ->
  t
(** Fresh database. Defaults: [Seminaive], positivity checked,
    {!Fixpoint.default_max_rounds}, no resource limits. *)

val set_strategy : t -> Fixpoint.strategy -> unit
val strategy : t -> Fixpoint.strategy
val set_check_positivity : t -> bool -> unit

val set_agg_eval :
  t ->
  (t -> Defs.constructor_def -> Relation.t -> Eval.arg_value list ->
   Relation.t) ->
  unit
(** Install the evaluator for constructor systems containing aggregates
    (MIN/MAX/COUNT/SUM heads).  Applications of such systems are routed
    here instead of the naive fixpoint — the front end wires in the
    compiled datalog pipeline (grouped accumulators, per-group-bound
    semi-naive rounds).  Without an installed evaluator such
    applications raise {!Error}. *)

val system_has_agg : t -> Defs.constructor_def -> bool
(** Does the constructor system reachable from the definition contain an
    aggregated constructor? *)

val set_limits : t -> Dc_guard.Guard.limits -> unit
(** Declarative resource limits (the surface language's [SET LIMIT]):
    every subsequent evaluation runs under a fresh guard over these. *)

val limits : t -> Dc_guard.Guard.limits

val last_stats : t -> Fixpoint.stats option
(** Statistics of the most recent top-level constructor application. *)

val reset_last_stats : t -> unit
(** Forget the last fixpoint statistics, so a subsequent read reflects
    only the next evaluation (EXPLAIN ANALYZE uses this to avoid showing
    a previous query's rounds for a non-recursive query). *)

(** {1 Relation variables} *)

val declare : t -> string -> Schema.t -> unit
(** @raise Error if the name is taken. *)

val get : t -> string -> Relation.t
(** @raise Error if unknown. *)

val set : t -> string -> Relation.t -> unit
(** Bind or update; updating requires a compatible schema. *)

val relation_names : t -> string list

val insert : t -> string -> Tuple.t -> unit
(** @raise Relation.Key_violation / Relation.Type_mismatch per §2.2.
    Point updates ([insert]/[insert_all]/[delete]) are transactional
    against maintained views: net deltas propagate into every registered
    maintainer reading the relation (or mark it stale when maintenance is
    off), and a failed propagation rolls both the binding and the views
    back to the pre-update snapshot before re-raising. *)

val insert_all : t -> string -> Tuple.t list -> unit
val delete : t -> string -> Tuple.t -> unit

val update_batch : t -> (string * Tuple.t list * Tuple.t list) list -> unit
(** [update_batch db [(rel, adds, removes); ...]] applies a
    multi-relation batch of point updates as {e one} commit: removals
    then additions per relation, net deltas propagated to maintainers in
    a single call each, exactly one published version covering the whole
    batch, and full rollback (bindings and views) if anything fails
    mid-batch.  This is a serving writer thread's unit of work. *)

(** {1 Snapshots}

    The database is a versioned store: every committed mutation
    publishes an immutable {!Snapshot.t} with a monotone version.
    Reader threads grab {!snapshot} (a single field read of an immutable
    record — no locking) and evaluate against it while the writer moves
    on. *)

val snapshot : t -> Snapshot.t
(** The latest published state. *)

val version : t -> int
(** Version of the latest published snapshot (0 = freshly created). *)

val prewarm : t -> string -> int list -> unit
(** Declare a hot access path: every published snapshot's frozen index
    cache will contain an index on [positions] of relation [name],
    carried forward by reference across commits that don't change the
    relation.  Reader sessions borrow these instead of rebuilding. *)

(** {1 Durability}

    The write-ahead-log subsystem ([Dc_wal], a higher layer) plugs into
    the commit point through closures, exactly like maintainers do. *)

type wal_hooks = {
  wh_append :
    version:int ->
    catalog:bool ->
    changes:(string * Tuple.t list * Tuple.t list) list ->
    unit;
      (** called inside the commit, after mutation and maintenance
          succeeded but {e before} the snapshot publishes: make the
          commit durable ([changes] is the net point-update delta in
          application order; [catalog] marks commits with no replayable
          delta — DDL, wholesale assignment, view (un)registration —
          which need a checkpoint instead).  Raising aborts the commit:
          full rollback, nothing published. *)
  wh_published : version:int -> unit;
      (** called after publication (periodic checkpointing); an
          exception propagates to the committer but the commit stands *)
}

val set_wal_hooks : t -> wal_hooks option -> unit

val durable_lsn : t -> int
(** LSN of the last durable record/checkpoint (0 = none / no WAL). *)

val set_durable_lsn : t -> int -> unit
(** Advance the durability watermark (also refreshed into the published
    snapshot, without a version bump). Called by the WAL layer. *)

val restore_version : t -> int -> unit
(** Recovery only: force the published version counter so a replayed
    commit republishes at exactly the logged version.  Never call this
    on a live (serving) database. *)

(** {1 Maintained views}

    The incremental-maintenance subsystem ([Dc_ivm], a higher layer)
    plugs in through closures: it registers a maintainer per materialized
    constructor extent, and the database routes updates and constructor
    applications through the registry. *)

type maintainer = {
  mt_name : string;
  mt_depends : string list;  (** base relations the view reads *)
  mt_serve :
    Dc_calculus.Defs.constructor_def ->
    Relation.t ->
    Dc_calculus.Eval.arg_value list ->
    Relation.t option;
      (** serve a constructor application from the maintained extent, or
          decline with [None] *)
  mt_update : (string * Tuple.t list * Tuple.t list) list -> unit;
      (** apply one batch of net base deltas: (relation, added, removed) *)
  mt_invalidate : unit -> unit;  (** mark stale; refresh on next serve *)
  mt_snapshot : unit -> unit -> unit;
      (** capture state, returning the restore thunk (rollback) *)
  mt_stale : unit -> bool;  (** is the view currently stale? *)
  mt_freeze : unit -> Snapshot.frozen_serve option;
      (** publish-time capture: a thread-safe serve closure over a
          frozen copy of the extent, or [None] when the view is stale *)
}

val register_maintainer : t -> maintainer -> unit
(** Latest registration for a name wins (re-MATERIALIZE replaces). *)

val unregister_maintainer : t -> string -> unit
val maintainer_names : t -> string list

val set_maintain : t -> bool -> unit
(** [SET MAINTAIN ON|OFF]: when off, updates invalidate maintained views
    instead of propagating deltas into them. Default on. *)

val maintain : t -> bool

(** {1 Definitions} *)

val define_selector : t -> Defs.selector_def -> unit
(** Typechecks the body. @raise Error on failure. *)

val define_constructors : t -> Defs.constructor_def list -> unit
(** Register a (possibly mutually recursive) group atomically: all
    signatures become visible, every body is typechecked, then the §3.3
    positivity check runs per dependency SCC.  On failure nothing is
    registered. @raise Error *)

val define_constructor : t -> Defs.constructor_def -> unit

val selector : t -> string -> Defs.selector_def option
val constructor : t -> string -> Defs.constructor_def option

val selector_names : t -> string list
val constructor_names : t -> string list

(** {1 Environments} *)

val typecheck_env : t -> Typecheck.env

val eval_env : ?trace:Dc_exec.Ir.trace -> ?guard:Dc_guard.Guard.t -> t -> Eval.env
(** Evaluation environment with selector filtering and constructor
    fixpoint semantics installed.  [trace] records every physical
    pipeline the evaluation lowers and runs (EXPLAIN).  [guard] defaults
    to a fresh guard over {!limits}. *)

(** {1 Queries and assignment} *)

val check_query : t -> Ast.range -> unit

val query :
  ?trace:Dc_exec.Ir.trace -> ?guard:Dc_guard.Guard.t -> t -> Ast.range -> Relation.t
(** Typecheck, then evaluate (constructor applications run to their least
    fixpoint) under [guard] (default: a fresh guard over {!limits}).
    @raise Dc_guard.Guard.Exhausted when a limit trips; aborted
    constructor expansions leave the database and caches unchanged. *)

val eval_formula : t -> Ast.formula -> bool
(** Closed formulas only. *)

val coerce : Schema.t -> Relation.t -> Relation.t
(** Re-impose a target schema on a computed relation, re-running the key
    check — the §2.2 relational type checker. @raise Error on
    incompatibility. *)

val assign : t -> string -> Ast.range -> unit
(** [Rel := range], with the §2.2 checks. *)

val assign_selected :
  t -> string -> selector:string -> args:Ast.arg list -> Ast.range -> unit
(** [Rel[s(args)] := range] — the §2.3 guarded assignment.
    @raise Selector.Selector_violation if any tuple fails the predicate. *)
