(* An immutable, published database state.

   A snapshot is what a reader session holds: the persistent relation
   bindings, the catalog (selectors/constructors), the evaluation
   configuration, one frozen serve closure per Live maintained view, and
   a frozen index cache of prewarmed access paths.  Everything inside is
   either persistent data (relations, maps) or a frozen structure that is
   never mutated after publication, so snapshots are safe to query from
   any number of threads concurrently while the writer publishes
   successors.

   Capture and publication live in {!Database}; this module owns the
   type and the read-only operations (queries against the snapshot). *)

open Dc_relation
open Dc_calculus
module Guard = Dc_guard.Guard
module SM = Map.Make (String)

(* A Live maintained view, frozen at publish time: the closure answers a
   constructor application from the view's frozen extent when the
   application matches what was materialized, and declines otherwise. *)
type frozen_serve =
  Defs.constructor_def -> Relation.t -> Eval.arg_value list -> Relation.t option

type frozen_view = {
  fv_name : string;
  fv_stale : bool;
  fv_serve : frozen_serve option; (* [None] iff the view was stale *)
}

type t = {
  version : int; (* monotone: one publication per commit *)
  rels : Relation.t SM.t;
  selectors : Defs.selector_def SM.t;
  constructors : Defs.constructor_def SM.t;
  strategy : Fixpoint.strategy;
  max_rounds : int;
  limits : Guard.limits;
  views : frozen_view list;
  icache : Index_cache.t; (* frozen; prewarmed access paths *)
  durable : int option;
      (* LSN of the last durable WAL record / checkpoint covering this
         state; [None] when the database has no write-ahead log attached *)
}

let version s = s.version
let durable_lsn s = s.durable
let relation_count s = SM.cardinal s.rels
let relation_names s = List.map fst (SM.bindings s.rels)

let get s name = SM.find_opt name s.rels

let view_names s = List.map (fun v -> v.fv_name) s.views
let stale_views s =
  List.filter_map (fun v -> if v.fv_stale then Some v.fv_name else None) s.views

(* ------------------------------------------------------------------ *)
(* Read-only evaluation against the frozen state *)

let typecheck_env s =
  Typecheck.env
    ~selectors:(List.map snd (SM.bindings s.selectors))
    ~constructors:(List.map snd (SM.bindings s.constructors))
    (List.map (fun (n, r) -> (n, Relation.schema r)) (SM.bindings s.rels))

(* Like {!Database.eval_env}, but every lookup resolves inside the
   snapshot: constructor applications are served from frozen view extents
   when one matches, and otherwise run a fixpoint whose inputs are all
   snapshot values.  The per-evaluation index cache borrows the
   snapshot's frozen prewarmed indexes as a read-only fallback. *)
let eval_env ?guard s =
  let guard =
    match guard with Some g -> g | None -> Guard.of_limits s.limits
  in
  let hooks =
    {
      Eval.selector_def = (fun n -> SM.find_opt n s.selectors);
      Eval.constructor_def = (fun n -> SM.find_opt n s.constructors);
      Eval.on_select =
        (fun env base def args -> Selector.apply env def base args);
      Eval.on_construct =
        (fun env base def args ->
          match
            List.find_map
              (fun v -> Option.bind v.fv_serve (fun serve -> serve def base args))
              s.views
          with
          | Some value -> value
          | None ->
            Fixpoint.apply ~strategy:s.strategy ~max_rounds:s.max_rounds env
              def base args);
    }
  in
  let icache = Index_cache.create ~shared:s.icache () in
  Eval.make_env ~hooks ~guard ~icache (SM.bindings s.rels)

let check_query s range = Typecheck.check_query (typecheck_env s) range

let query ?guard s range =
  check_query s range;
  Eval.eval_range (eval_env ?guard s) range

let pp_summary ppf s =
  Fmt.pf ppf "version %d: %d relation%s, %d view%s%s%s" s.version
    (relation_count s)
    (if relation_count s = 1 then "" else "s")
    (List.length s.views)
    (if List.length s.views = 1 then "" else "s")
    (match stale_views s with
    | [] -> ""
    | stale -> Fmt.str " (stale: %s)" (String.concat ", " stale))
    (match s.durable with
    | None -> ""
    | Some lsn -> Fmt.str ", durable lsn %d" lsn)
